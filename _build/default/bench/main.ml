(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as rows/series in the paper's units), then
   runs bechamel micro-benchmarks for the design-choice ablations called
   out in DESIGN.md (optimizer on/off, storage backend diversity, SQL
   front-end, codec and Paxos step costs).

   `dune exec bench/main.exe` runs everything at quick scale;
   `dune exec bench/main.exe -- --full` uses paper-scale parameters;
   `dune exec bench/main.exe -- --skip-micro` omits the bechamel part. *)

let quick = not (Array.exists (( = ) "--full") Sys.argv)
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv

(* ------------------------------------------------------------------ *)
(* Paper tables and figures                                            *)
(* ------------------------------------------------------------------ *)

let run_paper_experiments () =
  print_endline "########################################################";
  print_endline "# Reproduction of the paper's evaluation              #";
  print_endline "########################################################";
  Harness.Table1.print (Harness.Table1.rows ());
  Harness.Fig8.print (Harness.Fig8.run ~quick ());
  Harness.Fig9.print Harness.Fig9.Micro (Harness.Fig9.run ~quick Harness.Fig9.Micro);
  Harness.Fig9.print Harness.Fig9.Tpcc (Harness.Fig9.run ~quick Harness.Fig9.Tpcc);
  Harness.Fig10.print_timeline
    (Harness.Fig10.run_timeline ~rows:(if quick then 20_000 else 50_000) ());
  Harness.Fig10.print_transfers (Harness.Fig10.run_transfers ~quick ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (real time, not simulated time)           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

module Message = Loe.Message
module Cls = Loe.Cls

(* Ablation 1: the program optimizer (tree-walking interpreter vs fused
   machine with common-subexpression sharing). CLK is tiny, so the gain is
   modest there; on a wide specification (many composed classes over a
   shared base, like the Paxos node spec) the fused machine avoids
   rebuilding the whole instance tree per event. *)
let bench_gpm_backends =
  let h : int Message.hdr = Message.declare "bench" in
  let base = Cls.base h in
  (* A wide spec: 24 state classes over the same (shared) base class,
     paired through composition — CSE collapses the shared base. *)
  let wide =
    let cell i =
      Cls.state (Printf.sprintf "s%d" i)
        ~init:(fun _ -> i)
        ~upd:(fun _ v s -> s + v)
        base
    in
    let rec build i =
      if i = 0 then Cls.map (fun v -> v) base
      else Cls.( ||| ) (Cls.o2 (fun _ v s -> [ v + s ]) base (cell i)) (build (i - 1))
    in
    build 24
  in
  let msgs = Array.init 64 (fun i -> Message.make h i) in
  let tree () =
    let proc = ref (Gpm.Compile.compile 0 wide) in
    Array.iter
      (fun m ->
        let p, _ = Gpm.Proc.step !proc m in
        proc := p)
      msgs
  in
  let fused () =
    let machine = Gpm.Opt.compile 0 wide in
    Array.iter (fun m -> ignore (Gpm.Opt.step machine m)) msgs
  in
  Test.make_grouped ~name:"gpm(wide spec,64 events)"
    [
      Test.make ~name:"interpreted-tree" (Staged.stage tree);
      Test.make ~name:"optimized-fused" (Staged.stage fused);
    ]

(* Ablation 3: point operations across the three diverse backends. *)
let bench_backends =
  let mk kind () =
    let s = Storage.Store.create kind in
    for i = 0 to 999 do
      s.Storage.Store.insert
        [ Storage.Value.Int ((i * 7919) mod 1000) ]
        [| Storage.Value.Int i; Storage.Value.Int (i * 2) |]
    done;
    for i = 0 to 999 do
      ignore (s.Storage.Store.find [ Storage.Value.Int i ])
    done
  in
  Test.make_grouped ~name:"store(1k ins + 1k find)"
    [
      Test.make ~name:"hazel-hash" (Staged.stage (mk Storage.Store.Hazel));
      Test.make ~name:"hickory-btree" (Staged.stage (mk Storage.Store.Hickory));
      Test.make ~name:"dogwood-avl" (Staged.stage (mk Storage.Store.Dogwood));
    ]

let bench_sql =
  let sql =
    "SELECT a, b FROM t WHERE (a = 1) AND (b < 'x') ORDER BY a ASC LIMIT 5"
  in
  Test.make ~name:"sql-parse" (Staged.stage (fun () -> Storage.Sql_parser.parse sql))

let bench_codec =
  let txn =
    {
      Shadowdb.Txn.client = 3;
      seq = 42;
      kind = "deposit";
      params = [ Storage.Value.Int 17; Storage.Value.Int 100 ];
    }
  in
  Test.make ~name:"txn-codec-roundtrip"
    (Staged.stage (fun () ->
         Shadowdb.Codec.decode_txn (Shadowdb.Codec.encode_txn txn)))

let bench_paxos_step =
  Test.make ~name:"paxos-acceptor-step"
    (Staged.stage (fun () ->
         let a = Consensus.Acceptor.create ~self:1 in
         let b = { Consensus.Paxos_msg.round = 1; leader = 0 } in
         ignore (Consensus.Acceptor.step a (Consensus.Paxos_msg.P1a { src = 0; b }))))

let bench_btree_bulk =
  Test.make ~name:"btree-1k-inserts"
    (Staged.stage (fun () ->
         let t = ref (Storage.Btree.create ~cmp:Int.compare) in
         for i = 0 to 999 do
           t := Storage.Btree.insert !t ((i * 2654435761) land 0xFFFF) i
         done))

let run_micro () =
  print_endline "\n########################################################";
  print_endline "# Bechamel micro-benchmarks (ablations)               #";
  print_endline "########################################################";
  let tests =
    Test.make_grouped ~name:"micro"
      [
        bench_gpm_backends;
        bench_backends;
        bench_sql;
        bench_codec;
        bench_paxos_step;
        bench_btree_bulk;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.4) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Stats.Table.print_table ~title:"micro-benchmarks (monotonic clock)"
    ~header:[ "benchmark"; "ns/run" ]
    (List.map (fun (n, v) -> [ n; Stats.Table.fmt_f v ]) rows)

let run_ablations () =
  print_endline "\n########################################################";
  print_endline "# Virtual-time ablations (DESIGN.md design choices)    #";
  print_endline "########################################################";
  Harness.Ablations.print ~title:"ablation — broadcast batching"
    (Harness.Ablations.batching ());
  Harness.Ablations.print ~title:"ablation — consensus module under the TOB"
    (Harness.Ablations.consensus_modules ());
  Harness.Ablations.print ~title:"ablation — lock granularity under contention"
    (Harness.Ablations.lock_granularity ());
  Harness.Ablations.print
    ~title:"extension — replication styles over the same substrate"
    (Harness.Ablations.replication_styles ())

let () =
  run_paper_experiments ();
  run_ablations ();
  if not skip_micro then run_micro ();
  print_endline "\nbench: done."
