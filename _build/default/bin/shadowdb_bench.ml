(* Command-line driver regenerating each table/figure of the paper's
   evaluation. `shadowdb_bench all` runs everything in quick mode;
   `--full` uses paper-scale parameters (slower). *)

open Cmdliner

let full =
  let doc = "Run at paper-scale parameters (slower) instead of quick mode." in
  Arg.(value & flag & info [ "full" ] ~doc)

let run_table1 () = Harness.Table1.print (Harness.Table1.rows ())

let run_fig8 full = Harness.Fig8.print (Harness.Fig8.run ~quick:(not full) ())

let run_fig9a full =
  Harness.Fig9.print Harness.Fig9.Micro
    (Harness.Fig9.run ~quick:(not full) Harness.Fig9.Micro)

let run_fig9b full =
  Harness.Fig9.print Harness.Fig9.Tpcc
    (Harness.Fig9.run ~quick:(not full) Harness.Fig9.Tpcc)

let run_fig10a full =
  let rows = if full then 50_000 else 20_000 in
  Harness.Fig10.print_timeline (Harness.Fig10.run_timeline ~rows ())

let run_fig10b full =
  Harness.Fig10.print_transfers (Harness.Fig10.run_transfers ~quick:(not full) ())

let run_all full =
  run_table1 ();
  run_fig8 full;
  run_fig9a full;
  run_fig9b full;
  run_fig10a full;
  run_fig10b full

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ full)

let () =
  let doc = "Regenerate the evaluation of the DSN'14 ShadowDB paper." in
  let info = Cmd.info "shadowdb_bench" ~doc in
  let default = Term.(const run_all $ full) in
  let cmds =
    [
      cmd "table1" "Specification size statistics (Table I)." (fun _ ->
          run_table1 ());
      cmd "fig8" "Broadcast service latency/throughput (Fig. 8)." run_fig8;
      cmd "fig9a" "Micro-benchmark comparison (Fig. 9a)." run_fig9a;
      cmd "fig9b" "TPC-C comparison (Fig. 9b)." run_fig9b;
      cmd "fig10a" "Recovery timeline (Fig. 10a)." run_fig10a;
      cmd "fig10b" "State transfer cost (Fig. 10b)." run_fig10b;
      cmd "all" "Everything." run_all;
    ]
  in
  exit (Cmd.eval (Cmd.group ~default info cmds))
