examples/bank_failover.ml: Consensus Hashtbl List Printf Shadowdb Sim Storage String Workload
