examples/bank_failover.mli:
