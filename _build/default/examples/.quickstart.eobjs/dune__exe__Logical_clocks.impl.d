examples/logical_clocks.ml: Clocks Format Gpm List Loe Printf Sim
