examples/logical_clocks.mli:
