examples/quickstart.ml: Consensus List Printf Shadowdb Sim Storage Workload
