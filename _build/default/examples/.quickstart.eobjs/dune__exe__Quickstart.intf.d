examples/quickstart.mli:
