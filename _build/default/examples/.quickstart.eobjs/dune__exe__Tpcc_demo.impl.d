examples/tpcc_demo.ml: Consensus Hashtbl List Option Printf Shadowdb Sim Storage String Workload
