(* Lamport's logical clocks, the paper's running example (Sec. II-C).

   Shows the whole methodology pipeline on CLK:
   1. the constructive specification (the paper's Fig. 3), with its size;
   2. the generated inductive logical form (the paper's Fig. 4);
   3. compilation to a GPM process and the optimizer's output, with the
      size reduction of Table I;
   4. a three-site execution on the simulator, demonstrating the Clock
      Condition on a causal chain.

   Run with: dune exec examples/logical_clocks.exe *)

module Engine = Sim.Engine
module Message = Loe.Message
module Cls = Loe.Cls

let () =
  print_endline "== CLK: Lamport clocks through the toolchain ==\n";
  let locs = [ 0; 1; 2 ] in
  let clk =
    Clocks.Clk.make ~locs ~handle:(fun slf v -> (v + 1, (slf + 1) mod 3))
  in
  let main = clk.Clocks.Clk.spec.Loe.Spec.main in

  Printf.printf "1. specification sizes (Table I row):\n";
  Printf.printf "   EventML-style spec : %d nodes\n" (Cls.size main);
  Printf.printf "   LoE logical form   : %d nodes\n"
    (Loe.Ilf.size (Loe.Ilf.of_cls ~name:"CLK" main));
  Printf.printf "   GPM program        : %d nodes\n" (Gpm.Compile.gpm_size main);
  Printf.printf "   optimized program  : %d nodes\n\n" (Gpm.Opt.opt_size main);

  Printf.printf "2. inductive logical form of the Clock class (cf. Fig. 4):\n";
  let clock_ilf = Loe.Ilf.of_cls ~name:"Clock" clk.Clocks.Clk.clock in
  Format.printf "%a@.@." Loe.Ilf.pp clock_ilf;

  Printf.printf "3. executing the optimized process on a local trace:\n";
  let trace =
    [
      Message.make clk.Clocks.Clk.msg (10, 0);
      Message.make clk.Clocks.Clk.msg (11, 7);
      Message.make clk.Clocks.Clk.msg (12, 3);
    ]
  in
  let machine = Gpm.Opt.compile 0 clk.Clocks.Clk.clock in
  List.iteri
    (fun i m ->
      match Gpm.Opt.step machine m with
      | [ c ] -> Printf.printf "   event %d: clock = %d\n" i c
      | _ -> ())
    trace;

  Printf.printf "\n4. a three-site run (token around a ring):\n";
  let world : Message.t Engine.t = Engine.create ~seed:2 () in
  let seen = ref [] in
  let hdr = ref None in
  let ids =
    Gpm.Runtime.deploy world ~n:3 (fun locs ->
        let next slf =
          match locs with
          | [ a; b; c ] -> if slf = a then b else if slf = b then c else a
          | _ -> assert false
        in
        let clk = Clocks.Clk.make ~locs ~handle:(fun slf v -> (v + 1, next slf)) in
        hdr := Some clk.Clocks.Clk.msg;
        (* Spy on outgoing timestamps. *)
        let spied =
          Cls.map
            (fun (d : Message.directed) ->
              (match Message.recognize clk.Clocks.Clk.msg d.Message.msg with
              | Some (v, ts) -> seen := (v, ts) :: !seen
              | None -> ());
              d)
            clk.Clocks.Clk.spec.Loe.Spec.main
        in
        Loe.Spec.v ~name:"CLK" ~locs spied)
  in
  (match (ids, !hdr) with
  | first :: _, Some h -> Gpm.Runtime.inject world ~dst:first (Message.make h (0, 0))
  | _ -> ());
  Engine.run ~until:0.005 world;
  let chain = List.rev !seen in
  List.iteri
    (fun i (v, ts) -> Printf.printf "   hop %2d: value=%d LC=%d\n" i v ts)
    (List.filteri (fun i _ -> i < 10) chain);
  let increasing =
    let rec go = function
      | (_, a) :: ((_, b) :: _ as rest) -> a < b && go rest
      | _ -> true
    in
    go chain
  in
  Printf.printf "   clock condition along the chain: %b (%d hops)\n" increasing
    (List.length chain)
