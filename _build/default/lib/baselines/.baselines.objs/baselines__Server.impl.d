lib/baselines/server.ml: Hashtbl List Shadowdb Sim Storage
