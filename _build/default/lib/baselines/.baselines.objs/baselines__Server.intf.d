lib/baselines/server.mli: Shadowdb Sim Storage
