lib/broadcast/shell.ml: Consensus Gpm List Printf Sim String Tob
