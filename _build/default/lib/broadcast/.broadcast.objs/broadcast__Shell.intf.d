lib/broadcast/shell.mli: Consensus Gpm Sim Tob
