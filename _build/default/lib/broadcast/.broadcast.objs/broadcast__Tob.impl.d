lib/broadcast/tob.ml: Consensus List Set
