lib/broadcast/tob.mli: Consensus
