lib/broadcast/tob_spec.ml: Consensus Hashtbl List Loe Tob
