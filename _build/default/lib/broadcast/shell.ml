module Engine = Sim.Engine

type costs = { client_msg : float; core_msg : float; per_entry : float }

(* Calibrated against Fig. 8 (see EXPERIMENTS.md): with the engine factors
   in {!Gpm.Engine_profile}, these constants put the compiled service at
   ≈8.8 ms one-client latency and ≈900 delivered msgs/s at 43 clients. *)
let default_costs =
  { client_msg = 5.0e-5; core_msg = 1.92e-3; per_entry = 3.9e-4 }

module Make (C : Consensus.Consensus_intf.S) = struct
  module T = Tob.Make (C)

  let entry_size (e : Tob.entry) = String.length e.Tob.payload + 24

  let msg_size = function
    | T.Broadcast e -> entry_size e
    | T.Core _ -> 256 (* consensus messages carry batches; flat estimate *)

  let spawn ?(costs = default_costs) ?(profile = Gpm.Engine_profile.Compiled)
      ?batch_cap ?suspect_timeout ~world ~inj ~prj ~inj_notify ~n ~subscribers
      () =
    let lat_f = Gpm.Engine_profile.cpu_factor profile in
    let data_f = Gpm.Engine_profile.data_factor profile in
    let members = ref [] in
    let handler locref () =
      let state = ref None in
      let get () =
        match !state with
        | Some s -> s
        | None ->
            let s =
              T.create ?batch_cap ?suspect_timeout ~self:!locref
                ~members:!members ~subscribers:(subscribers ()) ()
            in
            state := Some s;
            s
      in
      let apply ctx before (t, acts) =
        let after = T.delivered t in
        Engine.charge ctx
          (float_of_int (after - before) *. costs.per_entry *. data_f);
        state := Some t;
        List.iter
          (function
            | T.Send (dst, m) -> Engine.send ctx ~size:(msg_size m) dst (inj m)
            | T.Notify (dst, d) ->
                Engine.send ctx ~size:(entry_size d.Tob.entry + 8) dst
                  (inj_notify d)
            | T.Set_timer delay -> ignore (Engine.set_timer ctx delay "tob"))
          acts
      in
      fun ctx -> function
        | Engine.Init ->
            let t = get () in
            apply ctx (T.delivered t) (T.start t ~now:(Engine.time ctx))
        | Engine.Recv { src; msg } -> (
            match prj msg with
            | None -> ()
            | Some m ->
                let t = get () in
                (match m with
                | T.Broadcast _ -> Engine.charge ctx costs.client_msg
                | T.Core _ -> Engine.charge ctx (costs.core_msg *. lat_f));
                apply ctx (T.delivered t)
                  (T.recv t ~now:(Engine.time ctx) ~src m))
        | Engine.Timer _ ->
            let t = get () in
            apply ctx (T.delivered t) (T.tick t ~now:(Engine.time ctx))
    in
    let ids =
      List.init n (fun i ->
          let locref = ref (-1) in
          let id =
            Engine.spawn world
              ~name:(Printf.sprintf "tob%d" i)
              (handler locref)
          in
          locref := id;
          id)
    in
    members := ids;
    ids
end
