lib/clocks/clk.ml: Loe
