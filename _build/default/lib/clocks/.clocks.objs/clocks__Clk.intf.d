lib/clocks/clk.mli: Loe
