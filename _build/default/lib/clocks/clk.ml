module Message = Loe.Message
module Cls = Loe.Cls

type timestamp = int

type 'v t = {
  spec : Loe.Spec.t;
  msg : ('v * timestamp) Message.hdr;
  clock : timestamp Cls.t;
}

(* imax timestamp clock + 1 *)
let upd_clock _slf (_, timestamp) clock = max timestamp clock + 1

let make ~locs ~handle =
  let msg = Message.declare "msg" in
  let msg_base = Cls.base msg in
  let clock = Cls.state "Clock" ~init:(fun _ -> 0) ~upd:upd_clock msg_base in
  let on_msg slf (value, _) clock =
    let newval, recipient = handle slf value in
    [ Message.send msg recipient (newval, clock) ]
  in
  let handler = Cls.o2 on_msg msg_base clock in
  { spec = Loe.Spec.v ~name:"CLK" ~locs handler; msg; clock }
