(** Lamport's logical clocks, specified exactly as the paper's Fig. 3.

    The specification [CLK] is parameterized by the system's locations,
    the message-value type, and the [handle] function that computes the
    next value and recipient for each received message. Each process keeps
    a clock ([State] class, initial value 0, update
    [max timestamp clock + 1]) and tags outgoing messages with it. *)

type timestamp = int

type 'v t = {
  spec : Loe.Spec.t;  (** [main Handler @ locs]. *)
  msg : ('v * timestamp) Loe.Message.hdr;
      (** The [internal msg : MsgVal x Timestamp] declaration; exposed so
          drivers can inject messages and observers can recognize them. *)
  clock : timestamp Loe.Cls.t;
      (** The [Clock] state class, for direct observation in tests. *)
}

val make :
  locs:Loe.Message.loc list ->
  handle:(Loe.Message.loc -> 'v -> 'v * Loe.Message.loc) ->
  'v t
(** Instantiate CLK with the given parameters (the paper's [locs],
    [MsgVal] and [handle]). *)

val upd_clock : Loe.Message.loc -> 'v * timestamp -> timestamp -> timestamp
(** The clock update function (lines 11–12 of Fig. 3):
    [max timestamp clock + 1]. Exposed for the progress-property test. *)
