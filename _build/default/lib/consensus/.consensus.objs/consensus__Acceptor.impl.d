lib/consensus/acceptor.ml: Int List Map Paxos_msg
