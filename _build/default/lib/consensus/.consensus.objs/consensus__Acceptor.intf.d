lib/consensus/acceptor.mli: Paxos_msg
