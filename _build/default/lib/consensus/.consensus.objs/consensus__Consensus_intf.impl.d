lib/consensus/consensus_intf.ml:
