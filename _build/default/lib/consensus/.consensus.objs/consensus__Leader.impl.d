lib/consensus/leader.ml: Int List Map Paxos_msg Set
