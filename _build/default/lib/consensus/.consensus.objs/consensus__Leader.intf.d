lib/consensus/leader.mli: Paxos_msg
