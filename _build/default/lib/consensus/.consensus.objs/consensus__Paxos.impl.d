lib/consensus/paxos.ml: Acceptor Consensus_intf Leader List Paxos_msg Replica
