lib/consensus/paxos.mli: Consensus_intf Paxos_msg
