lib/consensus/paxos_msg.ml: Format Int List
