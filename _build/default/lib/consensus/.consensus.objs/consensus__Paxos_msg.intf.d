lib/consensus/paxos_msg.mli: Format
