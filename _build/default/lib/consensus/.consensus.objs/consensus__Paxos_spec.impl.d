lib/consensus/paxos_spec.ml: Acceptor Leader List Loe Paxos_msg Replica
