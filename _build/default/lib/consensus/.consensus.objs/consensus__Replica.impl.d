lib/consensus/replica.ml: Int List Map Paxos_msg
