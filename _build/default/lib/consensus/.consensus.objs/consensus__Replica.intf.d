lib/consensus/replica.mli: Paxos_msg
