lib/consensus/twothird.ml: Int List Map Option
