lib/consensus/twothird.mli:
