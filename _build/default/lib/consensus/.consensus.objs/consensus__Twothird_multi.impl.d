lib/consensus/twothird_multi.ml: Consensus_intf Int List Map Twothird
