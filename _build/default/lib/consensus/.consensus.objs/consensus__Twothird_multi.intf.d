lib/consensus/twothird_multi.mli: Consensus_intf Twothird
