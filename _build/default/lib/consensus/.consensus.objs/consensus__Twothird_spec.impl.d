lib/consensus/twothird_spec.ml: Consensus_intf List Loe Twothird_multi
