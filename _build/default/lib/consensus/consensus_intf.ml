(** Common interface of multi-decree consensus cores, as consumed by the
    total-order broadcast service. A core runs at every broadcast-service
    member, accepts command proposals, and delivers decided commands in
    slot order, exactly once per slot. The broadcast service can be
    instantiated with either the Paxos Synod core ({!Paxos}) or the
    TwoThird core ({!Twothird_multi}) — the paper's modularity claim. *)

type loc = int

type ('c, 'm) action =
  | Send of loc * 'm  (** Emit a protocol message to another member. *)
  | Deliver of { s : int; c : 'c }
      (** Command decided in slot [s]; emitted in increasing slot order,
          exactly once per slot. *)
  | Set_timer of float  (** Request a {!tick} after the given delay. *)

module type S = sig
  type 'c msg
  (** Wire messages exchanged between core members. *)

  type 'c t

  val create : self:loc -> members:loc list -> 'c t
  (** A core member; [members] lists all of them, including [self]. *)

  val start : 'c t -> 'c t * ('c, 'c msg) action list
  (** Called once when the hosting node boots. *)

  val propose : 'c t -> 'c -> 'c t * ('c, 'c msg) action list
  (** Submit a command for ordering. *)

  val recv : 'c t -> src:loc -> 'c msg -> 'c t * ('c, 'c msg) action list

  val tick : 'c t -> 'c t * ('c, 'c msg) action list
  (** A previously requested timer fired (retransmission / backoff). *)

  val name : string
  (** Human-readable protocol name, for benches and traces. *)
end
