module M = Paxos_msg
module Slot_map = Map.Make (Int)
module Loc_set = Set.Make (Int)

type 'c action = Send of M.loc * 'c M.t | Set_timer of float

type 'c input = Start | Tick | Msg of 'c M.t

type 'c scout = { s_received : Loc_set.t; pvalues : 'c M.pvalue list }

type 'c commander = { c_received : Loc_set.t; pv : 'c M.pvalue }

type 'c t = {
  self : M.loc;
  acceptors : M.loc list;
  replicas : M.loc list;
  ballot : M.ballot;
  active : bool;
  proposals : 'c Slot_map.t;
  scout : 'c scout option;
  commanders : 'c commander Slot_map.t;
  backoff : float;
}

let initial_backoff = 0.05

let create ~self ~acceptors ~replicas =
  {
    self;
    acceptors;
    replicas;
    ballot = M.ballot_zero self;
    active = false;
    proposals = Slot_map.empty;
    scout = None;
    commanders = Slot_map.empty;
    backoff = initial_backoff;
  }

let is_active t = t.active

let ballot t = t.ballot

let majority t = (List.length t.acceptors / 2) + 1

let broadcast_acceptors t msg = List.map (fun a -> Send (a, msg)) t.acceptors

let spawn_scout t =
  let t = { t with scout = Some { s_received = Loc_set.empty; pvalues = [] } } in
  (t, broadcast_acceptors t (M.P1a { src = t.self; b = t.ballot }))

let spawn_commander t s c =
  let pv = { M.b = t.ballot; s; c } in
  let t =
    { t with commanders = Slot_map.add s { c_received = Loc_set.empty; pv } t.commanders }
  in
  (t, broadcast_acceptors t (M.P2a { src = t.self; pv }))

(* For each slot, the command of the highest-ballot accepted pvalue. *)
let pmax pvalues =
  List.fold_left
    (fun acc (pv : 'c M.pvalue) ->
      match Slot_map.find_opt pv.M.s acc with
      | Some (prev : 'c M.pvalue) when M.ballot_compare prev.M.b pv.M.b >= 0 ->
          acc
      | Some _ | None -> Slot_map.add pv.M.s pv acc)
    Slot_map.empty pvalues

let adopted t =
  let pvalues =
    match t.scout with Some s -> s.pvalues | None -> []
  in
  let winners = pmax pvalues in
  (* proposals ◁ pmax: accepted commands override our own proposals. *)
  let proposals =
    Slot_map.fold
      (fun s (pv : 'c M.pvalue) props -> Slot_map.add s pv.M.c props)
      winners t.proposals
  in
  let t =
    { t with scout = None; active = true; proposals; backoff = initial_backoff }
  in
  Slot_map.fold
    (fun s c (t, acts) ->
      let t, acts' = spawn_commander t s c in
      (t, acts @ acts'))
    t.proposals (t, [])

let preempted t (b' : M.ballot) =
  let t =
    {
      t with
      ballot = M.ballot_succ b' t.self;
      active = false;
      scout = None;
      commanders = Slot_map.empty;
      backoff = t.backoff *. 2.0;
    }
  in
  (t, [ Set_timer t.backoff ])

let step t input =
  match input with
  | Start -> spawn_scout t
  | Tick ->
      if (not t.active) && t.scout = None then spawn_scout t else (t, [])
  | Msg (M.Propose { s; c }) ->
      if Slot_map.mem s t.proposals then (t, [])
      else
        let t = { t with proposals = Slot_map.add s c t.proposals } in
        if t.active then spawn_commander t s c else (t, [])
  | Msg (M.P1b { src; b; accepted }) -> (
      if M.ballot_compare b t.ballot > 0 then preempted t b
      else
        match t.scout with
        | Some sc when M.ballot_compare b t.ballot = 0 ->
            let sc =
              {
                s_received = Loc_set.add src sc.s_received;
                pvalues = accepted @ sc.pvalues;
              }
            in
            if Loc_set.cardinal sc.s_received >= majority t then
              adopted { t with scout = Some sc }
            else ({ t with scout = Some sc }, [])
        | Some _ | None -> (t, []))
  | Msg (M.P2b { src; b; s }) -> (
      if M.ballot_compare b t.ballot > 0 then preempted t b
      else
        match Slot_map.find_opt s t.commanders with
        | Some cmd when M.ballot_compare b cmd.pv.M.b = 0 ->
            let cmd = { cmd with c_received = Loc_set.add src cmd.c_received } in
            if Loc_set.cardinal cmd.c_received >= majority t then
              let t = { t with commanders = Slot_map.remove s t.commanders } in
              ( t,
                List.map
                  (fun r -> Send (r, M.Decision { s; c = cmd.pv.M.c }))
                  t.replicas )
            else
              ({ t with commanders = Slot_map.add s cmd t.commanders }, [])
        | Some _ | None -> (t, []))
  | Msg (M.P1a _ | M.P2a _ | M.Decision _) -> (t, [])
