(** The Paxos leader role (pure state machine), with the scout and
    commander sub-protocols embedded — the paper implements these with the
    LoE delegation combinator; here they are sub-records of the leader
    state, spawned per ballot and per slot respectively. *)

type 'c action =
  | Send of Paxos_msg.loc * 'c Paxos_msg.t
  | Set_timer of float
      (** Request a tick after the given delay (preemption backoff). *)

type 'c input =
  | Start  (** Begin scouting for leadership. *)
  | Tick  (** A requested timer fired. *)
  | Msg of 'c Paxos_msg.t

type 'c t

val create :
  self:Paxos_msg.loc ->
  acceptors:Paxos_msg.loc list ->
  replicas:Paxos_msg.loc list ->
  'c t
(** [replicas] are the destinations of [Decision] messages. *)

val is_active : 'c t -> bool
(** True after the scout's ballot was adopted by a majority. *)

val ballot : 'c t -> Paxos_msg.ballot

val step : 'c t -> 'c input -> 'c t * 'c action list
