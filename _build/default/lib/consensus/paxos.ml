module M = Paxos_msg

type 'c msg = 'c M.t

type 'c t = {
  self : Consensus_intf.loc;
  members : Consensus_intf.loc list;
  acceptor : 'c Acceptor.t;
  leader : 'c Leader.t;
  replica : 'c Replica.t;
}

let name = "paxos-synod"

let create ~self ~members =
  {
    self;
    members;
    acceptor = Acceptor.create ~self;
    leader = Leader.create ~self ~acceptors:members ~replicas:members;
    replica = Replica.create ~self ~leaders:members;
  }

let leader_active t = Leader.is_active t.leader

(* Dispatch one message to the role(s) that own it; returns the new state,
   further (dst, msg) sends, and high-level actions. *)
let local t (m : 'c M.t) =
  match m with
  | M.P1a _ | M.P2a _ ->
      let acceptor, replies = Acceptor.step t.acceptor m in
      ({ t with acceptor }, replies, [])
  | M.P1b _ | M.P2b _ | M.Propose _ ->
      let leader, acts = Leader.step t.leader (Leader.Msg m) in
      let sends, timers =
        List.partition_map
          (function
            | Leader.Send (dst, m) -> Left (dst, m)
            | Leader.Set_timer d -> Right (Consensus_intf.Set_timer d))
          acts
      in
      ({ t with leader }, sends, timers)
  | M.Decision _ ->
      let replica, acts = Replica.step t.replica (Replica.Msg m) in
      let sends, delivers =
        List.partition_map
          (function
            | Replica.Send (dst, m) -> Left (dst, m)
            | Replica.Perform { s; c } ->
                Right (Consensus_intf.Deliver { s; c }))
          acts
      in
      ({ t with replica }, sends, delivers)

(* Run local deliveries to a fixed point: messages addressed to self are
   processed in place (the co-located roles short-circuit the network). *)
let rec process t pending acts =
  match pending with
  | [] -> (t, List.rev acts)
  | (dst, m) :: rest ->
      if dst = t.self then begin
        let t, sends, high = local t m in
        process t (rest @ sends) (List.rev_append high acts)
      end
      else process t rest (Consensus_intf.Send (dst, m) :: acts)

let lift_leader t (leader, lacts) =
  let t = { t with leader } in
  let pending, high =
    List.partition_map
      (function
        | Leader.Send (dst, m) -> Left (dst, m)
        | Leader.Set_timer d -> Right (Consensus_intf.Set_timer d))
      lacts
  in
  let t, acts = process t pending [] in
  (t, high @ acts)

let lift_replica t (replica, racts) =
  let t = { t with replica } in
  let pending, high =
    List.partition_map
      (function
        | Replica.Send (dst, m) -> Left (dst, m)
        | Replica.Perform { s; c } -> Right (Consensus_intf.Deliver { s; c }))
      racts
  in
  let t, acts = process t pending [] in
  (t, high @ acts)

let start t =
  if t.self = List.fold_left min max_int t.members then
    lift_leader t (Leader.step t.leader Leader.Start)
  else (t, [])

let propose t c = lift_replica t (Replica.step t.replica (Replica.Request c))

let recv t ~src:_ m = process t [ (t.self, m) ] []

let tick t = lift_leader t (Leader.step t.leader Leader.Tick)
