(** Multi-decree Paxos Synod as a consensus core.

    Every member co-hosts the three PMMC roles (replica, acceptor,
    leader); messages addressed to the local node are short-circuited
    internally, mirroring the paper's co-located deployment of the
    broadcast service on three machines. The member with the smallest
    identifier scouts for leadership at start-up; preempted leaders back
    off and re-scout, so leadership survives crashes. *)

include Consensus_intf.S with type 'c msg = 'c Paxos_msg.t

val leader_active : 'c t -> bool
(** Whether the local leader role currently holds an adopted ballot. *)
