type loc = int

type ballot = { round : int; leader : loc }

let ballot_compare a b =
  match Int.compare a.round b.round with
  | 0 -> Int.compare a.leader b.leader
  | c -> c

let ballot_zero leader = { round = 0; leader }

let ballot_succ b self = { round = b.round + 1; leader = self }

let pp_ballot fmt b = Format.fprintf fmt "(%d,%d)" b.round b.leader

type 'c pvalue = { b : ballot; s : int; c : 'c }

type 'c t =
  | P1a of { src : loc; b : ballot }
  | P1b of { src : loc; b : ballot; accepted : 'c pvalue list }
  | P2a of { src : loc; pv : 'c pvalue }
  | P2b of { src : loc; b : ballot; s : int }
  | Propose of { s : int; c : 'c }
  | Decision of { s : int; c : 'c }

let pp pp_c fmt = function
  | P1a { src; b } -> Format.fprintf fmt "p1a[%d,%a]" src pp_ballot b
  | P1b { src; b; accepted } ->
      Format.fprintf fmt "p1b[%d,%a,|%d|]" src pp_ballot b
        (List.length accepted)
  | P2a { src; pv } ->
      Format.fprintf fmt "p2a[%d,%a,%d,%a]" src pp_ballot pv.b pv.s pp_c pv.c
  | P2b { src; b; s } -> Format.fprintf fmt "p2b[%d,%a,%d]" src pp_ballot b s
  | Propose { s; c } -> Format.fprintf fmt "propose[%d,%a]" s pp_c c
  | Decision { s; c } -> Format.fprintf fmt "decision[%d,%a]" s pp_c c
