(** Wire messages of the multi-decree Paxos Synod protocol, following the
    roles of "Paxos Made Moderately Complex" (the paper's informal source
    [20]): replicas, acceptors, and leaders with scout/commander
    sub-protocols. *)

type loc = int

type ballot = { round : int; leader : loc }
(** Ballots are lexicographically ordered (round, leader id); the leader
    component makes ballots of distinct leaders incomparable-proof. *)

val ballot_compare : ballot -> ballot -> int
val ballot_zero : loc -> ballot
val ballot_succ : ballot -> loc -> ballot
(** [ballot_succ b self] is the smallest ballot owned by [self] strictly
    greater than [b]. *)

val pp_ballot : Format.formatter -> ballot -> unit

type 'c pvalue = { b : ballot; s : int; c : 'c }
(** An accepted triple: ballot, slot, command. *)

type 'c t =
  | P1a of { src : loc; b : ballot }  (** Scout phase-1 request. *)
  | P1b of { src : loc; b : ballot; accepted : 'c pvalue list }
      (** Acceptor phase-1 reply: its current ballot and accepted set. *)
  | P2a of { src : loc; pv : 'c pvalue }  (** Commander phase-2 request. *)
  | P2b of { src : loc; b : ballot; s : int }
      (** Acceptor phase-2 reply. *)
  | Propose of { s : int; c : 'c }  (** Replica → leaders. *)
  | Decision of { s : int; c : 'c }  (** Commander → replicas. *)

val pp :
  (Format.formatter -> 'c -> unit) -> Format.formatter -> 'c t -> unit
