module M = Paxos_msg
module Slot_map = Map.Make (Int)

type 'c action = Send of M.loc * 'c M.t | Perform of { s : int; c : 'c }

type 'c input = Request of 'c | Msg of 'c M.t

type 'c t = {
  self : M.loc;
  leaders : M.loc list;
  slot_in : int;
  slot_out : int;
  requests : 'c list;  (* queued commands, oldest first *)
  proposals : 'c Slot_map.t;
  decisions : 'c Slot_map.t;
}

let window = 5

let create ~self ~leaders =
  {
    self;
    leaders;
    slot_in = 0;
    slot_out = 0;
    requests = [];
    proposals = Slot_map.empty;
    decisions = Slot_map.empty;
  }

let slot_out t = t.slot_out

let decisions t = Slot_map.bindings t.decisions

(* Assign queued requests to free slots within the window. *)
let rec propose t acts =
  if t.slot_in >= t.slot_out + window then (t, List.rev acts)
  else if Slot_map.mem t.slot_in t.decisions then
    propose { t with slot_in = t.slot_in + 1 } acts
  else
    match t.requests with
    | [] -> (t, List.rev acts)
    | c :: rest ->
        let sends =
          List.rev_map
            (fun l -> Send (l, M.Propose { s = t.slot_in; c }))
            t.leaders
        in
        propose
          {
            t with
            requests = rest;
            proposals = Slot_map.add t.slot_in c t.proposals;
            slot_in = t.slot_in + 1;
          }
          (sends @ acts)

(* Perform decided commands in slot order; a proposal of ours that lost
   its slot to a different command goes back on the request queue. *)
let rec perform t acts =
  match Slot_map.find_opt t.slot_out t.decisions with
  | None -> (t, acts)
  | Some c ->
      let t, acts =
        match Slot_map.find_opt t.slot_out t.proposals with
        | Some mine when mine <> c ->
            ({ t with requests = t.requests @ [ mine ] }, acts)
        | Some _ | None -> (t, acts)
      in
      let t =
        {
          t with
          proposals = Slot_map.remove t.slot_out t.proposals;
          slot_out = t.slot_out + 1;
        }
      in
      perform t (acts @ [ Perform { s = t.slot_out - 1; c } ])

let step t input =
  match input with
  | Request c ->
      let t = { t with requests = t.requests @ [ c ] } in
      propose t []
  | Msg (M.Decision { s; c }) ->
      if Slot_map.mem s t.decisions then (t, [])
      else
        let t = { t with decisions = Slot_map.add s c t.decisions } in
        let t, performs = perform t [] in
        let t, proposes = propose t [] in
        (t, performs @ proposes)
  | Msg (M.P1a _ | M.P1b _ | M.P2a _ | M.P2b _ | M.Propose _) -> (t, [])
