(** The Paxos replica role (pure state machine): assigns incoming commands
    to slots, proposes them to the leaders, and performs decided commands
    in slot order, re-proposing its own commands that lost their slot. *)

type 'c action =
  | Send of Paxos_msg.loc * 'c Paxos_msg.t
  | Perform of { s : int; c : 'c }
      (** Deliver the command decided in slot [s]; emitted in strictly
          increasing slot order, exactly once per slot. *)

type 'c input = Request of 'c | Msg of 'c Paxos_msg.t

type 'c t

val window : int
(** Maximum number of slots proposed ahead of the last performed slot. *)

val create : self:Paxos_msg.loc -> leaders:Paxos_msg.loc list -> 'c t

val slot_out : 'c t -> int
(** Next slot to perform (number of commands performed so far). *)

val decisions : 'c t -> (int * 'c) list
(** Known decisions, sorted by slot. *)

val step : 'c t -> 'c input -> 'c t * 'c action list
