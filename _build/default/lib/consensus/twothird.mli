(** TwoThird consensus: the leaderless, round-based, fully symmetric
    protocol the paper bases on the One-Third Rule algorithm (Charron-Bost
    & Schiper's Heard-Of model). Single decree; tolerates fewer than n/3
    crash failures.

    Each round every participant broadcasts its estimate; upon hearing
    from more than two thirds of the members it decides if a single value
    holds more than two thirds of all votes, and otherwise adopts the
    smallest most-frequent value and advances to the next round. *)

type loc = int

type 'v msg =
  | Vote of { round : int; value : 'v }
  | Decided of 'v
      (** Broadcast once upon deciding; laggards adopt it directly (and a
          decided member answers any vote with it), so decided members
          never advance rounds — the protocol quiesces. *)

type 'v input =
  | Propose of 'v  (** Local proposal (at most the first one counts). *)
  | Recv of { src : loc; msg : 'v msg }
  | Tick  (** Retransmit the current-round vote (liveness under loss). *)

type 'v action = Send of loc * 'v msg | Decide of 'v

type 'v t

val create : self:loc -> members:loc list -> 'v t
(** [members] must include [self]. *)

val round : 'v t -> int
val decided : 'v t -> 'v option
val estimate : 'v t -> 'v option

val step : 'v t -> 'v input -> 'v t * 'v action list
(** The [Decide] action is emitted exactly once, on the step where the
    decision is first reached; the protocol keeps voting afterwards so
    slower members can also decide. *)
