type 'c slot_msg = { slot : int; vote : 'c Twothird.msg }

type 'c msg = 'c slot_msg

module Slot_map = Map.Make (Int)

type 'c t = {
  self : Consensus_intf.loc;
  members : Consensus_intf.loc list;
  instances : 'c Twothird.t Slot_map.t;
  decided : 'c Slot_map.t;
  queue : 'c list;  (* commands not yet assigned to a slot *)
  outstanding : (int * 'c) option;  (* our in-flight proposal *)
  next_slot : int;
  slot_out : int;  (* next slot to deliver *)
}

let name = "twothird"

let create ~self ~members =
  {
    self;
    members;
    instances = Slot_map.empty;
    decided = Slot_map.empty;
    queue = [];
    outstanding = None;
    next_slot = 0;
    slot_out = 0;
  }

let undecided_slots t =
  Slot_map.fold
    (fun s _ acc -> if Slot_map.mem s t.decided then acc else s :: acc)
    t.instances []

let instance t s =
  match Slot_map.find_opt s t.instances with
  | Some inst -> inst
  | None -> Twothird.create ~self:t.self ~members:t.members

let lift_sends s acts =
  List.filter_map
    (function
      | Twothird.Send (dst, vote) ->
          Some (Consensus_intf.Send (dst, { slot = s; vote }))
      | Twothird.Decide _ -> None)
    acts

let decided_value acts =
  List.find_map
    (function Twothird.Decide v -> Some v | Twothird.Send _ -> None)
    acts

(* Feed one input to the instance of slot [s] and integrate the outcome:
   record decisions, release lost proposals back onto the queue, deliver
   in slot order, and keep proposing. *)
let rec feed t s input acc =
  let inst, acts = Twothird.step (instance t s) input in
  let t = { t with instances = Slot_map.add s inst t.instances } in
  let t = { t with next_slot = max t.next_slot (s + 1) } in
  let acc = acc @ lift_sends s acts in
  match decided_value acts with
  | None -> try_propose t acc
  | Some v ->
      let t = { t with decided = Slot_map.add s v t.decided } in
      let t =
        match t.outstanding with
        | Some (s', mine) when s' = s ->
            if mine = v then { t with outstanding = None }
            else { t with outstanding = None; queue = mine :: t.queue }
        | Some _ | None -> t
      in
      let t, delivers = deliver t [] in
      try_propose t (acc @ delivers)

and deliver t acc =
  match Slot_map.find_opt t.slot_out t.decided with
  | None -> (t, List.rev acc)
  | Some c ->
      let s = t.slot_out in
      deliver { t with slot_out = s + 1 } (Consensus_intf.Deliver { s; c } :: acc)

and try_propose t acc =
  match (t.outstanding, t.queue) with
  | Some _, _ | None, [] -> (t, acc)
  | None, c :: rest ->
      let s = t.next_slot in
      let t =
        {
          t with
          queue = rest;
          outstanding = Some (s, c);
          next_slot = s + 1;
        }
      in
      feed t s (Twothird.Propose c) acc

let start t = (t, [ Consensus_intf.Set_timer 0.05 ])

let propose t c = try_propose { t with queue = t.queue @ [ c ] } []

let recv t ~src { slot; vote } =
  feed t slot (Twothird.Recv { src; msg = vote }) []

(* Retransmit votes of all undecided instances, and re-arm the timer. *)
let tick t =
  let t, acts =
    List.fold_left
      (fun (t, acc) s -> feed t s Twothird.Tick acc)
      (t, []) (undecided_slots t)
  in
  (t, acts @ [ Consensus_intf.Set_timer 0.05 ])
