(** Multi-decree consensus core built from per-slot TwoThird instances.

    Commands are assigned to consecutive slots; a member whose command
    loses its slot to a competing proposal re-proposes it at the next free
    slot. This is the second consensus module of the paper's broadcast
    service (Sec. II-D: "the total order broadcast service can use both
    the TwoThird Consensus and the Paxos multi-decree Synod consensus
    modules"). *)

type 'c slot_msg = { slot : int; vote : 'c Twothird.msg }

include Consensus_intf.S with type 'c msg = 'c slot_msg

val undecided_slots : 'c t -> int list
(** Slots with a live (undecided) instance — retransmission targets. *)
