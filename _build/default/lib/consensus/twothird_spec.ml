(* The TwoThird consensus service as a constructive specification
   (event classes), corresponding to the paper's EventML TwoThird spec of
   Table I. The handlers delegate to the pure protocol core, so the
   compiled process and the reference state machine can be checked for
   trace equivalence (test/test_specs.ml). *)

module Message = Loe.Message
module Cls = Loe.Cls
module I = Consensus_intf

type command = string

type io = {
  propose : command Message.hdr;  (* client → member *)
  vote : (Message.loc * command Twothird_multi.slot_msg) Message.hdr;
  tick : unit Message.hdr;  (* delayed self-send: retransmission timer *)
  deliver : (int * command) Message.hdr;  (* member → learner *)
}

let declare_io () =
  {
    propose = Message.declare "propose";
    vote = Message.declare "vote";
    tick = Message.declare "tick";
    deliver = Message.declare "deliver";
  }

type event =
  | E_propose of command
  | E_vote of Message.loc * command Twothird_multi.slot_msg
  | E_tick

(* Map the core's actions to directed messages: sends go to peers, decided
   commands to the learner, timers become delayed self-sends (the [d]
   component of the paper's ILF). *)
let directed_of_action io slf learner = function
  | I.Send (dst, m) -> Message.send io.vote dst (slf, m)
  | I.Deliver { s; c } -> Message.send io.deliver learner (s, c)
  | I.Set_timer d -> Message.send_after io.tick d slf ()

let make ~locs ~learner =
  let io = declare_io () in
  let inputs =
    Cls.( ||| )
      (Cls.map (fun c -> E_propose c) (Cls.base io.propose))
      (Cls.( ||| )
         (Cls.map (fun (src, m) -> E_vote (src, m)) (Cls.base io.vote))
         (Cls.map (fun () -> E_tick) (Cls.base io.tick)))
  in
  let step slf event (core, _) =
    match event with
    | E_propose c -> Twothird_multi.propose core c
    | E_vote (src, m) -> Twothird_multi.recv core ~src m
    | E_tick ->
        ignore slf;
        Twothird_multi.tick core
  in
  let core_state =
    Cls.state "TwoThird"
      ~init:(fun slf -> (Twothird_multi.create ~self:slf ~members:locs, []))
      ~upd:step inputs
  in
  let emit slf _event (_, acts) =
    List.map (directed_of_action io slf learner) acts
  in
  let handler = Cls.o2 emit inputs core_state in
  (Loe.Spec.v ~name:"TwoThird" ~locs handler, io)
