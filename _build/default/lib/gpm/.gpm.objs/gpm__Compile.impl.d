lib/gpm/compile.ml: Loe Proc
