lib/gpm/compile.mli: Loe Proc
