lib/gpm/engine_profile.ml:
