lib/gpm/engine_profile.mli:
