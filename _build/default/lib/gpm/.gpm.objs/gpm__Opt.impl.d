lib/gpm/opt.ml: Array List Loe Obj Proc
