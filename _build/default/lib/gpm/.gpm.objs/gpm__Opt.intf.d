lib/gpm/opt.mli: Loe Proc
