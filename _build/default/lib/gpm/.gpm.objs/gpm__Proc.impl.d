lib/gpm/proc.ml: List
