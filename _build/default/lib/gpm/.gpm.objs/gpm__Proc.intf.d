lib/gpm/proc.mli:
