lib/gpm/runtime.ml: Compile Engine_profile Hashtbl List Loe Opt Printf Proc Sim
