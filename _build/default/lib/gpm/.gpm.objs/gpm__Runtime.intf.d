lib/gpm/runtime.mli: Engine_profile Loe Sim
