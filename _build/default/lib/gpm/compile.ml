module Cls = Loe.Cls
module Inst = Loe.Inst

let compile loc cls =
  let rec wrap inst =
    Proc.Run
      (fun msg ->
        let inst', outs = Inst.step loc inst msg in
        (wrap inst', outs))
  in
  wrap (Inst.create loc cls)

(* Weights count the runtime structure the tree backend builds per
   combinator: the instance node itself, its per-step closure, and the
   output-list cells it allocates. *)
let rec gpm_size : type a. a Cls.t -> int = function
  | Cls.Base _ -> 7
  | Cls.Const _ -> 4
  | Cls.Map (_, c) -> 6 + gpm_size c
  | Cls.Filter (_, c) -> 6 + gpm_size c
  | Cls.State { on; _ } -> 11 + gpm_size on
  | Cls.Compose2 (_, a, b) -> 13 + gpm_size a + gpm_size b
  | Cls.Compose3 (_, a, b, c) -> 17 + gpm_size a + gpm_size b + gpm_size c
  | Cls.Par (a, b) -> 7 + gpm_size a + gpm_size b
  | Cls.Once c -> 8 + gpm_size c
  | Cls.Delegate { trigger; _ } -> 13 + gpm_size trigger
