(** Compilation of event classes to GPM processes (unoptimized backend).

    The generated process interprets the combinator tree: each event walks
    the class structure, rebuilding instance nodes — faithful to the
    paper's description of generated GPM programs as "several nested
    recursive functions" before optimization. *)

val compile :
  Loe.Message.loc -> 'a Loe.Cls.t -> (Loe.Message.t, 'a) Proc.t
(** Compile a class for a location into a process over wire messages. *)

val gpm_size : 'a Loe.Cls.t -> int
(** "GPM prog" column of Table I: runtime cells and closures the
    unoptimized backend allocates for the program, counted per
    combinator. *)
