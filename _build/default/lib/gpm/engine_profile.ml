type t = Interpreted | Interpreted_opt | Compiled

(* Calibrated to the one-client delivery latencies of Fig. 8:
   122 / 8.8 ≈ 13.9 and 69.4 / 8.8 ≈ 7.9. *)
let cpu_factor = function
  | Interpreted -> 11.9
  | Interpreted_opt -> 7.36
  | Compiled -> 1.0

(* Calibrated to the saturation throughputs of Fig. 8 (27, 65 and 900
   delivered messages per second): the unoptimized interpreter is
   relatively worse on per-message data handling than on fixed per-event
   overhead, hence a separate factor. *)
let data_factor = function
  | Interpreted -> 41.0
  | Interpreted_opt -> 16.4
  | Compiled -> 1.0

let name = function
  | Interpreted -> "interpreted"
  | Interpreted_opt -> "interpreted-opt"
  | Compiled -> "compiled"

let all = [ Interpreted; Interpreted_opt; Compiled ]
