(** Execution engines for GPM programs.

    The paper runs the same Nuprl program in three environments — the SML
    interpreter, the SML interpreter on optimizer output, and the Lisp
    translation — differing (for performance purposes) in per-step CPU
    cost. In the simulator an engine is a CPU-cost multiplier applied to
    the protocol's base step costs, calibrated to the latency ratios the
    paper reports in Fig. 8 (122 ms : 69.4 ms : 8.8 ms at one client). *)

type t =
  | Interpreted  (** Tree-walking interpreter over the unoptimized program. *)
  | Interpreted_opt  (** Same interpreter over the optimizer's output. *)
  | Compiled  (** Translated to a compiled language (the paper's Lisp). *)

val cpu_factor : t -> float
(** Multiplier on fixed per-event CPU time relative to {!Compiled}
    (calibrated to the paper's one-client latencies). *)

val data_factor : t -> float
(** Multiplier on per-payload-entry CPU time relative to {!Compiled}
    (calibrated to the paper's saturation throughputs). *)

val name : t -> string
val all : t list
