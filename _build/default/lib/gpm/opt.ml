module Cls = Loe.Cls
module Message = Loe.Message

type stats = { slots : int; size : int }

type 'a node = { out : 'a list ref }

type plan = {
  loc : Message.loc;
  mutable actions : (Message.t -> unit) list;  (* reverse topological order *)
  mutable memo : (Obj.t * Obj.t) list;  (* class node -> 'a node, by identity *)
  mutable slots : int;
  mutable size : int;
}

type 'a machine = {
  step_actions : (Message.t -> unit) array;
  root : 'a node;
  machine_stats : stats;
}

(* Sharing: two occurrences of the physically same class node get one cell
   and one action — the common-subexpression elimination of the paper's
   optimizer. The [Obj.magic] is sound because physical equality of class
   nodes implies equality of their output types. *)
let rec build : type a. plan -> a Cls.t -> a node =
 fun plan c ->
  let key = Obj.repr c in
  match List.assq_opt key plan.memo with
  | Some n -> (Obj.obj n : a node)
  | None ->
      let node = build_fresh plan c in
      plan.memo <- (key, Obj.repr node) :: plan.memo;
      plan.slots <- plan.slots + 1;
      node

and build_fresh : type a. plan -> a Cls.t -> a node =
 fun plan c ->
  let emit weight action =
    plan.actions <- action :: plan.actions;
    plan.size <- plan.size + weight
  in
  match c with
  | Cls.Base h ->
      let out = ref [] in
      emit 3 (fun m ->
          out := match Message.recognize h m with Some v -> [ v ] | None -> []);
      { out }
  | Cls.Const (_, v) ->
      let out = ref [ v ] in
      plan.size <- plan.size + 2;
      { out }
  | Cls.Map (f, sub) ->
      let child = build plan sub in
      let out = ref [] in
      emit 3 (fun _ -> out := List.map f !(child.out));
      { out }
  | Cls.Filter (p, sub) ->
      let child = build plan sub in
      let out = ref [] in
      emit 3 (fun _ -> out := List.filter p !(child.out));
      { out }
  | Cls.State { init; upd; on; _ } ->
      let child = build plan on in
      let s = ref (init plan.loc) in
      let out = ref [ !s ] in
      emit 5 (fun _ ->
          let vs = !(child.out) in
          if vs <> [] then
            s := List.fold_left (fun s v -> upd plan.loc v s) !s vs;
          out := [ !s ]);
      { out }
  | Cls.Compose2 (f, a, b) ->
      let na = build plan a and nb = build plan b in
      let out = ref [] in
      emit 5 (fun _ ->
          out :=
            List.concat_map
              (fun x -> List.concat_map (fun y -> f plan.loc x y) !(nb.out))
              !(na.out));
      { out }
  | Cls.Compose3 (f, a, b, c) ->
      let na = build plan a and nb = build plan b and nc = build plan c in
      let out = ref [] in
      emit 6 (fun _ ->
          out :=
            List.concat_map
              (fun x ->
                List.concat_map
                  (fun y ->
                    List.concat_map (fun z -> f plan.loc x y z) !(nc.out))
                  !(nb.out))
              !(na.out));
      { out }
  | Cls.Par (a, b) ->
      let na = build plan a and nb = build plan b in
      let out = ref [] in
      emit 2 (fun _ -> out := !(na.out) @ !(nb.out));
      { out }
  | Cls.Once sub ->
      let child = build plan sub in
      let fired = ref false in
      let out = ref [] in
      emit 3 (fun _ ->
          if !fired then out := []
          else begin
            out := !(child.out);
            if !out <> [] then fired := true
          end);
      { out }
  | Cls.Delegate { trigger; spawn; _ } ->
      let nt = build plan trigger in
      let children : (Message.t -> a list) list ref = ref [] in
      let out = ref [] in
      emit 6 (fun m ->
          (* Existing children observe this event; newborn children begin
             at the next event. *)
          out := List.concat_map (fun child -> child m) !children;
          let newborn =
            List.map
              (fun v ->
                let sub = compile plan.loc (spawn plan.loc v) in
                fun m -> step sub m)
              !(nt.out)
          in
          children := !children @ newborn);
      { out }

and compile : type a. Message.loc -> a Cls.t -> a machine =
 fun loc c ->
  let plan = { loc; actions = []; memo = []; slots = 0; size = 0 } in
  let root = build plan c in
  {
    step_actions = Array.of_list (List.rev plan.actions);
    root;
    machine_stats = { slots = plan.slots; size = plan.size + plan.slots };
  }

and step : type a. a machine -> Message.t -> a list =
 fun m msg ->
  Array.iter (fun action -> action msg) m.step_actions;
  !(m.root.out)

let stats m = m.machine_stats

let to_proc loc c =
  let machine = compile loc c in
  let rec proc = Proc.Run (fun msg -> (proc, step machine msg)) in
  proc

let opt_size c = (stats (compile 0 c)).size
