(** The program optimizer: fused compilation of event classes.

    Mirrors the paper's Nuprl program transformer: the nested recursive
    functions of the tree backend are merged into a single flat step
    function over pre-allocated mutable cells, and common sub-classes
    (physically shared nodes of the class DAG) are evaluated once per event
    (common-subexpression elimination). Equivalence with the unoptimized
    backend is established by the bisimulation property test in
    [test/test_gpm.ml] — the paper's Fig. 7 proof. *)

type stats = {
  slots : int;  (** Distinct class nodes after sharing. *)
  size : int;  (** "opt. GPM prog" column of Table I. *)
}

type 'a machine
(** A fused, mutable machine producing outputs of type ['a]. *)

val compile : Loe.Message.loc -> 'a Loe.Cls.t -> 'a machine

val step : 'a machine -> Loe.Message.t -> 'a list
(** Process one event (mutates the machine). *)

val stats : 'a machine -> stats

val to_proc : Loe.Message.loc -> 'a Loe.Cls.t -> (Loe.Message.t, 'a) Proc.t
(** Package a fresh fused machine as a GPM process (the optimized program
    of the paper's Fig. 7). *)

val opt_size : 'a Loe.Cls.t -> int
(** Size of the optimized program without building a machine at a real
    location. *)
