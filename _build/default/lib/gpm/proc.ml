type ('i, 'o) t = Halt | Run of ('i -> ('i, 'o) t * 'o list)

let halt = Halt

let step t input =
  match t with Halt -> (Halt, []) | Run f -> f input

let run t inputs =
  let _, outs =
    List.fold_left
      (fun (t, acc) input ->
        let t', os = step t input in
        (t', os :: acc))
      (t, []) inputs
  in
  List.rev outs

let of_fun f = Run f

let stateful init f =
  let rec go s =
    Run
      (fun input ->
        let s', os = f s input in
        (go s', os))
  in
  go init
