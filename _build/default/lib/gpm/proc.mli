(** The General Process Model.

    A process is a (tail-recursive) function that consumes one input and
    returns the outputs produced at that input together with the process
    that replaces it — the paper's
    [let rec R(s) = run (λm. ... <R(s'), out>)] shape (Fig. 7). [Halt] is
    the halted process. *)

type ('i, 'o) t =
  | Halt
  | Run of ('i -> ('i, 'o) t * 'o list)
      (** One step: new process and outputs. *)

val halt : ('i, 'o) t

val step : ('i, 'o) t -> 'i -> ('i, 'o) t * 'o list
(** Feed one input; [Halt] consumes inputs and produces nothing. *)

val run : ('i, 'o) t -> 'i list -> 'o list list
(** Outputs at each input of a trace. *)

val of_fun : ('i -> ('i, 'o) t * 'o list) -> ('i, 'o) t

val stateful : 's -> ('s -> 'i -> 's * 'o list) -> ('i, 'o) t
(** Lift an explicit state machine into a process (the optimized shape the
    paper's program transformer produces). *)
