(** Deploying constructive specifications on the simulator.

    Turns [main Handler @ locs] into running nodes: each location hosts the
    compiled process; directed outputs with zero delay become network sends
    and delayed outputs become timers (delayed self-sends re-enter the
    local process, implementing EventML timers). *)

type world = Loe.Message.t Sim.Engine.t
(** A simulation world whose wire messages are LoE messages. *)

type backend =
  | Tree  (** Unoptimized compilation ({!Compile.compile}). *)
  | Fused  (** Optimized compilation ({!Opt.compile}). *)

val deploy :
  ?backend:backend ->
  ?profile:Engine_profile.t ->
  ?step_cost:float ->
  world ->
  n:int ->
  (Loe.Message.loc list -> Loe.Spec.t) ->
  Sim.Node_id.t list
(** [deploy world ~n make] spawns [n] nodes, builds the specification with
    their identifiers as locations ([make locs] must use exactly these
    locations), and installs the compiled process on each. [step_cost] is
    the base CPU seconds charged per event (default 0), scaled by the
    engine [profile] (default [Compiled]). Returns the node ids in
    location order. *)

val inject : world -> dst:Sim.Node_id.t -> Loe.Message.t -> unit
(** Send a message into the system from an external client location. *)
