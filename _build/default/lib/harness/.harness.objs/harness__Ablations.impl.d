lib/harness/ablations.ml: Baselines Broadcast Consensus Hashtbl List Shadowdb Sim Stats Storage Workload
