lib/harness/ablations.mli:
