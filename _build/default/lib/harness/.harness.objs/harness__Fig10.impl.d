lib/harness/fig10.ml: Array Consensus Hashtbl List Printf Shadowdb Sim Stats Storage Workload
