lib/harness/fig10.mli: Workload
