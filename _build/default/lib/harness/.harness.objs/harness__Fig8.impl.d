lib/harness/fig8.ml: Broadcast Consensus Gpm List Printf Sim Stats String
