lib/harness/fig8.mli: Broadcast Gpm
