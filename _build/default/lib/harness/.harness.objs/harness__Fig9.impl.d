lib/harness/fig9.ml: Baselines Consensus Hashtbl List Printf Shadowdb Sim Stats Storage Workload
