lib/harness/table1.ml: Broadcast Clocks Consensus Gpm List Loe Stats
