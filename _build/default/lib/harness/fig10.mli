(** Fig. 10: recovery behaviour of ShadowDB-PBR.

    (a) An execution in which the primary crashes: instantaneous committed
    throughput over time, with the recovery phases annotated (crash,
    detection after the configured timeout, reconfiguration + state
    transfer, client resumption).

    (b) The cost of state transfer between two replicas as a function of
    database size, for 16-byte (3-column) and 1-KB (4-column) rows, plus
    the TPC-C database. *)

type timeline = {
  bins : (float * float) list;  (** (time s, committed txns/s) per second. *)
  crash_at : float;
  detected_at : float;  (** First reconfiguration proposal. *)
  config_delivered_at : float;  (** New configuration delivery. *)
  resumed_at : float;  (** First commit after the crash. *)
}

val run_timeline :
  ?rows:int ->
  ?crash_at:float ->
  ?detect_timeout:float ->
  ?duration:float ->
  ?n_clients:int ->
  unit ->
  timeline

val print_timeline : timeline -> unit

type transfer = {
  rows : int;
  row_bytes : int;
  columns : int;
  seconds : float;  (** Virtual time to dump, ship and load the snapshot. *)
}

val run_transfer : rows:int -> wide:bool -> transfer
(** Bank table: [wide] selects 1-KB 4-column rows, otherwise 16-byte
    3-column rows. *)

val run_transfer_tpcc : ?scale:Workload.Tpcc.scale -> unit -> transfer

val run_transfers : ?quick:bool -> unit -> transfer list
(** The paper's sweep: 500 … 500,000 rows at both widths (capped at
    50,000 in [quick] mode), plus TPC-C. *)

val print_transfers : transfer list -> unit
