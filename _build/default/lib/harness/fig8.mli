(** Fig. 8: performance of the broadcast service with Paxos (f = 1).

    Closed-loop clients broadcast 140-byte messages; for each execution
    engine (interpreted, interpreted over the optimizer's output, and
    compiled) the harness sweeps the client count and reports delivered
    messages per second against mean delivery latency. *)

type point = {
  clients : int;
  throughput : float;  (** Delivered messages per second. *)
  latency_ms : float;  (** Mean broadcast→delivery latency. *)
}

val run_engine :
  ?costs:Broadcast.Shell.costs ->
  ?msgs_per_client:int ->
  ?clients:int list ->
  Gpm.Engine_profile.t ->
  point list
(** [costs] overrides the calibrated broadcast-service cost model (used by
    the calibration and ablation benches). *)

val run : ?quick:bool -> unit -> (Gpm.Engine_profile.t * point list) list
(** All three engines. [quick] (default true) uses fewer messages per
    client than the paper's 500/10,000. *)

val print : (Gpm.Engine_profile.t * point list) list -> unit
