(** Fig. 9: ShadowDB against conventional replicated databases.

    (a) the bank micro-benchmark (update transactions on 50,000 16-byte
    rows) and (b) TPC-C with one warehouse. For each system the harness
    sweeps closed-loop client counts and reports committed transactions
    per second against mean latency. *)

type system =
  | Shadow_pbr
  | Shadow_smr
  | H2_standalone
  | H2_repl
  | Mysql_repl

val system_name : system -> string

type point = {
  clients : int;
  throughput : float;  (** Committed transactions per second. *)
  latency_ms : float;
}

type bench = Micro | Tpcc

val run_system :
  ?quick:bool -> bench -> system -> clients:int list -> point list

val run : ?quick:bool -> bench -> (system * point list) list
(** All five systems on the micro-benchmark; H2-repl is included for
    TPC-C too (the paper omits its curve — it saturates at ≈62 tps). *)

val print : bench -> (system * point list) list -> unit
