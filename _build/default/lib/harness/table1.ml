type row = {
  name : string;
  spec_nodes : int;
  loe_nodes : int;
  gpm_nodes : int;
  opt_nodes : int;
  auto_props : int;
  manual_tests : int;
}

let measure name main ~auto_props ~manual_tests =
  {
    name;
    spec_nodes = Loe.Cls.size main;
    loe_nodes = Loe.Ilf.size (Loe.Ilf.of_cls ~name main);
    gpm_nodes = Gpm.Compile.gpm_size main;
    opt_nodes = Gpm.Opt.opt_size main;
    auto_props;
    manual_tests;
  }

(* The A/M counts index the qcheck properties and hand-written scenario
   tests covering each module in test/test_clocks.ml, test_consensus.ml,
   test_specs.ml and test_broadcast.ml. *)
let rows () =
  let locs = [ 0; 1; 2 ] in
  let clk = Clocks.Clk.make ~locs ~handle:(fun slf v -> (v + 1, slf)) in
  let tt, _ = Consensus.Twothird_spec.make ~locs ~learner:9 in
  let px, _ = Consensus.Paxos_spec.make ~locs ~learner:9 in
  let tob, _ = Broadcast.Tob_spec.make ~locs ~subscribers:[ 9 ] in
  [
    measure "CLK" clk.Clocks.Clk.spec.Loe.Spec.main ~auto_props:3
      ~manual_tests:4;
    measure "TwoThird Consensus" tt.Loe.Spec.main ~auto_props:5 ~manual_tests:2;
    measure "Paxos-Synod" px.Loe.Spec.main ~auto_props:3 ~manual_tests:12;
    measure "Broadcast Service" tob.Loe.Spec.main ~auto_props:1 ~manual_tests:7;
  ]

let print rows =
  Stats.Table.print_table
    ~title:
      "Table I — specification / LoE / GPM / optimized sizes (nodes) and \
       property counts"
    ~header:[ "module"; "EventML"; "LoE"; "GPM"; "opt. GPM"; "A"; "M" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.spec_nodes;
           string_of_int r.loe_nodes;
           string_of_int r.gpm_nodes;
           string_of_int r.opt_nodes;
           string_of_int r.auto_props;
           string_of_int r.manual_tests;
         ])
       rows)
