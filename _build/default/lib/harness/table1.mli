(** Table I: sizes of the constructive specifications, their Logic-of-
    Events forms, the generated GPM programs and the optimizer's output,
    together with the correctness-property counts.

    Sizes are measured on this reproduction's artifacts (the combinator
    DSL stands in for EventML, the inductive-logical-form generator for
    the Nuprl LoE translation, and the two compilation backends for the
    generated and optimized Nuprl programs), so absolute node counts are
    smaller than the paper's Nuprl ASTs; the orderings across the four
    modules are the reproducible signal. The paper's A/M columns count
    automatically vs manually proved lemmas; here they count the qcheck
    properties (automatic) and hand-written scenario tests (manual) that
    cover each module in [test/]. *)

type row = {
  name : string;
  spec_nodes : int;  (** EventML-spec column. *)
  loe_nodes : int;  (** LoE-spec column (ILF size). *)
  gpm_nodes : int;  (** Generated program. *)
  opt_nodes : int;  (** Optimized program. *)
  auto_props : int;  (** qcheck properties (the paper's "A"). *)
  manual_tests : int;  (** hand-written scenario tests (the paper's "M"). *)
}

val rows : unit -> row list
(** CLK, TwoThird Consensus, Paxos-Synod, Broadcast Service. *)

val print : row list -> unit
