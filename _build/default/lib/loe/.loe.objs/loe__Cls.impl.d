lib/loe/cls.ml: Message
