lib/loe/cls.mli: Message
