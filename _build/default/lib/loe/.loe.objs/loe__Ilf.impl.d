lib/loe/ilf.ml: Cls Format List Message Printf
