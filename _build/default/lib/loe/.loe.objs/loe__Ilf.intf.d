lib/loe/ilf.mli: Cls Format
