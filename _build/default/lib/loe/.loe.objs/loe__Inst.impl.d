lib/loe/inst.ml: Cls List Message
