lib/loe/inst.mli: Cls Message
