lib/loe/message.ml: String Univ
