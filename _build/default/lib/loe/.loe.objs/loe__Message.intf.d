lib/loe/message.mli: Univ
