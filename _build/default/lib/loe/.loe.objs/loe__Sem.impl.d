lib/loe/sem.ml: Array Cls List Message
