lib/loe/sem.mli: Cls Message
