lib/loe/spec.ml: Cls Ilf Message
