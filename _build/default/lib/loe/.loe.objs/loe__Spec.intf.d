lib/loe/spec.mli: Cls Ilf Message
