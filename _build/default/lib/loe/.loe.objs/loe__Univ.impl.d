lib/loe/univ.ml:
