lib/loe/univ.mli:
