type 'a t =
  | Base : 'a Message.hdr -> 'a t
  | Const : string * 'a -> 'a t
  | Map : ('a -> 'b) * 'a t -> 'b t
  | Filter : ('a -> bool) * 'a t -> 'a t
  | State : {
      name : string;
      init : Message.loc -> 's;
      upd : Message.loc -> 'a -> 's -> 's;
      on : 'a t;
    }
      -> 's t
  | Compose2 : (Message.loc -> 'a -> 'b -> 'c list) * 'a t * 'b t -> 'c t
  | Compose3 :
      (Message.loc -> 'a -> 'b -> 'c -> 'd list) * 'a t * 'b t * 'c t
      -> 'd t
  | Par : 'a t * 'a t -> 'a t
  | Once : 'a t -> 'a t
  | Delegate : {
      name : string;
      trigger : 'a t;
      spawn : Message.loc -> 'a -> 'b t;
    }
      -> 'b t

let base h = Base h
let const name v = Const (name, v)
let map f c = Map (f, c)
let filter p c = Filter (p, c)
let state name ~init ~upd on = State { name; init; upd; on }
let o2 f a b = Compose2 (f, a, b)
let o3 f a b c = Compose3 (f, a, b, c)
let ( ||| ) a b = Par (a, b)
let once c = Once c
let delegate name trigger spawn = Delegate { name; trigger; spawn }

(* Each combinator node counts 1 for itself plus 1 per opaque function or
   constant argument (handlers, initial states), plus its sub-classes. *)
let rec size : type a. a t -> int = function
  | Base _ -> 2
  | Const _ -> 2
  | Map (_, c) -> 2 + size c
  | Filter (_, c) -> 2 + size c
  | State { on; _ } -> 3 + size on
  | Compose2 (_, a, b) -> 2 + size a + size b
  | Compose3 (_, a, b, c) -> 2 + size a + size b + size c
  | Par (a, b) -> 1 + size a + size b
  | Once c -> 1 + size c
  | Delegate { trigger; _ } -> 2 + size trigger

let name_of : type a. a t -> string = function
  | Base h -> "base:" ^ Message.hdr_name h
  | Const (n, _) -> "const:" ^ n
  | Map _ -> "map"
  | Filter _ -> "filter"
  | State { name; _ } -> "state:" ^ name
  | Compose2 _ -> "o2"
  | Compose3 _ -> "o3"
  | Par _ -> "par"
  | Once _ -> "once"
  | Delegate { name; _ } -> "delegate:" ^ name
