(** Inductive Logical Form generation.

    Translates an event class into a first-order characterization of its
    outputs per event, in the style of the paper's Fig. 4: a formula of the
    shape [out ∈ C(e) ⇔ ...] whose right-hand side is produced by
    structural recursion, with [State] classes characterized inductively via
    [pred(e)] (Fig. 5). The formula is an artifact: it can be pretty-printed
    (the demo of Fig. 4) and its node count is the "LoE spec" column of
    Table I. *)

type formula =
  | True_
  | Atom of string
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Exists of string * formula
  | Forall of string * formula

val of_cls : name:string -> 'a Cls.t -> formula
(** Characterization of the outputs of the class: "[out ∈ name(e)] iff
    ...". *)

val size : formula -> int
(** Number of formula nodes. *)

val pp : Format.formatter -> formula -> unit
(** Multi-line pretty-printer in the visual style of the paper's Fig. 4. *)

val to_string : formula -> string
