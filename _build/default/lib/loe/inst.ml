type 'a t =
  | I_base : 'a Message.hdr -> 'a t
  | I_const : 'a -> 'a t
  | I_map : ('a -> 'b) * 'a t -> 'b t
  | I_filter : ('a -> bool) * 'a t -> 'a t
  | I_state : 's * (Message.loc -> 'a -> 's -> 's) * 'a t -> 's t
  | I_compose2 : (Message.loc -> 'a -> 'b -> 'c list) * 'a t * 'b t -> 'c t
  | I_compose3 :
      (Message.loc -> 'a -> 'b -> 'c -> 'd list) * 'a t * 'b t * 'c t
      -> 'd t
  | I_par : 'a t * 'a t -> 'a t
  | I_once : bool * 'a t -> 'a t
  | I_delegate : (Message.loc -> 'a -> 'b Cls.t) * 'a t * 'b t list -> 'b t

let rec create : type a. Message.loc -> a Cls.t -> a t =
 fun loc c ->
  match c with
  | Cls.Base h -> I_base h
  | Cls.Const (_, v) -> I_const v
  | Cls.Map (f, c) -> I_map (f, create loc c)
  | Cls.Filter (p, c) -> I_filter (p, create loc c)
  | Cls.State { init; upd; on; _ } -> I_state (init loc, upd, create loc on)
  | Cls.Compose2 (f, a, b) -> I_compose2 (f, create loc a, create loc b)
  | Cls.Compose3 (f, a, b, c) ->
      I_compose3 (f, create loc a, create loc b, create loc c)
  | Cls.Par (a, b) -> I_par (create loc a, create loc b)
  | Cls.Once c -> I_once (false, create loc c)
  | Cls.Delegate { trigger; spawn; _ } ->
      I_delegate (spawn, create loc trigger, [])

let rec step : type a. Message.loc -> a t -> Message.t -> a t * a list =
 fun loc inst m ->
  match inst with
  | I_base h -> (
      match Message.recognize h m with
      | Some v -> (inst, [ v ])
      | None -> (inst, []))
  | I_const v -> (inst, [ v ])
  | I_map (f, c) ->
      let c', vs = step loc c m in
      (I_map (f, c'), List.map f vs)
  | I_filter (p, c) ->
      let c', vs = step loc c m in
      (I_filter (p, c'), List.filter p vs)
  | I_state (s, upd, on) ->
      let on', vs = step loc on m in
      let s' = List.fold_left (fun s v -> upd loc v s) s vs in
      (I_state (s', upd, on'), [ s' ])
  | I_compose2 (f, a, b) ->
      let a', xs = step loc a m in
      let b', ys = step loc b m in
      let out =
        List.concat_map (fun x -> List.concat_map (fun y -> f loc x y) ys) xs
      in
      (I_compose2 (f, a', b'), out)
  | I_compose3 (f, a, b, c) ->
      let a', xs = step loc a m in
      let b', ys = step loc b m in
      let c', zs = step loc c m in
      let out =
        List.concat_map
          (fun x ->
            List.concat_map
              (fun y -> List.concat_map (fun z -> f loc x y z) zs)
              ys)
          xs
      in
      (I_compose3 (f, a', b', c'), out)
  | I_par (a, b) ->
      let a', xs = step loc a m in
      let b', ys = step loc b m in
      (I_par (a', b'), xs @ ys)
  | I_once (fired, c) ->
      let c', vs = step loc c m in
      if fired then (I_once (true, c'), [])
      else (I_once (vs <> [], c'), vs)
  | I_delegate (spawn, trigger, children) ->
      let trigger', vs = step loc trigger m in
      (* Existing children observe the current event; newborn children only
         observe subsequent events. *)
      let stepped = List.map (fun child -> step loc child m) children in
      let children' = List.map fst stepped in
      let outputs = List.concat_map snd stepped in
      let newborn = List.map (fun v -> create loc (spawn loc v)) vs in
      (I_delegate (spawn, trigger', children' @ newborn), outputs)

let run loc c trace =
  let inst = create loc c in
  let _, outs =
    List.fold_left
      (fun (inst, acc) m ->
        let inst', vs = step loc inst m in
        (inst', vs :: acc))
      (inst, []) trace
  in
  List.rev outs
