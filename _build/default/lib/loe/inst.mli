(** Incremental runtime instances of event classes.

    An instance is a class plus its accumulated state; stepping it with a
    message yields the next instance and the outputs at that event. This is
    the operational reading of a class, and the basis of GPM compilation;
    it is checked against the independent prefix-based denotation
    ({!Sem.eval}) by property tests — the paper's automatic proof that the
    generated program complies with its LoE specification. *)

type 'a t
(** An instance producing outputs of type ['a]. *)

val create : Message.loc -> 'a Cls.t -> 'a t
(** Initial instance of a class at a location. *)

val step : Message.loc -> 'a t -> Message.t -> 'a t * 'a list
(** Process one event: the arrival of a message at the location. *)

val run : Message.loc -> 'a Cls.t -> Message.t list -> 'a list list
(** Outputs at each event of a local trace, by iterated {!step}. *)
