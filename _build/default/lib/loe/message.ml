type loc = int

type t = { hdr : string; body : Univ.t }

type 'a hdr = { name : string; key : 'a Univ.key }

type directed = { delay : float; dst : loc; msg : t }

let declare name = { name; key = Univ.key name }

let hdr_name h = h.name

let make h v = { hdr = h.name; body = Univ.inj h.key v }

let recognize h m = if String.equal m.hdr h.name then Univ.prj h.key m.body else None

let send h dst v = { delay = 0.0; dst; msg = make h v }

let send_after h delay dst v = { delay; dst; msg = make h v }
