(** Messages of the Logic of Events.

    A message is a string header plus a dynamically typed body. Declaring a
    header (the paper's [internal msg : T] line) yields both the typed
    recognizer used by base classes and the [msg'send] constructor for
    directed output messages. *)

type loc = int
(** Locations are the simulator's node identifiers. *)

type t = { hdr : string; body : Univ.t }
(** A wire message. *)

type 'a hdr
(** A declared header carrying bodies of type ['a]. *)

type directed = { delay : float; dst : loc; msg : t }
(** An output instruction: send [msg] to [dst] after [delay] seconds (the
    delay component [d] of the paper's Inductive Logical Form; delayed
    self-sends implement timers). *)

val declare : string -> 'a hdr
(** Declare a header name with its body type. Distinct declarations are
    distinct recognizers even under equal names. *)

val hdr_name : 'a hdr -> string
val make : 'a hdr -> 'a -> t
(** Build a wire message. *)

val recognize : 'a hdr -> t -> 'a option
(** Typed projection: [Some body] iff the header matches this declaration. *)

val send : 'a hdr -> loc -> 'a -> directed
(** [send h dst v] is the paper's [msg'send dst v]: an immediate directed
    message. *)

val send_after : 'a hdr -> float -> loc -> 'a -> directed
(** Directed message with a delivery delay (timer encoding). *)
