(* The value of a [State] class at event [i]: fold the update function over
   the sub-class outputs at events [0..i], starting from the initial state.
   This is the closed-form of the paper's Fig. 5 recursive characterization. *)
let rec state_value :
    type s a.
    Message.loc ->
    s ->
    (Message.loc -> a -> s -> s) ->
    a Cls.t ->
    Message.t array ->
    int ->
    s =
 fun loc init upd on trace i ->
  let prev =
    if i = 0 then init else state_value loc init upd on trace (i - 1)
  in
  List.fold_left (fun s v -> upd loc v s) prev (at loc on trace i)

and at : type a. Message.loc -> a Cls.t -> Message.t array -> int -> a list =
 fun loc c trace i ->
  match c with
  | Cls.Base h -> (
      match Message.recognize h trace.(i) with
      | Some v -> [ v ]
      | None -> [])
  | Cls.Const (_, v) -> [ v ]
  | Cls.Map (f, c) -> List.map f (at loc c trace i)
  | Cls.Filter (p, c) -> List.filter p (at loc c trace i)
  | Cls.State { init; upd; on; _ } ->
      [ state_value loc (init loc) upd on trace i ]
  | Cls.Compose2 (f, a, b) ->
      let xs = at loc a trace i and ys = at loc b trace i in
      List.concat_map (fun x -> List.concat_map (fun y -> f loc x y) ys) xs
  | Cls.Compose3 (f, a, b, c) ->
      let xs = at loc a trace i
      and ys = at loc b trace i
      and zs = at loc c trace i in
      List.concat_map
        (fun x ->
          List.concat_map
            (fun y -> List.concat_map (fun z -> f loc x y z) zs)
            ys)
        xs
  | Cls.Par (a, b) -> at loc a trace i @ at loc b trace i
  | Cls.Once c ->
      let fired_before =
        let rec check j = j < i && (at loc c trace j <> [] || check (j + 1)) in
        check 0
      in
      if fired_before then [] else at loc c trace i
  | Cls.Delegate { trigger; spawn; _ } ->
      (* A child spawned by a trigger output at event [j] observes the
         suffix of the trace starting at [j + 1]; its outputs at global
         event [i] are its outputs at local event [i - j - 1]. *)
      let outputs_of_child j v =
        let child = spawn loc v in
        let suffix = Array.sub trace (j + 1) (Array.length trace - j - 1) in
        at loc child suffix (i - j - 1)
      in
      let rec collect j acc =
        if j >= i then List.concat (List.rev acc)
        else
          let spawned = at loc trigger trace j in
          let outs = List.concat_map (outputs_of_child j) spawned in
          collect (j + 1) (outs :: acc)
      in
      collect 0 []

let eval loc c trace =
  let arr = Array.of_list trace in
  List.init (Array.length arr) (at loc c arr)
