(** Prefix-based denotational semantics of event classes — the Logic of
    Events reading.

    [eval] computes the outputs of a class at each event of a local trace by
    structural recursion on the class and induction on the causal order
    (event index), exactly in the style of the paper's Inductive Logical
    Form: the value of a [State] class at event [e] is defined in terms of
    the events preceding [e] (Fig. 5). It deliberately shares no code with
    the incremental stepper {!Inst}, so that trace equivalence between the
    two is a meaningful machine-checked property (the paper's proof that
    generated programs comply with their LoE specification). *)

val at : Message.loc -> 'a Cls.t -> Message.t array -> int -> 'a list
(** [at loc c trace i] is the bag of outputs of class [c] at the [i]-th
    event of the trace observed at [loc]. *)

val eval : Message.loc -> 'a Cls.t -> Message.t list -> 'a list list
(** Outputs at every event of the trace, via {!at}. *)
