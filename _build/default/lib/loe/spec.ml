type t = {
  name : string;
  locs : Message.loc list;
  main : Message.directed Cls.t;
}

let v ~name ~locs main = { name; locs; main }

let spec_size t = Cls.size t.main

let ilf t = Ilf.of_cls ~name:t.name t.main

let loe_size t = Ilf.size (ilf t)
