(** Constructive specifications: a main class deployed at locations.

    The paper's [main Handler @ locs] declaration. A specification's main
    class outputs {!Message.directed} send instructions; the runtimes in
    [lib/gpm] turn one of these into a running distributed system. *)

type t = {
  name : string;
  locs : Message.loc list;  (** Locations the main class runs at. *)
  main : Message.directed Cls.t;  (** The deployed event class. *)
}

val v : name:string -> locs:Message.loc list -> Message.directed Cls.t -> t

val spec_size : t -> int
(** "EventML spec" column of Table I: AST nodes of the main class. *)

val loe_size : t -> int
(** "LoE spec" column of Table I: nodes of the generated inductive logical
    form. *)

val ilf : t -> Ilf.formula
(** The specification's inductive logical form. *)
