type t = exn

type 'a key = { name : string; inj : 'a -> t; prj : t -> 'a option }

let key (type a) name : a key =
  let module M = struct
    exception E of a
  end in
  {
    name;
    inj = (fun x -> M.E x);
    prj = (function M.E x -> Some x | _ -> None);
  }

let name k = k.name
let inj k v = k.inj v
let prj k u = k.prj u
