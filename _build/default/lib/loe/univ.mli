(** Universal type with typed injection/projection keys.

    Message bodies in the Logic of Events are dynamically tagged values;
    a ['a key] witnesses one body type, so base classes can recover the
    typed content of a message whose header they recognize (the paper's
    [msg'base] pattern matching). *)

type t
(** A value of some forgotten type. *)

type 'a key
(** Capability to inject and project values of type ['a]. *)

val key : string -> 'a key
(** [key name] mints a fresh key. Two calls return distinct keys even with
    equal names; the name is used only for diagnostics. *)

val name : 'a key -> string
val inj : 'a key -> 'a -> t
val prj : 'a key -> t -> 'a option
