lib/shadowdb/codec.ml: Buffer Config List Printf Result Storage String Txn
