lib/shadowdb/codec.mli: Config Storage Txn
