lib/shadowdb/config.ml: Format List String
