lib/shadowdb/config.mli: Format
