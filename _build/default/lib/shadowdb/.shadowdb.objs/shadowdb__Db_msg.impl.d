lib/shadowdb/db_msg.ml: Array List Storage Txn
