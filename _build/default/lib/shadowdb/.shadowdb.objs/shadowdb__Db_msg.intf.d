lib/shadowdb/db_msg.mli: Storage Txn
