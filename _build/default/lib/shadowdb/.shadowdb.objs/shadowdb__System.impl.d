lib/shadowdb/system.ml: Broadcast Codec Config Consensus Db_msg Gpm Hashtbl List Printf Sim Storage String Txn
