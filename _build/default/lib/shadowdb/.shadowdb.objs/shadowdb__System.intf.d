lib/shadowdb/system.mli: Broadcast Consensus Db_msg Gpm Sim Storage Txn
