lib/shadowdb/txn.ml: Array Hashtbl List Printexc Storage String
