lib/shadowdb/txn.mli: Storage
