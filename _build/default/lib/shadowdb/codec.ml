module Value = Storage.Value

let buf_add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode_value v =
  let buf = Buffer.create 16 in
  (match v with
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Int i ->
      Buffer.add_char buf 'I';
      buf_add_str buf (string_of_int i)
  | Value.Float f ->
      Buffer.add_char buf 'F';
      buf_add_str buf (Printf.sprintf "%h" f)
  | Value.Text s ->
      Buffer.add_char buf 'S';
      buf_add_str buf s
  | Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'U'));
  Buffer.contents buf

(* Parse "<len>:<bytes>" at the head of [s]; return (bytes, rest). *)
let take_str s =
  match String.index_opt s ':' with
  | None -> Error "missing length prefix"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> Error "bad length prefix"
      | Some len ->
          if String.length s < i + 1 + len then Error "truncated input"
          else
            Ok
              ( String.sub s (i + 1) len,
                String.sub s (i + 1 + len) (String.length s - i - 1 - len) ))

let decode_value s =
  if s = "" then Error "empty value input"
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'N' -> Ok (Value.Null, rest)
    | 'T' -> Ok (Value.Bool true, rest)
    | 'U' -> Ok (Value.Bool false, rest)
    | 'I' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> (
            match int_of_string_opt body with
            | Some i -> Ok (Value.Int i, rest)
            | None -> Error "bad int"))
    | 'F' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> (
            match float_of_string_opt body with
            | Some f -> Ok (Value.Float f, rest)
            | None -> Error "bad float"))
    | 'S' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> Ok (Value.Text body, rest))
    | c -> Error (Printf.sprintf "bad value tag %C" c)

let encode_txn (t : Txn.t) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%d,%d," t.Txn.client t.Txn.seq);
  buf_add_str buf t.Txn.kind;
  Buffer.add_string buf (string_of_int (List.length t.Txn.params));
  Buffer.add_char buf ';';
  List.iter (fun v -> Buffer.add_string buf (encode_value v)) t.Txn.params;
  Buffer.contents buf

let decode_txn s =
  let ( let* ) = Result.bind in
  let int_until c s =
    match String.index_opt s c with
    | None -> Error "missing separator"
    | Some i -> (
        match int_of_string_opt (String.sub s 0 i) with
        | Some n -> Ok (n, String.sub s (i + 1) (String.length s - i - 1))
        | None -> Error "bad int field")
  in
  let* client, s = int_until ',' s in
  let* seq, s = int_until ',' s in
  let* kind, s = take_str s in
  let* nparams, s = int_until ';' s in
  let rec params n s acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* v, s = decode_value s in
      params (n - 1) s (v :: acc)
  in
  let* params = params nparams s [] in
  Ok { Txn.client; seq; kind; params }

let encode_config (c : Config.t) =
  Printf.sprintf "%d|%s" c.Config.seq
    (String.concat "," (List.map string_of_int c.Config.members))

let decode_config s =
  match String.index_opt s '|' with
  | None -> Error "bad config"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> Error "bad config seq"
      | Some seq ->
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          let members =
            if rest = "" then []
            else List.filter_map int_of_string_opt (String.split_on_char ',' rest)
          in
          Ok { Config.seq; members })

let encode_reconfig c ~last_seq ~proposer =
  Printf.sprintf "%d@%d@%s" last_seq proposer (encode_config c)

let decode_reconfig s =
  match String.split_on_char '@' s with
  | [ ls; pr; cfg ] -> (
      match (int_of_string_opt ls, int_of_string_opt pr, decode_config cfg) with
      | Some last_seq, Some proposer, Ok c -> Ok (c, last_seq, proposer)
      | _ -> Error "bad reconfig")
  | _ -> Error "bad reconfig shape"
