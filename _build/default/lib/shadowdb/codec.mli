(** Wire codecs: values, transactions, and group configurations to and
    from strings (the broadcast service carries opaque string payloads).
    Length-prefixed, so arbitrary text in values round-trips. *)

val encode_value : Storage.Value.t -> string
val decode_value : string -> (Storage.Value.t * string, string) result
(** Returns the value and the remaining input. *)

val encode_txn : Txn.t -> string
val decode_txn : string -> (Txn.t, string) result

val encode_config : Config.t -> string
val decode_config : string -> (Config.t, string) result

val encode_reconfig : Config.t -> last_seq:int -> proposer:int -> string
val decode_reconfig : string -> (Config.t * int * int, string) result
(** SMR reconfiguration request: new config, proposer's last executed
    sequence number, proposer location. *)
