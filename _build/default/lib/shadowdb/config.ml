type loc = int

type t = { seq : int; members : loc list }

let initial members = { seq = 0; members }

let next t ~remove ~add =
  {
    seq = t.seq + 1;
    members = List.filter (fun m -> not (List.mem m remove)) t.members @ add;
  }

let contains t l = List.mem l t.members

let equal a b = a.seq = b.seq && a.members = b.members

let pp fmt t =
  Format.fprintf fmt "cfg%d{%s}" t.seq
    (String.concat "," (List.map string_of_int t.members))
