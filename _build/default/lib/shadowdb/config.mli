(** Replica-group configurations.

    Each configuration is identified by a sequence number (the initial one
    is 0); transactions are tagged with it, and replicas only accept
    transactions matching their current configuration (paper Sec. III-A). *)

type loc = int

type t = {
  seq : int;
  members : loc list;  (** Database replicas of this configuration. *)
}

val initial : loc list -> t

val next : t -> remove:loc list -> add:loc list -> t
(** Successor configuration: drop the suspects, append replacements. *)

val contains : t -> loc -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
