type loc = int

type t =
  | Client_txn of Txn.t
  | Forward of { cfg : int; gseq : int; txn : Txn.t }
  | Ack of { cfg : int; gseq : int }
  | Reply of Txn.reply
  | Heartbeat of { cfg : int }
  | Elect of { cfg : int; last_seq : int }
  | Catchup of { cfg : int; txns : (int * Txn.t) list; upto : int }
  | Snapshot of {
      cfg : int;
      rows : (string * Storage.Value.t array) list;
      upto : int;
      last : bool;
      clients : Txn.reply list;
    }
  | Recovered of { cfg : int }
  | Snapshot_req of { cfg : int; from_seq : int }

let row_bytes row =
  Array.fold_left (fun a v -> a + Storage.Value.serialized_size v) 8 row

let size = function
  | Client_txn t -> Txn.size t
  | Forward { txn; _ } -> 16 + Txn.size txn
  | Ack _ -> 24
  | Reply r -> Txn.reply_size r
  | Heartbeat _ -> 16
  | Elect _ -> 24
  | Catchup { txns; _ } ->
      24 + List.fold_left (fun a (_, t) -> a + 8 + Txn.size t) 0 txns
  | Snapshot { rows; _ } ->
      32 + List.fold_left (fun a (_, r) -> a + row_bytes r) 0 rows
  | Recovered _ -> 16
  | Snapshot_req _ -> 24
