lib/sim/engine.ml: Array Hashtbl Heap List Net Node_id Prng Queue
