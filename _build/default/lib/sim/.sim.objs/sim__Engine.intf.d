lib/sim/engine.mli: Net Node_id Prng
