lib/sim/heap.mli:
