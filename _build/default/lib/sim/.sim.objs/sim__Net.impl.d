lib/sim/net.ml: Prng
