lib/sim/net.mli: Prng
