lib/sim/prng.mli:
