type 'm input =
  | Init
  | Recv of { src : Node_id.t; msg : 'm }
  | Timer of { id : int; tag : string }

type 'm effect_ =
  | E_send of { dst : Node_id.t; msg : 'm; size : int }
  | E_timer of { id : int; tag : string; delay : float }
  | E_cancel of int

type 'm node = {
  id : Node_id.t;
  name : string;
  factory : unit -> 'm handler;
  mutable handler : 'm handler;
  mutable alive : bool;
  mutable epoch : int;
  mutable processing : bool;
  mutable cpu_factor : float;
  queue : 'm input Queue.t;
}

and 'm handler = 'm ctx -> 'm input -> unit

and 'm ctx = {
  world : 'm t;
  node : 'm node;
  mutable charged : float;
  mutable effects : 'm effect_ list;
}

and 'm ev =
  | Ev_arrive of { dst : Node_id.t; epoch : int; input : 'm input }
  | Ev_done of { node : Node_id.t; epoch : int }
  | Ev_external of (unit -> unit)

and 'm t = {
  mutable now : float;
  mutable seq : int;
  heap : 'm ev Heap.t;
  rng : Prng.t;
  net : Net.t;
  mutable nodes : 'm node array;
  mutable node_count : int;
  link_last : (int * int, float) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable timer_seq : int;
  mutable processed : int;
  mutable trace_buf : (float * Node_id.t * string) list;
}

let fifo_epsilon = 1.0e-9

let create ?(seed = 1) ?(net = Net.lan) () =
  {
    now = 0.0;
    seq = 0;
    heap = Heap.create ();
    rng = Prng.create seed;
    net;
    nodes = [||];
    node_count = 0;
    link_last = Hashtbl.create 64;
    partitions = Hashtbl.create 16;
    cancelled = Hashtbl.create 64;
    timer_seq = 0;
    processed = 0;
    trace_buf = [];
  }

let now t = t.now
let rng t = t.rng
let events_processed t = t.processed

let schedule t time ev =
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time ~seq:t.seq ev

let node t id =
  assert (id >= 0 && id < t.node_count);
  t.nodes.(id)

let spawn t ~name ?(cpu_factor = 1.0) factory =
  let id = t.node_count in
  let n =
    {
      id;
      name;
      factory;
      handler = factory ();
      alive = true;
      epoch = 0;
      processing = false;
      cpu_factor;
      queue = Queue.create ();
    }
  in
  if Array.length t.nodes = t.node_count then begin
    let ncap = max 8 (2 * Array.length t.nodes) in
    let narr = Array.make ncap n in
    Array.blit t.nodes 0 narr 0 t.node_count;
    t.nodes <- narr
  end;
  t.nodes.(t.node_count) <- n;
  t.node_count <- t.node_count + 1;
  schedule t t.now (Ev_arrive { dst = id; epoch = n.epoch; input = Init });
  id

let is_alive t id = (node t id).alive

let link_key a b = if a < b then (a, b) else (b, a)

let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)
let partitioned t a b = Hashtbl.mem t.partitions (link_key a b)

(* Deliver a message leaving [src] at [depart] towards [dst], obeying the
   latency model, per-link FIFO order, loss and partitions. *)
let route t ~depart ~src ~dst ~size input =
  if partitioned t src dst then ()
  else if t.net.Net.loss > 0.0 && Prng.float t.rng < t.net.Net.loss then ()
  else begin
    let d = Net.delay t.net t.rng ~size in
    let arrive = depart +. d in
    let key = (src, dst) in
    let arrive =
      match Hashtbl.find_opt t.link_last key with
      | Some last when arrive <= last -> last +. fifo_epsilon
      | _ -> arrive
    in
    Hashtbl.replace t.link_last key arrive;
    let n = node t dst in
    schedule t arrive (Ev_arrive { dst; epoch = n.epoch; input })
  end

let apply_effect t n ~done_at = function
  | E_send { dst; msg; size } ->
      route t ~depart:done_at ~src:n.id ~dst ~size (Recv { src = n.id; msg })
  | E_timer { id; tag; delay } ->
      schedule t (done_at +. delay)
        (Ev_arrive { dst = n.id; epoch = n.epoch; input = Timer { id; tag } })
  | E_cancel id -> Hashtbl.replace t.cancelled id ()

let exec t n input =
  n.processing <- true;
  let ctx = { world = t; node = n; charged = 0.0; effects = [] } in
  n.handler ctx input;
  let cost = ctx.charged *. n.cpu_factor in
  let done_at = t.now +. cost in
  List.iter (apply_effect t n ~done_at) (List.rev ctx.effects);
  schedule t done_at (Ev_done { node = n.id; epoch = n.epoch })

let handle_arrival t n input =
  match input with
  | Timer { id; _ } when Hashtbl.mem t.cancelled id ->
      Hashtbl.remove t.cancelled id
  | Init | Recv _ | Timer _ ->
      if n.processing then Queue.push input n.queue else exec t n input

let dispatch t = function
  | Ev_external f -> f ()
  | Ev_arrive { dst; epoch; input } ->
      let n = node t dst in
      if n.alive && n.epoch = epoch then handle_arrival t n input
  | Ev_done { node = id; epoch } ->
      let n = node t id in
      if n.alive && n.epoch = epoch then begin
        n.processing <- false;
        match Queue.take_opt n.queue with
        | Some input -> exec t n input
        | None -> ()
      end

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, _, ev) ->
      t.now <- max t.now time;
      t.processed <- t.processed + 1;
      dispatch t ev;
      true

let run ?(until = infinity) ?(max_events = max_int) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some (time, _, _) when time > until -> continue := false
    | Some _ ->
        ignore (step t);
        decr budget
  done

let crash t id =
  let n = node t id in
  if n.alive then begin
    n.alive <- false;
    n.epoch <- n.epoch + 1;
    n.processing <- false;
    Queue.clear n.queue
  end

let restart t id =
  let n = node t id in
  if not n.alive then begin
    n.alive <- true;
    n.epoch <- n.epoch + 1;
    n.handler <- n.factory ();
    schedule t t.now (Ev_arrive { dst = id; epoch = n.epoch; input = Init })
  end

let send_external t ?(size = 64) ~src dst msg =
  route t ~depart:t.now ~src ~dst ~size (Recv { src; msg })

let at t time f = schedule t time (Ev_external f)

(* Handler-side operations. *)

let self ctx = ctx.node.id
let time ctx = ctx.world.now

let send ctx ?(size = 64) dst msg =
  ctx.effects <- E_send { dst; msg; size } :: ctx.effects

let set_timer ctx delay tag =
  let t = ctx.world in
  t.timer_seq <- t.timer_seq + 1;
  let id = t.timer_seq in
  ctx.effects <- E_timer { id; tag; delay } :: ctx.effects;
  id

let cancel_timer ctx id = ctx.effects <- E_cancel id :: ctx.effects

let charge ctx seconds = ctx.charged <- ctx.charged +. seconds

let random ctx = ctx.world.rng

let trace ctx line =
  let t = ctx.world in
  t.trace_buf <- (t.now, ctx.node.id, line) :: t.trace_buf

let get_trace t = List.rev t.trace_buf
