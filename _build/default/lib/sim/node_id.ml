type t = int

let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "n%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)
