(** Node identifiers.

    A node identifier is a small integer assigned by the engine at spawn
    time, paired (by the engine) with a human-readable name for traces. *)

type t = int
(** Identifiers are plain integers so protocol state machines can use them
    in maps and messages without depending on the engine. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
