type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let float t =
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1.0p-53

let uniform t x = float t *. x

let int t bound =
  assert (bound > 0);
  (* Rejection-free: fine for simulation purposes. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exp t mean = -.mean *. log1p (-.float t)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
