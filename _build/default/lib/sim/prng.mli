(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through an explicit
    [Prng.t] so that simulations are reproducible from a single seed; the
    global [Random] state is never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    subsequent streams are (statistically) independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val uniform : t -> float -> float
(** [uniform t x] is uniform in [\[0, x)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val exp : t -> float -> float
(** [exp t mean] samples an exponential distribution with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
