lib/stats/sample.ml: Array Stdlib
