lib/stats/sample.mli:
