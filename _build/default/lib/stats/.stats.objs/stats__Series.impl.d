lib/stats/series.ml: Hashtbl Option
