lib/stats/series.mli:
