lib/stats/table.ml: Float List Printf String
