lib/stats/table.mli:
