type t = {
  mutable arr : float array;
  mutable n : int;
  mutable sorted : bool;
}

let create () = { arr = [||]; n = 0; sorted = true }

let add t x =
  if t.n = Array.length t.arr then begin
    let cap = Stdlib.max 16 (2 * Array.length t.arr) in
    let narr = Array.make cap 0.0 in
    Array.blit t.arr 0 narr 0 t.n;
    t.arr <- narr
  end;
  t.arr.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- false

let count t = t.n
let is_empty t = t.n = 0

let sum t =
  let s = ref 0.0 in
  for i = 0 to t.n - 1 do
    s := !s +. t.arr.(i)
  done;
  !s

let mean t = if t.n = 0 then nan else sum t /. float_of_int t.n

let stddev t =
  if t.n = 0 then nan
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.n - 1 do
      let d = t.arr.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int t.n)
  end

let fold_minmax t f init =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let min t = if t.n = 0 then nan else fold_minmax t Stdlib.min infinity
let max t = if t.n = 0 then nan else fold_minmax t Stdlib.max neg_infinity

let ensure_sorted t =
  if not t.sorted then begin
    let a = Array.sub t.arr 0 t.n in
    Array.sort compare a;
    Array.blit a 0 t.arr 0 t.n;
    t.sorted <- true
  end

let percentile t p =
  if t.n = 0 then nan
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    t.arr.(idx)
  end

let median t = percentile t 50.0

let clear t =
  t.arr <- [||];
  t.n <- 0;
  t.sorted <- true
