(** Growable sample buffer with summary statistics.

    Collects float observations (latencies, sizes, ...) and answers
    mean / stddev / percentile queries. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation; [nan] when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], by nearest-rank on the sorted
    samples; [nan] when empty. *)

val median : t -> float
val sum : t -> float
val clear : t -> unit
