let fmt_f x =
  if Float.is_nan x then "-"
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x

let print_table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad (List.nth widths i) cell) row)
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (line row)) rows

let print_series ~title ~xlabel ~ylabel points =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "# %s  %s\n" xlabel ylabel;
  List.iter (fun (x, y) -> Printf.printf "%s  %s\n" (fmt_f x) (fmt_f y)) points
