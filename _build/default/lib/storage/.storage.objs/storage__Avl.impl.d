lib/storage/avl.ml:
