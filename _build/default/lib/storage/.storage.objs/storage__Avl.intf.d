lib/storage/avl.mli:
