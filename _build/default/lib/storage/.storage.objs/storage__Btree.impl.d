lib/storage/btree.ml: Array Printf
