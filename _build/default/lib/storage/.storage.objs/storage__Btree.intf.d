lib/storage/btree.mli:
