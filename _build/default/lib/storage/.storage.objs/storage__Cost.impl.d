lib/storage/cost.ml:
