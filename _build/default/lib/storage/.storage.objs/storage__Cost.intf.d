lib/storage/cost.mli:
