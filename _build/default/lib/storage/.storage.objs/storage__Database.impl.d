lib/storage/database.ml: Array Btree Cost Hashtbl List Option Printf Schema Store String Value
