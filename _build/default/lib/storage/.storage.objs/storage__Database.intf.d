lib/storage/database.mli: Schema Store Value
