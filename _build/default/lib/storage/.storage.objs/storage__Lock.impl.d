lib/storage/lock.ml: Hashtbl List Option Queue Store
