lib/storage/lock.mli: Store
