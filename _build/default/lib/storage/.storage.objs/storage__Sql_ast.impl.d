lib/storage/sql_ast.ml: Buffer Format List Printf String Value
