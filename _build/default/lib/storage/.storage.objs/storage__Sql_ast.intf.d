lib/storage/sql_ast.mli: Format Value
