lib/storage/sql_exec.ml: Array Database List Printf Schema Sql_ast Sql_parser String Value
