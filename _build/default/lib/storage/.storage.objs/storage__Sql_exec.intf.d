lib/storage/sql_exec.mli: Database Schema Sql_ast Value
