lib/storage/sql_lexer.mli: Format
