lib/storage/sql_parser.ml: Format List Printf Sql_ast Sql_lexer Value
