lib/storage/sql_parser.mli: Sql_ast
