lib/storage/store.ml: Avl Btree Cost Hashtbl List String Value
