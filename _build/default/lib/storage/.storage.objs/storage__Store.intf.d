lib/storage/store.mli: Cost Value
