lib/storage/value.ml: Format Stdlib String
