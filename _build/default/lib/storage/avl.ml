type ('k, 'v) node =
  | Empty
  | Node of { l : ('k, 'v) node; k : 'k; v : 'v; r : ('k, 'v) node; h : int }

type ('k, 'v) t = { cmp : 'k -> 'k -> int; root : ('k, 'v) node; size : int }

let create ~cmp = { cmp; root = Empty; size = 0 }

let cardinal t = t.size
let is_empty t = t.size = 0

let hgt = function Empty -> 0 | Node { h; _ } -> h

let mk l k v r =
  Node { l; k; v; r; h = 1 + max (hgt l) (hgt r) }

(* Rebalance a node whose children differ in height by at most 2. *)
let balance l k v r =
  let hl = hgt l and hr = hgt r in
  if hl > hr + 1 then
    match l with
    | Node { l = ll; k = lk; v = lv; r = lr; _ } when hgt ll >= hgt lr ->
        mk ll lk lv (mk lr k v r)
    | Node
        { l = ll; k = lk; v = lv; r = Node { l = lrl; k = lrk; v = lrv; r = lrr; _ }; _ } ->
        mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r)
    | _ -> assert false
  else if hr > hl + 1 then
    match r with
    | Node { l = rl; k = rk; v = rv; r = rr; _ } when hgt rr >= hgt rl ->
        mk (mk l k v rl) rk rv rr
    | Node
        { l = Node { l = rll; k = rlk; v = rlv; r = rlr; _ }; k = rk; v = rv; r = rr; _ } ->
        mk (mk l k v rll) rlk rlv (mk rlr rk rv rr)
    | _ -> assert false
  else mk l k v r

let find t key =
  let cmp = t.cmp in
  let rec go = function
    | Empty -> None
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c = 0 then Some v else if c < 0 then go l else go r
  in
  go t.root

let insert t key value =
  let cmp = t.cmp in
  let added = ref false in
  let rec go = function
    | Empty ->
        added := true;
        mk Empty key value Empty
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c = 0 then mk l key value r
        else if c < 0 then balance (go l) k v r
        else balance l k v (go r)
  in
  let root = go t.root in
  { t with root; size = (if !added then t.size + 1 else t.size) }

let rec min_node = function
  | Empty -> None
  | Node { l = Empty; k; v; _ } -> Some (k, v)
  | Node { l; _ } -> min_node l

let remove t key =
  let cmp = t.cmp in
  let removed = ref false in
  let rec go = function
    | Empty -> Empty
    | Node { l; k; v; r; _ } ->
        let c = cmp key k in
        if c < 0 then balance (go l) k v r
        else if c > 0 then balance l k v (go r)
        else begin
          removed := true;
          match (l, r) with
          | Empty, _ -> r
          | _, Empty -> l
          | _ -> (
              match min_node r with
              | Some (sk, sv) ->
                  let rec drop_min = function
                    | Empty -> assert false
                    | Node { l = Empty; r; _ } -> r
                    | Node { l; k; v; r; _ } -> balance (drop_min l) k v r
                  in
                  balance l sk sv (drop_min r)
              | None -> assert false)
        end
  in
  let root = go t.root in
  if !removed then { t with root; size = t.size - 1 } else t

let iter f t =
  let rec go = function
    | Empty -> ()
    | Node { l; k; v; r; _ } ->
        go l;
        f k v;
        go r
  in
  go t.root

let fold f t acc =
  let rec go node acc =
    match node with
    | Empty -> acc
    | Node { l; k; v; r; _ } -> go r (f k v (go l acc))
  in
  go t.root acc

let height t = hgt t.root

let check t =
  let cmp = t.cmp in
  let rec go = function
    | Empty -> Ok (0, 0)
    | Node { l; k; v = _; r; h } -> (
        match go l with
        | Error e -> Error e
        | Ok (hl, nl) -> (
            match go r with
            | Error e -> Error e
            | Ok (hr, nr) ->
                if h <> 1 + max hl hr then Error "stale height"
                else if abs (hl - hr) > 1 then Error "unbalanced"
                else if
                  (match max_key l with Some mk -> cmp mk k >= 0 | None -> false)
                  || match min_key r with Some mk -> cmp mk k <= 0 | None -> false
                then Error "unordered"
                else Ok (h, nl + nr + 1)))
  and max_key = function
    | Empty -> None
    | Node { r = Empty; k; _ } -> Some k
    | Node { r; _ } -> max_key r
  and min_key = function
    | Empty -> None
    | Node { l = Empty; k; _ } -> Some k
    | Node { l; _ } -> min_key l
  in
  match go t.root with
  | Error e -> Error e
  | Ok (_, n) -> if n = t.size then Ok () else Error "size mismatch"
