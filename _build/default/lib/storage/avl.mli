(** A from-scratch functional AVL tree — the ordered structure behind the
    "dogwood" backend (the reproduction's Apache Derby stand-in), kept
    deliberately different from the B+-tree for diversity. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
val cardinal : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool
val find : ('k, 'v) t -> 'k -> 'v option
val insert : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t
(** Insert or replace. *)

val remove : ('k, 'v) t -> 'k -> ('k, 'v) t
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Ascending key order. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val height : ('k, 'v) t -> int

val check : ('k, 'v) t -> (unit, string) result
(** Verify ordering and the AVL balance invariant. *)
