(* Functional B+-tree. Leaves hold the bindings; internal nodes hold
   separator keys with the weak invariant: every key in [children.(i)] is
   [< seps.(i)] and [>= seps.(i-1)] (separators may be stale lower bounds
   after deletions, as in textbook B+-trees). *)

let min_leaf = 7
let max_leaf = 15
let min_children = 8
let max_children = 16

type ('k, 'v) node =
  | Leaf of ('k * 'v) array
  | Node of ('k, 'v) node array * 'k array

type ('k, 'v) t = { cmp : 'k -> 'k -> int; root : ('k, 'v) node; size : int }

let create ~cmp = { cmp; root = Leaf [||]; size = 0 }

let is_empty t = t.size = 0
let cardinal t = t.size

(* Array edit helpers. *)

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - i - 1);
  out

let array_replace arr i x =
  let out = Array.copy arr in
  out.(i) <- x;
  out

(* Number of elements strictly below [k] in a sorted array (by [proj]). *)
let lower_bound cmp proj arr k =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp (proj arr.(mid)) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child index for key [k]: the first child whose separator exceeds [k]. *)
let child_index cmp seps k =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let rec find_node cmp node k =
  match node with
  | Leaf arr ->
      let i = lower_bound cmp fst arr k in
      if i < Array.length arr && cmp (fst arr.(i)) k = 0 then
        Some (snd arr.(i))
      else None
  | Node (children, seps) -> find_node cmp children.(child_index cmp seps k) k

let find t k = find_node t.cmp t.root k

(* Insertion. *)

type ('k, 'v) ins =
  | One of ('k, 'v) node
  | Split of ('k, 'v) node * 'k * ('k, 'v) node

let split_leaf arr =
  let n = Array.length arr in
  let mid = n / 2 in
  let left = Array.sub arr 0 mid and right = Array.sub arr mid (n - mid) in
  Split (Leaf left, fst right.(0), Leaf right)

let split_node children seps =
  let n = Array.length children in
  let mid = n / 2 in
  let lch = Array.sub children 0 mid in
  let rch = Array.sub children mid (n - mid) in
  let lsep = Array.sub seps 0 (mid - 1) in
  let rsep = Array.sub seps mid (Array.length seps - mid) in
  Split (Node (lch, lsep), seps.(mid - 1), Node (rch, rsep))

let rec insert_node cmp node k v =
  match node with
  | Leaf arr ->
      let i = lower_bound cmp fst arr k in
      if i < Array.length arr && cmp (fst arr.(i)) k = 0 then
        (One (Leaf (array_replace arr i (k, v))), false)
      else begin
        let arr = array_insert arr i (k, v) in
        let res =
          if Array.length arr > max_leaf then split_leaf arr else One (Leaf arr)
        in
        (res, true)
      end
  | Node (children, seps) -> (
      let i = child_index cmp seps k in
      let res, added = insert_node cmp children.(i) k v in
      match res with
      | One child -> (One (Node (array_replace children i child, seps)), added)
      | Split (l, s, r) ->
          let children = array_replace children i l in
          let children = array_insert children (i + 1) r in
          let seps = array_insert seps i s in
          let res =
            if Array.length children > max_children then
              split_node children seps
            else One (Node (children, seps))
          in
          (res, added))

let insert t k v =
  let res, added = insert_node t.cmp t.root k v in
  let root =
    match res with
    | One n -> n
    | Split (l, s, r) -> Node ([| l; r |], [| s |])
  in
  { t with root; size = (if added then t.size + 1 else t.size) }

(* Deletion. *)

let underflow = function
  | Leaf arr -> Array.length arr < min_leaf
  | Node (children, _) -> Array.length children < min_children

(* Rebalance child [i] of (children, seps), known to be underfull.
   Prefers borrowing; merges otherwise. Returns the fixed (children, seps). *)
let fix_child children seps i =
  let merge_leaves li ri =
    (* Merge children.(ri) into children.(li); the separator between them
       (index li) disappears. *)
    let merged =
      match (children.(li), children.(ri)) with
      | Leaf a, Leaf b -> Leaf (Array.append a b)
      | Node (ca, sa), Node (cb, sb) ->
          Node (Array.append ca cb, Array.concat [ sa; [| seps.(li) |]; sb ])
      | _ -> assert false
    in
    let children = array_replace children li merged in
    let children = array_remove children ri in
    let seps = array_remove seps li in
    (children, seps)
  in
  let can_lend = function
    | Leaf arr -> Array.length arr > min_leaf
    | Node (ch, _) -> Array.length ch > min_children
  in
  if i > 0 && can_lend children.(i - 1) then begin
    (* Borrow from the left sibling. *)
    match (children.(i - 1), children.(i)) with
    | Leaf l, Leaf c ->
        let n = Array.length l in
        let moved = l.(n - 1) in
        let children = array_replace children (i - 1) (Leaf (Array.sub l 0 (n - 1))) in
        let children = array_replace children i (Leaf (array_insert c 0 moved)) in
        let seps = array_replace seps (i - 1) (fst moved) in
        (children, seps)
    | Node (chl, sepl), Node (chc, sepc) ->
        let n = Array.length chl in
        let moved_child = chl.(n - 1) in
        let promoted = sepl.(Array.length sepl - 1) in
        let l' = Node (Array.sub chl 0 (n - 1), Array.sub sepl 0 (Array.length sepl - 1)) in
        let c' = Node (array_insert chc 0 moved_child, array_insert sepc 0 seps.(i - 1)) in
        let children = array_replace children (i - 1) l' in
        let children = array_replace children i c' in
        let seps = array_replace seps (i - 1) promoted in
        (children, seps)
    | _ -> assert false
  end
  else if i < Array.length children - 1 && can_lend children.(i + 1) then begin
    (* Borrow from the right sibling. *)
    match (children.(i), children.(i + 1)) with
    | Leaf c, Leaf r ->
        let moved = r.(0) in
        let r' = Leaf (array_remove r 0) in
        let c' = Leaf (Array.append c [| moved |]) in
        let children = array_replace children i c' in
        let children = array_replace children (i + 1) r' in
        let seps =
          array_replace seps i
            (match r' with Leaf arr -> fst arr.(0) | Node _ -> assert false)
        in
        (children, seps)
    | Node (chc, sepc), Node (chr, sepr) ->
        let moved_child = chr.(0) in
        let promoted = sepr.(0) in
        let c' = Node (Array.append chc [| moved_child |], Array.append sepc [| seps.(i) |]) in
        let r' = Node (array_remove chr 0, array_remove sepr 0) in
        let children = array_replace children i c' in
        let children = array_replace children (i + 1) r' in
        let seps = array_replace seps i promoted in
        (children, seps)
    | _ -> assert false
  end
  else if i > 0 then merge_leaves (i - 1) i
  else merge_leaves i (i + 1)

let rec remove_node cmp node k =
  match node with
  | Leaf arr ->
      let i = lower_bound cmp fst arr k in
      if i < Array.length arr && cmp (fst arr.(i)) k = 0 then
        (Leaf (array_remove arr i), true)
      else (node, false)
  | Node (children, seps) ->
      let i = child_index cmp seps k in
      let child, removed = remove_node cmp children.(i) k in
      if not removed then (node, false)
      else begin
        let children = array_replace children i child in
        if underflow child then
          let children, seps = fix_child children seps i in
          (Node (children, seps), true)
        else (Node (children, seps), true)
      end

let remove t k =
  let root, removed = remove_node t.cmp t.root k in
  if not removed then t
  else
    let root =
      match root with
      | Node ([| only |], [||]) -> only
      | Leaf _ | Node _ -> root
    in
    { t with root; size = t.size - 1 }

(* Traversal. *)

let rec iter_node f = function
  | Leaf arr -> Array.iter (fun (k, v) -> f k v) arr
  | Node (children, _) -> Array.iter (iter_node f) children

let iter f t = iter_node f t.root

let rec fold_node f node acc =
  match node with
  | Leaf arr -> Array.fold_left (fun acc (k, v) -> f k v acc) acc arr
  | Node (children, _) ->
      Array.fold_left (fun acc c -> fold_node f c acc) acc children

let fold f t acc = fold_node f t.root acc

let iter_range ~lo ~hi f t =
  let cmp = t.cmp in
  let above_lo k = match lo with None -> true | Some l -> cmp k l >= 0 in
  let below_hi k = match hi with None -> true | Some h -> cmp k h <= 0 in
  let rec go = function
    | Leaf arr ->
        Array.iter (fun (k, v) -> if above_lo k && below_hi k then f k v) arr
    | Node (children, seps) ->
        (* Skip subtrees wholly outside the range using separators. *)
        let n = Array.length children in
        for i = 0 to n - 1 do
          let could_have_lo =
            match lo with
            | None -> true
            | Some l -> i = n - 1 || cmp seps.(i) l > 0
          in
          let could_have_hi =
            match hi with
            | None -> true
            | Some h -> i = 0 || cmp seps.(i - 1) h <= 0
          in
          if could_have_lo && could_have_hi then go children.(i)
        done
  in
  go t.root

exception Stop

let iter_while ~lo f t =
  let cmp = t.cmp in
  let above_lo k = match lo with None -> true | Some l -> cmp k l >= 0 in
  let rec go = function
    | Leaf arr ->
        Array.iter
          (fun (k, v) -> if above_lo k then if not (f k v) then raise Stop)
          arr
    | Node (children, seps) ->
        let n = Array.length children in
        for i = 0 to n - 1 do
          let could_have_lo =
            match lo with
            | None -> true
            | Some l -> i = n - 1 || cmp seps.(i) l > 0
          in
          if could_have_lo then go children.(i)
        done
  in
  try go t.root with Stop -> ()

let rec min_node = function
  | Leaf [||] -> None
  | Leaf arr -> Some arr.(0)
  | Node (children, _) -> min_node children.(0)

let min_binding t = min_node t.root

let rec max_node = function
  | Leaf [||] -> None
  | Leaf arr -> Some arr.(Array.length arr - 1)
  | Node (children, _) -> max_node children.(Array.length children - 1)

let max_binding t = max_node t.root

let rec height_node = function
  | Leaf [||] -> 0
  | Leaf _ -> 1
  | Node (children, _) -> 1 + height_node children.(0)

let height t = height_node t.root

(* Invariant checking. *)

let check t =
  let cmp = t.cmp in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec sorted arr i =
    i + 1 >= Array.length arr
    || (cmp (fst arr.(i)) (fst arr.(i + 1)) < 0 && sorted arr (i + 1))
  in
  (* Returns (depth, count) on success; checks bounds [lo, hi). *)
  let rec go node ~root ~lo ~hi =
    match node with
    | Leaf arr ->
        if (not root) && Array.length arr < min_leaf then
          fail "leaf underfull (%d)" (Array.length arr)
        else if Array.length arr > max_leaf then fail "leaf overfull"
        else if not (sorted arr 0) then fail "leaf unsorted"
        else if
          not
            (Array.for_all
               (fun (k, _) ->
                 (match lo with None -> true | Some l -> cmp k l >= 0)
                 && match hi with None -> true | Some h -> cmp k h < 0)
               arr)
        then fail "leaf key out of bounds"
        else Ok (1, Array.length arr)
    | Node (children, seps) ->
        let nc = Array.length children in
        if nc <> Array.length seps + 1 then fail "child/sep arity"
        else if (not root) && nc < min_children then fail "node underfull"
        else if nc > max_children then fail "node overfull"
        else if root && nc < 2 then fail "root node with one child"
        else begin
          let result = ref (Ok (0, 0)) in
          let depth0 = ref None in
          let total = ref 0 in
          for i = 0 to nc - 1 do
            match !result with
            | Error _ -> ()
            | Ok _ -> (
                let lo_i = if i = 0 then lo else Some seps.(i - 1) in
                let hi_i = if i = nc - 1 then hi else Some seps.(i) in
                match go children.(i) ~root:false ~lo:lo_i ~hi:hi_i with
                | Error e -> result := Error e
                | Ok (d, c) -> (
                    total := !total + c;
                    match !depth0 with
                    | None -> depth0 := Some d
                    | Some d0 ->
                        if d0 <> d then result := fail "uneven leaf depth"))
          done;
          match !result with
          | Error e -> Error e
          | Ok _ -> Ok ((match !depth0 with Some d -> d + 1 | None -> 1), !total)
        end
  in
  match go t.root ~root:true ~lo:None ~hi:None with
  | Error e -> Error e
  | Ok (_, count) ->
      if count <> t.size then
        Error (Printf.sprintf "size mismatch: %d vs %d" count t.size)
      else Ok ()
