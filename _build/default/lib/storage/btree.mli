(** A from-scratch functional B+-tree.

    Values live in the leaves; internal nodes hold separator keys. Insert
    splits full nodes on the way up; delete rebalances by borrowing from or
    merging with siblings. This is the ordered storage backend behind the
    "hickory" database (the reproduction's HSQLDB stand-in) and the
    secondary-index structure. Invariants are enforced by {!check} and
    hammered by qcheck against a [Map] model in the test suite. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
val is_empty : ('k, 'v) t -> bool
val cardinal : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option

val insert : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) t
(** Insert or replace. *)

val remove : ('k, 'v) t -> 'k -> ('k, 'v) t
(** No-op if the key is absent. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** In ascending key order. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** In ascending key order. *)

val iter_range : lo:'k option -> hi:'k option -> ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Visit keys [k] with [lo ≤ k ≤ hi] (either bound may be open) in
    ascending order. *)

val iter_while : lo:'k option -> ('k -> 'v -> bool) -> ('k, 'v) t -> unit
(** Visit keys [≥ lo] in ascending order while the callback returns
    [true]; stops at the first [false] (early-exit range scans, as used by
    secondary-index equality lookups). *)

val min_binding : ('k, 'v) t -> ('k * 'v) option
val max_binding : ('k, 'v) t -> ('k * 'v) option

val height : ('k, 'v) t -> int
(** Tree height (leaves are height 1; empty tree is 0). *)

val check : ('k, 'v) t -> (unit, string) result
(** Verify structural invariants: key ordering, separator correctness,
    node occupancy bounds, and uniform leaf depth. *)
