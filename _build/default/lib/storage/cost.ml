type profile = {
  point_read : float;
  point_write : float;
  scan_row : float;
  txn_overhead : float;
}

(* Standalone H2 peaks at ≈6,400 update txns/s in Fig. 9(a); a deposit
   transaction is one read plus one write plus commit bookkeeping:
   0.05 + 0.065 + 0.04 ms ≈ 0.155 ms ⇒ ≈6,450 txns/s. *)
let hazel =
  {
    point_read = 4.2e-5;
    point_write = 5.5e-5;
    scan_row = 4.0e-7;
    txn_overhead = 2.5e-5;
  }

let hickory =
  {
    point_read = 6.0e-5;
    point_write = 8.0e-5;
    scan_row = 5.0e-7;
    txn_overhead = 3.0e-5;
  }

let dogwood =
  {
    point_read = 1.1e-4;
    point_write = 1.45e-4;
    scan_row = 7.0e-7;
    txn_overhead = 4.0e-5;
  }

(* Fit to Fig. 10(b): receiving-side row insertion is the bottleneck
   (≈45 µs per 16 B/3-column row, ≈139 µs per 1 KB/4-column row); the
   sending side serializes at a quarter of that and pipelines behind it. *)
let per_column = 13.3e-6
let per_byte = 8.0e-8

let row_weight ~columns ~bytes =
  3.7e-6 +. (per_column *. float_of_int columns)
  +. (per_byte *. float_of_int bytes)

let serialize_row ~columns ~bytes = 0.25 *. row_weight ~columns ~bytes

let bulk_insert_row ~columns ~bytes = row_weight ~columns ~bytes

let round_trips n rtt = float_of_int n *. rtt
