(** Virtual CPU-cost model of the storage engines.

    Calibrated against the paper's measurements: a standalone H2 sustains
    ≈6,400 micro-benchmark update transactions per second (Fig. 9(a)), and
    bulk state-transfer insertion runs at ≈45 µs per 16-byte 3-column row
    and ≈139 µs per 1 KB 4-column row (Fig. 10(b)), with serialization
    overhead proportional to the column count. *)

type profile = {
  point_read : float;  (** Key lookup. *)
  point_write : float;  (** Insert / update / delete by key. *)
  scan_row : float;  (** Per row visited in a scan. *)
  txn_overhead : float;  (** Begin/commit bookkeeping per transaction. *)
}

val hazel : profile
(** Hash backend (H2 stand-in, fastest point ops). *)

val hickory : profile
(** B+-tree backend (HSQLDB stand-in). *)

val dogwood : profile
(** AVL backend (Derby stand-in, slowest). *)

val serialize_row : columns:int -> bytes:int -> float
(** CPU seconds to serialize one row for the wire (state transfer). *)

val bulk_insert_row : columns:int -> bytes:int -> float
(** CPU seconds to insert one row at the receiving replica — the paper's
    state-transfer bottleneck. *)

val round_trips : int -> float -> float
(** [round_trips n rtt] — client-side latency spent on [n] protocol round
    trips (TPC-C transactions issue several per transaction). *)
