type granularity = Table_level | Row_level

type resource = string * Store.key option

type entry = { mutable holder : int; waiters : int Queue.t }

type t = {
  granularity : granularity;
  locks : (resource, entry) Hashtbl.t;
  held : (int, resource list) Hashtbl.t;  (* txn -> resources held *)
}

let create granularity =
  { granularity; locks = Hashtbl.create 64; held = Hashtbl.create 64 }

let granularity t = t.granularity

let resource t ~table ~key =
  match t.granularity with
  | Table_level -> (table, None)
  | Row_level -> (table, key)

let note_held t txn res =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
  Hashtbl.replace t.held txn (res :: cur)

let acquire t ~txn ~table ~key =
  let res = resource t ~table ~key in
  match Hashtbl.find_opt t.locks res with
  | None ->
      Hashtbl.replace t.locks res { holder = txn; waiters = Queue.create () };
      note_held t txn res;
      `Granted
  | Some entry when entry.holder = txn -> `Granted
  | Some entry ->
      Queue.push txn entry.waiters;
      `Queued

let release_all t ~txn =
  let resources = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
  Hashtbl.remove t.held txn;
  List.filter_map
    (fun res ->
      match Hashtbl.find_opt t.locks res with
      | Some entry when entry.holder = txn -> (
          match Queue.take_opt entry.waiters with
          | Some next ->
              entry.holder <- next;
              note_held t next res;
              Some next
          | None ->
              Hashtbl.remove t.locks res;
              None)
      | Some _ | None -> None)
    (List.rev resources)

let cancel t ~txn =
  Hashtbl.iter
    (fun _ entry ->
      let keep = Queue.create () in
      Queue.iter (fun w -> if w <> txn then Queue.push w keep) entry.waiters;
      Queue.clear entry.waiters;
      Queue.transfer keep entry.waiters)
    t.locks

let holds t ~txn =
  List.length (Option.value ~default:[] (Hashtbl.find_opt t.held txn))

let waiting t ~txn =
  Hashtbl.fold
    (fun _ entry acc ->
      acc || Queue.fold (fun acc w -> acc || w = txn) false entry.waiters)
    t.locks false
