(** Exclusive lock manager with configurable granularity.

    Models the locking behaviour that shapes the paper's baseline curves:
    H2 and the MySQL memory engine take table-level locks (throughput
    collapses under contention as lock waits time out), while InnoDB takes
    row-level locks. Waiters queue FIFO per resource; timeout-based aborts
    are driven by the caller in virtual time. *)

type granularity = Table_level | Row_level

type t

val create : granularity -> t

val granularity : t -> granularity

val acquire :
  t -> txn:int -> table:string -> key:Store.key option -> [ `Granted | `Queued ]
(** Request the lock covering the given row (or whole table when [key] is
    [None]; under [Table_level] every request covers the whole table).
    Re-acquiring a resource already held by [txn] is granted. *)

val release_all : t -> txn:int -> int list
(** Release every lock held by [txn] (commit or abort); returns the
    transactions that acquired a lock as a result, in grant order. *)

val cancel : t -> txn:int -> unit
(** Remove [txn] from every wait queue (timeout abort) without touching
    locks it already holds. *)

val holds : t -> txn:int -> int
(** Number of resources currently held. *)

val waiting : t -> txn:int -> bool
