(** Table schemas: ordered columns with types and a primary key. *)

type column = { name : string; ty : Value.ty }

type t = {
  table : string;
  columns : column list;
  pkey : int list;  (** Indices of the primary-key columns, in key order. *)
}

val v : table:string -> columns:(string * Value.ty) list -> pkey:string list -> t
(** Build a schema; raises [Invalid_argument] if a primary-key column is
    unknown or columns are duplicated. *)

val arity : t -> int
val column_index : t -> string -> int option
val column_ty : t -> int -> Value.ty

val check_row : t -> Value.t array -> (unit, string) result
(** Arity and per-column type check; primary-key columns must be
    non-NULL. *)

val key_of_row : t -> Value.t array -> Value.t list
(** Extract the primary-key values of a row. *)

val pp : Format.formatter -> t -> unit
