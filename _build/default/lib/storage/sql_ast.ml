type binop = Eq | Neq | Lt | Le | Gt | Ge | And | Or | Add | Sub | Mul

type expr =
  | Col of string
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Not of expr
  | Between of expr * expr * expr
  | In_list of expr * Value.t list

type order = Asc | Desc

type aggregate =
  | Count_star
  | Count of string
  | Sum of string
  | Min_of of string
  | Max_of of string
  | Avg of string

type projection = Star | Cols of string list | Aggregates of aggregate list

type stmt =
  | Create_table of {
      name : string;
      columns : (string * Value.ty) list;
      pkey : string list;
    }
  | Insert of {
      table : string;
      columns : string list option;
      values : expr list list;
    }
  | Select of {
      table : string;
      projection : projection;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }
  | Create_index of { table : string; column : string }
  | Begin
  | Commit
  | Rollback

let binop_str = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"

(* SQL-escaped literal printing: a quote inside TEXT doubles. *)
let pp_lit fmt = function
  | Value.Text s ->
      let buf = Buffer.create (String.length s + 2) in
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Format.fprintf fmt "'%s'" (Buffer.contents buf)
  | v -> Value.pp fmt v

let rec pp_expr fmt = function
  | Col c -> Format.fprintf fmt "%s" c
  | Lit v -> pp_lit fmt v
  | Binop (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Not e -> Format.fprintf fmt "(NOT %a)" pp_expr e
  | Between (e, lo, hi) ->
      Format.fprintf fmt "(%a BETWEEN %a AND %a)" pp_expr e pp_expr lo pp_expr hi
  | In_list (e, vs) ->
      Format.fprintf fmt "(%a IN (%s))" pp_expr e
        (String.concat ", " (List.map (Format.asprintf "%a" pp_lit) vs))

let aggregate_str = function
  | Count_star -> "COUNT(*)"
  | Count c -> Printf.sprintf "COUNT(%s)" c
  | Sum c -> Printf.sprintf "SUM(%s)" c
  | Min_of c -> Printf.sprintf "MIN(%s)" c
  | Max_of c -> Printf.sprintf "MAX(%s)" c
  | Avg c -> Printf.sprintf "AVG(%s)" c

let pp_where fmt = function
  | None -> ()
  | Some e -> Format.fprintf fmt " WHERE %a" pp_expr e

let pp fmt = function
  | Create_table { name; columns; pkey } ->
      Format.fprintf fmt "CREATE TABLE %s (%s, PRIMARY KEY (%s))" name
        (String.concat ", "
           (List.map
              (fun (c, ty) -> c ^ " " ^ Value.ty_to_string ty)
              columns))
        (String.concat ", " pkey)
  | Insert { table; columns; values } ->
      let cols =
        match columns with
        | None -> ""
        | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      in
      let tuple vs =
        "(" ^ String.concat ", " (List.map (Format.asprintf "%a" pp_expr) vs) ^ ")"
      in
      Format.fprintf fmt "INSERT INTO %s%s VALUES %s" table cols
        (String.concat ", " (List.map tuple values))
  | Select { table; projection; where; order_by; limit } ->
      let proj =
        match projection with
        | Star -> "*"
        | Cols cs -> String.concat ", " cs
        | Aggregates aggs -> String.concat ", " (List.map aggregate_str aggs)
      in
      Format.fprintf fmt "SELECT %s FROM %s%a" proj table pp_where where;
      (match order_by with
      | Some (c, Asc) -> Format.fprintf fmt " ORDER BY %s ASC" c
      | Some (c, Desc) -> Format.fprintf fmt " ORDER BY %s DESC" c
      | None -> ());
      (match limit with
      | Some n -> Format.fprintf fmt " LIMIT %d" n
      | None -> ())
  | Update { table; assignments; where } ->
      Format.fprintf fmt "UPDATE %s SET %s%a" table
        (String.concat ", "
           (List.map
              (fun (c, e) -> Format.asprintf "%s = %a" c pp_expr e)
              assignments))
        pp_where where
  | Delete { table; where } ->
      Format.fprintf fmt "DELETE FROM %s%a" table pp_where where
  | Create_index { table; column } ->
      Format.fprintf fmt "CREATE INDEX ON %s (%s)" table column
  | Begin -> Format.fprintf fmt "BEGIN"
  | Commit -> Format.fprintf fmt "COMMIT"
  | Rollback -> Format.fprintf fmt "ROLLBACK"

let to_string s = Format.asprintf "%a" pp s
