(** Abstract syntax of the SQL subset (the "JDBC" surface of the engine).

    Supported: CREATE TABLE with PRIMARY KEY, INSERT, SELECT with WHERE /
    ORDER BY / LIMIT, UPDATE, DELETE, BEGIN / COMMIT / ROLLBACK. *)

type binop =
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul

type expr =
  | Col of string
  | Lit of Value.t
  | Binop of binop * expr * expr
  | Not of expr
  | Between of expr * expr * expr  (** [e BETWEEN lo AND hi], inclusive. *)
  | In_list of expr * Value.t list  (** [e IN (v1, v2, ...)]. *)

type order = Asc | Desc

type aggregate =
  | Count_star
  | Count of string  (** Non-NULL values of the column. *)
  | Sum of string
  | Min_of of string
  | Max_of of string
  | Avg of string

type projection = Star | Cols of string list | Aggregates of aggregate list

type stmt =
  | Create_table of {
      name : string;
      columns : (string * Value.ty) list;
      pkey : string list;
    }
  | Insert of {
      table : string;
      columns : string list option;  (** [None] = schema order. *)
      values : expr list list;
    }
  | Select of {
      table : string;
      projection : projection;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }
  | Create_index of { table : string; column : string }
      (** [CREATE INDEX [name] ON table (column)] — the optional name is
          parsed and discarded. *)
  | Begin
  | Commit
  | Rollback

val aggregate_str : aggregate -> string
(** "COUNT(*)", "SUM(BALANCE)", ... — also used as result column names. *)

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> stmt -> unit
val to_string : stmt -> string
(** Prints back parseable SQL (round-trip tested). *)
