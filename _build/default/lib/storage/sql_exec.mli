(** Executor: runs parsed SQL statements against a {!Database.t}.

    Point lookups on the primary key are planned as direct key accesses;
    other predicates fall back to scans (charged per row). NULL compares
    as false except [NULL = NULL]. *)

type outcome =
  | Rows of { columns : string list; rows : Value.t array list }
  | Affected of int
  | Done

val exec : Database.t -> Sql_ast.stmt -> (outcome, string) result

val exec_sql : Database.t -> string -> (outcome, string) result
(** Parse then execute one statement. *)

val eval :
  schema:Schema.t -> Value.t array -> Sql_ast.expr -> (Value.t, string) result
(** Evaluate an expression against a row (exposed for tests). *)
