type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN | RPAREN | COMMA | SEMI | STAR | DOT
  | EQ | NEQ | LT | LE | GT | GE | PLUS | MINUS
  | EOF

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "%s" s
  | INT i -> Format.fprintf fmt "%d" i
  | FLOAT f -> Format.fprintf fmt "%g" f
  | STRING s -> Format.fprintf fmt "'%s'" s
  | LPAREN -> Format.fprintf fmt "("
  | RPAREN -> Format.fprintf fmt ")"
  | COMMA -> Format.fprintf fmt ","
  | SEMI -> Format.fprintf fmt ";"
  | STAR -> Format.fprintf fmt "*"
  | DOT -> Format.fprintf fmt "."
  | EQ -> Format.fprintf fmt "="
  | NEQ -> Format.fprintf fmt "<>"
  | LT -> Format.fprintf fmt "<"
  | LE -> Format.fprintf fmt "<="
  | GT -> Format.fprintf fmt ">"
  | GE -> Format.fprintf fmt ">="
  | PLUS -> Format.fprintf fmt "+"
  | MINUS -> Format.fprintf fmt "-"
  | EOF -> Format.fprintf fmt "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let error = ref None in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n && !error = None do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      push (IDENT (String.uppercase_ascii (String.sub src start (!i - start))))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if !closed then push (STRING (Buffer.contents buf))
      else error := Some "unterminated string literal"
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "<>" -> push NEQ; i := !i + 2
      | Some "!=" -> push NEQ; i := !i + 2
      | Some "<=" -> push LE; i := !i + 2
      | Some ">=" -> push GE; i := !i + 2
      | _ -> (
          (match c with
          | '(' -> push LPAREN
          | ')' -> push RPAREN
          | ',' -> push COMMA
          | ';' -> push SEMI
          | '*' -> push STAR
          | '.' -> push DOT
          | '=' -> push EQ
          | '<' -> push LT
          | '>' -> push GT
          | '+' -> push PLUS
          | '-' -> push MINUS
          | c ->
              error :=
                Some (Printf.sprintf "unexpected character %C at %d" c !i));
          incr i)
    end
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev (EOF :: !toks))
