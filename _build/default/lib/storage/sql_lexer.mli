(** Tokenizer for the SQL subset. *)

type token =
  | IDENT of string  (** Unquoted identifier or keyword, upper-cased. *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** Single-quoted, with [''] escaping a quote. *)
  | LPAREN | RPAREN | COMMA | SEMI | STAR | DOT
  | EQ | NEQ | LT | LE | GT | GE | PLUS | MINUS
  | EOF

val tokenize : string -> (token list, string) result
(** Errors report position and the offending character. *)

val pp_token : Format.formatter -> token -> unit
