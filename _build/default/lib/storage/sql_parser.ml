module L = Sql_lexer
module A = Sql_ast

exception Parse_error of string

type cursor = { mutable toks : L.token list }

let peek c = match c.toks with [] -> L.EOF | t :: _ -> t

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let next c =
  let t = peek c in
  advance c;
  t

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let expect c tok =
  let t = next c in
  if t <> tok then
    fail "expected %s, found %s"
      (Format.asprintf "%a" L.pp_token tok)
      (Format.asprintf "%a" L.pp_token t)

let kw c word =
  match next c with
  | L.IDENT w when w = word -> ()
  | t -> fail "expected %s, found %s" word (Format.asprintf "%a" L.pp_token t)

let ident c =
  match next c with
  | L.IDENT w -> w
  | t -> fail "expected identifier, found %s" (Format.asprintf "%a" L.pp_token t)

let is_kw c word = match peek c with L.IDENT w -> w = word | _ -> false

let eat_kw c word =
  if is_kw c word then begin
    advance c;
    true
  end
  else false

(* Comma-separated list of [p]. *)
let rec sep_list c p =
  let x = p c in
  if peek c = L.COMMA then begin
    advance c;
    x :: sep_list c p
  end
  else [ x ]

(* Expressions *)

let rec expr c = or_expr c

and or_expr c =
  let lhs = and_expr c in
  if eat_kw c "OR" then A.Binop (A.Or, lhs, or_expr c) else lhs

and and_expr c =
  let lhs = not_expr c in
  if eat_kw c "AND" then A.Binop (A.And, lhs, and_expr c) else lhs

and not_expr c = if eat_kw c "NOT" then A.Not (not_expr c) else cmp_expr c

and cmp_expr c =
  let lhs = add_expr c in
  if is_kw c "BETWEEN" then begin
    advance c;
    let lo = add_expr c in
    kw c "AND";
    let hi = add_expr c in
    A.Between (lhs, lo, hi)
  end
  else if is_kw c "IN" then begin
    advance c;
    expect c L.LPAREN;
    let literal c =
      match atom c with
      | A.Lit v -> v
      | _ -> fail "IN list expects literals"
    in
    let vs = sep_list c literal in
    expect c L.RPAREN;
    A.In_list (lhs, vs)
  end
  else
    let op =
      match peek c with
      | L.EQ -> Some A.Eq
      | L.NEQ -> Some A.Neq
      | L.LT -> Some A.Lt
      | L.LE -> Some A.Le
      | L.GT -> Some A.Gt
      | L.GE -> Some A.Ge
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        advance c;
        A.Binop (op, lhs, add_expr c)

and add_expr c =
  let rec loop lhs =
    match peek c with
    | L.PLUS ->
        advance c;
        loop (A.Binop (A.Add, lhs, mul_expr c))
    | L.MINUS ->
        advance c;
        loop (A.Binop (A.Sub, lhs, mul_expr c))
    | _ -> lhs
  in
  loop (mul_expr c)

and mul_expr c =
  let rec loop lhs =
    match peek c with
    | L.STAR ->
        advance c;
        loop (A.Binop (A.Mul, lhs, atom c))
    | _ -> lhs
  in
  loop (atom c)

and atom c =
  match next c with
  | L.INT i -> A.Lit (Value.Int i)
  | L.FLOAT f -> A.Lit (Value.Float f)
  | L.STRING s -> A.Lit (Value.Text s)
  | L.MINUS -> (
      match next c with
      | L.INT i -> A.Lit (Value.Int (-i))
      | L.FLOAT f -> A.Lit (Value.Float (-.f))
      | t -> fail "expected number after '-', found %s" (Format.asprintf "%a" L.pp_token t))
  | L.IDENT "TRUE" -> A.Lit (Value.Bool true)
  | L.IDENT "FALSE" -> A.Lit (Value.Bool false)
  | L.IDENT "NULL" -> A.Lit Value.Null
  | L.IDENT col -> A.Col col
  | L.LPAREN ->
      let e = expr c in
      expect c L.RPAREN;
      e
  | t -> fail "unexpected token %s in expression" (Format.asprintf "%a" L.pp_token t)

(* Statements *)

let column_def c =
  let name = ident c in
  let ty_name = ident c in
  match Value.ty_of_string ty_name with
  | Some ty -> (name, ty)
  | None -> fail "unknown type %s" ty_name

let create_table c =
  kw c "TABLE";
  let name = ident c in
  expect c L.LPAREN;
  let columns = ref [] in
  let pkey = ref [] in
  let rec items () =
    if is_kw c "PRIMARY" then begin
      advance c;
      kw c "KEY";
      expect c L.LPAREN;
      pkey := sep_list c ident;
      expect c L.RPAREN
    end
    else columns := column_def c :: !columns;
    if peek c = L.COMMA then begin
      advance c;
      items ()
    end
  in
  items ();
  expect c L.RPAREN;
  let columns = List.rev !columns in
  let pkey =
    match !pkey with
    | [] -> (
        (* Default: the first column is the key. *)
        match columns with
        | (first, _) :: _ -> [ first ]
        | [] -> fail "empty CREATE TABLE")
    | pk -> pk
  in
  A.Create_table { name; columns; pkey }

let insert c =
  kw c "INTO";
  let table = ident c in
  let columns =
    if peek c = L.LPAREN then begin
      advance c;
      let cs = sep_list c ident in
      expect c L.RPAREN;
      Some cs
    end
    else None
  in
  kw c "VALUES";
  let tuple c =
    expect c L.LPAREN;
    let vs = sep_list c expr in
    expect c L.RPAREN;
    vs
  in
  let values = sep_list c tuple in
  A.Insert { table; columns; values }

let where_opt c = if eat_kw c "WHERE" then Some (expr c) else None

let aggregate_opt c =
  (* Lookahead: IDENT in {COUNT,SUM,MIN,MAX,AVG} followed by '('. *)
  match c.toks with
  | L.IDENT f :: L.LPAREN :: _
    when List.mem f [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ] ->
      advance c;
      advance c;
      let arg =
        if peek c = L.STAR then begin
          advance c;
          None
        end
        else Some (ident c)
      in
      expect c L.RPAREN;
      Some
        (match (f, arg) with
        | "COUNT", None -> A.Count_star
        | "COUNT", Some col -> A.Count col
        | "SUM", Some col -> A.Sum col
        | "MIN", Some col -> A.Min_of col
        | "MAX", Some col -> A.Max_of col
        | "AVG", Some col -> A.Avg col
        | _, None -> fail "%s(*) is only valid for COUNT" f
        | _, _ -> assert false)
  | _ -> None

let select c =
  let projection =
    if peek c = L.STAR then begin
      advance c;
      A.Star
    end
    else
      match aggregate_opt c with
      | Some first ->
          let rest =
            let rec more acc =
              if peek c = L.COMMA then begin
                advance c;
                match aggregate_opt c with
                | Some a -> more (a :: acc)
                | None -> fail "aggregates cannot mix with plain columns"
              end
              else List.rev acc
            in
            more []
          in
          A.Aggregates (first :: rest)
      | None -> A.Cols (sep_list c ident)
  in
  kw c "FROM";
  let table = ident c in
  let where = where_opt c in
  let order_by =
    if eat_kw c "ORDER" then begin
      kw c "BY";
      let col = ident c in
      let dir =
        if eat_kw c "DESC" then A.Desc
        else begin
          ignore (eat_kw c "ASC");
          A.Asc
        end
      in
      Some (col, dir)
    end
    else None
  in
  let limit =
    if eat_kw c "LIMIT" then
      match next c with
      | L.INT n -> Some n
      | t -> fail "expected integer after LIMIT, found %s" (Format.asprintf "%a" L.pp_token t)
    else None
  in
  A.Select { table; projection; where; order_by; limit }

let update c =
  let table = ident c in
  kw c "SET";
  let assignment c =
    let col = ident c in
    expect c L.EQ;
    let e = expr c in
    (col, e)
  in
  let assignments = sep_list c assignment in
  let where = where_opt c in
  A.Update { table; assignments; where }

let delete c =
  kw c "FROM";
  let table = ident c in
  let where = where_opt c in
  A.Delete { table; where }

let create_index c =
  (* CREATE INDEX [name] ON table (column) *)
  (match peek c with
  | L.IDENT w when w <> "ON" -> advance c (* optional index name *)
  | _ -> ());
  kw c "ON";
  let table = ident c in
  expect c L.LPAREN;
  let column = ident c in
  expect c L.RPAREN;
  A.Create_index { table; column }

let statement c =
  match next c with
  | L.IDENT "CREATE" ->
      if is_kw c "INDEX" then begin
        advance c;
        create_index c
      end
      else create_table c
  | L.IDENT "INSERT" -> insert c
  | L.IDENT "SELECT" -> select c
  | L.IDENT "UPDATE" -> update c
  | L.IDENT "DELETE" -> delete c
  | L.IDENT "BEGIN" -> A.Begin
  | L.IDENT "COMMIT" -> A.Commit
  | L.IDENT "ROLLBACK" -> A.Rollback
  | t -> fail "unexpected statement start: %s" (Format.asprintf "%a" L.pp_token t)

let finish c stmt =
  ignore (if peek c = L.SEMI then advance c);
  match peek c with
  | L.EOF -> stmt
  | t -> fail "trailing input: %s" (Format.asprintf "%a" L.pp_token t)

let run p src =
  match L.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let c = { toks } in
      try Ok (finish c (p c)) with Parse_error e -> Error e)

let parse src = run statement src

let parse_expr src = run expr src
