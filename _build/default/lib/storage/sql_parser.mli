(** Recursive-descent parser for the SQL subset. Identifiers are
    case-insensitive (normalized to upper case). *)

val parse : string -> (Sql_ast.stmt, string) result
(** Parse a single statement (an optional trailing [;] is accepted). *)

val parse_expr : string -> (Sql_ast.expr, string) result
(** Parse a stand-alone expression (for tests). *)
