type key = Value.t list

let key_compare = List.compare Value.compare

type t = {
  kind : kind;
  insert : key -> Value.t array -> unit;
  find : key -> Value.t array option;
  delete : key -> bool;
  iter_sorted : (key -> Value.t array -> unit) -> unit;
  count : unit -> int;
  clear : unit -> unit;
}

and kind = Hazel | Hickory | Dogwood

let kind_name = function
  | Hazel -> "hazel"
  | Hickory -> "hickory"
  | Dogwood -> "dogwood"

let profile = function
  | Hazel -> Cost.hazel
  | Hickory -> Cost.hickory
  | Dogwood -> Cost.dogwood

let kind_of_string s =
  match String.lowercase_ascii s with
  | "hazel" | "h2" -> Some Hazel
  | "hickory" | "hsqldb" -> Some Hickory
  | "dogwood" | "derby" -> Some Dogwood
  | _ -> None

(* Keys are compared structurally by [key_compare]; the generic Hashtbl
   hash is consistent with it for our value type. *)
let create_hazel () =
  let tbl : (key, Value.t array) Hashtbl.t = Hashtbl.create 1024 in
  {
    kind = Hazel;
    insert = (fun k row -> Hashtbl.replace tbl k row);
    find = (fun k -> Hashtbl.find_opt tbl k);
    delete =
      (fun k ->
        let present = Hashtbl.mem tbl k in
        Hashtbl.remove tbl k;
        present);
    iter_sorted =
      (fun f ->
        let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
        let items = List.sort (fun (a, _) (b, _) -> key_compare a b) items in
        List.iter (fun (k, v) -> f k v) items);
    count = (fun () -> Hashtbl.length tbl);
    clear = (fun () -> Hashtbl.reset tbl);
  }

let create_hickory () =
  let tree = ref (Btree.create ~cmp:key_compare) in
  {
    kind = Hickory;
    insert = (fun k row -> tree := Btree.insert !tree k row);
    find = (fun k -> Btree.find !tree k);
    delete =
      (fun k ->
        let before = Btree.cardinal !tree in
        tree := Btree.remove !tree k;
        Btree.cardinal !tree < before);
    iter_sorted = (fun f -> Btree.iter f !tree);
    count = (fun () -> Btree.cardinal !tree);
    clear = (fun () -> tree := Btree.create ~cmp:key_compare);
  }

let create_dogwood () =
  let tree = ref (Avl.create ~cmp:key_compare) in
  {
    kind = Dogwood;
    insert = (fun k row -> tree := Avl.insert !tree k row);
    find = (fun k -> Avl.find !tree k);
    delete =
      (fun k ->
        let before = Avl.cardinal !tree in
        tree := Avl.remove !tree k;
        Avl.cardinal !tree < before);
    iter_sorted = (fun f -> Avl.iter f !tree);
    count = (fun () -> Avl.cardinal !tree);
    clear = (fun () -> tree := Avl.create ~cmp:key_compare);
  }

let create = function
  | Hazel -> create_hazel ()
  | Hickory -> create_hickory ()
  | Dogwood -> create_dogwood ()
