(** Runtime-pluggable row stores ("JDBC drivers").

    A store maps primary keys (lists of values, for composite keys) to
    rows. Three diverse implementations stand in for the paper's H2,
    HSQLDB and Apache Derby: a hash table ("hazel"), the from-scratch
    B+-tree ("hickory") and the from-scratch AVL tree ("dogwood"). Each
    carries its own {!Cost.profile}, mirroring the relative speeds the
    paper observes. *)

type key = Value.t list

val key_compare : key -> key -> int

type t = {
  kind : kind;
  insert : key -> Value.t array -> unit;  (** Insert or replace. *)
  find : key -> Value.t array option;
  delete : key -> bool;  (** [true] iff the key was present. *)
  iter_sorted : (key -> Value.t array -> unit) -> unit;
      (** Ascending key order in every backend (determinism across
          diverse replicas). *)
  count : unit -> int;
  clear : unit -> unit;
}

and kind = Hazel | Hickory | Dogwood

val kind_name : kind -> string
val profile : kind -> Cost.profile
val create : kind -> t
(** Fresh empty store of the given kind. *)

val kind_of_string : string -> kind option
