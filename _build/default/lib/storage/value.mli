(** SQL values and their types.

    The storage engine is dynamically typed at the row level (like the
    embedded Java databases the paper replicates behind JDBC), with types
    checked against the table schema on write. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

type ty = T_int | T_float | T_text | T_bool

val type_of : t -> ty option
(** [None] for [Null] (NULL inhabits every column type). *)

val matches : ty -> t -> bool
(** Schema check: value admissible in a column of the given type. *)

val compare : t -> t -> int
(** Total order: NULL first, then by type, numerics compared numerically
    across [Int]/[Float]. *)

val equal : t -> t -> bool

val add : t -> t -> t
(** Numeric addition ([Int]+[Int] stays [Int]); raises [Invalid_argument]
    on non-numeric operands. *)

val serialized_size : t -> int
(** Bytes this value occupies in the row wire format (used by the state
    transfer cost model: serialization overhead is per column, as the
    paper measures with TPC-C). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ty_to_string : ty -> string
val ty_of_string : string -> ty option
