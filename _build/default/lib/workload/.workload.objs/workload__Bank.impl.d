lib/workload/bank.ml: Array List Shadowdb Sim Storage String
