lib/workload/bank.mli: Shadowdb Sim Storage
