lib/workload/tpcc.ml: Array List Option Printf Shadowdb Sim Storage
