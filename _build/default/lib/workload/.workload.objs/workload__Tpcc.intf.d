lib/workload/tpcc.mli: Shadowdb Sim Storage
