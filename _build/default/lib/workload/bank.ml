module Database = Storage.Database
module Schema = Storage.Schema
module Value = Storage.Value


let table = "ACCOUNTS"

let schema ?(wide = false) () =
  let base =
    [ ("ID", Value.T_int); ("OWNER", Value.T_text); ("BALANCE", Value.T_int) ]
  in
  let columns = if wide then base @ [ ("NOTES", Value.T_text) ] else base in
  Schema.v ~table ~columns ~pkey:[ "ID" ]

let setup ?(rows = 50_000) ?(wide = false) db =
  (match Database.create_table db (schema ~wide ()) with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  (* ≈1 KB rows in the wide variant (paper Fig. 10(b)), 16 B otherwise. *)
  let pad = if wide then String.make 990 'x' else "" in
  for i = 0 to rows - 1 do
    let row =
      if wide then
        [| Value.Int i; Value.Text "o"; Value.Int 100; Value.Text pad |]
      else [| Value.Int i; Value.Text "o"; Value.Int 100 |]
    in
    match Database.insert db table row with
    | Ok () -> ()
    | Error e -> invalid_arg e
  done

let balance_col db row =
  match Database.schema db table with
  | Some s -> (
      match Schema.column_index s "BALANCE" with
      | Some i -> row.(i)
      | None -> Value.Null)
  | None -> Value.Null

let get_int = function Value.Int i -> i | _ -> invalid_arg "expected int"

let proc_deposit db = function
  | [ Value.Int id; Value.Int amount ] -> (
      match
        Database.update db table [ Value.Int id ] (fun row ->
            row.(2) <- Value.add row.(2) (Value.Int amount);
            row)
      with
      | Ok true -> Ok []
      | Ok false -> Error "no such account"
      | Error e -> Error e)
  | _ -> Error "deposit: bad parameters"

let proc_balance db = function
  | [ Value.Int id ] -> (
      match Database.get db table [ Value.Int id ] with
      | Some row -> Ok [ [| row.(2) |] ]
      | None -> Error "no such account")
  | _ -> Error "balance: bad parameters"

let proc_transfer db = function
  | [ Value.Int src; Value.Int dst; Value.Int amount ] -> (
      match Database.get db table [ Value.Int src ] with
      | None -> Error "no such source account"
      | Some row ->
          let bal = get_int row.(2) in
          if bal < amount then Error "insufficient funds"
          else
            let debit =
              Database.update db table [ Value.Int src ] (fun r ->
                  r.(2) <- Value.Int (get_int r.(2) - amount);
                  r)
            in
            let credit =
              Database.update db table [ Value.Int dst ] (fun r ->
                  r.(2) <- Value.add r.(2) (Value.Int amount);
                  r)
            in
            (match (debit, credit) with
            | Ok true, Ok true -> Ok []
            | Ok false, _ | _, Ok false -> Error "no such account"
            | Error e, _ | _, Error e -> Error e))
  | _ -> Error "transfer: bad parameters"

let registry () =
  Shadowdb.Txn.registry
    [
      ("deposit", proc_deposit);
      ("balance", proc_balance);
      ("transfer", proc_transfer);
    ]

let deposit ~account ~amount =
  ("deposit", [ Value.Int account; Value.Int amount ])

let balance ~account = ("balance", [ Value.Int account ])

let transfer ~src ~dst ~amount =
  ("transfer", [ Value.Int src; Value.Int dst; Value.Int amount ])

let random_deposit rng ~rows =
  deposit ~account:(Sim.Prng.int rng rows) ~amount:(1 + Sim.Prng.int rng 100)

let total_balance db =
  match Database.scan db table ~pred:(fun _ -> true) with
  | Ok rows ->
      List.fold_left (fun acc row -> acc + get_int (balance_col db row)) 0 rows
  | Error _ -> 0
