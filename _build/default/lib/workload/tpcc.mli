(** TPC-C-lite: the structure of the TPC-C benchmark (paper Sec. IV-B,
    Fig. 9(b)), scaled for simulation.

    Full 9-table schema, loader, the five transaction types with the
    standard mix (New-Order 45 %, Payment 43 %, Order-Status 4 %,
    Delivery 4 %, Stock-Level 4 %), NURand parameter generation, and the
    TPC-C consistency conditions as checkable predicates. One warehouse,
    with districts/customers/items scaled by [scale] (1.0 = spec sizes:
    10 districts × 3,000 customers, 100,000 items). *)

type scale = {
  districts : int;
  customers_per_district : int;
  items : int;
  initial_orders_per_district : int;
}

val spec_scale : scale
(** TPC-C specification sizes (large; slow to load in tests). *)

val small_scale : scale
(** 10 districts × 60 customers, 1,000 items, 30 initial orders — keeps
    structure (and the paper's ≈100 MB ≈ row-count ratios) while loading
    fast. *)

val setup : ?scale:scale -> Storage.Database.t -> unit
(** Create all nine tables and load them per the TPC-C population rules
    (deterministic). *)

val registry : ?scale:scale -> unit -> Shadowdb.Txn.registry
(** Procedures: ["new_order"], ["payment"], ["order_status"],
    ["delivery"], ["stock_level"]. *)

val make_txn :
  ?scale:scale -> Sim.Prng.t -> h_id:int -> string * Storage.Value.t list
(** Draw one transaction from the standard mix with NURand-distributed
    parameters. [h_id] must be globally unique (history primary key);
    clients derive it from their id and sequence number. *)

val row_counts : Storage.Database.t -> (string * int) list
(** Table name → row count (sorted), for sizing reports. *)

(** TPC-C consistency conditions (Sec. 3.3 of the spec), as predicates
    over a quiescent database. Each returns [Ok ()] or a description of
    the violation. *)

val consistency_1 : Storage.Database.t -> (unit, string) result
(** W_YTD = Σ D_YTD. *)

val consistency_2 : Storage.Database.t -> (unit, string) result
(** For each district: D_NEXT_O_ID − 1 = max(O_ID) = max(NO_O_ID) (when
    orders exist). *)

val consistency_3 : Storage.Database.t -> (unit, string) result
(** For each district: max(NO_O_ID) − min(NO_O_ID) + 1 = #NEW_ORDER rows. *)

val consistency_4 : Storage.Database.t -> (unit, string) result
(** For each district: Σ O_OL_CNT = #ORDER_LINE rows. *)
