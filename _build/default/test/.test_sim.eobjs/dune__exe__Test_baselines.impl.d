test/test_baselines.ml: Alcotest Baselines Hashtbl Sim Stats Storage Workload
