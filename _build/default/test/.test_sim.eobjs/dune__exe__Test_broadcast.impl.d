test/test_broadcast.ml: Alcotest Broadcast Consensus Hashtbl List Printf Sim Stats
