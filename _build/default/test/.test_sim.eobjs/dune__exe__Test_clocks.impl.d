test/test_clocks.ml: Alcotest Array Clocks Fun Gen Gpm List Loe QCheck QCheck_alcotest Sim
