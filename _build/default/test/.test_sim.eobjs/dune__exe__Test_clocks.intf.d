test/test_clocks.mli:
