test/test_consensus.ml: Alcotest Array Consensus Fun List Printf QCheck QCheck_alcotest Queue Sim String
