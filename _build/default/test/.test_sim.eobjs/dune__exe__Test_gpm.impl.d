test/test_gpm.ml: Alcotest Gpm List Loe Printf QCheck QCheck_alcotest Sim
