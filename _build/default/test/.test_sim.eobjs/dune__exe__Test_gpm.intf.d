test/test_gpm.mli:
