test/test_harness.ml: Alcotest Gpm Harness List
