test/test_loe.ml: Alcotest List Loe Printf QCheck QCheck_alcotest String
