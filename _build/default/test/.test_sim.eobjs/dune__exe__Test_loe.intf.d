test/test_loe.mli:
