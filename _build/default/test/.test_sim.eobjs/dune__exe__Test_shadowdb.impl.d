test/test_shadowdb.ml: Alcotest Consensus Gen Hashtbl List Printf QCheck QCheck_alcotest Result Shadowdb Sim Storage Workload
