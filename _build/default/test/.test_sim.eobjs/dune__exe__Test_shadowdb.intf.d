test/test_shadowdb.mli:
