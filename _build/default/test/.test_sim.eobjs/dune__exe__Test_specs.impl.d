test/test_specs.ml: Alcotest Broadcast Consensus Harness Hashtbl List Loe Printf QCheck QCheck_alcotest Queue
