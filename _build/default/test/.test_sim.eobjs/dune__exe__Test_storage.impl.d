test/test_storage.ml: Alcotest Array Gen Int List Map Printf QCheck QCheck_alcotest Result Shadowdb Storage String
