test/test_workload.ml: Alcotest Array Gen Hashtbl List Option QCheck QCheck_alcotest Result Shadowdb Sim Storage Workload
