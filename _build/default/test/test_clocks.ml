(* Tests for the CLK specification (the paper's Fig. 3) and its
   correctness: the progress property C1, the send/receive property C2,
   and Lamport's Clock Condition (the paper's Fig. 6 theorem), checked on
   randomly generated distributed executions. *)

module Message = Loe.Message
module Cls = Loe.Cls
module Inst = Loe.Inst
module Sem = Loe.Sem

let mk_clk () = Clocks.Clk.make ~locs:[ 0; 1; 2 ] ~handle:(fun slf v -> (v + 1, (slf + 1) mod 3))

(* Structure: the spec is the paper's Fig. 3, so its shape is fixed. *)

let test_spec_shape () =
  let clk = mk_clk () in
  Alcotest.(check string) "name" "CLK" clk.Clocks.Clk.spec.Loe.Spec.name;
  Alcotest.(check (list int)) "locs" [ 0; 1; 2 ] clk.Clocks.Clk.spec.Loe.Spec.locs;
  Alcotest.(check bool) "small spec" true
    (Loe.Spec.spec_size clk.Clocks.Clk.spec < 30)

let test_upd_clock () =
  (* max timestamp clock + 1 *)
  Alcotest.(check int) "ts wins" 8 (Clocks.Clk.upd_clock 0 ((), 7) 3);
  Alcotest.(check int) "clock wins" 10 (Clocks.Clk.upd_clock 0 ((), 2) 9);
  Alcotest.(check int) "tie" 6 (Clocks.Clk.upd_clock 0 ((), 5) 5)

(* C1 (progress): the clock strictly increases across recognized events. *)

let prop_progress_c1 =
  QCheck.Test.make ~name:"C1: clock strictly increases (progress)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (pair small_int small_nat))
    (fun payload ->
      let clk = mk_clk () in
      let trace =
        List.map (fun (v, ts) -> Message.make clk.Clocks.Clk.msg (v, ts)) payload
      in
      let outs = Inst.run 0 clk.Clocks.Clk.clock trace in
      let clocks = List.concat outs in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      strictly_increasing clocks)

(* The clock ignores messages with foreign headers. *)

let test_clock_ignores_foreign () =
  let clk = mk_clk () in
  let other : int Message.hdr = Message.declare "other" in
  let trace =
    [
      Message.make clk.Clocks.Clk.msg (1, 5);
      Message.make other 9;
      Message.make clk.Clocks.Clk.msg (2, 0);
    ]
  in
  let outs = Inst.run 0 clk.Clocks.Clk.clock trace in
  Alcotest.(check (list (list int))) "unchanged on foreign" [ [ 6 ]; [ 6 ]; [ 7 ] ] outs

(* Compliance of CLK specifically: stepper ≡ denotation on the real spec. *)

let prop_clk_compliance =
  QCheck.Test.make ~name:"CLK program complies with its LoE spec" ~count:200
    QCheck.(list_of_size Gen.(0 -- 15) (pair small_int small_nat))
    (fun payload ->
      let clk = mk_clk () in
      let trace =
        List.map (fun (v, ts) -> Message.make clk.Clocks.Clk.msg (v, ts)) payload
      in
      let main = clk.Clocks.Clk.spec.Loe.Spec.main in
      Inst.run 1 main trace = Sem.eval 1 main trace)

(* Whole-system executions: run CLK at n locations by delivering directed
   messages in a random but causally consistent order, and check the Clock
   Condition over the happens-before relation. *)

type event = {
  loc : int;
  clock : int;  (* LC(e): timestamp attached to the event's output *)
  seq_at_loc : int;  (* local order *)
  sent_to : (int * int) option;  (* recipient and message id *)
  received_id : int;  (* id of the message that triggered this event *)
}

let run_system ~n ~steps ~seed =
  let clk =
    Clocks.Clk.make
      ~locs:(List.init n Fun.id)
      ~handle:(fun slf v -> (v + 1, (slf + v) mod n))
  in
  let rng = Sim.Prng.create seed in
  let insts = Array.init n (fun loc -> ref (Inst.create loc clk.Clocks.Clk.spec.Loe.Spec.main)) in
  let local_seq = Array.make n 0 in
  let next_msg_id = ref 0 in
  (* Pending network: (msg id, dst, message, sender event index). *)
  let pending = ref [ (0, 0, Message.make clk.Clocks.Clk.msg (0, 0), -1) ] in
  incr next_msg_id;
  let events = ref [] in
  let deliver () =
    match !pending with
    | [] -> ()
    | l ->
        let i = Sim.Prng.int rng (List.length l) in
        let msg_id, dst, msg, _ = List.nth l i in
        pending := List.filteri (fun j _ -> j <> i) l;
        let inst = insts.(dst) in
        let inst', outs = Inst.step dst !inst msg in
        inst := inst';
        let clock_of_out =
          match outs with
          | { Message.msg = m; _ } :: _ -> (
              match Message.recognize clk.Clocks.Clk.msg m with
              | Some (_, ts) -> ts
              | None -> -1)
          | [] -> -1
        in
        let sent =
          List.map
            (fun (d : Message.directed) ->
              let id = !next_msg_id in
              incr next_msg_id;
              pending := (id, d.Message.dst, d.Message.msg, id) :: !pending;
              (d.Message.dst, id))
            outs
        in
        events :=
          {
            loc = dst;
            clock = clock_of_out;
            seq_at_loc = local_seq.(dst);
            sent_to = (match sent with s :: _ -> Some s | [] -> None);
            received_id = msg_id;
          }
          :: !events;
        local_seq.(dst) <- local_seq.(dst) + 1
  in
  for _ = 1 to steps do
    deliver ()
  done;
  List.rev !events

let prop_clock_condition =
  QCheck.Test.make
    ~name:"Clock Condition: e1 → e2 implies LC(e1) < LC(e2)" ~count:100
    QCheck.(pair (2 -- 5) small_int)
    (fun (n, seed) ->
      let events = run_system ~n ~steps:30 ~seed in
      let arr = Array.of_list events in
      let m = Array.length arr in
      (* Direct happens-before edges. *)
      let edges = ref [] in
      for i = 0 to m - 1 do
        for j = 0 to m - 1 do
          if i <> j then begin
            let ei = arr.(i) and ej = arr.(j) in
            (* Same location, local order. *)
            if ei.loc = ej.loc && ei.seq_at_loc < ej.seq_at_loc then
              edges := (i, j) :: !edges;
            (* Message from ei received at ej. *)
            match ei.sent_to with
            | Some (_, mid) when mid = ej.received_id -> edges := (i, j) :: !edges
            | Some _ | None -> ()
          end
        done
      done;
      (* Clocks must increase along every direct edge; transitivity follows. *)
      List.for_all
        (fun (i, j) ->
          arr.(i).clock < arr.(j).clock || arr.(i).clock < 0 || arr.(j).clock < 0)
        !edges)

(* End-to-end on the simulator: a causal chain along a ring has strictly
   increasing timestamps. *)

let test_sim_ring_timestamps () =
  let w = Sim.Engine.create () in
  let seen = ref [] in
  let spy = Message.declare "spy" in
  let observer =
    Sim.Engine.spawn w ~name:"obs" (fun () _ -> function
      | Sim.Engine.Recv { msg; _ } -> (
          match Message.recognize spy msg with
          | Some ts -> seen := ts :: !seen
          | None -> ())
      | Sim.Engine.Init | Sim.Engine.Timer _ -> ())
  in
  let clk_hdr = ref None in
  let ids =
    Gpm.Runtime.deploy w ~n:3 (fun locs ->
        let next slf =
          match locs with
          | [ a; b; c ] -> if slf = a then b else if slf = b then c else a
          | _ -> assert false
        in
        let clk =
          Clocks.Clk.make ~locs ~handle:(fun slf v -> (v + 1, next slf))
        in
        clk_hdr := Some clk.Clocks.Clk.msg;
        (* Wrap: also report every send's timestamp to the observer. *)
        let main = clk.Clocks.Clk.spec.Loe.Spec.main in
        let report _slf (d : Message.directed) () =
          let extra =
            match Message.recognize clk.Clocks.Clk.msg d.Message.msg with
            | Some (_, ts) -> [ Message.send spy observer ts ]
            | None -> []
          in
          d :: extra
        in
        let spying = Cls.o2 report main (Cls.const "u" ()) in
        Loe.Spec.v ~name:"CLK-spy" ~locs spying)
  in
  ignore ids;
  (match !clk_hdr with
  | Some h ->
      Gpm.Runtime.inject w ~dst:(List.hd ids) (Message.make h (0, 0))
  | None -> Alcotest.fail "spec not built");
  Sim.Engine.run ~max_events:2000 ~until:10.0 w;
  let ts = List.rev !seen in
  Alcotest.(check bool) "some messages observed" true (List.length ts > 5);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps strictly increase along the chain" true
    (increasing ts)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "clocks"
    [
      ( "spec",
        [
          Alcotest.test_case "shape" `Quick test_spec_shape;
          Alcotest.test_case "upd_clock" `Quick test_upd_clock;
          Alcotest.test_case "ignores foreign" `Quick test_clock_ignores_foreign;
        ] );
      ( "properties",
        [
          qt prop_progress_c1;
          qt prop_clk_compliance;
          qt prop_clock_condition;
        ] );
      ( "simulation",
        [ Alcotest.test_case "ring timestamps" `Quick test_sim_ring_timestamps ] );
    ]
