(* Tests for the consensus substrate: acceptor/leader/replica roles of
   Paxos Synod, the TwoThird protocol, and whole-core agreement properties
   under adversarial message scheduling, duplication, and loss. *)

module M = Consensus.Paxos_msg
module Acceptor = Consensus.Acceptor
module Leader = Consensus.Leader
module Replica = Consensus.Replica
module Twothird = Consensus.Twothird
module I = Consensus.Consensus_intf

let b round leader = { M.round; M.leader }

(* Ballots *)

let test_ballot_order () =
  Alcotest.(check bool) "round dominates" true (M.ballot_compare (b 1 0) (b 0 9) > 0);
  Alcotest.(check bool) "leader breaks ties" true (M.ballot_compare (b 1 2) (b 1 1) > 0);
  Alcotest.(check int) "equal" 0 (M.ballot_compare (b 3 4) (b 3 4));
  let s = M.ballot_succ (b 2 7) 1 in
  Alcotest.(check bool) "succ greater" true (M.ballot_compare s (b 2 7) > 0)

(* Acceptor *)

let test_acceptor_promise_monotone () =
  let a = Acceptor.create ~self:10 in
  let a, r1 = Acceptor.step a (M.P1a { src = 1; b = b 5 1 }) in
  (match r1 with
  | [ (1, M.P1b { b = promised; accepted = []; _ }) ] ->
      Alcotest.(check int) "promised round" 5 promised.M.round
  | _ -> Alcotest.fail "expected p1b");
  (* A lower ballot must not regress the promise. *)
  let a, r2 = Acceptor.step a (M.P1a { src = 2; b = b 3 2 }) in
  (match r2 with
  | [ (2, M.P1b { b = promised; _ }) ] ->
      Alcotest.(check int) "promise kept" 5 promised.M.round
  | _ -> Alcotest.fail "expected p1b");
  ignore a

let test_acceptor_accepts_at_or_above_promise () =
  let a = Acceptor.create ~self:10 in
  let a, _ = Acceptor.step a (M.P1a { src = 1; b = b 5 1 }) in
  let pv = { M.b = b 5 1; s = 0; c = "x" } in
  let a, r = Acceptor.step a (M.P2a { src = 1; pv }) in
  (match r with
  | [ (1, M.P2b { b = cur; s = 0; _ }) ] ->
      Alcotest.(check int) "accepted at promise" 5 cur.M.round
  | _ -> Alcotest.fail "expected p2b");
  Alcotest.(check int) "stored" 1 (List.length (Acceptor.accepted a))

let test_acceptor_rejects_below_promise () =
  let a = Acceptor.create ~self:10 in
  let a, _ = Acceptor.step a (M.P1a { src = 1; b = b 5 1 }) in
  let pv = { M.b = b 2 2; s = 0; c = "low" } in
  let a, r = Acceptor.step a (M.P2a { src = 2; pv }) in
  (match r with
  | [ (2, M.P2b { b = cur; _ }) ] ->
      Alcotest.(check int) "reply carries promise" 5 cur.M.round
  | _ -> Alcotest.fail "expected p2b");
  Alcotest.(check int) "nothing accepted" 0 (List.length (Acceptor.accepted a))

let test_acceptor_keeps_highest_ballot_per_slot () =
  let a = Acceptor.create ~self:10 in
  let a, _ =
    Acceptor.step a (M.P2a { src = 1; pv = { M.b = b 1 1; s = 3; c = "old" } })
  in
  let a, _ =
    Acceptor.step a (M.P2a { src = 2; pv = { M.b = b 2 2; s = 3; c = "new" } })
  in
  (match Acceptor.accepted a with
  | [ pv ] ->
      Alcotest.(check string) "highest kept" "new" pv.M.c;
      Alcotest.(check int) "slot" 3 pv.M.s
  | _ -> Alcotest.fail "expected one pvalue");
  (* Re-sending the old ballot must not clobber it back. *)
  let a, _ =
    Acceptor.step a (M.P2a { src = 1; pv = { M.b = b 1 1; s = 3; c = "old" } })
  in
  match Acceptor.accepted a with
  | [ pv ] -> Alcotest.(check string) "still new" "new" pv.M.c
  | _ -> Alcotest.fail "expected one pvalue"

(* Leader *)

let mk_leader () = Leader.create ~self:0 ~acceptors:[ 10; 11; 12 ] ~replicas:[ 0; 1 ]

let p1b src blt accepted = Leader.Msg (M.P1b { src; b = blt; accepted })
let p2b src blt s = Leader.Msg (M.P2b { src; b = blt; s })

let test_leader_scout_adoption () =
  let l = mk_leader () in
  let l, acts = Leader.step l Leader.Start in
  Alcotest.(check int) "p1a to all acceptors" 3 (List.length acts);
  let blt = Leader.ballot l in
  let l, _ = Leader.step l (p1b 10 blt []) in
  Alcotest.(check bool) "not yet" false (Leader.is_active l);
  let l, _ = Leader.step l (p1b 11 blt []) in
  Alcotest.(check bool) "majority adopted" true (Leader.is_active l)

let test_leader_commander_decision () =
  let l = mk_leader () in
  let l, _ = Leader.step l Leader.Start in
  let blt = Leader.ballot l in
  let l, _ = Leader.step l (p1b 10 blt []) in
  let l, _ = Leader.step l (p1b 11 blt []) in
  let l, acts = Leader.step l (Leader.Msg (M.Propose { s = 0; c = "cmd" })) in
  Alcotest.(check int) "p2a to all acceptors" 3 (List.length acts);
  let l, acts1 = Leader.step l (p2b 10 blt 0) in
  Alcotest.(check int) "no decision yet" 0 (List.length acts1);
  let _, acts2 = Leader.step l (p2b 11 blt 0) in
  let decisions =
    List.filter_map
      (function
        | Leader.Send (dst, M.Decision { s; c }) -> Some (dst, s, c)
        | Leader.Send _ | Leader.Set_timer _ -> None)
      acts2
  in
  Alcotest.(check (list (triple int int string)))
    "decision to both replicas"
    [ (0, 0, "cmd"); (1, 0, "cmd") ]
    decisions

let test_leader_adopts_prior_accepts () =
  (* A newly adopted leader must command previously accepted pvalues, not
     its own proposal for the same slot (the core Synod safety move). *)
  let l = mk_leader () in
  let l, _ = Leader.step l (Leader.Msg (M.Propose { s = 0; c = "mine" })) in
  let l, _ = Leader.step l Leader.Start in
  let blt = Leader.ballot l in
  let prior = { M.b = b (-1) 9; s = 0; c = "theirs" } in
  let l, _ = Leader.step l (p1b 10 blt [ prior ]) in
  let _, acts = Leader.step l (p1b 11 blt []) in
  let commanded =
    List.filter_map
      (function
        | Leader.Send (_, M.P2a { pv; _ }) -> Some pv.M.c
        | Leader.Send _ | Leader.Set_timer _ -> None)
      acts
  in
  Alcotest.(check bool) "commands the accepted value" true
    (List.mem "theirs" commanded);
  Alcotest.(check bool) "own proposal displaced" false (List.mem "mine" commanded)

let test_leader_preemption_backoff () =
  let l = mk_leader () in
  let l, _ = Leader.step l Leader.Start in
  let higher = b 7 5 in
  let l, acts = Leader.step l (p1b 10 higher []) in
  Alcotest.(check bool) "inactive after preemption" false (Leader.is_active l);
  Alcotest.(check bool) "ballot raised above preemptor" true
    (M.ballot_compare (Leader.ballot l) higher > 0);
  (match acts with
  | [ Leader.Set_timer _ ] -> ()
  | _ -> Alcotest.fail "expected backoff timer");
  let _, acts = Leader.step l Leader.Tick in
  Alcotest.(check int) "re-scouts on tick" 3 (List.length acts)

(* Replica *)

let test_replica_proposes_within_window () =
  let r = Replica.create ~self:0 ~leaders:[ 5 ] in
  let r, acts = Replica.step r (Replica.Request "a") in
  (match acts with
  | [ Replica.Send (5, M.Propose { s = 0; c = "a" }) ] -> ()
  | _ -> Alcotest.fail "expected propose at slot 0");
  let r = ref r in
  for i = 1 to Replica.window + 2 do
    let r', _ = Replica.step !r (Replica.Request (string_of_int i)) in
    r := r'
  done;
  Alcotest.(check int) "nothing performed yet" 0 (Replica.slot_out !r)

let test_replica_performs_in_order () =
  let r = Replica.create ~self:0 ~leaders:[ 5 ] in
  let r, _ = Replica.step r (Replica.Msg (M.Decision { s = 1; c = "b" })) in
  Alcotest.(check int) "gap blocks delivery" 0 (Replica.slot_out r);
  let r, acts = Replica.step r (Replica.Msg (M.Decision { s = 0; c = "a" })) in
  let performed =
    List.filter_map
      (function
        | Replica.Perform { s; c } -> Some (s, c)
        | Replica.Send _ -> None)
      acts
  in
  Alcotest.(check (list (pair int string)))
    "both performed in slot order"
    [ (0, "a"); (1, "b") ]
    performed;
  Alcotest.(check int) "slot_out advanced" 2 (Replica.slot_out r)

let test_replica_reproposes_lost_slot () =
  let r = Replica.create ~self:0 ~leaders:[ 5 ] in
  let r, _ = Replica.step r (Replica.Request "mine") in
  let r, acts = Replica.step r (Replica.Msg (M.Decision { s = 0; c = "other" })) in
  let reproposed =
    List.filter_map
      (function
        | Replica.Send (_, M.Propose { s; c }) -> Some (s, c)
        | Replica.Send _ | Replica.Perform _ -> None)
      acts
  in
  Alcotest.(check (list (pair int string)))
    "re-proposed at the next slot"
    [ (1, "mine") ]
    reproposed;
  ignore r

let test_replica_duplicate_decision_ignored () =
  let r = Replica.create ~self:0 ~leaders:[ 5 ] in
  let r, a1 = Replica.step r (Replica.Msg (M.Decision { s = 0; c = "a" })) in
  let _, a2 = Replica.step r (Replica.Msg (M.Decision { s = 0; c = "a" })) in
  Alcotest.(check int) "first performs" 1
    (List.length (List.filter (function Replica.Perform _ -> true | _ -> false) a1));
  Alcotest.(check int) "second is a no-op" 0 (List.length a2)

(* TwoThird *)

let test_twothird_unanimous () =
  (* Three members all propose the same value: everyone decides it in
     round 0. *)
  let members = [ 0; 1; 2 ] in
  let ts = List.map (fun self -> Twothird.create ~self ~members) members in
  let states = Array.of_list ts in
  let inbox = Queue.create () in
  let decided = Array.make 3 None in
  let handle i acts =
    List.iter
      (function
        | Twothird.Send (dst, m) -> Queue.push (i, dst, m) inbox
        | Twothird.Decide v ->
            Alcotest.(check bool) "single decision" true (decided.(i) = None);
            decided.(i) <- Some v)
      acts
  in
  List.iteri
    (fun i _ ->
      let t, acts = Twothird.step states.(i) (Twothird.Propose "v") in
      states.(i) <- t;
      handle i acts)
    members;
  let rec drain () =
    match Queue.take_opt inbox with
    | None -> ()
    | Some (src, dst, m) ->
        let t, acts = Twothird.step states.(dst) (Twothird.Recv { src; msg = m }) in
        states.(dst) <- t;
        handle dst acts;
        drain ()
  in
  drain ();
  Array.iter
    (fun d -> Alcotest.(check (option string)) "decided v" (Some "v") d)
    decided

(* Randomized whole-protocol harness for TwoThird: random proposals and
   random (possibly duplicated) delivery order; checks agreement and
   validity. *)
let run_twothird_random ~n ~seed ~dup_prob ~drop_prob =
  let rng = Sim.Prng.create seed in
  let members = List.init n Fun.id in
  let states = Array.of_list (List.map (fun self -> Twothird.create ~self ~members) members) in
  let pending = ref [] in
  let decided = Array.make n [] in
  let proposals = Array.init n (fun i -> Printf.sprintf "p%d" (i mod 3)) in
  let handle i acts =
    List.iter
      (function
        | Twothird.Send (dst, m) ->
            if Sim.Prng.float rng >= drop_prob then begin
              pending := (i, dst, m) :: !pending;
              if Sim.Prng.float rng < dup_prob then
                pending := (i, dst, m) :: !pending
            end
        | Twothird.Decide v -> decided.(i) <- v :: decided.(i))
      acts
  in
  Array.iteri
    (fun i p ->
      let t, acts = Twothird.step states.(i) (Twothird.Propose p) in
      states.(i) <- t;
      handle i acts)
    proposals;
  let steps = ref 0 in
  while !pending <> [] && !steps < 20_000 do
    incr steps;
    let k = Sim.Prng.int rng (List.length !pending) in
    let src, dst, m = List.nth !pending k in
    pending := List.filteri (fun j _ -> j <> k) !pending;
    let t, acts = Twothird.step states.(dst) (Twothird.Recv { src; msg = m }) in
    states.(dst) <- t;
    handle dst acts
  done;
  (decided, proposals)

let prop_twothird_agreement_validity =
  QCheck.Test.make ~name:"TwoThird agreement+validity (random schedules)"
    ~count:60
    QCheck.(pair (int_range 3 7) small_int)
    (fun (n, seed) ->
      let decided, proposals = run_twothird_random ~n ~seed ~dup_prob:0.2 ~drop_prob:0.0 in
      let values =
        Array.to_list decided |> List.concat |> List.sort_uniq compare
      in
      (* Agreement: at most one value decided system-wide; integrity: at
         most one decision per member; validity: the value was proposed. *)
      List.length values <= 1
      && Array.for_all (fun l -> List.length l <= 1) decided
      && List.for_all (fun v -> Array.exists (fun p -> p = v) proposals) values)

let prop_twothird_safe_under_loss =
  QCheck.Test.make ~name:"TwoThird safety under message loss" ~count:60
    QCheck.(pair (int_range 3 7) small_int)
    (fun (n, seed) ->
      let decided, proposals = run_twothird_random ~n ~seed ~dup_prob:0.1 ~drop_prob:0.25 in
      let values =
        Array.to_list decided |> List.concat |> List.sort_uniq compare
      in
      List.length values <= 1
      && List.for_all (fun v -> Array.exists (fun p -> p = v) proposals) values)

(* Whole-core harness: members of a Consensus_intf.S implementation with
   random scheduling; checks total-order agreement of delivered commands. *)
module Core_harness (C : I.S) = struct
  let run ~n ~seed ~cmds_per_member ~drop_prob ~max_steps =
    let rng = Sim.Prng.create seed in
    let members = List.init n Fun.id in
    let states = Array.of_list (List.map (fun self -> C.create ~self ~members) members) in
    let pending = ref [] in
    let delivered = Array.make n [] in
    let timers = ref [] in
    let handle i acts =
      List.iter
        (function
          | I.Send (dst, m) ->
              if Sim.Prng.float rng >= drop_prob then
                pending := (i, dst, m) :: !pending
          | I.Deliver { s; c } -> delivered.(i) <- (s, c) :: delivered.(i)
          | I.Set_timer _ -> timers := i :: !timers)
        acts
    in
    Array.iteri
      (fun i st ->
        let st, acts = C.start st in
        states.(i) <- st;
        handle i acts)
      (Array.copy states);
    for i = 0 to n - 1 do
      for j = 0 to cmds_per_member - 1 do
        let st, acts = C.propose states.(i) (Printf.sprintf "c%d.%d" i j) in
        states.(i) <- st;
        handle i acts
      done
    done;
    let expected = n * cmds_per_member in
    let all_done () =
      Array.for_all (fun l -> List.length l >= expected) delivered
    in
    let steps = ref 0 in
    let continue = ref true in
    while !continue && !steps < max_steps && not (all_done ()) do
      incr steps;
      match !pending with
      | [] -> (
          (* Quiescent: fire a pending timer, if any (retransmission). *)
          match !timers with
          | [] -> continue := false
          | i :: rest ->
              timers := rest;
              let st, acts = C.tick states.(i) in
              states.(i) <- st;
              handle i acts)
      | l ->
          let k = Sim.Prng.int rng (List.length l) in
          let src, dst, m = List.nth l k in
          pending := List.filteri (fun j _ -> j <> k) l;
          let st, acts = C.recv states.(dst) ~src m in
          states.(dst) <- st;
          handle dst acts
    done;
    Array.map (fun l -> List.rev l) delivered

  (* Delivered sequences must be slot-consecutive and prefix-compatible. *)
  let check_agreement delivered =
    let ok_consecutive l = List.for_all2 (fun (s, _) i -> s = i) l (List.init (List.length l) Fun.id) in
    let seqs = Array.to_list delivered in
    List.for_all ok_consecutive seqs
    &&
    let rec prefix_ok a b =
      match (a, b) with
      | [], _ | _, [] -> true
      | x :: a', y :: b' -> x = y && prefix_ok a' b'
    in
    List.for_all
      (fun a -> List.for_all (fun b -> prefix_ok a b) seqs)
      seqs
end

module Paxos_harness = Core_harness (Consensus.Paxos)
module Twothird_harness = Core_harness (Consensus.Twothird_multi)

let prop_paxos_core_agreement =
  QCheck.Test.make ~name:"Paxos core: total order agreement" ~count:40
    QCheck.small_int
    (fun seed ->
      let d = Paxos_harness.run ~n:3 ~seed ~cmds_per_member:4 ~drop_prob:0.0 ~max_steps:20_000 in
      Paxos_harness.check_agreement d
      (* Liveness under reliable delivery: everything decided. *)
      && Array.for_all (fun l -> List.length l = 12) d)

let prop_paxos_core_safe_under_loss =
  QCheck.Test.make ~name:"Paxos core: safety under loss" ~count:40
    QCheck.small_int
    (fun seed ->
      let d = Paxos_harness.run ~n:3 ~seed ~cmds_per_member:3 ~drop_prob:0.15 ~max_steps:20_000 in
      Paxos_harness.check_agreement d)

let prop_twothird_core_agreement =
  QCheck.Test.make ~name:"TwoThird core: total order agreement" ~count:40
    QCheck.small_int
    (fun seed ->
      let d = Twothird_harness.run ~n:4 ~seed ~cmds_per_member:3 ~drop_prob:0.0 ~max_steps:20_000 in
      Twothird_harness.check_agreement d
      && Array.for_all (fun l -> List.length l = 12) d)

let prop_twothird_core_no_creation =
  QCheck.Test.make ~name:"TwoThird core: no creation, no duplication" ~count:40
    QCheck.small_int
    (fun seed ->
      let d = Twothird_harness.run ~n:4 ~seed ~cmds_per_member:2 ~drop_prob:0.0 ~max_steps:20_000 in
      Array.for_all
        (fun l ->
          let cmds = List.map snd l in
          List.length (List.sort_uniq compare cmds) = List.length cmds
          && List.for_all
               (fun c -> String.length c > 1 && c.[0] = 'c')
               cmds)
        d)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "consensus"
    [
      ("ballot", [ Alcotest.test_case "order" `Quick test_ballot_order ]);
      ( "acceptor",
        [
          Alcotest.test_case "promise monotone" `Quick
            test_acceptor_promise_monotone;
          Alcotest.test_case "accepts at promise" `Quick
            test_acceptor_accepts_at_or_above_promise;
          Alcotest.test_case "rejects below promise" `Quick
            test_acceptor_rejects_below_promise;
          Alcotest.test_case "highest ballot per slot" `Quick
            test_acceptor_keeps_highest_ballot_per_slot;
        ] );
      ( "leader",
        [
          Alcotest.test_case "scout adoption" `Quick test_leader_scout_adoption;
          Alcotest.test_case "commander decision" `Quick
            test_leader_commander_decision;
          Alcotest.test_case "adopts prior accepts" `Quick
            test_leader_adopts_prior_accepts;
          Alcotest.test_case "preemption backoff" `Quick
            test_leader_preemption_backoff;
        ] );
      ( "replica",
        [
          Alcotest.test_case "window" `Quick test_replica_proposes_within_window;
          Alcotest.test_case "in-order perform" `Quick
            test_replica_performs_in_order;
          Alcotest.test_case "reproposal" `Quick test_replica_reproposes_lost_slot;
          Alcotest.test_case "duplicate decision" `Quick
            test_replica_duplicate_decision_ignored;
        ] );
      ( "twothird",
        [
          Alcotest.test_case "unanimous" `Quick test_twothird_unanimous;
          qt prop_twothird_agreement_validity;
          qt prop_twothird_safe_under_loss;
        ] );
      ( "cores",
        [
          qt prop_paxos_core_agreement;
          qt prop_paxos_core_safe_under_loss;
          qt prop_twothird_core_agreement;
          qt prop_twothird_core_no_creation;
        ] );
    ]
