(* Tests for the General Process Model: process algebra, the two compilation
   backends, the optimizer bisimulation (the paper's Fig. 7 proof as a
   property), program sizes, and the simulator runtime. *)

module Message = Loe.Message
module Cls = Loe.Cls
module Inst = Loe.Inst
module Proc = Gpm.Proc
module Compile = Gpm.Compile
module Opt = Gpm.Opt

let ha : int Message.hdr = Message.declare "a"
let hb : int Message.hdr = Message.declare "b"

(* Proc *)

let test_proc_halt () =
  let p, outs = Proc.step Proc.halt 42 in
  Alcotest.(check (list int)) "no output" [] outs;
  Alcotest.(check bool) "stays halted" true (p = Proc.Halt)

let test_proc_stateful () =
  let p = Proc.stateful 0 (fun s i -> (s + i, [ s + i ])) in
  let outs = Proc.run p [ 1; 2; 3 ] in
  Alcotest.(check (list (list int))) "prefix sums" [ [ 1 ]; [ 3 ]; [ 6 ] ] outs

let test_proc_of_fun () =
  let p = Proc.of_fun (fun i -> (Proc.halt, [ i * 2 ])) in
  let outs = Proc.run p [ 5; 6 ] in
  Alcotest.(check (list (list int))) "halts after one" [ [ 10 ]; [] ] outs

(* Compilation backends *)

let sum_cls =
  Cls.state "Sum" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) (Cls.base ha)

let trace = [ Message.make ha 1; Message.make hb 9; Message.make ha 2 ]

let test_tree_backend_matches_inst () =
  let p = Compile.compile 0 sum_cls in
  Alcotest.(check (list (list int)))
    "tree backend" (Inst.run 0 sum_cls trace) (Proc.run p trace)

let test_fused_backend_matches_inst () =
  let m = Opt.compile 0 sum_cls in
  let outs = List.map (Opt.step m) trace in
  Alcotest.(check (list (list int))) "fused backend" (Inst.run 0 sum_cls trace) outs

let test_fused_cse_shares_state () =
  (* The same physical sub-class used twice is evaluated once per event:
     a stateful shared node must not be double-updated. *)
  let shared =
    Cls.state "N" ~init:(fun _ -> 0) ~upd:(fun _ _ n -> n + 1) (Cls.base ha)
  in
  let c = Cls.o2 (fun _ x y -> [ x + y ]) shared shared in
  let m = Opt.compile 0 c in
  let outs = List.map (Opt.step m) trace in
  Alcotest.(check (list (list int)))
    "counts each event once" [ [ 2 ]; [ 2 ]; [ 4 ] ] outs;
  Alcotest.(check bool) "fewer slots than tree nodes" true
    ((Opt.stats m).Opt.slots < Cls.size c)

(* Random classes for the bisimulation property, mirroring test_loe. *)

let rec gen_cls depth : int Cls.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, return (Cls.base ha));
        (3, return (Cls.base hb));
        (1, map (Cls.const "k") (int_bound 5));
      ]
  in
  if depth = 0 then leaf
  else
    let sub = gen_cls (depth - 1) in
    frequency
      [
        (2, leaf);
        (2, map (fun c -> Cls.map (fun v -> v + 1) c) sub);
        (2, map (fun c -> Cls.filter (fun v -> v mod 2 = 0) c) sub);
        ( 2,
          map
            (fun c -> Cls.state "s" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) c)
            sub );
        (2, map2 (fun a b -> Cls.( ||| ) a b) sub sub);
        (2, map2 (fun a b -> Cls.o2 (fun _ x y -> [ x + y ]) a b) sub sub);
        (1, map (fun c -> Cls.once c) sub);
        ( 1,
          map
            (fun c ->
              Cls.delegate "d" c (fun _ v -> Cls.map (fun w -> v + w) (Cls.base ha)))
            sub );
        (* Explicit sharing, to exercise CSE. *)
        ( 1,
          map
            (fun c -> Cls.o2 (fun _ x y -> [ x * y ]) c c)
            sub );
      ]

let gen_msg : Message.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (Message.make ha) (int_bound 20);
        map (Message.make hb) (int_bound 20);
      ])

let arb_cls =
  QCheck.make ~print:(fun c -> Printf.sprintf "<cls size %d>" (Cls.size c))
    (gen_cls 3)

let arb_trace = QCheck.make QCheck.Gen.(list_size (0 -- 12) gen_msg)

let prop_optimizer_bisimulation =
  QCheck.Test.make
    ~name:"optimized program bisimulates the original (proof e)" ~count:300
    (QCheck.pair arb_cls arb_trace)
    (fun (c, trace) ->
      let tree = Proc.run (Compile.compile 3 c) trace in
      let fused = Opt.compile 3 c in
      let fused_outs = List.map (Opt.step fused) trace in
      tree = fused_outs)

let prop_to_proc_equals_step =
  QCheck.Test.make ~name:"Opt.to_proc wraps the fused machine" ~count:100
    (QCheck.pair arb_cls arb_trace)
    (fun (c, trace) ->
      Proc.run (Opt.to_proc 1 c) trace
      = List.map (Opt.step (Opt.compile 1 c)) trace)

(* Sizes: Table I orderings. *)

let test_size_orderings () =
  let c =
    Cls.o2
      (fun _ v s -> [ Message.send ha s v ])
      (Cls.base ha) sum_cls
  in
  let spec = Cls.size c in
  let gpm = Compile.gpm_size c in
  let opt = Opt.opt_size c in
  Alcotest.(check bool) "gpm > spec" true (gpm > spec);
  Alcotest.(check bool) "opt < gpm" true (opt < gpm);
  Alcotest.(check bool) "opt > 0" true (opt > 0)

let test_engine_profiles () =
  Alcotest.(check (float 1e-9)) "compiled baseline" 1.0
    (Gpm.Engine_profile.cpu_factor Gpm.Engine_profile.Compiled);
  Alcotest.(check bool) "interp slower than opt" true
    (Gpm.Engine_profile.cpu_factor Gpm.Engine_profile.Interpreted
    > Gpm.Engine_profile.cpu_factor Gpm.Engine_profile.Interpreted_opt);
  Alcotest.(check int) "three engines" 3
    (List.length Gpm.Engine_profile.all)

(* Runtime on the simulator: a 3-node token ring that decrements a counter
   and reports to an observer when it reaches zero. *)

let tok : int Message.hdr = Message.declare "tok"
let done_ : int Message.hdr = Message.declare "done"

let ring_spec ~observer locs =
  let next slf =
    let rec find = function
      | a :: b :: _ when a = slf -> b
      | [ a ] when a = slf -> List.hd locs
      | _ :: rest -> find rest
      | [] -> List.hd locs
    in
    find locs
  in
  let handler =
    Cls.o2
      (fun slf v () ->
        if v > 0 then [ Message.send tok (next slf) (v - 1) ]
        else [ Message.send done_ observer slf ])
      (Cls.base tok)
      (Cls.const "unit" ())
  in
  Loe.Spec.v ~name:"ring" ~locs handler

let run_ring backend =
  let w = Sim.Engine.create () in
  let got = ref [] in
  let observer =
    Sim.Engine.spawn w ~name:"observer" (fun () _ctx -> function
      | Sim.Engine.Recv { msg; _ } -> (
          match Message.recognize done_ msg with
          | Some loc -> got := loc :: !got
          | None -> ())
      | Sim.Engine.Init | Sim.Engine.Timer _ -> ())
  in
  let ids = Gpm.Runtime.deploy ~backend w ~n:3 (ring_spec ~observer) in
  Gpm.Runtime.inject w ~dst:(List.hd ids) (Message.make tok 7);
  Sim.Engine.run w;
  (ids, !got)

let test_runtime_ring_fused () =
  let ids, got = run_ring Gpm.Runtime.Fused in
  (* 7 hops starting at node 0: 0→1→2→0→1→2→0→1; the holder of tok 0 is
     the second ring node. *)
  Alcotest.(check (list int)) "completion reported" [ List.nth ids 1 ] got

let test_runtime_ring_tree () =
  let _, got_tree = run_ring Gpm.Runtime.Tree in
  let _, got_fused = run_ring Gpm.Runtime.Fused in
  Alcotest.(check (list int)) "backends agree" got_fused got_tree

let test_runtime_delayed_send () =
  (* A delayed self-send acts as a timer: the output must re-enter the
     process after the delay. *)
  let ping : unit Message.hdr = Message.declare "ping" in
  let report : float Message.hdr = Message.declare "report" in
  let w = Sim.Engine.create () in
  let got = ref [] in
  let observer =
    Sim.Engine.spawn w ~name:"obs" (fun () ctx -> function
      | Sim.Engine.Recv { msg; _ } -> (
          match Message.recognize report msg with
          | Some _ -> got := Sim.Engine.time ctx :: !got
          | None -> ())
      | Sim.Engine.Init | Sim.Engine.Timer _ -> ())
  in
  let spec locs =
    let count =
      Cls.state "n" ~init:(fun _ -> 0) ~upd:(fun _ _ n -> n + 1) (Cls.base ping)
    in
    let handler =
      Cls.o2
        (fun slf () n ->
          if n < 3 then [ Message.send_after ping 1.0 slf () ]
          else [ Message.send report observer 0.0 ])
        (Cls.base ping) count
    in
    Loe.Spec.v ~name:"timer" ~locs handler
  in
  let ids = Gpm.Runtime.deploy w ~n:1 spec in
  Gpm.Runtime.inject w ~dst:(List.hd ids) (Message.make ping ());
  Sim.Engine.run w;
  match !got with
  | [ t ] -> Alcotest.(check bool) "two 1 s self-delays elapsed" true (t >= 2.0)
  | _ -> Alcotest.fail "expected one report"

let test_runtime_step_cost_profiles () =
  (* The same run under a slower engine must take proportionally longer. *)
  let finish profile =
    let w = Sim.Engine.create () in
    let finished = ref 0.0 in
    let observer =
      Sim.Engine.spawn w ~name:"obs" (fun () ctx -> function
        | Sim.Engine.Recv _ -> finished := Sim.Engine.time ctx
        | Sim.Engine.Init | Sim.Engine.Timer _ -> ())
    in
    let ids =
      Gpm.Runtime.deploy ~profile ~step_cost:0.01 w ~n:3 (ring_spec ~observer)
    in
    Gpm.Runtime.inject w ~dst:(List.hd ids) (Message.make tok 7);
    Sim.Engine.run w;
    !finished
  in
  let t_compiled = finish Gpm.Engine_profile.Compiled in
  let t_interp = finish Gpm.Engine_profile.Interpreted in
  Alcotest.(check bool) "interpreted ≈14x slower" true
    (t_interp > 10.0 *. t_compiled)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "gpm"
    [
      ( "proc",
        [
          Alcotest.test_case "halt" `Quick test_proc_halt;
          Alcotest.test_case "stateful" `Quick test_proc_stateful;
          Alcotest.test_case "of_fun" `Quick test_proc_of_fun;
        ] );
      ( "backends",
        [
          Alcotest.test_case "tree matches inst" `Quick
            test_tree_backend_matches_inst;
          Alcotest.test_case "fused matches inst" `Quick
            test_fused_backend_matches_inst;
          Alcotest.test_case "cse shares state" `Quick
            test_fused_cse_shares_state;
          qt prop_optimizer_bisimulation;
          qt prop_to_proc_equals_step;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "orderings" `Quick test_size_orderings;
          Alcotest.test_case "profiles" `Quick test_engine_profiles;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "ring fused" `Quick test_runtime_ring_fused;
          Alcotest.test_case "ring tree ≡ fused" `Quick test_runtime_ring_tree;
          Alcotest.test_case "delayed send" `Quick test_runtime_delayed_send;
          Alcotest.test_case "engine cost" `Quick
            test_runtime_step_cost_profiles;
        ] );
    ]
