(* Smoke tests for the experiment harness: each figure driver produces
   sane, calibrated values at miniature scale, so the benches cannot
   silently bit-rot. *)

let test_fig8_compiled_anchor () =
  (* The calibration anchor of Fig. 8: one client on the compiled engine
     delivers in ≈8.8 ms. *)
  match
    Harness.Fig8.run_engine ~msgs_per_client:30 ~clients:[ 1 ]
      Gpm.Engine_profile.Compiled
  with
  | [ p ] ->
      Alcotest.(check bool) "latency ≈ 8.8 ms" true
        (p.Harness.Fig8.latency_ms > 7.0 && p.Harness.Fig8.latency_ms < 11.0);
      Alcotest.(check bool) "throughput = 1/latency" true
        (p.Harness.Fig8.throughput > 90.0 && p.Harness.Fig8.throughput < 140.0)
  | _ -> Alcotest.fail "expected one point"

let test_fig8_engine_ordering () =
  let latency profile =
    match
      Harness.Fig8.run_engine ~msgs_per_client:10 ~clients:[ 1 ] profile
    with
    | [ p ] -> p.Harness.Fig8.latency_ms
    | _ -> Alcotest.fail "expected one point"
  in
  let interp = latency Gpm.Engine_profile.Interpreted in
  let opt = latency Gpm.Engine_profile.Interpreted_opt in
  let compiled = latency Gpm.Engine_profile.Compiled in
  Alcotest.(check bool) "interpreted > optimized > compiled" true
    (interp > opt && opt > compiled)

let test_fig9_standalone_point () =
  match
    Harness.Fig9.run_system ~quick:true Harness.Fig9.Micro
      Harness.Fig9.H2_standalone ~clients:[ 4 ]
  with
  | [ p ] ->
      Alcotest.(check bool) "standalone peak in calibrated range" true
        (p.Harness.Fig9.throughput > 5000.0
        && p.Harness.Fig9.throughput < 8000.0)
  | _ -> Alcotest.fail "expected one point"

let test_fig10_transfer_scaling () =
  let t1 = Harness.Fig10.run_transfer ~rows:500 ~wide:false in
  let t2 = Harness.Fig10.run_transfer ~rows:5000 ~wide:false in
  let t3 = Harness.Fig10.run_transfer ~rows:5000 ~wide:true in
  Alcotest.(check bool) "more rows take longer" true
    (t2.Harness.Fig10.seconds > t1.Harness.Fig10.seconds);
  Alcotest.(check bool) "wider rows take longer" true
    (t3.Harness.Fig10.seconds > t2.Harness.Fig10.seconds);
  Alcotest.(check bool) "fixed session overhead visible" true
    (t1.Harness.Fig10.seconds > 0.3)

let test_fig10_timeline_shape () =
  let t =
    Harness.Fig10.run_timeline ~rows:2000 ~crash_at:2.0 ~detect_timeout:1.0
      ~duration:10.0 ~n_clients:4 ()
  in
  Alcotest.(check bool) "throughput positive before the crash" true
    (List.exists (fun (x, y) -> x < 2.0 && y > 100.0) t.Harness.Fig10.bins);
  Alcotest.(check bool) "outage bin present" true
    (List.exists
       (fun (x, y) -> x >= 2.0 && x < 3.0 && y < 10.0)
       t.Harness.Fig10.bins);
  Alcotest.(check bool) "clients resumed" true
    (t.Harness.Fig10.resumed_at > 2.0);
  Alcotest.(check bool) "configuration adopted after detection" true
    (t.Harness.Fig10.config_delivered_at > 3.0)

let test_ablation_batching () =
  match Harness.Ablations.batching ~clients:8 ~msgs_per_client:20 () with
  | [ on; off ] ->
      Alcotest.(check bool) "batching wins" true
        (on.Harness.Ablations.throughput > 2.0 *. off.Harness.Ablations.throughput)
  | _ -> Alcotest.fail "expected two points"

let () =
  Alcotest.run "harness"
    [
      ( "fig8",
        [
          Alcotest.test_case "compiled anchor" `Quick test_fig8_compiled_anchor;
          Alcotest.test_case "engine ordering" `Quick test_fig8_engine_ordering;
        ] );
      ( "fig9",
        [ Alcotest.test_case "standalone point" `Quick test_fig9_standalone_point ] );
      ( "fig10",
        [
          Alcotest.test_case "transfer scaling" `Quick test_fig10_transfer_scaling;
          Alcotest.test_case "timeline shape" `Quick test_fig10_timeline_shape;
        ] );
      ( "ablations",
        [ Alcotest.test_case "batching" `Quick test_ablation_batching ] );
    ]
