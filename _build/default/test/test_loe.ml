(* Tests for the Logic of Events: message system, event classes, and the
   equivalence between the incremental (GPM-side) and prefix-based (LoE
   denotation) semantics — the paper's automatic proof that generated
   programs comply with their specifications, rendered as properties. *)

module Message = Loe.Message
module Cls = Loe.Cls
module Inst = Loe.Inst
module Sem = Loe.Sem
module Ilf = Loe.Ilf

(* Shared message vocabulary: all tests use these headers. *)
let ha : int Message.hdr = Message.declare "a"
let hb : int Message.hdr = Message.declare "b"
let noise : string Message.hdr = Message.declare "noise"

(* Messages *)

let test_message_roundtrip () =
  let m = Message.make ha 42 in
  Alcotest.(check (option int)) "recognized" (Some 42) (Message.recognize ha m);
  Alcotest.(check (option int)) "other header" None (Message.recognize hb m)

let test_message_same_name_distinct () =
  (* Two declarations with the same name are distinct recognizers. *)
  let h1 : int Message.hdr = Message.declare "x" in
  let h2 : int Message.hdr = Message.declare "x" in
  let m = Message.make h1 1 in
  Alcotest.(check (option int)) "own key" (Some 1) (Message.recognize h1 m);
  Alcotest.(check (option int)) "foreign key" None (Message.recognize h2 m)

let test_directed_send () =
  let d = Message.send ha 7 99 in
  Alcotest.(check int) "dst" 7 d.Message.dst;
  Alcotest.(check (float 0.0)) "no delay" 0.0 d.Message.delay;
  let d' = Message.send_after ha 2.5 7 99 in
  Alcotest.(check (float 0.0)) "delay" 2.5 d'.Message.delay

(* Single-combinator semantics (unit level, via both evaluators). *)

let both loc c trace =
  let a = Inst.run loc c trace in
  let b = Sem.eval loc c trace in
  Alcotest.(check bool)
    (Printf.sprintf "inst ≡ sem (%s)" (Cls.name_of c))
    true (a = b);
  a

let trace1 = [ Message.make ha 1; Message.make hb 2; Message.make ha 3 ]

let test_base () =
  let outs = both 0 (Cls.base ha) trace1 in
  Alcotest.(check (list (list int))) "recognizes a" [ [ 1 ]; []; [ 3 ] ] outs

let test_map_filter () =
  let c = Cls.map (fun v -> v * 10) (Cls.filter (fun v -> v > 1) (Cls.base ha)) in
  let outs = both 0 c trace1 in
  Alcotest.(check (list (list int))) "filter+map" [ []; []; [ 30 ] ] outs

let test_state_is_post_update () =
  (* Fig. 5: at a recognized event the state output includes that event's
     update; at other events it is the previous value. *)
  let c =
    Cls.state "Sum" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) (Cls.base ha)
  in
  let outs = both 0 c trace1 in
  Alcotest.(check (list (list int))) "running sum" [ [ 1 ]; [ 1 ]; [ 4 ] ] outs

let test_once () =
  let c = Cls.once (Cls.base ha) in
  let outs = both 0 c trace1 in
  Alcotest.(check (list (list int))) "fires once" [ [ 1 ]; []; [] ] outs

let test_par_order () =
  let c = Cls.( ||| ) (Cls.base ha) (Cls.map (fun v -> v * 100) (Cls.base ha)) in
  let outs = both 0 c trace1 in
  Alcotest.(check (list (list int)))
    "left outputs precede right" [ [ 1; 100 ]; []; [ 3; 300 ] ] outs

let test_compose2 () =
  let sum =
    Cls.state "S" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) (Cls.base ha)
  in
  let c = Cls.o2 (fun _loc v s -> [ (v, s) ]) (Cls.base ha) sum in
  let a = Inst.run 0 c trace1 and b = Sem.eval 0 c trace1 in
  Alcotest.(check bool) "inst ≡ sem" true (a = b);
  Alcotest.(check (list (list (pair int int))))
    "pairs value with post-update state"
    [ [ (1, 1) ]; []; [ (3, 4) ] ]
    a

let test_compose3 () =
  let cnt =
    Cls.state "N" ~init:(fun _ -> 0) ~upd:(fun _ _ n -> n + 1) (Cls.base ha)
  in
  let c =
    Cls.o3 (fun loc v n u -> [ loc + v + n + u ]) (Cls.base ha) cnt
      (Cls.const "one" 1)
  in
  let a = both 5 c trace1 in
  Alcotest.(check (list (list int))) "ternary compose"
    [ [ 5 + 1 + 1 + 1 ]; []; [ 5 + 3 + 2 + 1 ] ]
    a

let test_delegate_children_observe_suffix () =
  (* A child spawned at event 0 sees events 1.. only. *)
  let spawn _loc v = Cls.map (fun w -> (v, w)) (Cls.base ha) in
  let c = Cls.delegate "D" (Cls.base ha) spawn in
  let a = Inst.run 0 c trace1 and b = Sem.eval 0 c trace1 in
  Alcotest.(check bool) "inst ≡ sem" true (a = b);
  Alcotest.(check (list (list (pair int int))))
    "children outputs" [ []; []; [ (1, 3) ] ] a

let test_delegate_multiple_children () =
  let spawn _loc v = Cls.map (fun w -> (v * 1000) + w) (Cls.base ha) in
  let c = Cls.delegate "D" (Cls.base ha) spawn in
  let trace =
    [ Message.make ha 1; Message.make ha 2; Message.make ha 3 ]
  in
  let a = both 0 c trace in
  Alcotest.(check (list (list int)))
    "each live child reacts, in spawn order"
    [ []; [ 1002 ]; [ 1003; 2003 ] ]
    a

(* Random classes: the compliance property over the whole combinator
   algebra. *)

let gen_msg : Message.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (4, map (Message.make ha) (int_bound 20));
        (4, map (Message.make hb) (int_bound 20));
        (1, return (Message.make noise "n"));
      ])

let rec gen_cls depth : int Cls.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, return (Cls.base ha));
        (3, return (Cls.base hb));
        (1, map (Cls.const "k") (int_bound 5));
      ]
  in
  if depth = 0 then leaf
  else
    let sub = gen_cls (depth - 1) in
    frequency
      [
        (2, leaf);
        (2, map (fun c -> Cls.map (fun v -> v + 1) c) sub);
        (2, map (fun c -> Cls.filter (fun v -> v mod 2 = 0) c) sub);
        ( 2,
          map
            (fun c ->
              Cls.state "s" ~init:(fun loc -> loc) ~upd:(fun _ v s -> s + v) c)
            sub );
        (2, map2 (fun a b -> Cls.( ||| ) a b) sub sub);
        ( 2,
          map2 (fun a b -> Cls.o2 (fun loc x y -> [ loc + x + y ]) a b) sub sub
        );
        (1, map (fun c -> Cls.once c) sub);
        ( 1,
          map
            (fun c ->
              Cls.delegate "d" c (fun _ v -> Cls.map (fun w -> v + w) (Cls.base ha)))
            sub );
      ]

let arb_cls =
  QCheck.make
    ~print:(fun c -> Printf.sprintf "<cls %s, size %d>" (Cls.name_of c) (Cls.size c))
    (gen_cls 3)

let arb_trace =
  QCheck.make
    ~print:(fun ms -> String.concat ";" (List.map (fun m -> m.Message.hdr) ms))
    QCheck.Gen.(list_size (0 -- 12) gen_msg)

let prop_inst_complies_with_sem =
  QCheck.Test.make ~name:"GPM stepper complies with LoE denotation (proof c)"
    ~count:300
    (QCheck.pair arb_cls arb_trace)
    (fun (c, trace) -> Inst.run 0 c trace = Sem.eval 0 c trace)

let prop_once_at_most_once =
  QCheck.Test.make ~name:"Once produces at ≤1 event" ~count:200
    (QCheck.pair arb_cls arb_trace)
    (fun (c, trace) ->
      let outs = Inst.run 0 (Cls.once c) trace in
      List.length (List.filter (fun os -> os <> []) outs) <= 1)

let prop_par_is_union =
  QCheck.Test.make ~name:"Par output = left @ right" ~count:200
    (QCheck.triple arb_cls arb_cls arb_trace)
    (fun (a, b, trace) ->
      let l = Inst.run 0 a trace
      and r = Inst.run 0 b trace
      and p = Inst.run 0 (Cls.( ||| ) a b) trace in
      p = List.map2 (fun x y -> x @ y) l r)

let prop_state_singlevalued =
  QCheck.Test.make ~name:"State classes are single-valued" ~count:200
    (QCheck.pair arb_cls arb_trace)
    (fun (c, trace) ->
      let st =
        Cls.state "sv" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) c
      in
      List.for_all (fun os -> List.length os = 1) (Inst.run 0 st trace))

(* ILF and sizes *)

let test_ilf_size_positive () =
  let c = Cls.o2 (fun _ a b -> [ a + b ]) (Cls.base ha) (Cls.base hb) in
  let f = Ilf.of_cls ~name:"C" c in
  Alcotest.(check bool) "has nodes" true (Ilf.size f > Cls.size c);
  Alcotest.(check bool) "prints" true (String.length (Ilf.to_string f) > 0)

let test_ilf_mentions_headers () =
  let f = Ilf.of_cls ~name:"C" (Cls.base ha) in
  let s = Ilf.to_string f in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions header" true (contains s "``a``")

let test_spec_sizes () =
  let main =
    Cls.o2
      (fun _ v s -> [ Message.send ha s v ])
      (Cls.base ha)
      (Cls.state "S" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) (Cls.base ha))
  in
  let spec = Loe.Spec.v ~name:"T" ~locs:[ 0; 1 ] main in
  Alcotest.(check bool) "spec size positive" true (Loe.Spec.spec_size spec > 0);
  Alcotest.(check bool) "loe size > spec size" true
    (Loe.Spec.loe_size spec > Loe.Spec.spec_size spec)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "loe"
    [
      ( "message",
        [
          Alcotest.test_case "roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "distinct declarations" `Quick
            test_message_same_name_distinct;
          Alcotest.test_case "directed" `Quick test_directed_send;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "base" `Quick test_base;
          Alcotest.test_case "map/filter" `Quick test_map_filter;
          Alcotest.test_case "state post-update" `Quick
            test_state_is_post_update;
          Alcotest.test_case "once" `Quick test_once;
          Alcotest.test_case "par order" `Quick test_par_order;
          Alcotest.test_case "compose2" `Quick test_compose2;
          Alcotest.test_case "compose3" `Quick test_compose3;
          Alcotest.test_case "delegate suffix" `Quick
            test_delegate_children_observe_suffix;
          Alcotest.test_case "delegate multi" `Quick
            test_delegate_multiple_children;
        ] );
      ( "compliance",
        [
          qt prop_inst_complies_with_sem;
          qt prop_once_at_most_once;
          qt prop_par_is_union;
          qt prop_state_singlevalued;
        ] );
      ( "ilf",
        [
          Alcotest.test_case "size" `Quick test_ilf_size_positive;
          Alcotest.test_case "headers" `Quick test_ilf_mentions_headers;
          Alcotest.test_case "spec sizes" `Quick test_spec_sizes;
        ] );
    ]
