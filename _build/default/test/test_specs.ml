(* Tests for the constructive protocol specifications (the Table I
   artifacts): trace equivalence between the DSL-compiled processes and
   the pure protocol cores, whole-system runs through the LoE instance
   semantics, and the Table I size orderings. *)

module Message = Loe.Message
module Cls = Loe.Cls
module Inst = Loe.Inst
module I = Consensus.Consensus_intf
module TTS = Consensus.Twothird_spec
module PXS = Consensus.Paxos_spec

let locs = [ 0; 1; 2; 3 ]
let learner = 99

(* ---------- TwoThird spec ≡ pure core ---------- *)

(* Drive the same input sequence through (a) the specification's instance
   semantics at location 0 and (b) the pure core, and compare outputs. *)
let tt_events_gen =
  QCheck.Gen.(
    list_size (0 -- 25)
      (frequency
         [
           (2, map (fun c -> `Propose (Printf.sprintf "v%d" c)) (int_bound 3));
           ( 5,
             map2
               (fun src (slot, round, c) ->
                 `Vote
                   ( (src mod 4),
                     {
                       Consensus.Twothird_multi.slot;
                       vote =
                         Consensus.Twothird.Vote
                           { round; value = Printf.sprintf "v%d" c };
                     } ))
               (int_bound 3)
               (triple (int_bound 3) (int_bound 2) (int_bound 3)) );
           (1, return `Tick);
         ]))

let prop_twothird_spec_complies =
  QCheck.Test.make ~name:"TwoThird spec ≡ pure core (trace equivalence)"
    ~count:150 (QCheck.make tt_events_gen) (fun events ->
      let spec, io = TTS.make ~locs ~learner in
      (* (a) through the DSL instance semantics *)
      let msgs =
        List.map
          (function
            | `Propose c -> Message.make io.TTS.propose c
            | `Vote (src, m) -> Message.make io.TTS.vote (src, m)
            | `Tick -> Message.make io.TTS.tick ())
          events
      in
      let spec_outs = List.concat (Inst.run 0 spec.Loe.Spec.main msgs) in
      (* (b) directly against the pure core *)
      let core = ref (Consensus.Twothird_multi.create ~self:0 ~members:locs) in
      let core_acts =
        List.concat_map
          (fun ev ->
            let c, acts =
              match ev with
              | `Propose v -> Consensus.Twothird_multi.propose !core v
              | `Vote (src, m) -> Consensus.Twothird_multi.recv !core ~src m
              | `Tick -> Consensus.Twothird_multi.tick !core
            in
            core := c;
            acts)
          events
      in
      (* Compare output streams structurally. *)
      let summarize_spec (d : Message.directed) =
        match Message.recognize io.TTS.vote d.Message.msg with
        | Some (src, m) -> `V (d.Message.dst, src, m)
        | None -> (
            match Message.recognize io.TTS.deliver d.Message.msg with
            | Some (s, c) -> `D (d.Message.dst, s, c)
            | None -> `T)
      in
      let summarize_core = function
        | I.Send (dst, m) -> `V (dst, 0, m)
        | I.Deliver { s; c } -> `D (learner, s, c)
        | I.Set_timer _ -> `T
      in
      List.map summarize_spec spec_outs = List.map summarize_core core_acts)

(* ---------- whole-system runs through the instance semantics ---------- *)

(* A miniature event loop: one Inst per location, a FIFO network of
   directed messages (delays ignored), until quiescence. *)
let run_system main_of locs injections ~max_steps =
  let insts = List.map (fun l -> (l, ref (Inst.create l (main_of l)))) locs in
  let outputs = ref [] in
  let q = Queue.create () in
  List.iter (fun (dst, msg) -> Queue.push (dst, msg) q) injections;
  let steps = ref 0 in
  while (not (Queue.is_empty q)) && !steps < max_steps do
    incr steps;
    let dst, msg = Queue.pop q in
    match List.assoc_opt dst insts with
    | None -> outputs := (dst, msg) :: !outputs
    | Some inst ->
        let inst', outs = Inst.step dst !inst msg in
        inst := inst';
        (* Delayed self-sends encode timers (retransmission); the loop
           delivers reliably in FIFO order, so they are unnecessary and
           would keep the system from quiescing. *)
        List.iter
          (fun (d : Message.directed) ->
            if d.Message.delay <= 0.0 then
              Queue.push (d.Message.dst, d.Message.msg) q)
          outs
  done;
  (List.rev !outputs, !steps)

let test_twothird_spec_system_decides () =
  let spec, io = TTS.make ~locs ~learner in
  let main_of _ = spec.Loe.Spec.main in
  let injections =
    List.mapi
      (fun i l -> (l, Message.make io.TTS.propose (Printf.sprintf "p%d" i)))
      locs
  in
  let outputs, steps = run_system main_of locs injections ~max_steps:20_000 in
  Alcotest.(check bool) "terminates" true (steps < 20_000);
  let deliveries =
    List.filter_map
      (fun (dst, msg) ->
        if dst = learner then Message.recognize io.TTS.deliver msg else None)
      outputs
  in
  (* Each member delivers every decided slot to the learner: 4 members × 4
     slots; all agree per slot. *)
  Alcotest.(check bool) "deliveries happened" true (List.length deliveries > 0);
  let by_slot = Hashtbl.create 8 in
  List.iter
    (fun (s, c) ->
      match Hashtbl.find_opt by_slot s with
      | None -> Hashtbl.add by_slot s c
      | Some c' ->
          Alcotest.(check string) (Printf.sprintf "slot %d agreement" s) c' c)
    deliveries;
  Alcotest.(check int) "all four proposals decided" 4 (Hashtbl.length by_slot)

let test_paxos_spec_system_decides () =
  let locs = [ 0; 1; 2 ] in
  let spec, io = PXS.make ~locs ~learner in
  let main_of _ = spec.Loe.Spec.main in
  let injections =
    (0, Message.make io.PXS.start ())
    :: List.map (fun l -> (l, Message.make io.PXS.request (Printf.sprintf "c%d" l))) locs
  in
  let outputs, steps = run_system main_of locs injections ~max_steps:50_000 in
  Alcotest.(check bool) "terminates" true (steps < 50_000);
  let performs =
    List.filter_map
      (fun (dst, msg) ->
        if dst = learner then Message.recognize io.PXS.perform msg else None)
      outputs
  in
  (* Three commands, three members each performing them: 9 notifications,
     agreeing per slot. *)
  let by_slot : (int, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s, c) ->
      match Hashtbl.find_opt by_slot s with
      | None -> Hashtbl.add by_slot s c
      | Some c' ->
          Alcotest.(check string) (Printf.sprintf "slot %d agreement" s) c' c)
    performs;
  Alcotest.(check int) "three slots decided" 3 (Hashtbl.length by_slot);
  Alcotest.(check int) "every member performed every slot" 9
    (List.length performs)

let test_tob_spec_system_delivers () =
  let locs = [ 0; 1; 2 ] in
  let spec, io = Broadcast.Tob_spec.make ~locs ~subscribers:[ learner ] in
  let main_of _ = spec.Loe.Spec.main in
  let entry i = { Broadcast.Tob.origin = 50; id = i; payload = Printf.sprintf "m%d" i } in
  let injections =
    List.map (fun l -> (l, Message.make io.Broadcast.Tob_spec.start ())) locs
    @ List.init 3 (fun i ->
          (0, Message.make io.Broadcast.Tob_spec.bcast (entry i)))
  in
  let outputs, steps = run_system main_of locs injections ~max_steps:100_000 in
  Alcotest.(check bool) "terminates" true (steps < 100_000);
  let deliveries =
    List.filter_map
      (fun (dst, msg) ->
        if dst = learner then
          Message.recognize io.Broadcast.Tob_spec.deliver msg
        else None)
      outputs
  in
  (* Every member fans every delivery out to the learner; sequence numbers
     must be consistent per entry. *)
  Alcotest.(check bool) "messages delivered" true (List.length deliveries >= 3);
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Broadcast.Tob.deliver) ->
      match Hashtbl.find_opt tbl d.Broadcast.Tob.seqno with
      | None -> Hashtbl.add tbl d.Broadcast.Tob.seqno d.Broadcast.Tob.entry
      | Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "seqno %d consistent" d.Broadcast.Tob.seqno)
            true
            (e = d.Broadcast.Tob.entry))
    deliveries;
  Alcotest.(check int) "three distinct messages" 3 (Hashtbl.length tbl)

(* ---------- Table I orderings ---------- *)

let test_table1_orderings () =
  let rows = Harness.Table1.rows () in
  let find name =
    List.find (fun r -> r.Harness.Table1.name = name) rows
  in
  let clk = find "CLK"
  and tt = find "TwoThird Consensus"
  and px = find "Paxos-Synod"
  and tob = find "Broadcast Service" in
  let spec r = r.Harness.Table1.spec_nodes in
  Alcotest.(check bool) "CLK smallest" true (spec clk < spec tt);
  Alcotest.(check bool) "TwoThird < Broadcast" true (spec tt < spec tob);
  Alcotest.(check bool) "Broadcast < Paxos" true (spec tob < spec px);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Harness.Table1.name ^ ": LoE > EventML")
        true
        (r.Harness.Table1.loe_nodes > r.Harness.Table1.spec_nodes);
      Alcotest.(check bool)
        (r.Harness.Table1.name ^ ": opt < GPM")
        true
        (r.Harness.Table1.opt_nodes < r.Harness.Table1.gpm_nodes))
    rows

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "specs"
    [
      ( "twothird-spec",
        [
          qt prop_twothird_spec_complies;
          Alcotest.test_case "system decides" `Quick
            test_twothird_spec_system_decides;
        ] );
      ( "paxos-spec",
        [ Alcotest.test_case "system decides" `Quick test_paxos_spec_system_decides ] );
      ( "tob-spec",
        [ Alcotest.test_case "system delivers" `Quick test_tob_spec_system_delivers ] );
      ( "table1",
        [ Alcotest.test_case "size orderings" `Quick test_table1_orderings ] );
    ]
