(* Tests for the storage engine: B+-tree and AVL structural invariants
   (qcheck vs a Map model), diverse backends, database operations and
   transactions, the lock manager, SQL lexer/parser/executor, and the
   state-transfer dump/load path. *)

module Value = Storage.Value
module Schema = Storage.Schema
module Btree = Storage.Btree
module Avl = Storage.Avl
module Store = Storage.Store
module Database = Storage.Database
module Lock = Storage.Lock
module Sql = Storage.Sql_exec

(* ---------- B+-tree ---------- *)

type op = Ins of int * int | Del of int

let gen_ops =
  QCheck.Gen.(
    list_size (0 -- 400)
      (frequency
         [
           (3, map2 (fun k v -> Ins (k mod 97, v)) (int_bound 1000) (int_bound 1000));
           (2, map (fun k -> Del (k mod 97)) (int_bound 1000));
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Ins (k, v) -> Printf.sprintf "i%d=%d" k v
             | Del k -> Printf.sprintf "d%d" k)
           ops))
    gen_ops

module Imap = Map.Make (Int)

let apply_btree ops =
  List.fold_left
    (fun (t, m) -> function
      | Ins (k, v) -> (Btree.insert t k v, Imap.add k v m)
      | Del k -> (Btree.remove t k, Imap.remove k m))
    (Btree.create ~cmp:Int.compare, Imap.empty)
    ops

let prop_btree_model =
  QCheck.Test.make ~name:"btree ≡ Map model" ~count:300 arb_ops (fun ops ->
      let t, m = apply_btree ops in
      Btree.cardinal t = Imap.cardinal m
      && Imap.for_all (fun k v -> Btree.find t k = Some v) m
      && Btree.fold (fun k v acc -> acc && Imap.find_opt k m = Some v) t true)

let prop_btree_invariants =
  QCheck.Test.make ~name:"btree structural invariants" ~count:300 arb_ops
    (fun ops ->
      let t, _ = apply_btree ops in
      match Btree.check t with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "invariant broken: %s" e)

let prop_btree_iter_sorted =
  QCheck.Test.make ~name:"btree iterates in key order" ~count:200 arb_ops
    (fun ops ->
      let t, _ = apply_btree ops in
      let keys = ref [] in
      Btree.iter (fun k _ -> keys := k :: !keys) t;
      let keys = List.rev !keys in
      List.sort_uniq compare keys = keys)

let test_btree_bulk () =
  (* Large sequential + reverse insertions force deep splits. *)
  let t = ref (Btree.create ~cmp:Int.compare) in
  for i = 0 to 4999 do
    t := Btree.insert !t i (i * 2)
  done;
  for i = 9999 downto 5000 do
    t := Btree.insert !t i (i * 2)
  done;
  Alcotest.(check int) "cardinal" 10_000 (Btree.cardinal !t);
  Alcotest.(check bool) "height logarithmic" true (Btree.height !t <= 6);
  (match Btree.check !t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  for i = 0 to 9999 do
    if i mod 3 <> 0 then t := Btree.remove !t i
  done;
  (match Btree.check !t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "cardinal after deletes" 3334 (Btree.cardinal !t);
  Alcotest.(check (option int)) "survivor" (Some 18) (Btree.find !t 9)

let test_btree_range () =
  let t = ref (Btree.create ~cmp:Int.compare) in
  for i = 0 to 99 do
    t := Btree.insert !t i i
  done;
  let got = ref [] in
  Btree.iter_range ~lo:(Some 10) ~hi:(Some 20) (fun k _ -> got := k :: !got) !t;
  Alcotest.(check (list int)) "inclusive range"
    (List.init 11 (fun i -> 10 + i))
    (List.rev !got);
  let got = ref [] in
  Btree.iter_range ~lo:None ~hi:(Some 2) (fun k _ -> got := k :: !got) !t;
  Alcotest.(check (list int)) "open low" [ 0; 1; 2 ] (List.rev !got)

let test_btree_minmax () =
  let t =
    List.fold_left
      (fun t k -> Btree.insert t k (k * 10))
      (Btree.create ~cmp:Int.compare)
      [ 5; 1; 9; 3 ]
  in
  Alcotest.(check (option (pair int int))) "min" (Some (1, 10)) (Btree.min_binding t);
  Alcotest.(check (option (pair int int))) "max" (Some (9, 90)) (Btree.max_binding t);
  Alcotest.(check (option (pair int int))) "empty min" None
    (Btree.min_binding (Btree.create ~cmp:Int.compare))

(* ---------- AVL ---------- *)

let apply_avl ops =
  List.fold_left
    (fun (t, m) -> function
      | Ins (k, v) -> (Avl.insert t k v, Imap.add k v m)
      | Del k -> (Avl.remove t k, Imap.remove k m))
    (Avl.create ~cmp:Int.compare, Imap.empty)
    ops

let prop_avl_model =
  QCheck.Test.make ~name:"avl ≡ Map model" ~count:300 arb_ops (fun ops ->
      let t, m = apply_avl ops in
      Avl.cardinal t = Imap.cardinal m
      && Imap.for_all (fun k v -> Avl.find t k = Some v) m)

let prop_avl_balanced =
  QCheck.Test.make ~name:"avl stays balanced and ordered" ~count:300 arb_ops
    (fun ops ->
      let t, _ = apply_avl ops in
      match Avl.check t with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "avl: %s" e)

(* ---------- Backends behave identically ---------- *)

let prop_backends_agree =
  QCheck.Test.make ~name:"hazel/hickory/dogwood agree" ~count:150 arb_ops
    (fun ops ->
      let run kind =
        let s = Store.create kind in
        List.iter
          (function
            | Ins (k, v) ->
                s.Store.insert [ Value.Int k ] [| Value.Int k; Value.Int v |]
            | Del k -> ignore (s.Store.delete [ Value.Int k ]))
          ops;
        let out = ref [] in
        s.Store.iter_sorted (fun key row -> out := (key, row) :: !out);
        (s.Store.count (), List.rev !out)
      in
      let h = run Store.Hazel in
      let b = run Store.Hickory in
      let a = run Store.Dogwood in
      h = b && b = a)

(* ---------- Database ---------- *)

let bank_schema =
  Schema.v ~table:"T"
    ~columns:[ ("ID", Value.T_int); ("V", Value.T_int) ]
    ~pkey:[ "ID" ]

let mk_db () =
  let db = Database.create Store.Hazel in
  (match Database.create_table db bank_schema with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  db

let test_db_insert_get () =
  let db = mk_db () in
  Alcotest.(check (result unit string)) "insert"
    (Ok ())
    (Database.insert db "T" [| Value.Int 1; Value.Int 10 |]);
  Alcotest.(check bool) "dup key rejected" true
    (Result.is_error (Database.insert db "T" [| Value.Int 1; Value.Int 99 |]));
  match Database.get db "T" [ Value.Int 1 ] with
  | Some row -> Alcotest.(check bool) "value" true (row.(1) = Value.Int 10)
  | None -> Alcotest.fail "row missing"

let test_db_schema_checks () =
  let db = mk_db () in
  Alcotest.(check bool) "arity" true
    (Result.is_error (Database.insert db "T" [| Value.Int 1 |]));
  Alcotest.(check bool) "type" true
    (Result.is_error (Database.insert db "T" [| Value.Text "x"; Value.Int 0 |]));
  Alcotest.(check bool) "null pk" true
    (Result.is_error (Database.insert db "T" [| Value.Null; Value.Int 0 |]));
  Alcotest.(check bool) "unknown table" true
    (Result.is_error (Database.insert db "NOPE" [| Value.Int 1; Value.Int 2 |]))

let test_db_update_delete () =
  let db = mk_db () in
  ignore (Database.insert db "T" [| Value.Int 1; Value.Int 10 |]);
  (match
     Database.update db "T" [ Value.Int 1 ] (fun r ->
         r.(1) <- Value.Int 20;
         r)
   with
  | Ok true -> ()
  | _ -> Alcotest.fail "update failed");
  Alcotest.(check bool) "pk change rejected" true
    (Result.is_error
       (Database.update db "T" [ Value.Int 1 ] (fun r ->
            r.(0) <- Value.Int 9;
            r)));
  Alcotest.(check (result bool string)) "delete" (Ok true)
    (Database.delete db "T" [ Value.Int 1 ]);
  Alcotest.(check (result bool string)) "delete absent" (Ok false)
    (Database.delete db "T" [ Value.Int 1 ])

let test_db_rollback () =
  let db = mk_db () in
  ignore (Database.insert db "T" [| Value.Int 1; Value.Int 10 |]);
  Database.begin_txn db;
  ignore (Database.insert db "T" [| Value.Int 2; Value.Int 20 |]);
  ignore
    (Database.update db "T" [ Value.Int 1 ] (fun r ->
         r.(1) <- Value.Int 99;
         r));
  ignore (Database.delete db "T" [ Value.Int 1 ]);
  Database.rollback db;
  Alcotest.(check int) "row count restored" 1 (Database.row_count db "T");
  match Database.get db "T" [ Value.Int 1 ] with
  | Some row -> Alcotest.(check bool) "value restored" true (row.(1) = Value.Int 10)
  | None -> Alcotest.fail "row 1 lost by rollback"

let prop_rollback_restores_hash =
  QCheck.Test.make ~name:"rollback restores content hash" ~count:150
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 20) (int_bound 100)))
    (fun kvs ->
      let db = mk_db () in
      for i = 0 to 9 do
        ignore (Database.insert db "T" [| Value.Int i; Value.Int i |])
      done;
      let before = Database.content_hash db in
      Database.begin_txn db;
      List.iter
        (fun (k, v) ->
          ignore (Database.upsert db "T" [| Value.Int k; Value.Int v |]);
          if v mod 3 = 0 then ignore (Database.delete db "T" [ Value.Int k ]))
        kvs;
      Database.rollback db;
      Database.content_hash db = before)

let test_db_dump_load_roundtrip () =
  let src = Database.create Store.Hickory in
  ignore (Database.create_table src bank_schema);
  for i = 0 to 99 do
    ignore (Database.insert src "T" [| Value.Int i; Value.Int (i * i) |])
  done;
  let dst = Database.create Store.Dogwood in
  ignore (Database.create_table dst bank_schema);
  (* Pre-populate with junk that the snapshot must not resurrect. *)
  ignore (Database.insert dst "T" [| Value.Int 500; Value.Int 1 |]);
  Database.clear_data dst;
  (match Database.load_rows dst (Database.dump src) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "row count" 100 (Database.row_count dst "T");
  Alcotest.(check int) "content hash equal across backends"
    (Database.content_hash src) (Database.content_hash dst)

let test_db_cost_accounting () =
  let db = mk_db () in
  ignore (Database.take_cost db);
  ignore (Database.insert db "T" [| Value.Int 1; Value.Int 1 |]);
  let c1 = Database.take_cost db in
  Alcotest.(check bool) "write charged" true (c1 > 0.0);
  Alcotest.(check (float 0.0)) "reset" 0.0 (Database.take_cost db);
  ignore (Database.get db "T" [ Value.Int 1 ]);
  let c2 = Database.take_cost db in
  Alcotest.(check bool) "read cheaper than write" true (c2 < c1)

(* ---------- Secondary indexes ---------- *)

let people_schema =
  Schema.v ~table:"P"
    ~columns:[ ("ID", Value.T_int); ("CITY", Value.T_text); ("AGE", Value.T_int) ]
    ~pkey:[ "ID" ]

let mk_people () =
  let db = Database.create Store.Hazel in
  (match Database.create_table db people_schema with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let cities = [| "oslo"; "bern"; "oslo"; "kyiv"; "bern"; "oslo" |] in
  Array.iteri
    (fun i city ->
      ignore
        (Database.insert db "P"
           [| Value.Int i; Value.Text city; Value.Int (20 + i) |]))
    cities;
  db

let rows_sorted rows = List.sort compare rows

let test_index_lookup () =
  let db = mk_people () in
  (match Database.create_index db "P" "CITY" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Database.lookup_eq db "P" ~column:"CITY" ~value:(Value.Text "oslo") with
  | Ok rows ->
      Alcotest.(check int) "three oslo rows" 3 (List.length rows);
      Alcotest.(check bool) "all oslo" true
        (List.for_all (fun r -> r.(1) = Value.Text "oslo") rows)
  | Error e -> Alcotest.fail e

let test_index_maintained_by_writes () =
  let db = mk_people () in
  ignore (Database.create_index db "P" "CITY");
  ignore
    (Database.update db "P" [ Value.Int 0 ] (fun r ->
         r.(1) <- Value.Text "kyiv";
         r));
  ignore (Database.delete db "P" [ Value.Int 3 ]);
  ignore (Database.insert db "P" [| Value.Int 9; Value.Text "kyiv"; Value.Int 50 |]);
  let lookup city =
    match Database.lookup_eq db "P" ~column:"CITY" ~value:(Value.Text city) with
    | Ok rows -> List.length rows
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "oslo shrank" 2 (lookup "oslo");
  Alcotest.(check int) "kyiv = update + insert - delete" 2 (lookup "kyiv")

let test_index_maintained_by_rollback () =
  let db = mk_people () in
  ignore (Database.create_index db "P" "CITY");
  let before =
    match Database.lookup_eq db "P" ~column:"CITY" ~value:(Value.Text "bern") with
    | Ok rows -> rows_sorted rows
    | Error e -> Alcotest.fail e
  in
  Database.begin_txn db;
  ignore
    (Database.update db "P" [ Value.Int 1 ] (fun r ->
         r.(1) <- Value.Text "rome";
         r));
  ignore (Database.delete db "P" [ Value.Int 4 ]);
  ignore (Database.insert db "P" [| Value.Int 7; Value.Text "bern"; Value.Int 1 |]);
  Database.rollback db;
  (match Database.lookup_eq db "P" ~column:"CITY" ~value:(Value.Text "bern") with
  | Ok rows -> Alcotest.(check bool) "index restored" true (rows_sorted rows = before)
  | Error e -> Alcotest.fail e);
  match Database.lookup_eq db "P" ~column:"CITY" ~value:(Value.Text "rome") with
  | Ok rows -> Alcotest.(check int) "phantom gone" 0 (List.length rows)
  | Error e -> Alcotest.fail e

let prop_index_agrees_with_scan =
  QCheck.Test.make ~name:"index lookup ≡ filtered scan" ~count:150
    QCheck.(list_of_size Gen.(0 -- 60) (pair (int_bound 30) (int_bound 5)))
    (fun kvs ->
      let db = Database.create Store.Hickory in
      ignore (Database.create_table db people_schema);
      ignore (Database.create_index db "P" "AGE");
      List.iter
        (fun (id, age) ->
          match Database.upsert db "P" [| Value.Int id; Value.Text "x"; Value.Int age |] with
          | Ok () | Error _ -> ())
        kvs;
      List.for_all
        (fun age ->
          let via_index =
            match
              Database.lookup_eq db "P" ~column:"AGE" ~value:(Value.Int age)
            with
            | Ok rows -> rows_sorted rows
            | Error _ -> []
          in
          let via_scan =
            match Database.scan db "P" ~pred:(fun r -> r.(2) = Value.Int age) with
            | Ok rows -> rows_sorted rows
            | Error _ -> []
          in
          via_index = via_scan)
        [ 0; 1; 2; 3; 4; 5 ])

(* ---------- Lock manager ---------- *)

let test_lock_table_level () =
  let l = Lock.create Lock.Table_level in
  Alcotest.(check bool) "t1 granted" true
    (Lock.acquire l ~txn:1 ~table:"A" ~key:(Some [ Value.Int 1 ]) = `Granted);
  Alcotest.(check bool) "t2 queued on other row (table lock)" true
    (Lock.acquire l ~txn:2 ~table:"A" ~key:(Some [ Value.Int 2 ]) = `Queued);
  Alcotest.(check (list int)) "t2 granted on release" [ 2 ]
    (Lock.release_all l ~txn:1)

let test_lock_row_level () =
  let l = Lock.create Lock.Row_level in
  Alcotest.(check bool) "t1 row1" true
    (Lock.acquire l ~txn:1 ~table:"A" ~key:(Some [ Value.Int 1 ]) = `Granted);
  Alcotest.(check bool) "t2 row2 independent" true
    (Lock.acquire l ~txn:2 ~table:"A" ~key:(Some [ Value.Int 2 ]) = `Granted);
  Alcotest.(check bool) "t3 row1 queued" true
    (Lock.acquire l ~txn:3 ~table:"A" ~key:(Some [ Value.Int 1 ]) = `Queued)

let test_lock_fifo_and_reentrant () =
  let l = Lock.create Lock.Table_level in
  ignore (Lock.acquire l ~txn:1 ~table:"A" ~key:None);
  Alcotest.(check bool) "reentrant" true
    (Lock.acquire l ~txn:1 ~table:"A" ~key:None = `Granted);
  ignore (Lock.acquire l ~txn:2 ~table:"A" ~key:None);
  ignore (Lock.acquire l ~txn:3 ~table:"A" ~key:None);
  Alcotest.(check (list int)) "fifo grant" [ 2 ] (Lock.release_all l ~txn:1);
  Alcotest.(check (list int)) "next in line" [ 3 ] (Lock.release_all l ~txn:2)

let test_lock_cancel () =
  let l = Lock.create Lock.Table_level in
  ignore (Lock.acquire l ~txn:1 ~table:"A" ~key:None);
  ignore (Lock.acquire l ~txn:2 ~table:"A" ~key:None);
  Lock.cancel l ~txn:2;
  Alcotest.(check (list int)) "cancelled waiter skipped" []
    (Lock.release_all l ~txn:1)

(* ---------- SQL ---------- *)

let exec_ok db sql =
  match Sql.exec_sql db sql with
  | Ok r -> r
  | Error e -> Alcotest.fail (sql ^ " -> " ^ e)

let test_sql_end_to_end () =
  let db = Database.create Store.Hazel in
  ignore
    (exec_ok db
       "CREATE TABLE accounts (id INT, owner TEXT, balance INT, PRIMARY KEY (id))");
  ignore
    (exec_ok db
       "INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 50), (3, 'cy', 7)");
  (match exec_ok db "SELECT balance FROM accounts WHERE id = 2" with
  | Sql.Rows { rows = [ [| Value.Int 50 |] ]; _ } -> ()
  | _ -> Alcotest.fail "point select");
  (match exec_ok db "UPDATE accounts SET balance = balance + 10 WHERE id = 2" with
  | Sql.Affected 1 -> ()
  | _ -> Alcotest.fail "update");
  (match
     exec_ok db "SELECT owner FROM accounts WHERE balance >= 60 ORDER BY owner DESC"
   with
  | Sql.Rows { rows = [ [| Value.Text "bob" |]; [| Value.Text "ada" |] ]; _ } -> ()
  | _ -> Alcotest.fail "scan + order");
  (match exec_ok db "DELETE FROM accounts WHERE balance < 10" with
  | Sql.Affected 1 -> ()
  | _ -> Alcotest.fail "delete");
  match exec_ok db "SELECT * FROM accounts" with
  | Sql.Rows { rows; _ } -> Alcotest.(check int) "two rows left" 2 (List.length rows)
  | _ -> Alcotest.fail "select star"

let test_sql_txn_stmts () =
  let db = Database.create Store.Hazel in
  ignore (exec_ok db "CREATE TABLE t (id INT, v INT)");
  ignore (exec_ok db "BEGIN");
  ignore (exec_ok db "INSERT INTO t VALUES (1, 1)");
  ignore (exec_ok db "ROLLBACK");
  Alcotest.(check int) "rolled back" 0 (Database.row_count db "T");
  ignore (exec_ok db "BEGIN");
  ignore (exec_ok db "INSERT INTO t VALUES (1, 1)");
  ignore (exec_ok db "COMMIT");
  Alcotest.(check int) "committed" 1 (Database.row_count db "T")

let test_sql_errors () =
  let db = Database.create Store.Hazel in
  Alcotest.(check bool) "unknown table" true
    (Result.is_error (Sql.exec_sql db "SELECT * FROM nope"));
  Alcotest.(check bool) "parse error" true
    (Result.is_error (Sql.exec_sql db "SELEC * FROM t"));
  Alcotest.(check bool) "unterminated string" true
    (Result.is_error (Sql.exec_sql db "SELECT * FROM t WHERE a = 'oops"));
  ignore (exec_ok db "CREATE TABLE t (id INT, v INT)");
  Alcotest.(check bool) "unknown column" true
    (Result.is_error (Sql.exec_sql db "SELECT nope FROM t"))

let test_sql_limit_and_star_order () =
  let db = Database.create Store.Hazel in
  ignore (exec_ok db "CREATE TABLE t (id INT, v INT)");
  for i = 1 to 10 do
    ignore (exec_ok db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (100 - i)))
  done;
  match exec_ok db "SELECT id FROM t ORDER BY v ASC LIMIT 3" with
  | Sql.Rows { rows; _ } ->
      Alcotest.(check int) "limited" 3 (List.length rows);
      (match rows with
      | [| Value.Int first |] :: _ -> Alcotest.(check int) "smallest v first" 10 first
      | _ -> Alcotest.fail "unexpected shape")
  | _ -> Alcotest.fail "select"

let test_sql_aggregates () =
  let db = Database.create Store.Hazel in
  ignore (exec_ok db "CREATE TABLE t (id INT, v INT, w FLOAT)");
  for i = 1 to 10 do
    ignore
      (exec_ok db
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d.5)" i (i * 10) i))
  done;
  (match exec_ok db "SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t" with
  | Sql.Rows { rows = [ [| Value.Int 10; Value.Int 550; Value.Int 10; Value.Int 100; Value.Float avg |] ]; _ } ->
      Alcotest.(check (float 1e-9)) "avg" 55.0 avg
  | _ -> Alcotest.fail "aggregate row shape");
  match exec_ok db "SELECT COUNT(*) FROM t WHERE v > 50" with
  | Sql.Rows { rows = [ [| Value.Int 5 |] ]; _ } -> ()
  | _ -> Alcotest.fail "filtered count"

let test_sql_between_in () =
  let db = Database.create Store.Hazel in
  ignore (exec_ok db "CREATE TABLE t (id INT, v INT)");
  for i = 1 to 10 do
    ignore (exec_ok db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done;
  (match exec_ok db "SELECT COUNT(*) FROM t WHERE v BETWEEN 3 AND 6" with
  | Sql.Rows { rows = [ [| Value.Int 4 |] ]; _ } -> ()
  | _ -> Alcotest.fail "between");
  match exec_ok db "SELECT COUNT(*) FROM t WHERE id IN (1, 5, 9, 42)" with
  | Sql.Rows { rows = [ [| Value.Int 3 |] ]; _ } -> ()
  | _ -> Alcotest.fail "in list"

let test_sql_create_index_and_plan () =
  let db = Database.create Store.Hazel in
  ignore (exec_ok db "CREATE TABLE t (id INT, city TEXT)");
  for i = 1 to 200 do
    ignore
      (exec_ok db
         (Printf.sprintf "INSERT INTO t VALUES (%d, '%s')" i
            (if i mod 2 = 0 then "even" else "odd")))
  done;
  ignore (exec_ok db "CREATE INDEX city_idx ON t (city)");
  ignore (Storage.Database.take_cost db);
  (match exec_ok db "SELECT id FROM t WHERE city = 'even'" with
  | Sql.Rows { rows; _ } -> Alcotest.(check int) "indexed select" 100 (List.length rows)
  | _ -> Alcotest.fail "rows expected");
  let indexed_cost = Storage.Database.take_cost db in
  (* Same query without the index support: compare against a scan on an
     unindexed column with the same selectivity. *)
  (match exec_ok db "SELECT id FROM t WHERE city <> 'odd'" with
  | Sql.Rows { rows; _ } -> Alcotest.(check int) "scan select" 100 (List.length rows)
  | _ -> Alcotest.fail "rows expected");
  let scan_cost = Storage.Database.take_cost db in
  Alcotest.(check bool) "planner used the cheaper index path" true
    (indexed_cost < scan_cost *. 200.0 && indexed_cost > 0.0);
  Alcotest.(check (list string)) "indexed_columns" [ "CITY" ]
    (Storage.Database.indexed_columns db "T")

(* Parser round-trip: print then re-parse equals the original AST. *)
let sql_corpus =
  [
    "SELECT * FROM t";
    "SELECT a, b FROM t WHERE (a = 1) AND (b < 'x') ORDER BY a ASC LIMIT 5";
    "INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)";
    "UPDATE t SET a = (a + 1), b = 'y' WHERE NOT (a >= 10)";
    "DELETE FROM t WHERE (a <> 3) OR (b = TRUE)";
    "SELECT COUNT(*), SUM(a), MIN(a), MAX(b), AVG(c) FROM t";
    "SELECT * FROM t WHERE (a BETWEEN 1 AND 9) AND (b IN (1, 'x', NULL))";
    "CREATE INDEX ON t (a)";
    "CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL, PRIMARY KEY (a, b))";
    "BEGIN";
    "COMMIT";
    "ROLLBACK";
  ]

let test_sql_roundtrip () =
  List.iter
    (fun sql ->
      match Storage.Sql_parser.parse sql with
      | Error e -> Alcotest.fail (sql ^ ": " ^ e)
      | Ok ast -> (
          let printed = Storage.Sql_ast.to_string ast in
          match Storage.Sql_parser.parse printed with
          | Error e -> Alcotest.fail (printed ^ ": " ^ e)
          | Ok ast2 ->
              Alcotest.(check bool)
                (sql ^ " round-trips") true (ast = ast2)))
    sql_corpus

let prop_value_codec_roundtrip =
  let gen_value =
    QCheck.Gen.(
      frequency
        [
          (1, return Value.Null);
          (3, map (fun i -> Value.Int i) int);
          (2, map (fun f -> Value.Float f) (float_bound_exclusive 1e6));
          (3, map (fun s -> Value.Text s) (string_size (0 -- 30)));
          (1, map (fun b -> Value.Bool b) bool);
        ])
  in
  QCheck.Test.make ~name:"shadowdb value codec round-trips" ~count:300
    (QCheck.make ~print:Value.to_string gen_value)
    (fun v ->
      match Shadowdb.Codec.decode_value (Shadowdb.Codec.encode_value v) with
      | Ok (v', "") -> Value.equal v v'
      | Ok _ | Error _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "storage"
    [
      ( "btree",
        [
          qt prop_btree_model;
          qt prop_btree_invariants;
          qt prop_btree_iter_sorted;
          Alcotest.test_case "bulk" `Quick test_btree_bulk;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "minmax" `Quick test_btree_minmax;
        ] );
      ("avl", [ qt prop_avl_model; qt prop_avl_balanced ]);
      ("backends", [ qt prop_backends_agree ]);
      ( "database",
        [
          Alcotest.test_case "insert/get" `Quick test_db_insert_get;
          Alcotest.test_case "schema checks" `Quick test_db_schema_checks;
          Alcotest.test_case "update/delete" `Quick test_db_update_delete;
          Alcotest.test_case "rollback" `Quick test_db_rollback;
          qt prop_rollback_restores_hash;
          Alcotest.test_case "dump/load" `Quick test_db_dump_load_roundtrip;
          Alcotest.test_case "cost accounting" `Quick test_db_cost_accounting;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "maintained by writes" `Quick
            test_index_maintained_by_writes;
          Alcotest.test_case "maintained by rollback" `Quick
            test_index_maintained_by_rollback;
          qt prop_index_agrees_with_scan;
        ] );
      ( "locks",
        [
          Alcotest.test_case "table level" `Quick test_lock_table_level;
          Alcotest.test_case "row level" `Quick test_lock_row_level;
          Alcotest.test_case "fifo + reentrant" `Quick test_lock_fifo_and_reentrant;
          Alcotest.test_case "cancel" `Quick test_lock_cancel;
        ] );
      ( "sql",
        [
          Alcotest.test_case "end to end" `Quick test_sql_end_to_end;
          Alcotest.test_case "txn statements" `Quick test_sql_txn_stmts;
          Alcotest.test_case "errors" `Quick test_sql_errors;
          Alcotest.test_case "limit/order" `Quick test_sql_limit_and_star_order;
          Alcotest.test_case "aggregates" `Quick test_sql_aggregates;
          Alcotest.test_case "between/in" `Quick test_sql_between_in;
          Alcotest.test_case "create index + planner" `Quick
            test_sql_create_index_and_plan;
          Alcotest.test_case "print/parse round-trip" `Quick test_sql_roundtrip;
          qt prop_value_codec_roundtrip;
        ] );
    ]
