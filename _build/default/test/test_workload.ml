(* Tests for the workload substrates: the bank micro-benchmark and
   TPC-C-lite (schema, loader, the five procedures, the mix generator and
   the consistency conditions). *)

module Database = Storage.Database
module Store = Storage.Store
module Value = Storage.Value
module Txn = Shadowdb.Txn
module Bank = Workload.Bank
module Tpcc = Workload.Tpcc

let mk_bank ?(rows = 100) () =
  let db = Database.create Store.Hazel in
  Bank.setup ~rows db;
  (db, Bank.registry ())

let exec reg db ~seq kind_params =
  let kind, params = kind_params in
  Txn.execute reg db { Txn.client = 1; seq; kind; params }

(* Bank *)

let test_bank_setup () =
  let db, _ = mk_bank ~rows:123 () in
  Alcotest.(check int) "row count" 123 (Database.row_count db Bank.table);
  Alcotest.(check int) "initial balance" (123 * 100) (Bank.total_balance db)

let test_bank_wide_rows () =
  let db = Database.create Store.Hazel in
  Bank.setup ~rows:5 ~wide:true db;
  match Database.get db Bank.table [ Value.Int 0 ] with
  | Some row ->
      let bytes =
        Array.fold_left (fun a v -> a + Value.serialized_size v) 0 row
      in
      Alcotest.(check int) "4 columns" 4 (Array.length row);
      Alcotest.(check bool) "≈1KB rows" true (bytes > 950 && bytes < 1100)
  | None -> Alcotest.fail "row missing"

let test_bank_deposit_and_balance () =
  let db, reg = mk_bank () in
  let r = exec reg db ~seq:0 (Bank.deposit ~account:7 ~amount:42) in
  Alcotest.(check bool) "deposit ok" true (Result.is_ok r.Txn.outcome);
  match (exec reg db ~seq:1 (Bank.balance ~account:7)).Txn.outcome with
  | Ok [ [| Value.Int b |] ] -> Alcotest.(check int) "balance" 142 b
  | _ -> Alcotest.fail "balance query failed"

let test_bank_transfer_aborts_atomically () =
  let db, reg = mk_bank () in
  let before = Bank.total_balance db in
  let r = exec reg db ~seq:0 (Bank.transfer ~src:1 ~dst:2 ~amount:1_000_000) in
  (match r.Txn.outcome with
  | Error "insufficient funds" -> ()
  | Error e -> Alcotest.fail ("unexpected abort: " ^ e)
  | Ok _ -> Alcotest.fail "transfer should abort");
  Alcotest.(check int) "no partial debit" before (Bank.total_balance db)

let prop_bank_conservation =
  QCheck.Test.make ~name:"transfers conserve total balance" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (triple (int_bound 99) (int_bound 99) (int_bound 200)))
    (fun moves ->
      let db, reg = mk_bank () in
      let before = Bank.total_balance db in
      List.iteri
        (fun i (src, dst, amount) ->
          ignore (exec reg db ~seq:i (Bank.transfer ~src ~dst ~amount)))
        moves;
      Bank.total_balance db = before)

let test_bank_random_deposit_in_range () =
  let rng = Sim.Prng.create 5 in
  for _ = 1 to 100 do
    match Bank.random_deposit rng ~rows:50 with
    | "deposit", [ Value.Int a; Value.Int m ] ->
        Alcotest.(check bool) "ranges" true (a >= 0 && a < 50 && m >= 1)
    | _ -> Alcotest.fail "unexpected shape"
  done

(* TPC-C *)

let mk_tpcc () =
  let db = Database.create Store.Hazel in
  Tpcc.setup db;
  (db, Tpcc.registry ())

let scale = Tpcc.small_scale

let test_tpcc_setup_counts () =
  let db, _ = mk_tpcc () in
  let count t = Database.row_count db t in
  Alcotest.(check int) "warehouse" 1 (count "WAREHOUSE");
  Alcotest.(check int) "districts" scale.Tpcc.districts (count "DISTRICT");
  Alcotest.(check int) "customers"
    (scale.Tpcc.districts * scale.Tpcc.customers_per_district)
    (count "CUSTOMER");
  Alcotest.(check int) "items" scale.Tpcc.items (count "ITEM");
  Alcotest.(check int) "stock" scale.Tpcc.items (count "STOCK");
  Alcotest.(check int) "orders"
    (scale.Tpcc.districts * scale.Tpcc.initial_orders_per_district)
    (count "ORDERS");
  Alcotest.(check bool) "new orders non-empty" true (count "NEW_ORDER" > 0)

let test_tpcc_initial_consistency () =
  let db, _ = mk_tpcc () in
  List.iter
    (fun (name, check) ->
      match check db with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("c1", Tpcc.consistency_1);
      ("c2", Tpcc.consistency_2);
      ("c3", Tpcc.consistency_3);
      ("c4", Tpcc.consistency_4);
    ]

let test_tpcc_new_order () =
  let db, reg = mk_tpcc () in
  let orders_before = Database.row_count db "ORDERS" in
  let r =
    exec reg db ~seq:0
      ( "new_order",
        [ Value.Int 1; Value.Int 1; Value.Int 5; Value.Int 2; Value.Int 9; Value.Int 1 ] )
  in
  (match r.Txn.outcome with
  | Ok ([| Value.Int o_id; Value.Int total |] :: _) ->
      Alcotest.(check bool) "fresh order id" true
        (o_id = scale.Tpcc.initial_orders_per_district + 1);
      Alcotest.(check bool) "positive total" true (total > 0)
  | Ok _ -> Alcotest.fail "unexpected result shape"
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "order row added" (orders_before + 1)
    (Database.row_count db "ORDERS");
  Alcotest.(check int) "2 order lines" 2
    (Database.row_count db "ORDER_LINE"
    - (scale.Tpcc.districts * scale.Tpcc.initial_orders_per_district * 5))

let test_tpcc_new_order_bad_item_aborts () =
  let db, reg = mk_tpcc () in
  let h = Database.content_hash db in
  let r =
    exec reg db ~seq:0
      ("new_order", [ Value.Int 1; Value.Int 1; Value.Int 999_999_999; Value.Int 1 ])
  in
  Alcotest.(check bool) "aborted" true (Result.is_error r.Txn.outcome);
  Alcotest.(check int) "state unchanged (atomic rollback)" h
    (Database.content_hash db)

let test_tpcc_payment () =
  let db, reg = mk_tpcc () in
  let r =
    exec reg db ~seq:0
      ("payment", [ Value.Int 2; Value.Int 3; Value.Int 500; Value.Int 777 ])
  in
  Alcotest.(check bool) "ok" true (Result.is_ok r.Txn.outcome);
  (match Tpcc.consistency_1 db with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "history row" 1 (Database.row_count db "HISTORY")

let test_tpcc_delivery () =
  let db, reg = mk_tpcc () in
  let new_orders_before = Database.row_count db "NEW_ORDER" in
  let r = exec reg db ~seq:0 ("delivery", [ Value.Int 4 ]) in
  (match r.Txn.outcome with
  | Ok [ [| Value.Int delivered |] ] ->
      Alcotest.(check int) "one order per district" scale.Tpcc.districts
        delivered;
      Alcotest.(check int) "new_order rows consumed"
        (new_orders_before - delivered)
        (Database.row_count db "NEW_ORDER")
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e)

let test_tpcc_order_status_and_stock_level () =
  let db, reg = mk_tpcc () in
  let r = exec reg db ~seq:0 ("order_status", [ Value.Int 1; Value.Int 1 ]) in
  (match r.Txn.outcome with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "no status rows"
  | Error e -> Alcotest.fail e);
  let r = exec reg db ~seq:1 ("stock_level", [ Value.Int 1; Value.Int 100 ]) in
  match r.Txn.outcome with
  | Ok [ [| Value.Int low |] ] ->
      Alcotest.(check bool) "all items below 100" true (low > 0)
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e

let prop_tpcc_mix_consistency =
  QCheck.Test.make ~name:"random TPC-C mix preserves consistency 1-4" ~count:15
    QCheck.small_int
    (fun seed ->
      let db, reg = mk_tpcc () in
      let rng = Sim.Prng.create seed in
      for i = 0 to 80 do
        let kind, params = Tpcc.make_txn rng ~h_id:(1000 + i) in
        ignore (exec reg db ~seq:i (kind, params))
      done;
      List.for_all
        (fun check -> Result.is_ok (check db))
        [ Tpcc.consistency_1; Tpcc.consistency_2; Tpcc.consistency_3; Tpcc.consistency_4 ])

let test_tpcc_mix_distribution () =
  let rng = Sim.Prng.create 99 in
  let counts = Hashtbl.create 8 in
  let n = 5000 in
  for i = 0 to n - 1 do
    let kind, _ = Tpcc.make_txn rng ~h_id:i in
    Hashtbl.replace counts kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  done;
  let pct kind =
    100.0
    *. float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts kind))
    /. float_of_int n
  in
  Alcotest.(check bool) "new_order ≈45%" true (abs_float (pct "new_order" -. 45.0) < 4.0);
  Alcotest.(check bool) "payment ≈43%" true (abs_float (pct "payment" -. 43.0) < 4.0);
  Alcotest.(check bool) "order_status ≈4%" true (abs_float (pct "order_status" -. 4.0) < 2.0);
  Alcotest.(check bool) "delivery ≈4%" true (abs_float (pct "delivery" -. 4.0) < 2.0);
  Alcotest.(check bool) "stock_level ≈4%" true (abs_float (pct "stock_level" -. 4.0) < 2.0)

let test_tpcc_determinism () =
  (* The same (seed, h_id) produces the same transaction — the property
     replication depends on. *)
  let t1 = Tpcc.make_txn (Sim.Prng.create 7) ~h_id:3 in
  let t2 = Tpcc.make_txn (Sim.Prng.create 7) ~h_id:3 in
  Alcotest.(check bool) "deterministic" true (t1 = t2)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "bank",
        [
          Alcotest.test_case "setup" `Quick test_bank_setup;
          Alcotest.test_case "wide rows" `Quick test_bank_wide_rows;
          Alcotest.test_case "deposit/balance" `Quick test_bank_deposit_and_balance;
          Alcotest.test_case "transfer abort atomic" `Quick
            test_bank_transfer_aborts_atomically;
          qt prop_bank_conservation;
          Alcotest.test_case "random deposit" `Quick
            test_bank_random_deposit_in_range;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "setup counts" `Quick test_tpcc_setup_counts;
          Alcotest.test_case "initial consistency" `Quick
            test_tpcc_initial_consistency;
          Alcotest.test_case "new_order" `Quick test_tpcc_new_order;
          Alcotest.test_case "new_order bad item" `Quick
            test_tpcc_new_order_bad_item_aborts;
          Alcotest.test_case "payment" `Quick test_tpcc_payment;
          Alcotest.test_case "delivery" `Quick test_tpcc_delivery;
          Alcotest.test_case "order_status/stock_level" `Quick
            test_tpcc_order_status_and_stock_level;
          qt prop_tpcc_mix_consistency;
          Alcotest.test_case "mix distribution" `Quick test_tpcc_mix_distribution;
          Alcotest.test_case "determinism" `Quick test_tpcc_determinism;
        ] );
    ]
