(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as rows/series in the paper's units), then
   runs bechamel micro-benchmarks for the design-choice ablations called
   out in DESIGN.md (optimizer on/off, storage backend diversity, SQL
   front-end, codec and Paxos step costs).

   `dune exec bench/main.exe` runs everything at quick scale;
   `dune exec bench/main.exe -- --full` uses paper-scale parameters;
   `dune exec bench/main.exe -- --skip-micro` omits the bechamel part;
   `dune exec bench/main.exe -- --json FILE` additionally runs the
   perf-trajectory measurements (simulator events/sec, TOB transaction
   throughput on the simulator and on both socket runtimes — thread-per-
   node and event-loop — plus frame-path ns/frame and model-checker
   schedules/sec) and writes every number to FILE as JSON, so successive
   commits' files can be diffed. *)

let quick = not (Array.exists (( = ) "--full") Sys.argv)
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv

let json_file =
  let rec go i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON emitter (no external dependency)                   *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (* NaN / infinities (e.g. a failed OLS fit) have no JSON encoding. *)
  let num x = if Float.is_finite x then Num x else Null

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent = function
    | Null -> Buffer.add_string buf "null"
    | Num x ->
        let s = Printf.sprintf "%.6g" x in
        Buffer.add_string buf s
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            emit buf (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            emit buf (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'

  let to_file file t =
    let buf = Buffer.create 4096 in
    emit buf 0 t;
    Buffer.add_char buf '\n';
    let oc = open_out file in
    output_string oc (Buffer.contents buf);
    close_out oc
end

(* ------------------------------------------------------------------ *)
(* Paper tables and figures                                            *)
(* ------------------------------------------------------------------ *)

let run_paper_experiments () =
  print_endline "########################################################";
  print_endline "# Reproduction of the paper's evaluation              #";
  print_endline "########################################################";
  Harness.Table1.print (Harness.Table1.rows ());
  Harness.Fig8.print (Harness.Fig8.run ~quick ());
  Harness.Fig9.print Harness.Fig9.Micro (Harness.Fig9.run ~quick Harness.Fig9.Micro);
  Harness.Fig9.print Harness.Fig9.Tpcc (Harness.Fig9.run ~quick Harness.Fig9.Tpcc);
  Harness.Fig10.print_timeline
    (Harness.Fig10.run_timeline ~rows:(if quick then 20_000 else 50_000) ());
  Harness.Fig10.print_transfers (Harness.Fig10.run_transfers ~quick ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (real time, not simulated time)           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

module Message = Loe.Message
module Cls = Loe.Cls

(* Ablation 1: the program optimizer (tree-walking interpreter vs fused
   machine with common-subexpression sharing). CLK is tiny, so the gain is
   modest there; on a wide specification (many composed classes over a
   shared base, like the Paxos node spec) the fused machine avoids
   rebuilding the whole instance tree per event. *)
let bench_gpm_backends =
  let h : int Message.hdr = Message.declare "bench" in
  let base = Cls.base h in
  (* A wide spec: 24 state classes over the same (shared) base class,
     paired through composition — CSE collapses the shared base. *)
  let wide =
    let cell i =
      Cls.state (Printf.sprintf "s%d" i)
        ~init:(fun _ -> i)
        ~upd:(fun _ v s -> s + v)
        base
    in
    let rec build i =
      if i = 0 then Cls.map (fun v -> v) base
      else Cls.( ||| ) (Cls.o2 (fun _ v s -> [ v + s ]) base (cell i)) (build (i - 1))
    in
    build 24
  in
  let msgs = Array.init 64 (fun i -> Message.make h i) in
  let tree () =
    let proc = ref (Gpm.Compile.compile 0 wide) in
    Array.iter
      (fun m ->
        let p, _ = Gpm.Proc.step !proc m in
        proc := p)
      msgs
  in
  let fused () =
    let machine = Gpm.Opt.compile 0 wide in
    Array.iter (fun m -> ignore (Gpm.Opt.step machine m)) msgs
  in
  Test.make_grouped ~name:"gpm(wide spec,64 events)"
    [
      Test.make ~name:"interpreted-tree" (Staged.stage tree);
      Test.make ~name:"optimized-fused" (Staged.stage fused);
    ]

(* Ablation 3: point operations across the three diverse backends. *)
let bench_backends =
  let mk kind () =
    let s = Storage.Store.create kind in
    for i = 0 to 999 do
      s.Storage.Store.insert
        [ Storage.Value.Int ((i * 7919) mod 1000) ]
        [| Storage.Value.Int i; Storage.Value.Int (i * 2) |]
    done;
    for i = 0 to 999 do
      ignore (s.Storage.Store.find [ Storage.Value.Int i ])
    done
  in
  Test.make_grouped ~name:"store(1k ins + 1k find)"
    [
      Test.make ~name:"hazel-hash" (Staged.stage (mk Storage.Store.Hazel));
      Test.make ~name:"hickory-btree" (Staged.stage (mk Storage.Store.Hickory));
      Test.make ~name:"dogwood-avl" (Staged.stage (mk Storage.Store.Dogwood));
    ]

let bench_sql =
  let sql =
    "SELECT a, b FROM t WHERE (a = 1) AND (b < 'x') ORDER BY a ASC LIMIT 5"
  in
  Test.make ~name:"sql-parse" (Staged.stage (fun () -> Storage.Sql_parser.parse sql))

let bench_codec =
  let txn =
    {
      Shadowdb.Txn.client = 3;
      seq = 42;
      kind = "deposit";
      params = [ Storage.Value.Int 17; Storage.Value.Int 100 ];
    }
  in
  let batch =
    List.init 64 (fun i ->
        {
          Broadcast.Tob.origin = i mod 5;
          id = i;
          payload = Shadowdb.Codec.encode_txn txn;
        })
  in
  let batch_bytes = Shadowdb.Codec.encode_batch batch in
  Test.make_grouped ~name:"codec"
    [
      Test.make ~name:"txn-codec-roundtrip"
        (Staged.stage (fun () ->
             Shadowdb.Codec.decode_txn (Shadowdb.Codec.encode_txn txn)));
      Test.make ~name:"batch-codec-roundtrip"
        (Staged.stage (fun () ->
             Shadowdb.Codec.decode_batch
               (Shadowdb.Codec.encode_batch batch)));
      Test.make ~name:"batch-decode"
        (Staged.stage (fun () -> Shadowdb.Codec.decode_batch batch_bytes));
    ]

let bench_paxos_step =
  Test.make ~name:"paxos-acceptor-step"
    (Staged.stage (fun () ->
         let a = Consensus.Acceptor.create ~self:1 in
         let b = { Consensus.Paxos_msg.round = 1; leader = 0 } in
         ignore (Consensus.Acceptor.step a (Consensus.Paxos_msg.P1a { src = 0; b }))))

let bench_btree_bulk =
  Test.make ~name:"btree-1k-inserts"
    (Staged.stage (fun () ->
         let t = ref (Storage.Btree.create ~cmp:Int.compare) in
         for i = 0 to 999 do
           t := Storage.Btree.insert !t ((i * 2654435761) land 0xFFFF) i
         done))

let run_micro () =
  print_endline "\n########################################################";
  print_endline "# Bechamel micro-benchmarks (ablations)               #";
  print_endline "########################################################";
  let tests =
    Test.make_grouped ~name:"micro"
      [
        bench_gpm_backends;
        bench_backends;
        bench_sql;
        bench_codec;
        bench_paxos_step;
        bench_btree_bulk;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.4) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    (* Numeric order, cheapest first; failed fits (no estimate) last. *)
    |> List.sort (fun (n1, v1) (n2, v2) ->
           match (Float.is_nan v1, Float.is_nan v2) with
           | true, true -> compare n1 n2
           | true, false -> 1
           | false, true -> -1
           | false, false ->
               let c = Float.compare v1 v2 in
               if c <> 0 then c else compare n1 n2)
  in
  Stats.Table.print_table ~title:"micro-benchmarks (monotonic clock)"
    ~header:[ "benchmark"; "ns/run" ]
    (List.map
       (fun (n, v) ->
         [ n; (if Float.is_nan v then "n/a" else Stats.Table.fmt_f v) ])
       rows);
  rows

let run_ablations () =
  print_endline "\n########################################################";
  print_endline "# Virtual-time ablations (DESIGN.md design choices)    #";
  print_endline "########################################################";
  let sections =
    [
      ("ablation — broadcast batching", Harness.Ablations.batching ());
      ( "ablation — consensus pipelining window",
        Harness.Ablations.pipelining () );
      ( "ablation — consensus module under the TOB",
        Harness.Ablations.consensus_modules () );
      ( "ablation — lock granularity under contention",
        Harness.Ablations.lock_granularity () );
      ( "extension — replication styles over the same substrate",
        Harness.Ablations.replication_styles () );
    ]
  in
  List.iter (fun (title, pts) -> Harness.Ablations.print ~title pts) sections;
  sections

(* ------------------------------------------------------------------ *)
(* Perf trajectory (--json): wall-clock throughput of the hot paths    *)
(* ------------------------------------------------------------------ *)

module Engine = Sim.Engine
module Sdb = Shadowdb.System.Make (Consensus.Paxos)

let bank_rows = 1_000

let make_deposit ~client ~seq =
  Workload.Bank.deposit
    ~account:(abs (Hashtbl.hash (client, seq)) mod bank_rows)
    ~amount:1

(* SMR bank cluster on the simulator: every transaction goes through the
   TOB, so committed/s (virtual) is the broadcast service's transaction
   throughput, and processed events over wall-clock time is the simulator
   engine's raw speed. *)
let measure_sim () =
  let world : Sdb.wire Engine.t = Engine.create ~seed:101 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let commits = ref 0 in
  let last = ref 0.0 in
  let cluster =
    Sdb.spawn_smr ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(Workload.Bank.setup ~rows:bank_rows)
      ~n_active:2 ()
  in
  let _, _ =
    Sdb.spawn_clients ~world:rworld ~target:(Sdb.To_smr cluster) ~n:8
      ~count:(if quick then 150 else 1_000)
      ~make_txn:make_deposit ~retry_timeout:4.0
      ~on_commit:(fun now _ ->
        incr commits;
        last := now)
      ()
  in
  let t0 = Unix.gettimeofday () in
  Engine.run ~until:3600.0 ~max_events:100_000_000 world;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Engine.events_processed world in
  ( float_of_int events /. wall,
    if !last > 0.0 then float_of_int !commits /. !last else nan )

(* Sharded SMR on the simulator, weak scaling: 4 closed-loop clients and
   one 3-replica TOB group per shard, a Zipf-skewed (theta = 0.9) deposit
   stream with a 5% transfer mix whose cross-shard fraction rides through
   the 2PC coordinator. Virtual committed/s measures how much total
   transaction throughput the extra independent total orders buy. *)
let measure_sim_sharded ~shards () =
  let world : Sdb.wire Engine.t = Engine.create ~seed:(300 + shards) () in
  let rworld = Runtime.Of_sim.of_engine world in
  let zipf = Workload.Zipf.create ~n:bank_rows ~theta:0.9 in
  let commits = ref 0 in
  let last = ref 0.0 in
  let cluster =
    Sdb.spawn_sharded ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(fun s db ->
        Workload.Bank.setup_shard ~rows:bank_rows ~shards s db)
      ~router:(Workload.Bank.router ~shards)
      ()
  in
  let make_txn ~client ~seq =
    if seq mod 20 = 19 then
      let src = Workload.Zipf.sample_id zipf ~client ~seq in
      let dst =
        (src + 1 + (abs (Hashtbl.hash (client, seq, 1)) mod (bank_rows - 1)))
        mod bank_rows
      in
      Workload.Bank.transfer ~src ~dst ~amount:1
    else
      Workload.Bank.deposit
        ~account:(Workload.Zipf.sample_id zipf ~client ~seq)
        ~amount:1
  in
  let n_clients = 4 * shards and count = if quick then 100 else 400 in
  let _, _ =
    Sdb.spawn_clients ~world:rworld ~target:(Sdb.To_sharded cluster)
      ~n:n_clients ~count ~make_txn ~retry_timeout:4.0
      ~on_commit:(fun now _ ->
        incr commits;
        last := now)
      ()
  in
  Engine.run ~until:3600.0 ~max_events:100_000_000 world;
  let txns_s = if !last > 0.0 then float_of_int !commits /. !last else nan in
  (txns_s, cluster.Sdb.sh_committed (), cluster.Sdb.sh_aborted ())

let sharding_curve () =
  let counts = [ 1; 2; 4 ] in
  let pts =
    List.map
      (fun shards ->
        let txns_s, x_committed, x_aborted = measure_sim_sharded ~shards () in
        (shards, txns_s, x_committed, x_aborted))
      counts
  in
  let base =
    match pts with (_, t, _, _) :: _ -> t | [] -> nan
  in
  List.map
    (fun (shards, t, xc, xa) -> (shards, t, t /. base, xc, xa))
    pts

(* Scratch directories for the durability measurements. *)
let dur_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shadowdb-bench-dur-%d-%d-%s" (Unix.getpid ()) !n name)

(* The same cluster as a real socket deployment over loopback TCP:
   committed transactions per wall-clock second plus p50/p99 commit
   latency, on either socket runtime ([`Live] thread-per-node, [`Loop]
   single-reactor event loop). [dur_group_commit] additionally journals
   every applied batch through the file WAL backend, syncing after that
   many records — 1 is fsync-per-commit, larger windows are group
   commit. *)
(* One timed deployment of the socket-runtime SMR bank. The clock runs
   from [start] to client completion; the GC is quiesced first so a
   major slice from earlier phases doesn't land inside a
   single-digit-millisecond window. *)
let measure_socket_once ?dur_group_commit rt () =
  let codec =
    Sdb.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
      ~dec_core:Shadowdb.Codec.decode_core_paxos
  in
  let live =
    match rt with
    | `Live -> Runtime.Driver.live ~codec ()
    | `Loop -> Runtime.Driver.loop ~codec ()
  in
  let world = live.Runtime.Driver.world in
  let mu = Mutex.create () in
  let commits = ref 0 in
  let latencies = Stats.Sample.create () in
  let durability =
    Option.map
      (fun gc ->
        let base = dur_dir (Printf.sprintf "live-gc%d" gc) in
        {
          Sdb.dur_backend =
            (fun i ->
              Durable.File.create
                ~dir:(Filename.concat base (Printf.sprintf "node%d" i))
                ());
          dur_policy =
            (fun _ ->
              {
                Durable.Manager.group_commit = gc;
                snapshot_every = 0;
                replay_tail = true;
              });
          dur_on_recover = (fun _ _ ~state_hash:_ -> ());
        })
      dur_group_commit
  in
  let cluster =
    Sdb.spawn_smr ~world ?durability ~registry:Workload.Bank.registry
      ~setup:(Workload.Bank.setup ~rows:bank_rows)
      ~n_active:2 ()
  in
  let n_clients = 4 and count = if quick then 50 else 250 in
  let _, completed =
    Sdb.spawn_clients ~world ~target:(Sdb.To_smr cluster) ~n:n_clients ~count
      ~make_txn:make_deposit ~retry_timeout:4.0
      ~on_commit:(fun _ l ->
        Mutex.lock mu;
        incr commits;
        Stats.Sample.add latencies l;
        Mutex.unlock mu)
      ()
  in
  (* Compact, not just a major cycle: by this point earlier bench phases
     have grown and fragmented the major heap, and the timed window is
     single-digit milliseconds. *)
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  live.Runtime.Driver.start ();
  let finished =
    live.Runtime.Driver.await ~timeout:120.0 (fun () ->
        completed () >= n_clients)
  in
  let wall = Unix.gettimeofday () -. t0 in
  live.Runtime.Driver.stop ();
  let txns =
    if (not finished) || wall <= 0.0 then nan
    else float_of_int !commits /. wall
  in
  ( txns,
    Stats.Sample.percentile latencies 50.0 *. 1e3,
    Stats.Sample.percentile latencies 99.0 *. 1e3 )

(* Best of five trials (single trial when a durability backend is
   attached: trials would otherwise replay each other's WAL dirs). The
   quick run finishes in milliseconds, so a stolen timeslice on a small
   machine easily halves one trial's figure; the max over a handful of
   trials is a far better estimate of what the runtime sustains, at
   negligible cost. Applied identically to both socket runtimes. *)
let measure_socket ?dur_group_commit rt () =
  match dur_group_commit with
  | Some _ -> measure_socket_once ?dur_group_commit rt ()
  | None ->
      let best = ref (measure_socket_once rt ()) in
      for _ = 2 to 5 do
        let ((t, _, _) as m) = measure_socket_once rt () in
        let bt, _, _ = !best in
        if (not (Float.is_nan t)) && (Float.is_nan bt || t > bt) then best := m
      done;
      !best

let measure_live ?dur_group_commit () =
  let t, _, _ = measure_socket ?dur_group_commit `Live () in
  t

(* ns per frame through the shared wire framing: append one encoded frame
   into a reused buffer and parse it back out — the per-message data-
   plane work both socket runtimes do besides the syscall. *)
let measure_frame_ns () =
  let payload = String.make 200 'p' in
  let buf = Runtime.Frame.create 65536 in
  let n = if quick then 300_000 else 3_000_000 in
  let sink = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Runtime.Frame.append buf ~src:1 ~payload;
    Runtime.Frame.drain buf
      ~frame:(fun ~src:_ p -> sink := !sink + String.length p)
      ~bad:(fun _ -> ())
  done;
  let wall = Unix.gettimeofday () -. t0 in
  if !sink = 0 then nan else wall /. float_of_int n *. 1e9

(* Raw WAL append bandwidth of the file backend (256-byte payloads,
   synced every 64 records). *)
let measure_wal_append () =
  let dir = dur_dir "wal" in
  let b = Durable.File.create ~dir () in
  let payload = String.make 256 'w' in
  let n = if quick then 2_000 else 20_000 in
  let bytes = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    let e =
      Durable.Wal.encode_record
        { Durable.Wal.idx = i; aux = i; hash = i land 0xFFFF; payload }
    in
    bytes := !bytes + String.length e;
    b.Durable.Backend.log_append e;
    if i mod 64 = 63 then b.Durable.Backend.log_sync ()
  done;
  b.Durable.Backend.log_sync ();
  let wall = Unix.gettimeofday () -. t0 in
  b.Durable.Backend.close ();
  float_of_int !bytes /. wall /. (1024.0 *. 1024.0)

(* Recovery speed: journal bank deposits through the file backend, then
   time a full log replay into a fresh replica. Reported normalized as
   milliseconds per 10k records. *)
let measure_recovery () =
  let n = if quick then 2_000 else 10_000 in
  let dir = dur_dir "recover" in
  let policy =
    { Durable.Manager.group_commit = 256; snapshot_every = 0; replay_tail = true }
  in
  let reg = Workload.Bank.registry () in
  let fresh_db () =
    let db = Storage.Database.create Storage.Store.Hazel in
    Workload.Bank.setup ~rows:bank_rows db;
    db
  in
  let deposit i =
    let kind, params = make_deposit ~client:0 ~seq:i in
    { Shadowdb.Txn.client = 0; seq = i; kind; params }
  in
  let b = Durable.File.create ~dir () in
  let db = fresh_db () in
  let mgr, _ =
    Durable.Manager.recover b policy ~install:(fun _ -> ()) ~apply:(fun _ -> ())
  in
  for i = 0 to n - 1 do
    let txn = deposit i in
    ignore (Shadowdb.Txn.execute reg db txn);
    Durable.Manager.append mgr
      {
        Durable.Wal.idx = i;
        aux = i + 1;
        hash = 0;
        payload = Shadowdb.Codec.encode_txn txn;
      }
  done;
  Durable.Manager.flush mgr;
  b.Durable.Backend.close ();
  let b2 = Durable.File.create ~dir () in
  let db2 = fresh_db () in
  let apply (r : Durable.Wal.record) =
    match Shadowdb.Codec.decode_txn r.Durable.Wal.payload with
    | Ok txn -> ignore (Shadowdb.Txn.execute reg db2 txn)
    | Error _ -> ()
  in
  let t0 = Unix.gettimeofday () in
  let _, rep = Durable.Manager.recover b2 policy ~install:(fun _ -> ()) ~apply in
  let wall = Unix.gettimeofday () -. t0 in
  b2.Durable.Backend.close ();
  if rep.Durable.Manager.recovered_idx <> n - 1 then nan
  else wall *. 1000.0 /. float_of_int n *. 10_000.0

(* Model-checker schedule throughput on the two hot scenarios. *)
let measure_check () =
  let budget = if quick then 300 else 2_000 in
  List.map
    (fun (name, sc) ->
      let t0 = Unix.gettimeofday () in
      let r = Check.Explore.random_walk sc ~seed:7 ~budget () in
      let wall = Unix.gettimeofday () -. t0 in
      ignore r.Check.Explore.violation;
      (name, float_of_int budget /. wall))
    [ ("paxos", Check.Scenarios.paxos); ("tob", Check.Scenarios.tob) ]

(* Conformance-checker throughput: a recorded sim bank trace pushed
   through the LoE replay + invariant monitors (events/s) and through
   the trace codec (encode + decode, MB/s). *)
let measure_conform () =
  let clients, count = if quick then (2, 20) else (3, 60) in
  let run = Conform.Record.sim_bank ~seed:7 ~clients ~count ~rows:512 () in
  let events = Conform.Recorder.events run.Conform.Record.recorder in
  let meta = Conform.Recorder.meta run.Conform.Record.recorder in
  let n = List.length events in
  let spec_exec = Conform.Replay.spec_exec_of_meta meta in
  let t0 = Unix.gettimeofday () in
  let replay = Conform.Replay.check ?spec_exec events in
  let monitors = Conform.Monitors.check ~meta events in
  let check_wall = Unix.gettimeofday () -. t0 in
  let events_s =
    if Conform.Replay.ok replay && Conform.Monitors.ok monitors then
      float_of_int n /. check_wall
    else nan
  in
  let t1 = Unix.gettimeofday () in
  let enc = Conform.Trace_file.encode ~meta events in
  let roundtrip_ok =
    match Conform.Trace_file.decode enc with Ok _ -> true | Error _ -> false
  in
  let codec_wall = Unix.gettimeofday () -. t1 in
  let mb = float_of_int (String.length enc) /. (1024.0 *. 1024.0) in
  let codec_mb_s = if roundtrip_ok then 2.0 *. mb /. codec_wall else nan in
  (events_s, codec_mb_s)

let run_trajectory () =
  print_endline "\n########################################################";
  print_endline "# Perf trajectory (wall-clock hot-path throughput)     #";
  print_endline "########################################################";
  let events_per_sec, sim_txns = measure_sim () in
  let shard_pts = sharding_curve () in
  let live_txns, live_p50, live_p99 = measure_socket `Live () in
  let loop_txns, loop_p50, loop_p99 = measure_socket `Loop () in
  let frame_ns = measure_frame_ns () in
  let check_rates = measure_check () in
  let wal_mb_s = measure_wal_append () in
  let live_fsync = measure_live ~dur_group_commit:1 () in
  let live_group = measure_live ~dur_group_commit:8 () in
  let recovery_ms = measure_recovery () in
  let conform_events_s, conform_codec_mb_s = measure_conform () in
  Stats.Table.print_table ~title:"perf trajectory"
    ~header:[ "measure"; "value" ]
    ([
       [ "sim engine events/s (wall)"; Stats.Table.fmt_f events_per_sec ];
       [ "tob txns/s (sim, virtual)"; Stats.Table.fmt_f sim_txns ];
       [
         "tob txns/s (live, wall)";
         Printf.sprintf "%s (p50 %.2f ms, p99 %.2f ms)"
           (Stats.Table.fmt_f live_txns) live_p50 live_p99;
       ];
       [
         "tob txns/s (loop, wall)";
         Printf.sprintf "%s (p50 %.2f ms, p99 %.2f ms)"
           (Stats.Table.fmt_f loop_txns) loop_p50 loop_p99;
       ];
       [ "frame ns/frame (append+drain)"; Stats.Table.fmt_f frame_ns ];
       [ "wal append MB/s (file)"; Stats.Table.fmt_f wal_mb_s ];
       [ "tob txns/s (live, fsync/commit)"; Stats.Table.fmt_f live_fsync ];
       [ "tob txns/s (live, group commit 8)"; Stats.Table.fmt_f live_group ];
       [ "recovery ms / 10k records"; Stats.Table.fmt_f recovery_ms ];
       [ "conform check events/s"; Stats.Table.fmt_f conform_events_s ];
       [ "conform trace codec MB/s"; Stats.Table.fmt_f conform_codec_mb_s ];
     ]
    @ List.map
        (fun (shards, t, speedup, xc, xa) ->
          [
            Printf.sprintf "sharded txns/s (sim, %d shard%s)" shards
              (if shards = 1 then "" else "s");
            Printf.sprintf "%s (%.2fx, 2pc %d/%d)" (Stats.Table.fmt_f t)
              speedup xc (xc + xa);
          ])
        shard_pts
    @ List.map
        (fun (n, v) ->
          [ Printf.sprintf "check %s schedules/s" n; Stats.Table.fmt_f v ])
        check_rates);
  ( events_per_sec,
    sim_txns,
    shard_pts,
    (live_txns, live_p50, live_p99),
    (loop_txns, loop_p50, loop_p99),
    frame_ns,
    check_rates,
    (wal_mb_s, live_fsync, live_group, recovery_ms),
    (conform_events_s, conform_codec_mb_s) )

let () =
  run_paper_experiments ();
  let ablations = run_ablations () in
  let micro = if skip_micro then [] else run_micro () in
  (match json_file with
  | None -> ()
  | Some file ->
      let ( events_per_sec,
            sim_txns,
            shard_pts,
            (live_txns, live_p50, live_p99),
            (loop_txns, loop_p50, loop_p99),
            frame_ns,
            check_rates,
            (wal_mb_s, live_fsync, live_group, recovery_ms),
            (conform_events_s, conform_codec_mb_s) ) =
        run_trajectory ()
      in
      let json =
        Json.Obj
          [
            ("suite", Json.Str "shadowdb-bench");
            ("scale", Json.Str (if quick then "quick" else "full"));
            ( "micro_ns_per_run",
              Json.Arr
                (List.map
                   (fun (name, ns) ->
                     Json.Obj
                       [ ("name", Json.Str name); ("ns", Json.num ns) ])
                   micro) );
            ( "sim",
              Json.Obj
                [
                  ("engine_events_per_sec", Json.num events_per_sec);
                  ("tob_txns_per_sec", Json.num sim_txns);
                ] );
            ( "sharding",
              Json.Arr
                (List.map
                   (fun (shards, t, speedup, xc, xa) ->
                     Json.Obj
                       [
                         ("shards", Json.num (float_of_int shards));
                         ("tob_txns_per_sec", Json.num t);
                         ("speedup_vs_1_shard", Json.num speedup);
                         ("cross_shard_committed", Json.num (float_of_int xc));
                         ("cross_shard_aborted", Json.num (float_of_int xa));
                       ])
                   shard_pts) );
            ( "live",
              Json.Obj
                [
                  ("tob_txns_per_sec", Json.num live_txns);
                  ("latency_p50_ms", Json.num live_p50);
                  ("latency_p99_ms", Json.num live_p99);
                ] );
            ( "live_loop",
              Json.Obj
                [
                  ("tob_txns_per_sec", Json.num loop_txns);
                  ("latency_p50_ms", Json.num loop_p50);
                  ("latency_p99_ms", Json.num loop_p99);
                  ("speedup_vs_live", Json.num (loop_txns /. live_txns));
                ] );
            ("frame", Json.Obj [ ("ns_per_frame", Json.num frame_ns) ]);
            ( "check_schedules_per_sec",
              Json.Obj (List.map (fun (n, v) -> (n, Json.num v)) check_rates)
            );
            ( "durability",
              Json.Obj
                [
                  ("wal_append_mb_per_sec", Json.num wal_mb_s);
                  ("live_txns_per_sec_fsync_per_commit", Json.num live_fsync);
                  ("live_txns_per_sec_group_commit_8", Json.num live_group);
                  ("recovery_ms_per_10k_records", Json.num recovery_ms);
                ] );
            ( "conform",
              Json.Obj
                [
                  ("check_events_per_sec", Json.num conform_events_s);
                  ("trace_codec_mb_per_sec", Json.num conform_codec_mb_s);
                ] );
            ( "ablations",
              Json.Obj
                (List.map
                   (fun (title, pts) ->
                     ( title,
                       Json.Arr
                         (List.map
                            (fun p ->
                              Json.Obj
                                [
                                  ("label", Json.Str p.Harness.Ablations.label);
                                  ( "throughput_per_sec",
                                    Json.num p.Harness.Ablations.throughput );
                                  ( "latency_ms",
                                    Json.num p.Harness.Ablations.latency_ms );
                                ])
                            pts) ))
                   ablations) );
          ]
      in
      Json.to_file file json;
      Printf.printf "\nbench: wrote %s\n" file);
  print_endline "\nbench: done."
