(* The ShadowDB command-line tool.

   `shadowdb run` deploys a replicated database and drives a workload
   against it — on the deterministic simulator (`--runtime sim`, the
   default, optionally crashing a replica mid-run) or as a real cluster
   of socket-connected nodes on the local machine (`--runtime live` for
   thread-per-node, `--runtime loop` for the single-reactor event loop
   with batched sends and backpressure); `shadowdb sql` is a small SQL
   shell over the embedded storage engine (reads statements from stdin,
   one per line). *)

open Cmdliner
module Engine = Sim.Engine
module S = Shadowdb.System.Make (Consensus.Paxos)

type mode = Pbr | Smr | Chain

let mode_conv =
  Arg.enum [ ("pbr", Pbr); ("smr", Smr); ("chain", Chain) ]

type wl = Bank | Tpcc

let wl_conv = Arg.enum [ ("bank", Bank); ("tpcc", Tpcc) ]

type rt = Rt_sim | Rt_live | Rt_loop

let rt_conv =
  Arg.enum [ ("sim", Rt_sim); ("live", Rt_live); ("loop", Rt_loop) ]

let bank_rows = 10_000

let workload_parts = function
  | Bank ->
      let rows = bank_rows in
      ( Workload.Bank.registry,
        (fun db -> Workload.Bank.setup ~rows db),
        (fun ~client ~seq ->
          if seq mod 4 = 3 then
            Workload.Bank.balance
              ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
          else
            Workload.Bank.deposit
              ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
              ~amount:(1 + (seq mod 9))),
        [ "balance" ] )
  | Tpcc ->
      let scale = Workload.Tpcc.small_scale in
      ( (fun () -> Workload.Tpcc.registry ~scale ()),
        (fun db -> Workload.Tpcc.setup ~scale db),
        (fun ~client ~seq ->
          let rng = Sim.Prng.create (Hashtbl.hash (client, seq)) in
          Workload.Tpcc.make_txn ~scale rng
            ~h_id:((client * 1_000_000) + seq)),
        [ "order_status"; "stock_level" ] )

(* What [spawn_cluster] hands back to the runners: enough to drive
   clients, report liveness, and judge replica agreement (per shard for
   a sharded deployment — replicas of different shards legitimately hold
   different states). *)
type deployed = {
  describe : string;
  target : S.client_target;
  replicas : int list;
  gseq_of : int -> int;
  hash_of : int -> int;
  agreement : int list -> bool;  (* over the still-alive replicas *)
  extra : unit -> (string * string) list;  (* extra report lines *)
}

let flat_agreement ~gseq_of ~hash_of alive =
  let hashes =
    List.filter_map
      (fun l -> if gseq_of l > 0 then Some (hash_of l) else None)
      alive
  in
  match hashes with h :: t -> List.for_all (( = ) h) t | [] -> true

let spawn_cluster mode ~window ~read_kinds ~backends ~world ~registry ~setup =
  match mode with
  | Pbr ->
      let c =
        S.spawn_pbr ~backends ~tob_window:window ~world ~registry ~setup
          ~n_active:2 ~n_spare:1 ()
      in
      {
        describe = "primary-backup (2 active + 1 spare)";
        target = S.To_pbr c;
        replicas = c.S.pbr_replicas;
        gseq_of = c.S.pbr_gseq_of;
        hash_of = c.S.pbr_hash_of;
        agreement =
          flat_agreement ~gseq_of:c.S.pbr_gseq_of ~hash_of:c.S.pbr_hash_of;
        extra = (fun () -> []);
      }
  | Chain ->
      let c =
        S.spawn_chain ~read_kinds ~backends ~tob_window:window ~world
          ~registry ~setup ~n_active:3 ~n_spare:1 ()
      in
      {
        describe = "chain (3 links + 1 spare)";
        target = S.To_pbr c;
        replicas = c.S.pbr_replicas;
        gseq_of = c.S.pbr_gseq_of;
        hash_of = c.S.pbr_hash_of;
        agreement =
          flat_agreement ~gseq_of:c.S.pbr_gseq_of ~hash_of:c.S.pbr_hash_of;
        extra = (fun () -> []);
      }
  | Smr ->
      let c =
        S.spawn_smr ~backends ~tob_window:window ~world ~registry ~setup
          ~n_active:2 ()
      in
      {
        describe = "state machine replication (2 of 3)";
        target = S.To_smr c;
        replicas = c.S.smr_nodes;
        gseq_of = c.S.smr_gseq_of;
        hash_of = c.S.smr_hash_of;
        agreement =
          flat_agreement ~gseq_of:c.S.smr_gseq_of ~hash_of:c.S.smr_hash_of;
        extra = (fun () -> []);
      }

(* A sharded deployment: one 3-replica SMR group (its own TOB instance)
   per shard plus the 2PC coordinator; single-shard transactions go
   straight to the owning shard, cross-shard ones through
   prepare/commit records totally ordered within each participant's
   TOB. Bank only: the transfer mix is what exercises 2PC. *)
let shard_rows = 10_000

let spawn_sharded_cluster ~shards ~window ~backends ~world =
  let router = Workload.Bank.router ~shards in
  let c =
    S.spawn_sharded ~backends ~tob_window:window ~world
      ~registry:Workload.Bank.registry
      ~setup:(fun s db ->
        Workload.Bank.setup_shard ~rows:shard_rows ~shards s db)
      ~router ()
  in
  let group_of l =
    Array.to_list c.S.sh_groups
    |> List.find (fun g -> List.mem l g.S.smr_nodes)
  in
  let gseq_of l = (group_of l).S.smr_gseq_of l in
  let hash_of l = (group_of l).S.smr_hash_of l in
  let agreement alive =
    Array.for_all
      (fun g ->
        let mine = List.filter (fun l -> List.mem l g.S.smr_nodes) alive in
        flat_agreement ~gseq_of:g.S.smr_gseq_of ~hash_of:g.S.smr_hash_of mine)
      c.S.sh_groups
  in
  {
    describe =
      Printf.sprintf "%d shards x 3 SMR replicas + 2PC coordinator" shards;
    target = S.To_sharded c;
    replicas = List.filter (fun l -> l <> c.S.sh_coord) c.S.sh_nodes;
    gseq_of;
    hash_of;
    agreement;
    extra =
      (fun () ->
        [
          ( "cross-shard",
            Printf.sprintf "%d committed, %d aborted via 2PC"
              (c.S.sh_committed ()) (c.S.sh_aborted ()) );
        ]);
  }

(* Mixed sharded workload: alternating transfers (the 2PC traffic; with
   k shards, a fraction (k-1)/k of them cross shards) and single-shard
   deposits. *)
let make_sharded_txn ~client ~seq =
  let h = abs (Hashtbl.hash (client, seq)) in
  if seq mod 2 = 0 then
    let src = h mod shard_rows in
    let dst =
      (src + 1 + (abs (Hashtbl.hash (client, seq, 1)) mod (shard_rows - 1)))
      mod shard_rows
    in
    Workload.Bank.transfer ~src ~dst ~amount:1
  else Workload.Bank.deposit ~account:(h mod shard_rows) ~amount:(1 + (seq mod 9))

(* --------------------- conformance instrumentation -------------------- *)

let wire_codec =
  S.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
    ~dec_core:Shadowdb.Codec.decode_core_paxos

(* Trace meta lets the offline checker rebuild the shadow execution
   environment (workload + seeding) and pick the right monitor set. *)
let conform_meta ~rt ~wl ~shards ~seed ~clients ~count =
  let rt_name =
    match rt with Rt_sim -> "sim" | Rt_live -> "live" | Rt_loop -> "loop"
  in
  let wl_meta =
    match (wl, shards) with
    | Bank, 1 -> [ ("workload", "bank"); ("rows", string_of_int bank_rows) ]
    | Bank, _ -> [ ("workload", "bank") ]
    | Tpcc, _ -> [ ("workload", "tpcc") ]
  in
  wl_meta
  @ [
      ("runtime", rt_name);
      ("shards", string_of_int shards);
      ("seed", string_of_int seed);
      ("clients", string_of_int clients);
      ("count", string_of_int count);
    ]

(* The recorder (for --trace) and the online monitor (for --monitor),
   combined into the single tap the runtime accepts. *)
let conform_taps ~meta ~trace ~monitor =
  let recorder =
    match trace with
    | None -> None
    | Some _ -> Some (Conform.Recorder.create ~meta ())
  in
  let online = if monitor then Some (Conform.Online.create ()) else None in
  let taps =
    (match recorder with
    | Some r -> [ Conform.Recorder.tap r ~enc:wire_codec.Runtime.enc ]
    | None -> [])
    @ match online with Some o -> [ Conform.Online.tap o ] | None -> []
  in
  let tap = match taps with [] -> None | l -> Some (Runtime.tap_all l) in
  (recorder, online, tap)

(* Returns true when the online monitor saw a violation. *)
let conform_finish ~trace recorder online =
  (match (trace, recorder) with
  | Some path, Some r ->
      Conform.Recorder.save r path;
      Printf.printf "trace      : %d events to %s%s\n"
        (Conform.Recorder.recorded r)
        path
        (let d = Conform.Recorder.dropped r in
         if d > 0 then Printf.sprintf " (%d oldest dropped)" d else "")
  | _ -> ());
  match online with
  | None -> false
  | Some o ->
      Printf.printf "%s\n" (Conform.Online.summary o);
      List.iter
        (fun m -> Printf.printf "monitor    : %s\n" m)
        (Conform.Online.messages o);
      Conform.Online.violations o > 0

let backends_of diverse =
  if diverse then
    [ Storage.Store.Hazel; Storage.Store.Hickory; Storage.Store.Dogwood ]
  else [ Storage.Store.Hazel ]

let report ~clients ~completed ~commits ~elapsed ~latencies ~alive ~d
    ~unit_label =
  Printf.printf "completed  : %d/%d clients\n" completed clients;
  Printf.printf "committed  : %d txns in %.3f s %s\n" commits elapsed
    unit_label;
  if elapsed > 0.0 then
    Printf.printf "throughput : %.0f txns/s\n" (float_of_int commits /. elapsed);
  Printf.printf "latency    : mean %.2f ms, p50 %.2f ms, p99 %.2f ms\n"
    (Stats.Sample.mean latencies *. 1e3)
    (Stats.Sample.percentile latencies 50.0 *. 1e3)
    (Stats.Sample.percentile latencies 99.0 *. 1e3);
  Printf.printf "replicas   : %s executed %s txns\n"
    (String.concat "," (List.map string_of_int alive))
    (String.concat "/" (List.map (fun l -> string_of_int (d.gseq_of l)) alive));
  List.iter (fun (k, v) -> Printf.printf "%-11s: %s\n" k v) (d.extra ());
  Printf.printf "agreement  : %b\n" (d.agreement alive)

let deploy mode wl shards ~window ~diverse ~world =
  let backends = backends_of diverse in
  if shards > 1 then begin
    (match wl with
    | Bank -> ()
    | Tpcc ->
        prerr_endline "shadowdb: --shards currently supports the bank workload";
        exit 2);
    (spawn_sharded_cluster ~shards ~window ~backends ~world, make_sharded_txn)
  end
  else
    let registry, setup, make_txn, read_kinds = workload_parts wl in
    ( spawn_cluster mode ~window ~read_kinds ~backends ~world ~registry ~setup,
      make_txn )

let run_sim mode wl shards clients count crash_at seed diverse window trace
    monitor =
  let world : S.wire Engine.t = Engine.create ~seed () in
  let meta = conform_meta ~rt:Rt_sim ~wl ~shards ~seed ~clients ~count in
  let recorder, online, tap = conform_taps ~meta ~trace ~monitor in
  let rworld = Runtime.Of_sim.of_engine ?tap world in
  let d, make_txn = deploy mode wl shards ~window ~diverse ~world:rworld in
  let latencies = Stats.Sample.create () in
  let commits = ref 0 in
  let last = ref 0.0 in
  let _, completed =
    S.spawn_clients ~world:rworld ~target:d.target ~n:clients ~count ~make_txn
      ~retry_timeout:2.0
      ~on_commit:(fun now l ->
        incr commits;
        last := now;
        Stats.Sample.add latencies l)
      ()
  in
  (match crash_at with
  | Some t ->
      Engine.at world t (fun () ->
          Printf.printf "t=%-8.2f crashing node %d\n" t (List.hd d.replicas);
          Engine.crash world (List.hd d.replicas))
  | None -> ());
  Printf.printf "deployment : %s%s\n" d.describe
    (if diverse then ", diverse backends (hazel/hickory/dogwood)" else "");
  Printf.printf "workload   : %d clients x %d txns\n%!" clients count;
  Engine.run ~until:3600.0 ~max_events:500_000_000 world;
  let alive = List.filter (Engine.is_alive world) d.replicas in
  report ~clients ~completed:(completed ()) ~commits:!commits ~elapsed:!last
    ~latencies ~alive ~d ~unit_label:"virtual";
  let violated = conform_finish ~trace recorder online in
  if completed () <> clients || violated then exit 1

(* A real cluster on the local machine: messages are framed Codec bytes
   over loopback sockets, timers run on the wall clock. `live` hosts
   every node on its own thread; `loop` multiplexes the whole deployment
   over one event-loop reactor. Same protocol code as the simulation —
   only the runtime underneath changes. *)
let run_socket rt mode wl shards clients count crash_at diverse window trace
    monitor =
  (match crash_at with
  | Some _ ->
      Printf.eprintf "shadowdb: --crash-at is simulator-only; ignoring\n%!"
  | None -> ());
  let codec = wire_codec in
  let meta =
    conform_meta ~rt ~wl ~shards ~seed:0 ~clients ~count
  in
  let recorder, online, tap = conform_taps ~meta ~trace ~monitor in
  let d_rt, flavour =
    match rt with
    | Rt_loop ->
        ( Runtime.Driver.loop
            ~on_backpressure:(fun ~dst ~bytes ->
              Printf.eprintf
                "backpressure: outbox to node %d engaged at %d bytes\n%!" dst
                bytes)
            ?tap ~codec (),
          "event-loop reactor" )
    | Rt_live | Rt_sim -> (Runtime.Driver.live ?tap ~codec (), "thread-per-node")
  in
  let world = d_rt.Runtime.Driver.world in
  let d, make_txn = deploy mode wl shards ~window ~diverse ~world in
  let latencies = Stats.Sample.create () in
  let mu = Mutex.create () in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world ~target:d.target ~n:clients ~count ~make_txn
      ~retry_timeout:2.0
      ~on_commit:(fun _now l ->
        Mutex.lock mu;
        incr commits;
        Stats.Sample.add latencies l;
        Mutex.unlock mu)
      ()
  in
  Printf.printf "deployment : %s%s, live over loopback TCP (%s)\n" d.describe
    (if diverse then ", diverse backends (hazel/hickory/dogwood)" else "")
    flavour;
  List.iter
    (fun l ->
      Printf.printf "node       : replica %d on 127.0.0.1:%d\n" l
        (Option.value ~default:0 (d_rt.Runtime.Driver.port_of l)))
    d.replicas;
  Printf.printf "workload   : %d clients x %d txns\n%!" clients count;
  let t0 = Unix.gettimeofday () in
  d_rt.Runtime.Driver.start ();
  let finished =
    d_rt.Runtime.Driver.await ~timeout:300.0 (fun () ->
        completed () >= clients)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  d_rt.Runtime.Driver.stop ();
  List.iter
    (fun e -> Printf.eprintf "live runtime error: %s\n%!" e)
    (d_rt.Runtime.Driver.errors ());
  report ~clients ~completed:(completed ()) ~commits:!commits ~elapsed
    ~latencies ~alive:d.replicas ~d ~unit_label:"wall-clock";
  (match rt with
  | Rt_loop ->
      Printf.printf "backpressure: %d outbox engagements\n"
        (d_rt.Runtime.Driver.backpressure ())
  | Rt_live | Rt_sim -> ());
  let violated = conform_finish ~trace recorder online in
  if not finished || violated then exit 1

let run_cluster runtime mode wl shards clients count crash_at seed diverse
    window trace monitor =
  match runtime with
  | Rt_sim ->
      run_sim mode wl shards clients count crash_at seed diverse window trace
        monitor
  | (Rt_live | Rt_loop) as rt ->
      run_socket rt mode wl shards clients count crash_at diverse window trace
        monitor

let sql_shell backend =
  let kind =
    Option.value ~default:Storage.Store.Hazel
      (Storage.Store.kind_of_string backend)
  in
  let db = Storage.Database.create kind in
  Printf.printf "shadowdb sql shell (%s backend); one statement per line.\n%!"
    (Storage.Store.kind_name kind);
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then
         match Storage.Sql_exec.exec_sql db line with
         | Error e -> Printf.printf "error: %s\n%!" e
         | Ok Storage.Sql_exec.Done -> Printf.printf "ok\n%!"
         | Ok (Storage.Sql_exec.Affected n) -> Printf.printf "ok, %d rows\n%!" n
         | Ok (Storage.Sql_exec.Rows { columns; rows }) ->
             Printf.printf "%s\n" (String.concat " | " columns);
             List.iter
               (fun row ->
                 Printf.printf "%s\n"
                   (String.concat " | "
                      (Array.to_list (Array.map Storage.Value.to_string row))))
               rows;
             Printf.printf "(%d rows)\n%!" (List.length rows)
     done
   with End_of_file -> ())

let run_cmd =
  let runtime =
    Arg.(
      value & opt rt_conv Rt_sim
      & info [ "runtime" ]
          ~doc:
            "sim (deterministic simulator), live (thread-per-node over \
             loopback sockets) or loop (single-process event-loop reactor \
             with batched sends and backpressure).")
  in
  let mode =
    Arg.(value & opt mode_conv Pbr & info [ "mode" ] ~doc:"pbr, smr or chain.")
  in
  let wl =
    Arg.(value & opt wl_conv Bank & info [ "workload" ] ~doc:"bank or tpcc.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Deploy N independent shards (one TOB-replicated SMR group \
             each) behind a 2PC coordinator; transfers spanning shards \
             commit atomically via prepare/commit records in each \
             participant's total order. N=1 keeps the classic \
             single-group deployment selected by --mode.")
  in
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let count =
    Arg.(value & opt int 1000 & info [ "count" ] ~doc:"Transactions per client.")
  in
  let crash =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-at" ] ~doc:"Crash the first replica at this virtual time.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let diverse =
    Arg.(value & flag & info [ "diverse" ] ~doc:"Deploy diverse storage backends.")
  in
  let window =
    Arg.(
      value & opt int 1
      & info [ "window" ]
          ~doc:
            "Broadcast-service pipelining window: batches a member may \
             have in flight through consensus at once.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record the cluster's event trace (deliveries, fingerprint \
             checkpoints, messages) to this file for offline conformance \
             checking with $(b,shadowdb_check conform).")
  in
  let monitor =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:
            "Run the in-process conformance monitor while the cluster \
             executes: per-link FIFO and state-fingerprint agreement; a \
             violation fails the run.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Deploy a replicated database and drive a workload.")
    Term.(
      const run_cluster $ runtime $ mode $ wl $ shards $ clients $ count
      $ crash $ seed $ diverse $ window $ trace $ monitor)

let sql_cmd =
  let backend =
    Arg.(
      value & opt string "hazel"
      & info [ "backend" ] ~doc:"hazel (hash), hickory (B+-tree) or dogwood (AVL).")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"SQL shell over the embedded storage engine (stdin).")
    Term.(const sql_shell $ backend)

let () =
  let info =
    Cmd.info "shadowdb"
      ~doc:"Replicated databases on a simulated or live local cluster."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; sql_cmd ]))
