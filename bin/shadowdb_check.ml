(* Schedule-exploring model checker for the replicated protocols.

   `shadowdb_check explore` runs thousands of alternative event schedules
   of a protocol scenario under the simulator's scheduler hook, checking
   runtime invariant monitors on every run and reporting distinct-state
   coverage; on a violation it saves a shrunk, replayable counterexample
   trace. `shadowdb_check replay` re-executes a saved trace exactly.

   `shadowdb_check conform` is the runtime conformance checker: it loads
   a recorded event trace (from any of the three runtimes) and replays
   it through the Logic-of-Events delivery spec and the invariant
   monitors. `conform-record` produces reference traces — optionally
   run through a deliberately-divergent mutator — and
   `conform-selftest` proves in-process that a clean trace passes and
   every divergent fixture is rejected. *)

open Cmdliner

let protocol_conv =
  Arg.enum (List.map (fun s -> (s.Check.Scenario.name, s)) Check.Scenarios.all)

type mode = Random | Dfs

let mode_conv = Arg.enum [ ("random", Random); ("dfs", Dfs) ]

let explore scenario mode budget seed slack width max_depth faults
    random_faults recovery_faults out =
  let faults =
    match Check.Fault.parse faults with
    | Ok plan -> plan
    | Error msg ->
        prerr_endline msg;
        exit 64
  in
  let fault_gen =
    if recovery_faults then Some Check.Fault.random_recovery else None
  in
  let report =
    match mode with
    | Random ->
        Check.Explore.random_walk ~slack ~width ~faults ~random_faults
          ?fault_gen ~max_depth scenario ~seed ~budget ()
    | Dfs ->
        Check.Explore.dfs ~slack ~width ~faults ~max_depth scenario ~seed
          ~budget ()
  in
  Fmt.pr "%a@." Check.Explore.pp_report report;
  match report.Check.Explore.violation with
  | None -> 0
  | Some trace ->
      (match out with
      | Some file ->
          Check.Trace.save file trace;
          Fmt.pr "counterexample written to %s@." file
      | None -> ());
      2

let replay file =
  match (try Check.Trace.load file with Sys_error msg -> Error msg) with
  | Error msg ->
      prerr_endline msg;
      64
  | Ok trace -> (
      match Check.Scenarios.find trace.Check.Trace.protocol with
      | None ->
          Fmt.epr "unknown protocol %S in trace@." trace.Check.Trace.protocol;
          64
      | Some scenario -> (
          let out = Check.Explore.replay scenario trace in
          match out.Check.Scenario.violation with
          | Some v ->
              Fmt.pr "violation reproduced: %s: %s@." v.Check.Scenario.monitor
                v.Check.Scenario.detail;
              2
          | None ->
              Fmt.pr "no violation on replay (%d events, depth %d)@."
                out.Check.Scenario.events out.Check.Scenario.depth;
              0))

(* ------------------------ conformance checking ------------------------ *)

let conform file max_delivers =
  match Conform.Trace_file.load file with
  | Error msg ->
      Fmt.epr "cannot load trace %s: %s@." file msg;
      64
  | Ok (meta, events) ->
      let spec_exec = Conform.Replay.spec_exec_of_meta meta in
      let replay = Conform.Replay.check ?spec_exec ~max_delivers events in
      let monitors = Conform.Monitors.check ~meta events in
      Fmt.pr "%a@." Conform.Replay.pp_report replay;
      Fmt.pr "%a@." Conform.Monitors.pp_report monitors;
      if Conform.Replay.ok replay && Conform.Monitors.ok monitors then 0 else 2

let conform_record seed clients count rows fixture out =
  let run = Conform.Record.sim_bank ~seed ~clients ~count ~rows () in
  let recorder = run.Conform.Record.recorder in
  let events = Conform.Recorder.events recorder in
  let meta = Conform.Recorder.meta recorder in
  let events =
    match fixture with
    | None -> Ok events
    | Some name -> Conform.Mutate.apply name events
  in
  match events with
  | Error msg ->
      Fmt.epr "fixture failed: %s@." msg;
      64
  | Ok events -> (
      match Conform.Trace_file.save ~path:out ~meta events with
      | () ->
          Fmt.pr "recorded %d events (%d commits) to %s%s@."
            (List.length events) run.Conform.Record.commits out
            (match fixture with
            | None -> ""
            | Some f -> Printf.sprintf " [divergent fixture: %s]" f);
          0)

let conform_selftest seed =
  let run = Conform.Record.sim_bank ~seed ~clients:2 ~count:20 ~rows:64 () in
  let recorder = run.Conform.Record.recorder in
  let events = Conform.Recorder.events recorder in
  let meta = Conform.Recorder.meta recorder in
  let failures = ref 0 in
  let expect what cond =
    if cond then Fmt.pr "ok: %s@." what
    else begin
      Fmt.pr "FAIL: %s@." what;
      incr failures
    end
  in
  expect "recorded run completed"
    (run.Conform.Record.completed = run.Conform.Record.clients
    && run.Conform.Record.commits > 0);
  expect "clean trace is conformant" (Conform.Record.conformant ~meta events);
  (match Conform.Trace_file.decode (Conform.Trace_file.encode ~meta events) with
  | Ok (m2, ev2) -> expect "trace codec round-trips" (m2 = meta && ev2 = events)
  | Error e -> expect (Printf.sprintf "trace codec round-trips (%s)" e) false);
  List.iter
    (fun name ->
      match Conform.Mutate.apply name events with
      | Error msg ->
          expect (Printf.sprintf "fixture %s applies (%s)" name msg) false
      | Ok mutated ->
          expect
            (Printf.sprintf "divergent fixture %s is rejected" name)
            (not (Conform.Record.conformant ~meta mutated)))
    Conform.Mutate.fixtures;
  if !failures = 0 then 0 else 1

let explore_term =
  let protocol =
    Arg.(
      required
      & opt (some protocol_conv) None
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"Scenario to check: paxos, tob, pbr, smr, or buggy.")
  in
  let mode =
    Arg.(
      value & opt mode_conv Random
      & info [ "mode" ] ~doc:"Exploration strategy: random or dfs.")
  in
  let budget =
    Arg.(
      value & opt int 2000
      & info [ "budget" ] ~doc:"Maximum number of schedules to run.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:"Exploration seed; runs are deterministic per seed.")
  in
  let slack =
    Arg.(
      value
      & opt float Check.Sched.default_slack
      & info [ "slack" ]
          ~doc:
            "Events within this window (seconds) of the earliest pending \
             one are considered concurrent.")
  in
  let width =
    Arg.(
      value
      & opt int Check.Sched.default_width
      & info [ "width" ] ~doc:"Maximum candidates offered per choice point.")
  in
  let max_depth =
    Arg.(
      value & opt int 12
      & info [ "max-depth" ]
          ~doc:
            "DFS: deepest choice point to branch at. Random with \
             $(b,--random-faults): latest fault injection depth.")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Fault plan, e.g. 'crash:0\\@3,part:0:1\\@2,heal:0:1\\@6' \
             (node indices are scenario-relative; depths count scheduling \
             decisions).")
  in
  let random_faults =
    Arg.(
      value & flag
      & info [ "random-faults" ]
          ~doc:
            "Random mode: draw a fresh crash-stop fault plan per schedule \
             (crashes and transient partitions, never amnesia restarts).")
  in
  let recovery_faults =
    Arg.(
      value & flag
      & info [ "recovery-faults" ]
          ~doc:
            "Random mode: draw a fresh crash-and-recover plan per schedule \
             (one node crashed, then restarted strictly later) — for \
             durable scenarios whose nodes recover from a write-ahead \
             log.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the (shrunk) counterexample trace to this file.")
  in
  Term.(
    const explore $ protocol $ mode $ budget $ seed $ slack $ width
    $ max_depth $ faults $ random_faults $ recovery_faults $ out)

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Explore alternative schedules and check invariant monitors.")
    explore_term

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file saved by explore --out.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-execute a saved counterexample trace exactly.")
    Term.(const replay $ file)

let conform_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"Event trace recorded by a runtime or conform-record.")
  in
  let max_delivers =
    Arg.(
      value
      & opt int Conform.Replay.default_max_delivers
      & info [ "max-delivers" ]
          ~doc:
            "Per-incarnation cap on deliveries replayed through the LoE \
             spec machine (its denotational evaluation is quadratic).")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Replay a recorded event trace through the LoE delivery spec and \
          the invariant monitors; exit 2 on divergence.")
    Term.(const conform $ file $ max_delivers)

let conform_record_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let count =
    Arg.(
      value & opt int 40
      & info [ "count" ] ~doc:"Transactions per client.")
  in
  let rows =
    Arg.(value & opt int 512 & info [ "rows" ] ~doc:"Bank accounts.")
  in
  let fixture =
    Arg.(
      value
      & opt (some (enum (List.map (fun f -> (f, f)) Conform.Mutate.fixtures)))
          None
      & info [ "fixture" ] ~docv:"NAME"
          ~doc:
            "Apply a deliberately-divergent mutation before saving: \
             skip-batch, reorder, or tamper-hash.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the trace to this file.")
  in
  Cmd.v
    (Cmd.info "conform-record"
       ~doc:
         "Record a seeded bank workload on the simulator and save its event \
          trace (optionally mutated into a divergent fixture).")
    Term.(
      const conform_record $ seed $ clients $ count $ rows $ fixture $ out)

let conform_selftest_cmd =
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  Cmd.v
    (Cmd.info "conform-selftest"
       ~doc:
         "Record a reference trace in-process, check it passes, and check \
          every divergent fixture is rejected.")
    Term.(const conform_selftest $ seed)

let () =
  let info =
    Cmd.info "shadowdb_check"
      ~doc:"Model checking and runtime monitoring for ShadowDB protocols."
  in
  (* [explore] is also the default command, so
     [shadowdb_check --protocol paxos --budget 2000] works bare. *)
  exit
    (Cmd.eval'
       (Cmd.group ~default:explore_term info
          [
            explore_cmd;
            replay_cmd;
            conform_cmd;
            conform_record_cmd;
            conform_selftest_cmd;
          ]))
