(* Schedule-exploring model checker for the replicated protocols.

   `shadowdb_check explore` runs thousands of alternative event schedules
   of a protocol scenario under the simulator's scheduler hook, checking
   runtime invariant monitors on every run and reporting distinct-state
   coverage; on a violation it saves a shrunk, replayable counterexample
   trace. `shadowdb_check replay` re-executes a saved trace exactly. *)

open Cmdliner

let protocol_conv =
  Arg.enum (List.map (fun s -> (s.Check.Scenario.name, s)) Check.Scenarios.all)

type mode = Random | Dfs

let mode_conv = Arg.enum [ ("random", Random); ("dfs", Dfs) ]

let explore scenario mode budget seed slack width max_depth faults
    random_faults recovery_faults out =
  let faults =
    match Check.Fault.parse faults with
    | Ok plan -> plan
    | Error msg ->
        prerr_endline msg;
        exit 64
  in
  let fault_gen =
    if recovery_faults then Some Check.Fault.random_recovery else None
  in
  let report =
    match mode with
    | Random ->
        Check.Explore.random_walk ~slack ~width ~faults ~random_faults
          ?fault_gen ~max_depth scenario ~seed ~budget ()
    | Dfs ->
        Check.Explore.dfs ~slack ~width ~faults ~max_depth scenario ~seed
          ~budget ()
  in
  Fmt.pr "%a@." Check.Explore.pp_report report;
  match report.Check.Explore.violation with
  | None -> 0
  | Some trace ->
      (match out with
      | Some file ->
          Check.Trace.save file trace;
          Fmt.pr "counterexample written to %s@." file
      | None -> ());
      2

let replay file =
  match (try Check.Trace.load file with Sys_error msg -> Error msg) with
  | Error msg ->
      prerr_endline msg;
      64
  | Ok trace -> (
      match Check.Scenarios.find trace.Check.Trace.protocol with
      | None ->
          Fmt.epr "unknown protocol %S in trace@." trace.Check.Trace.protocol;
          64
      | Some scenario -> (
          let out = Check.Explore.replay scenario trace in
          match out.Check.Scenario.violation with
          | Some v ->
              Fmt.pr "violation reproduced: %s: %s@." v.Check.Scenario.monitor
                v.Check.Scenario.detail;
              2
          | None ->
              Fmt.pr "no violation on replay (%d events, depth %d)@."
                out.Check.Scenario.events out.Check.Scenario.depth;
              0))

let explore_term =
  let protocol =
    Arg.(
      required
      & opt (some protocol_conv) None
      & info [ "protocol" ] ~docv:"NAME"
          ~doc:"Scenario to check: paxos, tob, pbr, smr, or buggy.")
  in
  let mode =
    Arg.(
      value & opt mode_conv Random
      & info [ "mode" ] ~doc:"Exploration strategy: random or dfs.")
  in
  let budget =
    Arg.(
      value & opt int 2000
      & info [ "budget" ] ~doc:"Maximum number of schedules to run.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:"Exploration seed; runs are deterministic per seed.")
  in
  let slack =
    Arg.(
      value
      & opt float Check.Sched.default_slack
      & info [ "slack" ]
          ~doc:
            "Events within this window (seconds) of the earliest pending \
             one are considered concurrent.")
  in
  let width =
    Arg.(
      value
      & opt int Check.Sched.default_width
      & info [ "width" ] ~doc:"Maximum candidates offered per choice point.")
  in
  let max_depth =
    Arg.(
      value & opt int 12
      & info [ "max-depth" ]
          ~doc:
            "DFS: deepest choice point to branch at. Random with \
             $(b,--random-faults): latest fault injection depth.")
  in
  let faults =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:
            "Fault plan, e.g. 'crash:0\\@3,part:0:1\\@2,heal:0:1\\@6' \
             (node indices are scenario-relative; depths count scheduling \
             decisions).")
  in
  let random_faults =
    Arg.(
      value & flag
      & info [ "random-faults" ]
          ~doc:
            "Random mode: draw a fresh crash-stop fault plan per schedule \
             (crashes and transient partitions, never amnesia restarts).")
  in
  let recovery_faults =
    Arg.(
      value & flag
      & info [ "recovery-faults" ]
          ~doc:
            "Random mode: draw a fresh crash-and-recover plan per schedule \
             (one node crashed, then restarted strictly later) — for \
             durable scenarios whose nodes recover from a write-ahead \
             log.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the (shrunk) counterexample trace to this file.")
  in
  Term.(
    const explore $ protocol $ mode $ budget $ seed $ slack $ width
    $ max_depth $ faults $ random_faults $ recovery_faults $ out)

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Explore alternative schedules and check invariant monitors.")
    explore_term

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file saved by explore --out.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-execute a saved counterexample trace exactly.")
    Term.(const replay $ file)

let () =
  let info =
    Cmd.info "shadowdb_check"
      ~doc:"Model checking and runtime monitoring for ShadowDB protocols."
  in
  (* [explore] is also the default command, so
     [shadowdb_check --protocol paxos --budget 2000] works bare. *)
  exit
    (Cmd.eval'
       (Cmd.group ~default:explore_term info [ explore_cmd; replay_cmd ]))
