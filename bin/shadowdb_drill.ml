(* Chaos drill: crash-and-recover a live ShadowDB node under traffic.

   Deploys a real 3-node SMR cluster on loopback TCP with file-backed
   durability (write-ahead log + snapshots per node) — on the
   thread-per-node runtime (`--runtime live`, the default) or the
   single-reactor event loop (`--runtime loop`) — drives closed-loop
   client traffic against it, kills one node mid-run, optionally tears
   its WAL tail (appending half an encoded record, as an interrupted
   write would), restarts it, and verifies the recovery contract from
   the outside:

   - the victim's recovery report shows a valid snapshot (when one was
     taken) and the torn tail truncated, never replayed;
   - recovery reaches every total-order position the crash left durable
     on disk (no committed loss);
   - the recovered state fingerprint equals the one logged at apply
     time, and a survivor's durable image at the same total-order
     position carries the same fingerprint (post-recovery agreement);
   - the cluster keeps committing throughout.

   Under the loop runtime the drill additionally records the delivery
   order of every frame (payload digests checked off per (src,dst) link
   end-to-end through the real wire path) and gates on zero per-link
   FIFO violations across the crash — keeping the batched data plane
   honest against the channel assumption the protocols are verified
   under.

   The verdict and all measurements are written as a JSON artifact
   (--json) and the exit code is non-zero unless every check passed, so
   CI can gate on it. *)

open Cmdliner
module S = Shadowdb.System.Make (Consensus.Paxos)

(* ---------------------------------------------------------------- *)
(* Minimal JSON emitter (mirrors the bench harness's)                *)
(* ---------------------------------------------------------------- *)

module Json = struct
  type t = Bool of bool | Num of float | Str of string | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent = function
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x ->
        Buffer.add_string buf
          (if Float.is_finite x then Printf.sprintf "%.6g" x else "null")
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            emit buf (indent + 2) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make indent ' ');
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 4096 in
    emit buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let int n = Num (float_of_int n)
end

(* ---------------------------------------------------------------- *)
(* Drill                                                             *)
(* ---------------------------------------------------------------- *)

let bank_rows = 256

let make_deposit ~client ~seq =
  Workload.Bank.deposit
    ~account:(abs (Hashtbl.hash (client, seq)) mod bank_rows)
    ~amount:(1 + (seq mod 9))

let node_dir data_dir i = Filename.concat data_dir (Printf.sprintf "node%d" i)

(* Start every drill from empty durable state: remove only the files the
   backend itself writes, never the directory wholesale. *)
let wipe_node_dir dir =
  List.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "wal.log"; "snapshot.bin"; "snapshot.bin.tmp" ]

(* Half of one encoded WAL record: the on-disk shape of a write cut off
   mid-flight. Recovery must truncate it, never replay it. *)
let torn_fragment () =
  let whole =
    Durable.Wal.encode_record
      { Durable.Wal.idx = max_int / 2; aux = 0; hash = 0; payload = "torn-tail" }
  in
  String.sub whole 0 (String.length whole / 2)

type recovery_obs = {
  obs_node : int;
  obs_report : Durable.Manager.report;
  obs_state_hash : int;
  obs_at : float;  (* wall-clock seconds since drill start *)
}

type rt = Rt_live | Rt_loop

let run rt clients count group_commit snapshot_every torn data_dir json_path
    kill_after =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let victim = 0 and survivor = 1 in
  List.iter (fun i -> wipe_node_dir (node_dir data_dir i)) [ 0; 1; 2 ];
  let codec =
    S.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
      ~dec_core:Shadowdb.Codec.decode_core_paxos
  in
  let rt_name = match rt with Rt_live -> "live" | Rt_loop -> "loop" in
  (* Always-on conformance recording: the drill's whole trace — including
     the crash/restart window — is saved next to the durable state and
     replayed through the LoE spec as one of the verdict's checks. *)
  let recorder =
    Conform.Recorder.create
      ~meta:
        [
          ("workload", "bank");
          ("rows", string_of_int bank_rows);
          ("runtime", rt_name);
          ("drill", "crash-recover");
        ]
      ()
  in
  let tap = Conform.Recorder.tap recorder ~enc:codec.Runtime.enc in
  let live =
    match rt with
    | Rt_live -> Runtime.Driver.live ~tap ~codec ()
    | Rt_loop -> Runtime.Driver.loop ~record_delivery:true ~tap ~codec ()
  in
  let world = live.Runtime.Driver.world in
  let mu = Mutex.create () in
  let observations = ref [] in
  let durability =
    {
      S.dur_backend = (fun i -> Durable.File.create ~dir:(node_dir data_dir i) ());
      dur_policy =
        (fun i ->
          {
            Durable.Manager.group_commit;
            (* Survivors keep their whole WAL (no snapshot truncation) so
               the post-recovery cross-check below can look up the state
               fingerprint at any total-order position. *)
            snapshot_every = (if i = victim then snapshot_every else 0);
            replay_tail = true;
          });
      dur_on_recover =
        (fun i report ~state_hash ->
          Mutex.lock mu;
          observations :=
            {
              obs_node = i;
              obs_report = report;
              obs_state_hash = state_hash;
              obs_at = elapsed ();
            }
            :: !observations;
          Mutex.unlock mu);
    }
  in
  (* Long failure-detection timeout: the drill exercises durability, not
     reconfiguration, so the kill/restart window must stay well inside
     the suspicion threshold (the victim is restarted within ~a second). *)
  let tun = { Shadowdb.System.default_tuning with detect_timeout = 30.0 } in
  let cluster =
    S.spawn_smr ~tun ~durability ~world ~registry:Workload.Bank.registry
      ~setup:(Workload.Bank.setup ~rows:bank_rows)
      ~n_active:2 ()
  in
  let nodes = Array.of_list cluster.S.smr_nodes in
  let commits = ref 0 in
  let commit_series = Stats.Series.create ~bin:0.05 in
  let _, completed =
    S.spawn_clients ~world ~target:(S.To_smr cluster) ~n:clients ~count
      ~make_txn:make_deposit ~retry_timeout:1.0
      ~on_commit:(fun _ _ ->
        Mutex.lock mu;
        incr commits;
        Stats.Series.record commit_series (elapsed ());
        Mutex.unlock mu)
      ()
  in
  let commits_now () = Mutex.lock mu; let c = !commits in Mutex.unlock mu; c in
  Printf.printf
    "drill      : 3-node SMR over loopback TCP (%s runtime), file-backed WAL\n"
    rt_name;
  Printf.printf "durability : group-commit %d, snapshot every %d (victim)\n"
    group_commit snapshot_every;
  Printf.printf "workload   : %d clients x %d deposits\n%!" clients count;
  live.Runtime.Driver.start ();
  let kill_threshold =
    match kill_after with Some k -> k | None -> clients * count / 3
  in
  let warmed =
    live.Runtime.Driver.await ~timeout:60.0 (fun () ->
        commits_now () >= kill_threshold)
  in
  (* Kill the victim mid-traffic, then inspect what its disk holds — the
     exact image recovery will see. *)
  Printf.printf "kill       : node %d after %d commits (%.2fs)\n%!" victim
    (commits_now ()) (elapsed ());
  let killed_at = elapsed () in
  live.Runtime.Driver.crash nodes.(victim);
  let pre_snap, pre_log = Durable.File.read_dir (node_dir data_dir victim) in
  let torn_injected =
    if torn then begin
      let frag = torn_fragment () in
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644
          (Filename.concat (node_dir data_dir victim) "wal.log")
      in
      output_string oc frag;
      close_out oc;
      String.length frag
    end
    else 0
  in
  let pre = Durable.Manager.inspect ~snap:pre_snap ~log:pre_log in
  Printf.printf
    "disk       : snapshot %s, %d whole records, durable up to position %d%s\n%!"
    (match pre.Durable.Manager.i_snapshot with
    | Some r -> Printf.sprintf "at position %d" r.Durable.Wal.idx
    | None -> "absent")
    (List.length pre.Durable.Manager.i_records)
    pre.Durable.Manager.i_durable_idx
    (if torn then Printf.sprintf " (+%d torn bytes injected)" torn_injected
     else "");
  let restart_at = elapsed () in
  live.Runtime.Driver.restart nodes.(victim);
  let recovery_of_restart () =
    Mutex.lock mu;
    let o =
      List.find_opt
        (fun o -> o.obs_node = victim && o.obs_at >= restart_at)
        !observations
    in
    Mutex.unlock mu;
    o
  in
  let _ = live.Runtime.Driver.await ~timeout:30.0 (fun () ->
      recovery_of_restart () <> None)
  in
  let drained =
    live.Runtime.Driver.await ~timeout:120.0 (fun () -> completed () >= clients)
  in
  let back_at =
    match recovery_of_restart () with Some o -> o.obs_at | None -> nan
  in
  live.Runtime.Driver.stop ();
  List.iter
    (fun e -> Printf.eprintf "live runtime error: %s\n%!" e)
    (live.Runtime.Driver.errors ());
  (* Conformance: save the recorded trace and replay it through the LoE
     delivery spec plus the invariant monitors. *)
  let trace_path = Filename.concat data_dir "drill.ctrace" in
  Conform.Recorder.save recorder trace_path;
  let trace_events = Conform.Recorder.events recorder in
  let conform_replay, conform_monitors =
    let meta = Conform.Recorder.meta recorder in
    let spec_exec = Conform.Replay.spec_exec_of_meta meta in
    ( Conform.Replay.check ?spec_exec trace_events,
      Conform.Monitors.check ~meta trace_events )
  in
  let conform_ok =
    Conform.Replay.ok conform_replay && Conform.Monitors.ok conform_monitors
  in
  Printf.printf "conformance: %s (%d events, %d deliveries replayed)\n%!"
    (if conform_ok then "trace matches the LoE spec" else "DIVERGENT")
    (List.length trace_events) conform_replay.Conform.Replay.r_delivers;
  if not conform_ok then begin
    List.iter
      (fun d -> Printf.printf "conformance: %s\n" (Format.asprintf "%a" Conform.Replay.pp_divergence d))
      conform_replay.Conform.Replay.r_divergences;
    List.iter
      (fun (n, m) -> Printf.printf "conformance: [%s] %s\n" n m)
      conform_monitors.Conform.Monitors.m_violations
  end;
  (* Verdict. Every check is computed from the recovery report plus
     read-only inspection of the on-disk images. *)
  let surv_snap, surv_log = Durable.File.read_dir (node_dir data_dir survivor) in
  let surv = Durable.Manager.inspect ~snap:surv_snap ~log:surv_log in
  let obs = recovery_of_restart () in
  let checks, recovery_json =
    match obs with
    | None ->
        ( [ ("recovery_ran", false) ],
          Json.Obj [ ("ran", Json.Bool false) ] )
    | Some { obs_report = rep; obs_state_hash; _ } ->
        let ridx = rep.Durable.Manager.recovered_idx in
        let survivor_hash = Durable.Manager.hash_at surv ridx in
        let checks =
          [
            ("recovery_ran", true);
            ( "snapshot_valid",
              rep.Durable.Manager.snapshot_valid
              || not rep.Durable.Manager.snapshot_present );
            ( "torn_tail_truncated",
              (not torn) || rep.Durable.Manager.torn_bytes >= torn_injected );
            ( "no_committed_loss",
              ridx >= pre.Durable.Manager.i_durable_idx );
            ( "state_matches_log",
              ridx < 0 || obs_state_hash = rep.Durable.Manager.recovered_hash
            );
            ( "agrees_with_survivor",
              match survivor_hash with
              | Some h -> h = rep.Durable.Manager.recovered_hash
              | None -> ridx < 0 );
            ("traffic_drained", drained && warmed);
          ]
          (* Loop runtime only: the recorded delivery order must show
             zero per-link FIFO violations across the crash window. *)
          @ (match rt with
            | Rt_loop ->
                [ ("per_link_fifo", live.Runtime.Driver.fifo_violations () = 0) ]
            | Rt_live -> [])
        in
        let r = rep.Durable.Manager.recovered_idx in
        ( checks,
          Json.Obj
            [
              ("ran", Json.Bool true);
              ("snapshot_present", Json.Bool rep.Durable.Manager.snapshot_present);
              ("snapshot_valid", Json.Bool rep.Durable.Manager.snapshot_valid);
              ("snapshot_idx", Json.int rep.Durable.Manager.snapshot_idx);
              ("wal_records", Json.int rep.Durable.Manager.wal_records);
              ("wal_replayed", Json.int rep.Durable.Manager.wal_replayed);
              ("wal_stale", Json.int rep.Durable.Manager.wal_stale);
              ("torn_bytes_truncated", Json.int rep.Durable.Manager.torn_bytes);
              ("recovered_idx", Json.int r);
              (* Fingerprints are full-width ints: emit as strings so JSON
                 float precision can't mangle them. *)
              ( "recovered_hash",
                Json.Str (string_of_int rep.Durable.Manager.recovered_hash) );
              ("state_hash_after_recovery", Json.Str (string_of_int obs_state_hash));
              ( "survivor_hash_at_recovered_idx",
                match survivor_hash with
                | Some h -> Json.Str (string_of_int h)
                | None -> Json.Str "not-retained" );
              ("recovery_ms", Json.Num ((back_at -. restart_at) *. 1e3));
            ] )
  in
  let checks = checks @ [ ("conformance", conform_ok) ] in
  let ok = List.for_all snd checks in
  let down_commits =
    Stats.Series.between commit_series killed_at
      (if Float.is_nan back_at then elapsed () else back_at)
  in
  let artifact =
    Json.Obj
      [
        ( "config",
          Json.Obj
            [
              ("runtime", Json.Str rt_name);
              ("clients", Json.int clients);
              ("count", Json.int count);
              ("group_commit", Json.int group_commit);
              ("snapshot_every", Json.int snapshot_every);
              ("torn_injected_bytes", Json.int torn_injected);
              ("data_dir", Json.Str data_dir);
            ] );
        ( "timeline",
          Json.Obj
            [
              ("killed_at_s", Json.Num killed_at);
              ("restarted_at_s", Json.Num restart_at);
              ("recovered_at_s", Json.Num back_at);
              ("total_s", Json.Num (elapsed ()));
            ] );
        ( "pre_crash_disk",
          Json.Obj
            [
              ("durable_idx", Json.int pre.Durable.Manager.i_durable_idx);
              ( "whole_records",
                Json.int (List.length pre.Durable.Manager.i_records) );
              ("torn_bytes", Json.int pre.Durable.Manager.i_torn);
            ] );
        ("recovery", recovery_json);
        ( "conformance",
          Json.Obj
            [
              ("trace", Json.Str trace_path);
              ("events", Json.int (List.length trace_events));
              ( "delivers_replayed",
                Json.int conform_replay.Conform.Replay.r_delivers );
              ( "checkpoints",
                Json.int conform_replay.Conform.Replay.r_checkpoints );
              ( "divergences",
                Json.int
                  (List.length conform_replay.Conform.Replay.r_divergences) );
              ( "monitor_violations",
                Json.int
                  (List.length conform_monitors.Conform.Monitors.m_violations)
              );
              ("ok", Json.Bool conform_ok);
            ] );
        ( "delivery",
          match rt with
          | Rt_loop ->
              let msgs, bytes = live.Runtime.Driver.sent () in
              Json.Obj
                [
                  ("recorded", Json.Bool true);
                  ("frames_sent", Json.int msgs);
                  ("bytes_sent", Json.int bytes);
                  ( "fifo_violations",
                    Json.int (live.Runtime.Driver.fifo_violations ()) );
                  ( "backpressure_engagements",
                    Json.int (live.Runtime.Driver.backpressure ()) );
                ]
          | Rt_live -> Json.Obj [ ("recorded", Json.Bool false) ] );
        ( "traffic",
          Json.Obj
            [
              ("commits", Json.int (commits_now ()));
              ("commits_while_down", Json.int down_commits);
              ("clients_completed", Json.int (completed ()));
            ] );
        ( "checks",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Bool v)) checks) );
        ("ok", Json.Bool ok);
      ]
  in
  let text = Json.to_string artifact in
  (match json_path with
  | Some file ->
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      Printf.printf "artifact   : %s\n" file
  | None -> print_string text);
  List.iter
    (fun (k, v) -> Printf.printf "check      : %-24s %s\n" k
        (if v then "ok" else "FAILED"))
    checks;
  Printf.printf "verdict    : %s\n%!" (if ok then "recovered" else "FAILED");
  if ok then 0 else 1

let term =
  let rt =
    Arg.(
      value
      & opt (enum [ ("live", Rt_live); ("loop", Rt_loop) ]) Rt_live
      & info [ "runtime" ]
          ~doc:
            "live (thread-per-node) or loop (single-reactor event loop; \
             also records delivery order and gates on per-link FIFO).")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let count =
    Arg.(value & opt int 60 & info [ "count" ] ~doc:"Transactions per client.")
  in
  let group_commit =
    Arg.(
      value & opt int 4
      & info [ "group-commit" ]
          ~doc:"WAL records per fsync on every node (1 = sync per commit).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 25
      & info [ "snapshot-every" ]
          ~doc:
            "Victim's snapshot cadence in applied records (snapshots reset \
             its WAL; survivors never snapshot so their logs stay \
             inspectable).")
  in
  let torn =
    Arg.(
      value & flag
      & info [ "torn" ]
          ~doc:
            "After the kill, append half an encoded record to the victim's \
             WAL — recovery must truncate it, never replay it.")
  in
  let data_dir =
    Arg.(
      value & opt string "drill-data"
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:"Root of the per-node durable directories (node0/, node1/, …).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the JSON artifact here (default: stdout).")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ]
          ~doc:
            "Kill the victim after this many commits (default: a third of \
             the total workload).")
  in
  Term.(
    const run $ rt $ clients $ count $ group_commit $ snapshot_every $ torn
    $ data_dir $ json $ kill_after)

let () =
  exit
    (Cmd.eval'
       (Cmd.v
          (Cmd.info "shadowdb_drill"
             ~doc:
               "Crash-and-recover drill for a live ShadowDB cluster with \
                file-backed durability.")
          term))
