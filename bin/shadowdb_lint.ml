(* Spec-level static analysis over the EventML class terms and GPM
   machines.

   `shadowdb_lint` (or `shadowdb_lint lint --all`) runs every analysis
   pass — header coverage, single-valuedness, send-graph reachability,
   handler purity, the ShadowDB wire table, scenario determinism — over
   the registered specifications and exits nonzero if anything fires.
   `--sweep DIR` additionally scans source directories for anonymous
   failure patterns. `shadowdb_lint selftest` proves each pass can fire
   by running it over deliberately defective fixture specs. *)

open Cmdliner

let lint all target json sweep_dirs =
  let targets =
    if all || target = None then Analysis.Registry.all ()
    else
      match target with
      | Some name -> (
          match Analysis.Registry.find name with
          | Some t -> [ t ]
          | None ->
              Fmt.epr "unknown target %S; known: %s@." name
                (String.concat ", " (Analysis.Registry.names ()));
              exit 64)
      | None -> []
  in
  let reports = List.map Analysis.Lint.run_target targets in
  let reports =
    match sweep_dirs with
    | [] -> reports
    | dirs ->
        reports
        @ [
            {
              Analysis.Lint.target = "sources";
              kind = "sweep";
              findings = Analysis.Sweep.pass dirs;
            };
          ]
  in
  if json then print_endline (Analysis.Lint.to_json reports)
  else Fmt.pr "%a" Analysis.Lint.pp_human reports;
  if Analysis.Lint.total_findings reports = 0 then 0 else 1

let impl src_dirs json =
  let src_dirs = if src_dirs = [] then [ "lib" ] else src_dirs in
  let missing = List.filter (fun d -> not (Sys.file_exists d)) src_dirs in
  if missing <> [] then begin
    Fmt.epr
      "source director%s not found: %s — run from the repo root (the impl \
       passes read .ml sources)@."
      (if List.length missing = 1 then "y" else "ies")
      (String.concat ", " missing);
    exit 64
  end;
  let reports = Analysis.Impl.run ~src_dirs () in
  if json then print_endline (Analysis.Lint.to_json reports)
  else Fmt.pr "%a" Analysis.Lint.pp_human reports;
  if Analysis.Lint.total_findings reports = 0 then 0 else 1

let selftest json =
  let outcomes = Analysis.Lint.selftest () in
  if json then begin
    let one (o : Analysis.Lint.selftest_outcome) =
      Printf.sprintf
        "{\"fixture\":\"%s\",\"ok\":%b,\"fired\":[%s],\"missing\":[%s]}"
        (Analysis.Diag.json_escape o.Analysis.Lint.fixture)
        (o.Analysis.Lint.missing = [])
        (String.concat ","
           (List.map (fun c -> Printf.sprintf "\"%s\"" c) o.Analysis.Lint.fired))
        (String.concat ","
           (List.map
              (fun c -> Printf.sprintf "\"%s\"" c)
              o.Analysis.Lint.missing))
    in
    print_endline
      (Printf.sprintf "{\"fixtures\":[%s]}"
         (String.concat "," (List.map one outcomes)))
  end
  else
    List.iter
      (fun (o : Analysis.Lint.selftest_outcome) ->
        if o.Analysis.Lint.missing = [] then
          Fmt.pr "%-20s ok (fired: %s)@." o.Analysis.Lint.fixture
            (String.concat ", " o.Analysis.Lint.fired)
        else
          Fmt.pr "%-20s MISSING %s (fired: %s)@." o.Analysis.Lint.fixture
            (String.concat ", " o.Analysis.Lint.missing)
            (String.concat ", " o.Analysis.Lint.fired))
      outcomes;
  if Analysis.Lint.selftest_ok outcomes then 0 else 1

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let lint_term =
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Lint every registered target (the default when no \
                $(b,--target) is given).")
  in
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"NAME"
          ~doc:"Lint a single target; see the target column of the \
                default run for names.")
  in
  let sweep =
    Arg.(
      value & opt_all string []
      & info [ "sweep" ] ~docv:"DIR"
          ~doc:
            "Also sweep this source directory (repeatable) for anonymous \
             failure patterns; requires running from the repo root.")
  in
  Term.(const lint $ all $ target $ json_flag $ sweep)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run all analysis passes over the registered specifications.")
    lint_term

let impl_cmd =
  let src =
    Arg.(
      value & opt_all string []
      & info [ "src" ] ~docv:"DIR"
          ~doc:
            "Source directory to analyse (repeatable; default $(b,lib)). \
             Requires running from the repo root — the impl passes parse \
             .ml sources with compiler-libs.")
  in
  Cmd.v
    (Cmd.info "impl"
       ~doc:
         "AST-based implementation lints: reactor-blocking reachability, \
          lock discipline, durability ordering, and the forbidden-pattern \
          sweep, over the repo's own OCaml sources.")
    Term.(const impl $ src $ json_flag)

let selftest_cmd =
  Cmd.v
    (Cmd.info "selftest"
       ~doc:
         "Prove every pass fires on its deliberately defective fixture \
          spec.")
    Term.(const selftest $ json_flag)

let () =
  let info =
    Cmd.info "shadowdb_lint"
      ~doc:
        "Static analysis / lint over the EventML specifications, GPM \
         machines, and check scenarios."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:lint_term info [ lint_cmd; impl_cmd; selftest_cmd ]))
