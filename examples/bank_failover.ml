(* Primary-backup replication surviving a primary crash, with the paper's
   diversity deployment: H2-like ("hazel") at the primary, HSQLDB-like
   ("hickory") at the backup, Derby-like ("dogwood") at the spare
   (Sec. III-C and Fig. 10(a)).

   The example crashes the primary mid-run and narrates the recovery:
   suspicion, total-order-broadcast reconfiguration, election by largest
   executed sequence number, snapshot state transfer, resumption — then
   checks that the diverse replicas agree bit-for-bit on the database
   content.

   Run with: dune exec examples/bank_failover.exe *)

module Engine = Sim.Engine
module Store = Storage.Store
module S = Shadowdb.System.Make (Consensus.Paxos)

let rows = 5_000

let () =
  print_endline "== ShadowDB-PBR failover with diverse backends ==\n";
  let world : S.wire Engine.t = Engine.create ~seed:7 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let tun =
    {
      Shadowdb.System.default_tuning with
      hb_interval = 0.2;
      detect_timeout = 2.0;
      cache_cap = 50 (* force a full-snapshot state transfer *);
    }
  in
  let cluster =
    S.spawn_pbr ~tun
      ~backends:[ Store.Hazel; Store.Hickory; Store.Dogwood ]
      ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      ~n_active:2 ~n_spare:1 ()
  in
  let commits = ref 0 in
  let last_commit = ref 0.0 in
  let _, completed =
    S.spawn_clients ~world:rworld ~target:(S.To_pbr cluster) ~n:4 ~count:3000
      ~make_txn:(fun ~client ~seq ->
        Workload.Bank.deposit
          ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
          ~amount:1)
      ~retry_timeout:1.0
      ~on_commit:(fun now _ ->
        incr commits;
        last_commit := now)
      ()
  in
  let primary = cluster.S.pbr_initial_primary in
  Printf.printf "replicas: %s (primary: node %d; backends hazel/hickory/dogwood)\n"
    (String.concat ", " (List.map string_of_int cluster.S.pbr_replicas))
    primary;
  Engine.at world 0.3 (fun () ->
      Printf.printf "t=0.30s  crashing the primary (node %d); %d commits so far\n"
        primary !commits;
      Engine.crash world primary);
  Engine.at world 0.4 (fun () ->
      Printf.printf "t=0.40s  clients stall; surviving replicas heartbeat...\n");
  let announced = ref false in
  let rec watch t =
    if t < 30.0 then
      Engine.at world t (fun () ->
          let survivor = List.nth cluster.S.pbr_replicas 1 in
          if (not !announced) && cluster.S.pbr_primary_of survivor <> primary
          then begin
            announced := true;
            Printf.printf
              "t=%.2fs  new configuration adopted: node %d elected primary \
               (largest executed seq)\n"
              (Engine.now world)
              (cluster.S.pbr_primary_of survivor)
          end;
          watch (t +. 0.05))
  in
  watch 0.5;
  Engine.run ~until:120.0 world;
  Printf.printf "t=%.2fs  all %d clients finished: %d/12000 commits\n"
    !last_commit (completed ()) !commits;
  let in_final =
    List.filter
      (fun l -> Engine.is_alive world l)
      cluster.S.pbr_replicas
  in
  let gseqs = List.map cluster.S.pbr_gseq_of in_final in
  let hashes = List.map cluster.S.pbr_hash_of in_final in
  Printf.printf "\nsurvivors executed %s transactions\n"
    (String.concat " / " (List.map string_of_int gseqs));
  Printf.printf "diverse replicas agree on the database content: %b\n"
    (match hashes with h :: t -> List.for_all (( = ) h) t | [] -> false);
  Printf.printf "every answered deposit survived the crash (durability): %b\n"
    (List.for_all (fun g -> g = !commits) gseqs)
