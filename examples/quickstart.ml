(* Quickstart: a replicated bank in a few lines.

   Builds a ShadowDB state-machine-replication cluster (three machines,
   each co-hosting a Paxos-based broadcast member and a database replica)
   on the simulator, runs a few transactions from two clients, and prints
   the replies and the replicas' agreement. Also shows the SQL surface of
   the embedded storage engine.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Sim.Engine
module S = Shadowdb.System.Make (Consensus.Paxos)
module Value = Storage.Value

let () =
  print_endline "== ShadowDB quickstart ==";

  (* 1. The embedded SQL database (what each replica runs underneath). *)
  let db = Storage.Database.create Storage.Store.Hickory in
  let exec sql =
    match Storage.Sql_exec.exec_sql db sql with
    | Ok r -> r
    | Error e -> failwith (sql ^ ": " ^ e)
  in
  ignore (exec "CREATE TABLE accounts (id INT, owner TEXT, balance INT)");
  ignore (exec "INSERT INTO accounts VALUES (1, 'ada', 100), (2, 'bob', 40)");
  ignore (exec "UPDATE accounts SET balance = balance + 10 WHERE id = 2");
  (match exec "SELECT owner, balance FROM accounts ORDER BY balance DESC" with
  | Storage.Sql_exec.Rows { rows; _ } ->
      List.iter
        (fun row ->
          match row with
          | [| Value.Text owner; Value.Int balance |] ->
              Printf.printf "   %-4s has %d\n" owner balance
          | _ -> ())
        rows
  | _ -> ());

  (* 2. A replicated deployment of the same engine. *)
  let world : S.wire Engine.t = Engine.create ~seed:1 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let cluster =
    S.spawn_smr ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows:1000 db)
      ~n_active:2 ()
  in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:rworld ~target:(S.To_smr cluster) ~n:2 ~count:10
      ~make_txn:(fun ~client ~seq ->
        Workload.Bank.deposit
          ~account:((client + seq) mod 1000)
          ~amount:(1 + (seq mod 5)))
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:30.0 world;
  Printf.printf "\n   clients completed : %d/2\n" (completed ());
  Printf.printf "   transactions done : %d\n" !commits;
  let active =
    List.filter (fun l -> cluster.S.smr_active_of l) cluster.S.smr_nodes
  in
  let hashes = List.map cluster.S.smr_hash_of active in
  Printf.printf "   active replicas   : %d\n" (List.length active);
  Printf.printf "   states agree      : %b\n"
    (match hashes with h :: t -> List.for_all (( = ) h) t | [] -> false);
  Printf.printf "   virtual duration  : %.3f s\n" (Engine.now world)
