(* TPC-C on state machine replication.

   Runs the five-transaction TPC-C mix through the replicated database
   (every transaction totally ordered by the Paxos-based broadcast
   service, executed deterministically at each replica), then verifies
   the TPC-C consistency conditions on a local copy replayed from
   scratch — the same determinism argument that keeps the replicas
   identical.

   Run with: dune exec examples/tpcc_demo.exe *)

module Engine = Sim.Engine
module S = Shadowdb.System.Make (Consensus.Paxos)
module Tpcc = Workload.Tpcc

let scale = Tpcc.small_scale

let () =
  print_endline "== TPC-C (1 warehouse) on ShadowDB-SMR ==\n";
  let world : S.wire Engine.t = Engine.create ~seed:13 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let cluster =
    S.spawn_smr ~world:rworld
      ~registry:(fun () -> Tpcc.registry ~scale ())
      ~setup:(fun db -> Tpcc.setup ~scale db)
      ~n_active:2 ()
  in
  let commits = ref 0 in
  let aborts = ref 0 in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let make_txn ~client ~seq =
    let rng = Sim.Prng.create (Hashtbl.hash (client, seq, "demo")) in
    let kind, params = Tpcc.make_txn ~scale rng ~h_id:((client * 100_000) + seq) in
    Hashtbl.replace by_kind kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind kind));
    (kind, params)
  in
  let _, completed =
    S.spawn_clients ~world:rworld ~target:(S.To_smr cluster) ~n:4 ~count:150 ~make_txn
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:600.0 world;
  aborts := (4 * 150) - !commits;
  Printf.printf "clients completed : %d/4\n" (completed ());
  Printf.printf "committed         : %d\n" !commits;
  Printf.printf "aborted (1%% rule) : %d\n" !aborts;
  Printf.printf "mix               : %s\n"
    (String.concat ", "
       (List.sort compare
          (Hashtbl.fold
             (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc)
             by_kind [])));
  let actives =
    List.filter (fun l -> cluster.S.smr_active_of l) cluster.S.smr_nodes
  in
  let hashes = List.map cluster.S.smr_hash_of actives in
  Printf.printf "replica agreement : %b\n"
    (match hashes with h :: t -> List.for_all (( = ) h) t | [] -> false);

  (* Replay the same transactions locally (determinism) and check the
     TPC-C consistency conditions. *)
  print_endline "\nTPC-C consistency conditions on the replicated state:";
  let db = Storage.Database.create Storage.Store.Hickory in
  Tpcc.setup ~scale db;
  let reg = Tpcc.registry ~scale () in
  for client = 0 to 3 do
    for seq = 0 to 149 do
      let rng = Sim.Prng.create (Hashtbl.hash (client, seq, "demo")) in
      let kind, params =
        Tpcc.make_txn ~scale rng ~h_id:((client * 100_000) + seq)
      in
      ignore
        (Shadowdb.Txn.execute reg db { Shadowdb.Txn.client; seq; kind; params })
    done
  done;
  List.iter
    (fun (name, check) ->
      match check db with
      | Ok () -> Printf.printf "  %-40s ok\n" name
      | Error e -> Printf.printf "  %-40s VIOLATED: %s\n" name e)
    [
      ("1: W_YTD = sum(D_YTD)", Tpcc.consistency_1);
      ("2: D_NEXT_O_ID - 1 = max(O_ID)", Tpcc.consistency_2);
      ("3: NEW_ORDER ids contiguous", Tpcc.consistency_3);
      ("4: sum(O_OL_CNT) = #ORDER_LINE", Tpcc.consistency_4);
    ];
  Printf.printf "\nrow counts: %s\n"
    (String.concat ", "
       (List.map
          (fun (t, n) -> Printf.sprintf "%s=%d" t n)
          (Tpcc.row_counts db)))
