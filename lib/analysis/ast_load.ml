(* AST loading for the implementation-level lints.

   PR 5's spec passes analyse EventML class terms the process constructs
   in memory; the impl passes analyse the repo's own OCaml sources. This
   module turns .ml files (or in-memory fixture strings) into compiler
   Parsetree structures via compiler-libs — real parsing, so downstream
   passes see code the way the compiler does: comments and string
   literals are not code, [List.hd(x)] is still an application of
   [List.hd], and a line number always points at a real expression.

   Parsing only, no typing: passes work on syntactic names resolved
   through a per-file module environment (see {!Callgraph}). That keeps
   the analyzer independent of build artifacts (no .cmt files), which
   matters because the dune test sandbox has no sources — fixtures are
   parsed from strings, and the pass over the real tree is opt-in from
   the repo root (`shadowdb_lint impl --src lib`), like the sweep. *)

type source = { src_path : string; src_str : Parsetree.structure }

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let site ~path loc = Printf.sprintf "%s:%d" path (line_of loc)

(* Module identity of a source file: capitalized parent directory
   (standing in for the dune library) and capitalized basename, so
   lib/runtime/loop.ml is [("Runtime", "Loop")] and two libraries may
   both own a [runtime.ml] without colliding. *)
let module_key path =
  let base = Filename.remove_extension (Filename.basename path) in
  let dir = Filename.basename (Filename.dirname path) in
  (String.capitalize_ascii dir, String.capitalize_ascii base)

let parse_string ~path text =
  let lexbuf = Lexing.from_string text in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  match Parse.implementation lexbuf with
  | str -> Ok { src_path = path; src_str = str }
  | exception e ->
      Error
        (Diag.v ~pass:"ast" ~target:"sources" ~code:"parse-error" ~site:path
           "source does not parse: %s" (Printexc.to_string e))

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match read_whole path with
  | text -> parse_string ~path text
  | exception Sys_error msg ->
      Error
        (Diag.v ~pass:"ast" ~target:"sources" ~code:"parse-error" ~site:path
           "source unreadable: %s" msg)

let rec ml_files path =
  match Sys.is_directory path with
  | exception Sys_error _ -> []
  | false -> if Filename.check_suffix path ".ml" then [ path ] else []
  | true ->
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.concat_map (fun f -> ml_files (Filename.concat path f))

(* Parse every .ml under [dirs]; unparsable files become diagnostics, not
   exceptions — an analyzer that dies on one bad file checks nothing. *)
let load dirs =
  List.fold_left
    (fun (srcs, diags) path ->
      match parse_file path with
      | Ok s -> (s :: srcs, diags)
      | Error d -> (srcs, d :: diags))
    ([], [])
    (List.concat_map ml_files dirs)
  |> fun (srcs, diags) -> (List.rev srcs, List.rev diags)
