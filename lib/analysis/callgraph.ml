(* Per-module call graph with qualified-name resolution.

   Nodes are fully-qualified definition names [Dir.Module.def] (the
   directory segment disambiguates e.g. gpm/runtime.ml from
   runtime/runtime.ml), plus two kinds of leaf:

   - external names ("Unix.read", "Mutex.lock", …) for references that
     resolve outside the parsed sources — these are exactly what the
     impl passes hunt for;
   - abstract field nodes ("field:log_sync") for record-field accesses,
     which approximate record-of-closures dispatch: the durable pass
     asks "does Manager.append reach field:log_sync" and separately
     "does every registered log_sync closure reach Unix.fsync".

   Record fields bound to function literals become pseudo-definitions
   named [Enclosing.def.fieldname] with a construction edge from the
   enclosing definition — so closures stored in a ctx/backend record are
   reachable from their construction site without guessing dynamic
   dispatch across modules.

   Resolution is syntactic (no typer): unqualified names walk the
   enclosing-module scope chain, qualified names try (in order) the
   scope chain, a same-directory module, an explicit directory prefix, a
   unique cross-directory module, and finally fall out as external.
   Unresolvable locals (function parameters, let-bound lambdas) are
   dropped — their bodies were already walked under the enclosing
   definition, so no blocking call hides behind them.

   Edges are kept in source order; the durability pass depends on that
   to check fsync-dominates-rename within a definition. Edges that occur
   inside a function literal passed to a configured with-lock helper are
   tagged with that helper's name ([e_lock]) — the lock-discipline pass
   seeds its under-lock reachability from those. *)

[@@@ocaml.warning "-4"]

open Parsetree

type edge = {
  e_callee : string;
  e_site : string;
  e_lock : string option; (* with-lock helper whose critical section holds this reference *)
}

type def = {
  d_name : string;
  d_site : string;
  mutable d_edges : edge list; (* reverse source order while building *)
}

type t = {
  defs : (string, def) Hashtbl.t;
  mutable order : string list; (* def names, reverse declaration order *)
  field_impls : (string, string list ref) Hashtbl.t; (* field name -> impl defs / values *)
  mod_dirs : (string, string list) Hashtbl.t; (* file-module name -> dirs holding it *)
}

let find_def t name = Hashtbl.find_opt t.defs name
let defs t = List.rev_map (Hashtbl.find t.defs) t.order
let edges (d : def) = List.rev d.d_edges

let defs_with_prefix t prefix =
  List.filter (fun d -> String.starts_with ~prefix d.d_name) (defs t)

let module_present t m = defs_with_prefix t (m ^ ".") <> []

let impls t field =
  match Hashtbl.find_opt t.field_impls field with
  | Some l -> List.rev !l
  | None -> []

(* ------------------------------------------------------------------ *)
(* Construction *)

type env = {
  g : t;
  dir : string; (* "Runtime" *)
  path : string;
  mutable mods : string list; (* module path inside the file, outermost first *)
  mutable aliases : (string * string list) list; (* module X = Y.Z *)
  mutable opens : string list list;
  lock_helpers : string list;
  mutable cur : def option;
  mutable lock : string option;
}

let rec flatten = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) ->
      Option.map (fun xs -> xs @ [ s ]) (flatten l)
  | Longident.Lapply _ -> None

let key_of env name = String.concat "." ((env.dir :: env.mods) @ [ name ])

let rec pat_def_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> pat_def_name p
  | _ -> None

let declare env name loc =
  let key = key_of env name in
  match Hashtbl.find_opt env.g.defs key with
  | Some d -> d
  | None ->
      let d =
        { d_name = key; d_site = Ast_load.site ~path:env.path loc; d_edges = [] }
      in
      Hashtbl.replace env.g.defs key d;
      env.g.order <- key :: env.g.order;
      d

let register_impl env field impl =
  match Hashtbl.find_opt env.g.field_impls field with
  | Some l -> if not (List.mem impl !l) then l := impl :: !l
  | None -> Hashtbl.replace env.g.field_impls field (ref [ impl ])

let rec unwrap_mod me =
  match me.pmod_desc with
  | Pmod_structure items -> `Structure items
  | Pmod_functor (_, body) -> unwrap_mod body
  | Pmod_constraint (m, _) -> unwrap_mod m
  | Pmod_ident { txt; _ } -> `Alias (flatten txt)
  | _ -> `Other

(* Pass A: collect definition names (so pass B resolves forward refs). *)
let rec collect_items env items = List.iter (collect_item env) items

and collect_item env it =
  match it.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match pat_def_name vb.pvb_pat with
          | Some n -> ignore (declare env n vb.pvb_pat.ppat_loc)
          | None -> ())
        vbs
  | Pstr_eval (e, _) -> ignore (declare env "$toplevel" e.pexp_loc)
  | Pstr_module mb -> collect_module env mb
  | Pstr_recmodule mbs -> List.iter (collect_module env) mbs
  | _ -> ()

and collect_module env mb =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name -> (
      match unwrap_mod mb.pmb_expr with
      | `Structure items ->
          let saved = env.mods in
          env.mods <- env.mods @ [ name ];
          collect_items env items;
          env.mods <- saved
      | `Alias _ | `Other -> ())

(* Name resolution, pass B. *)

let resolve_qualified env segs =
  (* [segs] = Mods… @ [name]; try scope chain, same-dir file module,
     explicit dir prefix, unique cross-dir module, else external. *)
  match List.rev segs with
  | [] -> None
  | name :: rev_mods ->
      let mods = List.rev rev_mods in
      let rec scope_chain prefix_rev =
        let key =
          String.concat "." ((env.dir :: List.rev prefix_rev) @ segs)
        in
        if Hashtbl.mem env.g.defs key then Some key
        else
          match prefix_rev with [] -> None | _ :: tl -> scope_chain tl
      in
      let scoped = scope_chain (List.rev env.mods) in
      if scoped <> None then scoped
      else
        let external_ () = Some (String.concat "." segs) in
        (match mods with
        | [] ->
            (* unqualified fell through scope chain: not a def we know *)
            None
        | m0 :: _ -> (
            let dirs =
              Option.value ~default:[]
                (Hashtbl.find_opt env.g.mod_dirs m0)
            in
            if List.mem env.dir dirs then
              Some (String.concat "." ((env.dir :: mods) @ [ name ]))
            else if
              (* first segment names a directory: Runtime.Frame.drain *)
              List.length mods >= 2
              && Hashtbl.fold
                   (fun _ ds acc -> acc || List.mem m0 ds)
                   env.g.mod_dirs false
            then Some (String.concat "." segs)
            else
              match dirs with
              | [ d ] -> Some (String.concat "." ((d :: mods) @ [ name ]))
              | _ -> external_ ()))

let apply_alias env segs =
  match segs with
  | m0 :: rest -> (
      match List.assoc_opt m0 env.aliases with
      | Some repl -> repl @ rest
      | None -> segs)
  | [] -> segs

let resolve env lid =
  match flatten lid with
  | None -> None
  | Some [ x ] -> (
      (* unqualified: scope chain first, then file-level opens *)
      match resolve_qualified env [ x ] with
      | Some _ as r -> r
      | None ->
          List.find_map
            (fun o ->
              match resolve_qualified env (apply_alias env (o @ [ x ])) with
              | Some k when Hashtbl.mem env.g.defs k -> Some k
              | _ -> None)
            env.opens)
  | Some segs -> (
      let segs =
        match segs with "Stdlib" :: rest when rest <> [] -> rest | _ -> segs
      in
      match resolve_qualified env (apply_alias env segs) with
      | Some _ as r -> r
      | None -> Some (String.concat "." segs))

let add_edge env callee loc =
  match env.cur with
  | None -> ()
  | Some d ->
      d.d_edges <-
        {
          e_callee = callee;
          e_site = Ast_load.site ~path:env.path loc;
          e_lock = env.lock;
        }
        :: d.d_edges

let last_seg lid =
  match flatten lid with
  | Some segs when segs <> [] -> Some (List.nth segs (List.length segs - 1))
  | _ -> None

let rec is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_fun_literal e
  | _ -> false

(* Pass B: edges, via an Ast_iterator walk. *)
let iter_of env =
  let open Ast_iterator in
  let rec it =
    {
      default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match resolve env txt with
              | Some callee -> add_edge env callee loc
              | None -> ())
          | Pexp_record (fields, base) ->
              Option.iter (self.expr self) base;
              List.iter
                (fun (({ txt; _ } : Longident.t Location.loc), v) ->
                  match last_seg txt with
                  | None -> self.expr self v
                  | Some fname ->
                      if is_fun_literal v then (
                        match env.cur with
                        | Some enclosing ->
                            let pseudo = enclosing.d_name ^ "." ^ fname in
                            let d =
                              match Hashtbl.find_opt env.g.defs pseudo with
                              | Some d -> d
                              | None ->
                                  let d =
                                    {
                                      d_name = pseudo;
                                      d_site =
                                        Ast_load.site ~path:env.path
                                          v.pexp_loc;
                                      d_edges = [];
                                    }
                                  in
                                  Hashtbl.replace env.g.defs pseudo d;
                                  env.g.order <- pseudo :: env.g.order;
                                  d
                            in
                            register_impl env fname pseudo;
                            (* construction edge: the closure is born here *)
                            add_edge env pseudo v.pexp_loc;
                            let saved = env.cur in
                            env.cur <- Some d;
                            self.expr self v;
                            env.cur <- saved
                        | None -> self.expr self v)
                      else (
                        (match v.pexp_desc with
                        | Pexp_ident { txt = vi; _ } -> (
                            match resolve env vi with
                            | Some k when Hashtbl.mem env.g.defs k ->
                                register_impl env fname k
                            | _ -> ())
                        | _ -> ());
                        self.expr self v))
                fields
          | Pexp_field (inner, { txt; _ }) ->
              self.expr self inner;
              Option.iter
                (fun f -> add_edge env ("field:" ^ f) e.pexp_loc)
                (last_seg txt)
          | Pexp_setfield (inner, { txt; _ }, v) ->
              self.expr self inner;
              Option.iter
                (fun f -> add_edge env ("field:" ^ f) e.pexp_loc)
                (last_seg txt);
              self.expr self v
          | Pexp_apply
              (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) -> (
              let callee = resolve env txt in
              self.expr self f;
              match callee with
              | Some k when List.mem k env.lock_helpers ->
                  List.iter
                    (fun (_, (arg : expression)) ->
                      if is_fun_literal arg then (
                        let saved = env.lock in
                        env.lock <- Some k;
                        self.expr self arg;
                        env.lock <- saved)
                      else self.expr self arg)
                    args
              | _ -> List.iter (fun (_, arg) -> self.expr self arg) args)
          | _ -> default_iterator.expr self e)
      ;
      structure_item =
        (fun self item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match pat_def_name vb.pvb_pat with
                  | Some n ->
                      let saved = env.cur in
                      env.cur <- Some (declare env n vb.pvb_pat.ppat_loc);
                      self.expr self vb.pvb_expr;
                      env.cur <- saved
                  | None ->
                      let saved = env.cur in
                      env.cur <-
                        Some (declare env "$toplevel" vb.pvb_pat.ppat_loc);
                      self.expr self vb.pvb_expr;
                      env.cur <- saved)
                vbs
          | Pstr_eval (e, _) ->
              let saved = env.cur in
              env.cur <- Some (declare env "$toplevel" e.pexp_loc);
              self.expr self e;
              env.cur <- saved
          | Pstr_module mb -> walk_module self mb
          | Pstr_recmodule mbs -> List.iter (walk_module self) mbs
          | Pstr_open od -> (
              match od.popen_expr.pmod_desc with
              | Pmod_ident { txt; _ } -> (
                  match flatten txt with
                  | Some segs -> env.opens <- segs :: env.opens
                  | None -> ())
              | _ -> ())
          | _ -> default_iterator.structure_item self item)
      ;
    }
  and walk_module self mb =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> (
        match unwrap_mod mb.pmb_expr with
        | `Structure items ->
            let saved = env.mods in
            env.mods <- env.mods @ [ name ];
            List.iter (self.structure_item self) items;
            env.mods <- saved
        | `Alias (Some segs) ->
            env.aliases <- (name, apply_alias env segs) :: env.aliases
        | `Alias None | `Other -> ())
  in
  it

let build ~lock_helpers (sources : Ast_load.source list) =
  let g =
    {
      defs = Hashtbl.create 256;
      order = [];
      field_impls = Hashtbl.create 32;
      mod_dirs = Hashtbl.create 32;
    }
  in
  List.iter
    (fun (s : Ast_load.source) ->
      let dir, m = Ast_load.module_key s.Ast_load.src_path in
      let dirs = Option.value ~default:[] (Hashtbl.find_opt g.mod_dirs m) in
      if not (List.mem dir dirs) then
        Hashtbl.replace g.mod_dirs m (dir :: dirs))
    sources;
  let env_of (s : Ast_load.source) =
    let dir, m = Ast_load.module_key s.Ast_load.src_path in
    {
      g;
      dir;
      path = s.Ast_load.src_path;
      mods = [ m ];
      aliases = [];
      opens = [];
      lock_helpers;
      cur = None;
      lock = None;
    }
  in
  (* Pass A: names. *)
  List.iter
    (fun s -> collect_items (env_of s) s.Ast_load.src_str)
    sources;
  (* Pass B: edges. *)
  List.iter
    (fun s ->
      let env = env_of s in
      let it = iter_of env in
      List.iter (it.Ast_iterator.structure_item it) s.Ast_load.src_str)
    sources;
  g

(* ------------------------------------------------------------------ *)
(* Reachability *)

(* node -> Some (parent node, site of the edge) | None for roots *)
type reach = (string, (string * string) option) Hashtbl.t

let reach t ~roots : reach =
  let seen : reach = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem seen r) then (
        Hashtbl.replace seen r None;
        Queue.add r q))
    roots;
  while not (Queue.is_empty q) do
    let n = Queue.pop q in
    match find_def t n with
    | None -> ()
    | Some d ->
        List.iter
          (fun e ->
            if not (Hashtbl.mem seen e.e_callee) then (
              Hashtbl.replace seen e.e_callee (Some (n, e.e_site));
              Queue.add e.e_callee q))
          (edges d)
  done;
  seen

let reached (r : reach) node = Hashtbl.mem r node

let chain (r : reach) node =
  let rec up acc n =
    match Hashtbl.find_opt r n with
    | Some (Some (parent, _)) -> up (n :: acc) parent
    | _ -> n :: acc
  in
  String.concat " -> " (up [] node)

let reaches t ~from target =
  let r = reach t ~roots:[ from ] in
  reached r target
