(* Header-coverage pass.

   Cross-checks three sets per specification:
   - the headers its class term *recognizes* (Base nodes, syntactic),
   - the headers its machines *produce* (bounded execution, {!Exec}),
   - the headers its registration *declares*, each with a wire direction.

   The direction says which of recognized/produced is obligatory:

   [Client_in]     injected from outside (clients, boot probes); must be
                   recognized, production is the environment's business.
   [Internal]      member-to-member traffic; must be recognized AND
                   producible — a producible-but-unhandled header is a
                   dead letter, a handled-but-unproducible one is a dead
                   handler (a ghost: code that can never run).
   [Timer]         delayed self-sends; must be recognized, production is
                   optional (many timers only arm on rare paths, e.g. the
                   Paxos leader's backoff only after a preemption).
   [External_out]  notifications leaving the member set (learners,
                   subscribers); must be produced, never handled.

   Undeclared traffic in either direction is always a finding: the
   declaration table is the spec of the spec, and silence is how headers
   rot. *)

type direction = Client_in | Internal | Timer | External_out

type decl = { hdr : string; dir : direction }

let direction_string = function
  | Client_in -> "client-input"
  | Internal -> "internal"
  | Timer -> "timer"
  | External_out -> "external-output"

let pass ~target ~recognized ~produced decls =
  let declared h = List.exists (fun d -> d.hdr = h) decls in
  let diag = Diag.v ~pass:"coverage" ~target in
  let per_decl d =
    let r = List.mem d.hdr recognized and p = List.mem d.hdr produced in
    match d.dir with
    | Client_in ->
        if not r then
          [
            diag ~code:"unhandled-input" ~site:d.hdr
              "client input %S is declared but no class recognizes it"
              d.hdr;
          ]
        else []
    | Internal ->
        (if (not r) && p then
           [
             diag ~code:"dead-letter" ~site:d.hdr
               "internal header %S is sent but never handled — a dead \
                letter the network silently swallows"
               d.hdr;
           ]
         else if not r then
           [
             diag ~code:"unhandled-input" ~site:d.hdr
               "internal header %S is declared but no class recognizes it"
               d.hdr;
           ]
         else [])
        @
        if r && not p then
          [
            diag ~code:"dead-handler" ~site:d.hdr
              "internal header %S has a handler but no execution can \
               produce it — ghost code"
              d.hdr;
          ]
        else []
    | Timer ->
        if not r then
          [
            diag ~code:"unhandled-input" ~site:d.hdr
              "timer header %S is declared but no class recognizes it"
              d.hdr;
          ]
        else []
    | External_out ->
        if not p then
          [
            diag ~code:"never-emitted" ~site:d.hdr
              "external output %S is declared but never produced"
              d.hdr;
          ]
        else []
  in
  let undeclared =
    List.filter_map
      (fun h ->
        if declared h then None
        else
          Some
            (diag ~code:"undeclared-header" ~site:h
               "header %S is recognized by the spec but missing from its \
                wire declaration"
               h))
      recognized
    @ List.filter_map
        (fun h ->
          if declared h then None
          else
            Some
              (diag ~code:"undeclared-header" ~site:h
                 "header %S is produced by the spec but missing from its \
                  wire declaration"
                 h))
        produced
  in
  List.concat_map per_decl decls @ undeclared
