(* Scenario-determinism pass.

   The model checker's soundness rests on scenarios being deterministic
   functions of (seed, schedule): replay and DFS both re-run [make] from
   scratch and trust that identical decisions reproduce identical states.
   A scenario that consults wall-clock time, ambient randomness, or
   leftover global state breaks that contract silently — counterexample
   traces stop replaying long after the cause is forgotten.

   The pass runs every registered Check scenario twice under the default
   deterministic schedule (an empty forced prefix: the engine's natural
   event order) and compares outcome fingerprints and event counts. It
   also surfaces any monitor violation under that default schedule — the
   lint gate must be able to assume the fault-free, reordering-free run
   of every scenario is clean. *)

let pass ~target (s : Check.Scenario.t) =
  let diag = Diag.v ~pass:"determinism" ~target in
  let run () = Check.Scenario.run s ~seed:7 ~sched:(Check.Sched.fixed [||]) in
  let a = run () in
  let b = run () in
  let violation =
    match a.Check.Scenario.violation with
    | Some v ->
        [
          diag ~code:"scenario-violation" ~site:v.Check.Scenario.monitor
            "monitor %S fires under the default schedule: %s"
            v.Check.Scenario.monitor v.Check.Scenario.detail;
        ]
    | None -> []
  in
  let nondet =
    if
      a.Check.Scenario.fingerprint <> b.Check.Scenario.fingerprint
      || a.Check.Scenario.events <> b.Check.Scenario.events
    then
      [
        diag ~code:"nondeterministic-scenario"
          "two identical runs diverged (fingerprint %d vs %d, %d vs %d \
           events) — replay and DFS cannot be trusted on this scenario"
          a.Check.Scenario.fingerprint b.Check.Scenario.fingerprint
          a.Check.Scenario.events b.Check.Scenario.events;
      ]
    else []
  in
  violation @ nondet
