(* Structured lint diagnostics.

   Every pass reports findings through this one type so the CLI can render
   them uniformly (human or JSON) and the CI gate can count them without
   parsing prose. [code] is the stable machine-readable identifier tests
   and fixtures key on; [message] is for humans and may change freely. *)

type severity = Error | Warning

type t = {
  pass : string;  (* which analysis produced this *)
  target : string;  (* spec / scenario / table under analysis *)
  severity : severity;
  code : string;  (* stable finding identifier, e.g. "dead-letter" *)
  site : string option;  (* node path, header, or file:line *)
  message : string;
}

let v ?site ?(severity = Error) ~pass ~target ~code fmt =
  Format.kasprintf
    (fun message -> { pass; target; severity; code; site; message })
    fmt

let severity_string = function Error -> "error" | Warning -> "warning"

let is_error d = d.severity = Error

let pp ppf d =
  Format.fprintf ppf "%s: %s [%s/%s]%a: %s" d.target
    (severity_string d.severity)
    d.pass d.code
    (fun ppf -> function
      | None -> ()
      | Some s -> Format.fprintf ppf " at %s" s)
    d.site d.message

(* Hand-rolled JSON: the repo deliberately carries no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"target\":\"%s\",\"pass\":\"%s\",\"code\":\"%s\",\"severity\":\"%s\",%s\"message\":\"%s\"}"
    (json_escape d.target) (json_escape d.pass) (json_escape d.code)
    (severity_string d.severity)
    (match d.site with
    | None -> ""
    | Some s -> Printf.sprintf "\"site\":\"%s\"," (json_escape s))
    (json_escape d.message)
