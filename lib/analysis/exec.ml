(* Bounded concrete execution of a specification's compiled GPM machines.

   The header-coverage and send-graph passes need the set of headers a
   deployed system can actually produce, which no syntactic walk can give:
   emissions happen inside opaque handler closures. So the analyses run
   the real thing — one fused machine ({!Gpm.Opt}) per location, a FIFO
   queue of directed messages, driven from a registered probe workload —
   and observe every emission.

   Delayed sends (the timer encoding) are *recorded* but not *delivered*:
   under reliable FIFO delivery retransmission timers only re-send what
   already arrived, and delivering them would keep the loop from
   quiescing. This mirrors the closed-loop harness of test/test_specs.ml,
   which validates the same convention against the protocol suites. *)

module Message = Loe.Message

type result = {
  produced : string list;  (* every header emitted by any machine *)
  edges : (Message.loc * string * Message.loc) list;
      (* (sender, header, destination) — the raw send graph *)
  external_out : (string * Message.loc) list;
      (* headers that left the member set, with their destination *)
  steps : int;
  quiesced : bool;  (* the queue drained within the step budget *)
}

let run ?(max_steps = 50_000) (spec : Loe.Spec.t) ~probes =
  let machines =
    List.map (fun l -> (l, Gpm.Opt.compile l spec.Loe.Spec.main)) spec.Loe.Spec.locs
  in
  let produced : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let edges : (Message.loc * string * Message.loc, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let external_out : (string * Message.loc, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let q : (Message.loc * Message.t) Queue.t = Queue.create () in
  List.iter (fun p -> Queue.push p q) probes;
  let steps = ref 0 in
  while (not (Queue.is_empty q)) && !steps < max_steps do
    incr steps;
    let dst, msg = Queue.pop q in
    match List.assoc_opt dst machines with
    | None -> ()  (* probe aimed outside the member set: drop *)
    | Some machine ->
        let outs = Gpm.Opt.step machine msg in
        List.iter
          (fun (d : Message.directed) ->
            let hdr = d.Message.msg.Message.hdr in
            Hashtbl.replace produced hdr ();
            Hashtbl.replace edges (dst, hdr, d.Message.dst) ();
            if List.mem_assoc d.Message.dst machines then begin
              if d.Message.delay <= 0.0 then
                Queue.push (d.Message.dst, d.Message.msg) q
            end
            else Hashtbl.replace external_out (hdr, d.Message.dst) ())
          outs
  done;
  {
    produced =
      List.sort_uniq String.compare
        (Hashtbl.fold (fun h () acc -> h :: acc) produced []);
    edges = Hashtbl.fold (fun e () acc -> e :: acc) edges [];
    external_out = Hashtbl.fold (fun e () acc -> e :: acc) external_out [];
    steps = !steps;
    quiesced = Queue.is_empty q;
  }

(* A machine must be quiescent on input it does not recognize: compile a
   fresh machine per location and feed it a message with a header no
   specification declares. Locations that emit anyway are reported — a
   spec that produces output without input escapes every schedule-based
   analysis. *)
let spontaneous (spec : Loe.Spec.t) =
  let dummy =
    Message.make (Message.declare "analysis-unrecognized-probe") ()
  in
  List.filter
    (fun l ->
      let m = Gpm.Opt.compile l spec.Loe.Spec.main in
      Gpm.Opt.step m dummy <> [])
    spec.Loe.Spec.locs
