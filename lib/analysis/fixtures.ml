(* Deliberately defective fixture specifications.

   One tiny spec per failure mode, each designed so exactly the targeted
   pass fires. They serve two masters: the CLI's [selftest] subcommand
   (prove every pass can actually catch what it claims to catch — a lint
   whose checks never fire is indistinguishable from a lint with no
   checks) and the unit/property tests in test/test_analysis.ml. *)

module Message = Loe.Message
module Cls = Loe.Cls

type t = {
  name : string;
  expect : string list;  (* diagnostic codes that must fire *)
  run : unit -> Diag.t list;
}

(* Shared scaffolding: every fixture is a two-member system driven by a
   single client input [go] at location 0. *)
let case ~name ?max_steps build =
  let run = Registry.run_spec_case ?max_steps ~name build in
  fun expect -> { name; expect; run }

let go_probe go = [ (0, Message.make go ()) ]

(* [orphan] is sent but no class recognizes it. *)
let dead_letter =
  (case ~name:"fix-dead-letter" (fun () ->
       let go = Message.declare "go" and orphan = Message.declare "orphan" in
       let main = Cls.map (fun () -> Message.send orphan 1 ()) (Cls.base go) in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-dead-letter" ~locs:[ 0; 1 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "orphan"; dir = Internal };
             ];
         probes = go_probe go;
         observations = [];
       }))
    [ "dead-letter" ]

(* [ghost] has a handler but nothing can ever produce it. *)
let dead_handler =
  (case ~name:"fix-dead-handler" (fun () ->
       let go = Message.declare "go"
       and ghost = Message.declare "ghost"
       and out = Message.declare "out" in
       let main =
         Cls.( ||| )
           (Cls.map (fun () -> Message.send out 99 ()) (Cls.base go))
           (Cls.map (fun () -> Message.send out 99 ()) (Cls.base ghost))
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-dead-handler" ~locs:[ 0; 1 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "ghost"; dir = Internal };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "dead-handler" ]

(* Builds the dead-handler fixture's pieces for external harnesses: the
   qcheck property in test/test_analysis.ml re-runs this spec under a
   thousand random Check schedules and asserts the flagged header is
   never delivered (coverage findings admit no false positives). *)
let dead_handler_spec () =
  let go = Message.declare "go"
  and ghost = Message.declare "ghost"
  and out = Message.declare "out" in
  let main =
    Cls.( ||| )
      (Cls.map (fun () -> Message.send out 99 ()) (Cls.base go))
      (Cls.map (fun () -> Message.send out 99 ()) (Cls.base ghost))
  in
  (Loe.Spec.v ~name:"fix-dead-handler" ~locs:[ 0; 1 ] main, go, ghost)

(* Both Par branches under a State fire on the same header. *)
let par_overlap =
  (case ~name:"fix-par-overlap" (fun () ->
       let go = Message.declare "go" and out = Message.declare "out" in
       let inputs =
         Cls.( ||| )
           (Cls.map (fun () -> 1) (Cls.base go))
           (Cls.map (fun () -> 2) (Cls.base go))
       in
       let tally =
         Cls.state "Tally" ~init:(fun _ -> 0) ~upd:(fun _ v s -> s + v) inputs
       in
       let main =
         Cls.o2 (fun _ _ s -> [ Message.send out 99 s ]) inputs tally
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-par-overlap" ~locs:[ 0 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "par-overlap" ]

(* A [Once] armed on a timer header that is never armed. *)
let once_dead =
  (case ~name:"fix-once-dead" (fun () ->
       let go = Message.declare "go"
       and never = Message.declare "never-tick"
       and out = Message.declare "out" in
       let main =
         Cls.( ||| )
           (Cls.map (fun () -> Message.send out 99 0) (Cls.base go))
           (Cls.once
              (Cls.map (fun () -> Message.send out 99 1) (Cls.base never)))
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-once-dead" ~locs:[ 0 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "never-tick"; dir = Timer };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "once-never-fires" ]

(* A [Delegate] whose trigger can never fire: no children ever spawn. *)
let delegate_dead =
  (case ~name:"fix-delegate-dead" (fun () ->
       let go = Message.declare "go"
       and never = Message.declare "never-tick"
       and out = Message.declare "out" in
       let main =
         Cls.( ||| )
           (Cls.map (fun () -> Message.send out 99 0) (Cls.base go))
           (Cls.delegate "worker"
              (Cls.map (fun () -> ()) (Cls.base never))
              (fun _ () ->
                Cls.map (fun () -> Message.send out 99 1) (Cls.base go)))
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-delegate-dead" ~locs:[ 0 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "never-tick"; dir = Timer };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "delegate-never-spawns" ]

(* The declared observation point never receives anything. *)
let unreachable =
  (case ~name:"fix-unreachable" (fun () ->
       let go = Message.declare "go" and pong = Message.declare "pong" in
       let main =
         Cls.( ||| )
           (Cls.map (fun () -> Message.send pong 1 ()) (Cls.base go))
           (Cls.filter
              (fun _ -> false)
              (Cls.map (fun () -> Message.send pong 1 ()) (Cls.base pong)))
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-unreachable" ~locs:[ 0; 1 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "pong"; dir = Internal };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "unreachable-observation" ]

(* A handler with a hidden invocation counter. *)
let impure =
  (case ~name:"fix-impure" (fun () ->
       let go = Message.declare "go" and out = Message.declare "out" in
       let n = ref 0 in
       let main =
         Cls.map
           (fun () ->
             incr n;
             Message.send out 99 !n)
           (Cls.base go)
       in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-impure" ~locs:[ 0 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "impure-handler" ]

(* A [State]-rooted pipeline emits on events nobody recognizes. *)
let spontaneous =
  (case ~name:"fix-spontaneous" (fun () ->
       let go = Message.declare "go" and out = Message.declare "out" in
       let latest =
         Cls.state "Latest"
           ~init:(fun _ -> 0)
           ~upd:(fun _ () s -> s + 1)
           (Cls.base go)
       in
       let main = Cls.map (fun s -> Message.send out 99 s) latest in
       {
         Registry.spec = Loe.Spec.v ~name:"fix-spontaneous" ~locs:[ 0 ] main;
         decls =
           Coverage.
             [
               { hdr = "go"; dir = Client_in };
               { hdr = "out"; dir = External_out };
             ];
         probes = go_probe go;
         observations = [ 99 ];
       }))
    [ "spontaneous-output" ]

(* A broken wire table: one constructor missing, one entry stale, one
   dead letter. *)
let broken_wire_table =
  {
    name = "fix-wire-table";
    expect = [ "missing-wire-entry"; "stale-wire-entry"; "no-handler" ];
    run =
      (fun () ->
        Wire_table.check ~target:"fix-wire-table"
          ~all_tags:[ "ping"; "pong" ]
          [
            {
              Wire_table.tag = "ping";
              producers = [ "client" ];
              handlers = [];
            };
            {
              Wire_table.tag = "zombie";
              producers = [ "primary" ];
              handlers = [ "backup" ];
            };
          ]);
  }

let all =
  [
    dead_letter;
    dead_handler;
    par_overlap;
    once_dead;
    delegate_dead;
    unreachable;
    impure;
    spontaneous;
    broken_wire_table;
  ]
