(* Implementation-lint orchestration: the Registry-equivalent for the
   impl passes. Spec targets (registry.ml) close over in-memory class
   terms; impl targets close over parsed source trees, so they are built
   per-invocation from the `--src` directories and each target is only
   emitted when its subject module is present (running `shadowdb_lint
   impl --src lib/durable` should not fail because the Loop sources are
   out of scope). Within a present module, a renamed entry point is a
   [missing-entry] finding, not a silent skip. *)

(* The with-lock helpers the call graph tags critical sections for. *)
let lock_helpers =
  [
    "Runtime.Live.locked";
    "Runtime.Loop.locked";
    "Conform.Online.locked";
    "Conform.Recorder.locked";
    "Shadowdb.System.Make.Registry.locked";
  ]

(* Reactor-blocking config for the Loop runtime. Each blessing names the
   one reason the call cannot stall the reactor (see DESIGN.md). *)
let loop_blocking : Impl_blocking.config =
  {
    entries = [ "Runtime.Loop.reactor_entry" ];
    blessed =
      [
        ( "Runtime.Loop.reactor",
          "Unix.select",
          "the reactor's single multiplexing wait; timeout comes from \
           the timer wheel" );
        ( "Runtime.Loop.reactor_entry",
          "Condition.wait",
          "pre-start parking; the lock is released while waiting" );
        ( "Runtime.Loop.mux_for",
          "Unix.connect",
          "one-time lazy loopback connect when a destination mux is \
           first created" );
        ( "Runtime.Loop.drain_wake",
          "Unix.read",
          "wake pipe is non-blocking; EAGAIN handled" );
        ( "Runtime.Loop.accept_conns",
          "Unix.accept",
          "listener sockets are non-blocking; EAGAIN handled" );
        ( "Runtime.Outbox.flush",
          "Unix.write",
          "sink sockets are non-blocking; EAGAIN yields `Partial`" );
        ( "Runtime.Frame.read_into",
          "Unix.read",
          "connection fds are non-blocking; EAGAIN yields `Data 0`" );
      ];
  }

let runtime_locks : Impl_locks.config =
  {
    helpers = lock_helpers;
    dispatchers =
      [ "Runtime.Loop.dispatch"; "Runtime.Loop.deliver"; "Runtime.Live.dispatch" ];
  }

let durable_ordering : Impl_durable.config =
  {
    file_module = "Durable.File";
    append_callers = [ "Durable.Manager.append" ];
    sync_field = "log_sync";
    require_wal = true;
  }

(* Run every applicable impl pass over the sources under [src_dirs].
   Returns Lint.report-shaped data; the sweep rides along so CI has one
   source-analysis gate. *)
let run ~src_dirs () =
  let sources, load_diags = Ast_load.load src_dirs in
  let g = Callgraph.build ~lock_helpers sources in
  let sweep =
    {
      Lint.target = "sources";
      kind = "sweep";
      findings = load_diags @ List.concat_map Sweep.scan_source sources;
    }
  in
  let reports = ref [ sweep ] in
  let add target kind findings =
    reports := { Lint.target; kind; findings } :: !reports
  in
  if Callgraph.module_present g "Runtime.Loop" then
    add "loop-reactor" "impl"
      (Impl_blocking.pass ~target:"loop-reactor" g loop_blocking);
  (* the lock pass is meaningful over any sources: raw-mutex is global *)
  add "lock-discipline" "impl"
    (Impl_locks.pass ~target:"lock-discipline" g runtime_locks);
  if Callgraph.module_present g durable_ordering.Impl_durable.file_module
  then begin
    let cfg =
      (* only demand the Manager-side ack check when Manager is in scope *)
      if Callgraph.module_present g "Durable.Manager" then durable_ordering
      else { durable_ordering with Impl_durable.append_callers = [] }
    in
    add "durable-ordering" "impl"
      (Impl_durable.pass ~target:"durable-ordering" g ~sources cfg)
  end;
  List.rev !reports
