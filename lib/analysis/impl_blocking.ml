(* Reactor-blocking pass.

   The Loop runtime (PR 8) is a single reactor thread: every node, peer
   and client shares one [Unix.select], so ANY blocking syscall reachable
   from handler dispatch stalls the whole deployment — timers, other
   nodes' handlers, accepts, everything. The convention so far was "keep
   fds non-blocking and never sleep on the reactor"; this pass makes it a
   checked invariant: BFS over the call graph from the reactor entry
   points, and every edge into a known-blocking primitive must be on the
   blessed list (caller x callee), each blessing carrying its
   justification (non-blocking fd with EAGAIN handling, or the one
   multiplexing wait itself).

   Entries that no longer resolve raise [missing-entry] — a renamed
   entry point must update the config, otherwise the pass would silently
   check nothing (anti-rot). *)

(* Primitives that can block the calling thread. [Condition.wait] is
   blocking but releases its mutex; the lock-discipline pass treats it
   specially, here it is simply blocking. *)
let blocking_calls =
  [
    "Unix.select";
    "Unix.read";
    "Unix.write";
    "Unix.write_substring";
    "Unix.single_write";
    "Unix.single_write_substring";
    "Unix.connect";
    "Unix.accept";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.recv";
    "Unix.send";
    "Unix.sendto";
    "Unix.recvfrom";
    "Unix.waitpid";
    "Unix.system";
    "Unix.fsync";
    "Thread.delay";
    "Thread.join";
    "Condition.wait";
  ]

let is_blocking callee = List.mem callee blocking_calls

type config = {
  entries : string list; (* dispatch roots, fully qualified *)
  blessed : (string * string * string) list; (* caller, callee, why *)
}

let pass ~target (g : Callgraph.t) (cfg : config) =
  let diag = Diag.v ~pass:"impl-blocking" ~target in
  let missing =
    List.filter (fun e -> Callgraph.find_def g e = None) cfg.entries
  in
  if missing <> [] then
    List.map
      (fun e ->
        diag ~code:"missing-entry"
          "configured reactor entry %s not found in the call graph — \
           update the impl-blocking config"
          e)
      missing
  else
    let r = Callgraph.reach g ~roots:cfg.entries in
    let blessed caller callee =
      List.exists (fun (c, k, _) -> c = caller && k = callee) cfg.blessed
    in
    let out = ref [] in
    List.iter
      (fun (d : Callgraph.def) ->
        if Callgraph.reached r d.Callgraph.d_name then
          List.iter
            (fun (e : Callgraph.edge) ->
              if
                is_blocking e.Callgraph.e_callee
                && not (blessed d.Callgraph.d_name e.Callgraph.e_callee)
              then
                out :=
                  diag ~code:"reactor-blocking" ~site:e.Callgraph.e_site
                    "blocking call %s reachable from reactor dispatch \
                     (%s -> %s)"
                    e.Callgraph.e_callee
                    (Callgraph.chain r d.Callgraph.d_name)
                    e.Callgraph.e_callee
                  :: !out)
            (Callgraph.edges d))
      (Callgraph.defs g);
    List.rev !out
