(* Durability-ordering pass.

   The file backend's crash-safety argument (PR 6) is ordering: a
   snapshot is written to a temp file, fsync'd, THEN renamed over the
   live name (so a crash never exposes a torn snapshot), and the rename
   itself is made durable by an fsync of the directory; the WAL ack path
   reaches [Unix.fsync] before any caller returns an ack. Those are
   conventions about call order inside [lib/durable/file.ml] — this pass
   checks them on the call graph:

   - [rename-before-fsync]: within a definition in the file-backend
     module, a [Unix.rename] edge with no earlier edge that reaches
     [Unix.fsync] (source order; the graph preserves it) — the
     torn-snapshot defect;
   - [rename-unsynced]: a [Unix.rename] with no later fsync-reaching
     edge — the rename itself could be lost by a directory-metadata
     crash;
   - [append-no-sync]: the WAL sync closure ([log_sync] field impl in
     the file-backend module) does not reach [Unix.fsync], or a
     configured append-side caller does not reach the [field:log_sync]
     node at all — either way an ack could precede durability;
   - [sync-swallowed]: a [try]/[match-exception] handler that covers a
     [Unix.fsync] and catches [Unix_error] (or everything) with a
     catch-all pattern — an fsync failure silently dropped is an ack
     for data that never reached disk. A narrowed errno set (or-pattern
     of specific errnos) is allowed; [Durable.File.fsync_dir] is the
     blessed narrow case, see its comment. *)

[@@@ocaml.warning "-4"]

open Parsetree

type config = {
  file_module : string; (* e.g. "Durable.File" *)
  append_callers : string list; (* ack-returning append entries *)
  sync_field : string; (* record field holding the sync closure *)
  require_wal : bool; (* demand a sync_field impl in the module *)
}

let pass ~target (g : Callgraph.t) ~(sources : Ast_load.source list)
    (cfg : config) =
  let diag = Diag.v ~pass:"impl-durable" ~target in
  let out = ref [] in
  let prefix = cfg.file_module ^ "." in
  let module_defs = Callgraph.defs_with_prefix g prefix in
  let reaches_fsync name = Callgraph.reaches g ~from:name "Unix.fsync" in
  let edge_reaches_fsync (e : Callgraph.edge) =
    e.Callgraph.e_callee = "Unix.fsync" || reaches_fsync e.Callgraph.e_callee
  in
  (* (a) fsync dominates rename, and rename is followed by a sync *)
  List.iter
    (fun (d : Callgraph.def) ->
      let es = Array.of_list (Callgraph.edges d) in
      Array.iteri
        (fun i (e : Callgraph.edge) ->
          if e.Callgraph.e_callee = "Unix.rename" then begin
            let before = Array.sub es 0 i in
            let after = Array.sub es (i + 1) (Array.length es - i - 1) in
            if not (Array.exists edge_reaches_fsync before) then
              out :=
                diag ~code:"rename-before-fsync" ~site:e.Callgraph.e_site
                  "%s renames into place without first syncing the data \
                   (torn snapshot on crash)"
                  d.Callgraph.d_name
                :: !out;
            if not (Array.exists edge_reaches_fsync after) then
              out :=
                diag ~code:"rename-unsynced" ~site:e.Callgraph.e_site
                  "%s does not sync the directory after rename — the \
                   rename itself can be lost on crash"
                  d.Callgraph.d_name
                :: !out
          end)
        es)
    module_defs;
  (* (b) append reaches a sync *)
  let sync_impls =
    List.filter
      (fun impl -> String.starts_with ~prefix impl)
      (Callgraph.impls g cfg.sync_field)
  in
  if cfg.require_wal && sync_impls = [] then
    out :=
      diag ~code:"append-no-sync"
        "no %s implementation registered in %s — the WAL cannot promise \
         durability"
        cfg.sync_field cfg.file_module
      :: !out;
  List.iter
    (fun impl ->
      if not (reaches_fsync impl) then
        let site =
          Option.map
            (fun (d : Callgraph.def) -> d.Callgraph.d_site)
            (Callgraph.find_def g impl)
        in
        out :=
          diag ~code:"append-no-sync" ?site
            "%s implementation %s never reaches Unix.fsync — acks would \
             not be durable"
            cfg.sync_field impl
          :: !out)
    sync_impls;
  List.iter
    (fun caller ->
      match Callgraph.find_def g caller with
      | None ->
          out :=
            diag ~code:"missing-entry"
              "configured append caller %s not found in the call graph — \
               update the impl-durable config"
              caller
            :: !out
      | Some d ->
          if
            not
              (Callgraph.reaches g ~from:caller
                 ("field:" ^ cfg.sync_field)
              || reaches_fsync caller)
          then
            out :=
              diag ~code:"append-no-sync" ~site:d.Callgraph.d_site
                "%s acks appends without reaching the %s sync point"
                caller cfg.sync_field
              :: !out)
    cfg.append_callers;
  (* (c) swallowed fsync errors: AST scan of the file-backend sources *)
  let mentions_fsync e =
    let found = ref false in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match Callgraph.flatten txt with
                | Some ([ "Unix"; "fsync" ] | [ "fsync" ]) -> found := true
                | _ -> ())
            | _ -> ());
            default_iterator.expr self e);
      }
    in
    it.expr it e;
    !found
  in
  let rec swallow_all p =
    (* catch-everything, or Unix_error with a wildcard errno *)
    match p.ppat_desc with
    | Ppat_any | Ppat_var _ -> true
    | Ppat_alias (p, _) | Ppat_constraint (p, _) -> swallow_all p
    | Ppat_or (a, b) -> swallow_all a || swallow_all b
    | Ppat_construct ({ txt; _ }, arg) -> (
        let is_unix_error =
          match Callgraph.flatten txt with
          | Some segs -> (
              match List.rev segs with
              | "Unix_error" :: _ -> true
              | _ -> false)
          | None -> false
        in
        if not is_unix_error then false
        else
          match arg with
          | None -> true
          | Some (_, ap) -> (
              match ap.ppat_desc with
              | Ppat_any | Ppat_var _ -> true
              | Ppat_tuple (errno :: _) -> (
                  match errno.ppat_desc with
                  | Ppat_any | Ppat_var _ -> true
                  | _ -> false (* specific errno(s): narrowed, allowed *))
              | _ -> false))
    | _ -> false
  in
  let check_cases ~path body cases =
    if mentions_fsync body then
      List.iter
        (fun c ->
          let p =
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p -> Some p
            | _ -> None
          in
          let p = match p with Some p -> Some p | None -> Some c.pc_lhs in
          match p with
          | Some p when swallow_all p ->
              out :=
                diag ~code:"sync-swallowed"
                  ~site:(Ast_load.site ~path p.ppat_loc)
                  "fsync failure swallowed by a catch-all handler — \
                   narrow to the unsupported-errno set or propagate"
                :: !out
          | _ -> ())
        cases
  in
  List.iter
    (fun (s : Ast_load.source) ->
      let dir, m = Ast_load.module_key s.Ast_load.src_path in
      if dir ^ "." ^ m = cfg.file_module then begin
        let path = s.Ast_load.src_path in
        let open Ast_iterator in
        let it =
          {
            default_iterator with
            expr =
              (fun self e ->
                (match e.pexp_desc with
                | Pexp_try (body, cases) -> check_cases ~path body cases
                | Pexp_match (scrut, cases) ->
                    let exc_cases =
                      List.filter
                        (fun c ->
                          match c.pc_lhs.ppat_desc with
                          | Ppat_exception _ -> true
                          | _ -> false)
                        cases
                    in
                    if exc_cases <> [] then
                      check_cases ~path scrut exc_cases
                | _ -> ());
                default_iterator.expr self e);
          }
        in
        List.iter (it.structure_item it) s.Ast_load.src_str
      end)
    sources;
  List.rev !out
