(* Deliberately defective sources proving each impl-pass code fires.

   Same contract as the spec fixtures (fixtures.ml): each fixture
   promises the codes it must fire, and [Lint.selftest] checks promised
   ⊆ fired. Sources are in-memory strings parsed with {!Ast_load} — they
   only need to parse, not typecheck, and the dune sandbox needs no
   source files, so these run inside `dune runtest` and the bin selftest
   rule unchanged. *)

let parse name src =
  match Ast_load.parse_string ~path:(Printf.sprintf "fixture/%s.ml" name) src with
  | Ok s -> Ok s
  | Error d -> Error [ d ]

let graph ?(lock_helpers = []) name src =
  Result.map
    (fun s -> (Callgraph.build ~lock_helpers [ s ], s))
    (parse name src)

let with_graph ?lock_helpers name src f =
  match graph ?lock_helpers name src with
  | Ok (g, s) -> f g s
  | Error ds -> ds

(* --- reactor-blocking ------------------------------------------------ *)

(* A reactor whose dispatch path hides a blocking Unix.read behind one
   level of indirection; only its select is blessed. *)
let bad_reactor_src =
  {|
let log_line msg = print_string msg

let fetch fd buf = Unix.read fd buf 0 4096

let dispatch fd input =
  let n = fetch fd (Bytes.create 16) in
  log_line input;
  ignore n

let reactor t =
  match Unix.select [ t ] [] [] 1.0 with
  | rds, _, _ -> List.iter (fun fd -> dispatch fd "frame") rds
|}

let bad_reactor () =
  with_graph "bad_reactor" bad_reactor_src (fun g _ ->
      Impl_blocking.pass ~target:"fixture" g
        {
          Impl_blocking.entries = [ "Fixture.Bad_reactor.reactor" ];
          blessed =
            [ ("Fixture.Bad_reactor.reactor", "Unix.select", "the mux wait") ];
        })

(* --- lock discipline ------------------------------------------------- *)

let raw_lock_src =
  {|
let stats t =
  Mutex.lock t;
  let s = 1 in
  Mutex.unlock t;
  s
|}

let raw_lock () =
  with_graph "raw_lock" raw_lock_src (fun g _ ->
      Impl_locks.pass ~target:"fixture" g
        { Impl_locks.helpers = []; dispatchers = [] })

let helper_prelude =
  {|
let with_lock t f =
  Mutex.lock t;
  Fun.protect ~finally:(fun () -> Mutex.unlock t) f
|}

let lock_blocking_src =
  helper_prelude
  ^ {|
let read_all fd buf = Unix.read fd buf 0 4096

let poll t fd buf = with_lock t (fun () -> read_all fd buf)
|}

let lock_blocking () =
  with_graph
    ~lock_helpers:[ "Fixture.Lock_blocking.with_lock" ]
    "lock_blocking" lock_blocking_src
    (fun g _ ->
      Impl_locks.pass ~target:"fixture" g
        {
          Impl_locks.helpers = [ "Fixture.Lock_blocking.with_lock" ];
          dispatchers = [];
        })

let lock_order_src =
  helper_prelude
  ^ {|
let push q v = with_lock q (fun () -> ignore v)

let transfer a b v = with_lock a (fun () -> push b v)
|}

let lock_order () =
  with_graph
    ~lock_helpers:[ "Fixture.Lock_order.with_lock" ]
    "lock_order" lock_order_src
    (fun g _ ->
      Impl_locks.pass ~target:"fixture" g
        {
          Impl_locks.helpers = [ "Fixture.Lock_order.with_lock" ];
          dispatchers = [];
        })

let lock_dispatch_src =
  helper_prelude
  ^ {|
let dispatch handler input = handler input

let deliver t handler payload = with_lock t (fun () -> dispatch handler payload)
|}

let lock_dispatch () =
  with_graph
    ~lock_helpers:[ "Fixture.Lock_dispatch.with_lock" ]
    "lock_dispatch" lock_dispatch_src
    (fun g _ ->
      Impl_locks.pass ~target:"fixture" g
        {
          Impl_locks.helpers = [ "Fixture.Lock_dispatch.with_lock" ];
          dispatchers = [ "Fixture.Lock_dispatch.dispatch" ];
        })

(* --- durability ordering --------------------------------------------- *)

(* Snapshot path that syncs the directory after rename but never the
   data file before it: the torn-snapshot defect. *)
let torn_snapshot_src =
  {|
let fsync_dir dir =
  let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  Unix.fsync fd;
  Unix.close fd

let snap_write dir s =
  let tmp = Filename.concat dir "snapshot.tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.write_substring fd s 0 (String.length s));
  Unix.close fd;
  Unix.rename tmp (Filename.concat dir "snapshot.bin");
  fsync_dir dir
|}

let durable_cfg ?(require_wal = false) file_module =
  {
    Impl_durable.file_module;
    append_callers = [];
    sync_field = "log_sync";
    require_wal;
  }

let torn_snapshot () =
  with_graph "torn_snapshot" torn_snapshot_src (fun g s ->
      Impl_durable.pass ~target:"fixture" g ~sources:[ s ]
        (durable_cfg "Fixture.Torn_snapshot"))

(* WAL backend whose sync closure is a no-op: acks without durability. *)
let noack_wal_src =
  {|
let create dir =
  let path = Filename.concat dir "wal.log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  {
    log_append = (fun s -> ignore (Unix.write_substring fd s 0 (String.length s)));
    log_sync = (fun () -> ());
    close = (fun () -> Unix.close fd);
  }
|}

let noack_wal () =
  with_graph "noack_wal" noack_wal_src (fun g s ->
      Impl_durable.pass ~target:"fixture" g ~sources:[ s ]
        (durable_cfg ~require_wal:true "Fixture.Noack_wal"))

let swallowed_sync_src =
  {|
let sync fd = try Unix.fsync fd with Unix.Unix_error _ -> ()
|}

let swallowed_sync () =
  with_graph "swallowed_sync" swallowed_sync_src (fun g s ->
      Impl_durable.pass ~target:"fixture" g ~sources:[ s ]
        (durable_cfg "Fixture.Swallowed_sync"))

(* --- sweep v2 -------------------------------------------------------- *)

(* Exactly one real banned site; the comment and string mentions must
   stay silent (they are what v1 used to flag). *)
let sweep_precision_src =
  {|
(* a comment may mention failwith, Option.get and even assert false *)
let banner = "failwith lives in a string literal here"

let boom () = failwith banner
|}

let sweep_precision () =
  match parse "sweep_precision" sweep_precision_src with
  | Ok s ->
      Sweep.scan_structure ~path:s.Ast_load.src_path s.Ast_load.src_str
  | Error ds -> ds

let all : Fixtures.t list =
  [
    { Fixtures.name = "impl-bad-reactor"; expect = [ "reactor-blocking" ]; run = bad_reactor };
    { Fixtures.name = "impl-raw-lock"; expect = [ "raw-mutex" ]; run = raw_lock };
    { Fixtures.name = "impl-lock-blocking"; expect = [ "blocking-under-lock" ]; run = lock_blocking };
    { Fixtures.name = "impl-lock-order"; expect = [ "lock-order" ]; run = lock_order };
    { Fixtures.name = "impl-dispatch-under-lock"; expect = [ "dispatch-under-lock" ]; run = lock_dispatch };
    { Fixtures.name = "impl-torn-snapshot"; expect = [ "rename-before-fsync" ]; run = torn_snapshot };
    { Fixtures.name = "impl-noack-wal"; expect = [ "append-no-sync" ]; run = noack_wal };
    { Fixtures.name = "impl-swallowed-sync"; expect = [ "sync-swallowed" ]; run = swallowed_sync };
    { Fixtures.name = "impl-sweep-precision"; expect = [ "failwith" ]; run = sweep_precision };
  ]
