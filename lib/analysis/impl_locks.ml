(* Lock-discipline pass.

   Both live runtimes guard shared state with one mutex per deployment
   and a [locked] helper: [Mutex.lock] then the critical section under
   [Fun.protect ~finally:unlock], so an exception cannot leave the lock
   held. OCaml mutexes are non-reentrant, so a nested acquisition is a
   self-deadlock, and anything slow inside a critical section stalls
   every thread that shares the lock. This pass checks four conventions:

   - [raw-mutex]: [Mutex.lock]/[Mutex.unlock] referenced outside a
     configured helper — ad-hoc pairs are exactly the exception-leaks-
     the-lock defect class;
   - [unprotected-lock]: a configured helper that does not route the
     unlock through [Fun.protect];
   - [blocking-under-lock]: a blocking call reachable from inside a
     critical section (a thunk passed to a helper). [Condition.wait] is
     exempt — it atomically releases the mutex while waiting, which is
     the one legitimate block-while-holding pattern;
   - [lock-order]: a helper (or raw [Mutex.lock]) reachable from inside
     a critical section — with non-reentrant mutexes any nested
     acquisition on the same deployment deadlocks, and acquiring a
     second lock under the first is how cross-deployment inversions
     start, so the discipline is simply "never acquire under a lock";
   - [dispatch-under-lock]: handler dispatch reachable from a critical
     section — user handlers run arbitrary protocol code and may send
     (hence lock) recursively. *)

type config = {
  helpers : string list; (* with-lock helpers, fully qualified *)
  dispatchers : string list; (* handler-dispatch functions *)
}

(* Blocking minus Condition.wait (see above). *)
let blocking_under_lock callee =
  callee <> "Condition.wait" && Impl_blocking.is_blocking callee

let pass ~target (g : Callgraph.t) (cfg : config) =
  let diag = Diag.v ~pass:"impl-locks" ~target in
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  let emit ~code ~site fmt =
    Format.kasprintf
      (fun msg ->
        if not (Hashtbl.mem seen (code, site)) then (
          Hashtbl.replace seen (code, site) ();
          out := diag ~code ~site "%s" msg :: !out))
      fmt
  in
  let all_defs = Callgraph.defs g in
  (* raw-mutex: lock/unlock outside the helpers *)
  List.iter
    (fun (d : Callgraph.def) ->
      if not (List.mem d.Callgraph.d_name cfg.helpers) then
        List.iter
          (fun (e : Callgraph.edge) ->
            match e.Callgraph.e_callee with
            | "Mutex.lock" | "Mutex.unlock" ->
                emit ~code:"raw-mutex" ~site:e.Callgraph.e_site
                  "raw %s in %s — route critical sections through a \
                   Fun.protect-based locked helper"
                  e.Callgraph.e_callee d.Callgraph.d_name
            | _ -> ())
          (Callgraph.edges d))
    all_defs;
  (* unprotected-lock: helper shape *)
  List.iter
    (fun h ->
      match Callgraph.find_def g h with
      | None -> ()
      | Some d ->
          let has callee =
            List.exists
              (fun (e : Callgraph.edge) -> e.Callgraph.e_callee = callee)
              (Callgraph.edges d)
          in
          if not (has "Mutex.lock" && has "Fun.protect" && has "Mutex.unlock")
          then
            emit ~code:"unprotected-lock" ~site:d.Callgraph.d_site
              "helper %s must take the lock and release it via \
               Fun.protect ~finally on all paths"
              h)
    cfg.helpers;
  (* under-lock reachability: seed from edges tagged by the graph as
     occurring inside a helper's critical-section thunk *)
  let classify ~site ~via callee =
    if blocking_under_lock callee then
      emit ~code:"blocking-under-lock" ~site
        "blocking call %s while holding the lock (%s)" callee via
    else if List.mem callee cfg.helpers || callee = "Mutex.lock" then
      emit ~code:"lock-order" ~site
        "lock acquisition %s while already holding a lock (%s) — \
         non-reentrant mutex, nested acquisition deadlocks or inverts"
        callee via
    else if List.mem callee cfg.dispatchers then
      emit ~code:"dispatch-under-lock" ~site
        "handler dispatch %s while holding the lock (%s)" callee via
  in
  let locked_seeds = ref [] in
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (e : Callgraph.edge) ->
          match e.Callgraph.e_lock with
          | Some helper ->
              classify ~site:e.Callgraph.e_site
                ~via:
                  (Printf.sprintf "in %s's critical section inside %s"
                     helper d.Callgraph.d_name)
                e.Callgraph.e_callee;
              locked_seeds := e.Callgraph.e_callee :: !locked_seeds
          | None -> ())
        (Callgraph.edges d))
    all_defs;
  (* transitively: anything the critical section calls *)
  let r = Callgraph.reach g ~roots:!locked_seeds in
  List.iter
    (fun (d : Callgraph.def) ->
      if Callgraph.reached r d.Callgraph.d_name then
        List.iter
          (fun (e : Callgraph.edge) ->
            classify ~site:e.Callgraph.e_site
              ~via:
                (Printf.sprintf "under lock via %s"
                   (Callgraph.chain r d.Callgraph.d_name))
              e.Callgraph.e_callee)
          (Callgraph.edges d))
    (Callgraph.defs g);
  List.rev !out
