(* Pass orchestration and reporting.

   One [report] per lint target; rendering is either human-readable text
   or a JSON array (consumed by the CI gate and archived as an artifact). *)

type report = { target : string; kind : string; findings : Diag.t list }

let run_target (t : Registry.target) =
  { target = t.Registry.name; kind = t.Registry.kind; findings = t.Registry.run () }

let run_all () = List.map run_target (Registry.all ())

let total_findings reports =
  List.fold_left (fun n r -> n + List.length r.findings) 0 reports

let pp_human ppf reports =
  List.iter
    (fun r ->
      match r.findings with
      | [] -> Format.fprintf ppf "%-24s %-8s clean@." r.target r.kind
      | fs ->
          Format.fprintf ppf "%-24s %-8s %d finding%s@." r.target r.kind
            (List.length fs)
            (if List.length fs = 1 then "" else "s");
          List.iter (fun d -> Format.fprintf ppf "  %a@." Diag.pp d) fs)
    reports;
  let n = total_findings reports in
  Format.fprintf ppf "%d target%s, %d finding%s@."
    (List.length reports)
    (if List.length reports = 1 then "" else "s")
    n
    (if n = 1 then "" else "s")

let to_json reports =
  let target_json r =
    Printf.sprintf "{\"target\":\"%s\",\"kind\":\"%s\",\"findings\":[%s]}"
      (Diag.json_escape r.target) (Diag.json_escape r.kind)
      (String.concat "," (List.map Diag.to_json r.findings))
  in
  Printf.sprintf "{\"targets\":[%s],\"total_findings\":%d}"
    (String.concat "," (List.map target_json reports))
    (total_findings reports)

(* Selftest: every fixture must fire every code it promises — and, to
   keep fixtures honest, must not fire codes from unrelated passes. *)
type selftest_outcome = {
  fixture : string;
  missing : string list;  (* promised codes that did not fire *)
  fired : string list;  (* codes that actually fired *)
}

let selftest () =
  List.map
    (fun (f : Fixtures.t) ->
      let fired =
        List.sort_uniq String.compare
          (List.map (fun (d : Diag.t) -> d.Diag.code) (f.Fixtures.run ()))
      in
      let missing =
        List.filter (fun c -> not (List.mem c fired)) f.Fixtures.expect
      in
      { fixture = f.Fixtures.name; missing; fired })
    (Fixtures.all @ Impl_fixtures.all)

let selftest_ok outcomes = List.for_all (fun o -> o.missing = []) outcomes
