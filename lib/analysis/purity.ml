(* Handler-purity sanitizer.

   The class combinators assume their opaque OCaml arguments are pure:
   the Fig. 5 logical characterizations (and the bisimulation between the
   tree and fused backends) quantify over *functions*, not effectful
   procedures. A handler that reads a global, counts invocations, or
   draws randomness silently invalidates every analysis built on the
   spec — including this library's own {!Exec}-based passes.

   The sanitizer is the dynamic companion to the static walks: it rewraps
   every handler so each invocation runs twice on the same input, and
   flags any site where the two results' structural fingerprints differ.
   The instrumented spec is then driven through the same bounded
   execution as the coverage pass, so exactly the handlers a real
   deployment exercises get sanitized.

   Physically shared nodes are instrumented once through an identity memo
   (the sharing idiom of {!Gpm.Opt.compile}): specs share sub-terms —
   Paxos-Synod's role inputs appear both as composition arguments and
   under [State] — and naive rewrapping would split one state cell into
   two, changing semantics. [Delegate] spawn functions are never invoked
   twice (spawning allocates children); instead the spawned child class
   is itself instrumented. *)

module Cls = Loe.Cls

(* Generous traversal bounds, as in Check.Fingerprint: protocol states
   are small and the default 10-node budget would collide everywhere. *)
let fingerprint v = try Hashtbl.hash_param 120 300 v with _ -> 0

let instrument ~report cls =
  let memo : (Obj.t * Obj.t) list ref = ref [] in
  let rec go : type a. string -> a Cls.t -> a Cls.t =
   fun parent c ->
    let key = Obj.repr c in
    match List.assq_opt key !memo with
    | Some n -> (Obj.obj n : a Cls.t)
    | None ->
        let path = parent ^ "/" ^ Cls.name_of c in
        let check : type r. string -> r -> r -> unit =
         fun site a b ->
          if fingerprint a <> fingerprint b then report (path ^ site)
        in
        let node : a Cls.t =
          match c with
          | Cls.Base _ | Cls.Const _ -> c
          | Cls.Map (f, sub) ->
              Cls.Map
                ( (fun x ->
                    let a = f x in
                    let b = f x in
                    check "" a b;
                    a),
                  go path sub )
          | Cls.Filter (p, sub) ->
              Cls.Filter
                ( (fun x ->
                    let a = p x in
                    let b = p x in
                    check "" a b;
                    a),
                  go path sub )
          | Cls.State { name; init; upd; on } ->
              Cls.State
                {
                  name;
                  init =
                    (fun l ->
                      let a = init l in
                      let b = init l in
                      check ":init" a b;
                      a);
                  upd =
                    (fun l v s ->
                      let a = upd l v s in
                      let b = upd l v s in
                      check ":upd" a b;
                      a);
                  on = go path on;
                }
          | Cls.Compose2 (f, a, b) ->
              Cls.Compose2
                ( (fun l x y ->
                    let r1 = f l x y in
                    let r2 = f l x y in
                    check "" r1 r2;
                    r1),
                  go path a,
                  go path b )
          | Cls.Compose3 (f, a, b, c3) ->
              Cls.Compose3
                ( (fun l x y z ->
                    let r1 = f l x y z in
                    let r2 = f l x y z in
                    check "" r1 r2;
                    r1),
                  go path a,
                  go path b,
                  go path c3 )
          | Cls.Par (a, b) -> Cls.Par (go path a, go path b)
          | Cls.Once sub -> Cls.Once (go path sub)
          | Cls.Delegate { name; trigger; spawn } ->
              Cls.Delegate
                {
                  name;
                  trigger = go path trigger;
                  spawn = (fun l v -> go path (spawn l v));
                }
        in
        memo := (key, Obj.repr node) :: !memo;
        node
  in
  go "" cls

let pass ~target ?(max_steps = 50_000) (spec : Loe.Spec.t) ~probes =
  let seen = Hashtbl.create 8 in
  let diags = ref [] in
  let report site =
    if not (Hashtbl.mem seen site) then begin
      Hashtbl.add seen site ();
      diags :=
        Diag.v ~pass:"purity" ~target ~code:"impure-handler" ~site
          "re-invoking this handler on identical input gave a different \
           result — hidden state or nondeterminism in an opaque closure"
        :: !diags
    end
  in
  let main = instrument ~report spec.Loe.Spec.main in
  ignore (Exec.run ~max_steps { spec with Loe.Spec.main } ~probes);
  List.rev !diags
