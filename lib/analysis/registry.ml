(* Lint-target registry.

   A target bundles everything the passes need about one analysable
   artifact: how to build it fresh (specs declare headers at construction
   time, so construction happens inside [run]), its wire declarations,
   a probe workload that exercises it, and where its outputs are
   observed. [run] executes every applicable pass and returns the
   combined findings.

   The probe workloads are chosen to drive each protocol through a full
   decision: Paxos gets leadership bootstraps at *all* members (forcing
   the preemption path, the only producer of the backoff timer) plus a
   client request; TwoThird gets a single proposal; the broadcast service
   gets boots, a subscription, and a broadcast. *)

module Message = Loe.Message

type target = { name : string; kind : string; run : unit -> Diag.t list }

type spec_case = {
  spec : Loe.Spec.t;
  decls : Coverage.decl list;
  probes : (Message.loc * Message.t) list;
  observations : Message.loc list;
}

let run_spec_case ?(max_steps = 50_000) ~name build () =
  let { spec; decls; probes; observations } = build () in
  let diag = Diag.v ~pass:"exec" ~target:name in
  let er = Exec.run ~max_steps spec ~probes in
  let recognized = Shape.recognized spec.Loe.Spec.main in
  let live =
    er.Exec.produced
    @ List.filter_map
        (fun (d : Coverage.decl) ->
          match d.Coverage.dir with
          | Coverage.Client_in -> Some d.Coverage.hdr
          | Coverage.Internal | Coverage.Timer | Coverage.External_out -> None)
        decls
  in
  let quiescence =
    if er.Exec.quiesced then []
    else
      [
        diag ~code:"no-quiescence"
          "the probe workload did not drain within %d steps — the spec \
           self-perpetuates under reliable delivery"
          max_steps;
      ]
  in
  let spontaneous =
    List.map
      (fun l ->
        diag ~code:"spontaneous-output" ~site:(string_of_int l)
          "the machine at location %d emits on a message no class \
           recognizes"
          l)
      (Exec.spontaneous spec)
  in
  quiescence @ spontaneous
  @ Coverage.pass ~target:name ~recognized ~produced:er.Exec.produced decls
  @ Single_valued.pass ~target:name ~live spec.Loe.Spec.main
  @ Send_graph.pass ~target:name
      ~inject_locs:(List.sort_uniq compare (List.map fst probes))
      ~observations er
  @ Purity.pass ~target:name ~max_steps spec ~probes

let spec_target ?max_steps name build =
  { name; kind = "spec"; run = run_spec_case ?max_steps ~name build }

(* ---- the four Table I specifications ---------------------------------- *)

let paxos_case () =
  let locs = [ 0; 1; 2 ] and learner = 99 in
  let spec, io = Consensus.Paxos_spec.make ~locs ~learner in
  let open Consensus.Paxos_spec in
  {
    spec;
    decls =
      Coverage.
        [
          { hdr = "p1a"; dir = Internal };
          { hdr = "p1b"; dir = Internal };
          { hdr = "p2a"; dir = Internal };
          { hdr = "p2b"; dir = Internal };
          { hdr = "propose"; dir = Internal };
          { hdr = "decision"; dir = Internal };
          { hdr = "request"; dir = Client_in };
          { hdr = "start"; dir = Client_in };
          { hdr = "ltick"; dir = Timer };
          { hdr = "perform"; dir = External_out };
        ];
    probes =
      (* Boot every member: dueling scouts force a preemption, so the
         backoff-timer emission path is exercised too. *)
      List.map (fun l -> (l, Message.make io.start ())) locs
      @ [ (0, Message.make io.request "lint-cmd") ];
    observations = [ learner ];
  }

let twothird_case () =
  let locs = [ 0; 1; 2; 3 ] and learner = 99 in
  let spec, io = Consensus.Twothird_spec.make ~locs ~learner in
  let open Consensus.Twothird_spec in
  {
    spec;
    decls =
      Coverage.
        [
          { hdr = "propose"; dir = Client_in };
          { hdr = "vote"; dir = Internal };
          { hdr = "tick"; dir = Timer };
          { hdr = "deliver"; dir = External_out };
        ];
    probes = [ (0, Message.make io.propose "lint-value") ];
    observations = [ learner ];
  }

let tob_case () =
  let locs = [ 0; 1; 2 ] and learner = 99 in
  let spec, io = Broadcast.Tob_spec.make ~locs ~subscribers:[ learner ] in
  let open Broadcast.Tob_spec in
  {
    spec;
    decls =
      Coverage.
        [
          { hdr = "tob-bcast"; dir = Client_in };
          { hdr = "tob-subscribe"; dir = Client_in };
          { hdr = "tob-start"; dir = Client_in };
          { hdr = "tob-core"; dir = Internal };
          { hdr = "tob-tick"; dir = Timer };
          { hdr = "tob-deliver"; dir = External_out };
        ];
    probes =
      List.map (fun l -> (l, Message.make io.start ())) locs
      @ [
          (0, Message.make io.subscribe 98);
          ( 0,
            Message.make io.bcast
              { Broadcast.Tob.origin = 98; id = 0; payload = "lint" } );
        ];
    observations = [ learner ];
  }

let clk_case () =
  let locs = [ 0; 1 ] and sink = 99 in
  (* Ping-pong incrementing Lamport clocks, escaping to an external sink
     after a few hops so the bounded execution quiesces. *)
  let handle slf v = (v + 1, if v >= 4 then sink else 1 - slf) in
  let clk = Clocks.Clk.make ~locs ~handle in
  {
    spec = clk.Clocks.Clk.spec;
    decls = Coverage.[ { hdr = "msg"; dir = Internal } ];
    probes = [ (0, Message.make clk.Clocks.Clk.msg (0, 0)) ];
    observations = [ sink ];
  }

(* ---- scenario and table targets --------------------------------------- *)

let scenario_target (s : Check.Scenario.t) =
  let name = "scenario:" ^ s.Check.Scenario.name in
  { name; kind = "scenario"; run = (fun () -> Determinism.pass ~target:name s) }

let wire_target =
  { name = "shadowdb-wire"; kind = "table"; run = Wire_table.pass }

(* Concrete bounded-domain sweeps over the sharding layer: the partition
   function / router decomposition invariants, and the 2PC codec and
   entry-id artifacts the coordinator's dedup relies on. *)
let shard_router_target =
  { name = "shard-router"; kind = "table"; run = Shard_checks.router_pass }

let coord_target =
  { name = "2pc-coordinator"; kind = "table"; run = Shard_checks.coord_pass }

let all () =
  [
    spec_target "paxos-synod" paxos_case;
    spec_target "twothird" twothird_case;
    spec_target ~max_steps:100_000 "broadcast-service" tob_case;
    spec_target "clk" clk_case;
    wire_target;
    shard_router_target;
    coord_target;
  ]
  @ List.map scenario_target Check.Scenarios.all

let find name = List.find_opt (fun t -> t.name = name) (all ())
let names () = List.map (fun t -> t.name) (all ())
