(* Send-graph pass.

   From the edges observed by {!Exec} — (sender, header, destination)
   triples — build the per-role static communication graph and check that
   every monitored observation point (learner, subscriber) is reachable
   from a client injection. An observation point no execution can reach
   means the spec's externally visible behaviour is vacuous: every
   safety property over it holds trivially, which is precisely the kind
   of "verified but meaningless" outcome a lint must catch.

   Cycles are computed as graph metadata (consensus protocols are full of
   legitimate request/reply cycles — p1a/p1b, p2a/p2b — so a cycle is
   never a finding by itself); the summary is surfaced so a reviewer can
   eyeball unexpected loops. *)

module Message = Loe.Message

type summary = {
  locs : Message.loc list;
  edge_count : int;
  headers : string list;
  in_cycle : Message.loc list;  (* locations on some directed cycle *)
}

let successors edges l =
  List.filter_map (fun (s, _, d) -> if s = l then Some d else None) edges

let reachable ~from edges =
  let seen = Hashtbl.create 16 in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      List.iter go (successors edges l)
    end
  in
  List.iter go from;
  fun l -> Hashtbl.mem seen l

let summarize (r : Exec.result) =
  let locs =
    List.sort_uniq compare
      (List.concat_map (fun (s, _, d) -> [ s; d ]) r.Exec.edges)
  in
  let in_cycle =
    List.filter
      (fun l ->
        (* l lies on a cycle iff it can reach itself through ≥1 edge. *)
        let from_succs = successors r.Exec.edges l in
        reachable ~from:from_succs r.Exec.edges l)
      locs
  in
  {
    locs;
    edge_count = List.length r.Exec.edges;
    headers =
      List.sort_uniq String.compare
        (List.map (fun (_, h, _) -> h) r.Exec.edges);
    in_cycle;
  }

let pp_summary ppf s =
  Format.fprintf ppf "%d locations, %d edges, %d headers, %d in cycles"
    (List.length s.locs) s.edge_count
    (List.length s.headers)
    (List.length s.in_cycle)

let pass ~target ~inject_locs ~observations (r : Exec.result) =
  let diag = Diag.v ~pass:"send-graph" ~target in
  let reach = reachable ~from:inject_locs r.Exec.edges in
  List.filter_map
    (fun obs ->
      if reach obs then None
      else
        Some
          (diag ~code:"unreachable-observation" ~site:(string_of_int obs)
             "observation point %d is unreachable from any client \
              injection — every property monitored there holds vacuously"
             obs))
    observations
