(* Syntactic walks over the event-class GADT.

   These are the purely static parts of the analyses: which base headers a
   class term recognizes, and when a sub-term can fire at all. Opaque
   handler closures are not inspected — passes that need their behaviour
   use {!Exec} (bounded concrete execution) or {!Purity} (re-invocation). *)

module Cls = Loe.Cls

let dedup l = List.sort_uniq String.compare l

(* Headers of the [Base] recognizers in a sub-term. *)
let recognized cls =
  let rec go : type a. a Cls.t -> string list = function
    | Cls.Base h -> [ Loe.Message.hdr_name h ]
    | Cls.Const _ -> []
    | Cls.Map (_, c) -> go c
    | Cls.Filter (_, c) -> go c
    | Cls.Once c -> go c
    | Cls.State { on; _ } -> go on
    | Cls.Compose2 (_, a, b) -> go a @ go b
    | Cls.Compose3 (_, a, b, c) -> go a @ go b @ go c
    | Cls.Par (a, b) -> go a @ go b
    | Cls.Delegate { trigger; _ } -> go trigger
  in
  dedup (go cls)

(* When can a sub-term produce an output?

   [Always] — at every event (constants, and [State], which re-emits its
   current value at every event per the Fig. 5 characterization).
   [On hs] — at most at events carrying one of the headers [hs]
   (conservative: a [Filter] may still suppress the output). *)
type firing = Always | On of string list

let union a b =
  match (a, b) with
  | Always, _ | _, Always -> Always
  | On x, On y -> On (dedup (x @ y))

(* Simultaneous composition fires only when every argument fires. *)
let inter a b =
  match (a, b) with
  | Always, f | f, Always -> f
  | On x, On y -> On (List.filter (fun h -> List.mem h y) x)

let rec firing : type a. a Cls.t -> firing = function
  | Cls.Base h -> On [ Loe.Message.hdr_name h ]
  | Cls.Const _ -> Always
  | Cls.State _ -> Always
  | Cls.Map (_, c) -> firing c
  | Cls.Filter (_, c) -> firing c
  | Cls.Once c -> firing c
  | Cls.Compose2 (_, a, b) -> inter (firing a) (firing b)
  | Cls.Compose3 (_, a, b, c) -> inter (inter (firing a) (firing b)) (firing c)
  | Cls.Par (a, b) -> union (firing a) (firing b)
  | Cls.Delegate { trigger; _ } -> firing trigger

let overlap a b =
  match (inter a b) with
  | Always -> [ "<every event>" ]
  | On hs -> hs

(* Fold a visitor over every node of the term, carrying a [/]-separated
   path of node names from the root. Children of a [Delegate]'s spawn
   function are invisible (they only exist at runtime); its trigger is
   walked. The visitor is a record field so it stays polymorphic across
   the GADT's node types. *)
type 'acc visitor = { visit : 'a. path:string -> 'acc -> 'a Cls.t -> 'acc }

let fold_nodes v acc cls =
  let rec go : type a. string -> 'acc -> a Cls.t -> 'acc =
   fun path acc c ->
    let path = path ^ "/" ^ Cls.name_of c in
    let acc = v.visit ~path acc c in
    match c with
    | Cls.Base _ | Cls.Const _ -> acc
    | Cls.Map (_, c') -> go path acc c'
    | Cls.Filter (_, c') -> go path acc c'
    | Cls.Once c' -> go path acc c'
    | Cls.State { on; _ } -> go path acc on
    | Cls.Compose2 (_, a, b) -> go path (go path acc a) b
    | Cls.Compose3 (_, a, b, c3) -> go path (go path (go path acc a) b) c3
    | Cls.Par (a, b) -> go path (go path acc a) b
    | Cls.Delegate { trigger; _ } -> go path acc trigger
  in
  go "" acc cls
