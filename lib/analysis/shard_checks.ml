(* Static checks over the sharding layer: the partition function, the
   router's decomposition invariants, and the 2PC wire artifacts (the
   prepare/decision codecs and the stable TOB entry identity scheme the
   coordinator's re-broadcast dedup depends on).

   Unlike the spec passes these run concrete bounded-domain sweeps over
   the real implementation — small enough to be instant, wide enough
   that any representation change that breaks an invariant (a partition
   function that escapes its range, a codec that no longer round-trips,
   an entry-id collision between phases) turns the lint gate red. *)

module Shard = Shadowdb.Shard
module Txn = Shadowdb.Txn
module Codec = Shadowdb.Codec
module Value = Storage.Value

(* A synthetic router over a two-table domain: every [Value.Int id]
   parameter is a key; sub-transactions keep their shard's parameters in
   request order. Exercises the same [route] paths the bank router uses
   without depending on the workload library. *)
let probe_router ~shards =
  let key id = { Shard.table = (if id mod 3 = 0 then "EVENTS" else "T"); id } in
  let keys_of (t : Txn.t) =
    List.filter_map
      (function Value.Int id -> Some (key id) | _ -> None)
      t.Txn.params [@warning "-4"]
  in
  let split (t : Txn.t) =
    let by_shard = Hashtbl.create 8 in
    List.iter
      (fun p ->
        (match p with
        | Value.Int id ->
            let s = Shard.shard_of_key ~shards (key id) in
            let prev = Option.value (Hashtbl.find_opt by_shard s) ~default:[] in
            Hashtbl.replace by_shard s (p :: prev)
        | _ -> ())
        [@warning "-4"])
      t.Txn.params;
    Hashtbl.fold
      (fun s ps acc -> (s, { t with Txn.params = List.rev ps }) :: acc)
      by_shard []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  ({ Shard.shards; keys_of; split }, key)

let probe_txn ~client ~seq ids : Txn.t =
  {
    Txn.client;
    seq;
    kind = "probe";
    params = List.map (fun id -> Value.Int id) ids;
  }

(* ---- shard-router ------------------------------------------------- *)

let router_pass () =
  let diag = Diag.v ~pass:"shard" ~target:"shard-router" in
  let findings = ref [] in
  let report d = findings := d :: !findings in
  let key_domain =
    List.concat_map
      (fun table -> List.init 64 (fun id -> { Shard.table; id }))
      [ "T"; "EVENTS"; "ACCOUNTS" ]
  in
  (* Partition range and determinism over the key domain, for every
     shard count the CLI accepts. *)
  List.iter
    (fun shards ->
      List.iter
        (fun k ->
          let s = Shard.shard_of_key ~shards k in
          if s < 0 || s >= shards then
            report
              (diag ~code:"shard-out-of-range"
                 ~site:(Printf.sprintf "%s/%d" k.Shard.table k.Shard.id)
                 "shard_of_key ~shards:%d returned %d" shards s);
          if Shard.shard_of_key ~shards k <> s then
            report
              (diag ~code:"shard-unstable"
                 ~site:(Printf.sprintf "%s/%d" k.Shard.table k.Shard.id)
                 "shard_of_key is not a function of its argument"))
        key_domain)
    [ 1; 2; 3; 4; 8 ];
  let shards = 4 in
  let router, key = probe_router ~shards in
  let txns =
    List.concat_map
      (fun client ->
        List.init 12 (fun seq ->
            let ids =
              List.init
                (1 + ((client + seq) mod 4))
                (fun j -> (client * 17) + (seq * 5) + (j * 13))
            in
            probe_txn ~client ~seq ids))
      [ 1; 2; 3 ]
  in
  List.iter
    (fun (txn : Txn.t) ->
      let pp_txn () =
        Printf.sprintf "txn(client=%d,seq=%d)" txn.Txn.client txn.Txn.seq
      in
      (* Decomposition invariants: a Local route means every key lives on
         that shard; a Distributed route partitions the keys — each
         sub-transaction's keys map to its assigned shard and the parts
         jointly cover the parent's key set. Sub-transactions must keep
         the parent's (client, seq) — the 2PC xid. *)
      (match Shard.route router txn with
      | Shard.Local s ->
          List.iter
            (fun k ->
              if
                router.Shard.keys_of txn <> []
                && Shard.shard_of_key ~shards k <> s
              then
                report
                  (diag ~code:"route-key-escape" ~site:(pp_txn ())
                     "Local %d but key %s/%d lives on shard %d" s
                     k.Shard.table k.Shard.id
                     (Shard.shard_of_key ~shards k)))
            (router.Shard.keys_of txn)
      | Shard.Distributed parts ->
          if List.length parts < 2 then
            report
              (diag ~code:"route-trivial-split" ~site:(pp_txn ())
                 "Distributed route with %d part(s)" (List.length parts));
          let covered = Hashtbl.create 16 in
          List.iter
            (fun ((s : int), (sub : Txn.t)) ->
              if
                sub.Txn.client <> txn.Txn.client || sub.Txn.seq <> txn.Txn.seq
              then
                report
                  (diag ~code:"split-loses-xid" ~site:(pp_txn ())
                     "sub-transaction for shard %d does not carry the \
                      parent's (client, seq)"
                     s);
              List.iter
                (fun k ->
                  Hashtbl.replace covered (k.Shard.table, k.Shard.id) ();
                  if Shard.shard_of_key ~shards k <> s then
                    report
                      (diag ~code:"split-key-escape" ~site:(pp_txn ())
                         "shard %d's sub-transaction touches key %s/%d \
                          owned by shard %d"
                         s k.Shard.table k.Shard.id
                         (Shard.shard_of_key ~shards k)))
                (router.Shard.keys_of sub))
            parts;
          List.iter
            (fun k ->
              if not (Hashtbl.mem covered (k.Shard.table, k.Shard.id)) then
                report
                  (diag ~code:"split-drops-key" ~site:(pp_txn ())
                     "key %s/%d of the parent appears in no sub-transaction"
                     k.Shard.table k.Shard.id))
            (router.Shard.keys_of txn));
      (* Routing must survive the wire: a decoded re-encoding of the
         transaction routes identically (replicas and the coordinator
         route independently from their own copies). *)
      match Codec.decode_txn (Codec.encode_txn txn) with
      | Error e ->
          report
            (diag ~code:"txn-codec-broken" ~site:(pp_txn ())
               "encode/decode round-trip failed: %s" e)
      | Ok txn' ->
          if Shard.route router txn' <> Shard.route router txn then
            report
              (diag ~code:"route-unstable-across-wire" ~site:(pp_txn ())
                 "decoded copy routes differently from the original"))
    txns;
  ignore key;
  List.rev !findings

(* ---- 2pc-coordinator ---------------------------------------------- *)

let coord_pass () =
  let diag = Diag.v ~pass:"shard" ~target:"2pc-coordinator" in
  let findings = ref [] in
  let report d = findings := d :: !findings in
  (* Prepare / decision records round-trip through their codecs. *)
  let txn = probe_txn ~client:7 ~seq:3 [ 1; 2; 42 ] in
  List.iter
    (fun shard ->
      let enc =
        Codec.encode_prepare ~coord:9 ~shard ~participants:[ 0; shard ]
          ~ptxn:txn
      in
      match Codec.decode_prepare enc with
      | Error e ->
          report
            (diag ~code:"prepare-codec-broken"
               ~site:(Printf.sprintf "shard=%d" shard)
               "decode_prepare failed: %s" e)
      | Ok (coord, shard', participants, ptxn) ->
          if
            coord <> 9 || shard' <> shard
            || participants <> [ 0; shard ]
            || ptxn <> txn
          then
            report
              (diag ~code:"prepare-codec-lossy"
                 ~site:(Printf.sprintf "shard=%d" shard)
                 "prepare record did not round-trip"))
    [ 0; 1; 5 ];
  List.iter
    (fun commit ->
      let enc = Codec.encode_decision ~shard:2 ~commit ~dtxn:txn in
      match Codec.decode_decision enc with
      | Error e ->
          report
            (diag ~code:"decision-codec-broken"
               ~site:(Printf.sprintf "commit=%b" commit)
               "decode_decision failed: %s" e)
      | Ok (shard, commit', dtxn) ->
          if shard <> 2 || commit' <> commit || dtxn <> txn then
            report
              (diag ~code:"decision-codec-lossy"
                 ~site:(Printf.sprintf "commit=%b" commit)
                 "decision record did not round-trip"))
    [ true; false ];
  (* The coordinator's vote message round-trips through the db codec. *)
  let vote =
    Shadowdb.Db_msg.Vote
      {
        shard = 1;
        participants = [ 0; 1 ];
        vote = { Txn.client = 7; seq = 3; outcome = Ok [] };
        vtxn = txn;
      }
  in
  (match Codec.decode_db_msg (Codec.encode_db_msg vote) with
  | Ok v when v = vote -> ()
  | Ok _ ->
      report (diag ~code:"vote-codec-lossy" "vote message did not round-trip")
  | Error e ->
      report (diag ~code:"vote-codec-broken" "decode_db_msg failed: %s" e));
  (* Entry-id injectivity: re-broadcast dedup at the TOB layer is only
     sound if no two distinct (phase, client, seq, shard) tuples share
     an id. Sweep a bounded domain. *)
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun phase ->
      List.iter
        (fun client ->
          List.iter
            (fun seq ->
              List.iter
                (fun shard ->
                  let id = Shard.entry_id ~phase ~client ~seq ~shard in
                  let tup = (phase, client, seq, shard) in
                  match Hashtbl.find_opt seen id with
                  | Some prior when prior <> tup ->
                      report
                        (diag ~code:"entry-id-collision"
                           ~site:(Printf.sprintf "id=%d" id)
                           "two distinct 2PC records share a TOB entry id")
                  | _ -> Hashtbl.replace seen id tup)
                [ 0; 1; 2; 3 ])
            (List.init 24 (fun s -> s)))
        (List.init 6 (fun c -> c)))
    [ `Prepare; `Decision ];
  List.rev !findings
