(* Single-valuedness / liveness pass over the class term.

   The paper's Fig. 5 characterization of [State] carries a side
   condition: the class being folded over must be single-valued — at most
   one output per event — or the fold order between simultaneous outputs
   is unspecified and the Nuprl proof obligation does not discharge. The
   repo's specs establish single-valuedness by construction, feeding
   [State] a [Par] of recognizers over *disjoint* headers; this pass
   checks exactly that construction:

   - a [Par] under a [State]'s input (or under a [Once]) whose branches
     can fire at the same event is flagged ([par-overlap]);
   - a [Once] or [Delegate] trigger that can never fire given the live
     header set (client inputs plus everything any execution produces)
     is flagged ([once-never-fires] / [delegate-never-spawns]) — such a
     nesting is dead protocol structure.

   Nested [State]s are not descended into from an enclosing check: each
   [State] node is visited in its own right, so every [Par] is judged
   exactly once, in the closest single-valued context. *)

module Cls = Loe.Cls

(* All Par nodes in [c], stopping at State boundaries (they are checked
   at their own visit). Returns (path, branch firings). *)
let shallow_pars root_path c =
  let rec go : type a. string -> (string * Shape.firing * Shape.firing) list
      -> a Cls.t -> (string * Shape.firing * Shape.firing) list =
   fun path acc c ->
    let path = path ^ "/" ^ Cls.name_of c in
    match c with
    | Cls.Base _ | Cls.Const _ | Cls.State _ -> acc
    | Cls.Map (_, c') -> go path acc c'
    | Cls.Filter (_, c') -> go path acc c'
    | Cls.Once c' -> go path acc c'
    | Cls.Compose2 (_, a, b) -> go path (go path acc a) b
    | Cls.Compose3 (_, a, b, c3) -> go path (go path (go path acc a) b) c3
    | Cls.Par (a, b) ->
        go path (go path ((path, Shape.firing a, Shape.firing b) :: acc) a) b
    | Cls.Delegate { trigger; _ } -> go path acc trigger
  in
  go root_path [] c

let pass ~target ~live cls =
  let diag = Diag.v ~pass:"single-valued" ~target in
  let overlap_diags ctx pars =
    List.concat_map
      (fun (path, fa, fb) ->
        match Shape.overlap fa fb with
        | [] -> []
        | hs ->
            [
              diag ~code:"par-overlap" ~site:path
                "Par branches under %s can both fire on %s — the fold \
                 over simultaneous outputs is order-dependent (Fig. 5 \
                 single-valuedness side condition)"
                ctx
                (String.concat ", " hs);
            ])
      pars
  in
  let alive = function
    | Shape.Always -> true
    | Shape.On hs -> List.exists (fun h -> List.mem h live) hs
  in
  let visit ~path acc (type a) (c : a Cls.t) =
    match c with
    | Cls.State { name; on; _ } ->
        acc @ overlap_diags (Printf.sprintf "State %S" name) (shallow_pars path on)
    | Cls.Once c' ->
        let acc = acc @ overlap_diags "Once" (shallow_pars path c') in
        if alive (Shape.firing c') then acc
        else
          acc
          @ [
              diag ~code:"once-never-fires" ~site:path
                "Once can never fire: no live header reaches its body \
                 (live = client inputs + every producible header)";
            ]
    | Cls.Delegate { name; trigger; _ } ->
        if alive (Shape.firing trigger) then acc
        else
          acc
          @ [
              diag ~code:"delegate-never-spawns" ~site:path
                "Delegate %S can never spawn %s: no live header reaches \
                 its trigger"
                name (Cls.child_name name);
            ]
    | Cls.Base _ | Cls.Const _ | Cls.Map _ | Cls.Filter _ | Cls.Compose2 _
    | Cls.Compose3 _ | Cls.Par _ ->
        acc
  in
  Shape.fold_nodes { Shape.visit } [] cls
