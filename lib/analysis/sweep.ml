(* Forbidden-pattern source sweep.

   The repo's failure-reporting convention (PR 2, extended by this one)
   is the structured [Sim.Invariant.Violation]: anonymous panics lose the
   layer and state needed to attribute a model-checking counterexample or
   a live-cluster crash. This sweep keeps the protocol layers honest by
   flagging the anonymous forms — [assert false], [failwith],
   [invalid_arg], partial stdlib accessors — plus unsafe [Obj] casts
   outside the two blessed sharing-memo sites.

   Textual, by design: it runs over source directories handed to the CLI
   (the build sandbox has no sources, so this pass is opt-in via
   [--sweep] and wired into CI, not into the runtest alias). Substring
   matching is crude but the patterns are chosen to not collide with the
   allowed idioms ([List.assoc_opt] does not contain ["List.assoc "]). *)

let patterns =
  [
    ("assert false", "assert-false");
    ("failwith", "failwith");
    ("invalid_arg", "invalid-arg");
    ("List.hd ", "list-hd");
    ("List.assoc ", "list-assoc");
    ("Option.get", "option-get");
    ("Obj.magic", "obj-magic");
  ]

(* Files whose flagged idioms are deliberate, with the reason on record:
   the two identity-memo modules (sound [Obj] use documented in place)
   and the invariant module itself (its comment names the patterns it
   replaces). *)
let allowlist = [ "gpm/opt.ml"; "analysis/purity.ml"; "analysis/sweep.ml"; "sim/invariant.ml" ]

let allowlisted path =
  List.exists
    (fun suffix ->
      let lp = String.length path and ls = String.length suffix in
      lp >= ls && String.sub path (lp - ls) ls = suffix)
    allowlist

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n > 0 && go 0

let scan_file path =
  if allowlisted path then []
  else
    let ic = open_in path in
    let diags = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         List.iter
           (fun (pat, code) ->
             if contains ~sub:pat line then
               diags :=
                 Diag.v ~pass:"sweep" ~target:"sources" ~code
                   ~site:(Printf.sprintf "%s:%d" path !lineno)
                   "anonymous failure / unsafe pattern %S — use \
                    Sim.Invariant (or justify in the sweep allowlist)"
                   pat
                 :: !diags)
           patterns
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !diags

let rec scan_dir dir =
  match Sys.is_directory dir with
  | exception Sys_error _ -> []
  | false -> if Filename.check_suffix dir ".ml" then scan_file dir else []
  | true ->
      Array.to_list (Sys.readdir dir)
      |> List.sort String.compare
      |> List.concat_map (fun f -> scan_dir (Filename.concat dir f))

let pass dirs = List.concat_map scan_dir dirs
