(* Forbidden-pattern source sweep, v2: AST-accurate.

   The repo's failure-reporting convention (PR 2, extended since) is the
   structured [Sim.Invariant.Violation]: anonymous panics lose the layer
   and state needed to attribute a model-checking counterexample or a
   live-cluster crash. This sweep keeps the protocol layers honest by
   flagging the anonymous forms — [assert false], [failwith],
   [invalid_arg], partial stdlib accessors — plus unsafe [Obj.magic].

   v1 matched substrings per line, which had two false classes: comments
   and string literals fired ("a comment may say failwith"), and partial
   matches escaped ("List.hd(x)" has no trailing space). v2 parses each
   file (see {!Ast_load}) and matches actual expression nodes: an
   [assert false] construct, or an identifier whose flattened longident
   (modulo a [Stdlib.] prefix) is one of the banned names. Codes and the
   suffix-match allowlist semantics are unchanged from v1, so existing
   consumers (CI gate, fixtures) keep working.

   Still opt-in via the CLI (the build sandbox has no sources): run over
   source dirs by `shadowdb_lint impl --src lib`, which folds this pass
   into the impl report. *)

[@@@ocaml.warning "-4"]

open Parsetree

(* Banned identifiers (flattened path, [Stdlib.] stripped) -> code. *)
let banned_idents =
  [
    ([ "failwith" ], "failwith");
    ([ "invalid_arg" ], "invalid-arg");
    ([ "List"; "hd" ], "list-hd");
    ([ "List"; "assoc" ], "list-assoc");
    ([ "Option"; "get" ], "option-get");
    ([ "Obj"; "magic" ], "obj-magic");
  ]

(* Files whose flagged idioms are deliberate, with the reason on record.
   Suffix match, as in v1. *)
let allowlist =
  [
    (* internal-invariant asserts on unreachable branches of balanced
       trees / parser automata — structured failure would need plumbing a
       layer identity into pure container code *)
    "storage/avl.ml";
    "storage/btree.ml";
    "storage/sql_parser.ml";
    "storage/sql_exec.ml";
    (* workload generators validate caller-supplied parameters with
       invalid_arg / Option.get at API boundaries, before any replica
       state exists to attribute a Violation to *)
    "workload/bank.ml";
    "workload/tpcc.ml";
    "workload/zipf.ml";
    (* harness plotting helpers index known-non-empty series *)
    "harness/ablations.ml";
    "harness/fig10.ml";
  ]

let allowlisted path =
  List.exists
    (fun suffix ->
      let lp = String.length path and ls = String.length suffix in
      lp >= ls && String.sub path (lp - ls) ls = suffix)
    allowlist

let rec flatten = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (l, s) -> Option.map (fun xs -> xs @ [ s ]) (flatten l)
  | Longident.Lapply _ -> None

let code_of_ident lid =
  match flatten lid with
  | None -> None
  | Some segs ->
      let segs =
        match segs with "Stdlib" :: rest when rest <> [] -> rest | _ -> segs
      in
      List.assoc_opt segs banned_idents

let is_false_construct e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

(* Scan a parsed structure; [path] is used only for sites. *)
let scan_structure ~path str =
  let diags = ref [] in
  let hit code name loc =
    diags :=
      Diag.v ~pass:"sweep" ~target:"sources" ~code
        ~site:(Ast_load.site ~path loc)
        "anonymous failure / unsafe pattern %S — use Sim.Invariant (or \
         justify in the sweep allowlist)"
        name
      :: !diags
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_assert inner when is_false_construct inner ->
              hit "assert-false" "assert false" e.pexp_loc
          | Pexp_ident { txt; loc } -> (
              match code_of_ident txt with
              | Some code ->
                  hit code
                    (String.concat "."
                       (Option.value ~default:[] (flatten txt)))
                    loc
              | None -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  List.iter (it.structure_item it) str;
  List.rev !diags

let scan_source (s : Ast_load.source) =
  if allowlisted s.Ast_load.src_path then []
  else scan_structure ~path:s.Ast_load.src_path s.Ast_load.src_str

(* v1-compatible entry point: sweep every .ml under [dirs]. Parse
   failures surface as parse-error diagnostics rather than silently
   shrinking coverage. *)
let pass dirs =
  let sources, load_diags = Ast_load.load dirs in
  load_diags @ List.concat_map scan_source sources
