(* ShadowDB wire-table pass.

   The replication layer (lib/shadowdb/system.ml) is an engine-level
   implementation, not a class term, so header coverage cannot be
   observed the way {!Exec} observes specifications. Instead the message
   flow is *declared* here — which role produces and which role handles
   each {!Shadowdb.Db_msg} constructor — and the pass keeps the
   declaration total and well-formed against the actual message type:
   every constructor tagged, no stale entries, no producer-less or
   handler-less traffic, no unknown roles. The table doubles as reviewed
   documentation of the replication protocol's communication structure
   (the paper's Fig. 3/4 arrows). *)

type entry = { tag : string; producers : string list; handlers : string list }

let roles =
  [ "client"; "primary"; "backup"; "spare"; "replica"; "coordinator" ]
(* [replica] is the symmetric SMR role; primary/backup/spare are PBR;
   [coordinator] is the sharded deployment's 2PC coordinator. *)

let table =
  [
    (* Clients retry against every replica, so any role may receive a
       transaction; non-primaries forward it. Sharded clients send
       cross-shard transactions to the 2PC coordinator instead. *)
    {
      tag = "client-txn";
      producers = [ "client" ];
      handlers = [ "primary"; "backup"; "replica"; "coordinator" ];
    };
    { tag = "forward"; producers = [ "primary" ]; handlers = [ "backup" ] };
    { tag = "ack"; producers = [ "backup" ]; handlers = [ "primary" ] };
    {
      tag = "reply";
      producers = [ "primary"; "replica"; "coordinator" ];
      handlers = [ "client" ];
    };
    {
      tag = "heartbeat";
      producers = [ "primary" ];
      handlers = [ "backup"; "spare" ];
    };
    (* Members of a proposed configuration exchange their last executed
       sequence numbers to elect the new primary. *)
    {
      tag = "elect";
      producers = [ "primary"; "backup"; "spare" ];
      handlers = [ "primary"; "backup"; "spare" ];
    };
    {
      tag = "catchup";
      producers = [ "primary" ];
      handlers = [ "backup"; "spare" ];
    };
    {
      tag = "snapshot";
      producers = [ "primary"; "replica" ];
      handlers = [ "backup"; "spare" ];
    };
    {
      tag = "recovered";
      producers = [ "backup"; "spare" ];
      handlers = [ "primary" ];
    };
    {
      tag = "snapshot-req";
      producers = [ "spare" ];
      handlers = [ "replica" ];
    };
    (* Sharded 2PC: a participant replica's vote on a prepared
       cross-shard transaction, resent periodically until the decision
       is delivered through its shard's TOB. *)
    {
      tag = "vote";
      producers = [ "replica" ];
      handlers = [ "coordinator" ];
    };
  ]

let check ~target ~all_tags entries =
  let diag = Diag.v ~pass:"wire-table" ~target in
  let missing =
    List.filter_map
      (fun t ->
        if List.exists (fun e -> e.tag = t) entries then None
        else
          Some
            (diag ~code:"missing-wire-entry" ~site:t
               "message tag %S has no wire-table entry: who sends it, who \
                handles it?"
               t))
      all_tags
  in
  let per_entry e =
    let stale =
      if List.mem e.tag all_tags then []
      else
        [
          diag ~code:"stale-wire-entry" ~site:e.tag
            "wire-table entry %S matches no message constructor" e.tag;
        ]
    in
    let dup =
      if List.length (List.filter (fun e' -> e'.tag = e.tag) entries) > 1 then
        [
          diag ~code:"duplicate-wire-entry" ~site:e.tag
            "message tag %S is declared more than once" e.tag;
        ]
      else []
    in
    let empty =
      (if e.producers = [] then
         [
           diag ~code:"no-producer" ~site:e.tag
             "message tag %S has handlers but no declared producer" e.tag;
         ]
       else [])
      @
      if e.handlers = [] then
        [
          diag ~code:"no-handler" ~site:e.tag
            "message tag %S is produced but no role handles it — a dead \
             letter"
            e.tag;
        ]
      else []
    in
    let bad_roles =
      List.filter_map
        (fun r ->
          if List.mem r roles then None
          else
            Some
              (diag ~code:"unknown-role" ~site:e.tag
                 "wire-table entry %S names unknown role %S" e.tag r))
        (e.producers @ e.handlers)
    in
    stale @ dup @ empty @ bad_roles
  in
  missing @ List.concat_map per_entry entries

let pass () =
  check ~target:"shadowdb-wire" ~all_tags:Shadowdb.Db_msg.all_tags table
