module R = Runtime
module Database = Storage.Database
module Lock = Storage.Lock
module Txn = Shadowdb.Txn

type wire =
  | Client of Txn.t
  | Reply of Txn.reply
  | Repl of { id : int; txn : Txn.t }
  | Repl_ack of { id : int }

type mode =
  | Standalone
  | Lockstep_repl
  | Semisync_repl of Lock.granularity

type cluster = {
  primary : int;
  backup : int option;
  commits : unit -> int;
  aborts : unit -> int;
}

(* The benchmarks' contention point: the bank workload contends on
   ACCOUNTS rows; TPC-C-style registries may pass their own [lock_of]. *)
let default_lock_of (txn : Txn.t) =
  match txn.Txn.params with
  | v :: _ -> ("ACCOUNTS", Some [ v ])
  | [] -> ("ACCOUNTS", None)

let granularity_of = function
  | Standalone | Lockstep_repl -> Lock.Table_level
  | Semisync_repl g -> g

type pending = { txn : Txn.t; reply : Txn.reply }

let spawn ?(backend = Storage.Store.Hazel) ?(exec_factor = 1.0)
    ?(lock_timeout = 0.05) ?(lock_of = default_lock_of)
    ?(stmt_delay = fun (_ : Txn.t) -> 0.0) ~world ~registry ~setup mode =
  let commits = Atomic.make 0 in
  let aborts = Atomic.make 0 in
  let backup_ref = ref None in
  let primary_handler () =
    let db = Database.create backend in
    setup db;
    ignore (Database.take_cost db);
    let reg = registry () in
    let locks = Lock.create (granularity_of mode) in
    let next_id = ref 0 in
    let info : (int, Txn.t) Hashtbl.t = Hashtbl.create 64 in
    let waiting : (int, int) Hashtbl.t = Hashtbl.create 64 in
    (* txn id -> timer *)
    let timer_txn : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let pending_repl : (int, pending) Hashtbl.t = Hashtbl.create 64 in
    let stmt_wait : (int, int * Txn.reply) Hashtbl.t = Hashtbl.create 64 in
    let reply ctx (r : Txn.reply) =
      R.send ctx ~size:(Txn.reply_size r) r.Txn.client (Reply r)
    in
    let rec run ctx id txn =
      let r = Txn.execute reg db txn in
      R.charge ctx ((Database.take_cost db *. exec_factor) +. 2.0e-5);
      (* Client↔server statement round trips: the server CPU is free, but
         locks stay held and the transaction completes only afterwards
         (the paper: "TPC-C transactions involve several round-trips
         between the client and the database"). *)
      let delay = stmt_delay txn in
      if delay > 0.0 then begin
        let timer = R.set_timer ctx delay "stmts-done" in
        Hashtbl.replace stmt_wait timer (id, r)
      end
      else complete ctx id txn r
    and complete ctx id txn r =
      match (mode, !backup_ref) with
      | Standalone, _ | _, None ->
          release ctx id;
          finish ctx r
      | Lockstep_repl, Some b ->
          (* Locks stay held until the backup confirms the apply. *)
          Hashtbl.replace pending_repl id { txn; reply = r };
          R.send ctx ~size:(Txn.size txn) b (Repl { id; txn })
      | Semisync_repl _, Some b ->
          release ctx id;
          Hashtbl.replace pending_repl id { txn; reply = r };
          R.send ctx ~size:(Txn.size txn) b (Repl { id; txn })
    and finish ctx (r : Txn.reply) =
      (match r.Txn.outcome with
      | Ok _ -> Atomic.incr commits
      | Error _ -> Atomic.incr aborts);
      reply ctx r
    and release ctx id =
      let granted = Lock.release_all locks ~txn:id in
      List.iter
        (fun gid ->
          match Hashtbl.find_opt waiting gid with
          | Some timer ->
              Hashtbl.remove waiting gid;
              R.cancel_timer ctx timer;
              (match Hashtbl.find_opt info gid with
              | Some txn -> run ctx gid txn
              | None -> ())
          | None -> ())
        granted
    in
    let finish_stmts ctx timer =
      match Hashtbl.find_opt stmt_wait timer with
      | None -> false
      | Some (id, r) ->
          Hashtbl.remove stmt_wait timer;
          (match Hashtbl.find_opt info id with
          | Some txn -> complete ctx id txn r
          | None -> ());
          true
    in
    let start ctx id txn =
      Hashtbl.replace info id txn;
      let table, key = lock_of txn in
      match Lock.acquire locks ~txn:id ~table ~key with
      | `Granted -> run ctx id txn
      | `Queued ->
          let timer = R.set_timer ctx lock_timeout "lock-timeout" in
          Hashtbl.replace waiting id timer;
          Hashtbl.replace timer_txn timer id
    in
    fun ctx -> function
      | R.Init -> ()
      | R.Recv { msg = Client txn; _ } ->
          incr next_id;
          R.charge ctx 1.0e-5;
          start ctx !next_id txn
      | R.Recv { msg = Repl_ack { id }; _ } -> (
          match Hashtbl.find_opt pending_repl id with
          | None -> ()
          | Some p ->
              Hashtbl.remove pending_repl id;
              (match mode with
              | Lockstep_repl -> release ctx id
              | Standalone | Semisync_repl _ -> ());
              finish ctx p.reply)
      | R.Recv _ -> ()
      | R.Timer { id = timer; _ } when Hashtbl.mem stmt_wait timer ->
          ignore (finish_stmts ctx timer)
      | R.Timer { id = timer; _ } -> (
          match Hashtbl.find_opt timer_txn timer with
          | None -> ()
          | Some txn_id ->
              Hashtbl.remove timer_txn timer;
              if Hashtbl.mem waiting txn_id then begin
                Hashtbl.remove waiting txn_id;
                Lock.cancel locks ~txn:txn_id;
                match Hashtbl.find_opt info txn_id with
                | Some txn ->
                    Atomic.incr aborts;
                    reply ctx
                      {
                        Txn.client = txn.Txn.client;
                        seq = txn.Txn.seq;
                        outcome = Error "lock timeout";
                      }
                | None -> ()
              end)
  in
  let backup_handler () =
    let db = Database.create backend in
    setup db;
    ignore (Database.take_cost db);
    let reg = registry () in
    fun ctx -> function
      | R.Recv { src; msg = Repl { id; txn } } ->
          ignore (Txn.execute reg db txn);
          R.charge ctx (Database.take_cost db *. exec_factor);
          R.send ctx ~size:16 src (Repl_ack { id })
      | R.Recv _ | R.Init | R.Timer _ -> ()
  in
  let primary = R.spawn world ~name:"base-primary" primary_handler in
  let backup =
    match mode with
    | Standalone -> None
    | Lockstep_repl | Semisync_repl _ ->
        Some (R.spawn world ~name:"base-backup" backup_handler)
  in
  backup_ref := backup;
  {
    primary;
    backup;
    commits = (fun () -> Atomic.get commits);
    aborts = (fun () -> Atomic.get aborts);
  }

let spawn_clients ~world ~cluster ~n ~count ~make_txn
    ?(on_commit = fun _ _ -> ()) () =
  let completed = Atomic.make 0 in
  let spawn_one _ =
    R.spawn world ~name:"base-client" (fun () ->
        let seq = ref 0 in
        let sent_at = ref 0.0 in
        let send ctx =
          sent_at := R.time ctx;
          let client = R.self ctx in
          let kind, params = make_txn ~client ~seq:!seq in
          let txn = { Txn.client; seq = !seq; kind; params } in
          R.send ctx ~size:(Txn.size txn) cluster.primary (Client txn)
        in
        fun ctx -> function
          | R.Init -> if count > 0 then send ctx
          | R.Recv { msg = Reply r; _ } when r.Txn.seq = !seq -> (
              match r.Txn.outcome with
              | Ok _ ->
                  let now = R.time ctx in
                  on_commit now (now -. !sent_at);
                  incr seq;
                  if !seq < count then send ctx else Atomic.incr completed
              | Error "lock timeout" ->
                  (* Lock-timeout abort: retry the same transaction. *)
                  send ctx
              | Error _ ->
                  (* Deterministic abort: move on without counting. *)
                  incr seq;
                  if !seq < count then send ctx else Atomic.incr completed)
          | R.Recv _ | R.Timer _ -> ())
  in
  let _ids = List.init n spawn_one in
  fun () -> Atomic.get completed
