(** Baseline (conventionally replicated) database servers — the comparison
    systems of Fig. 9.

    - [Standalone]: one unreplicated database server (the paper's
      H2-standalone curve, the upper bound).
    - [Lockstep_repl]: eager primary-backup replication with table-level
      locks held across the synchronous propagation round trip — the
      behaviour behind the H2-replication curve's early saturation and
      lock-timeout aborts.
    - [Semisync_repl]: primary executes under short locks and answers once
      the backup has received (not necessarily applied) the transaction —
      MySQL-style; with [Table_level] locks it models the MEMORY engine,
      with [Row_level] InnoDB.

    Concurrency: unlike ShadowDB's sequential executor, these servers
    admit concurrent transactions, so a lock manager with waiter queues
    and timeout aborts runs in virtual time. *)

type wire =
  | Client of Shadowdb.Txn.t
  | Reply of Shadowdb.Txn.reply
  | Repl of { id : int; txn : Shadowdb.Txn.t }
  | Repl_ack of { id : int }

type mode =
  | Standalone
  | Lockstep_repl
  | Semisync_repl of Storage.Lock.granularity

type cluster = {
  primary : int;
  backup : int option;
  commits : unit -> int;
  aborts : unit -> int;
}

val spawn :
  ?backend:Storage.Store.kind ->
  ?exec_factor:float ->
  ?lock_timeout:float ->
  ?lock_of:(Shadowdb.Txn.t -> string * Storage.Store.key option) ->
  ?stmt_delay:(Shadowdb.Txn.t -> float) ->
  world:wire Runtime.t ->
  registry:(unit -> Shadowdb.Txn.registry) ->
  setup:(Storage.Database.t -> unit) ->
  mode ->
  cluster
(** [exec_factor] scales execution CPU cost relative to the "hazel"
    profile (MySQL's engine is slower than H2's: the paper's Fig. 9).
    [lock_timeout] is the queue-wait budget before an abort (default
    50 ms). [stmt_delay] models per-transaction client↔server statement
    round trips (locks stay held, CPU idles) — the paper notes TPC-C
    involves several per transaction, which ShadowDB's co-located
    execution avoids. *)

val spawn_clients :
  world:wire Runtime.t ->
  cluster:cluster ->
  n:int ->
  count:int ->
  make_txn:(client:int -> seq:int -> string * Storage.Value.t list) ->
  ?on_commit:(float -> float -> unit) ->
  unit ->
  unit -> int
(** Closed-loop clients; aborted transactions are retried immediately
    (the retry latency is included in the next commit's latency, and only
    commits are counted). Returns a completion counter. *)
