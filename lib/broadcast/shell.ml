module R = Runtime

type costs = { client_msg : float; core_msg : float; per_entry : float }

(* Calibrated against Fig. 8 (see EXPERIMENTS.md): with the engine factors
   in {!Gpm.Engine_profile}, these constants put the compiled service at
   ≈8.8 ms one-client latency and ≈900 delivered msgs/s at 43 clients. *)
let default_costs =
  { client_msg = 5.0e-5; core_msg = 1.92e-3; per_entry = 3.9e-4 }

module Make (C : Consensus.Consensus_intf.S) = struct
  module T = Tob.Make (C)

  let entry_size (e : Tob.entry) = String.length e.Tob.payload + 24

  let msg_size = function
    | T.Broadcast e -> entry_size e
    | T.Core _ -> 256 (* consensus messages carry batches; flat estimate *)

  let spawn ?(costs = default_costs) ?(profile = Gpm.Engine_profile.Compiled)
      ?batch_cap ?window ?suspect_timeout ~world ~inj ~prj ~inj_notify ~n
      ~subscribers () =
    let lat_f = Gpm.Engine_profile.cpu_factor profile in
    let data_f = Gpm.Engine_profile.data_factor profile in
    let members = ref [] in
    let machine =
      {
        R.Proc.init =
          (fun ~self ~now:_ ->
            T.create ?batch_cap ?window ?suspect_timeout ~self
              ~members:!members ~subscribers:(subscribers ()) ());
        start = T.start;
        recv = T.recv;
        tick = (fun t ~now ~tag:_ -> T.tick t ~now);
      }
    in
    let charge_recv ctx = function
      | T.Broadcast _ -> R.charge ctx costs.client_msg
      | T.Core _ -> R.charge ctx (costs.core_msg *. lat_f)
    in
    let on_step ctx ~before ~after =
      R.charge ctx
        (float_of_int (T.delivered after - T.delivered before)
        *. costs.per_entry *. data_f)
    in
    let interp ctx = function
      | T.Send (dst, m) -> R.send ctx ~size:(msg_size m) dst (inj m)
      | T.Notify (dst, d) ->
          R.send ctx ~size:(entry_size d.Tob.entry + 8) dst (inj_notify d)
      | T.Set_timer delay -> ignore (R.set_timer ctx delay "tob")
    in
    let ids =
      R.Proc.spawn_group ~world ~n
        ~name:(Printf.sprintf "tob%d")
        (fun _i ->
          R.Proc.node_handler ~machine ~prj ~charge_recv ~on_step ~interp)
    in
    members := ids;
    ids
end
