(** Runtime shell for the total-order broadcast service.

    Hosts {!Tob.Make} members as nodes of any {!Runtime.t} — the
    deterministic simulator or the live socket runtime. The shell is
    polymorphic in the world's wire type via injection/projection
    functions, so the service can be embedded in larger systems (ShadowDB
    worlds carry both database traffic and broadcast traffic). *)

type costs = {
  client_msg : float;
      (** CPU seconds to ingest one client broadcast (fixed). *)
  core_msg : float;
      (** CPU seconds per consensus protocol message (fixed; scaled by the
          engine's latency factor). *)
  per_entry : float;
      (** CPU seconds per payload entry delivered (scaled by the engine's
          data factor). *)
}

val default_costs : costs
(** Calibration that reproduces Fig. 8 under {!Gpm.Engine_profile}:
    [core_msg = 2.43 ms], [per_entry = 1.1 ms], [client_msg = 0.05 ms]. *)

module Make (C : Consensus.Consensus_intf.S) : sig
  module T : module type of Tob.Make (C)

  val spawn :
    ?costs:costs ->
    ?profile:Gpm.Engine_profile.t ->
    ?batch_cap:int ->
    ?window:int ->
    ?suspect_timeout:float ->
    world:'w Runtime.t ->
    inj:(T.msg -> 'w) ->
    prj:('w -> T.msg option) ->
    inj_notify:(Tob.deliver -> 'w) ->
    n:int ->
    subscribers:(unit -> Tob.loc list) ->
    unit ->
    Tob.loc list
  (** Spawn [n] service members. [subscribers] is read lazily at node
      start-up, so clients may be spawned after the service. Returns the
      member node ids (send client broadcasts to any of them, injected via
      [inj (T.Broadcast entry)]). *)
end
