type loc = int

type entry = { origin : loc; id : int; payload : string }

type batch = entry list

type deliver = { seqno : int; entry : entry }

module Entry_key = struct
  type t = loc * int

  let compare = compare
end

module Key_set = Set.Make (Entry_key)

module Make (C : Consensus.Consensus_intf.S) = struct
  type msg = Broadcast of entry | Core of batch C.msg

  type action = Send of loc * msg | Notify of loc * deliver | Set_timer of float

  type t = {
    self : loc;
    members : loc list;
    subscribers : loc list;
    batch_cap : int;
    window : int;  (* max batches in flight through consensus at once *)
    suspect_timeout : float;
    core : batch C.t;
    pending : entry list;  (* accumulated, newest last *)
    awaiting : batch list;  (* our batches in flight, oldest first *)
    seqno : int;
    seen : Key_set.t;  (* (origin, id) of delivered entries *)
    delivered_log : entry list;  (* reverse delivery order *)
    last_progress : float;
  }

  let create ?(batch_cap = 64) ?(window = 1) ?(suspect_timeout = 0.5) ~self
      ~members ~subscribers () =
    {
      self;
      members;
      subscribers;
      batch_cap;
      window = max 1 window;
      suspect_timeout;
      core = C.create ~self ~members;
      pending = [];
      awaiting = [];
      seqno = 0;
      seen = Key_set.empty;
      delivered_log = [];
      last_progress = 0.0;
    }

  let delivered t = t.seqno

  let log t = List.rev t.delivered_log

  let take n l =
    let rec go n acc = function
      | [] -> (List.rev acc, [])
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> go (n - 1) (x :: acc) rest
    in
    go n [] l

  (* Unfold one decided batch into sequence-numbered notifications,
     skipping entries already delivered (duplicate suppression). *)
  let deliver_batch t batch =
    List.fold_left
      (fun (t, acts) entry ->
        let key = (entry.origin, entry.id) in
        if Key_set.mem key t.seen then (t, acts)
        else
          let d = { seqno = t.seqno; entry } in
          let t =
            {
              t with
              seqno = t.seqno + 1;
              seen = Key_set.add key t.seen;
              delivered_log = entry :: t.delivered_log;
            }
          in
          (t, acts @ List.map (fun s -> Notify (s, d)) t.subscribers))
      (t, []) batch

  (* Drop the first occurrence of [batch] from the in-flight list, if
     present. Decisions arrive in slot order and our proposals take slots
     in propose order, so a decided batch of ours is normally the head —
     but a proposal that lost its slot is re-proposed by the core and may
     decide later, so we scan the whole list. *)
  let rec remove_awaiting batch = function
    | [] -> []
    | b :: rest -> if b = batch then rest else b :: remove_awaiting batch rest

  let rec integrate t now core_acts acts =
    match core_acts with
    | [] -> maybe_propose t acts
    | Consensus.Consensus_intf.Send (dst, m) :: rest ->
        integrate t now rest (acts @ [ Send (dst, Core m) ])
    | Consensus.Consensus_intf.Set_timer d :: rest ->
        integrate t now rest (acts @ [ Set_timer d ])
    | Consensus.Consensus_intf.Deliver { s = _; c = batch } :: rest ->
        let t = { t with last_progress = now } in
        let t = { t with awaiting = remove_awaiting batch t.awaiting } in
        let t, notifies = deliver_batch t batch in
        integrate t now rest (acts @ notifies)

  (* Propose batches while the pipeline window has room. Each propose
     recurses through [integrate], which lands back here, so a window of k
     opens up to k slots in one step. *)
  and maybe_propose t acts =
    if t.pending = [] || List.length t.awaiting >= t.window then (t, acts)
    else begin
      let batch, rest = take t.batch_cap t.pending in
      let t = { t with awaiting = t.awaiting @ [ batch ]; pending = rest } in
      let core, core_acts = C.propose t.core batch in
      (* Proposing cannot itself deliver our fresh batch synchronously in
         any sensible core, but integrate handles it uniformly anyway. *)
      integrate { t with core } t.last_progress core_acts acts
    end

  let start t ~now =
    let core, core_acts = C.start t.core in
    let t, acts = integrate { t with core; last_progress = now } now core_acts [] in
    (t, acts @ [ Set_timer t.suspect_timeout ])

  let recv t ~now ~src msg =
    match msg with
    | Broadcast entry ->
        let t = { t with pending = t.pending @ [ entry ] } in
        maybe_propose t []
    | Core m ->
        let core, core_acts = C.recv t.core ~src m in
        integrate { t with core } now core_acts []

  (* Periodic tick: prod the consensus core if an in-flight proposal has
     made no progress for [suspect_timeout] (crash suspicion → leader
     takeover / retransmission), then re-arm the heartbeat. *)
  let tick t ~now =
    let stuck =
      t.awaiting <> [] && now -. t.last_progress > t.suspect_timeout
    in
    let t, acts =
      if stuck then begin
        let core, core_acts = C.tick t.core in
        integrate { t with core; last_progress = now } now core_acts []
      end
      else (t, [])
    in
    (t, acts @ [ Set_timer (t.suspect_timeout /. 2.0) ])
end
