(** Total-order broadcast service (pure state machine).

    The paper's core verified artifact: participating processes deliver
    the same messages in the same order (uniform total order, no creation,
    no duplication). Built modularly over a consensus core — instantiate
    {!Make} with {!Consensus.Paxos} or {!Consensus.Twothird_multi}.

    Messages submitted by clients are accumulated and proposed as batches
    (the paper's batching optimization); decided batches are unfolded into
    individually sequence-numbered deliveries, deduplicated by
    (origin, id). A member keeps up to [window] batches in flight through
    consensus at once (default 1 — the paper's one-outstanding-batch
    regime); pipelining is safe because both consensus cores decide
    per-slot and release decisions strictly in slot order, so total order
    is fixed by slot assignment regardless of how many proposals any
    member has outstanding. *)

type loc = int

type entry = { origin : loc; id : int; payload : string }
(** One broadcast message: submitting client, client-local id, payload. *)

type batch = entry list
(** The unit of consensus. *)

type deliver = { seqno : int; entry : entry }
(** A delivery notification: global sequence number plus the message. *)

module Make (C : Consensus.Consensus_intf.S) : sig
  type msg =
    | Broadcast of entry  (** Client → service member. *)
    | Core of batch C.msg  (** Service member ↔ service member. *)

  type action =
    | Send of loc * msg
    | Notify of loc * deliver  (** Delivery notification to a subscriber. *)
    | Set_timer of float

  type t

  val create :
    ?batch_cap:int ->
    ?window:int ->
    ?suspect_timeout:float ->
    self:loc ->
    members:loc list ->
    subscribers:loc list ->
    unit ->
    t
  (** [subscribers] receive a [Notify] for every delivered message.
      [batch_cap] bounds entries per proposal (default 64).
      [window] is the number of batches this member may have in flight
      through consensus simultaneously (default 1; clamped to [>= 1]).
      [suspect_timeout] is the no-progress interval after which the member
      prods the consensus core (leader re-election / retransmission;
      default 0.5 s). *)

  val start : t -> now:float -> t * action list
  val recv : t -> now:float -> src:loc -> msg -> t * action list
  val tick : t -> now:float -> t * action list

  val delivered : t -> int
  (** Number of messages this member has delivered so far. *)

  val log : t -> entry list
  (** Delivered messages in delivery order (the agreed sequence). *)
end
