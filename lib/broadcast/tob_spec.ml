(* The total-order broadcast service as a constructive specification over
   the Paxos consensus core — the "Broadcast Service" row of Table I.
   Handlers delegate to the pure service machine ({!Tob.Make}), preserving
   the modular composition the paper demonstrates (the broadcast service
   is layered over a pluggable consensus module). On top of the pure
   machine, the specification adds dynamic subscription: a [Subscribers]
   state class folds subscribe requests, and each delivery fans out to the
   current subscriber set. *)

module Message = Loe.Message
module Cls = Loe.Cls
module T = Tob.Make (Consensus.Paxos)

type io = {
  bcast : Tob.entry Message.hdr;  (* client → member *)
  core : (Message.loc * string) Message.hdr;
      (* member ↔ member: src + encoded core message (the wire form) *)
  tick : unit Message.hdr;
  start : unit Message.hdr;  (* boot: starts the consensus core *)
  subscribe : Message.loc Message.hdr;  (* learner → member *)
  deliver : Tob.deliver Message.hdr;  (* member → subscriber *)
}

(* The constructive specification carries core messages opaquely between
   members; within a single simulation the codec can be the identity
   through a side table. *)
module Core_codec = struct
  let table : (int, T.msg) Hashtbl.t = Hashtbl.create 256
  let keys : (T.msg, int) Hashtbl.t = Hashtbl.create 256
  let next = ref 0

  (* Deterministic per message: encoding the same core message twice
     yields the same key, so [encode] is observationally pure — the
     handler-purity sanitizer (lib/analysis) re-invokes handlers on
     identical inputs and must see identical outputs. *)
  let encode m =
    match Hashtbl.find_opt keys m with
    | Some k -> string_of_int k
    | None ->
        incr next;
        Hashtbl.replace table !next m;
        Hashtbl.replace keys m !next;
        string_of_int !next

  let decode s =
    match int_of_string_opt s with
    | Some k -> Hashtbl.find_opt table k
    | None -> None
end

let declare_io () =
  {
    bcast = Message.declare "tob-bcast";
    core = Message.declare "tob-core";
    tick = Message.declare "tob-tick";
    start = Message.declare "tob-start";
    subscribe = Message.declare "tob-subscribe";
    deliver = Message.declare "tob-deliver";
  }

type event =
  | E_bcast of Tob.entry
  | E_core of Message.loc * string
  | E_tick
  | E_start

let make ~locs ~subscribers =
  let io = declare_io () in
  let inputs =
    Cls.( ||| )
      (Cls.map (fun e -> E_bcast e) (Cls.base io.bcast))
      (Cls.( ||| )
         (Cls.map (fun (src, m) -> E_core (src, m)) (Cls.base io.core))
         (Cls.( ||| )
            (Cls.map (fun () -> E_tick) (Cls.base io.tick))
            (Cls.map (fun () -> E_start) (Cls.base io.start))))
  in
  let step slf event (svc, _) =
    match event with
    | E_bcast entry ->
        T.recv svc ~now:0.0 ~src:entry.Tob.origin (T.Broadcast entry)
    | E_core (src, encoded) -> (
        match Core_codec.decode encoded with
        | Some m -> T.recv svc ~now:0.0 ~src m
        | None -> (svc, []))
    | E_tick ->
        ignore slf;
        T.tick svc ~now:0.0
    | E_start -> T.start svc ~now:0.0
  in
  let service =
    Cls.state "TOB"
      (* The machine notifies [self]; the fan-out below re-addresses each
         notification to the live subscriber set. *)
      ~init:(fun slf ->
        (T.create ~self:slf ~members:locs ~subscribers:[ slf ] (), []))
      ~upd:step inputs
  in
  let subs =
    Cls.state "Subscribers"
      ~init:(fun _ -> subscribers)
      ~upd:(fun _ l subs -> if List.mem l subs then subs else l :: subs)
      (Cls.base io.subscribe)
  in
  let emit slf _event (_, acts) subs =
    List.concat_map
      (function
        | T.Send (dst, m) -> [ Message.send io.core dst (slf, Core_codec.encode m) ]
        | T.Notify (_, d) -> List.map (fun s -> Message.send io.deliver s d) subs
        | T.Set_timer delay -> [ Message.send_after io.tick delay slf () ])
      acts
  in
  let handler = Cls.o3 emit inputs service subs in
  (Loe.Spec.v ~name:"Broadcast-Service" ~locs handler, io)
