(* Schedule exploration: stateless model checking over scenarios.

   Every schedule is a fresh run of the scenario from scratch; schedules
   differ only in the scheduler's decisions (and optionally the fault
   plan). Exploration is deterministic per seed: the same (scenario,
   seed, budget, mode) always visits the same schedules, so CI failures
   reproduce locally. *)

type report = {
  protocol : string;
  mode : string;
  schedules : int;  (* complete runs executed *)
  distinct_states : int;  (* distinct fingerprints at choice points *)
  max_depth : int;  (* deepest decision sequence seen *)
  total_events : int;  (* simulator events across all runs *)
  violation : Trace.t option;  (* first (shrunk) counterexample, if any *)
}

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>protocol        %s@,mode            %s@,schedules       %d@,distinct states %d@,max depth       %d@,total events    %d@,result          %a@]"
    r.protocol r.mode r.schedules r.distinct_states r.max_depth r.total_events
    (fun ppf -> function
      | None -> Fmt.string ppf "no violation found"
      | Some t -> Fmt.pf ppf "VIOLATION@,%a" Trace.pp t)
    r.violation

(* Deterministic seed mixing (splitmix-style) for per-schedule streams. *)
let mix a b =
  let h = ref (a * 0x9e3779b1) in
  h := (!h lxor b) * 0x85ebca6b;
  h := (!h lxor (!h lsr 13)) * 0xc2b2ae35;
  abs (!h lxor (!h lsr 16))

(* Trailing default choices are redundant: a Fixed prefix behaves as
   choice 0 beyond its end. Stripping them is free (no re-run needed). *)
let strip_trailing_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

(* Track distinct fingerprints at choice points via the per-step hook. *)
let coverage_hook seen =
  let last = ref (-1) in
  let reset () = last := -1 in
  let hook (r : Scenario.running) =
    let d = r.depth () in
    if d > !last then begin
      last := d;
      Hashtbl.replace seen (r.fingerprint ()) ()
    end
  in
  (reset, hook)

let trace_of scenario ~world_seed ~slack ~width ~faults ~decisions
    (v : Scenario.violation) =
  {
    Trace.protocol = scenario.Scenario.name;
    world_seed;
    slack;
    width;
    decisions = strip_trailing_zeros decisions;
    faults;
    monitor = v.Scenario.monitor;
    detail = v.Scenario.detail;
  }

(* Exact replay of a captured trace. *)
let replay scenario (t : Trace.t) =
  let sched = Sched.fixed ~slack:t.Trace.slack ~width:t.Trace.width t.decisions in
  Scenario.run ~faults:t.faults scenario ~seed:t.world_seed ~sched

(* Greedy counterexample shrinking: first drop fault steps one at a time,
   then trim the decision suffix (halving, then single steps), keeping
   every candidate that still triggers the same monitor. Each candidate
   costs one full replay; attempts are bounded, so shrinking terminates
   quickly even for long traces. *)
let shrink scenario (t : Trace.t) =
  let still_fails (c : Trace.t) =
    match (replay scenario c).Scenario.violation with
    | Some v -> v.Scenario.monitor = c.Trace.monitor
    | None -> false
  in
  let cur = ref { t with Trace.decisions = strip_trailing_zeros t.decisions } in
  (* Faults: try removing each step. *)
  let rec drop_faults () =
    let dropped =
      List.exists
        (fun step ->
          let cand =
            {
              !cur with
              Trace.faults =
                List.filter (fun s -> s <> step) !cur.Trace.faults;
            }
          in
          if still_fails cand then begin
            cur := cand;
            true
          end
          else false)
        !cur.Trace.faults
    in
    if dropped then drop_faults ()
  in
  drop_faults ();
  (* Decisions: shrink the prefix length. *)
  let try_len n =
    let n = max 0 n in
    if n >= Array.length !cur.Trace.decisions then false
    else
      let cand =
        {
          !cur with
          Trace.decisions =
            strip_trailing_zeros (Array.sub !cur.Trace.decisions 0 n);
        }
      in
      if still_fails cand then begin
        cur := cand;
        true
      end
      else false
  in
  let rec halve () =
    if try_len (Array.length !cur.Trace.decisions / 2) then halve ()
  in
  halve ();
  let budget = ref 64 in
  let rec trim () =
    if !budget > 0 && Array.length !cur.Trace.decisions > 0 then begin
      decr budget;
      if try_len (Array.length !cur.Trace.decisions - 1) then trim ()
    end
  in
  trim ();
  !cur

let finish_violation scenario ~world_seed ~slack ~width ~faults ~decisions v =
  shrink scenario
    (trace_of scenario ~world_seed ~slack ~width ~faults ~decisions v)

(* Random walk: [budget] schedules, each driven by an independently seeded
   random strategy over the same world seed. [random_faults] draws a fresh
   crash-stop fault plan per schedule; [fault_gen] substitutes a custom
   per-schedule plan generator (e.g. [Fault.random_recovery] for durable
   scenarios). *)
let random_walk ?(slack = Sched.default_slack) ?(width = Sched.default_width)
    ?(faults = []) ?(random_faults = false) ?fault_gen ?(max_depth = 40)
    scenario ~seed ~budget () =
  let seen = Hashtbl.create 1024 in
  let reset_cov, hook = coverage_hook seen in
  let schedules = ref 0 in
  let max_d = ref 0 in
  let events = ref 0 in
  let violation = ref None in
  let i = ref 0 in
  while !i < budget && !violation = None do
    let sched = Sched.random ~slack ~width (mix seed !i) in
    let plan =
      match fault_gen with
      | Some gen ->
          gen
            (Sim.Prng.create (mix (seed + 1) !i))
            ~nodes:scenario.Scenario.nodes ~max_depth
      | None ->
          if random_faults then
            Fault.random
              (Sim.Prng.create (mix (seed + 1) !i))
              ~nodes:scenario.Scenario.nodes ~max_depth
          else faults
    in
    reset_cov ();
    let out = Scenario.run ~faults:plan ~on_step:hook scenario ~seed ~sched in
    incr schedules;
    max_d := max !max_d out.Scenario.depth;
    events := !events + out.Scenario.events;
    (match out.Scenario.violation with
    | Some v ->
        violation :=
          Some
            (finish_violation scenario ~world_seed:seed ~slack ~width
               ~faults:plan ~decisions:out.Scenario.decisions v)
    | None -> ());
    incr i
  done;
  {
    protocol = scenario.Scenario.name;
    mode = "random";
    schedules = !schedules;
    distinct_states = Hashtbl.length seen;
    max_depth = !max_d;
    total_events = !events;
    violation = !violation;
  }

(* Bounded DFS over decision prefixes with fingerprint pruning.

   A schedule is identified by the decision prefix forced on a Fixed
   strategy (beyond the prefix, default order). After running a prefix we
   know the branch width at every choice point; unexplored siblings of
   each point beyond the forced prefix become new work items
   (depth-first, nearest point last so it is explored first). A choice
   point whose state fingerprint was already expanded is not re-expanded
   — that is the classic stateless-model-checking sleep-set-free pruning:
   it only skips redundant exploration, it cannot hide a reachable
   violation that a fresh state would expose. *)
let dfs ?(slack = Sched.default_slack) ?(width = Sched.default_width)
    ?(faults = []) ?(max_depth = 12) scenario ~seed ~budget () =
  let seen = Hashtbl.create 1024 in
  let reset_cov, cov_hook = coverage_hook seen in
  let expanded = Hashtbl.create 1024 in
  let schedules = ref 0 in
  let max_d = ref 0 in
  let events = ref 0 in
  let violation = ref None in
  let stack = ref [ [||] ] in
  while !stack <> [] && !schedules < budget && !violation = None do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        let sched = Sched.fixed ~slack ~width prefix in
        (* Record the fingerprint at each choice point of this run so the
           expansion step below can prune revisited states. *)
        let fp_at = ref [] in
        let hook (r : Scenario.running) =
          cov_hook r;
          let d = r.depth () in
          if
            match !fp_at with [] -> true | (d0, _) :: _ -> d > d0
          then fp_at := (d, r.fingerprint ()) :: !fp_at
        in
        reset_cov ();
        let out = Scenario.run ~faults ~on_step:hook scenario ~seed ~sched in
        incr schedules;
        max_d := max !max_d out.Scenario.depth;
        events := !events + out.Scenario.events;
        (match out.Scenario.violation with
        | Some v ->
            violation :=
              Some
                (finish_violation scenario ~world_seed:seed ~slack ~width
                   ~faults ~decisions:out.Scenario.decisions v)
        | None ->
            let widths = out.Scenario.widths in
            (* The first time the run reaches depth [d], decision [d] has
               not happened yet — that fingerprint is the state at choice
               point [d]. *)
            let fp_tbl = Hashtbl.create 64 in
            List.iter (fun (d, fp) -> Hashtbl.replace fp_tbl d fp) !fp_at;
            let lo = Array.length prefix in
            let hi = min (Array.length widths) max_depth - 1 in
            (* Push deeper points first so the nearest sibling (popped
               last-in-first-out) is explored depth-first. *)
            for j = hi downto lo do
              let w = widths.(j) in
              if w > 1 then begin
                let fresh =
                  match Hashtbl.find_opt fp_tbl j with
                  | None -> true
                  | Some fp ->
                      if Hashtbl.mem expanded fp then false
                      else begin
                        Hashtbl.replace expanded fp ();
                        true
                      end
                in
                if fresh then
                  for c = w - 1 downto 1 do
                    let ext = Array.make (j + 1) 0 in
                    Array.blit out.Scenario.decisions 0 ext 0 j;
                    ext.(j) <- c;
                    stack := ext :: !stack
                  done
              end
            done)
  done;
  {
    protocol = scenario.Scenario.name;
    mode = "dfs";
    schedules = !schedules;
    distinct_states = Hashtbl.length seen;
    max_depth = !max_d;
    total_events = !events;
    violation = !violation;
  }
