(* Fault-schedule DSL: inject crashes, restarts, and partitions at chosen
   scheduling depths rather than at wall-clock instants, so a fault plan
   composes with schedule exploration (the same plan lands at the same
   logical point of every schedule prefix).

   Concrete syntax, comma-separated:
     crash:N@D      crash node index N after D scheduling decisions
     restart:N@D    restart node index N
     part:A:B@D     partition node indices A and B (symmetric)
     heal:A:B@D     heal that partition

   Node indices are scenario-relative (0-based over the scenario's
   protocol nodes), not raw engine ids, so plans are portable across
   scenarios with the same cluster size. *)

type op =
  | Crash of int
  | Restart of int
  | Partition of int * int
  | Heal of int * int

type step = { at_depth : int; op : op }
type plan = step list

let op_to_string = function
  | Crash n -> Printf.sprintf "crash:%d" n
  | Restart n -> Printf.sprintf "restart:%d" n
  | Partition (a, b) -> Printf.sprintf "part:%d:%d" a b
  | Heal (a, b) -> Printf.sprintf "heal:%d:%d" a b

let to_string plan =
  String.concat ","
    (List.map (fun s -> Printf.sprintf "%s@%d" (op_to_string s.op) s.at_depth) plan)

let parse_step s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "fault step %S: missing @depth" s)
  | Some i -> (
      let body = String.sub s 0 i in
      let depth = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt depth with
      | None -> Error (Printf.sprintf "fault step %S: bad depth" s)
      | Some at_depth -> (
          match String.split_on_char ':' body with
          | [ "crash"; n ] -> (
              match int_of_string_opt n with
              | Some n -> Ok { at_depth; op = Crash n }
              | None -> Error (Printf.sprintf "fault step %S: bad node" s))
          | [ "restart"; n ] -> (
              match int_of_string_opt n with
              | Some n -> Ok { at_depth; op = Restart n }
              | None -> Error (Printf.sprintf "fault step %S: bad node" s))
          | [ "part"; a; b ] -> (
              match (int_of_string_opt a, int_of_string_opt b) with
              | Some a, Some b -> Ok { at_depth; op = Partition (a, b) }
              | _ -> Error (Printf.sprintf "fault step %S: bad nodes" s))
          | [ "heal"; a; b ] -> (
              match (int_of_string_opt a, int_of_string_opt b) with
              | Some a, Some b -> Ok { at_depth; op = Heal (a, b) }
              | _ -> Error (Printf.sprintf "fault step %S: bad nodes" s))
          | _ -> Error (Printf.sprintf "fault step %S: unknown op" s)))

let parse s =
  if String.trim s = "" then Ok []
  else
    let rec go acc = function
      | [] ->
          Ok
            (List.sort
               (fun a b -> compare a.at_depth b.at_depth)
               (List.rev acc))
      | x :: rest -> (
          match parse_step (String.trim x) with
          | Ok step -> go (step :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

(* Random plans for exploration. Deliberately crash-stop: no [Restart] is
   ever generated, because restarting an acceptor from its factory loses
   its promises — an amnesia failure outside Paxos's fault model that
   would yield spurious "counterexamples". Restart remains available for
   explicit plans against protocols that tolerate it (PBR/SMR
   reconfiguration). At most one crash (keeping a majority of a 3-node
   cluster up) and one partition/heal pair per plan. *)
let random rng ~nodes ~max_depth =
  let plan = ref [] in
  let depth () = 1 + Sim.Prng.int rng (max 1 max_depth) in
  if nodes >= 2 && Sim.Prng.bool rng then begin
    let a = Sim.Prng.int rng nodes in
    let b = (a + 1 + Sim.Prng.int rng (nodes - 1)) mod nodes in
    let d = depth () in
    let d_heal = d + 1 + Sim.Prng.int rng (max 1 max_depth) in
    plan :=
      { at_depth = d_heal; op = Heal (a, b) }
      :: { at_depth = d; op = Partition (a, b) }
      :: !plan
  end;
  if nodes >= 3 && Sim.Prng.bool rng then
    plan := { at_depth = depth (); op = Crash (Sim.Prng.int rng nodes) } :: !plan;
  List.sort (fun a b -> compare a.at_depth b.at_depth) !plan

(* Random crash-and-recover plans, for protocols whose nodes persist
   state and recover on restart (the durability layer's whole point —
   contrast [random] above, which never restarts). Each plan crashes one
   node at a random depth and restarts the same node strictly later; a
   majority is always up, and no partitions keep the plans focused on
   the recovery path. *)
let random_recovery rng ~nodes ~max_depth =
  if nodes < 3 then []
  else begin
    let n = Sim.Prng.int rng nodes in
    let d_crash = 1 + Sim.Prng.int rng (max 1 max_depth) in
    let d_restart = d_crash + 1 + Sim.Prng.int rng (max 1 max_depth) in
    [
      { at_depth = d_crash; op = Crash n };
      { at_depth = d_restart; op = Restart n };
    ]
  end
