(** Fault-schedule DSL.

    Faults are injected at scheduling {e depths} (decision counts), not
    virtual times, so a plan lands at the same logical point of every
    schedule that shares its prefix. Node numbers are scenario-relative
    indices over the protocol cluster.

    Syntax: comma-separated [crash:N@D], [restart:N@D], [part:A:B@D],
    [heal:A:B@D]. *)

type op =
  | Crash of int
  | Restart of int
  | Partition of int * int
  | Heal of int * int

type step = { at_depth : int; op : op }
type plan = step list

val to_string : plan -> string
val parse : string -> (plan, string) result

val random : Sim.Prng.t -> nodes:int -> max_depth:int -> plan
(** Random crash-stop plan: at most one crash (only for clusters of ≥ 3)
    and one partition/heal pair. Never generates [Restart] — an
    acceptor restarting from a fresh factory is an amnesia failure
    outside the Paxos fault model. *)

val random_recovery : Sim.Prng.t -> nodes:int -> max_depth:int -> plan
(** Random crash-and-recover plan for durable protocols: one node is
    crashed at a random depth and restarted strictly later (empty for
    clusters of < 3, which cannot spare a node). *)
