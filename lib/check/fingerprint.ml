(* Deterministic state digests for the model checker.

   Fingerprints identify logical states reached via different schedules, so
   they must not depend on virtual time, heap sequence numbers, or any
   other schedule-sensitive bookkeeping. They are hashes, not identities:
   a collision makes DFS prune a genuinely new state (losing coverage,
   never soundness — pruning only skips exploration, it cannot create a
   spurious counterexample). *)

type t = int

let empty = 0x811c9dc5

(* Boost-style order-sensitive mixing. *)
let mix h v = (h lxor (v + 0x9e3779b9 + (h lsl 6) + (h lsr 2))) land max_int

let int h v = mix h v
let string h s = mix h (Hashtbl.hash s)

(* Structural hash with generous traversal bounds: protocol states are
   small trees, and the default 10-meaningful-node budget of
   [Hashtbl.hash] would make most of them collide. *)
let value h v = mix h (Hashtbl.hash_param 120 300 v)

let list h f l = List.fold_left f (int h (List.length l)) l

(* Order-insensitive combination (for multisets of observations). *)
let unordered hs = List.fold_left ( + ) 0 hs land max_int
