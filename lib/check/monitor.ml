(* Runtime invariant monitors.

   A monitor is a first-class observer: the scenario harness feeds it
   every relevant event (a consensus delivery, a TOB notification, ...)
   as the simulation executes, and the monitor latches the first
   violation it sees. [finish] runs end-of-execution checks (state
   agreement, durability) that only make sense once the schedule has
   drained.

   Each monitor documents the paper proof obligation it checks; see
   DESIGN.md ("Model checking & runtime monitors") for the mapping. *)

type 'o t = {
  name : string;
  observe : 'o -> unit;
  finish : unit -> unit;
  violation : unit -> string option;
}

let make ~name ?(finish = fun _ -> None) observe =
  let fail = ref None in
  let violate msg = if !fail = None then fail := Some msg in
  {
    name;
    observe = (fun o -> if !fail = None then observe violate o);
    finish = (fun () -> if !fail = None then Option.iter violate (finish ()));
    violation = (fun () -> !fail);
  }

let name t = t.name
let observe t o = t.observe o
let finish t = t.finish ()
let violation t = t.violation ()

let first_violation ms =
  List.find_map (fun m -> Option.map (fun d -> (m.name, d)) (violation m)) ms

(* ---- Consensus (Paxos) monitors ----------------------------------------

   Observations are [(member, slot, command)] triples: member [member]
   decided [command] for log position [slot]. *)

type decision = { member : int; slot : int; cmd : string }

(* Agreement: no two members decide different commands for the same slot
   (the paper's core Synod safety property). *)
let paxos_agreement () =
  let decided : (int, string) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"paxos-agreement" (fun violate d ->
      match Hashtbl.find_opt decided d.slot with
      | None -> Hashtbl.replace decided d.slot d.cmd
      | Some prior ->
          if prior <> d.cmd then
            violate
              (Printf.sprintf
                 "slot %d decided as %S and as %S (member %d)" d.slot prior
                 d.cmd d.member))

(* Validity: only commands some client actually proposed are decided. *)
let paxos_validity ~proposed =
  make ~name:"paxos-validity" (fun violate d ->
      if not (Hashtbl.mem proposed d.cmd) then
        violate
          (Printf.sprintf "member %d decided unproposed command %S at slot %d"
             d.member d.cmd d.slot))

(* Integrity: each member decides each slot at most once. *)
let paxos_unique () =
  let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"paxos-unique" (fun violate d ->
      let key = (d.member, d.slot) in
      if Hashtbl.mem seen key then
        violate
          (Printf.sprintf "member %d decided slot %d twice" d.member d.slot)
      else Hashtbl.replace seen key ())

(* ---- Total-order broadcast monitors ------------------------------------

   Observations are [(member, deliver)] pairs from TOB Notify/delivery
   callbacks. *)

type tob_obs = int * Broadcast.Tob.deliver

let entry_id (e : Broadcast.Tob.entry) = (e.origin, e.id)

let pp_entry (e : Broadcast.Tob.entry) =
  Printf.sprintf "(origin=%d,id=%d)" e.origin e.id

(* Total order: all members that deliver sequence number [s] deliver the
   same message at [s] (uniform total order across the group). *)
let tob_total_order () =
  let at_seqno : (int, Broadcast.Tob.entry) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"tob-total-order" (fun violate ((m, d) : tob_obs) ->
      match Hashtbl.find_opt at_seqno d.seqno with
      | None -> Hashtbl.replace at_seqno d.seqno d.entry
      | Some prior ->
          if entry_id prior <> entry_id d.entry then
            violate
              (Printf.sprintf "seqno %d delivered as %s and as %s (member %d)"
                 d.seqno (pp_entry prior) (pp_entry d.entry) m))

(* Gap-freedom: each member's delivery sequence is 0, 1, 2, ... with no
   holes or reordering. *)
let tob_gap_free () =
  let next : (int, int) Hashtbl.t = Hashtbl.create 8 in
  make ~name:"tob-gap-free" (fun violate ((m, d) : tob_obs) ->
      let expect = Option.value (Hashtbl.find_opt next m) ~default:0 in
      if d.seqno <> expect then
        violate
          (Printf.sprintf "member %d delivered seqno %d, expected %d" m
             d.seqno expect)
      else Hashtbl.replace next m (expect + 1))

(* No duplication: no member delivers the same (origin, id) twice. *)
let tob_no_dup () =
  let seen : (int * (int * int), unit) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"tob-no-dup" (fun violate ((m, d) : tob_obs) ->
      let key = (m, entry_id d.entry) in
      if Hashtbl.mem seen key then
        violate
          (Printf.sprintf "member %d delivered %s twice" m (pp_entry d.entry))
      else Hashtbl.replace seen key ())

(* ---- Cross-shard 2PC monitors ------------------------------------------

   Observations come from the sharded cluster's [on_apply] hook: one per
   decision application at a participant replica, identifying the
   transaction (client, seq), the applying (shard, node), the decision
   direction and the keys it covered. *)

type xshard_obs = {
  xnode : int;  (* applying replica *)
  xshard : int;  (* its shard *)
  xclient : int;
  xseq : int;  (* the cross-shard xid *)
  xcommit : bool;
  xkeys : (string * int) list;  (* (table, row id) keys the decision covered *)
}

let pp_xid c s = Printf.sprintf "txn (client=%d,seq=%d)" c s

(* Atomicity: a cross-shard transaction is either committed everywhere
   or aborted everywhere — no (shard, node) may apply a decision
   direction different from any other observation of the same xid. This
   is exactly what breaks when the coordinator forgets a decision
   between informing the first and the last participant. *)
let xshard_atomicity () =
  let decided : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  make ~name:"xshard-atomicity" (fun violate (o : xshard_obs) ->
      match Hashtbl.find_opt decided (o.xclient, o.xseq) with
      | None -> Hashtbl.replace decided (o.xclient, o.xseq) o.xcommit
      | Some prior ->
          if prior <> o.xcommit then
            violate
              (Printf.sprintf
                 "%s applied as %s at shard %d (node %d) but %s elsewhere"
                 (pp_xid o.xclient o.xseq)
                 (if o.xcommit then "COMMIT" else "ABORT")
                 o.xshard o.xnode
                 (if prior then "COMMIT" else "ABORT")))

(* Conflict-serializability of committed cross-shard transactions: each
   node applies commits in some local order; two commits conflict when
   they share a key. Union the per-node conflict edges (a -> b iff a
   applied before b somewhere and they conflict) and require the graph
   acyclic — lock-based voting must order conflicting transactions the
   same way on every shard. *)
let xshard_serializable () =
  let order : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  (* per node, committed xids, most recent first *)
  let keys_of : (int * int, (string * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let edges : (int * int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let conflict a b =
    let ka = Option.value (Hashtbl.find_opt keys_of a) ~default:[] in
    let kb = Option.value (Hashtbl.find_opt keys_of b) ~default:[] in
    List.exists (fun k -> List.mem k kb) ka
  in
  let cycle_from start =
    (* DFS over the accumulated edge set *)
    let rec visit path seen v =
      if List.mem v path then true
      else if List.mem v seen then false
      else
        List.exists
          (fun w -> visit (v :: path) seen w)
          (Option.value (Hashtbl.find_opt edges v) ~default:[])
    in
    visit [] [] start
  in
  make ~name:"xshard-serializable" (fun violate (o : xshard_obs) ->
      if o.xcommit then begin
        let xid = (o.xclient, o.xseq) in
        let merge ks =
          let prior = Option.value (Hashtbl.find_opt keys_of xid) ~default:[] in
          Hashtbl.replace keys_of xid
            (List.sort_uniq compare (ks @ prior))
        in
        merge o.xkeys;
        let prior = Option.value (Hashtbl.find_opt order o.xnode) ~default:[] in
        if not (List.mem xid prior) then begin
          (* every earlier conflicting commit at this node precedes xid *)
          List.iter
            (fun earlier ->
              if earlier <> xid && conflict earlier xid then begin
                let outs =
                  Option.value (Hashtbl.find_opt edges earlier) ~default:[]
                in
                if not (List.mem xid outs) then
                  Hashtbl.replace edges earlier (xid :: outs)
              end)
            prior;
          Hashtbl.replace order o.xnode (xid :: prior);
          if cycle_from xid then
            violate
              (Printf.sprintf
                 "conflict cycle through %s: nodes apply conflicting \
                  cross-shard commits in different orders"
                 (pp_xid o.xclient o.xseq))
        end
      end)

(* ---- End-of-run checks --------------------------------------------------

   For ShadowDB state agreement and durability the interesting predicate
   is over final replica state, not individual deliveries; [finish_check]
   wraps such a predicate as a monitor that ignores observations. *)

let finish_check ~name f = make ~name ~finish:f (fun _ _ -> ())
