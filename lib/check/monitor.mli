(** Runtime invariant monitors.

    A monitor observes protocol events as the simulation executes and
    latches the first violation. {!finish} runs end-of-execution checks
    (state agreement, durability) once the schedule has drained.

    Each constructor names the paper proof obligation it checks; the
    mapping is tabulated in DESIGN.md. *)

type 'o t

val make :
  name:string ->
  ?finish:(unit -> string option) ->
  ((string -> unit) -> 'o -> unit) ->
  'o t
(** [make ~name obs] builds a monitor whose observer calls its first
    argument with a message to report a violation. After the first
    violation the monitor stops observing. *)

val name : _ t -> string
val observe : 'o t -> 'o -> unit
val finish : _ t -> unit
val violation : _ t -> string option
val first_violation : 'o t list -> (string * string) option

(** {1 Consensus (Paxos) monitors} — observations are decided log slots. *)

type decision = { member : int; slot : int; cmd : string }

val paxos_agreement : unit -> decision t
(** No two members decide different commands for the same slot. *)

val paxos_validity : proposed:(string, unit) Hashtbl.t -> decision t
(** Only commands present in [proposed] are ever decided. *)

val paxos_unique : unit -> decision t
(** Each member decides each slot at most once. *)

(** {1 Total-order broadcast monitors} — observations are
    [(member, deliver)] pairs. *)

type tob_obs = int * Broadcast.Tob.deliver

val tob_total_order : unit -> tob_obs t
(** Members that deliver a sequence number deliver the same message
    there. *)

val tob_gap_free : unit -> tob_obs t
(** Each member's delivery sequence is contiguous from 0. *)

val tob_no_dup : unit -> tob_obs t
(** No member delivers the same (origin, id) twice. *)

(** {1 Cross-shard 2PC monitors} — observations come from the sharded
    cluster's [on_apply] hook: one per decision application at a
    participant replica. *)

type xshard_obs = {
  xnode : int;  (** Applying replica. *)
  xshard : int;  (** Its shard. *)
  xclient : int;
  xseq : int;  (** The cross-shard transaction id. *)
  xcommit : bool;
  xkeys : (string * int) list;
      (** (table, row id) keys the decision covered. *)
}

val xshard_atomicity : unit -> xshard_obs t
(** A cross-shard transaction commits everywhere or aborts everywhere:
    no two observations of one xid may disagree on direction. *)

val xshard_serializable : unit -> xshard_obs t
(** Conflict-serializability of committed cross-shard transactions: the
    union over nodes of local apply-order edges between conflicting
    commits must be acyclic. *)

(** {1 End-of-run checks} *)

val finish_check : name:string -> (unit -> string option) -> 'o t
(** A monitor that ignores observations and evaluates [f] at the end of
    the run (ShadowDB state agreement / durability). *)
