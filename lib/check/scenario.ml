(* Scenario harness: a protocol instance packaged for the explorer.

   A scenario knows how to build a fresh world (protocol nodes, clients,
   monitors) from a seed and a scheduling strategy, and exposes the
   uniform control surface the explorer needs: single-stepping, the
   current decision depth, a state fingerprint, scenario-relative fault
   injection, and violation checks. Every schedule is a fresh run from
   scratch (stateless model checking), so [make] must be cheap. *)

type violation = { monitor : string; detail : string }

type running = {
  step : unit -> bool;  (* advance one event; false when drained/past horizon *)
  depth : unit -> int;  (* scheduling decisions taken so far *)
  decisions : unit -> int array;
  widths : unit -> int array;  (* branch width at each decision *)
  fingerprint : unit -> int;  (* digest of protocol + in-flight state *)
  events : unit -> int;
  apply_fault : Fault.op -> unit;  (* op with scenario-relative node indices *)
  check : unit -> violation option;  (* online monitors *)
  finalize : unit -> violation option;  (* end-of-run monitors *)
}

type t = {
  name : string;
  nodes : int;  (* protocol cluster size (fault indices range over it) *)
  make : seed:int -> sched:Sched.t -> running;
}

type outcome = {
  violation : violation option;
  depth : int;
  decisions : int array;
  widths : int array;
  fingerprint : int;
  events : int;
}

let run ?(faults = []) ?on_step t ~seed ~sched =
  let r = t.make ~seed ~sched in
  let pending =
    ref
      (List.sort (fun a b -> compare a.Fault.at_depth b.Fault.at_depth) faults)
  in
  let early = ref None in
  let continue_ = ref true in
  while !continue_ do
    let d = r.depth () in
    let rec inject () =
      match !pending with
      | { Fault.at_depth; op } :: rest when at_depth <= d ->
          pending := rest;
          r.apply_fault op;
          inject ()
      | _ -> ()
    in
    inject ();
    if not (r.step ()) then continue_ := false
    else begin
      (match on_step with Some f -> f r | None -> ());
      match r.check () with
      | Some v ->
          early := Some v;
          continue_ := false
      | None -> ()
    end
  done;
  let violation =
    match !early with Some v -> Some v | None -> r.finalize ()
  in
  {
    violation;
    depth = r.depth ();
    decisions = r.decisions ();
    widths = r.widths ();
    fingerprint = r.fingerprint ();
    events = r.events ();
  }
