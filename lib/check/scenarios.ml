(* Checkable scenarios over the repo's protocol stack.

   Each scenario builds a small fixed workload (a handful of commands /
   transactions) so that a single schedule runs in well under a second and
   thousands of schedules fit in a test budget. Network profiles are
   chosen so that protocol message cascades land within the scheduler's
   slack window, giving the explorer real choice points. *)

module Engine = Sim.Engine

(* Shared scaffolding -------------------------------------------------- *)

let running ~world ~sched ~step ~fingerprint ~apply_fault ~check ~finish =
  {
    Scenario.step;
    depth = (fun () -> Sched.depth sched);
    decisions = (fun () -> Sched.decisions sched);
    widths = (fun () -> Sched.widths sched);
    fingerprint;
    events = (fun () -> Engine.events_processed world);
    apply_fault;
    check;
    finalize =
      (fun () ->
        finish ();
        check ());
  }

let check_of monitors () =
  match Monitor.first_violation monitors with
  | Some (monitor, detail) -> Some { Scenario.monitor; detail }
  | None -> None

(* Map scenario-relative fault indices onto engine node ids, guarding
   against out-of-range indices and double crash/restart. *)
let fault_applier world ids op =
  let node i = if i >= 0 && i < Array.length ids then Some ids.(i) else None in
  match op with
  | Fault.Crash i ->
      Option.iter
        (fun n -> if Engine.is_alive world n then Engine.crash world n)
        (node i)
  | Fault.Restart i ->
      Option.iter
        (fun n -> if not (Engine.is_alive world n) then Engine.restart world n)
        (node i)
  | Fault.Partition (a, b) -> (
      match (node a, node b) with
      | Some a, Some b when a <> b -> Engine.partition world a b
      | _ -> ())
  | Fault.Heal (a, b) -> (
      match (node a, node b) with
      | Some a, Some b when a <> b -> Engine.heal world a b
      | _ -> ())

let bounded_step world ~horizon ~max_events ~done_ () =
  if
    Engine.now world > horizon
    || Engine.events_processed world >= max_events
    || done_ ()
  then false
  else Engine.step world

(* ---------------------------------------------------------------------- *)
(* Paxos: three co-located Synod members ordering four client commands.   *)
(* ---------------------------------------------------------------------- *)

type pax_wire = P_client of string | P_core of string Consensus.Paxos_msg.t

let paxos : Scenario.t =
  let nodes = 3 in
  let make ~seed ~sched =
    let world : pax_wire Engine.t = Engine.create ~seed () in
    Sched.install sched world;
    let cmds = [ "alpha"; "bravo"; "charlie"; "delta" ] in
    let proposed = Hashtbl.create 8 in
    List.iter (fun c -> Hashtbl.replace proposed c ()) cmds;
    let monitors =
      [
        Monitor.paxos_agreement ();
        Monitor.paxos_validity ~proposed;
        Monitor.paxos_unique ();
      ]
    in
    let states : string Consensus.Paxos.t option array = Array.make nodes None in
    (* Deep-hashing a member's consensus state is the expensive part of a
       fingerprint; between choice points at most a couple of members
       change, so cache each member's digest and re-hash lazily. *)
    let state_h = Array.make nodes 0 in
    let state_dirty = Array.make nodes true in
    let n_decided = ref 0 in
    let observe d =
      incr n_decided;
      List.iter (fun m -> Monitor.observe m d) monitors
    in
    let members = List.init nodes Fun.id in
    let member_ids =
      List.map
        (fun i ->
          Engine.spawn world ~name:(Printf.sprintf "pax%d" i) (fun () ->
              let st = ref None in
              fun ctx input ->
                let self = Engine.self ctx in
                let apply (t, acts) =
                  st := Some t;
                  states.(self) <- Some t;
                  state_dirty.(self) <- true;
                  List.iter
                    (function
                      | Consensus.Consensus_intf.Send (dst, m) ->
                          Engine.send ctx dst (P_core m)
                      | Consensus.Consensus_intf.Deliver { s; c } ->
                          observe { Monitor.member = self; slot = s; cmd = c }
                      | Consensus.Consensus_intf.Set_timer d ->
                          ignore (Engine.set_timer ctx d "core"))
                    acts
                in
                match input with
                | Engine.Init ->
                    apply
                      (Consensus.Paxos.start
                         (Consensus.Paxos.create ~self ~members));
                    (* Staggered liveness kicks: recover leadership after a
                       crash or partition without perturbing fault-free runs
                       (Paxos.tick only re-scouts when leaderless). *)
                    ignore
                      (Engine.set_timer ctx
                         (0.6 +. (0.2 *. float_of_int self))
                         "kick")
                | Engine.Recv { msg = P_core m; src } ->
                    Option.iter
                      (fun t -> apply (Consensus.Paxos.recv t ~src m))
                      !st
                | Engine.Recv { msg = P_client c; _ } ->
                    Option.iter
                      (fun t -> apply (Consensus.Paxos.propose t c))
                      !st
                | Engine.Timer { tag; _ } ->
                    Option.iter (fun t -> apply (Consensus.Paxos.tick t)) !st;
                    if tag = "kick" then
                      ignore (Engine.set_timer ctx 1.0 "kick")))
        members
    in
    let member_arr = Array.of_list member_ids in
    let _client =
      Engine.spawn world ~name:"client" (fun () ->
          fun ctx -> function
            | Engine.Init ->
                List.iteri
                  (fun i _ ->
                    ignore
                      (Engine.set_timer ctx
                         (0.05 *. float_of_int (i + 1))
                         (string_of_int i)))
                  cmds
            | Engine.Timer { tag; _ } ->
                let i = int_of_string tag in
                Engine.send ctx
                  member_arr.(i mod nodes)
                  (P_client (List.nth cmds i))
            | Engine.Recv _ -> ())
    in
    let fingerprint () =
      let h = ref Fingerprint.empty in
      for i = 0 to nodes - 1 do
        if state_dirty.(i) then begin
          state_h.(i) <- Fingerprint.value 0 states.(i);
          state_dirty.(i) <- false
        end;
        h := Fingerprint.int !h state_h.(i)
      done;
      Fingerprint.int !h (Engine.in_flight_fingerprint world)
    in
    let done_ () = !n_decided >= nodes * List.length cmds in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:3.0 ~max_events:5_000 ~done_)
      ~fingerprint
      ~apply_fault:(fault_applier world member_arr)
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name = "paxos"; nodes; make }

(* ---------------------------------------------------------------------- *)
(* TOB: the verified broadcast service (over Paxos) with two closed-loop  *)
(* clients; an observer taps every member's delivery notifications.       *)
(* ---------------------------------------------------------------------- *)

module Sh = Broadcast.Shell.Make (Consensus.Paxos)

type tob_wire = T_svc of Sh.T.msg | T_note of Broadcast.Tob.deliver

(* [window] is the broadcast service's consensus pipelining window; the
   w2/w4 variants check that the total-order monitors still hold when
   members keep several batches in flight through consensus at once. *)
let tob_scenario ~name ~window : Scenario.t =
  let nodes = 3 in
  let n_clients = 2 and per_client = 3 in
  let total = n_clients * per_client in
  let make ~seed ~sched =
    let world : tob_wire Engine.t = Engine.create ~seed () in
    Sched.install sched world;
    let monitors =
      [
        Monitor.tob_total_order ();
        Monitor.tob_gap_free ();
        Monitor.tob_no_dup ();
      ]
    in
    (* Order-independent running digest of all observations: fingerprints
       are taken at every choice point, so they must not re-walk the
       observation history (Fingerprint.unordered over a sum is O(1) to
       maintain per observation). *)
    let obs_digest = ref 0 in
    let delivered_by : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let subs = ref [] in
    let members =
      Sh.spawn ~window ~world:(Runtime.Of_sim.of_engine world)
        ~inj:(fun m -> T_svc m)
        ~prj:(function T_svc m -> Some m | T_note _ -> None)
        ~inj_notify:(fun d -> T_note d)
        ~n:nodes
        ~subscribers:(fun () -> !subs)
        ()
    in
    let member_arr = Array.of_list members in
    let observer =
      Engine.spawn world ~name:"observer" (fun () ->
          fun _ctx -> function
            | Engine.Recv { src; msg = T_note d } ->
                let e = d.Broadcast.Tob.entry in
                obs_digest :=
                  (!obs_digest
                  + Hashtbl.hash
                      (src, d.Broadcast.Tob.seqno, e.Broadcast.Tob.origin, e.id)
                  )
                  land max_int;
                Hashtbl.replace delivered_by src
                  (1 + Option.value (Hashtbl.find_opt delivered_by src) ~default:0);
                List.iter (fun m -> Monitor.observe m (src, d)) monitors
            | _ -> ())
    in
    let clients =
      List.init n_clients (fun c ->
          Engine.spawn world ~name:(Printf.sprintf "cli%d" c) (fun () ->
              let seq = ref 0 in
              let contact = ref c in
              let timer = ref (-1) in
              let submit ctx =
                if !seq < per_client then begin
                  let e =
                    {
                      Broadcast.Tob.origin = Engine.self ctx;
                      id = !seq;
                      payload = Printf.sprintf "c%d-%d" c !seq;
                    }
                  in
                  Engine.send ctx
                    member_arr.(!contact mod nodes)
                    (T_svc (Sh.T.Broadcast e));
                  timer := Engine.set_timer ctx 1.0 "retry"
                end
              in
              fun ctx -> function
                | Engine.Init -> submit ctx
                | Engine.Recv { msg = T_note d; _ } ->
                    let e = d.Broadcast.Tob.entry in
                    if e.Broadcast.Tob.origin = Engine.self ctx && e.id = !seq
                    then begin
                      Engine.cancel_timer ctx !timer;
                      incr seq;
                      submit ctx
                    end
                | Engine.Recv _ -> ()
                | Engine.Timer _ ->
                    (* Resend the same entry to the next member; dedup by
                       (origin, id) keeps delivery exactly-once. *)
                    incr contact;
                    submit ctx))
    in
    subs := observer :: clients;
    let fingerprint () =
      Fingerprint.int
        (Fingerprint.int Fingerprint.empty !obs_digest)
        (Engine.in_flight_fingerprint world)
    in
    let done_ () =
      List.exists (Engine.is_alive world) members
      && List.for_all
           (fun m ->
             (not (Engine.is_alive world m))
             || Option.value (Hashtbl.find_opt delivered_by m) ~default:0
                >= total)
           members
    in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:30.0 ~max_events:50_000 ~done_)
      ~fingerprint
      ~apply_fault:(fault_applier world member_arr)
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name = name; nodes; make }

let tob = tob_scenario ~name:"tob" ~window:1
let tob_w2 = tob_scenario ~name:"tob-w2" ~window:2
let tob_w4 = tob_scenario ~name:"tob-w4" ~window:4

(* ---------------------------------------------------------------------- *)
(* ShadowDB primary-backup and SMR clusters running the bank workload.    *)
(* Monitors here are end-of-run checks over replica state: agreement      *)
(* (within the latest configuration, equal execution counts imply equal   *)
(* content hashes across diverse backends) and durability (every          *)
(* transaction acknowledged to a client survives in the latest            *)
(* configuration).                                                        *)
(* ---------------------------------------------------------------------- *)

module Sdb = Shadowdb.System.Make (Consensus.Paxos)

let bank_rows = 32

let fast_tun =
  {
    Shadowdb.System.default_tuning with
    hb_interval = 0.05;
    detect_timeout = 0.4;
  }

(* Deterministic per (client, seq): retries resend the same transaction. *)
let make_deposit ~client ~seq =
  let account = abs (Hashtbl.hash (client, seq)) mod bank_rows in
  Workload.Bank.deposit ~account ~amount:1

let db_scenario ~name ~spawn ~replicas_of ~cfg_of ~gseq_of ~hash_of
    ~executes nodes : Scenario.t =
  let n_clients = 2 and per_client = 3 in
  let total = n_clients * per_client in
  let make ~seed ~sched =
    let world : Sdb.wire Engine.t = Engine.create ~seed () in
    Sched.install sched world;
    let rworld = Runtime.Of_sim.of_engine world in
    let cluster = spawn rworld in
    let replicas = replicas_of cluster in
    let replica_arr = Array.of_list replicas in
    let commits = ref 0 in
    let _, completed =
      Sdb.spawn_clients ~world:rworld ~target:(cluster : Sdb.client_target) ~n:n_clients
        ~count:per_client ~make_txn:make_deposit ~retry_timeout:1.0
        ~on_commit:(fun _ _ -> incr commits)
        ()
    in
    (* Replicas eligible for end-state checks: alive and at the highest
       configuration seqno any live replica reached (a deposed primary or
       an unsynced spare legitimately lags). *)
    let current () =
      let alive = List.filter (Engine.is_alive world) replicas in
      let maxcfg =
        List.fold_left (fun acc l -> max acc (cfg_of cluster l)) (-1) alive
      in
      List.filter (fun l -> cfg_of cluster l = maxcfg) alive
    in
    let agreement : unit Monitor.t =
      Monitor.finish_check ~name:(name ^ "-state-agreement") (fun () ->
          let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
          List.fold_left
            (fun viol l ->
              match viol with
              | Some _ -> viol
              | None -> (
                  if not (executes cluster l) then None
                  else
                    let g = gseq_of cluster l and h = hash_of cluster l in
                    match Hashtbl.find_opt tbl g with
                    | Some (l0, h0) when h0 <> h ->
                        Some
                          (Printf.sprintf
                             "replicas %d and %d executed %d transactions \
                              but their databases differ"
                             l0 l g)
                    | Some _ -> None
                    | None ->
                        Hashtbl.replace tbl g (l, h);
                        None))
            None (current ()))
    in
    let durability : unit Monitor.t =
      Monitor.finish_check ~name:(name ^ "-durability") (fun () ->
          match current () with
          | [] -> None (* whole latest configuration down: nothing to say *)
          | cur ->
              let maxg =
                List.fold_left (fun acc l -> max acc (gseq_of cluster l)) 0 cur
              in
              if maxg < !commits then
                Some
                  (Printf.sprintf
                     "%d transactions acknowledged to clients but the \
                      latest configuration only executed %d"
                     !commits maxg)
              else None)
    in
    let monitors = [ agreement; durability ] in
    let done_at = ref nan in
    let done_ () =
      if completed () >= n_clients && Float.is_nan !done_at then
        done_at := Engine.now world;
      (not (Float.is_nan !done_at)) && Engine.now world > !done_at +. 2.0
    in
    ignore total;
    let fingerprint () =
      let h =
        List.fold_left
          (fun h l ->
            Fingerprint.int
              (Fingerprint.int h (gseq_of cluster l))
              (hash_of cluster l))
          (Fingerprint.int Fingerprint.empty !commits)
          replicas
      in
      Fingerprint.int h (Engine.in_flight_fingerprint world)
    in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:20.0 ~max_events:300_000 ~done_)
      ~fingerprint
      ~apply_fault:(fault_applier world replica_arr)
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name; nodes; make }

let pbr : Scenario.t =
  db_scenario ~name:"pbr"
    ~spawn:(fun world ->
      Sdb.To_pbr
        (Sdb.spawn_pbr ~tun:fast_tun ~world ~registry:Workload.Bank.registry
           ~setup:(Workload.Bank.setup ~rows:bank_rows)
           ~n_active:2 ~n_spare:1 ()))
    ~replicas_of:(function
      | Sdb.To_pbr c -> c.Sdb.pbr_replicas
      | Sdb.To_smr _ | Sdb.To_sharded _ -> [])
    ~cfg_of:(function
      | Sdb.To_pbr c -> c.Sdb.pbr_cfg_of
      | Sdb.To_smr _ | Sdb.To_sharded _ -> fun _ -> -1)
    ~gseq_of:(function
      | Sdb.To_pbr c -> c.Sdb.pbr_gseq_of
      | Sdb.To_smr _ | Sdb.To_sharded _ -> fun _ -> 0)
    ~hash_of:(function
      | Sdb.To_pbr c -> c.Sdb.pbr_hash_of
      | Sdb.To_smr _ | Sdb.To_sharded _ -> fun _ -> 0)
    ~executes:(fun _ _ -> true)
    3

let smr_scenario ~name ~window : Scenario.t =
  db_scenario ~name
    ~spawn:(fun world ->
      Sdb.To_smr
        (Sdb.spawn_smr ~tun:fast_tun ~tob_window:window ~world
           ~registry:Workload.Bank.registry
           ~setup:(Workload.Bank.setup ~rows:bank_rows)
           ~n_active:2 ()))
    ~replicas_of:(function
      | Sdb.To_smr c -> c.Sdb.smr_nodes
      | Sdb.To_pbr _ | Sdb.To_sharded _ -> [])
    ~cfg_of:(function
      | Sdb.To_smr c -> c.Sdb.smr_cfg_of
      | Sdb.To_pbr _ | Sdb.To_sharded _ -> fun _ -> -1)
    ~gseq_of:(function
      | Sdb.To_smr c -> c.Sdb.smr_gseq_of
      | Sdb.To_pbr _ | Sdb.To_sharded _ -> fun _ -> 0)
    ~hash_of:(function
      | Sdb.To_smr c -> c.Sdb.smr_hash_of
      | Sdb.To_pbr _ | Sdb.To_sharded _ -> fun _ -> 0)
    ~executes:(fun cluster l ->
      match cluster with
      | Sdb.To_smr c -> c.Sdb.smr_active_of l
      | Sdb.To_pbr _ | Sdb.To_sharded _ -> false)
    3

let smr = smr_scenario ~name:"smr" ~window:1
let smr_w2 = smr_scenario ~name:"smr-w2" ~window:2
let smr_w4 = smr_scenario ~name:"smr-w4" ~window:4

(* ---------------------------------------------------------------------- *)
(* Durable SMR: the [smr] cluster and workload, plus a write-ahead log    *)
(* and snapshots on the deterministic in-memory backend. A crash fault    *)
(* tears the victim's unsynced write cache at a random byte boundary      *)
(* before the engine kills it; a restart runs the real recovery path      *)
(* (snapshot install + torn-tail truncation + WAL replay) on the node's   *)
(* first event back. Two monitors check the recovery contract:           *)
(* no-committed-loss (recovery reaches every position the crash left      *)
(* durable) and recovery-agreement (the recovered state fingerprint       *)
(* matches the logged one, and any other durable image retaining that     *)
(* total-order position agrees).                                          *)
(* ---------------------------------------------------------------------- *)

let durable_scenario ~name ~(policy : Durable.Manager.policy) : Scenario.t =
  let nodes = 3 in
  let n_clients = 2 and per_client = 3 in
  let make ~seed ~sched =
    let world : Sdb.wire Engine.t = Engine.create ~seed () in
    Sched.install sched world;
    let rworld = Runtime.Of_sim.of_engine world in
    let mems = Array.init nodes (fun _ -> Durable.Backend.mem_create ()) in
    let torn_rng = Sim.Prng.create ((seed * 7919) + 11) in
    (* Per node: the latest recovery observation (report + state
       fingerprint at recovery time), how many recoveries ran, and — set
       at fault-injection time — the durable position the crash left
       behind, which recovery must reach again. *)
    let recovered = Array.make nodes None in
    let recovers = Array.make nodes 0 in
    let restarted = Array.make nodes false in
    let restart_marker = Array.make nodes 0 in
    let expected_durable = Array.make nodes (-1) in
    let durability =
      {
        Sdb.dur_backend = (fun i -> Durable.Backend.mem_backend mems.(i));
        dur_policy = (fun _ -> policy);
        dur_on_recover =
          (fun i report ~state_hash ->
            recovered.(i) <- Some (report, state_hash);
            recovers.(i) <- recovers.(i) + 1);
      }
    in
    let cluster =
      Sdb.spawn_smr ~tun:fast_tun ~durability ~world:rworld
        ~registry:Workload.Bank.registry
        ~setup:(Workload.Bank.setup ~rows:bank_rows)
        ~n_active:2 ()
    in
    let replicas = cluster.Sdb.smr_nodes in
    let replica_arr = Array.of_list replicas in
    let commits = ref 0 in
    let _, completed =
      Sdb.spawn_clients ~world:rworld ~target:(Sdb.To_smr cluster)
        ~n:n_clients ~count:per_client ~make_txn:make_deposit
        ~retry_timeout:1.0
        ~on_commit:(fun _ _ -> incr commits)
        ()
    in
    let durable_image i =
      Durable.Manager.inspect
        ~snap:(Durable.Backend.mem_durable_snap mems.(i))
        ~log:(Durable.Backend.mem_durable_log mems.(i))
    in
    let apply_fault op =
      (match op with
      | Fault.Crash i when i >= 0 && i < nodes ->
          if Engine.is_alive world replica_arr.(i) then begin
            Durable.Backend.mem_crash ~keep:(Sim.Prng.int torn_rng 5) mems.(i);
            expected_durable.(i) <-
              (durable_image i).Durable.Manager.i_durable_idx
          end
      | Fault.Restart i when i >= 0 && i < nodes ->
          if not (Engine.is_alive world replica_arr.(i)) then begin
            restarted.(i) <- true;
            restart_marker.(i) <- recovers.(i)
          end
      | _ -> ());
      fault_applier world replica_arr op
    in
    (* Latest recovery observation for node [i], provided a recovery
       actually ran after its restart (the restarted node's Init may
       still be queued when the run ends). *)
    let judge i k =
      if restarted.(i) && recovers.(i) > restart_marker.(i) then
        match recovered.(i) with Some o -> k o | None -> None
      else None
    in
    let each_node k =
      let rec go i =
        if i >= nodes then None
        else match k i with Some v -> Some v | None -> go (i + 1)
      in
      go 0
    in
    let no_loss : unit Monitor.t =
      Monitor.finish_check ~name:(name ^ "-no-committed-loss") (fun () ->
          each_node (fun i ->
              judge i (fun ((rep : Durable.Manager.report), _) ->
                  if rep.Durable.Manager.recovered_idx < expected_durable.(i)
                  then
                    Some
                      (Printf.sprintf
                         "node %d: the crash left records durable up to \
                          total-order position %d but recovery only reached \
                          %d (snapshot %s, %d records replayed, %d stale)"
                         i expected_durable.(i)
                         rep.Durable.Manager.recovered_idx
                         (if rep.Durable.Manager.snapshot_valid then "valid"
                          else "absent")
                         rep.Durable.Manager.wal_replayed
                         rep.Durable.Manager.wal_stale)
                  else None)))
    in
    let recovery_agreement : unit Monitor.t =
      Monitor.finish_check ~name:(name ^ "-recovery-agreement") (fun () ->
          each_node (fun i ->
              judge i (fun ((rep : Durable.Manager.report), state_hash) ->
                  let ridx = rep.Durable.Manager.recovered_idx in
                  if ridx < 0 then None
                  else if state_hash <> rep.Durable.Manager.recovered_hash
                  then
                    Some
                      (Printf.sprintf
                         "node %d: recovered state fingerprint %d differs \
                          from the logged fingerprint %d at position %d"
                         i state_hash rep.Durable.Manager.recovered_hash ridx)
                  else
                    (* Any other durable image retaining position [ridx]
                       must agree on its state fingerprint (all replicas
                       run the same backend kind, so fingerprints are
                       comparable). *)
                    each_node (fun j ->
                        if j = i then None
                        else
                          match
                            Durable.Manager.hash_at (durable_image j) ridx
                          with
                          | Some h
                            when h <> rep.Durable.Manager.recovered_hash ->
                              Some
                                (Printf.sprintf
                                   "nodes %d and %d disagree on the state \
                                    fingerprint at total-order position %d"
                                   i j ridx)
                          | _ -> None))))
    in
    let monitors = [ no_loss; recovery_agreement ] in
    let done_at = ref nan in
    let done_ () =
      if completed () >= n_clients && Float.is_nan !done_at then
        done_at := Engine.now world;
      (not (Float.is_nan !done_at)) && Engine.now world > !done_at +. 2.0
    in
    let fingerprint () =
      let h =
        List.fold_left
          (fun h l ->
            Fingerprint.int
              (Fingerprint.int h (cluster.Sdb.smr_gseq_of l))
              (cluster.Sdb.smr_hash_of l))
          (Fingerprint.int Fingerprint.empty !commits)
          replicas
      in
      let h =
        Array.fold_left
          (fun h m ->
            Fingerprint.int h
              (Hashtbl.hash
                 ( Durable.Backend.mem_durable_log m,
                   Durable.Backend.mem_durable_snap m )))
          h mems
      in
      Fingerprint.int h (Engine.in_flight_fingerprint world)
    in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:20.0 ~max_events:300_000 ~done_)
      ~fingerprint ~apply_fault
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name; nodes; make }

let smr_durable =
  durable_scenario ~name:"smr-durable"
    ~policy:
      { Durable.Manager.group_commit = 2; snapshot_every = 4; replay_tail = true }

(* Deliberately-broken fixture: per-commit sync but no WAL replay on
   recovery — committed transactions past the (absent) snapshot are
   silently dropped, which the no-committed-loss monitor must catch. *)
let smr_noreplay =
  durable_scenario ~name:"smr-noreplay"
    ~policy:
      {
        Durable.Manager.group_commit = 1;
        snapshot_every = 0;
        replay_tail = false;
      }

(* ---------------------------------------------------------------------- *)
(* Sharded ShadowDB: two 3-replica SMR shards, each with its own TOB,    *)
(* plus the 2PC coordinator; a transfers-only bank workload where about  *)
(* half the transfers span both shards. Shard replicas are crash-durable *)
(* (in-memory WAL, torn on crash like the durable scenario) so the       *)
(* random crash-and-recover fault plans may pick any of the 7 nodes —    *)
(* coordinator included. The cross-shard monitors check atomicity (one   *)
(* decision direction per transaction, everywhere) and conflict-         *)
(* serializability; finish checks add per-shard state agreement and,     *)
(* once every decided commit has reached the freshest replica of every   *)
(* participant shard, global conservation of money.                      *)
(*                                                                       *)
(* [sharded-nopersist] is the same system with the coordinator's         *)
(* decision journal deliberately dropped ("2PC without prepare/decision  *)
(* persistence"): a coordinator crash between informing the first and    *)
(* the last participant of a commit forgets the decision, the still-     *)
(* staged participant times out into a presumed abort, and the atomicity *)
(* monitor fires — the counterexample the checker must find and shrink.  *)
(* ---------------------------------------------------------------------- *)

let shard_count = 2
let shard_replicas = 3

(* Deterministic per (client, seq); src <> dst always, and with 32 rows
   over 2 shards roughly half the transfers cross shards. *)
let make_transfer ~client ~seq =
  let h0 = abs (Hashtbl.hash (client, seq, 0)) in
  let h1 = abs (Hashtbl.hash (client, seq, 1)) in
  let src = h0 mod bank_rows in
  let dst = (src + 1 + (h1 mod (bank_rows - 1))) mod bank_rows in
  Workload.Bank.transfer ~src ~dst ~amount:1

let sharded_scenario ~name ~coord_journal : Scenario.t =
  let nodes = 1 + (shard_count * shard_replicas) in
  let n_clients = 2 and per_client = 3 in
  let router = Workload.Bank.router ~shards:shard_count in
  let make ~seed ~sched =
    let world : Sdb.wire Engine.t = Engine.create ~seed () in
    Sched.install sched world;
    let rworld = Runtime.Of_sim.of_engine world in
    let mems =
      Array.init (shard_count * shard_replicas) (fun _ ->
          Durable.Backend.mem_create ())
    in
    let torn_rng = Sim.Prng.create ((seed * 7919) + 13) in
    let atomicity = Monitor.xshard_atomicity () in
    let serializable = Monitor.xshard_serializable () in
    (* (client, seq, shard, node) -> the decision reached this replica.
       Cleared when the node crashes; WAL replay re-fires on_apply during
       recovery, so the set tracks the *current incarnation*. *)
    let applied_obs : (int * int * int * int, unit) Hashtbl.t =
      Hashtbl.create 64
    in
    (* (client, seq) -> latest coordinator decision direction *)
    let decided_tbl : (int * int, bool) Hashtbl.t = Hashtbl.create 32 in
    let on_apply ~shard ~node ~client ~seq ~commit ~keys =
      let obs =
        {
          Monitor.xnode = node;
          xshard = shard;
          xclient = client;
          xseq = seq;
          xcommit = commit;
          xkeys =
            List.map
              (fun (k : Shadowdb.Shard.key) -> (k.Shadowdb.Shard.table, k.Shadowdb.Shard.id))
              keys;
        }
      in
      Monitor.observe atomicity obs;
      Monitor.observe serializable obs;
      Hashtbl.replace applied_obs (client, seq, shard, node) ()
    in
    let on_decide ~client ~seq ~commit =
      Hashtbl.replace decided_tbl (client, seq) commit
    in
    (* Per-shard durability: shard [s]'s replica [i] gets backend
       [mems.(s*3 + i)]. *)
    let durability s =
      Some
        {
          Sdb.dur_backend =
            (fun i -> Durable.Backend.mem_backend mems.((s * shard_replicas) + i));
          dur_policy =
            (fun _ ->
              {
                Durable.Manager.group_commit = 1;
                snapshot_every = 0;
                replay_tail = true;
              });
          dur_on_recover = (fun _ _ ~state_hash:_ -> ());
        }
    in
    let cluster =
      Sdb.spawn_sharded ~tun:fast_tun ~durability ~coord_journal
        ~pending_timeout:0.9 ~pump_interval:0.25 ~on_apply ~on_decide
        ~world:rworld ~registry:Workload.Bank.registry
        ~setup:(fun s db ->
          Workload.Bank.setup_shard ~rows:bank_rows ~shards:shard_count s db)
        ~router ()
    in
    let fault_surface = Array.of_list cluster.Sdb.sh_nodes in
    let commits = ref 0 in
    let _, completed =
      Sdb.spawn_clients ~world:rworld ~target:(Sdb.To_sharded cluster)
        ~n:n_clients ~count:per_client ~make_txn:make_transfer
        ~retry_timeout:1.0
        ~on_commit:(fun _ _ -> incr commits)
        ()
    in
    let apply_fault op =
      (match op with
      | Fault.Crash i when i >= 0 && i < nodes ->
          if Engine.is_alive world fault_surface.(i) then begin
            (* Shard replicas (indices 1..) lose their unsynced write
               cache at a random byte boundary, like the durable
               scenario; the coordinator (index 0) holds its journal on
               modelled stable storage. *)
            if i >= 1 then
              Durable.Backend.mem_crash
                ~keep:(Sim.Prng.int torn_rng 5)
                mems.(i - 1);
            (* Drop the crashed incarnation's apply observations; WAL
               replay re-records whatever recovery reconstructs. *)
            let node = fault_surface.(i) in
            let stale =
              Hashtbl.fold
                (fun ((_, _, _, n) as k) () acc ->
                  if n = node then k :: acc else acc)
                applied_obs []
            in
            List.iter (Hashtbl.remove applied_obs) stale
          end
      | _ -> ());
      fault_applier world fault_surface op
    in
    (* Freshest alive replica of each shard (max delivered prefix):
       per-shard total order makes its state a superset of any other
       alive replica's. *)
    let chosen_of (g : Sdb.smr_cluster) =
      let alive = List.filter (Engine.is_alive world) g.Sdb.smr_nodes in
      List.fold_left
        (fun best l ->
          match best with
          | None -> Some l
          | Some b ->
              if g.Sdb.smr_gseq_of l > g.Sdb.smr_gseq_of b then Some l
              else best)
        None alive
    in
    let agreement : Monitor.xshard_obs Monitor.t =
      Monitor.finish_check ~name:(name ^ "-state-agreement") (fun () ->
          Array.fold_left
            (fun viol (g : Sdb.smr_cluster) ->
              match viol with
              | Some _ -> viol
              | None ->
                  let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
                  List.fold_left
                    (fun viol l ->
                      match viol with
                      | Some _ -> viol
                      | None -> (
                          if not (Engine.is_alive world l) then None
                          else
                            let gq = g.Sdb.smr_gseq_of l in
                            let h = g.Sdb.smr_hash_of l in
                            match Hashtbl.find_opt tbl gq with
                            | Some (l0, h0) when h0 <> h ->
                                Some
                                  (Printf.sprintf
                                     "shard replicas %d and %d delivered %d \
                                      entries but their databases differ"
                                     l0 l gq)
                            | Some _ -> None
                            | None ->
                                Hashtbl.replace tbl gq (l, h);
                                None))
                    None g.Sdb.smr_nodes)
            None cluster.Sdb.sh_groups)
    in
    let conservation : Monitor.xshard_obs Monitor.t =
      Monitor.finish_check ~name:(name ^ "-conservation") (fun () ->
          let chosen = Array.map chosen_of cluster.Sdb.sh_groups in
          let chosen_node s =
            match chosen.(s) with
            | Some n -> n
            | None ->
                Sim.Invariant.fail "scenario" "no chosen replica for shard %d" s
          in
          if Array.exists Option.is_none chosen then None
          else
            (* Quiescent iff every decided COMMIT has reached the chosen
               replica of every participant shard (participants recomputed
               by re-routing the deterministic workload); a half-applied
               transfer legitimately unbalances the books. Aborts and
               single-shard transfers never move money across shards. *)
            let quiescent =
              Hashtbl.fold
                (fun (client, seq) commit ok ->
                  ok
                  && ((not commit)
                     ||
                     let kind, params = make_transfer ~client ~seq in
                     let txn =
                       { Shadowdb.Txn.client; seq; kind; params }
                     in
                     match Shadowdb.Shard.route router txn with
                     | Shadowdb.Shard.Local _ -> true
                     | Shadowdb.Shard.Distributed parts ->
                         List.for_all
                           (fun (s, _) ->
                             Hashtbl.mem applied_obs
                               (client, seq, s, chosen_node s))
                           parts))
                decided_tbl true
            in
            if not quiescent then None
            else
              let total =
                Array.fold_left
                  (fun acc (i, g) ->
                    ignore i;
                    acc
                    + (g : Sdb.smr_cluster).Sdb.smr_db_view
                        (chosen_node i)
                        Workload.Bank.total_balance ~default:0)
                  0
                  (Array.mapi (fun i g -> (i, g)) cluster.Sdb.sh_groups)
              in
              let expect = bank_rows * 100 in
              if total <> expect then
                Some
                  (Printf.sprintf
                     "money not conserved: freshest replicas sum to %d, \
                      expected %d"
                     total expect)
              else None)
    in
    let monitors =
      [
        atomicity;
        serializable;
        conservation;
        agreement;
      ]
    in
    let done_at = ref nan in
    let done_ () =
      if completed () >= n_clients && Float.is_nan !done_at then
        done_at := Engine.now world;
      (* Long drain: a coordinator crash-recovery resolves stuck
         participants via vote resend + pending timeout + decision pump —
         about 2.5 s of timer traffic after the restart. The drain must
         outlive it or the divergence the broken fixture plants would
         never be observed. *)
      (not (Float.is_nan !done_at)) && Engine.now world > !done_at +. 6.0
    in
    let fingerprint () =
      let h =
        Array.fold_left
          (fun h (g : Sdb.smr_cluster) ->
            List.fold_left
              (fun h l ->
                Fingerprint.int
                  (Fingerprint.int h (g.Sdb.smr_gseq_of l))
                  (g.Sdb.smr_hash_of l))
              h g.Sdb.smr_nodes)
          (Fingerprint.int Fingerprint.empty !commits)
          cluster.Sdb.sh_groups
      in
      let h = Fingerprint.int h (cluster.Sdb.sh_committed ()) in
      let h = Fingerprint.int h (cluster.Sdb.sh_aborted ()) in
      Fingerprint.int h (Engine.in_flight_fingerprint world)
    in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:20.0 ~max_events:400_000 ~done_)
      ~fingerprint ~apply_fault
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name; nodes; make }

let sharded = sharded_scenario ~name:"sharded" ~coord_journal:true

(* Deliberately-broken fixture: the coordinator forgets its decisions on
   crash. Clean fault-free; diverges under crash-and-recover plans. *)
let sharded_nopersist =
  sharded_scenario ~name:"sharded-nopersist" ~coord_journal:false

(* ---------------------------------------------------------------------- *)
(* Buggy: a deliberately broken "broadcast" (clients send to each member  *)
(* individually; members deliver in arrival order, so there is no total   *)
(* order). Correct under the default FIFO schedule of this workload, it   *)
(* violates total order only when the scheduler reorders concurrent       *)
(* arrivals — the counterexample pipeline's test double.                  *)
(* ---------------------------------------------------------------------- *)

type buggy_wire = B_submit of Broadcast.Tob.entry

let buggy : Scenario.t =
  let nodes = 2 in
  let n_clients = 2 in
  let make ~seed ~sched =
    let net = { Sim.Net.local with jitter = 0.0 } in
    let world : buggy_wire Engine.t = Engine.create ~seed ~net () in
    Sched.install sched world;
    let monitors = [ Monitor.tob_total_order () ] in
    let n_obs = ref 0 in
    let obs_digest = ref 0 in
    let member_ids =
      List.init nodes (fun i ->
          Engine.spawn world ~name:(Printf.sprintf "mem%d" i) (fun () ->
              let counter = ref 0 in
              fun ctx -> function
                | Engine.Recv { msg = B_submit e; _ } ->
                    let d =
                      { Broadcast.Tob.seqno = !counter; entry = e }
                    in
                    incr counter;
                    incr n_obs;
                    obs_digest :=
                      (!obs_digest
                      + Hashtbl.hash (Engine.self ctx, d.Broadcast.Tob.seqno))
                      land max_int;
                    List.iter
                      (fun m -> Monitor.observe m (Engine.self ctx, d))
                      monitors
                | _ -> ()))
    in
    let member_arr = Array.of_list member_ids in
    let _clients =
      List.init n_clients (fun c ->
          Engine.spawn world ~name:(Printf.sprintf "bcli%d" c) (fun () ->
              fun ctx -> function
                | Engine.Init ->
                    let e =
                      {
                        Broadcast.Tob.origin = Engine.self ctx;
                        id = 0;
                        payload = Printf.sprintf "b%d" c;
                      }
                    in
                    List.iter
                      (fun m -> Engine.send ctx m (B_submit e))
                      member_ids
                | _ -> ()))
    in
    let fingerprint () =
      Fingerprint.int
        (Fingerprint.int Fingerprint.empty !obs_digest)
        (Engine.in_flight_fingerprint world)
    in
    let done_ () = !n_obs >= nodes * n_clients in
    running ~world ~sched
      ~step:(bounded_step world ~horizon:1.0 ~max_events:200 ~done_)
      ~fingerprint
      ~apply_fault:(fault_applier world member_arr)
      ~check:(check_of monitors)
      ~finish:(fun () -> List.iter Monitor.finish monitors)
  in
  { Scenario.name = "buggy"; nodes; make }

(* ---------------------------------------------------------------------- *)

let all =
  [
    paxos;
    tob;
    tob_w2;
    tob_w4;
    pbr;
    smr;
    smr_w2;
    smr_w4;
    smr_durable;
    smr_noreplay;
    sharded;
    sharded_nopersist;
    buggy;
  ]
let find name = List.find_opt (fun s -> s.Scenario.name = name) all
let names = List.map (fun s -> s.Scenario.name) all
