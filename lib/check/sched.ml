(* Scheduling strategies for Sim.Engine's scheduler hook.

   A strategy is replayable: every choice it makes is recorded together
   with the number of candidates it chose among (the branch width), so an
   execution can be reproduced exactly by replaying the decision list, and
   DFS can enumerate sibling schedules from the recorded widths. *)

type kind =
  | Random of Sim.Prng.t  (* seeded random walk *)
  | Fixed of int array  (* forced prefix; past the end, default order *)

type t = {
  kind : kind;
  slack : float;
  width : int;
  mutable depth : int;  (* number of choice points hit so far *)
  mutable decisions_rev : int list;
  mutable widths_rev : int list;
}

let default_slack = 2e-4
let default_width = 6

let make ?(slack = default_slack) ?(width = default_width) kind =
  { kind; slack; width; depth = 0; decisions_rev = []; widths_rev = [] }

let random ?slack ?width seed = make ?slack ?width (Random (Sim.Prng.create seed))
let fixed ?slack ?width prefix = make ?slack ?width (Fixed prefix)

let choose t n =
  let c =
    match t.kind with
    | Random rng -> Sim.Prng.int rng n
    | Fixed prefix -> if t.depth < Array.length prefix then prefix.(t.depth) else 0
  in
  let c = if c < 0 || c >= n then 0 else c in
  t.decisions_rev <- c :: t.decisions_rev;
  t.widths_rev <- n :: t.widths_rev;
  t.depth <- t.depth + 1;
  c

let depth t = t.depth
let decisions t = Array.of_list (List.rev t.decisions_rev)
let widths t = Array.of_list (List.rev t.widths_rev)

let install t world =
  Sim.Engine.set_scheduler world ~slack:t.slack ~width:t.width (fun cands ->
      choose t (Array.length cands))
