(** Replayable scheduling strategies for the engine's scheduler hook.

    A strategy records every choice it makes along with the branch width
    at that point, so schedules can be replayed exactly ({!fixed}) and DFS
    can enumerate siblings from the recorded widths. *)

type kind =
  | Random of Sim.Prng.t  (** Seeded random walk over enabled events. *)
  | Fixed of int array
      (** Forced decision prefix; beyond the prefix (or when a recorded
          choice exceeds the branch width) the default order is taken. *)

type t

val default_slack : float
val default_width : int

val make : ?slack:float -> ?width:int -> kind -> t
val random : ?slack:float -> ?width:int -> int -> t
val fixed : ?slack:float -> ?width:int -> int array -> t

val choose : t -> int -> int
(** [choose t n] picks a branch in [0, n)], recording decision and width. *)

val depth : t -> int
(** Choice points hit so far. *)

val decisions : t -> int array
val widths : t -> int array

val install : t -> 'm Sim.Engine.t -> unit
(** Install this strategy as [world]'s scheduler hook. *)
