(* Counterexample traces: everything needed to reproduce a violating
   execution exactly — the scenario, the world seed, the scheduler window
   parameters, the decision list, and the fault plan. Saved as a small
   key=value text file so traces can be archived and replayed by the CLI. *)

type t = {
  protocol : string;
  world_seed : int;
  slack : float;
  width : int;
  decisions : int array;
  faults : Fault.plan;
  monitor : string;  (* which monitor fired *)
  detail : string;  (* its violation message *)
}

let pp ppf t =
  Fmt.pf ppf "@[<v>protocol   %s@,seed       %d@,slack      %g@,width      %d@,decisions  [%s] (%d)@,faults     %s@,monitor    %s@,detail     %s@]"
    t.protocol t.world_seed t.slack t.width
    (String.concat ";" (Array.to_list (Array.map string_of_int t.decisions)))
    (Array.length t.decisions)
    (match t.faults with [] -> "(none)" | f -> Fault.to_string f)
    t.monitor t.detail

let save file t =
  let oc = open_out file in
  Printf.fprintf oc "protocol=%s\n" t.protocol;
  Printf.fprintf oc "seed=%d\n" t.world_seed;
  Printf.fprintf oc "slack=%h\n" t.slack;
  Printf.fprintf oc "width=%d\n" t.width;
  Printf.fprintf oc "decisions=%s\n"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.decisions)));
  Printf.fprintf oc "faults=%s\n" (Fault.to_string t.faults);
  Printf.fprintf oc "monitor=%s\n" t.monitor;
  Printf.fprintf oc "detail=%s\n" (String.map (function '\n' -> ' ' | c -> c) t.detail);
  close_out oc

let load file =
  let ic = open_in file in
  let tbl = Hashtbl.create 8 in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line '=' with
       | Some i ->
           Hashtbl.replace tbl
             (String.sub line 0 i)
             (String.sub line (i + 1) (String.length line - i - 1))
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  let get k =
    match Hashtbl.find_opt tbl k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace file %s: missing key %s" file k)
  in
  let ( let* ) = Result.bind in
  let* protocol = get "protocol" in
  let* seed = get "seed" in
  let* slack = get "slack" in
  let* width = get "width" in
  let* decisions = get "decisions" in
  let* faults_s = get "faults" in
  let* faults = Fault.parse faults_s in
  let monitor = Result.value (get "monitor") ~default:"" in
  let detail = Result.value (get "detail") ~default:"" in
  let int_field k v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "trace file %s: bad int for %s" file k)
  in
  let* world_seed = int_field "seed" seed in
  let* width = int_field "width" width in
  let* slack =
    match float_of_string_opt slack with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "trace file %s: bad float for slack" file)
  in
  let decisions =
    if String.trim decisions = "" then [||]
    else
      String.split_on_char ';' decisions
      |> List.filter_map int_of_string_opt
      |> Array.of_list
  in
  Ok { protocol; world_seed; slack; width; decisions; faults; monitor; detail }
