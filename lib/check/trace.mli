(** Counterexample traces: enough to reproduce a violating execution
    exactly, persisted as a key=value text file. *)

type t = {
  protocol : string;
  world_seed : int;
  slack : float;
  width : int;
  decisions : int array;
  faults : Fault.plan;
  monitor : string;
  detail : string;
}

val pp : Format.formatter -> t -> unit
val save : string -> t -> unit
val load : string -> (t, string) result
