(* The structured trace event: one observable step of one node.

   A trace is what runtime conformance checking consumes: enough of an
   execution to replay it against the verified specification without
   re-running the system. Events carry the node that observed them, the
   node's logical step (its dispatch count — comparable across runtimes,
   unlike wall-clock time), the observing node's clock, and the payload:

   - [Init]/[Timer]/[Recv] — the inputs the runtime dispatched, with the
     wire bytes of received messages (the trace is runtime-independent:
     sim messages are encoded through the same codec the sockets use);
   - [Send] — every outbound message, as wire bytes;
   - [Deliver]/[Checkpoint] — the replicated state machine's view: a
     totally-ordered entry reached the replica, and the state fingerprint
     right after applying it (these come from protocol code, because SMR
     self-deliveries never cross the wire);
   - [Crash]/[Restart] — fault-injection boundaries, splitting a node's
     stream into incarnations. *)

type kind =
  | Init
  | Recv of { src : int; bytes : string }
  | Timer of { id : int; tag : string }
  | Send of { dst : int; bytes : string }
  | Deliver of { seqno : int; origin : int; id : int; payload : string }
  | Checkpoint of { gseq : int; seqno : int; hash : int }
  | Crash
  | Restart

type t = { node : int; step : int; at : float; kind : kind }

let kind_name = function
  | Init -> "init"
  | Recv _ -> "recv"
  | Timer _ -> "timer"
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Checkpoint _ -> "checkpoint"
  | Crash -> "crash"
  | Restart -> "restart"

let pp ppf e =
  let detail =
    match e.kind with
    | Init | Crash | Restart -> ""
    | Recv { src; bytes } -> Printf.sprintf " src=%d %dB" src (String.length bytes)
    | Timer { id; tag } -> Printf.sprintf " id=%d tag=%s" id tag
    | Send { dst; bytes } -> Printf.sprintf " dst=%d %dB" dst (String.length bytes)
    | Deliver { seqno; origin; id; payload } ->
        Printf.sprintf " seqno=%d origin=%d id=%d %dB" seqno origin id
          (String.length payload)
    | Checkpoint { gseq; seqno; hash } ->
        Printf.sprintf " gseq=%d seqno=%d hash=%x" gseq seqno hash
  in
  Format.fprintf ppf "node=%d step=%d t=%.6f %s%s" e.node e.step e.at
    (kind_name e.kind) detail
