(* Feeding a recorded trace to the lib/check invariant monitors.

   The model checker enforces its obligations against simulated
   schedules; this module gives live and loop executions the same
   obligations by reconstructing monitor observations from the trace:

   - TOB total order, gap-freedom, no-duplication — from [Deliver]
     events (gap-freedom and no-dup only for crash-free traces: a
     restarted replica legitimately re-delivers a group-commit-lost
     suffix, which re-observes (origin, id) pairs);
   - SMR agreement — every fingerprint checkpoint recorded at total-order
     position s must carry the same hash, across nodes and across
     incarnations of one node (deterministic re-execution);
   - durability no-loss — the set of positions a node applied, across
     all its incarnations, has no holes below its maximum;
   - cross-shard atomicity — from delivered 2PC decision records, when
     the trace contains any.

   Sharded traces (detected by prepare/decision payloads or a "shards"
   meta entry > 1) interleave the per-shard total orders in one trace,
   so the seqno-keyed TOB and agreement monitors are skipped there; the
   atomicity monitor takes over. *)

module Monitor = Check.Monitor
module Tob = Broadcast.Tob

type report = {
  m_observations : int;
  m_monitors : string list;
  m_violations : (string * string) list;  (* monitor name, message *)
}

let ok r = r.m_violations = []

let pp_report ppf r =
  Format.fprintf ppf "%d observations through %d monitors (%s)" r.m_observations
    (List.length r.m_monitors)
    (String.concat ", " r.m_monitors);
  if ok r then Format.fprintf ppf "@.invariants hold"
  else
    List.iter
      (fun (n, m) -> Format.fprintf ppf "@.VIOLATION [%s]: %s" n m)
      r.m_violations

(* Checkpoint agreement: same total-order position, same fingerprint. *)
let agreement () : (int * int * int) Monitor.t =
  let seen : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
  Monitor.make ~name:"conform-agreement" (fun fail (node, seqno, hash) ->
      match Hashtbl.find_opt seen seqno with
      | None -> Hashtbl.replace seen seqno (node, hash)
      | Some (n0, h0) ->
          if h0 <> hash then
            fail
              (Printf.sprintf
                 "fingerprint disagreement at seqno %d: node %d has %x, node \
                  %d had %x"
                 seqno node hash n0 h0))

(* Durability no-loss: across every incarnation of a node, the applied
   positions are contiguous up to its maximum — a hole is an entry that
   was applied before a crash and never recovered. *)
let no_loss () : (int * int) Monitor.t =
  let by_node : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  Monitor.make ~name:"conform-no-loss"
    ~finish:(fun () ->
      Hashtbl.fold
        (fun node seqs acc ->
          match acc with
          | Some _ -> acc
          | None ->
              let lo = Hashtbl.fold (fun s () m -> min s m) seqs max_int in
              let hi = Hashtbl.fold (fun s () m -> max s m) seqs min_int in
              let missing = ref [] in
              for s = lo to hi do
                if not (Hashtbl.mem seqs s) then missing := s :: !missing
              done;
              if !missing = [] then None
              else
                Some
                  (Printf.sprintf
                     "node %d lost applied entries: missing seqnos %s below \
                      its maximum %d"
                     node
                     (String.concat ","
                        (List.map string_of_int (List.rev !missing)))
                     hi))
        by_node None)
    (fun _fail (node, seqno) ->
      let seqs =
        match Hashtbl.find_opt by_node node with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 256 in
            Hashtbl.replace by_node node s;
            s
      in
      Hashtbl.replace seqs seqno ())

let is_sharded ~meta events =
  (match List.assoc_opt "shards" meta with
  | Some s -> ( match int_of_string_opt s with Some n -> n > 1 | None -> false)
  | None -> false)
  || List.exists
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Deliver { payload; _ } ->
             payload <> "" && (payload.[0] = 'P' || payload.[0] = 'D')
         | _ -> false)
       events

let check ?(meta = []) (events : Event.t list) : report =
  let sharded = is_sharded ~meta events in
  let has_restart =
    List.exists
      (fun (e : Event.t) ->
        match e.Event.kind with Event.Restart -> true | _ -> false)
      events
  in
  let tob_monitors =
    if sharded then []
    else
      Monitor.tob_total_order ()
      :: (if has_restart then []
          else [ Monitor.tob_gap_free (); Monitor.tob_no_dup () ])
  in
  let agree = if sharded then None else Some (agreement ()) in
  let noloss = if sharded then None else Some (no_loss ()) in
  let xatomic = if sharded then Some (Monitor.xshard_atomicity ()) else None in
  let observations = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Deliver { seqno; origin; id; payload } ->
          incr observations;
          let d = { Tob.seqno; entry = { Tob.origin; id; payload } } in
          List.iter (fun m -> Monitor.observe m (e.Event.node, d)) tob_monitors;
          (match noloss with
          | Some m -> Monitor.observe m (e.Event.node, seqno)
          | None -> ());
          (match (xatomic, Shadowdb.System.decode_payload payload) with
          | Some m, Shadowdb.System.P_decision (shard, commit, dtxn) ->
              Monitor.observe m
                {
                  Monitor.xnode = e.Event.node;
                  xshard = shard;
                  xclient = dtxn.Shadowdb.Txn.client;
                  xseq = dtxn.Shadowdb.Txn.seq;
                  xcommit = commit;
                  xkeys = [];
                }
          | _ -> ())
      | Event.Checkpoint { seqno; hash; _ } -> (
          incr observations;
          match agree with
          | Some m -> Monitor.observe m (e.Event.node, seqno, hash)
          | None -> ())
      | _ -> ())
    events;
  let close (type o) (m : o Monitor.t) =
    Monitor.finish m;
    ( Monitor.name m,
      match Monitor.violation m with Some v -> Some v | None -> None )
  in
  let results =
    List.map close tob_monitors
    @ (match agree with Some m -> [ close m ] | None -> [])
    @ (match noloss with Some m -> [ close m ] | None -> [])
    @ match xatomic with Some m -> [ close m ] | None -> []
  in
  {
    m_observations = !observations;
    m_monitors = List.map fst results;
    m_violations =
      List.filter_map
        (fun (n, v) -> match v with Some m -> Some (n, m) | None -> None)
        results;
  }
