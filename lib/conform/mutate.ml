(* Deliberately-divergent trace fixtures.

   Each mutator takes a conformant trace and produces one that a correct
   replica could not have generated — the checker's sensitivity is
   demonstrated (and CI-enforced) by these being rejected:

   - [skip-batch]: drop one delivery that the node later built on — the
     replica's recorded state then claims an entry it never applied;
   - [reorder]: swap two deliveries of one node — a total-order
     violation the spec machine flags directly;
   - [tamper-hash]: corrupt one fingerprint checkpoint — the recorded
     state no longer matches the spec execution.

   The generic [droppable]/[drop_at] pair is shared with the qcheck
   sensitivity property, which mutates a random eligible event. *)

(* Indices (into the event list) of Deliver events that are followed by
   another Deliver of the same node — dropping one of these always
   leaves later evidence (a later delivery or its checkpoint) that the
   entry went missing. *)
let droppable (events : Event.t list) : int list =
  let arr = Array.of_list events in
  let has_later node i =
    let rec go j =
      j < Array.length arr
      && ((arr.(j).Event.node = node
          && match arr.(j).Event.kind with Event.Deliver _ -> true | _ -> false)
         || go (j + 1))
    in
    go (i + 1)
  in
  let acc = ref [] in
  Array.iteri
    (fun i (e : Event.t) ->
      match e.Event.kind with
      | Event.Deliver _ when has_later e.Event.node i -> acc := i :: !acc
      | _ -> ())
    arr;
  List.rev !acc

let drop_at i (events : Event.t list) : Event.t list =
  List.filteri (fun j _ -> j <> i) events

let skip_batch events =
  match droppable events with
  | [] -> Error "trace has no droppable delivery"
  | i :: _ -> Ok (drop_at i events)

(* Swap the first two Deliver events of the first node that has two. *)
let reorder (events : Event.t list) : (Event.t list, string) result =
  let arr = Array.of_list events in
  let first : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let pair = ref None in
  Array.iteri
    (fun i (e : Event.t) ->
      match (e.Event.kind, !pair) with
      | Event.Deliver _, None -> (
          match Hashtbl.find_opt first e.Event.node with
          | None -> Hashtbl.replace first e.Event.node i
          | Some j -> pair := Some (j, i))
      | _ -> ())
    arr;
  match !pair with
  | None -> Error "trace has no node with two deliveries"
  | Some (i, j) ->
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      Ok (Array.to_list arr)

let tamper_hash (events : Event.t list) : (Event.t list, string) result =
  let done_ = ref false in
  let events =
    List.map
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Checkpoint { gseq; seqno; hash } when not !done_ ->
            done_ := true;
            { e with Event.kind = Event.Checkpoint { gseq; seqno; hash = hash lxor 0x5a5a5a } }
        | _ -> e)
      events
  in
  if !done_ then Ok events else Error "trace has no checkpoint to tamper with"

let fixtures = [ "skip-batch"; "reorder"; "tamper-hash" ]

let apply name events =
  match name with
  | "skip-batch" -> skip_batch events
  | "reorder" -> reorder events
  | "tamper-hash" -> tamper_hash events
  | other -> Error (Printf.sprintf "unknown fixture %S" other)
