(* The lightweight online conformance monitor.

   An in-process tap for live/loop clusters that checks, while the
   system runs, the two properties cheap enough to verify inline:

   - per-link FIFO: message digests are queued at [Ob_send] and checked
     off in order at the matching [Recv] dispatch — the channel
     assumption every protocol here makes, verified end-to-end through
     whatever transport the runtime uses (the loop runtime's internal
     recorder checks its own delivery path; this one is
     runtime-agnostic);
   - fingerprint agreement: every sampled state checkpoint at total-order
     position s must carry the hash every other replica reported there.

   Digests are [Hashtbl.hash] of the decoded message — collisions can
   mask a violation, never invent one. The FIFO leg assumes a crash-free
   run (messages in flight to a crashed node are legitimately lost); on
   [Ob_crash] the crashed node's inbound digest queues are forgotten,
   mirroring the loop runtime's recorder. *)

type t = {
  mu : Mutex.t;
  links : (int * int, int Queue.t) Hashtbl.t;  (* (src, dst) -> digests *)
  hashes : (int, int * int) Hashtbl.t;  (* seqno -> (node, hash) *)
  mutable checked : int;
  mutable fifo_violations : int;
  mutable agreement_violations : int;
  mutable messages : string list;  (* newest first, capped *)
}

let max_messages = 20

let create () =
  {
    mu = Mutex.create ();
    links = Hashtbl.create 64;
    hashes = Hashtbl.create 1024;
    checked = 0;
    fifo_violations = 0;
    agreement_violations = 0;
    messages = [];
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let note t msg =
  if List.length t.messages < max_messages then t.messages <- msg :: t.messages

let link_q t key =
  match Hashtbl.find_opt t.links key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.links key q;
      q

let tap (t : t) : 'm Runtime.tap =
 fun ~self ~now:_ ob ->
  match ob with
  | Runtime.Ob_send { dst; msg } ->
      let h = Hashtbl.hash msg in
      locked t (fun () -> Queue.push h (link_q t (self, dst)))
  | Runtime.Ob_input (Runtime.Recv { src; msg }) ->
      let h = Hashtbl.hash msg in
      locked t (fun () ->
          t.checked <- t.checked + 1;
          let ok =
            match Queue.take_opt (link_q t (src, self)) with
            | Some h0 -> h0 = h
            | None -> false
          in
          if not ok then begin
            t.fifo_violations <- t.fifo_violations + 1;
            note t
              (Printf.sprintf "per-link FIFO violation on %d->%d" src self)
          end)
  | Runtime.Ob_checkpoint { seqno; hash; _ } ->
      locked t (fun () ->
          t.checked <- t.checked + 1;
          match Hashtbl.find_opt t.hashes seqno with
          | None -> Hashtbl.replace t.hashes seqno (self, hash)
          | Some (n0, h0) ->
              if h0 <> hash then begin
                t.agreement_violations <- t.agreement_violations + 1;
                note t
                  (Printf.sprintf
                     "fingerprint disagreement at seqno %d: node %d has %x, \
                      node %d had %x"
                     seqno self hash n0 h0)
              end)
  | Runtime.Ob_crash ->
      locked t (fun () ->
          Hashtbl.iter (fun (_, d) q -> if d = self then Queue.clear q) t.links)
  | Runtime.Ob_input (Runtime.Init | Runtime.Timer _)
  | Runtime.Ob_deliver _ | Runtime.Ob_restart ->
      ()

let checked t = locked t (fun () -> t.checked)

let violations t =
  locked t (fun () -> t.fifo_violations + t.agreement_violations)

let messages t = locked t (fun () -> List.rev t.messages)

let summary t =
  locked t (fun () ->
      Printf.sprintf
        "online monitor: %d checks, %d FIFO violations, %d agreement \
         violations"
        t.checked t.fifo_violations t.agreement_violations)
