(* Recorded reference runs.

   One place that knows how to run the seeded bank workload on the
   deterministic simulator with a recorder attached — shared by the
   `shadowdb_check conform-record` CLI, the qcheck soundness/sensitivity
   properties, and the bench's conformance metrics. The recorded trace
   carries enough meta (workload, rows) for {!Replay.spec_exec_of_meta}
   to rebuild the shadow execution environment. *)

module Engine = Sim.Engine
module S = Sys_wire.S

type run = {
  recorder : Recorder.t;
  commits : int;
  completed : int;  (* clients that finished *)
  clients : int;
}

let sim_bank ?(seed = 1) ?(clients = 3) ?(count = 40) ?(rows = 512) ?cap () =
  let meta =
    [
      ("workload", "bank");
      ("rows", string_of_int rows);
      ("runtime", "sim");
      ("seed", string_of_int seed);
      ("clients", string_of_int clients);
      ("count", string_of_int count);
    ]
  in
  let recorder = Recorder.create ?cap ~meta () in
  let world : S.wire Engine.t = Engine.create ~seed () in
  let tap = Recorder.tap recorder ~enc:Sys_wire.codec.Runtime.enc in
  let rworld = Runtime.Of_sim.of_engine ~tap world in
  let cluster =
    S.spawn_smr ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      ~n_active:2 ()
  in
  let commits = ref 0 in
  let _, completed =
    S.spawn_clients ~world:rworld ~target:(S.To_smr cluster) ~n:clients ~count
      ~make_txn:(fun ~client ~seq ->
        if seq mod 4 = 3 then
          Workload.Bank.balance
            ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
        else
          Workload.Bank.deposit
            ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
            ~amount:(1 + (seq mod 9)))
      ~retry_timeout:2.0
      ~on_commit:(fun _ _ -> incr commits)
      ()
  in
  Engine.run ~until:3600.0 ~max_events:100_000_000 world;
  { recorder; commits = !commits; completed = completed (); clients }

(* Check a trace end to end: LoE replay plus the invariant monitors. *)
let check_trace ~meta events =
  let spec_exec = Replay.spec_exec_of_meta meta in
  let replay = Replay.check ?spec_exec events in
  let monitors = Monitors.check ~meta events in
  (replay, monitors)

let conformant ~meta events =
  let replay, monitors = check_trace ~meta events in
  Replay.ok replay && Monitors.ok monitors
