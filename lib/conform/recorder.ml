(* The always-on trace recorder.

   A bounded ring buffer of {!Event.t} behind a mutex, fed by a runtime
   tap ({!Runtime.tap}): attach it at runtime construction and every
   dispatch, send, delivery, checkpoint and fault of every node lands
   here, stamped with the node's logical step (its dispatch count). When
   the buffer fills, the oldest events are dropped and counted — the
   recorder never stalls the system it observes. Message encoding (the
   trace stores wire bytes, so sim traces are byte-comparable with
   socket traces) happens outside the lock. *)

type t = {
  mu : Mutex.t;
  cap : int;
  buf : Event.t array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
  steps : (int, int) Hashtbl.t;  (* node -> dispatches so far *)
  mutable meta : (string * string) list;
}

let dummy = { Event.node = -1; step = 0; at = 0.0; kind = Event.Init }
let default_cap = 1 lsl 18

let create ?(cap = default_cap) ?(meta = []) () =
  let cap = max 1 cap in
  {
    mu = Mutex.create ();
    cap;
    buf = Array.make cap dummy;
    start = 0;
    len = 0;
    dropped = 0;
    steps = Hashtbl.create 16;
    meta;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let push t ev =
  if t.len = t.cap then begin
    (* Full: overwrite the oldest slot. *)
    t.buf.(t.start) <- ev;
    t.start <- (t.start + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buf.((t.start + t.len) mod t.cap) <- ev;
    t.len <- t.len + 1
  end

let tap (t : t) ~(enc : 'm -> string) : 'm Runtime.tap =
 fun ~self ~now ob ->
  (* Encode outside the lock; [enc] is the expensive part of recording. *)
  let kind =
    match ob with
    | Runtime.Ob_input Runtime.Init -> Event.Init
    | Runtime.Ob_input (Runtime.Recv { src; msg }) ->
        Event.Recv { src; bytes = enc msg }
    | Runtime.Ob_input (Runtime.Timer { id; tag }) -> Event.Timer { id; tag }
    | Runtime.Ob_send { dst; msg } -> Event.Send { dst; bytes = enc msg }
    | Runtime.Ob_deliver { seqno; origin; id; payload } ->
        Event.Deliver { seqno; origin; id; payload }
    | Runtime.Ob_checkpoint { gseq; seqno; hash } ->
        Event.Checkpoint { gseq; seqno; hash }
    | Runtime.Ob_crash -> Event.Crash
    | Runtime.Ob_restart -> Event.Restart
  in
  let is_input = match ob with Runtime.Ob_input _ -> true | _ -> false in
  locked t (fun () ->
      let step =
        let prev = Option.value ~default:0 (Hashtbl.find_opt t.steps self) in
        if is_input then begin
          Hashtbl.replace t.steps self (prev + 1);
          prev + 1
        end
        else prev
      in
      push t { Event.node = self; step; at = now; kind })

let events t =
  locked t (fun () ->
      List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap)))

let dropped t = locked t (fun () -> t.dropped)
let recorded t = locked t (fun () -> t.len + t.dropped)
let meta t = locked t (fun () -> t.meta)
let add_meta t kvs = locked t (fun () -> t.meta <- t.meta @ kvs)
let save t path = Trace_file.save ~path ~meta:(meta t) (events t)
