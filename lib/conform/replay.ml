(* Trace replay through the Logic of Events semantics.

   The replica's delivery discipline — apply totally-ordered entries in
   sequence, exactly once — is stated as an event class ({!verdict_cls})
   and evaluated, per recorded delivery, with the denotational semantics
   in lib/loe/sem.ml: [Sem.at] on the node's delivery trace is the
   authority for whether each observed delivery was legitimate. On top
   of the spec machine's order verdicts, the checker re-executes the
   delivered transactions on a shadow database seeded like the recorded
   deployment and compares, at every recorded checkpoint, the state
   fingerprint the spec execution predicts with the fingerprint the
   replica actually had — and every reply the replica sent with the
   reply the spec execution computes. A conformant trace produces an
   empty divergence list; any skipped, duplicated, reordered or
   wrongly-applied delivery pinpoints the diverging event.

   Crash/restart boundaries split a node's stream into incarnations.
   State prediction runs over the first incarnation only (a restarted
   node may legitimately re-execute a group-commit-lost suffix, which
   rewinds the observed order); later incarnations still get the spec
   machine's in-order discipline, plus a cross-incarnation check that
   recovery did not skip forward past anything the node had applied.

   [Sem.state_value] recomputes the state fold per query — O(n^2) in the
   deliveries of a node — so the spec leg is capped at [max_delivers]
   per incarnation (shadow execution and fingerprint comparison continue
   past the cap; the report counts what the spec machine skipped). *)

module Message = Loe.Message
module Cls = Loe.Cls
module Sem = Loe.Sem
module Database = Storage.Database
module Txn = Shadowdb.Txn

(* ------------------------- the specification -------------------------- *)

type dev = { d_seqno : int; d_origin : int; d_id : int }

let dev_hdr : dev Message.hdr = Message.declare "conform/deliver"

type order_state = {
  os_expected : int option;  (* what the latest event's seqno had to be *)
  os_next : int option;  (* what the next event's seqno must be *)
  os_applied : int;
  os_ok : bool;  (* latest event was in order *)
}

(* The paper-style [State] class: fold the delivery discipline over the
   node's delivery events. The first delivery fixes the base (a recovered
   replica resumes above its durable floor); each subsequent one must be
   the successor. *)
let order_cls : order_state Cls.t =
  Cls.state "ConformTotalOrder"
    ~init:(fun _ ->
      { os_expected = None; os_next = None; os_applied = 0; os_ok = true })
    ~upd:(fun _ (d : dev) st ->
      let ok = match st.os_next with None -> true | Some n -> d.d_seqno = n in
      {
        os_expected = st.os_next;
        os_next = Some (d.d_seqno + 1);
        os_applied = st.os_applied + 1;
        os_ok = ok;
      })
    (Cls.base dev_hdr)

type verdict = {
  v_applied : int;
  v_ok : bool;
  v_expected : int option;
  v_got : int;
}

(* Pair each delivery with the spec machine's post-state: the per-event
   verdict the checker compares the observation against. *)
let verdict_cls : verdict Cls.t =
  Cls.o2
    (fun _ (d : dev) (st : order_state) ->
      [
        {
          v_applied = st.os_applied;
          v_ok = st.os_ok;
          v_expected = st.os_expected;
          v_got = d.d_seqno;
        };
      ])
    (Cls.base dev_hdr) order_cls

(* ----------------------------- reporting ------------------------------ *)

type divergence = {
  dv_node : int;
  dv_index : int;  (* position in the node's recorded stream *)
  dv_step : int;  (* the node's logical step at the event *)
  dv_what : string;
}

type report = {
  r_nodes : int;
  r_events : int;
  r_delivers : int;
  r_checkpoints : int;
  r_replies : int;
  r_spec_skipped : int;  (* deliveries beyond the spec-replay cap *)
  r_divergences : divergence list;
}

let ok r = r.r_divergences = []

let pp_divergence ppf d =
  Format.fprintf ppf "node %d, event #%d (step %d): %s" d.dv_node d.dv_index
    d.dv_step d.dv_what

let pp_report ppf r =
  Format.fprintf ppf
    "replayed %d events (%d deliveries, %d checkpoints, %d replies) across \
     %d nodes"
    r.r_events r.r_delivers r.r_checkpoints r.r_replies r.r_nodes;
  if r.r_spec_skipped > 0 then
    Format.fprintf ppf "; %d deliveries beyond the spec-replay cap"
      r.r_spec_skipped;
  if ok r then Format.fprintf ppf "@.conformant: trace matches the LoE spec"
  else begin
    (* One divergence cascades (every later fingerprint disagrees too);
       the first few pinpoint it, the rest are echo. *)
    let n = List.length r.r_divergences in
    Format.fprintf ppf "@.DIVERGENT (%d):" n;
    List.iteri
      (fun i d ->
        if i < 10 then Format.fprintf ppf "@.  %a" pp_divergence d)
      r.r_divergences;
    if n > 10 then Format.fprintf ppf "@.  ... and %d more" (n - 10)
  end

(* ------------------------------ checking ------------------------------ *)

type spec_exec = unit -> Txn.registry * Database.t
(** Builds the shadow execution environment: the transaction registry and
    a database seeded exactly like the recorded deployment's replicas. *)

let spec_exec_of_meta meta : spec_exec option =
  match List.assoc_opt "workload" meta with
  | Some "bank" ->
      let rows =
        match List.assoc_opt "rows" meta with
        | Some r -> ( match int_of_string_opt r with Some n -> n | None -> 0)
        | None -> 0
      in
      if rows <= 0 then None
      else
        Some
          (fun () ->
            let db = Database.create Storage.Store.Hazel in
            Workload.Bank.setup ~rows db;
            (Workload.Bank.registry (), db))
  | _ -> None

(* One incarnation of one node. [hash_mode] enables shadow execution
   (registry + seeded database); it switches itself off at the first
   payload the plain-SMR spec does not cover (reconfigurations, sharded
   prepare/decision records) — order checking continues regardless. *)
let check_incarnation ~node ~spec ~max_delivers ~diverge ~count
    (events : (int * Event.t) list) =
  let delivers =
    List.filter_map
      (fun (_, (e : Event.t)) ->
        match e.Event.kind with
        | Event.Deliver { seqno; origin; id; _ } ->
            Some { d_seqno = seqno; d_origin = origin; d_id = id }
        | _ -> None)
      events
  in
  let msgs =
    Array.of_list (List.map (fun d -> Message.make dev_hdr d) delivers)
  in
  let ncap = min (Array.length msgs) max_delivers in
  let hash_mode = ref (spec <> None) in
  let exec_env = lazy (match spec with Some f -> Some (f ()) | None -> None) in
  let expected : (int * int, Txn.outcome) Hashtbl.t = Hashtbl.create 64 in
  let last_seqno = ref None in
  let applied = ref 0 in
  let gseq_offset = ref None in
  let di = ref 0 in
  let skipped = ref 0 in
  List.iter
    (fun (idx, (e : Event.t)) ->
      count e;
      match e.Event.kind with
      | Event.Deliver { seqno; payload; _ } ->
          (if !di < ncap then
             (* The LoE semantics is the authority for the order verdict. *)
             match Sem.at node verdict_cls msgs !di with
             | [ v ] ->
                 if not v.v_ok then
                   diverge idx e
                     (Printf.sprintf
                        "out-of-order delivery: spec machine expected seqno \
                         %s, observed %d"
                        (match v.v_expected with
                        | Some n -> string_of_int n
                        | None -> "?")
                        v.v_got)
             | vs ->
                 diverge idx e
                   (Printf.sprintf
                      "spec machine produced %d verdicts for one delivery"
                      (List.length vs))
           else incr skipped);
          incr di;
          last_seqno := Some seqno;
          incr applied;
          if !hash_mode then begin
            match Shadowdb.System.decode_payload payload with
            | Shadowdb.System.P_txn txn -> (
                match Lazy.force exec_env with
                | Some (reg, db) ->
                    let reply = Txn.execute reg db txn in
                    Hashtbl.replace expected
                      (txn.Txn.client, txn.Txn.seq)
                      reply.Txn.outcome
                | None -> hash_mode := false)
            | Shadowdb.System.P_reconfig _ | Shadowdb.System.P_prepare _
            | Shadowdb.System.P_decision _ | Shadowdb.System.P_bytes _ ->
                (* Beyond the plain-SMR spec: keep checking order, stop
                   predicting state. *)
                hash_mode := false
          end
      | Event.Checkpoint { gseq; seqno; hash } -> (
          (match !last_seqno with
          | None ->
              diverge idx e "state checkpoint before any recorded delivery"
          | Some s when s <> seqno ->
              diverge idx e
                (Printf.sprintf
                   "checkpoint claims entry %d was applied, but the last \
                    recorded delivery was %d"
                   seqno s)
          | Some _ -> ());
          (match !gseq_offset with
          | None -> gseq_offset := Some (gseq - !applied)
          | Some o ->
              if gseq - !applied <> o then
                diverge idx e
                  (Printf.sprintf
                     "executed-count discontinuity: gseq %d after %d recorded \
                      deliveries (expected offset %d)"
                     gseq !applied o));
          if !hash_mode then
            match Lazy.force exec_env with
            | Some (_, db) ->
                let expect = Database.content_hash db in
                if expect <> hash then
                  diverge idx e
                    (Printf.sprintf
                       "state fingerprint diverges from spec execution at \
                        seqno %d: replica %x, spec %x"
                       seqno hash expect)
            | None -> ())
      | Event.Send { bytes; _ } ->
          if !hash_mode then (
            match Sys_wire.codec.Runtime.dec bytes with
            | Ok (Sys_wire.S.Db (Shadowdb.Db_msg.Reply r)) -> (
                match Hashtbl.find_opt expected (r.Txn.client, r.Txn.seq) with
                | Some outcome ->
                    if outcome <> r.Txn.outcome then
                      diverge idx e
                        (Printf.sprintf
                           "reply to client %d seq %d diverges from the spec \
                            execution's outcome"
                           r.Txn.client r.Txn.seq)
                | None ->
                    diverge idx e
                      (Printf.sprintf
                         "reply to client %d seq %d for a transaction the \
                          spec never executed"
                         r.Txn.client r.Txn.seq))
            | Ok _ | Error _ -> ())
      | Event.Init | Event.Recv _ | Event.Timer _ | Event.Crash
      | Event.Restart ->
          ())
    events;
  (!last_seqno, !skipped)

let default_max_delivers = 5_000

let check ?spec_exec ?(max_delivers = default_max_delivers)
    (events : Event.t list) : report =
  let nodes = ref [] in
  let by_node : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match Hashtbl.find_opt by_node e.Event.node with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.replace by_node e.Event.node (ref [ e ]);
          nodes := e.Event.node :: !nodes)
    events;
  let nodes = List.rev !nodes in
  let divergences = ref [] in
  let n_events = ref 0
  and n_delivers = ref 0
  and n_checkpoints = ref 0
  and n_replies = ref 0
  and n_skipped = ref 0 in
  List.iter
    (fun node ->
      let stream =
        List.mapi (fun i e -> (i, e)) (List.rev !(Hashtbl.find by_node node))
      in
      (* Split at Restart events: each opens a new incarnation that the
         Restart event itself belongs to. *)
      let incarnations =
        List.fold_left
          (fun acc ((_, e) as ev) ->
            match (e.Event.kind, acc) with
            | Event.Restart, _ -> [ ev ] :: acc
            | _, cur :: rest -> (ev :: cur) :: rest
            | _, [] -> [ [ ev ] ])
          [ [] ] stream
        |> List.rev_map List.rev
        |> List.filter (fun l -> l <> [])
      in
      let diverge idx (e : Event.t) what =
        divergences :=
          { dv_node = node; dv_index = idx; dv_step = e.Event.step; dv_what = what }
          :: !divergences
      in
      let count (e : Event.t) =
        incr n_events;
        match e.Event.kind with
        | Event.Deliver _ -> incr n_delivers
        | Event.Checkpoint _ -> incr n_checkpoints
        | Event.Send { bytes; _ } -> (
            match Sys_wire.codec.Runtime.dec bytes with
            | Ok (Sys_wire.S.Db (Shadowdb.Db_msg.Reply _)) -> incr n_replies
            | Ok _ | Error _ -> ())
        | _ -> ()
      in
      let prev_last = ref None in
      List.iteri
        (fun k inc ->
          (* State prediction only before the first crash: recovery may
             legitimately re-execute a group-commit-lost suffix. *)
          let spec = if k = 0 then spec_exec else None in
          (* A restarted node must resume at or below one past everything
             it had applied — a forward jump is lost state. *)
          (match (!prev_last, k) with
          | Some last, k when k > 0 -> (
              let first_deliver =
                List.find_map
                  (fun (i, (e : Event.t)) ->
                    match e.Event.kind with
                    | Event.Deliver { seqno; _ } -> Some (i, e, seqno)
                    | _ -> None)
                  inc
              in
              match first_deliver with
              | Some (i, e, seqno) when seqno > last + 1 ->
                  diverge i e
                    (Printf.sprintf
                       "post-restart delivery gap: resumed at seqno %d after \
                        applying up to %d"
                       seqno last)
              | _ -> ())
          | _ -> ());
          let last, skipped =
            check_incarnation ~node ~spec ~max_delivers ~diverge ~count inc
          in
          n_skipped := !n_skipped + skipped;
          match last with
          | Some l ->
              prev_last :=
                Some (match !prev_last with Some p -> max p l | None -> l)
          | None -> ())
        incarnations)
    nodes;
  {
    r_nodes = List.length nodes;
    r_events = !n_events;
    r_delivers = !n_delivers;
    r_checkpoints = !n_checkpoints;
    r_replies = !n_replies;
    r_spec_skipped = !n_skipped;
    r_divergences = List.rev !divergences;
  }
