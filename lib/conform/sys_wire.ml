(* The checker's own instantiation of the ShadowDB system.

   Trace bytes are the interface between recorder and checker: a trace
   may have been recorded by any process holding any application of
   [Shadowdb.System.Make], so the checker decodes with its own instance —
   the wire format is identical by construction (both sides use the same
   codec-v2 functions). *)

module S = Shadowdb.System.Make (Consensus.Paxos)

let codec : S.wire Runtime.codec =
  S.wire_codec ~enc_core:Shadowdb.Codec.encode_core_paxos
    ~dec_core:Shadowdb.Codec.decode_core_paxos
