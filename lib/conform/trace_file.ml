(* The on-disk trace format.

   Same framing discipline as codec v2 (lib/shadowdb/codec.ml): zigzag
   LEB128 varints for every integer, length-prefixed strings, one tag
   byte per event kind, floats as 8-byte little-endian IEEE bits. The
   decoder is total and paranoid: every read is bounds-checked, varints
   reject overlong encodings, counts reject negatives, and a buffer with
   trailing bytes after the declared event count is corrupt — so any
   truncation or bit-flip of a valid trace fails to decode rather than
   decoding to a different trace.

   Layout:  magic "SDTR1" | meta count | (key, value)* | event count |
            (node, step, at, tag, fields)*                             *)

let magic = "SDTR1"

(* -------------------------------- encode ------------------------------ *)

let add_varint b v =
  let v = (v lsl 1) lxor (v asr 62) in
  let rec go v =
    if v land lnot 0x7f = 0 then Buffer.add_char b (Char.chr v)
    else begin
      Buffer.add_char b (Char.chr (v land 0x7f lor 0x80));
      go (v lsr 7)
    end
  in
  go v

let add_string b s =
  add_varint b (String.length s);
  Buffer.add_string b s

let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_event b (e : Event.t) =
  add_varint b e.Event.node;
  add_varint b e.Event.step;
  add_float b e.Event.at;
  match e.Event.kind with
  | Event.Init -> Buffer.add_char b 'I'
  | Event.Recv { src; bytes } ->
      Buffer.add_char b 'R';
      add_varint b src;
      add_string b bytes
  | Event.Timer { id; tag } ->
      Buffer.add_char b 'T';
      add_varint b id;
      add_string b tag
  | Event.Send { dst; bytes } ->
      Buffer.add_char b 'S';
      add_varint b dst;
      add_string b bytes
  | Event.Deliver { seqno; origin; id; payload } ->
      Buffer.add_char b 'D';
      add_varint b seqno;
      add_varint b origin;
      add_varint b id;
      add_string b payload
  | Event.Checkpoint { gseq; seqno; hash } ->
      Buffer.add_char b 'C';
      add_varint b gseq;
      add_varint b seqno;
      add_varint b hash
  | Event.Crash -> Buffer.add_char b 'X'
  | Event.Restart -> Buffer.add_char b 'B'

let encode ~meta events =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  add_varint b (List.length meta);
  List.iter
    (fun (k, v) ->
      add_string b k;
      add_string b v)
    meta;
  add_varint b (List.length events);
  List.iter (add_event b) events;
  Buffer.contents b

(* -------------------------------- decode ------------------------------ *)

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let get_varint s pos =
  let len = String.length s in
  let rec go p shift acc =
    if p >= len then fail "varint truncated at %d" pos
    else
      let byte = Char.code s.[p] in
      if shift > 62 then fail "overlong varint at %d" pos
      else
        let acc = acc lor ((byte land 0x7f) lsl shift) in
        if byte land 0x80 = 0 then ((acc lsr 1) lxor (-(acc land 1)), p + 1)
        else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let get_string s pos =
  let n, pos = get_varint s pos in
  if n < 0 then fail "negative string length at %d" pos;
  if pos + n > String.length s then fail "string truncated at %d" pos;
  (String.sub s pos n, pos + n)

let get_float s pos =
  if pos + 8 > String.length s then fail "float truncated at %d" pos;
  (Int64.float_of_bits (String.get_int64_le s pos), pos + 8)

let get_event s pos =
  let node, pos = get_varint s pos in
  let step, pos = get_varint s pos in
  let at, pos = get_float s pos in
  if pos >= String.length s then fail "event tag truncated at %d" pos;
  let tag = s.[pos] in
  let pos = pos + 1 in
  let kind, pos =
    match tag with
    | 'I' -> (Event.Init, pos)
    | 'R' ->
        let src, pos = get_varint s pos in
        let bytes, pos = get_string s pos in
        (Event.Recv { src; bytes }, pos)
    | 'T' ->
        let id, pos = get_varint s pos in
        let tag, pos = get_string s pos in
        (Event.Timer { id; tag }, pos)
    | 'S' ->
        let dst, pos = get_varint s pos in
        let bytes, pos = get_string s pos in
        (Event.Send { dst; bytes }, pos)
    | 'D' ->
        let seqno, pos = get_varint s pos in
        let origin, pos = get_varint s pos in
        let id, pos = get_varint s pos in
        let payload, pos = get_string s pos in
        (Event.Deliver { seqno; origin; id; payload }, pos)
    | 'C' ->
        let gseq, pos = get_varint s pos in
        let seqno, pos = get_varint s pos in
        let hash, pos = get_varint s pos in
        (Event.Checkpoint { gseq; seqno; hash }, pos)
    | 'X' -> (Event.Crash, pos)
    | 'B' -> (Event.Restart, pos)
    | c -> fail "unknown event tag %C at %d" c (pos - 1)
  in
  ({ Event.node; step; at; kind }, pos)

let decode s =
  try
    if String.length s < String.length magic then fail "missing magic";
    if String.sub s 0 (String.length magic) <> magic then fail "bad magic";
    let pos = String.length magic in
    let nmeta, pos = get_varint s pos in
    if nmeta < 0 then fail "negative meta count";
    let rec meta_loop n pos acc =
      if n = 0 then (List.rev acc, pos)
      else
        let k, pos = get_string s pos in
        let v, pos = get_string s pos in
        meta_loop (n - 1) pos ((k, v) :: acc)
    in
    let meta, pos = meta_loop nmeta pos [] in
    let nev, pos = get_varint s pos in
    if nev < 0 then fail "negative event count";
    let rec ev_loop n pos acc =
      if n = 0 then (List.rev acc, pos)
      else
        let e, pos = get_event s pos in
        ev_loop (n - 1) pos (e :: acc)
    in
    let events, pos = ev_loop nev pos [] in
    if pos <> String.length s then fail "trailing bytes at %d" pos;
    Ok (meta, events)
  with Corrupt m -> Error m

(* --------------------------------- files ------------------------------ *)

let save ~path ~meta events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode ~meta events))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode s
  | exception Sys_error m -> Error m
