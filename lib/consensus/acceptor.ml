module M = Paxos_msg

module Slot_map = Map.Make (Int)

type 'c t = {
  self : M.loc;
  ballot : M.ballot option;
  accepted : 'c M.pvalue Slot_map.t;
}

let create ~self = { self; ballot = None; accepted = Slot_map.empty }

let self t = t.self

let ballot t = t.ballot

let accepted t = List.map snd (Slot_map.bindings t.accepted)

let ballot_lt a b = M.ballot_compare a b < 0

(* The acceptor's promise is monotonically non-decreasing and, once a
   prepare has been processed, always present. If that ever fails, name
   the acceptor and its ballot state instead of dying anonymously — a
   model-checking schedule or a live-cluster log must be able to say
   which role broke. [Sim.Invariant.Violation] is the structured error
   shared by every layer (and enforced by the lint sweep). *)

let promised_after_p1a t (b : M.ballot) =
  match t.ballot with
  | Some cur -> cur
  | None ->
      Sim.Invariant.fail "paxos-acceptor"
        "acceptor %d lost its promise handling p1a%a: ballot = None after \
         promise update (promises may only grow, never vanish)"
        t.self M.pp_ballot b

let step t (msg : 'c M.t) =
  match msg with
  | M.P1a { src; b } ->
      let t =
        match t.ballot with
        | Some cur when not (ballot_lt cur b) -> t
        | Some _ | None -> { t with ballot = Some b }
      in
      let reply_ballot = promised_after_p1a t b in
      ( t,
        [
          (src, M.P1b { src = t.self; b = reply_ballot; accepted = accepted t });
        ] )
  | M.P2a { src; pv } ->
      let accept =
        match t.ballot with
        | Some cur -> not (ballot_lt pv.M.b cur)
        | None -> true
      in
      let t =
        if accept then
          let keep =
            match Slot_map.find_opt pv.M.s t.accepted with
            | Some old -> ballot_lt pv.M.b old.M.b
            | None -> false
          in
          {
            t with
            ballot = Some pv.M.b;
            accepted =
              (if keep then t.accepted else Slot_map.add pv.M.s pv t.accepted);
          }
        else t
      in
      let reply_ballot =
        match t.ballot with Some b -> b | None -> pv.M.b
      in
      (t, [ (src, M.P2b { src = t.self; b = reply_ballot; s = pv.M.s }) ])
  | M.P1b _ | M.P2b _ | M.Propose _ | M.Decision _ -> (t, [])
