(** The Paxos acceptor role (pure state machine).

    Maintains the promised ballot and the highest-ballot accepted pvalue
    per slot. Never forgets a promise — the paper recounts how Google's
    disk-corruption extension broke exactly this invariant. *)

type 'c t

val create : self:Paxos_msg.loc -> 'c t
val self : 'c t -> Paxos_msg.loc

val ballot : 'c t -> Paxos_msg.ballot option
(** Current promise (monotonically non-decreasing). *)

val accepted : 'c t -> 'c Paxos_msg.pvalue list
(** Highest-ballot accepted pvalue for each slot. *)

val step :
  'c t -> 'c Paxos_msg.t -> 'c t * (Paxos_msg.loc * 'c Paxos_msg.t) list
(** Process one message; returns replies as [(destination, message)].
    Non-acceptor messages are ignored. *)
