(* The multi-decree Paxos Synod protocol as a constructive specification,
   corresponding to the paper's Paxos-Synod EventML spec of Table I.

   The specification mirrors the protocol's modular structure: each
   co-located role (acceptor, leader with its scout/commander
   sub-protocols, replica) is a separate [State] class over its own input
   classes, and the node's behaviour is the parallel composition of the
   three roles — the "divide and conquer" structuring the paper credits to
   the LoE combinators. *)

module Message = Loe.Message
module Cls = Loe.Cls
module M = Paxos_msg

type command = string

type io = {
  p1a : (Message.loc * M.ballot) Message.hdr;
  p1b : (Message.loc * M.ballot * command M.pvalue list) Message.hdr;
  p2a : (Message.loc * command M.pvalue) Message.hdr;
  p2b : (Message.loc * M.ballot * int) Message.hdr;
  propose : (int * command) Message.hdr;
  decision : (int * command) Message.hdr;
  request : command Message.hdr;  (* client → replica *)
  ltick : unit Message.hdr;  (* leader backoff timer *)
  start : unit Message.hdr;  (* leadership bootstrap *)
  perform : (int * command) Message.hdr;  (* replica → learner *)
}

let declare_io () =
  {
    p1a = Message.declare "p1a";
    p1b = Message.declare "p1b";
    p2a = Message.declare "p2a";
    p2b = Message.declare "p2b";
    propose = Message.declare "propose";
    decision = Message.declare "decision";
    request = Message.declare "request";
    ltick = Message.declare "ltick";
    start = Message.declare "start";
    perform = Message.declare "perform";
  }

(* Acceptor role: reacts to phase-1 and phase-2 requests. *)
let acceptor_cls io =
  let inputs =
    Cls.( ||| )
      (Cls.map (fun (src, b) -> M.P1a { src; b }) (Cls.base io.p1a))
      (Cls.map (fun (src, pv) -> M.P2a { src; pv }) (Cls.base io.p2a))
  in
  let step slf msg (acc, _) =
    ignore slf;
    Acceptor.step acc msg
  in
  let state =
    Cls.state "Acceptor"
      ~init:(fun slf -> (Acceptor.create ~self:slf, []))
      ~upd:step inputs
  in
  let emit _slf _msg (_, replies) =
    List.map
      (fun (dst, reply) ->
        match reply with
        | M.P1b { src; b; accepted } -> Message.send io.p1b dst (src, b, accepted)
        | M.P2b { src; b; s } -> Message.send io.p2b dst (src, b, s)
        | M.P1a _ | M.P2a _ | M.Propose _ | M.Decision _ ->
            Sim.Invariant.fail "paxos-spec"
              "acceptor emits only p1b/p2b (reply to %d escaped the role \
               boundary)"
              dst)
      replies
  in
  Cls.o2 emit inputs state

(* Leader role: scouts and commanders live inside the leader state; the
   preemption backoff timer is a delayed self-send. *)
let leader_cls io ~locs =
  let inputs =
    Cls.( ||| )
      (Cls.map
         (fun (src, b, accepted) -> Leader.Msg (M.P1b { src; b; accepted }))
         (Cls.base io.p1b))
      (Cls.( ||| )
         (Cls.map (fun (src, b, s) -> Leader.Msg (M.P2b { src; b; s })) (Cls.base io.p2b))
         (Cls.( ||| )
            (Cls.map (fun (s, c) -> Leader.Msg (M.Propose { s; c })) (Cls.base io.propose))
            (Cls.( ||| )
               (Cls.map (fun () -> Leader.Tick) (Cls.base io.ltick))
               (Cls.map (fun () -> Leader.Start) (Cls.base io.start)))))
  in
  let step slf input (leader, _) =
    ignore slf;
    Leader.step leader input
  in
  let state =
    Cls.state "Leader"
      ~init:(fun slf ->
        (Leader.create ~self:slf ~acceptors:locs ~replicas:locs, []))
      ~upd:step inputs
  in
  (state, inputs)

let leader_emit io slf acts =
  List.map
    (function
      | Leader.Send (dst, M.P1a { src; b }) -> Message.send io.p1a dst (src, b)
      | Leader.Send (dst, M.P2a { src; pv }) -> Message.send io.p2a dst (src, pv)
      | Leader.Send (dst, M.Decision { s; c }) -> Message.send io.decision dst (s, c)
      | Leader.Send (dst, (M.P1b _ | M.P2b _ | M.Propose _)) ->
          Sim.Invariant.fail "paxos-spec"
            "leader emits only p1a/p2a/decision (send to %d escaped the \
             role boundary)"
            dst
      | Leader.Set_timer d -> Message.send_after io.ltick d slf ())
    acts

(* Replica role: assigns requests to slots and performs decisions in
   order. *)
let replica_cls io ~locs ~learner =
  let inputs =
    Cls.( ||| )
      (Cls.map (fun c -> Replica.Request c) (Cls.base io.request))
      (Cls.map
         (fun (s, c) -> Replica.Msg (M.Decision { s; c }))
         (Cls.base io.decision))
  in
  let step slf input (rep, _) =
    ignore slf;
    Replica.step rep input
  in
  let state =
    Cls.state "Replica"
      ~init:(fun slf -> (Replica.create ~self:slf ~leaders:locs, []))
      ~upd:step inputs
  in
  let emit _slf _input (_, acts) =
    List.map
      (function
        | Replica.Send (dst, M.Propose { s; c }) ->
            Message.send io.propose dst (s, c)
        | Replica.Send (dst, (M.P1a _ | M.P1b _ | M.P2a _ | M.P2b _ | M.Decision _)) ->
            Sim.Invariant.fail "paxos-spec"
              "replica emits only propose (send to %d escaped the role \
               boundary)"
              dst
        | Replica.Perform { s; c } -> Message.send io.perform learner (s, c))
      acts
  in
  Cls.o2 emit inputs state

(* [make ~locs ~learner] — the full Synod node specification: the three
   roles in parallel, every role broadcasting within [locs]. *)
let make ~locs ~learner =
  let io = declare_io () in
  let acceptor = acceptor_cls io in
  let leader_state, leader_inputs = leader_cls io ~locs in
  let leader =
    Cls.o2
      (fun slf _input (_, acts) -> leader_emit io slf acts)
      leader_inputs leader_state
  in
  let replica = replica_cls io ~locs ~learner in
  let handler = Cls.( ||| ) acceptor (Cls.( ||| ) leader replica) in
  (Loe.Spec.v ~name:"Paxos-Synod" ~locs handler, io)
