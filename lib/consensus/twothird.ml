type loc = int

type 'v msg =
  | Vote of { round : int; value : 'v }
  | Decided of 'v

type 'v input =
  | Propose of 'v
  | Recv of { src : loc; msg : 'v msg }
  | Tick

type 'v action = Send of loc * 'v msg | Decide of 'v

module Loc_map = Map.Make (Int)
module Round_map = Map.Make (Int)

type 'v t = {
  self : loc;
  members : loc list;
  round : int;
  estimate : 'v option;
  decided : 'v option;
  votes : 'v Loc_map.t Round_map.t;  (* round -> voter -> value *)
}

let create ~self ~members =
  assert (List.mem self members);
  {
    self;
    members;
    round = 0;
    estimate = None;
    decided = None;
    votes = Round_map.empty;
  }

let round t = t.round
let decided t = t.decided
let estimate t = t.estimate

let n t = List.length t.members

(* Strictly more than two thirds of the members. *)
let quorum t = ((2 * n t) / 3) + 1

let votes_for t r =
  Option.value ~default:Loc_map.empty (Round_map.find_opt r t.votes)

let record_vote t r voter value =
  let m = votes_for t r in
  (* First vote wins: duplicates (retransmissions) are idempotent. *)
  if Loc_map.mem voter m then t
  else { t with votes = Round_map.add r (Loc_map.add voter value m) t.votes }

let others t = List.filter (fun m -> m <> t.self) t.members

let broadcast t msg = List.map (fun m -> Send (m, msg)) (others t)

(* Smallest most-frequent value among the votes of a round (deterministic:
   counts first, then structural order on values breaks ties). *)
let winner votes =
  let counts =
    Loc_map.fold
      (fun _ v acc ->
        let cur = Option.value (List.assoc_opt v acc) ~default:0 in
        (v, cur + 1) :: List.remove_assoc v acc)
      votes []
  in
  match
    List.sort
      (fun (v1, c1) (v2, c2) ->
        match Int.compare c2 c1 with 0 -> compare v1 v2 | c -> c)
      counts
  with
  | [] ->
      Sim.Invariant.fail "twothird" "winner: called with an empty vote set"
  | (v, c) :: _ -> (v, c)

let decide t v =
  ( { t with decided = Some v; estimate = Some v },
    (Decide v :: broadcast t (Decided v)) )

(* On reaching a quorum in the current round: decide, or adopt the winner
   and advance. *)
let rec check_quorum t acts =
  match t.estimate with
  | None -> (t, acts)
  | Some _ ->
      if t.decided <> None then (t, acts)
      else begin
        let votes = votes_for t t.round in
        if Loc_map.cardinal votes < quorum t then (t, acts)
        else begin
          let v, count = winner votes in
          if count * 3 > 2 * n t then
            let t, dacts = decide t v in
            (t, acts @ dacts)
          else begin
            let t = { t with round = t.round + 1; estimate = Some v } in
            let t = record_vote t t.round t.self v in
            let acts = acts @ broadcast t (Vote { round = t.round; value = v }) in
            check_quorum t acts
          end
        end
      end

let handle_propose t v =
  match (t.estimate, t.decided) with
  | Some _, _ | _, Some _ -> (t, [])
  | None, None ->
      let t = { t with estimate = Some v } in
      let t = record_vote t t.round t.self v in
      let acts = broadcast t (Vote { round = t.round; value = v }) in
      check_quorum t acts

let handle_vote t src r value =
  match t.decided with
  | Some d ->
      (* Frozen: point the laggard at the decision. *)
      (t, [ Send (src, Decided d) ])
  | None ->
  if r < t.round then
    (* Stale vote: help the sender catch up with our current vote. *)
    match t.estimate with
    | Some e -> (t, [ Send (src, Vote { round = t.round; value = e }) ])
    | None -> (t, [])
  else
    let t = record_vote t r src value in
    if r = t.round && t.estimate <> None then check_quorum t []
    else if r > t.round || t.estimate = None then begin
      (* Join (no estimate yet) or jump to a higher round, adopting the
         received value. Safe: if some value was decided in an earlier
         round, every vote in later rounds carries the decided value;
         before any decision, adopting a received estimate preserves
         validity because it originates from some proposal. *)
      let t = { t with round = r; estimate = Some value } in
      let t = record_vote t t.round t.self value in
      let acts = broadcast t (Vote { round = t.round; value }) in
      check_quorum t acts
    end
    else (t, [])

let handle_decided t v =
  if t.decided <> None then (t, [])
  else
    let t = { t with decided = Some v; estimate = Some v } in
    (t, [ Decide v ])

let handle_tick t =
  match (t.decided, t.estimate) with
  | Some v, _ -> (t, broadcast t (Decided v))
  | None, Some e -> (t, broadcast t (Vote { round = t.round; value = e }))
  | None, None -> (t, [])

let step t = function
  | Propose v -> handle_propose t v
  | Recv { src; msg = Vote { round = r; value } } -> handle_vote t src r value
  | Recv { src = _; msg = Decided v } -> handle_decided t v
  | Tick -> handle_tick t
