(* The PERSIST signature: what a durability medium must provide, as a
   record of closures (the same first-class-module-free idiom as
   [Storage.Store.t]). All framing, group-commit and recovery logic lives
   above this interface in [Wal]/[Manager], so the deterministic
   in-memory backend (here) and the real file backend ([File]) run the
   exact same recovery code — the point of wiring durability into the
   model checker.

   Durability contract: bytes passed to [log_append] are volatile until
   the next [log_sync] (or [snap_write], which is atomic and durable by
   itself). A crash may retain any prefix of the unsynced suffix — that
   is how torn tails arise. *)

type t = {
  kind : string;
  log_read : unit -> string;  (* entire log as currently readable *)
  log_append : string -> unit;  (* buffered until [log_sync] *)
  log_sync : unit -> unit;  (* make every appended byte durable *)
  log_truncate : int -> unit;  (* keep only the first n bytes *)
  log_reset : unit -> unit;  (* empty the log (after a snapshot) *)
  snap_read : unit -> string option;
  snap_write : string -> unit;  (* atomic replace, durable on return *)
  sync_count : unit -> int;  (* fsync-equivalents issued (metrics) *)
  close : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Deterministic in-memory backend                                     *)
(* ------------------------------------------------------------------ *)

(* Models the durable/volatile split of a real disk: [durable_log] holds
   synced bytes, [unsynced] the write-cache suffix. [crash] drops the
   cache, optionally retaining a prefix of it — a torn write. *)
type mem = {
  mutable durable_log : string;
  mutable unsynced : string;
  mutable snap : string option;
  mutable syncs : int;
}

let mem_create () = { durable_log = ""; unsynced = ""; snap = None; syncs = 0 }

let mem_crash ?(keep = 0) m =
  let keep = max 0 (min keep (String.length m.unsynced)) in
  m.durable_log <- m.durable_log ^ String.sub m.unsynced 0 keep;
  m.unsynced <- ""

let mem_durable_log m = m.durable_log
let mem_durable_snap m = m.snap

let mem_backend m =
  {
    kind = "mem";
    log_read = (fun () -> m.durable_log ^ m.unsynced);
    log_append = (fun s -> m.unsynced <- m.unsynced ^ s);
    log_sync =
      (fun () ->
        if m.unsynced <> "" then begin
          m.durable_log <- m.durable_log ^ m.unsynced;
          m.unsynced <- ""
        end;
        m.syncs <- m.syncs + 1);
    log_truncate =
      (fun n ->
        let all = m.durable_log ^ m.unsynced in
        m.unsynced <- "";
        m.durable_log <- String.sub all 0 (max 0 (min n (String.length all))));
    log_reset =
      (fun () ->
        m.durable_log <- "";
        m.unsynced <- "");
    snap_read = (fun () -> m.snap);
    snap_write =
      (fun s ->
        m.snap <- Some s;
        m.syncs <- m.syncs + 1);
    sync_count = (fun () -> m.syncs);
    close = (fun () -> ());
  }
