(** The PERSIST signature: a durability medium as a record of closures.

    Bytes passed to [log_append] are volatile until the next [log_sync];
    [snap_write] is atomic and durable on return. Framing and recovery
    live above this interface (in {!Wal} and {!Manager}), so every
    backend runs the same recovery code. *)

type t = {
  kind : string;
  log_read : unit -> string;
  log_append : string -> unit;
  log_sync : unit -> unit;
  log_truncate : int -> unit;  (** keep only the first n bytes *)
  log_reset : unit -> unit;
  snap_read : unit -> string option;
  snap_write : string -> unit;
  sync_count : unit -> int;
  close : unit -> unit;
}

(** {1 Deterministic in-memory backend}

    Models the durable/volatile split of a disk: appended bytes sit in a
    write cache until synced; {!mem_crash} drops the cache, optionally
    retaining a prefix — a torn write. Used by the model checker so
    crash/restart schedules exercise real recovery. *)

type mem

val mem_create : unit -> mem

val mem_backend : mem -> t

val mem_crash : ?keep:int -> mem -> unit
(** Simulate a crash: drop unsynced bytes, keeping the first [keep] of
    them appended to the durable image (a torn tail). Default 0. *)

val mem_durable_log : mem -> string
(** The bytes that would survive a crash right now (observers). *)

val mem_durable_snap : mem -> string option
