(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. The WAL and
   snapshot framing uses it as the per-record integrity check: a torn or
   bit-rotted tail must be distinguishable from a valid record, because
   recovery truncates at the first record that fails the check. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xffffffff) in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xff)
           lxor (!crc lsr 8)
  done;
  !crc lxor 0xffffffff

let string s = update 0 s ~pos:0 ~len:(String.length s)
