(** CRC-32 (IEEE), the per-record integrity check of the WAL framing. *)

val string : string -> int
(** CRC-32 of a whole string; result in [0, 0xffffffff]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running checksum over a substring ([update 0 s ...] over the
    whole string equals {!string}). *)
