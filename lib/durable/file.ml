(* The real Unix file backend: one data directory per node holding

     wal.log       append-only log, made durable by fsync on [log_sync]
     snapshot.bin  latest snapshot, replaced atomically (tmp + rename +
                   directory fsync), durable before [snap_write] returns

   Torn-tail truncation maps to ftruncate. A second, read-only view of a
   live node's directory is available through [read_dir] (the chaos drill
   inspects a victim's durable state from outside the process). *)

let wal_name = "wal.log"
let snap_name = "snapshot.bin"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_whole path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

(* Durable snapshot and log images of a data directory, via plain reads
   (no fds kept): what a recovery starting now would see. *)
let read_dir dir =
  ( read_whole (Filename.concat dir snap_name),
    Option.value ~default:"" (read_whole (Filename.concat dir wal_name)) )

(* Make a rename durable by syncing the containing directory. Successful
   directory syncs count toward [Backend.sync_count] via [syncs].

   This is the one blessed narrow-swallow site of the impl-durable pass
   ([sync-swallowed] stays quiet because the errnos are explicit): some
   filesystems refuse fsync on a directory fd — EINVAL (e.g. certain
   network/overlay mounts) or EOPNOTSUPP — and on those the rename is
   already as durable as the platform allows, so refusing to ack would
   make the backend unusable there rather than safer. Any OTHER fsync
   failure (EIO, ENOSPC) propagates: it means acked data may not be on
   disk, which recovery must hear about. *)
let fsync_dir ~syncs dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.fsync fd with
          | () -> incr syncs
          | exception Unix.Unix_error ((Unix.EINVAL | Unix.EOPNOTSUPP), _, _)
            ->
              ())
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.EACCES), _, _) ->
      (* directory vanished or unreadable: nothing to sync against; the
         subsequent reopen/recovery path reports the real story *)
      ()

let create ~dir () : Backend.t =
  mkdir_p dir;
  let wal_path = Filename.concat dir wal_name in
  let snap_path = Filename.concat dir snap_name in
  let tmp_path = Filename.concat dir (snap_name ^ ".tmp") in
  let fd =
    Unix.openfile wal_path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let syncs = ref 0 in
  {
    Backend.kind = "file:" ^ dir;
    log_read =
      (fun () -> Option.value ~default:"" (read_whole wal_path));
    log_append =
      (fun s ->
        let n = Unix.write_substring fd s 0 (String.length s) in
        if n <> String.length s then
          Sim.Invariant.fail "durable" "%s: short write (%d of %d bytes)"
            wal_path n (String.length s));
    log_sync =
      (fun () ->
        Unix.fsync fd;
        incr syncs);
    log_truncate = (fun n -> Unix.ftruncate fd (max 0 n));
    log_reset = (fun () -> Unix.ftruncate fd 0);
    snap_read = (fun () -> read_whole snap_path);
    snap_write =
      (fun s ->
        let tfd =
          Unix.openfile tmp_path
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let n = Unix.write_substring tfd s 0 (String.length s) in
        Unix.fsync tfd;
        Unix.close tfd;
        if n <> String.length s then
          Sim.Invariant.fail "durable" "%s: short snapshot write" tmp_path;
        Unix.rename tmp_path snap_path;
        fsync_dir ~syncs dir;
        incr syncs);
    sync_count = (fun () -> !syncs);
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }
