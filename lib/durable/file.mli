(** Unix file backend: [wal.log] (fsync on sync) and [snapshot.bin]
    (atomic tmp + rename replace) under one data directory per node. *)

val create : dir:string -> unit -> Backend.t
(** Creates [dir] (and parents) if needed and opens the WAL for append. *)

val read_dir : string -> string option * string
(** [(snapshot, log)] images of a data directory via plain reads — a
    read-only observer's view of what recovery would see (used by the
    chaos drill to inspect a victim or survivor from outside). *)
