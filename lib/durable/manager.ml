(* The durability manager: group-committed WAL appends, periodic
   snapshots, and the deterministic [recover] path shared by every
   backend.

   Recovery invariants (checked by the model-checker monitors and the
   qcheck crash-replay property):

   - No committed loss: every record the backend reported durable (synced
     before the crash) is either covered by the snapshot or replayed.
   - Torn-tail truncation: the unsynced suffix a crash tears is cut at
     the last whole valid record; a torn frame never yields a record.
   - Fingerprint agreement: the recovered state's fingerprint equals the
     hash field of the last durable record — and, since [idx] positions
     the record in the replicated total order, equals any other replica's
     fingerprint at the same position.

   [policy.replay_tail = false] is a deliberately-broken fixture: it
   skips WAL replay after snapshot install, losing every committed
   record past the snapshot — the defect the no-committed-loss monitor
   must be able to catch. *)

type policy = {
  group_commit : int;  (* sync after this many appended records; 1 = per commit *)
  snapshot_every : int;  (* snapshot + log reset cadence in records; 0 = never *)
  replay_tail : bool;  (* false = broken fixture: skip WAL replay *)
}

let default_policy = { group_commit = 8; snapshot_every = 0; replay_tail = true }

type t = {
  backend : Backend.t;
  policy : policy;
  mutable last_idx : int;
  mutable last_aux : int;
  mutable last_hash : int;
  mutable synced_idx : int;  (* durable applied position *)
  mutable pending : int;  (* records appended since the last sync *)
  mutable since_snap : int;
  mutable appends : int;
  mutable snapshots : int;
}

type report = {
  snapshot_present : bool;
  snapshot_valid : bool;
  snapshot_idx : int;  (* -1 when no valid snapshot *)
  wal_records : int;  (* whole valid records scanned *)
  wal_replayed : int;
  wal_stale : int;  (* records at or below the snapshot position *)
  torn_bytes : int;  (* truncated from the tail *)
  recovered_idx : int;  (* -1 when nothing recovered *)
  recovered_aux : int;
  recovered_hash : int;
}

let recover backend policy ~install ~apply =
  let snap = backend.Backend.snap_read () in
  let snapshot_present = snap <> None in
  let snapshot_valid, snap_rec =
    match snap with
    | None -> (false, None)
    | Some s -> (
        match Snapshot.decode s with
        | Ok r ->
            install r;
            (true, Some r)
        | Error _ -> (false, None))
  in
  let scan = Wal.scan (backend.Backend.log_read ()) in
  if scan.Wal.torn_bytes > 0 then
    backend.Backend.log_truncate scan.Wal.valid_bytes;
  let cur_idx = ref (-1)
  and cur_aux = ref 0
  and cur_hash = ref 0 in
  (match snap_rec with
  | Some r ->
      cur_idx := r.Wal.idx;
      cur_aux := r.Wal.aux;
      cur_hash := r.Wal.hash
  | None -> ());
  let replayed = ref 0 and stale = ref 0 in
  if policy.replay_tail then
    List.iter
      (fun (r : Wal.record) ->
        if r.Wal.idx > !cur_idx then begin
          apply r;
          cur_idx := r.Wal.idx;
          cur_aux := r.Wal.aux;
          cur_hash := r.Wal.hash;
          incr replayed
        end
        else incr stale)
      scan.Wal.records;
  let t =
    {
      backend;
      policy;
      last_idx = !cur_idx;
      last_aux = !cur_aux;
      last_hash = !cur_hash;
      synced_idx = !cur_idx;
      pending = 0;
      since_snap = !replayed;
      appends = 0;
      snapshots = 0;
    }
  in
  let report =
    {
      snapshot_present;
      snapshot_valid;
      snapshot_idx =
        (match snap_rec with Some r -> r.Wal.idx | None -> -1);
      wal_records = List.length scan.Wal.records;
      wal_replayed = !replayed;
      wal_stale = !stale;
      torn_bytes = scan.Wal.torn_bytes;
      recovered_idx = !cur_idx;
      recovered_aux = !cur_aux;
      recovered_hash = !cur_hash;
    }
  in
  (t, report)

let flush t =
  if t.pending > 0 then begin
    t.backend.Backend.log_sync ();
    t.pending <- 0;
    t.synced_idx <- t.last_idx
  end

let append t (r : Wal.record) =
  t.backend.Backend.log_append (Wal.encode_record r);
  t.last_idx <- r.Wal.idx;
  t.last_aux <- r.Wal.aux;
  t.last_hash <- r.Wal.hash;
  t.pending <- t.pending + 1;
  t.since_snap <- t.since_snap + 1;
  t.appends <- t.appends + 1;
  if t.pending >= max 1 t.policy.group_commit then flush t

(* Write a snapshot of the current state now: durable before the log is
   reset, so a crash between the two steps only leaves stale records
   (skipped on replay by their idx). *)
let snapshot_now t ~payload =
  t.backend.Backend.snap_write
    (Snapshot.encode
       { Wal.idx = t.last_idx; aux = t.last_aux; hash = t.last_hash; payload });
  t.backend.Backend.log_reset ();
  t.pending <- 0;
  t.since_snap <- 0;
  t.snapshots <- t.snapshots + 1;
  t.synced_idx <- t.last_idx

let maybe_snapshot t ~payload =
  if t.policy.snapshot_every > 0 && t.since_snap >= t.policy.snapshot_every
  then snapshot_now t ~payload:(payload ())

(* Record the state installed by an out-of-band transfer (ShadowDB's
   snapshot-based state sync): the WAL contents no longer describe the
   database, so pin the new position and reset the log around it. *)
let install_state t (r : Wal.record) =
  t.last_idx <- r.Wal.idx;
  t.last_aux <- r.Wal.aux;
  t.last_hash <- r.Wal.hash;
  snapshot_now t ~payload:r.Wal.payload

let applied_idx t = t.last_idx
let durable_idx t = t.synced_idx

type stats = { appends : int; syncs : int; snapshots : int }

let stats (t : t) =
  {
    appends = t.appends;
    syncs = t.backend.Backend.sync_count ();
    snapshots = t.snapshots;
  }

(* ------------------------------------------------------------------ *)
(* Read-only inspection (monitors, chaos drill)                        *)
(* ------------------------------------------------------------------ *)

type inspection = {
  i_snapshot : Wal.record option;
  i_records : Wal.record list;
  i_torn : int;
  i_durable_idx : int;  (* -1 when nothing durable *)
}

let inspect ~snap ~log =
  let snap_rec =
    match snap with
    | None -> None
    | Some s -> ( match Snapshot.decode s with Ok r -> Some r | Error _ -> None)
  in
  let scan = Wal.scan log in
  let durable =
    List.fold_left
      (fun acc (r : Wal.record) -> max acc r.Wal.idx)
      (match snap_rec with Some r -> r.Wal.idx | None -> -1)
      scan.Wal.records
  in
  {
    i_snapshot = snap_rec;
    i_records = scan.Wal.records;
    i_torn = scan.Wal.torn_bytes;
    i_durable_idx = durable;
  }

(* State fingerprint at total-order position [idx], if this image
   retains it (the snapshot pins one position; records pin the rest). *)
let hash_at info idx =
  match
    List.find_opt (fun (r : Wal.record) -> r.Wal.idx = idx) info.i_records
  with
  | Some r -> Some r.Wal.hash
  | None -> (
      match info.i_snapshot with
      | Some r when r.Wal.idx = idx -> Some r.Wal.hash
      | _ -> None)
