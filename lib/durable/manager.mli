(** The durability manager: group-committed WAL appends, periodic
    snapshots, and the deterministic recovery path shared by the file
    and in-memory backends. *)

type policy = {
  group_commit : int;
      (** Sync after this many appended records; [1] = fsync per commit. *)
  snapshot_every : int;
      (** Snapshot + log-reset cadence in applied records; [0] = never. *)
  replay_tail : bool;
      (** [false] is a deliberately-broken fixture that skips WAL replay
          after snapshot install — used to prove the no-committed-loss
          monitor can catch real recovery defects. *)
}

val default_policy : policy
(** [{ group_commit = 8; snapshot_every = 0; replay_tail = true }] *)

type t

type report = {
  snapshot_present : bool;
  snapshot_valid : bool;
  snapshot_idx : int;  (** [-1] when no valid snapshot. *)
  wal_records : int;  (** Whole valid records scanned from the log. *)
  wal_replayed : int;
  wal_stale : int;  (** Records at or below the snapshot position. *)
  torn_bytes : int;  (** Bytes truncated from a torn tail. *)
  recovered_idx : int;  (** [-1] when nothing was recovered. *)
  recovered_aux : int;
  recovered_hash : int;
}

val recover :
  Backend.t ->
  policy ->
  install:(Wal.record -> unit) ->
  apply:(Wal.record -> unit) ->
  t * report
(** Deterministic recovery: decode and [install] the latest valid
    snapshot (if any), truncate any torn WAL tail, then [apply] each
    whole log record strictly above the current position, in order. *)

val append : t -> Wal.record -> unit
(** Append one applied-batch record; syncs when the group-commit window
    fills. *)

val flush : t -> unit
(** Force a sync of any pending appends (no-op when none are pending). *)

val maybe_snapshot : t -> payload:(unit -> string) -> unit
(** Snapshot + log reset if the policy's cadence has been reached; the
    state image is only serialized when a snapshot is actually taken. *)

val snapshot_now : t -> payload:string -> unit
(** Unconditional snapshot of the current position + log reset. *)

val install_state : t -> Wal.record -> unit
(** Pin the position/fingerprint of a state image installed out-of-band
    (ShadowDB state transfer) and snapshot it, resetting the now-stale
    log. *)

val applied_idx : t -> int
(** Highest position appended (durable or not); [-1] initially. *)

val durable_idx : t -> int
(** Highest position known durable (synced or snapshotted); [-1]
    initially. *)

type stats = { appends : int; syncs : int; snapshots : int }

val stats : t -> stats

(** {2 Read-only inspection} — monitors and the chaos drill examine
    durable images without a live manager. *)

type inspection = {
  i_snapshot : Wal.record option;
  i_records : Wal.record list;
  i_torn : int;
  i_durable_idx : int;  (** [-1] when nothing durable. *)
}

val inspect : snap:string option -> log:string -> inspection

val hash_at : inspection -> int -> int option
(** State fingerprint at total-order position [idx], if this image
    retains it. *)
