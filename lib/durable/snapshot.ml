(* Snapshot blob: a magic header followed by one WAL-framed record whose
   payload is the serialized database image (schema-free row dump on the
   ShadowDB side — this layer treats it as opaque bytes) and whose
   idx/aux/hash fields pin the applied position and state fingerprint the
   image corresponds to. Reusing the WAL frame gives the snapshot the
   same CRC and truncation-rejection guarantees as log records: a partial
   snapshot file (crash before the backend's atomic rename, or a corrupt
   medium) decodes to [Error] and recovery falls back to log replay. *)

let magic = "SDBSNAP2"

let encode (r : Wal.record) = magic ^ Wal.encode_record r

let decode s =
  let ml = String.length magic in
  if String.length s < ml || String.sub s 0 ml <> magic then
    Error "snapshot: bad magic"
  else
    let body = String.sub s ml (String.length s - ml) in
    match Wal.scan body with
    | { Wal.records = [ r ]; torn_bytes = 0; _ } -> Ok r
    | { Wal.torn_bytes; _ } when torn_bytes > 0 ->
        Error "snapshot: truncated or corrupt image"
    | _ -> Error "snapshot: malformed image"
