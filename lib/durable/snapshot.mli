(** Snapshot blob: magic header + one WAL-framed record (payload = the
    serialized state image; idx/aux/hash = the applied position and
    fingerprint it corresponds to). A partial or corrupt blob decodes to
    [Error] and recovery falls back to log replay. *)

val encode : Wal.record -> string
val decode : string -> (Wal.record, string) result
