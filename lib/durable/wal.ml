(* WAL record framing (codec-v2 style, self-delimiting, checksummed).

   Each record is framed as

     [4-byte BE body length] [4-byte BE CRC-32 of body] [body]

   with body = varint idx ‖ varint aux ‖ varint hash ‖ varint payload
   length ‖ payload. Varints are the codec-v2 zigzag LEB128 encoding, so
   negative sentinels and full-range state hashes round-trip. [idx] is
   the record's position in the replicated total order, [aux] a
   caller-owned companion counter (ShadowDB stores the replica's
   delivered-entry count), [hash] the state fingerprint after applying
   the record, [payload] opaque bytes (this layer never interprets them,
   which keeps the dependency direction durable ← shadowdb acyclic).

   [scan] walks a raw log image and stops at the first frame that is
   short, oversized, or fails its CRC: everything before is the valid
   prefix, everything after is a torn tail for recovery to truncate.
   Because the length prefix is checked against the remaining bytes and
   the CRC covers the whole body, no proper prefix of a record is ever
   accepted (the qcheck suite proves this for every cut point). *)

type record = { idx : int; aux : int; hash : int; payload : string }

let max_body = 256 * 1024 * 1024

(* Zigzag LEB128, identical format to Shadowdb.Codec. *)
let add_varint buf n =
  let u = ref ((n lsl 1) lxor (n asr 62)) in
  while !u lsr 7 <> 0 do
    Buffer.add_char buf (Char.chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.chr !u)

(* Reads a varint at [!pos]; None on truncation/overflow. *)
let read_varint s pos =
  let n = String.length s in
  let rec go acc shift =
    if !pos >= n || shift > 62 then None
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some ((acc lsr 1) lxor (-(acc land 1)))
      else go acc (shift + 7)
    end
  in
  go 0 0

let encode_body r =
  let buf = Buffer.create (String.length r.payload + 24) in
  add_varint buf r.idx;
  add_varint buf r.aux;
  add_varint buf r.hash;
  add_varint buf (String.length r.payload);
  Buffer.add_string buf r.payload;
  Buffer.contents buf

let decode_body s =
  let pos = ref 0 in
  match (read_varint s pos, read_varint s pos, read_varint s pos) with
  | Some idx, Some aux, Some hash -> (
      match read_varint s pos with
      | Some plen
        when plen >= 0 && !pos + plen = String.length s ->
          Some { idx; aux; hash; payload = String.sub s !pos plen }
      | _ -> None)
  | _ -> None

let encode_record r =
  let body = encode_body r in
  let len = String.length body in
  let buf = Buffer.create (len + 8) in
  Buffer.add_uint8 buf ((len lsr 24) land 0xff);
  Buffer.add_uint8 buf ((len lsr 16) land 0xff);
  Buffer.add_uint8 buf ((len lsr 8) land 0xff);
  Buffer.add_uint8 buf (len land 0xff);
  let crc = Crc32.string body in
  Buffer.add_uint8 buf ((crc lsr 24) land 0xff);
  Buffer.add_uint8 buf ((crc lsr 16) land 0xff);
  Buffer.add_uint8 buf ((crc lsr 8) land 0xff);
  Buffer.add_uint8 buf (crc land 0xff);
  Buffer.add_string buf body;
  Buffer.contents buf

let be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

type scan_result = {
  records : record list;  (* oldest first *)
  valid_bytes : int;  (* log prefix covered by accepted records *)
  torn_bytes : int;  (* trailing bytes rejected (short/corrupt frame) *)
}

let scan s =
  let n = String.length s in
  let records = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if n - !pos < 8 then stop := true
    else begin
      let len = be32 s !pos in
      if len < 0 || len > max_body || n - !pos - 8 < len then stop := true
      else begin
        let crc_stored = be32 s (!pos + 4) in
        let crc = Crc32.update 0 s ~pos:(!pos + 8) ~len in
        if crc <> crc_stored then stop := true
        else
          match decode_body (String.sub s (!pos + 8) len) with
          | None -> stop := true
          | Some r ->
              records := r :: !records;
              pos := !pos + 8 + len
      end
    end
  done;
  { records = List.rev !records; valid_bytes = !pos; torn_bytes = n - !pos }
