(** WAL record framing: length-prefixed, CRC-checked, self-delimiting
    records over opaque payloads (codec-v2 style varint body).

    [idx] is the record's position in the replicated total order, [aux]
    a caller-owned companion counter, [hash] the state fingerprint after
    applying the record. *)

type record = { idx : int; aux : int; hash : int; payload : string }

val encode_record : record -> string

type scan_result = {
  records : record list;  (** oldest first *)
  valid_bytes : int;  (** log prefix covered by accepted records *)
  torn_bytes : int;  (** trailing bytes rejected (short/corrupt frame) *)
}

val scan : string -> scan_result
(** Walk a raw log image, stopping at the first short, oversized, or
    CRC-failing frame. No proper prefix of a record is ever accepted. *)
