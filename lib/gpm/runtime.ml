module Message = Loe.Message
module Engine = Sim.Engine

type world = Message.t Engine.t

type backend = Tree | Fused

type stepper = { mutable step : Message.t -> Message.directed list }

let make_stepper backend loc main =
  match backend with
  | Fused ->
      let machine = Opt.compile loc main in
      { step = (fun m -> Opt.step machine m) }
  | Tree ->
      let proc = ref (Compile.compile loc main) in
      {
        step =
          (fun m ->
            let proc', outs = Proc.step !proc m in
            proc := proc';
            outs);
      }

let deploy ?(backend = Fused) ?(profile = Engine_profile.Compiled)
    ?(step_cost = 0.0) world ~n make =
  let spec = ref None in
  let cpu_factor = Engine_profile.cpu_factor profile in
  let handler_for locref () =
    let stepper = ref None in
    let pending : (int, Message.directed) Hashtbl.t = Hashtbl.create 8 in
    let get () =
      match !stepper with
      | Some s -> s
      | None ->
          let s =
            match !spec with
            | Some spec -> make_stepper backend !locref spec.Loe.Spec.main
            | None ->
                Sim.Invariant.fail "gpm-runtime"
                  "deploy: node %d stepped before the spec was built" !locref
          in
          stepper := Some s;
          s
    in
    let rec feed ctx msg =
      Engine.charge ctx step_cost;
      let outs = (get ()).step msg in
      List.iter
        (fun (d : Message.directed) ->
          if d.Message.delay <= 0.0 then Engine.send ctx d.Message.dst d.Message.msg
          else begin
            let tid = Engine.set_timer ctx d.Message.delay "dmsg" in
            Hashtbl.replace pending tid d
          end)
        outs
    and handle ctx = function
      | Engine.Init -> ()
      | Engine.Recv { msg; _ } -> feed ctx msg
      | Engine.Timer { id; _ } -> (
          match Hashtbl.find_opt pending id with
          | None -> ()
          | Some d ->
              Hashtbl.remove pending id;
              if d.Message.dst = Engine.self ctx then feed ctx d.Message.msg
              else Engine.send ctx d.Message.dst d.Message.msg)
    in
    handle
  in
  let ids =
    List.init n (fun i ->
        let locref = ref (-1) in
        let id =
          Engine.spawn world
            ~name:(Printf.sprintf "loc%d" i)
            ~cpu_factor
            (handler_for locref)
        in
        locref := id;
        id)
  in
  (* Node ids are assigned densely in spawn order, so location [i] is node
     [List.nth ids i]; the spec is built over the real identifiers. *)
  spec := Some (make ids);
  ids

let inject world ~dst msg = Engine.send_external world ~src:dst dst msg
