module Engine = Sim.Engine
module Tob = Broadcast.Tob

type point = { label : string; throughput : float; latency_ms : float }

(* A generic TOB load point over any consensus core. *)
module Tob_load (C : Consensus.Consensus_intf.S) = struct
  module Shell = Broadcast.Shell.Make (C)

  type wire = Svc of Shell.T.msg | Note of Tob.deliver

  let run ?batch_cap ?window ~n_members ~n_clients ~msgs_per_client () =
    let world : wire Engine.t = Engine.create ~seed:47 () in
    let latencies = Stats.Sample.create () in
    let last = ref 0.0 in
    let client_ids = ref [] in
    let members = ref [] in
    let mk_client () =
      let locref = ref (-1) in
      let id =
        Engine.spawn world ~name:"abl-client" (fun () ->
            let next_id = ref 0 in
            let sent_at = ref 0.0 in
            let send ctx =
              sent_at := Engine.time ctx;
              Engine.send ctx ~size:164 (List.hd !members)
                (Svc
                   (Shell.T.Broadcast
                      { Tob.origin = !locref; id = !next_id; payload = "abl" }))
            in
            fun ctx -> function
              | Engine.Init -> send ctx
              | Engine.Recv { msg = Note d; _ } ->
                  if
                    d.Tob.entry.Tob.origin = !locref
                    && d.Tob.entry.Tob.id = !next_id
                  then begin
                    let now = Engine.time ctx in
                    Stats.Sample.add latencies (now -. !sent_at);
                    last := now;
                    incr next_id;
                    if !next_id < msgs_per_client then send ctx
                  end
              | Engine.Recv _ | Engine.Timer _ -> ())
      in
      locref := id;
      id
    in
    let svc =
      Shell.spawn ?batch_cap ?window ~world:(Runtime.Of_sim.of_engine world)
        ~inj:(fun m -> Svc m)
        ~prj:(function Svc m -> Some m | Note _ -> None)
        ~inj_notify:(fun d -> Note d)
        ~n:n_members
        ~subscribers:(fun () -> !client_ids)
        ()
    in
    members := svc;
    client_ids := List.init n_clients (fun _ -> mk_client ());
    Engine.run ~until:3600.0 ~max_events:50_000_000 world;
    ( float_of_int (n_clients * msgs_per_client) /. !last,
      Stats.Sample.mean latencies *. 1e3 )
end

module Paxos_load = Tob_load (Consensus.Paxos)
module Twothird_load = Tob_load (Consensus.Twothird_multi)

let batching ?(clients = 24) ?(msgs_per_client = 80) () =
  let t1, l1 =
    Paxos_load.run ~n_members:3 ~n_clients:clients ~msgs_per_client ()
  in
  let t2, l2 =
    Paxos_load.run ~batch_cap:1 ~n_members:3 ~n_clients:clients
      ~msgs_per_client ()
  in
  [
    { label = "batching on (cap 64)"; throughput = t1; latency_ms = l1 };
    { label = "batching off (cap 1)"; throughput = t2; latency_ms = l2 };
  ]

(* Consensus pipelining: batches a member may have in flight at once.
   Batching is forced off (cap 1) so every entry is its own consensus
   instance — the backlog that a window > 1 can overlap. *)
let pipelining ?(clients = 24) ?(msgs_per_client = 80) () =
  List.map
    (fun w ->
      let t, l =
        Paxos_load.run ~batch_cap:1 ~window:w ~n_members:3 ~n_clients:clients
          ~msgs_per_client ()
      in
      {
        label = Printf.sprintf "pipelining window %d" w;
        throughput = t;
        latency_ms = l;
      })
    [ 1; 2; 4 ]

let consensus_modules ?(clients = 16) ?(msgs_per_client = 80) () =
  let t1, l1 =
    Paxos_load.run ~n_members:3 ~n_clients:clients ~msgs_per_client ()
  in
  let t2, l2 =
    Twothird_load.run ~n_members:4 ~n_clients:clients ~msgs_per_client ()
  in
  [
    { label = "paxos-synod (3 members)"; throughput = t1; latency_ms = l1 };
    { label = "twothird (4 members)"; throughput = t2; latency_ms = l2 };
  ]

let lock_granularity ?(clients = 16) ?(count = 150) () =
  let module B = Baselines.Server in
  let run granularity =
    let world : B.wire Engine.t = Engine.create ~seed:53 () in
    let rworld = Runtime.Of_sim.of_engine world in
    let latencies = Stats.Sample.create () in
    let last = ref 0.0 in
    let cluster =
      (* Locks are held across a 1 ms multi-statement transaction body, so
         hold time exceeds CPU time and granularity becomes visible. *)
      B.spawn ~world:rworld ~stmt_delay:(fun _ -> 1.0e-3)
        ~registry:Workload.Bank.registry
        ~setup:(fun db -> Workload.Bank.setup ~rows:1000 db)
        (B.Semisync_repl granularity)
    in
    let (_ : unit -> int) =
      B.spawn_clients ~world:rworld ~cluster ~n:clients ~count
        ~make_txn:(fun ~client ~seq ->
          (* Half the clients hammer one hot row. *)
          let account =
            if client mod 2 = 0 then 0
            else abs (Hashtbl.hash (client, seq)) mod 1000
          in
          Workload.Bank.deposit ~account ~amount:1)
        ~on_commit:(fun now l ->
          Stats.Sample.add latencies l;
          last := now)
        ()
    in
    Engine.run ~until:3600.0 ~max_events:50_000_000 world;
    ( float_of_int (cluster.B.commits ()) /. !last,
      Stats.Sample.mean latencies *. 1e3 )
  in
  let t1, l1 = run Storage.Lock.Table_level in
  let t2, l2 = run Storage.Lock.Row_level in
  [
    { label = "table-level locks"; throughput = t1; latency_ms = l1 };
    { label = "row-level locks"; throughput = t2; latency_ms = l2 };
  ]

(* ShadowDB's three replication styles over the same bank workload: the
   hand-coded primary-backup normal case, chain replication (the other
   protocol the paper names as buildable on the TOB), and state machine
   replication through the broadcast service. *)
let replication_styles ?(clients = 24) ?(count = 400) () =
  let module S = Shadowdb.System.Make (Consensus.Paxos) in
  let rows = 10_000 in
  let run label target_of =
    let world : S.wire Sim.Engine.t = Engine.create ~seed:59 () in
    let rworld = Runtime.Of_sim.of_engine world in
    let latencies = Stats.Sample.create () in
    let last = ref 0.0 in
    let commits = ref 0 in
    let target = target_of rworld in
    let _, _ =
      S.spawn_clients ~world:rworld ~target ~n:clients ~count
        ~make_txn:(fun ~client ~seq ->
          Workload.Bank.deposit
            ~account:(abs (Hashtbl.hash (client, seq)) mod rows)
            ~amount:1)
        ~retry_timeout:30.0
        ~on_commit:(fun now l ->
          incr commits;
          last := now;
          Stats.Sample.add latencies l)
        ()
    in
    Engine.run ~until:36_000.0 ~max_events:100_000_000 world;
    {
      label;
      throughput = float_of_int !commits /. !last;
      latency_ms = Stats.Sample.mean latencies *. 1e3;
    }
  in
  let registry = Workload.Bank.registry in
  let setup db = Workload.Bank.setup ~rows db in
  [
    run "primary-backup (2+1)" (fun world ->
        S.To_pbr (S.spawn_pbr ~world ~registry ~setup ~n_active:2 ~n_spare:1 ()));
    run "chain (3+1)" (fun world ->
        S.To_pbr
          (S.spawn_chain ~read_kinds:[ "balance" ] ~world ~registry ~setup
             ~n_active:3 ~n_spare:1 ()));
    run "state machine (2 of 3)" (fun world ->
        S.To_smr (S.spawn_smr ~world ~registry ~setup ~n_active:2 ()));
  ]

let print ~title points =
  Stats.Table.print_table ~title
    ~header:[ "variant"; "throughput/s"; "latency (ms)" ]
    (List.map
       (fun p ->
         [ p.label; Stats.Table.fmt_f p.throughput; Stats.Table.fmt_f p.latency_ms ])
       points)
