(** Ablation experiments for the design choices called out in DESIGN.md,
    run in virtual time like the paper figures:

    - batching on/off in the broadcast service (the paper credits batching
      for the compiled service's 900 msgs/s);
    - consensus pipelining window (1, 2, 4 batches in flight per member);
    - the consensus module under the broadcast service (Paxos-Synod vs
      TwoThird — the paper's modularity claim, Sec. II-D);
    - lock granularity under contention (table vs row — the mechanism
      behind the H2-repl and MySQL-repl curves of Fig. 9(a)). *)

type point = { label : string; throughput : float; latency_ms : float }

val batching : ?clients:int -> ?msgs_per_client:int -> unit -> point list
(** Compiled broadcast service with the default batch cap vs forced
    batches of one. *)

val pipelining : ?clients:int -> ?msgs_per_client:int -> unit -> point list
(** Broadcast service with consensus pipelining windows 1, 2 and 4 —
    batches a member may have in flight through consensus at once —
    with batching forced off so the backlog is visible. *)

val consensus_modules : ?clients:int -> ?msgs_per_client:int -> unit -> point list
(** The same broadcast workload over the Paxos core (3 members, f = 1)
    and over the TwoThird core (4 members, f < n/3). *)

val lock_granularity : ?clients:int -> ?count:int -> unit -> point list
(** Same-row update contention under table-level vs row-level locks. *)

val replication_styles : ?clients:int -> ?count:int -> unit -> point list
(** ShadowDB's three replication styles (primary-backup, chain, state
    machine replication) on the bank workload. Chain replication is the
    extension protocol the paper names as buildable on the broadcast
    service. *)

val print : title:string -> point list -> unit
