module Engine = Sim.Engine
module Store = Storage.Store
module Database = Storage.Database
module Value = Storage.Value
module S = Shadowdb.System.Make (Consensus.Paxos)

(* ---------------- (a) recovery timeline ---------------- *)

type timeline = {
  bins : (float * float) list;
  crash_at : float;
  detected_at : float;
  config_delivered_at : float;
  resumed_at : float;
}

let run_timeline ?(rows = 50_000) ?(crash_at = 15.0) ?(detect_timeout = 10.0)
    ?(duration = 60.0) ?(n_clients = 10) () =
  let world : S.wire Engine.t = Engine.create ~seed:23 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let tun =
    {
      Shadowdb.System.default_tuning with
      detect_timeout;
      hb_interval = detect_timeout /. 5.0;
      (* Force the full-snapshot state-transfer path, as in the paper's
         experiment (the spare receives the whole 50,000-row database). *)
      cache_cap = 100;
    }
  in
  (* The paper's diversity deployment: H2 on the primary, HSQLDB on the
     backup, Derby on the spare. *)
  let cluster =
    S.spawn_pbr ~tun
      ~backends:[ Store.Hazel; Store.Hickory; Store.Dogwood ]
      ~world:rworld ~registry:Workload.Bank.registry
      ~setup:(fun db -> Workload.Bank.setup ~rows db)
      ~n_active:2 ~n_spare:1 ()
  in
  let series = Stats.Series.create ~bin:1.0 in
  let resumed_at = ref 0.0 in
  let _, _ =
    S.spawn_clients ~world:rworld ~target:(S.To_pbr cluster) ~n:n_clients
      ~count:max_int
      ~make_txn:(fun ~client ~seq ->
        let account = abs (Hashtbl.hash (client, seq)) mod rows in
        Workload.Bank.deposit ~account ~amount:1)
      ~retry_timeout:3.0
      ~on_commit:(fun now _lat ->
        Stats.Series.record series now;
        if now > crash_at && !resumed_at = 0.0 then resumed_at := now)
      ()
  in
  Engine.at world crash_at (fun () ->
      Engine.crash world cluster.S.pbr_initial_primary);
  (* Poll for the configuration change (the survivor's primary moves). *)
  let config_delivered_at = ref 0.0 in
  let survivor = List.nth cluster.S.pbr_replicas 1 in
  let rec poll t =
    if t < duration then
      Engine.at world t (fun () ->
          if
            !config_delivered_at = 0.0
            && cluster.S.pbr_primary_of survivor
               <> cluster.S.pbr_initial_primary
          then config_delivered_at := Engine.now world;
          poll (t +. 0.05))
  in
  poll (crash_at +. 0.1);
  Engine.run ~until:duration ~max_events:500_000_000 world;
  {
    bins = Stats.Series.bins series;
    crash_at;
    detected_at = crash_at +. detect_timeout;
    config_delivered_at = !config_delivered_at;
    resumed_at = !resumed_at;
  }

let print_timeline t =
  Stats.Table.print_series
    ~title:"Fig. 10(a) — ShadowDB-PBR execution with a primary crash"
    ~xlabel:"time (s)" ~ylabel:"committed txns/s" t.bins;
  Printf.printf
    "# crash at %.1f s; detection (configured) at %.1f s; new configuration \
     adopted at %.2f s; clients resumed at %.2f s (state transfer ≈ %.2f s)\n"
    t.crash_at t.detected_at t.config_delivered_at t.resumed_at
    (t.resumed_at -. t.config_delivered_at)

(* ---------------- (b) state transfer cost ---------------- *)

type transfer = { rows : int; row_bytes : int; columns : int; seconds : float }

let chunk_target_bytes = 50_000 (* the paper's ≈50 kB batches *)

(* Ship a snapshot of [src] into [dst] over the simulator, one chunk per
   activation (pipelining with the receiver), and return the virtual time
   at which the receiver finished installing the last chunk. *)
let measure_transfer src_db dst_db =
  let world : Shadowdb.Db_msg.t Engine.t = Engine.create ~seed:29 () in
  let finished = ref 0.0 in
  let receiver =
    Engine.spawn world ~name:"xfer-dst" (fun () ctx -> function
      | Engine.Recv { msg = Shadowdb.Db_msg.Snapshot { rows; last; _ }; _ } ->
          (match Database.load_rows dst_db rows with Ok () | Error _ -> ());
          Engine.charge ctx (Database.take_cost dst_db);
          if last then finished := Engine.time ctx
      | Engine.Recv _ | Engine.Init | Engine.Timer _ -> ())
  in
  let all_rows = Database.dump src_db in
  ignore (Database.take_cost src_db);
  let _sender =
    Engine.spawn world ~name:"xfer-src" (fun () ->
        let remaining = ref all_rows in
        (* The paper reports a fixed session-establishment overhead of a
           few hundred ms before rows flow. *)
        let setup_done = ref false in
        fun ctx -> function
          | Engine.Init ->
              Engine.charge ctx 0.35;
              setup_done := true;
              ignore (Engine.set_timer ctx 0.0 "chunk")
          | Engine.Timer _ ->
              if !setup_done && !remaining <> [] then begin
                let rec take bytes acc rest =
                  match rest with
                  | [] -> (List.rev acc, [])
                  | ((_, row) as item) :: tl ->
                      let b =
                        Array.fold_left
                          (fun a v -> a + Value.serialized_size v)
                          8 row
                      in
                      if bytes + b > chunk_target_bytes && acc <> [] then
                        (List.rev acc, rest)
                      else take (bytes + b) (item :: acc) tl
                in
                let chunk, rest = take 0 [] !remaining in
                remaining := rest;
                List.iter
                  (fun (_, row) ->
                    let bytes =
                      Array.fold_left
                        (fun a v -> a + Value.serialized_size v)
                        0 row
                    in
                    Engine.charge ctx
                      (Storage.Cost.serialize_row
                         ~columns:(Array.length row) ~bytes))
                  chunk;
                let msg =
                  Shadowdb.Db_msg.Snapshot
                    {
                      cfg = 0;
                      rows = chunk;
                      upto = 0;
                      last = rest = [];
                      clients = [];
                    }
                in
                Engine.send ctx ~size:(Shadowdb.Db_msg.size msg) receiver msg;
                if rest <> [] then ignore (Engine.set_timer ctx 0.0 "chunk")
              end
          | Engine.Recv _ -> ())
  in
  Engine.run ~until:100_000.0 ~max_events:500_000_000 world;
  !finished

let row_stats db table =
  match Database.scan db table ~pred:(fun _ -> true) with
  | Ok (row :: _) ->
      ( Array.length row,
        Array.fold_left (fun a v -> a + Value.serialized_size v) 0 row )
  | Ok [] | Error _ -> (0, 0)

let run_transfer ~rows ~wide =
  let src = Database.create Store.Hazel in
  Workload.Bank.setup ~rows ~wide src;
  let dst = Database.create Store.Hazel in
  (match Database.create_table dst (Workload.Bank.schema ~wide ()) with
  | Ok () -> ()
  | Error e -> invalid_arg e);
  let columns, row_bytes = row_stats src Workload.Bank.table in
  let seconds = measure_transfer src dst in
  { rows; row_bytes; columns; seconds }

let run_transfer_tpcc ?(scale = Workload.Tpcc.small_scale) () =
  let src = Database.create Store.Hazel in
  Workload.Tpcc.setup ~scale src;
  let dst = Database.create Store.Hazel in
  Workload.Tpcc.setup ~scale:{ scale with Workload.Tpcc.districts = 0; items = 0 } dst;
  Database.clear_data dst;
  let total_rows =
    List.fold_left (fun a (_, n) -> a + n) 0 (Workload.Tpcc.row_counts src)
  in
  let seconds = measure_transfer src dst in
  { rows = total_rows; row_bytes = 0; columns = 0; seconds }

let run_transfers ?(quick = true) () =
  let sizes =
    if quick then [ 500; 5_000; 50_000 ] else [ 500; 5_000; 50_000; 500_000 ]
  in
  List.concat_map
    (fun wide -> List.map (fun rows -> run_transfer ~rows ~wide) sizes)
    [ false; true ]
  @ [
      run_transfer_tpcc
        ~scale:
          (if quick then Workload.Tpcc.small_scale
           else
             {
               Workload.Tpcc.districts = 10;
               customers_per_district = 1000;
               items = 30_000;
               initial_orders_per_district = 1000;
             })
        ();
    ]

let print_transfers transfers =
  Stats.Table.print_table
    ~title:"Fig. 10(b) — state transfer time vs database size"
    ~header:[ "rows"; "row bytes"; "columns"; "transfer (s)" ]
    (List.map
       (fun t ->
         [
           string_of_int t.rows;
           (if t.row_bytes = 0 then "tpcc" else string_of_int t.row_bytes);
           (if t.columns = 0 then "-" else string_of_int t.columns);
           Stats.Table.fmt_f t.seconds;
         ])
       transfers)
