module Engine = Sim.Engine
module Tob = Broadcast.Tob
module Shell = Broadcast.Shell.Make (Consensus.Paxos)

type wire = Svc of Shell.T.msg | Note of Tob.deliver

type point = { clients : int; throughput : float; latency_ms : float }

let payload = String.make 140 'p' (* the paper's 140-byte payload *)

let run_point ?costs ~profile ~n_clients ~msgs_per_client () =
  let world : wire Engine.t = Engine.create ~seed:42 () in
  let latencies = Stats.Sample.create () in
  let last_commit = ref 0.0 in
  let completed = ref 0 in
  let client_ids = ref [] in
  let members = ref [] in
  let mk_client () =
    let locref = ref (-1) in
    let id =
      Engine.spawn world ~name:"fig8-client" (fun () ->
          let next_id = ref 0 in
          let sent_at = ref 0.0 in
          let attempt = ref 0 in
          let send ctx =
            let ms = !members in
            let contact = List.nth ms (!attempt mod List.length ms) in
            incr attempt;
            sent_at := Engine.time ctx;
            Engine.send ctx ~size:164 contact
              (Svc
                 (Shell.T.Broadcast
                    { Tob.origin = !locref; id = !next_id; payload }))
          in
          fun ctx -> function
            | Engine.Init -> send ctx
            | Engine.Recv { msg = Note d; _ } ->
                if
                  d.Tob.entry.Tob.origin = !locref
                  && d.Tob.entry.Tob.id = !next_id
                then begin
                  let now = Engine.time ctx in
                  Stats.Sample.add latencies (now -. !sent_at);
                  last_commit := now;
                  incr next_id;
                  (* Stick with the member that answered. *)
                  attempt := !attempt - 1;
                  if !next_id < msgs_per_client then send ctx
                  else incr completed
                end
            | Engine.Recv _ | Engine.Timer _ -> ())
    in
    locref := id;
    id
  in
  let svc =
    Shell.spawn ?costs ~profile ~world:(Runtime.Of_sim.of_engine world)
      ~inj:(fun m -> Svc m)
      ~prj:(function Svc m -> Some m | Note _ -> None)
      ~inj_notify:(fun d -> Note d)
      ~n:3
      ~subscribers:(fun () -> !client_ids)
      ()
  in
  members := svc;
  client_ids := List.init n_clients (fun _ -> mk_client ());
  Engine.run ~until:3600.0 ~max_events:50_000_000 world;
  let total = n_clients * msgs_per_client in
  if !completed < n_clients then
    Printf.eprintf "fig8: warning: only %d/%d clients completed\n%!" !completed
      n_clients;
  {
    clients = n_clients;
    throughput = float_of_int total /. !last_commit;
    latency_ms = Stats.Sample.mean latencies *. 1e3;
  }

let default_clients = [ 1; 2; 4; 8; 16; 24; 32; 43 ]

let run_engine ?costs ?(msgs_per_client = 60) ?(clients = default_clients)
    profile =
  List.map
    (fun n_clients -> run_point ?costs ~profile ~n_clients ~msgs_per_client ())
    clients

let run ?(quick = true) () =
  let msgs_per_client = if quick then 60 else 400 in
  List.map
    (fun profile -> (profile, run_engine ~msgs_per_client profile))
    Gpm.Engine_profile.all

let print results =
  List.iter
    (fun (profile, points) ->
      Stats.Table.print_table
        ~title:
          (Printf.sprintf "Fig. 8 — broadcast service, %s engine"
             (Gpm.Engine_profile.name profile))
        ~header:[ "clients"; "delivered msgs/s"; "latency (ms)" ]
        (List.map
           (fun p ->
             [
               string_of_int p.clients;
               Stats.Table.fmt_f p.throughput;
               Stats.Table.fmt_f p.latency_ms;
             ])
           points))
    results
