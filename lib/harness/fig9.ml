module Engine = Sim.Engine
module Store = Storage.Store
module Value = Storage.Value
module S = Shadowdb.System.Make (Consensus.Paxos)
module B = Baselines.Server

type system = Shadow_pbr | Shadow_smr | H2_standalone | H2_repl | Mysql_repl

let system_name = function
  | Shadow_pbr -> "ShadowDB-PBR"
  | Shadow_smr -> "ShadowDB-SMR"
  | H2_standalone -> "H2-stdalone"
  | H2_repl -> "H2-repl"
  | Mysql_repl -> "MySQL-repl"

type point = { clients : int; throughput : float; latency_ms : float }

type bench = Micro | Tpcc

(* Workload descriptions. Transaction parameters are deterministic per
   (client, seq) so client retries resend identical transactions. *)

type workload = {
  registry : unit -> Shadowdb.Txn.registry;
  setup : Storage.Database.t -> unit;
  make_txn : client:int -> seq:int -> string * Value.t list;
  lock_of : Shadowdb.Txn.t -> string * Store.key option;
  stmt_delay : Shadowdb.Txn.t -> float;
      (* client↔server statement round trips at the conventional
         (JDBC-driven) databases; ShadowDB executes transactions
         co-located with the database and avoids them (paper Sec. IV-B) *)
  mysql_row_locks : bool;
  count : int;  (* transactions per client per point *)
}

let micro_workload ~quick =
  let rows = if quick then 10_000 else 50_000 in
  {
    registry = Workload.Bank.registry;
    setup = (fun db -> Workload.Bank.setup ~rows db);
    make_txn =
      (fun ~client ~seq ->
        let account = abs (Hashtbl.hash (client, seq, "acct")) mod rows in
        Workload.Bank.deposit ~account ~amount:1);
    lock_of =
      (fun txn ->
        match txn.Shadowdb.Txn.params with
        | v :: _ -> ("ACCOUNTS", Some [ v ])
        | [] -> ("ACCOUNTS", None));
    (* The deposit is a single auto-committed UPDATE: locks are only held
       within the statement, so there is no cross-round-trip hold. *)
    stmt_delay = (fun _ -> 0.0);
    mysql_row_locks = false;
    count = (if quick then 250 else 1500);
  }

let tpcc_workload ~quick =
  let scale =
    if quick then Workload.Tpcc.small_scale
    else
      {
        Workload.Tpcc.small_scale with
        Workload.Tpcc.customers_per_district = 300;
        items = 5000;
        initial_orders_per_district = 100;
      }
  in
  {
    registry = (fun () -> Workload.Tpcc.registry ~scale ());
    setup = (fun db -> Workload.Tpcc.setup ~scale db);
    make_txn =
      (fun ~client ~seq ->
        let rng = Sim.Prng.create (Hashtbl.hash (client, seq, "tpcc")) in
        Workload.Tpcc.make_txn ~scale rng ~h_id:((client * 1_000_000) + seq));
    lock_of =
      (fun txn ->
        match (txn.Shadowdb.Txn.kind, txn.Shadowdb.Txn.params) with
        | ("new_order" | "payment"), Value.Int d :: _ ->
            ("DISTRICT", Some [ Value.Int 1; Value.Int d ])
        | "delivery", _ -> ("NEW_ORDER", None)
        | _, _ -> ("DISTRICT", None));
    stmt_delay =
      (fun txn ->
        let rtt = 3.0e-4 in
        let stmts =
          match txn.Shadowdb.Txn.kind with
          | "new_order" -> 6 + List.length txn.Shadowdb.Txn.params - 2
          | "payment" -> 6
          | "order_status" -> 4
          | "delivery" -> 12
          | "stock_level" -> 3
          | _ -> 2
        in
        float_of_int stmts *. rtt);
    mysql_row_locks = true;
    count = (if quick then 120 else 400);
  }

let workload_of ~quick = function
  | Micro -> micro_workload ~quick
  | Tpcc -> tpcc_workload ~quick

(* Measurement: commits and latencies from the on_commit callback;
   throughput = commits / time of last commit. *)
type meter = {
  latencies : Stats.Sample.t;
  mutable last : float;
  mutable commits : int;
}

let meter () = { latencies = Stats.Sample.create (); last = 0.0; commits = 0 }

let on_commit m now latency =
  Stats.Sample.add m.latencies latency;
  m.last <- now;
  m.commits <- m.commits + 1

let point_of m ~clients =
  {
    clients;
    throughput = (if m.last > 0.0 then float_of_int m.commits /. m.last else 0.0);
    latency_ms = Stats.Sample.mean m.latencies *. 1e3;
  }

let run_shadow mode w ~n_clients =
  let world : S.wire Engine.t = Engine.create ~seed:17 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let m = meter () in
  let target =
    match mode with
    | `Pbr ->
        S.To_pbr
          (S.spawn_pbr ~world:rworld ~registry:w.registry ~setup:w.setup
             ~n_active:2 ~n_spare:1 ())
    | `Smr ->
        S.To_smr
          (S.spawn_smr ~world:rworld ~registry:w.registry ~setup:w.setup
             ~n_active:2 ())
  in
  let _, completed =
    S.spawn_clients ~world:rworld ~target ~n:n_clients ~count:w.count
      ~make_txn:w.make_txn ~retry_timeout:30.0 ~on_commit:(on_commit m) ()
  in
  Engine.run ~until:36_000.0 ~max_events:200_000_000 world;
  if completed () < n_clients then
    Printf.eprintf "fig9: warning: %d/%d clients completed\n%!" (completed ())
      n_clients;
  point_of m ~clients:n_clients

let run_baseline ?(embedded = false) mode w ~exec_factor ~n_clients =
  let world : B.wire Engine.t = Engine.create ~seed:19 () in
  let rworld = Runtime.Of_sim.of_engine world in
  let m = meter () in
  (* The paper's standalone H2 is embedded (in-process): no client↔server
     statement round trips; the replicated baselines are driven over
     JDBC. *)
  let stmt_delay = if embedded then fun _ -> 0.0 else w.stmt_delay in
  let cluster =
    B.spawn ~exec_factor ~lock_of:w.lock_of ~stmt_delay ~world:rworld
      ~registry:w.registry ~setup:w.setup mode
  in
  let _completed =
    B.spawn_clients ~world:rworld ~cluster ~n:n_clients ~count:w.count
      ~make_txn:w.make_txn ~on_commit:(on_commit m) ()
  in
  Engine.run ~until:36_000.0 ~max_events:200_000_000 world;
  point_of m ~clients:n_clients

let run_system ?(quick = true) bench system ~clients =
  let w = workload_of ~quick bench in
  let one n_clients =
    match system with
    | Shadow_pbr -> run_shadow `Pbr w ~n_clients
    | Shadow_smr -> run_shadow `Smr w ~n_clients
    | H2_standalone ->
        run_baseline ~embedded:true B.Standalone w ~exec_factor:1.0 ~n_clients
    | H2_repl -> run_baseline B.Lockstep_repl w ~exec_factor:1.0 ~n_clients
    | Mysql_repl ->
        (* MySQL's engine is slower than H2's; the memory engine uses table
           locks (micro-benchmark), InnoDB uses row locks (TPC-C). *)
        let granularity =
          if w.mysql_row_locks then Storage.Lock.Row_level
          else Storage.Lock.Table_level
        in
        run_baseline (B.Semisync_repl granularity) w ~exec_factor:1.75 ~n_clients
  in
  List.map one clients

let micro_clients = [ 1; 2; 4; 8; 16; 24; 32 ]
let tpcc_clients = [ 1; 2; 4; 6; 8; 10 ]

let run ?(quick = true) bench =
  let clients = match bench with Micro -> micro_clients | Tpcc -> tpcc_clients in
  let systems =
    [ H2_standalone; Shadow_pbr; Mysql_repl; H2_repl; Shadow_smr ]
  in
  List.map (fun sys -> (sys, run_system ~quick bench sys ~clients)) systems

let print bench results =
  let bench_name =
    match bench with Micro -> "micro-benchmark (a)" | Tpcc -> "TPC-C (b)"
  in
  List.iter
    (fun (sys, points) ->
      Stats.Table.print_table
        ~title:(Printf.sprintf "Fig. 9 %s — %s" bench_name (system_name sys))
        ~header:[ "clients"; "committed txns/s"; "latency (ms)" ]
        (List.map
           (fun p ->
             [
               string_of_int p.clients;
               Stats.Table.fmt_f p.throughput;
               Stats.Table.fmt_f p.latency_ms;
             ])
           points))
    results
