type 'a t =
  | Base : 'a Message.hdr -> 'a t
  | Const : string * 'a -> 'a t
  | Map : ('a -> 'b) * 'a t -> 'b t
  | Filter : ('a -> bool) * 'a t -> 'a t
  | State : {
      name : string;
      init : Message.loc -> 's;
      upd : Message.loc -> 'a -> 's -> 's;
      on : 'a t;
    }
      -> 's t
  | Compose2 : (Message.loc -> 'a -> 'b -> 'c list) * 'a t * 'b t -> 'c t
  | Compose3 :
      (Message.loc -> 'a -> 'b -> 'c -> 'd list) * 'a t * 'b t * 'c t
      -> 'd t
  | Par : 'a t * 'a t -> 'a t
  | Once : 'a t -> 'a t
  | Delegate : {
      name : string;
      trigger : 'a t;
      spawn : Message.loc -> 'a -> 'b t;
    }
      -> 'b t

let base h = Base h
let const name v = Const (name, v)
let map f c = Map (f, c)
let filter p c = Filter (p, c)
let state name ~init ~upd on = State { name; init; upd; on }
let o2 f a b = Compose2 (f, a, b)
let o3 f a b c = Compose3 (f, a, b, c)
let ( ||| ) a b = Par (a, b)
let once c = Once c
let delegate name trigger spawn = Delegate { name; trigger; spawn }

(* Each combinator node counts 1 for itself plus 1 per opaque function or
   constant argument (handlers, initial states), plus its sub-classes. *)
let rec size : type a. a t -> int = function
  | Base _ -> 2
  | Const _ -> 2
  | Map (_, c) -> 2 + size c
  | Filter (_, c) -> 2 + size c
  | State { on; _ } -> 3 + size on
  | Compose2 (_, a, b) -> 2 + size a + size b
  | Compose3 (_, a, b, c) -> 2 + size a + size b + size c
  | Par (a, b) -> 1 + size a + size b
  | Once c -> 1 + size c
  | Delegate { trigger; _ } -> 2 + size trigger

let name_of : type a. a t -> string = function
  | Base h -> "base:" ^ Message.hdr_name h
  | Const (n, _) -> "const:" ^ n
  | Map _ -> "map"
  | Filter _ -> "filter"
  | State { name; _ } -> "state:" ^ name
  | Compose2 _ -> "o2"
  | Compose3 _ -> "o3"
  | Par _ -> "par"
  | Once _ -> "once"
  | Delegate { name; _ } -> "delegate:" ^ name

(* The canonical name of the sub-specifications a [Delegate name] spawns.
   Shared by the ILF characterization and the analysis passes so
   diagnostics and logic formulas agree on what a child is called. *)
let child_name name = name ^ "-child"

(* Structural pretty-printer: one line per combinator node, children
   indented, each node annotated with the size of its subtree (the root
   annotation therefore equals [size]). Opaque arguments — handlers,
   initial states, spawn functions — are invisible; they are accounted
   for in the size annotations but have no line of their own. *)
let rec pp : type a. Format.formatter -> a t -> unit =
 fun ppf c ->
  let children : (Format.formatter -> unit) list =
    match c with
    | Base _ | Const _ -> []
    | Map (_, c') -> [ (fun ppf -> pp ppf c') ]
    | Filter (_, c') -> [ (fun ppf -> pp ppf c') ]
    | State { on; _ } -> [ (fun ppf -> pp ppf on) ]
    | Compose2 (_, a, b) -> [ (fun ppf -> pp ppf a); (fun ppf -> pp ppf b) ]
    | Compose3 (_, a, b, c3) ->
        [ (fun ppf -> pp ppf a); (fun ppf -> pp ppf b); (fun ppf -> pp ppf c3) ]
    | Par (a, b) -> [ (fun ppf -> pp ppf a); (fun ppf -> pp ppf b) ]
    | Once c' -> [ (fun ppf -> pp ppf c') ]
    | Delegate { trigger; _ } -> [ (fun ppf -> pp ppf trigger) ]
  in
  Format.fprintf ppf "@[<v 2>%s [%d]" (name_of c) (size c);
  List.iter (fun child -> Format.fprintf ppf "@,%t" child) children;
  Format.fprintf ppf "@]"

let to_string c = Format.asprintf "%a" pp c
