(** Event classes — the combinators of EventML / the Logic of Events.

    An event class is a function from events to (bags of) outputs; an event
    is the arrival of one message at one location. Classes are built from
    base recognizers and the paper's combinators: state machines ([State]),
    composition ([o]), parallel composition ([||]), [Once], and delegation
    (sub-process spawning). The representation is a first-order GADT so the
    toolchain can measure specification sizes (Table I), generate an
    inductive logical form ({!Ilf}), compile to processes ({!Gpm} in
    [lib/gpm]) and optimize them. *)

type 'a t =
  | Base : 'a Message.hdr -> 'a t
      (** [msg'base]: recognizes messages with the declared header and
          outputs their typed body. *)
  | Const : string * 'a -> 'a t
      (** Produces the given value at every event (named for diagnostics). *)
  | Map : ('a -> 'b) * 'a t -> 'b t
      (** Transform each output. *)
  | Filter : ('a -> bool) * 'a t -> 'a t
      (** Keep only outputs satisfying the predicate. *)
  | State : {
      name : string;
      init : Message.loc -> 's;
      upd : Message.loc -> 'a -> 's -> 's;
      on : 'a t;
    }
      -> 's t
      (** The [State] keyword: a state machine folding [upd] over the
          outputs of [on]; it is single-valued — at every event it produces
          its current value (updated first if [on] produced at this
          event), matching the paper's Fig. 5 characterization. *)
  | Compose2 : (Message.loc -> 'a -> 'b -> 'c list) * 'a t * 'b t -> 'c t
      (** The [o] combinator with two sources: produces [f loc a b] for
          every pair of simultaneous outputs. *)
  | Compose3 :
      (Message.loc -> 'a -> 'b -> 'c -> 'd list) * 'a t * 'b t * 'c t
      -> 'd t
      (** The [o] combinator with three sources. *)
  | Par : 'a t * 'a t -> 'a t
      (** [X || Y]: union of the two classes' outputs. *)
  | Once : 'a t -> 'a t
      (** Produces only at the first event where the sub-class produces. *)
  | Delegate : {
      name : string;
      trigger : 'a t;
      spawn : Message.loc -> 'a -> 'b t;
    }
      -> 'b t
      (** The delegation combinator: each trigger output spawns a child
          class that observes all subsequent events; outputs are the union
          of all live children's outputs (scouts and commanders in
          Paxos). *)

(** {1 EventML-flavoured constructors} *)

val base : 'a Message.hdr -> 'a t
val const : string -> 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t

val state :
  string -> init:(Message.loc -> 's) -> upd:(Message.loc -> 'a -> 's -> 's) -> 'a t -> 's t

val o2 : (Message.loc -> 'a -> 'b -> 'c list) -> 'a t -> 'b t -> 'c t
val o3 : (Message.loc -> 'a -> 'b -> 'c -> 'd list) -> 'a t -> 'b t -> 'c t -> 'd t
val ( ||| ) : 'a t -> 'a t -> 'a t
val once : 'a t -> 'a t
val delegate : string -> 'a t -> (Message.loc -> 'a -> 'b t) -> 'b t

val size : 'a t -> int
(** Number of AST nodes in the specification (opaque OCaml handler
    functions count as one node each); the "EventML spec" column of
    Table I. *)

val name_of : 'a t -> string
(** Short constructor name, for diagnostics. *)

val child_name : string -> string
(** [child_name name] is the canonical name of the sub-specifications a
    [Delegate name] spawns — shared by {!Ilf.of_cls} and the analysis
    passes so formulas and diagnostics agree. *)

val pp : Format.formatter -> 'a t -> unit
(** Structural pretty-printer: one line per combinator node (children
    indented), each annotated with its subtree's {!size} — the root
    annotation equals [size] of the whole class. *)

val to_string : 'a t -> string
(** [Format.asprintf "%a" pp]. *)
