type formula =
  | True_
  | Atom of string
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Exists of string * formula
  | Forall of string * formula

(* [characterize c out e] describes the condition under which value [out]
   is among the outputs of class [c] at event [e]. Opaque handler functions
   appear as uninterpreted function symbols, as the paper's ILFs do with
   parameters such as [handle]. *)
let rec characterize : type a. a Cls.t -> string -> string -> formula =
 fun c out e ->
  match c with
  | Cls.Base h ->
      And
        [
          Atom (Printf.sprintf "header(%s) = ``%s``" e (Message.hdr_name h));
          Atom (Printf.sprintf "%s = msgval(%s)" out e);
        ]
  | Cls.Const (n, _) -> Atom (Printf.sprintf "%s = const(%s)" out n)
  | Cls.Map (_, c) ->
      Exists
        ( "x",
          And [ characterize c "x" e; Atom (Printf.sprintf "%s = f(x)" out) ] )
  | Cls.Filter (_, c) ->
      And [ characterize c out e; Atom (Printf.sprintf "p(%s)" out) ]
  | Cls.State { name; on; _ } ->
      (* Fig. 5: the state at [e] folds the update over the sub-class
         output at [e], starting from the state at [pred(e)] (or the
         initial state when [first(e)]). *)
      Iff
        ( Atom (Printf.sprintf "%s = %s@%s" out name e),
          Or
            [
              Exists
                ( "x",
                  And
                    [
                      characterize on "x" e;
                      Or
                        [
                          And
                            [
                              Atom (Printf.sprintf "first(%s)" e);
                              Atom
                                (Printf.sprintf "%s = upd(loc(%s), x, init)"
                                   out e);
                            ];
                          Atom
                            (Printf.sprintf "%s = upd(loc(%s), x, %s@pred(%s))"
                               out e name e);
                        ];
                    ] );
              And
                [
                  Not (Exists ("x", characterize on "x" e));
                  Or
                    [
                      And
                        [
                          Atom (Printf.sprintf "first(%s)" e);
                          Atom (Printf.sprintf "%s = init" out);
                        ];
                      Atom (Printf.sprintf "%s = %s@pred(%s)" out name e);
                    ];
                ];
            ] )
  | Cls.Compose2 (_, a, b) ->
      Exists
        ( "x",
          Exists
            ( "y",
              And
                [
                  characterize a "x" e;
                  characterize b "y" e;
                  Atom (Printf.sprintf "%s ∈ f(loc(%s), x, y)" out e);
                ] ) )
  | Cls.Compose3 (_, a, b, c) ->
      Exists
        ( "x",
          Exists
            ( "y",
              Exists
                ( "z",
                  And
                    [
                      characterize a "x" e;
                      characterize b "y" e;
                      characterize c "z" e;
                      Atom (Printf.sprintf "%s ∈ f(loc(%s), x, y, z)" out e);
                    ] ) ) )
  | Cls.Par (a, b) -> Or [ characterize a out e; characterize b out e ]
  | Cls.Once c ->
      And
        [
          characterize c out e;
          Not
            (Exists
               ( "e'",
                 And
                   [
                     Atom (Printf.sprintf "e' < %s" e);
                     Exists ("x", characterize c "x" "e'");
                   ] ));
        ]
  | Cls.Delegate { name; trigger; _ } ->
      Exists
        ( "e'",
          Exists
            ( "x",
              And
                [
                  Atom (Printf.sprintf "e' < %s" e);
                  characterize trigger "x" "e'";
                  Atom
                    (Printf.sprintf "%s ∈ %s(x, e', %s)" out
                       (Cls.child_name name) e);
                ] ) )

let of_cls ~name c =
  Forall
    ( "e",
      Forall
        ( "out",
          Iff (Atom (Printf.sprintf "out ∈ %s(e)" name), characterize c "out" "e")
        ) )

let rec size = function
  | True_ -> 1
  | Atom _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> 1 + List.fold_left (fun acc f -> acc + size f) 0 fs
  | Implies (a, b) | Iff (a, b) -> 1 + size a + size b
  | Exists (_, f) | Forall (_, f) -> 2 + size f

let rec pp fmt = function
  | True_ -> Format.fprintf fmt "true"
  | Atom s -> Format.fprintf fmt "%s" s
  | Not f -> Format.fprintf fmt "¬(%a)" pp f
  | And fs ->
      Format.fprintf fmt "@[<v 0>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,∧ ")
           (fun fmt f -> Format.fprintf fmt "(%a)" pp f))
        fs
  | Or fs ->
      Format.fprintf fmt "@[<v 0>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,∨ ")
           (fun fmt f -> Format.fprintf fmt "(%a)" pp f))
        fs
  | Implies (a, b) -> Format.fprintf fmt "@[<v 2>(%a)@,⇒ (%a)@]" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "@[<v 2>(%a)@,⇔ (%a)@]" pp a pp b
  | Exists (x, f) -> Format.fprintf fmt "@[<v 2>∃%s.@,%a@]" x pp f
  | Forall (x, f) -> Format.fprintf fmt "@[<v 2>∀%s.@,%a@]" x pp f

let to_string f = Format.asprintf "%a" pp f
