(* The protocol-agnostic runtime layer.

   A protocol node is a [handler]: a function from a capability record
   ([ctx]) and an input to unit. The capability record is the whole
   interface a node has to the world hosting it — send a message, arm or
   cancel a timer, account CPU work, read the clock — so the same handler
   runs unchanged on the deterministic simulator ({!Of_sim}) and on a
   real socket deployment ({!Live}). This mirrors the paper's deployment
   story: one spec-faithful state machine, model-checked in a controlled
   environment and executed on a physical cluster. *)

type 'm input =
  | Init  (** Delivered once when the node starts (and again on restart). *)
  | Recv of { src : Sim.Node_id.t; msg : 'm }  (** A message arrival. *)
  | Timer of { id : int; tag : string }  (** An armed timer fired. *)

type 'm ctx = {
  ctx_self : Sim.Node_id.t;
  ctx_now : unit -> float;
  ctx_send : size:int -> Sim.Node_id.t -> 'm -> unit;
  ctx_set_timer : float -> string -> int;
  ctx_cancel_timer : int -> unit;
  ctx_charge : float -> unit;
  ctx_trace : string -> unit;
}
(** What a node may do while processing an input. On the simulator these
    capabilities map to {!Sim.Engine}'s handler operations (virtual time,
    charged CPU extending the busy period); on the live runtime they map
    to sockets and the monotonic wall clock, and [charge] is recorded but
    costs nothing — real CPU time is already real. *)

type 'm handler = 'm ctx -> 'm input -> unit

type kind = Sim | Live | Loop

type 'm t = {
  rt_kind : kind;
  rt_spawn :
    name:string -> cpu_factor:float -> (unit -> 'm handler) -> Sim.Node_id.t;
  rt_now : unit -> float;
}
(** A runtime instance exchanging messages of type ['m]. Inputs are only
    delivered once the instance is driven ([Sim.Engine.run] /
    {!Live.start}), so spawners may wire mutual references between nodes
    after spawning and before anything executes. *)

type 'm codec = { enc : 'm -> string; dec : string -> ('m, string) result }
(** Wire format for ['m], required by runtimes that move bytes between
    address spaces. [dec] must reject truncated or corrupt buffers. *)

let kind t = t.rt_kind
let now t = t.rt_now ()

let spawn t ~name ?(cpu_factor = 1.0) factory =
  t.rt_spawn ~name ~cpu_factor factory

(* Handler-side operations, mirroring Sim.Engine's names so protocol code
   ports by module renaming alone. *)

let self c = c.ctx_self
let time c = c.ctx_now ()
let send c ?(size = 64) dst m = c.ctx_send ~size dst m
let set_timer c delay tag = c.ctx_set_timer delay tag
let cancel_timer c id = c.ctx_cancel_timer id
let charge c seconds = c.ctx_charge seconds
let trace c line = c.ctx_trace line
