(* The protocol-agnostic runtime layer.

   A protocol node is a [handler]: a function from a capability record
   ([ctx]) and an input to unit. The capability record is the whole
   interface a node has to the world hosting it — send a message, arm or
   cancel a timer, account CPU work, read the clock — so the same handler
   runs unchanged on the deterministic simulator ({!Of_sim}) and on a
   real socket deployment ({!Live}). This mirrors the paper's deployment
   story: one spec-faithful state machine, model-checked in a controlled
   environment and executed on a physical cluster. *)

type 'm input =
  | Init  (** Delivered once when the node starts (and again on restart). *)
  | Recv of { src : Sim.Node_id.t; msg : 'm }  (** A message arrival. *)
  | Timer of { id : int; tag : string }  (** An armed timer fired. *)

type 'm obs =
  | Ob_input of 'm input  (** The runtime dispatched an input to a node. *)
  | Ob_send of { dst : Sim.Node_id.t; msg : 'm }  (** The node sent. *)
  | Ob_deliver of { seqno : int; origin : int; id : int; payload : string }
      (** A totally-ordered entry reached the replicated state machine. *)
  | Ob_checkpoint of { gseq : int; seqno : int; hash : int }
      (** State fingerprint right after applying delivery [seqno]. *)
  | Ob_crash
  | Ob_restart
(** One observable step of a node's execution. Inputs, sends, crashes and
    restarts are emitted by the runtimes themselves; delivery and
    checkpoint observations are emitted by protocol code (the SMR replica)
    through {!observe}, because self-deliveries never cross the wire. *)

type 'm ctx = {
  ctx_self : Sim.Node_id.t;
  ctx_now : unit -> float;
  ctx_send : size:int -> Sim.Node_id.t -> 'm -> unit;
  ctx_set_timer : float -> string -> int;
  ctx_cancel_timer : int -> unit;
  ctx_charge : float -> unit;
  ctx_trace : string -> unit;
  ctx_observe : ('m obs -> unit) option;
      (** Conformance observation sink; [None] (the default) keeps the
          hot path a single branch per observation site. *)
}
(** What a node may do while processing an input. On the simulator these
    capabilities map to {!Sim.Engine}'s handler operations (virtual time,
    charged CPU extending the busy period); on the live runtime they map
    to sockets and the monotonic wall clock, and [charge] is recorded but
    costs nothing — real CPU time is already real. *)

type 'm handler = 'm ctx -> 'm input -> unit

type kind = Sim | Live | Loop

type 'm t = {
  rt_kind : kind;
  rt_spawn :
    name:string -> cpu_factor:float -> (unit -> 'm handler) -> Sim.Node_id.t;
  rt_now : unit -> float;
}
(** A runtime instance exchanging messages of type ['m]. Inputs are only
    delivered once the instance is driven ([Sim.Engine.run] /
    {!Live.start}), so spawners may wire mutual references between nodes
    after spawning and before anything executes. *)

type 'm codec = { enc : 'm -> string; dec : string -> ('m, string) result }
(** Wire format for ['m], required by runtimes that move bytes between
    address spaces. [dec] must reject truncated or corrupt buffers. *)

let kind t = t.rt_kind
let now t = t.rt_now ()

let spawn t ~name ?(cpu_factor = 1.0) factory =
  t.rt_spawn ~name ~cpu_factor factory

(* Handler-side operations, mirroring Sim.Engine's names so protocol code
   ports by module renaming alone. *)

let self c = c.ctx_self
let time c = c.ctx_now ()
let send c ?(size = 64) dst m = c.ctx_send ~size dst m
let set_timer c delay tag = c.ctx_set_timer delay tag
let cancel_timer c id = c.ctx_cancel_timer id
let charge c seconds = c.ctx_charge seconds
let trace c line = c.ctx_trace line

(* Conformance observation. [observing] lets protocol code skip expensive
   observation arguments (state fingerprints) when nothing listens. *)

let observing c = c.ctx_observe <> None
let observe c ob = match c.ctx_observe with None -> () | Some f -> f ob

type 'm tap = self:Sim.Node_id.t -> now:float -> 'm obs -> unit
(** A runtime-level observation sink: every observable step of every node,
    stamped with the observing node and its clock. Attached at runtime
    construction ([Of_sim.of_engine ?tap], [Live.create ?tap],
    [Loop.create ?tap]); a tap must be cheap and, on threaded runtimes,
    thread-safe — it runs inline on the dispatching thread. *)

let tap_all (taps : 'm tap list) : 'm tap =
 fun ~self ~now ob -> List.iter (fun t -> t ~self ~now ob) taps

(* Helpers the runtimes share to wire a tap into their dispatch paths
   without duplicating the option plumbing. *)

let instrument (tap : 'm tap option) (c : 'm ctx) : 'm ctx =
  match tap with
  | None -> c
  | Some tap ->
      let emit ob = tap ~self:c.ctx_self ~now:(c.ctx_now ()) ob in
      {
        c with
        ctx_send =
          (fun ~size dst m ->
            emit (Ob_send { dst; msg = m });
            c.ctx_send ~size dst m);
        ctx_observe = Some emit;
      }

let tap_input (tap : 'm tap option) (c : 'm ctx) (i : 'm input) =
  match tap with
  | None -> ()
  | Some tap -> tap ~self:c.ctx_self ~now:(c.ctx_now ()) (Ob_input i)
