(* A uniform handle over the socket runtimes.

   {!Live} (thread-per-node) and {!Loop} (single-reactor event loop)
   expose the same lifecycle — spawn through a {!Core.t}, start, await a
   predicate, crash/restart nodes, stop — but as separate concrete types.
   This record erases the difference so harnesses ([bin/shadowdb], the
   chaos drill, the bench) select the runtime from a flag and share one
   deployment/driving path. The loop-only observability hooks
   (backpressure engagements, recorded per-link FIFO violations) report
   zero under {!Live}, which has no outboxes and no recorder. *)

type 'm t = {
  world : 'm Core.t;
  start : unit -> unit;
  await : ?timeout:float -> (unit -> bool) -> bool;
  stop : unit -> unit;
  crash : Sim.Node_id.t -> unit;
  restart : Sim.Node_id.t -> unit;
  port_of : Sim.Node_id.t -> int option;
  errors : unit -> string list;
  sent : unit -> int * int;  (* messages, bytes *)
  backpressure : unit -> int;
  fifo_violations : unit -> int;
}

let live ?tap ~codec () =
  let rt = Live.create ?tap ~codec () in
  {
    world = Live.runtime rt;
    start = (fun () -> Live.start rt);
    await = (fun ?timeout pred -> Live.await ?timeout rt pred);
    stop = (fun () -> Live.stop rt);
    crash = (fun id -> Live.crash rt id);
    restart = (fun id -> Live.restart rt id);
    port_of = (fun id -> Live.port_of rt id);
    errors = (fun () -> Live.errors rt);
    sent = (fun () -> Live.stats rt);
    backpressure = (fun () -> 0);
    fifo_violations = (fun () -> 0);
  }

let loop ?high ?low ?direct ?on_backpressure ?record_delivery ?tap ~codec () =
  let rt =
    Loop.create ?high ?low ?direct ?on_backpressure ?record_delivery ?tap
      ~codec ()
  in
  {
    world = Loop.runtime rt;
    start = (fun () -> Loop.start rt);
    await = (fun ?timeout pred -> Loop.await ?timeout rt pred);
    stop = (fun () -> Loop.stop rt);
    crash = (fun id -> Loop.crash rt id);
    restart = (fun id -> Loop.restart rt id);
    port_of = (fun id -> Loop.port_of rt id);
    errors = (fun () -> Loop.errors rt);
    sent =
      (fun () ->
        let s = Loop.stats rt in
        (s.Loop.s_sent_msgs, s.Loop.s_sent_bytes));
    backpressure = (fun () -> Loop.backpressure_events rt);
    fifo_violations = (fun () -> Loop.fifo_violations rt);
  }

let of_kind ?high ?low ?direct ?on_backpressure ?record_delivery ?tap kind
    ~codec () =
  match kind with
  | Core.Loop ->
      loop ?high ?low ?direct ?on_backpressure ?record_delivery ?tap ~codec ()
  | Core.Live | Core.Sim -> live ?tap ~codec ()
