(* Wire framing shared by the socket runtimes.

   Both live runtimes ({!Live}, thread-per-node; {!Loop}, single-process
   reactor) exchange length-prefixed frames: a 5-byte header — 4-byte
   big-endian payload length ∥ 1-byte source node id — followed by the
   codec-encoded payload. The one-byte source id caps a deployment at
   {!max_src}+1 wire-visible nodes, far above anything the local runtimes
   host, and shaves the per-message overhead the old 8-byte header paid.

   The module's working type, {!buf}, is a growable byte window with a
   head offset: appends land at the tail with no per-frame allocation,
   reads drain from the head without the per-frame [Bytes.blit]
   compaction the original runtime did (O(n²) under batching). The same
   type backs inbound reassembly buffers, per-connection send scratch,
   and the {!Outbox} accumulation buffers — encoded frames are written
   once and flushed straight from the buffer, so the data plane adds a
   single copy (codec output into the buffer) between handler and
   syscall. *)

let header = 5
let max_frame = 64 * 1024 * 1024
let max_src = 0xFF

type buf = {
  mutable b : Bytes.t;
  mutable head : int;  (* offset of the first live byte *)
  mutable len : int;  (* live bytes starting at [head] *)
}

let create cap = { b = Bytes.create (Stdlib.max cap header); head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let reset t =
  t.head <- 0;
  t.len <- 0

(* Make room for [extra] bytes at the tail: slide the live window back to
   offset 0 when that frees enough space, grow (doubling) otherwise. *)
let reserve t extra =
  let cap = Bytes.length t.b in
  if t.head + t.len + extra > cap then
    if t.len + extra <= cap then begin
      Bytes.blit t.b t.head t.b 0 t.len;
      t.head <- 0
    end
    else begin
      let nb = Bytes.create (Stdlib.max (2 * cap) (t.len + extra)) in
      Bytes.blit t.b t.head nb 0 t.len;
      t.b <- nb;
      t.head <- 0
    end

(* Append one encoded frame at the tail. *)
let append t ~src ~payload =
  if src < 0 || src > max_src then
    Sim.Invariant.fail "frame"
      "source id %d does not fit the one-byte wire header" src;
  let plen = String.length payload in
  if plen > max_frame then
    Sim.Invariant.fail "frame" "payload of %d bytes exceeds max frame size"
      plen;
  reserve t (header + plen);
  let tail = t.head + t.len in
  Bytes.set_int32_be t.b tail (Int32.of_int plen);
  Bytes.set t.b (tail + 4) (Char.chr src);
  Bytes.blit_string payload 0 t.b (tail + header) plen;
  t.len <- t.len + header + plen

(* Parse every complete frame at the head, invoking [frame ~src payload]
   for each; a malformed length invokes [bad] and discards the buffer
   (the stream has lost sync). [stop] is polled between frames so a
   consumer can park mid-drain and resume later — unparsed frames stay
   buffered. *)
let drain ?(stop = fun () -> false) t ~frame ~bad =
  let continue = ref true in
  while !continue do
    if stop () || t.len < header then continue := false
    else begin
      let plen = Int32.to_int (Bytes.get_int32_be t.b t.head) in
      let src = Char.code (Bytes.get t.b (t.head + 4)) in
      if plen < 0 || plen > max_frame then begin
        bad plen;
        reset t;
        continue := false
      end
      else if t.len < header + plen then continue := false
      else begin
        let payload = Bytes.sub_string t.b (t.head + header) plen in
        t.head <- t.head + header + plen;
        t.len <- t.len - header - plen;
        frame ~src payload
      end
    end
  done;
  if t.len = 0 then t.head <- 0

(* One [Unix.read] into the tail. [`Data 0] is a retryable non-event
   (EAGAIN on a non-blocking socket). *)
let read_into t fd =
  reserve t 65536;
  match
    Unix.read fd t.b (t.head + t.len) (Bytes.length t.b - t.head - t.len)
  with
  | 0 -> `Closed
  | n ->
      t.len <- t.len + n;
      `Data n
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      `Closed
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Data 0
