(* The live runtime: real processes over loopback/TCP sockets.

   Each spawned node runs a private event loop on its own thread, owns a
   listening TCP socket on 127.0.0.1, and exchanges {!Frame}-format
   length-prefixed frames ([4-byte payload length | 1-byte source id |
   payload]) encoded by the world's {!Core.codec}. Per-link FIFO — the
   channel assumption every protocol here makes — comes from TCP itself:
   a node keeps one outbound connection per destination and only its own
   thread writes to it. Frames are staged in a reused per-connection
   scratch buffer, so the steady-state send path allocates nothing but
   the codec's output string.

   Timers use a monotonic view of the wall clock (never stepping
   backwards even if the system clock does), [charge] is recorded but
   free — real CPU time is already real — and latency measured through
   [ctx_now] is wall-clock latency.

   Lifecycle: spawn all nodes (listeners exist immediately, so no message
   can be lost to startup order), then {!start}, {!await} a completion
   predicate, and {!stop}. Spawning after {!start} launches the node
   immediately. *)

module F = Frame

type conn = { c_fd : Unix.file_descr; c_buf : F.buf }

(* An outbound connection: the socket plus a reused scratch buffer the
   frame is staged in before the write (no per-frame allocation). *)
type out = { o_fd : Unix.file_descr; o_scratch : F.buf }

type 'm node = {
  n_id : Sim.Node_id.t;
  n_name : string;
  n_factory : unit -> 'm Core.handler;
  n_listen : Unix.file_descr;
  n_port : int;
  mutable n_conns : conn list;  (* inbound connections *)
  n_out : (Sim.Node_id.t, out) Hashtbl.t;
  mutable n_timers : (float * int * string) list;  (* deadline-ascending *)
  n_cancelled : (int, unit) Hashtbl.t;
  mutable n_last_now : float;  (* per-thread monotonic guard *)
  mutable n_charged : float;
  mutable n_sent_msgs : int;
  mutable n_sent_bytes : int;
  mutable n_thread : Thread.t option;
  n_stop : bool Atomic.t;  (* per-node kill switch (crash injection) *)
}

type 'm t = {
  codec : 'm Core.codec;
  tap : 'm Core.tap option;  (* conformance observation sink *)
  lock : Mutex.t;
  mutable nodes : 'm node list;  (* newest first *)
  ports : (Sim.Node_id.t, int) Hashtbl.t;
  mutable next_id : int;
  mutable timer_seq : int;
  phase : int Atomic.t;  (* 0 idle, 1 running, 2 stopped *)
  t0 : float;
  mutable mono_last : float;
  mutable traces : (float * Sim.Node_id.t * string) list;
  mutable errors : string list;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Seconds since [create], guarded against the wall clock stepping back. *)
let now t =
  let raw = Unix.gettimeofday () -. t.t0 in
  locked t (fun () ->
      if raw > t.mono_last then t.mono_last <- raw;
      t.mono_last)

let create ?tap ~codec () =
  (* A node crashed mid-run leaves peers holding half-closed sockets;
     their next write must surface as EPIPE (handled per-connection),
     not kill the whole process group. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  {
    codec;
    tap;
    lock = Mutex.create ();
    nodes = [];
    ports = Hashtbl.create 16;
    next_id = 0;
    timer_seq = 0;
    phase = Atomic.make 0;
    t0 = Unix.gettimeofday ();
    mono_last = 0.0;
    traces = [];
    errors = [];
  }

let record_error t msg = locked t (fun () -> t.errors <- msg :: t.errors)
let errors t = locked t (fun () -> List.rev t.errors)
let get_trace t = locked t (fun () -> List.rev t.traces)

let stats t =
  locked t (fun () ->
      List.fold_left
        (fun (m, b) n -> (m + n.n_sent_msgs, b + n.n_sent_bytes))
        (0, 0) t.nodes)

(* ---------------------------------------------------------------- *)
(* Wire I/O                                                          *)
(* ---------------------------------------------------------------- *)

let really_write fd buf pos len =
  let rec go pos len =
    if len > 0 then begin
      let n = Unix.write fd buf pos len in
      go (pos + n) (len - n)
    end
  in
  go pos len

let send_frame t node dst msg =
  let out =
    match Hashtbl.find_opt node.n_out dst with
    | Some out -> Some out
    | None -> (
        match locked t (fun () -> Hashtbl.find_opt t.ports dst) with
        | None -> None
        | Some port -> (
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            try
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              Unix.setsockopt fd Unix.TCP_NODELAY true;
              let out = { o_fd = fd; o_scratch = F.create 65536 } in
              Hashtbl.replace node.n_out dst out;
              Some out
            with Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              None))
  in
  match out with
  | None -> ()  (* unknown or unreachable peer: behaves like a lost message *)
  | Some out -> (
      let payload = t.codec.Core.enc msg in
      F.reset out.o_scratch;
      F.append out.o_scratch ~src:node.n_id ~payload;
      try
        really_write out.o_fd out.o_scratch.F.b 0 (F.length out.o_scratch);
        node.n_sent_msgs <- node.n_sent_msgs + 1;
        node.n_sent_bytes <- node.n_sent_bytes + F.length out.o_scratch
      with Unix.Unix_error _ ->
        (* Peer gone: drop the connection; a later send reconnects. *)
        Hashtbl.remove node.n_out dst;
        (try Unix.close out.o_fd with Unix.Unix_error _ -> ()))

(* ---------------------------------------------------------------- *)
(* Node event loop                                                   *)
(* ---------------------------------------------------------------- *)

let node_now t node =
  let v = now t in
  if v > node.n_last_now then node.n_last_now <- v;
  node.n_last_now

let ctx_of t node : 'm Core.ctx =
  Core.instrument t.tap
  {
    Core.ctx_self = node.n_id;
    ctx_now = (fun () -> node_now t node);
    ctx_send = (fun ~size:_ dst m -> send_frame t node dst m);
    ctx_set_timer =
      (fun delay tag ->
        let id = locked t (fun () -> t.timer_seq <- t.timer_seq + 1; t.timer_seq) in
        let deadline = node_now t node +. Float.max 0.0 delay in
        let rec insert = function
          | [] -> [ (deadline, id, tag) ]
          | ((d, _, _) as hd) :: rest when d <= deadline -> hd :: insert rest
          | rest -> (deadline, id, tag) :: rest
        in
        node.n_timers <- insert node.n_timers;
        id);
    ctx_cancel_timer = (fun id -> Hashtbl.replace node.n_cancelled id ());
    ctx_charge = (fun s -> node.n_charged <- node.n_charged +. s);
    ctx_trace =
      (fun line ->
        let at = node_now t node in
        locked t (fun () -> t.traces <- (at, node.n_id, line) :: t.traces));
    ctx_observe = None;
  }

let dispatch t node handler input =
  let c = ctx_of t node in
  Core.tap_input t.tap c input;
  try handler c input
  with e ->
    record_error t
      (Printf.sprintf "node %d (%s): handler raised %s" node.n_id node.n_name
         (Printexc.to_string e))

(* Drain every complete frame accumulated on [conn]. *)
let drain_frames t node handler conn =
  F.drain conn.c_buf
    ~frame:(fun ~src payload ->
      match t.codec.Core.dec payload with
      | Ok msg -> dispatch t node handler (Core.Recv { src; msg })
      | Error e ->
          record_error t
            (Printf.sprintf "node %d: undecodable frame from %d: %s" node.n_id
               src e))
    ~bad:(fun len ->
      record_error t
        (Printf.sprintf "node %d: bad frame length %d" node.n_id len))

let read_conn t node handler conn =
  match F.read_into conn.c_buf conn.c_fd with
  | `Closed -> false
  | `Data n ->
      if n > 0 then drain_frames t node handler conn;
      true

let fire_due_timers t node handler =
  let rec go () =
    match node.n_timers with
    | (deadline, id, tag) :: rest when deadline <= node_now t node ->
        node.n_timers <- rest;
        if Hashtbl.mem node.n_cancelled id then Hashtbl.remove node.n_cancelled id
        else dispatch t node handler (Core.Timer { id; tag });
        go ()
    | _ -> ()
  in
  go ()

let node_loop t node =
  let handler = node.n_factory () in
  dispatch t node handler Core.Init;
  while Atomic.get t.phase < 2 && not (Atomic.get node.n_stop) do
    (* Sleep until the earliest pending timer (no fixed tick), capped at
       1s so stop/crash flags are still noticed promptly when idle. *)
    let timeout =
      match node.n_timers with
      | [] -> 1.0
      | (deadline, _, _) :: _ ->
          Float.min 1.0 (Float.max 0.0 (deadline -. node_now t node))
    in
    let fds = node.n_listen :: List.map (fun c -> c.c_fd) node.n_conns in
    let ready =
      match Unix.select fds [] [] timeout with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd == node.n_listen then begin
          let cfd, _ = Unix.accept node.n_listen in
          Unix.setsockopt cfd Unix.TCP_NODELAY true;
          node.n_conns <- { c_fd = cfd; c_buf = F.create 65536 } :: node.n_conns
        end
        else
          match List.find_opt (fun c -> c.c_fd == fd) node.n_conns with
          | None -> ()
          | Some conn ->
              if not (read_conn t node handler conn) then begin
                (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
                node.n_conns <- List.filter (fun c -> c != conn) node.n_conns
              end)
      ready;
    fire_due_timers t node handler
  done;
  (* Shutdown: close everything this node owns. *)
  List.iter
    (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    node.n_conns;
  Hashtbl.iter
    (fun _ out -> try Unix.close out.o_fd with Unix.Unix_error _ -> ())
    node.n_out;
  try Unix.close node.n_listen with Unix.Unix_error _ -> ()

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let launch t node = node.n_thread <- Some (Thread.create (node_loop t) node)

let spawn t ~name ~cpu_factor:_ factory =
  let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen 64;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, p) -> p
    | _ ->
        Sim.Invariant.fail "live" "spawn: unexpected socket address family"
  in
  let node =
    locked t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let node =
          {
            n_id = id;
            n_name = name;
            n_factory = factory;
            n_listen = listen;
            n_port = port;
            n_conns = [];
            n_out = Hashtbl.create 8;
            n_timers = [];
            n_cancelled = Hashtbl.create 8;
            n_last_now = 0.0;
            n_charged = 0.0;
            n_sent_msgs = 0;
            n_sent_bytes = 0;
            n_thread = None;
            n_stop = Atomic.make false;
          }
        in
        Hashtbl.replace t.ports id port;
        t.nodes <- node :: t.nodes;
        node)
  in
  if Atomic.get t.phase = 1 then launch t node;
  node.n_id

let runtime t : 'm Core.t =
  {
    Core.rt_kind = Core.Live;
    rt_now = (fun () -> now t);
    rt_spawn = (fun ~name ~cpu_factor factory -> spawn t ~name ~cpu_factor factory);
  }

let start t =
  if Atomic.compare_and_set t.phase 0 1 then
    List.iter (launch t) (List.rev (locked t (fun () -> t.nodes)))

let stop t =
  if Atomic.get t.phase <> 2 then begin
    Atomic.set t.phase 2;
    List.iter
      (fun n -> match n.n_thread with Some th -> Thread.join th | None -> ())
      (locked t (fun () -> t.nodes));
    (* Nodes whose thread never ran still hold a listener. *)
    List.iter
      (fun n ->
        if n.n_thread = None then
          try Unix.close n.n_listen with Unix.Unix_error _ -> ())
      (locked t (fun () -> t.nodes))
  end

(* ---------------------------------------------------------------- *)
(* Crash injection                                                    *)
(* ---------------------------------------------------------------- *)

(* Kill one node mid-run: flip its stop switch, join its thread (the
   loop notices within its select timeout — the sooner of the next timer
   deadline and the 1s cap — and runs the normal shutdown path, closing
   every socket it owns), and unregister its port. Peers see a dead endpoint — cached connections fail on the next
   write and are dropped, exactly like sends to a crashed machine. *)
let crash t id =
  let node =
    locked t (fun () -> List.find_opt (fun n -> n.n_id = id) t.nodes)
  in
  match node with
  | None -> ()
  | Some node ->
      Atomic.set node.n_stop true;
      (match node.n_thread with Some th -> Thread.join th | None -> ());
      locked t (fun () -> Hashtbl.remove t.ports id);
      (match t.tap with
      | None -> ()
      | Some tap -> tap ~self:id ~now:(now t) Core.Ob_crash)

(* Restart a crashed node under the same id: fresh sockets (a new port,
   republished in the port table so peers reconnect lazily after their
   next failed send) and a fresh handler from the same factory — any
   recovery (e.g. reading a WAL) is the handler's own job, which is the
   point: the restarted process only has what it made durable. *)
let restart t id =
  let prev =
    locked t (fun () -> List.find_opt (fun n -> n.n_id = id) t.nodes)
  in
  match prev with
  | None -> ()
  | Some prev ->
      let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt listen Unix.SO_REUSEADDR true;
      Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen listen 64;
      let port =
        match Unix.getsockname listen with
        | Unix.ADDR_INET (_, p) -> p
        | _ ->
            Sim.Invariant.fail "live"
              "restart: unexpected socket address family"
      in
      let node =
        {
          prev with
          n_listen = listen;
          n_port = port;
          n_conns = [];
          n_out = Hashtbl.create 8;
          n_timers = [];
          n_cancelled = Hashtbl.create 8;
          n_charged = 0.0;
          n_thread = None;
          n_stop = Atomic.make false;
        }
      in
      locked t (fun () ->
          Hashtbl.replace t.ports id port;
          t.nodes <- node :: t.nodes);
      (match t.tap with
      | None -> ()
      | Some tap -> tap ~self:id ~now:(now t) Core.Ob_restart);
      if Atomic.get t.phase = 1 then launch t node

(* Poll [pred] until it holds or [timeout] elapses; true iff it held. *)
let await ?(timeout = 60.0) ?(poll = 0.002) t pred =
  let deadline = now t +. timeout in
  let rec go () =
    if pred () then true
    else if now t > deadline then false
    else begin
      Thread.delay poll;
      go ()
    end
  in
  go ()

let port_of t id = locked t (fun () -> Hashtbl.find_opt t.ports id)
