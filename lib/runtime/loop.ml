(* The event-loop runtime: every node of a deployment multiplexed over
   one reactor.

   Where {!Live} gives each node a thread and a syscall per message, this
   runtime runs the whole deployment single-process on one reactor
   thread: all listeners, inbound connections and outbound sockets sit in
   a single [Unix.select], the timeout computed from the root of a timer
   wheel of pending node timers (no fixed tick), and sends go through
   bounded per-destination {!Outbox}es of already-encoded {!Frame}s that
   are flushed as one coalesced batch per readiness event. Protocol code
   is unchanged: the same wire path (codec encode → framed byte stream →
   codec decode) as {!Live}, minus the thread switches and per-frame
   syscalls.

   Delivery is sink-polymorphic. A destination that lives in this
   process (the common case — the whole deployment does) gets a *local*
   sink: a flush drains the outbox's frame buffer straight into the
   destination's dispatch, so an entire request/reply chain runs at
   memcpy speed with no kernel round-trips; the reactor repeats flush
   passes to a fixpoint before re-entering [select], so chained sends
   settle within one readiness event. Destinations reached over a
   socket (or all of them, with [~direct:false]) get a *socket* sink:
   the identical buffer is flushed as one coalesced [Unix.write]. Either
   way frames take the same encode → outbox → drain path, so FIFO,
   backpressure and conformance recording behave identically.

   Connection multiplexing: outbound connections are keyed by
   *destination*, not (source, destination) — every local node sending to
   node [d] (in particular, every logical client) shares the single
   socket to [d], and the frame header's source id demultiplexes on the
   receiving side. Per-(src,dst) FIFO still holds: appends happen in
   dispatch order on the one reactor thread and the outbox is a FIFO byte
   queue over a TCP stream.

   Backpressure: when an outbox crosses its high watermark it *engages* —
   the nodes feeding it are parked (timers deferred, inbound reads
   paused, mid-drain dispatch suspended), the engagement is counted and
   surfaced through [on_backpressure], and producers resume once a flush
   drains the queue below the low watermark. A producer can overshoot the
   watermark only by what one handler dispatch emits, so queues stay
   bounded without dropping or reordering frames.

   Optional conformance recording ([record_delivery]): because both
   endpoints of every link live in this process, the runtime can remember
   a digest of each payload at append time and check it off at delivery —
   an end-to-end per-link FIFO/integrity monitor over the real wire path,
   used by the chaos drill and the saturation tests. *)

module F = Frame

(* ---------------------------------------------------------------- *)
(* Timer wheel                                                       *)
(* ---------------------------------------------------------------- *)

(* Binary min-heap of pending timers keyed (deadline, id) — the reactor's
   timer wheel. The select timeout is the distance to the root, so idle
   deployments sleep instead of burning a fixed tick. *)
module Wheel = struct
  type entry = { w_deadline : float; w_id : int; w_node : int; w_tag : string }
  type t = { mutable a : entry array; mutable size : int }

  let dummy = { w_deadline = 0.0; w_id = 0; w_node = 0; w_tag = "" }
  let create () = { a = Array.make 64 dummy; size = 0 }

  let before x y =
    x.w_deadline < y.w_deadline
    || (x.w_deadline = y.w_deadline && x.w_id < y.w_id)

  let swap t i j =
    let tmp = t.a.(i) in
    t.a.(i) <- t.a.(j);
    t.a.(j) <- tmp

  let push t e =
    if t.size = Array.length t.a then begin
      let na = Array.make (2 * t.size) dummy in
      Array.blit t.a 0 na 0 t.size;
      t.a <- na
    end;
    t.a.(t.size) <- e;
    t.size <- t.size + 1;
    let i = ref (t.size - 1) in
    while !i > 0 && before t.a.(!i) t.a.((!i - 1) / 2) do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek t = if t.size = 0 then None else Some t.a.(0)

  let pop t =
    let root = t.a.(0) in
    t.size <- t.size - 1;
    t.a.(0) <- t.a.(t.size);
    t.a.(t.size) <- dummy;
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.size && before t.a.(l) t.a.(!s) then s := l;
      if r < t.size && before t.a.(r) t.a.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        swap t !s !i;
        i := !s
      end
    done;
    root
end

(* ---------------------------------------------------------------- *)
(* State                                                             *)
(* ---------------------------------------------------------------- *)

type 'm node = {
  n_id : Sim.Node_id.t;
  n_name : string;
  n_factory : unit -> 'm Core.handler;
  mutable n_handler : 'm Core.handler option;  (* built at Init *)
  mutable n_ctx : 'm Core.ctx option;  (* cached capability record *)
  mutable n_listen : Unix.file_descr;
  mutable n_port : int;
  mutable n_alive : bool;
  mutable n_inited : bool;
  mutable n_parked : int;  (* congested outboxes currently parking us *)
  n_deferred : (int * string) Queue.t;  (* timers due while parked *)
  mutable n_last_now : float;
  mutable n_charged : float;
}

type 'm conn = {
  c_fd : Unix.file_descr;
  c_buf : F.buf;
  c_node : 'm node;  (* destination: every frame on this conn is for it *)
  mutable c_closed : bool;  (* fd gone; buffered frames may remain *)
}

(* Where a destination's flushed frames go: straight into an in-process
   node's dispatch, or out a shared non-blocking socket. *)
type 'm sink = S_node of 'm node | S_sock of Unix.file_descr

type 'm mux = {
  m_dst : Sim.Node_id.t;
  m_sink : 'm sink;
  m_out : Outbox.t;
  mutable m_waiters : 'm node list;  (* producers parked on this outbox *)
}

type cmd = Crash of Sim.Node_id.t | Restart of Sim.Node_id.t

type 'm t = {
  codec : 'm Core.codec;
  tap : 'm Core.tap option;  (* conformance observation sink *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable cmds : cmd list;  (* FIFO, oldest first *)
  mutable cmd_seq : int;
  mutable cmd_done : int;
  mutable nodes : 'm node list;  (* newest first *)
  by_id : (Sim.Node_id.t, 'm node) Hashtbl.t;
  ports : (Sim.Node_id.t, int) Hashtbl.t;
  mutable next_id : int;
  mutable init_dirty : bool;  (* some node awaits its Init dispatch *)
  muxes : (Sim.Node_id.t, 'm mux) Hashtbl.t;
  mutable conns : 'm conn list;
  wheel : Wheel.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable timer_seq : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  phase : int Atomic.t;  (* 0 idle, 1 running, 2 stopped *)
  mutable thread : Thread.t option;
  t0 : float;
  mutable mono_last : float;
  mutable traces : (float * Sim.Node_id.t * string) list;
  mutable errors : string list;
  high : int;
  low : int;
  direct : bool;  (* local sinks for in-process destinations *)
  on_backpressure : (dst:Sim.Node_id.t -> bytes:int -> unit) option;
  (* Aggregate counters (reactor-thread writes; cross-thread readers
     tolerate a stale read of a plain int). *)
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable delivered_msgs : int;
  mutable park_events : int;
  mutable engage_events : int;
  mutable peak_outbox : int;
  mutable retired_writes : int;
  mutable retired_bytes : int;
  (* Delivery recording (conformance): per-link queues of payload
     digests pushed at append, checked off at delivery. *)
  record : bool;
  links : (Sim.Node_id.t * Sim.Node_id.t, int Queue.t) Hashtbl.t;
  mutable fifo_violations : int;
}

type stats = {
  s_sent_msgs : int;
  s_sent_bytes : int;
  s_delivered_msgs : int;
  s_flush_writes : int;  (* frames out / writes = coalescing batch size *)
  s_flushed_bytes : int;
  s_backpressure : int;  (* high-watermark engagements *)
  s_parked : int;  (* producer park events *)
  s_peak_outbox_bytes : int;
  s_fifo_violations : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Wall clock relative to creation. [mono_last] smooths over clock
   steps; the unsynchronized update is a benign race — per-node
   monotonicity is enforced separately in [node_now], and a stale read
   here only rounds an off-thread observation down to a recent value. *)
let now t =
  let raw = Unix.gettimeofday () -. t.t0 in
  if raw > t.mono_last then t.mono_last <- raw;
  t.mono_last

let record_error t msg = locked t (fun () -> t.errors <- msg :: t.errors)
let errors t = locked t (fun () -> List.rev t.errors)
let get_trace t = locked t (fun () -> List.rev t.traces)

let create ?(high = Outbox.default_high) ?(low = Outbox.default_low)
    ?(direct = true) ?on_backpressure ?(record_delivery = false) ?tap ~codec ()
    =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    codec;
    tap;
    lock = Mutex.create ();
    cond = Condition.create ();
    cmds = [];
    cmd_seq = 0;
    cmd_done = 0;
    nodes = [];
    by_id = Hashtbl.create 16;
    ports = Hashtbl.create 16;
    next_id = 0;
    init_dirty = false;
    muxes = Hashtbl.create 16;
    conns = [];
    wheel = Wheel.create ();
    cancelled = Hashtbl.create 16;
    timer_seq = 0;
    wake_r;
    wake_w;
    phase = Atomic.make 0;
    thread = None;
    t0 = Unix.gettimeofday ();
    mono_last = 0.0;
    traces = [];
    errors = [];
    high;
    low;
    direct;
    on_backpressure;
    sent_msgs = 0;
    sent_bytes = 0;
    delivered_msgs = 0;
    park_events = 0;
    engage_events = 0;
    peak_outbox = 0;
    retired_writes = 0;
    retired_bytes = 0;
    record = record_delivery;
    links = Hashtbl.create 32;
    fifo_violations = 0;
  }

let stats t =
  let w = ref t.retired_writes and b = ref t.retired_bytes in
  Hashtbl.iter
    (fun _ m ->
      w := !w + m.m_out.Outbox.writes;
      b := !b + m.m_out.Outbox.flushed_bytes)
    t.muxes;
  {
    s_sent_msgs = t.sent_msgs;
    s_sent_bytes = t.sent_bytes;
    s_delivered_msgs = t.delivered_msgs;
    s_flush_writes = !w;
    s_flushed_bytes = !b;
    s_backpressure = t.engage_events;
    s_parked = t.park_events;
    s_peak_outbox_bytes = t.peak_outbox;
    s_fifo_violations = t.fifo_violations;
  }

let backpressure_events t = t.engage_events
let fifo_violations t = t.fifo_violations

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()  (* a full pipe already wakes the reactor *)

(* ---------------------------------------------------------------- *)
(* Sockets                                                           *)
(* ---------------------------------------------------------------- *)

let make_listener () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> (fd, p)
  | _ -> Sim.Invariant.fail "loop" "listener: unexpected address family"

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------------------------------------------------------------- *)
(* Delivery recording                                                *)
(* ---------------------------------------------------------------- *)

let link_q t key =
  match Hashtbl.find_opt t.links key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.links key q;
      q

let record_sent t ~src ~dst payload =
  if t.record then Queue.push (Hashtbl.hash payload) (link_q t (src, dst))

let record_delivered t ~src ~dst payload =
  if t.record then begin
    let ok =
      match Queue.take_opt (link_q t (src, dst)) with
      | Some h -> h = Hashtbl.hash payload
      | None -> false
    in
    if not ok then begin
      t.fifo_violations <- t.fifo_violations + 1;
      record_error t
        (Printf.sprintf "loop: per-link FIFO violation on %d->%d" src dst)
    end
  end

(* Frames queued for a crashed destination vanish with its sockets:
   forget the inbound half of its links so post-restart traffic is not
   matched against digests of lost frames. Outbound links (the crashed
   node as source) stay: frames it appended before dying sit in shared
   outboxes and will still be delivered. *)
let record_crash t id =
  if t.record then
    Hashtbl.iter (fun (_, d) q -> if d = id then Queue.clear q) t.links

(* ---------------------------------------------------------------- *)
(* Dispatch, send, parking                                           *)
(* ---------------------------------------------------------------- *)

let node_now t node =
  let v = now t in
  if v > node.n_last_now then node.n_last_now <- v;
  node.n_last_now

let park t mux node =
  if not (List.memq node mux.m_waiters) then begin
    mux.m_waiters <- node :: mux.m_waiters;
    node.n_parked <- node.n_parked + 1;
    t.park_events <- t.park_events + 1
  end

let find_node t id = locked t (fun () -> Hashtbl.find_opt t.by_id id)

(* Dispatch an input to a node's handler, trapping handler exceptions
   like {!Live} does. Mutually recursive with the send path because
   unparking resumes deferred dispatches. *)
let rec dispatch t node input =
  match node.n_handler with
  | None -> ()  (* crashed: the input is lost with the process *)
  | Some _ when not node.n_inited ->
      (* Spawned but not yet [Init]ed (handlers are pre-built at spawn):
         a frame racing the init dispatch is dropped like a message to a
         node still booting. *)
      ()
  | Some handler -> (
      let c = ctx_for t node in
      Core.tap_input t.tap c input;
      try handler c input
      with e ->
        record_error t
          (Printf.sprintf "node %d (%s): handler raised %s" node.n_id
             node.n_name (Printexc.to_string e)))

and ctx_for t node =
  match node.n_ctx with
  | Some c -> c
  | None ->
      let c =
        {
          Core.ctx_self = node.n_id;
          ctx_now = (fun () -> node_now t node);
          ctx_send = (fun ~size:_ dst m -> send t node dst m);
          ctx_set_timer =
            (fun delay tag ->
              t.timer_seq <- t.timer_seq + 1;
              let id = t.timer_seq in
              let deadline = node_now t node +. Float.max 0.0 delay in
              Wheel.push t.wheel
                {
                  Wheel.w_deadline = deadline;
                  w_id = id;
                  w_node = node.n_id;
                  w_tag = tag;
                };
              id);
          ctx_cancel_timer = (fun id -> Hashtbl.replace t.cancelled id ());
          ctx_charge = (fun s -> node.n_charged <- node.n_charged +. s);
          ctx_trace =
            (fun line ->
              let at = node_now t node in
              locked t (fun () ->
                  t.traces <- (at, node.n_id, line) :: t.traces));
          ctx_observe = None;
        }
      in
      let c = Core.instrument t.tap c in
      node.n_ctx <- Some c;
      c

(* The zero-copy send path: encode once, append straight into the
   destination's outbox (lazily connecting the shared per-destination
   socket), park the producer if the outbox is congested. No syscall
   happens here — the reactor flushes the whole outbox as one coalesced
   write when it next services the socket. *)
and send t node dst msg =
  if node.n_alive then
    match mux_for t dst with
    | None -> ()  (* unknown or crashed peer: behaves like a lost message *)
    | Some mux ->
        let payload = t.codec.Core.enc msg in
        record_sent t ~src:node.n_id ~dst payload;
        (match Outbox.append mux.m_out ~src:node.n_id ~payload with
        | `Engaged -> (
            t.engage_events <- t.engage_events + 1;
            match t.on_backpressure with
            | Some f -> f ~dst ~bytes:(Outbox.pending mux.m_out)
            | None -> ())
        | `Ok -> ());
        t.sent_msgs <- t.sent_msgs + 1;
        t.sent_bytes <- t.sent_bytes + F.header + String.length payload;
        let p = Outbox.pending mux.m_out in
        if p > t.peak_outbox then t.peak_outbox <- p;
        if Outbox.engaged mux.m_out then park t mux node

and mux_for t dst =
  match Hashtbl.find_opt t.muxes dst with
  | Some m -> Some m
  | None -> (
      let register sink =
        let m =
          {
            m_dst = dst;
            m_sink = sink;
            m_out = Outbox.create ~high:t.high ~low:t.low ();
            m_waiters = [];
          }
        in
        Hashtbl.replace t.muxes dst m;
        Some m
      in
      match (if t.direct then find_node t dst else None) with
      | Some n when n.n_alive -> register (S_node n)
      | Some _ -> None  (* crashed: lost, like a refused connect *)
      | None -> (
          match locked t (fun () -> Hashtbl.find_opt t.ports dst) with
          | None -> None
          | Some port -> (
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              try
                Unix.connect fd
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
                Unix.setsockopt fd Unix.TCP_NODELAY true;
                Unix.set_nonblock fd;
                register (S_sock fd)
              with Unix.Unix_error _ ->
                close_quiet fd;
                None)))

(* Tear down a destination's mux: retire its counters, unpark anyone
   waiting on its (now discarded) outbox. *)
and retire_mux t mux =
  t.retired_writes <- t.retired_writes + mux.m_out.Outbox.writes;
  t.retired_bytes <- t.retired_bytes + mux.m_out.Outbox.flushed_bytes;
  (match mux.m_sink with S_sock fd -> close_quiet fd | S_node _ -> ());
  Hashtbl.remove t.muxes mux.m_dst;
  let waiters = mux.m_waiters in
  mux.m_waiters <- [];
  List.iter (fun n -> unpark t n) waiters

(* A producer resumes: dispatch the timers that came due while it was
   parked, then the inbound frames that stayed buffered — stopping again
   immediately if any of that re-congests an outbox. *)
and unpark t node =
  node.n_parked <- node.n_parked - 1;
  if node.n_parked <= 0 then begin
    node.n_parked <- 0;
    let continue = ref true in
    while !continue && not (Queue.is_empty node.n_deferred) do
      let id, tag = Queue.pop node.n_deferred in
      if Hashtbl.mem t.cancelled id then Hashtbl.remove t.cancelled id
      else dispatch t node (Core.Timer { id; tag });
      if node.n_parked > 0 then continue := false
    done;
    if node.n_parked = 0 then
      List.iter (fun c -> if c.c_node == node then drain_conn t c) t.conns
  end

(* Decode and dispatch one delivered frame — the endpoint both local
   and socket sinks funnel into. *)
and deliver t node ~src payload =
  t.delivered_msgs <- t.delivered_msgs + 1;
  record_delivered t ~src ~dst:node.n_id payload;
  match t.codec.Core.dec payload with
  | Ok msg -> dispatch t node (Core.Recv { src; msg })
  | Error e ->
      record_error t
        (Printf.sprintf "node %d: undecodable frame from %d: %s" node.n_id src
           e)

and drain_conn t conn =
  let node = conn.c_node in
  F.drain
    ~stop:(fun () -> node.n_parked > 0 || not node.n_alive)
    conn.c_buf
    ~frame:(fun ~src payload -> deliver t node ~src payload)
    ~bad:(fun len ->
      record_error t
        (Printf.sprintf "node %d: bad frame length %d" node.n_id len))

(* ---------------------------------------------------------------- *)
(* Reactor                                                           *)
(* ---------------------------------------------------------------- *)

(* One flush pass over every outbox. Socket sinks get one coalesced
   write; local sinks drain straight into the destination's dispatch.
   Returns the bytes delivered to local sinks, so the reactor can repeat
   passes to a fixpoint — chained sends settle without a select
   round-trip. Iterates a snapshot because local dispatch can register
   new muxes mid-pass (those are picked up next pass). *)
let flush_all t =
  let muxes = Hashtbl.fold (fun _ m acc -> m :: acc) t.muxes [] in
  let closed = ref [] and local = ref 0 in
  List.iter
    (fun mux ->
      if Outbox.pending mux.m_out > 0 then begin
        let release () =
          if Outbox.release mux.m_out then begin
            let waiters = mux.m_waiters in
            mux.m_waiters <- [];
            List.iter (fun n -> unpark t n) waiters
          end
        in
        match mux.m_sink with
        | S_sock fd -> (
            match Outbox.flush mux.m_out fd with
            | `Closed -> closed := mux :: !closed
            | `Drained | `Partial -> release ())
        | S_node dst ->
            local :=
              !local
              + Outbox.flush_local mux.m_out
                  ~stop:(fun () -> dst.n_parked > 0 || not dst.n_alive)
                  ~frame:(fun ~src payload -> deliver t dst ~src payload)
                  ~bad:(fun len ->
                    record_error t
                      (Printf.sprintf "node %d: bad frame length %d" dst.n_id
                         len));
            release ()
      end)
    muxes;
  List.iter (fun m -> retire_mux t m) !closed;
  !local

(* Dispatch [Init] to nodes that have not seen it. The handler is
   normally pre-built at [spawn] (on the caller's thread, off the
   reactor's critical path); after a restart it is rebuilt here. *)
let init_pending t nodes =
  if t.init_dirty then begin
    t.init_dirty <- false;
    List.iter
      (fun node ->
        if node.n_alive && not node.n_inited then begin
          node.n_inited <- true;
          (match node.n_handler with
          | Some _ -> ()
          | None -> node.n_handler <- Some (node.n_factory ()));
          dispatch t node Core.Init
        end)
      nodes
  end

let fire_due t =
  let rec go () =
    match Wheel.peek t.wheel with
    | Some e when e.Wheel.w_deadline <= now t ->
        let e = Wheel.pop t.wheel in
        if Hashtbl.mem t.cancelled e.Wheel.w_id then
          Hashtbl.remove t.cancelled e.Wheel.w_id
        else
          (match find_node t e.Wheel.w_node with
          | Some node when node.n_alive ->
              if node.n_parked > 0 then
                Queue.push (e.Wheel.w_id, e.Wheel.w_tag) node.n_deferred
              else
                dispatch t node
                  (Core.Timer { id = e.Wheel.w_id; tag = e.Wheel.w_tag })
          | _ -> ());
        go ()
    | _ -> ()
  in
  go ()

(* Distance to the earliest pending live timer — the timer wheel replaces
   a fixed tick — capped at 1s for shutdown responsiveness. Cancelled or
   orphaned roots are discarded on the way. *)
let next_timeout t =
  let rec skim () =
    match Wheel.peek t.wheel with
    | Some e
      when Hashtbl.mem t.cancelled e.Wheel.w_id
           || (match find_node t e.Wheel.w_node with
              | Some n -> not n.n_alive
              | None -> true) ->
        let e = Wheel.pop t.wheel in
        Hashtbl.remove t.cancelled e.Wheel.w_id;
        skim ()
    | other -> other
  in
  match skim () with
  | None -> 1.0
  | Some e -> Float.min 1.0 (Float.max 0.0 (e.Wheel.w_deadline -. now t))

let do_crash t id =
  match find_node t id with
  | Some node when node.n_alive ->
      node.n_alive <- false;
      node.n_inited <- false;
      node.n_handler <- None;
      node.n_ctx <- None;
      close_quiet node.n_listen;
      List.iter (fun c -> if c.c_node == node then close_quiet c.c_fd) t.conns;
      t.conns <- List.filter (fun c -> c.c_node != node) t.conns;
      (match Hashtbl.find_opt t.muxes id with
      | Some m -> retire_mux t m
      | None -> ());
      locked t (fun () -> Hashtbl.remove t.ports id);
      Queue.clear node.n_deferred;
      (* Remove the dead node from any waiter list it sat on. *)
      Hashtbl.iter
        (fun _ m -> m.m_waiters <- List.filter (fun n -> n != node) m.m_waiters)
        t.muxes;
      node.n_parked <- 0;
      record_crash t id;
      (match t.tap with
      | None -> ()
      | Some tap -> tap ~self:id ~now:(now t) Core.Ob_crash)
  | _ -> ()

let do_restart t id =
  match find_node t id with
  | Some node when not node.n_alive ->
      let listen, port = make_listener () in
      node.n_listen <- listen;
      node.n_port <- port;
      node.n_alive <- true;
      node.n_charged <- 0.0;
      t.init_dirty <- true;
      locked t (fun () -> Hashtbl.replace t.ports id port);
      (match t.tap with
      | None -> ()
      | Some tap -> tap ~self:id ~now:(now t) Core.Ob_restart)
  | _ -> ()

let apply_cmd t = function
  | Crash id -> do_crash t id
  | Restart id -> do_restart t id

let process_cmds t =
  let cmds =
    locked t (fun () ->
        let c = t.cmds in
        t.cmds <- [];
        c)
  in
  List.iter
    (fun cmd ->
      apply_cmd t cmd;
      locked t (fun () ->
          t.cmd_done <- t.cmd_done + 1;
          Condition.broadcast t.cond))
    cmds

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let accept_conns t node =
  let rec go () =
    match Unix.accept node.n_listen with
    | cfd, _ ->
        Unix.setsockopt cfd Unix.TCP_NODELAY true;
        Unix.set_nonblock cfd;
        t.conns <-
          { c_fd = cfd; c_buf = F.create 65536; c_node = node; c_closed = false }
          :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let read_conn t conn =
  match F.read_into conn.c_buf conn.c_fd with
  | `Data n -> if n > 0 then drain_conn t conn
  | `Closed ->
      drain_conn t conn;
      close_quiet conn.c_fd;
      conn.c_closed <- true

let reactor t =
  while Atomic.get t.phase < 2 do
    process_cmds t;
    let nodes = List.rev (locked t (fun () -> t.nodes)) in
    init_pending t nodes;
    fire_due t;
    (* Flush to a fixpoint: local delivery dispatches handlers whose
       sends land in outboxes, so repeat passes until one moves nothing.
       The pass budget keeps a long chain from starving timers and
       commands — when it trips, select runs with a zero timeout and the
       next iteration resumes the remaining work. *)
    let hot = ref true and passes = ref 0 in
    while !hot && !passes < 64 do
      hot := flush_all t > 0;
      incr passes
    done;
    (* Closed connections whose buffers have fully drained can go. *)
    t.conns <-
      List.filter (fun c -> not (c.c_closed && F.is_empty c.c_buf)) t.conns;
    let reads =
      t.wake_r
      :: List.filter_map
           (fun n -> if n.n_alive then Some n.n_listen else None)
           nodes
      @ List.filter_map
          (fun c ->
            if (not c.c_closed) && c.c_node.n_alive && c.c_node.n_parked = 0
            then Some c.c_fd
            else None)
          t.conns
    in
    let writes =
      Hashtbl.fold
        (fun _ m acc ->
          match m.m_sink with
          | S_sock fd when Outbox.pending m.m_out > 0 -> fd :: acc
          | S_sock _ | S_node _ -> acc)
        t.muxes []
    in
    let timeout = if !hot then 0.0 else next_timeout t in
    let rds, _, _ =
      match Unix.select reads writes [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd == t.wake_r then drain_wake t
        else
          match
            List.find_opt (fun n -> n.n_alive && n.n_listen == fd) nodes
          with
          | Some node -> accept_conns t node
          | None -> (
              match
                List.find_opt (fun c -> (not c.c_closed) && c.c_fd == fd) t.conns
              with
              | Some conn -> read_conn t conn
              | None -> ()))
      rds
    (* Writable muxes are serviced by [flush_all] at the next loop top. *)
  done;
  (* Shutdown: retire the flush counters of surviving muxes (so [stats]
     stays accurate after [stop]) and close everything the reactor owns. *)
  List.iter (fun c -> if not c.c_closed then close_quiet c.c_fd) t.conns;
  t.conns <- [];
  Hashtbl.iter
    (fun _ m ->
      t.retired_writes <- t.retired_writes + m.m_out.Outbox.writes;
      t.retired_bytes <- t.retired_bytes + m.m_out.Outbox.flushed_bytes;
      match m.m_sink with S_sock fd -> close_quiet fd | S_node _ -> ())
    t.muxes;
  Hashtbl.reset t.muxes;
  List.iter
    (fun n -> if n.n_alive then close_quiet n.n_listen)
    (locked t (fun () -> t.nodes))

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let spawn t ~name ~cpu_factor:_ factory =
  let listen, port = make_listener () in
  (* Build the handler now, on the spawning thread: state-machine
     construction (e.g. seeding a replica's database) happens during
     deployment, not on the reactor after [start]. *)
  let handler = factory () in
  let node =
    locked t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let node =
          {
            n_id = id;
            n_name = name;
            n_factory = factory;
            n_handler = Some handler;
            n_ctx = None;
            n_listen = listen;
            n_port = port;
            n_alive = true;
            n_inited = false;
            n_parked = 0;
            n_deferred = Queue.create ();
            n_last_now = 0.0;
            n_charged = 0.0;
          }
        in
        Hashtbl.replace t.ports id port;
        Hashtbl.replace t.by_id id node;
        t.nodes <- node :: t.nodes;
        node)
  in
  t.init_dirty <- true;
  if Atomic.get t.phase = 1 then wake t;
  node.n_id

let runtime t : 'm Core.t =
  {
    Core.rt_kind = Core.Loop;
    rt_now = (fun () -> now t);
    rt_spawn =
      (fun ~name ~cpu_factor factory -> spawn t ~name ~cpu_factor factory);
  }

(* The reactor thread is pre-spawned here, parked until {!start} flips
   the phase — so [start] costs a condition signal, not a thread
   creation, and a benchmark window opened at [start] measures the
   deployment, not the OS. A stop before any start (phase 0 → 2) slides
   past the while loop straight into reactor cleanup. *)
let reactor_entry t =
  locked t (fun () ->
      while Atomic.get t.phase = 0 do
        Condition.wait t.cond t.lock
      done);
  reactor t

(* Shadow the state-only constructor: a runtime is born with its parked
   reactor thread attached. *)
let create ?high ?low ?direct ?on_backpressure ?record_delivery ?tap ~codec ()
    =
  let t =
    create ?high ?low ?direct ?on_backpressure ?record_delivery ?tap ~codec ()
  in
  t.thread <- Some (Thread.create reactor_entry t);
  t

let start t =
  if Atomic.compare_and_set t.phase 0 1 then
    locked t (fun () -> Condition.broadcast t.cond)

let stop t =
  if Atomic.get t.phase <> 2 then begin
    Atomic.set t.phase 2;
    (* Order matters: the thread may be parked in [reactor_entry] (needs
       the broadcast) or blocked in select (needs the wake byte). *)
    locked t (fun () -> Condition.broadcast t.cond);
    wake t;
    (match t.thread with Some th -> Thread.join th | None -> ());
    close_quiet t.wake_r;
    close_quiet t.wake_w;
    (* Release anyone blocked in [submit] on a command the reactor will
       never process. *)
    locked t (fun () -> Condition.broadcast t.cond)
  end

(* Run a crash/restart command: synchronously when the reactor is not
   running, else enqueued and awaited so the caller observes a quiesced
   node (mirroring {!Live.crash}'s join semantics). *)
let submit t cmd =
  if Atomic.get t.phase <> 1 then apply_cmd t cmd
  else begin
    let target =
      locked t (fun () ->
          t.cmds <- t.cmds @ [ cmd ];
          t.cmd_seq <- t.cmd_seq + 1;
          t.cmd_seq)
    in
    wake t;
    locked t (fun () ->
        while t.cmd_done < target && Atomic.get t.phase = 1 do
          Condition.wait t.cond t.lock
        done)
  end

let crash t id = submit t (Crash id)
let restart t id = submit t (Restart id)

(* Poll [pred] until it holds or [timeout] elapses; true iff it held.
   The poll interval backs off from 50µs to [poll], so short waits — a
   bench run can finish in single-digit milliseconds — resolve with
   microsecond latency while long waits stay cheap. *)
let await ?(timeout = 60.0) ?(poll = 0.002) t pred =
  let deadline = now t +. timeout in
  let rec go interval =
    if pred () then true
    else if now t > deadline then false
    else begin
      Thread.delay interval;
      go (Float.min poll (interval *. 2.0))
    end
  in
  go (Float.min poll 0.00005)

let port_of t id = locked t (fun () -> Hashtbl.find_opt t.ports id)
