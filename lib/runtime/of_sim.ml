(* The simulator as a runtime instance.

   Pure plumbing over an existing {!Sim.Engine.t}: inputs, contexts and
   node ids pass through one-to-one, so a world driven through this
   adapter schedules exactly the events it would have scheduled before the
   runtime layer existed — same-seed runs stay byte-identical, and the
   engine's scheduler hook (lib/check) keeps working untouched. *)

module E = Sim.Engine

let input = function
  | E.Init -> Core.Init
  | E.Recv { src; msg } -> Core.Recv { src; msg }
  | E.Timer { id; tag } -> Core.Timer { id; tag }

let ctx (ectx : 'm E.ctx) : 'm Core.ctx =
  {
    Core.ctx_self = E.self ectx;
    ctx_now = (fun () -> E.time ectx);
    ctx_send = (fun ~size dst m -> E.send ectx ~size dst m);
    ctx_set_timer = (fun delay tag -> E.set_timer ectx delay tag);
    ctx_cancel_timer = (fun id -> E.cancel_timer ectx id);
    ctx_charge = (fun s -> E.charge ectx s);
    ctx_trace = (fun line -> E.trace ectx line);
    ctx_observe = None;
  }

(* [tap] observes every dispatch without touching the engine's event
   queue, so an observed same-seed run schedules exactly what an
   unobserved one does. *)
let of_engine ?(tap : 'm Core.tap option) (e : 'm E.t) : 'm Core.t =
  {
    Core.rt_kind = Core.Sim;
    rt_now = (fun () -> E.now e);
    rt_spawn =
      (fun ~name ~cpu_factor factory ->
        E.spawn e ~name ~cpu_factor (fun () ->
            let h = factory () in
            fun ectx i ->
              let c = Core.instrument tap (ctx ectx) in
              let i = input i in
              Core.tap_input tap c i;
              h c i));
  }
