(* Bounded per-peer send queues with watermark backpressure.

   An outbox accumulates already-encoded frames ({!Frame.append}) for one
   destination connection and flushes the whole pending region with a
   single coalesced [Unix.write] per readiness event — many frames, one
   syscall, no per-frame allocation.

   Boundedness is cooperative: crossing [high] pending bytes *engages*
   the outbox — the hosting runtime parks the producers feeding it
   (defers their timers, pauses their inbound reads) until a flush drains
   the queue below [low], at which point {!release} disengages and the
   runtime wakes them. A producer can overshoot [high] only by what a
   single handler dispatch emits, so memory stays bounded without ever
   dropping or reordering frames: the queue is strictly FIFO per
   destination, and per-(src,dst) order is the append order. *)

type t = {
  fb : Frame.buf;
  high : int;
  low : int;
  mutable engaged : bool;
  mutable engagements : int;  (* times the high watermark was crossed *)
  mutable peak : int;  (* max pending bytes ever *)
  mutable frames : int;
  mutable flushed_bytes : int;
  mutable writes : int;  (* flush syscalls that moved bytes *)
}

let default_high = 1 lsl 20
let default_low = 1 lsl 18

let create ?(high = default_high) ?(low = default_low) () =
  if low < 0 || high <= low then
    Sim.Invariant.fail "outbox" "watermarks must satisfy 0 <= low < high";
  {
    fb = Frame.create 65536;
    high;
    low;
    engaged = false;
    engagements = 0;
    peak = 0;
    frames = 0;
    flushed_bytes = 0;
    writes = 0;
  }

let pending t = Frame.length t.fb
let engaged t = t.engaged

(* Append one frame; [`Engaged] on the transition across the high
   watermark (the caller parks producers and surfaces the signal). *)
let append t ~src ~payload =
  Frame.append t.fb ~src ~payload;
  t.frames <- t.frames + 1;
  let p = pending t in
  if p > t.peak then t.peak <- p;
  if (not t.engaged) && p >= t.high then begin
    t.engaged <- true;
    t.engagements <- t.engagements + 1;
    `Engaged
  end
  else `Ok

(* One coalesced write of everything pending. [`Partial] covers both a
   short write and a would-block on a non-blocking socket — the caller
   keeps the fd in its write-readiness set. *)
let flush t fd =
  if Frame.is_empty t.fb then `Drained
  else
    match Unix.write fd t.fb.Frame.b t.fb.Frame.head t.fb.Frame.len with
    | n ->
        t.writes <- t.writes + 1;
        t.flushed_bytes <- t.flushed_bytes + n;
        t.fb.Frame.head <- t.fb.Frame.head + n;
        t.fb.Frame.len <- t.fb.Frame.len - n;
        if t.fb.Frame.len = 0 then begin
          t.fb.Frame.head <- 0;
          `Drained
        end
        else `Partial
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Partial
    | exception Unix.Unix_error _ -> `Closed

(* In-process flush: drain pending frames straight into [frame] — one
   coalesced delivery batch, zero kernel copies — with the same
   accounting as a socket flush (a non-empty drain counts as one write).
   [stop] is polled between frames so a parked destination suspends the
   drain with the rest buffered. Returns the bytes delivered; handlers
   invoked by [frame] may append to this same outbox mid-drain, and
   those frames are drained (and counted) in the same pass. *)
let flush_local t ~stop ~frame ~bad =
  let drained = ref 0 in
  Frame.drain ~stop t.fb
    ~frame:(fun ~src payload ->
      drained := !drained + Frame.header + String.length payload;
      frame ~src payload)
    ~bad;
  if !drained > 0 then begin
    t.writes <- t.writes + 1;
    t.flushed_bytes <- t.flushed_bytes + !drained
  end;
  !drained

(* Disengage once drained below the low watermark; true iff the caller
   should unpark this outbox's waiters. *)
let release t =
  if t.engaged && pending t <= t.low then begin
    t.engaged <- false;
    true
  end
  else false
