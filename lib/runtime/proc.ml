(* The generic process shell.

   Every service in this repo is, at heart, a machine stepped by inputs:
   either a pure [state × input → state × actions] value (the verified
   TOB service, the consensus cores) or an imperative record mutated in
   place (the database replicas). Before this layer existed, each of
   broadcast/shell.ml, shadowdb/system.ml and baselines/server.ml carried
   its own copy of the same adaptation: create the state lazily once the
   node knows its own id, project world messages into protocol messages,
   charge a cost model, and interpret emitted actions as sends/timers.
   This module is that adaptation, written once against the runtime
   capability layer, so a machine hosts unchanged on any {!Core.t}. *)

type ('s, 'm, 'a) machine = {
  init : self:Sim.Node_id.t -> now:float -> 's;
  start : 's -> now:float -> 's * 'a list;
  recv : 's -> now:float -> src:Sim.Node_id.t -> 'm -> 's * 'a list;
  tick : 's -> now:float -> tag:string -> 's * 'a list;
}
(** A pure protocol machine: [init] builds the initial state (invoked
    lazily at the first input, when the hosting node's id is known);
    [start]/[recv]/[tick] map one input to a successor state and a list
    of actions for the shell to interpret. *)

(* Adapt a pure machine to a node handler for a world carrying ['w]
   messages. [prj] projects world messages into machine messages (a
   foreign message is ignored and does not force the state). [charge_recv]
   prices message ingestion, [on_step] prices the state transition (e.g.
   per delivered entry), [interp] turns each action into runtime effects,
   in emission order. *)
let node_handler ~machine ~prj ?(charge_recv = fun _ _ -> ())
    ?(on_step = fun _ ~before:_ ~after:_ -> ()) ~interp () =
  let state = ref None in
  let get ctx =
    match !state with
    | Some s -> s
    | None ->
        let s = machine.init ~self:(Core.self ctx) ~now:(Core.time ctx) in
        state := Some s;
        s
  in
  let apply ctx ~before (s, acts) =
    state := Some s;
    on_step ctx ~before ~after:s;
    List.iter (interp ctx) acts
  in
  fun ctx -> function
    | Core.Init ->
        let s = get ctx in
        apply ctx ~before:s (machine.start s ~now:(Core.time ctx))
    | Core.Recv { src; msg } -> (
        match prj msg with
        | None -> ()
        | Some m ->
            let s = get ctx in
            charge_recv ctx m;
            apply ctx ~before:s (machine.recv s ~now:(Core.time ctx) ~src m))
    | Core.Timer { tag; _ } ->
        let s = get ctx in
        apply ctx ~before:s (machine.tick s ~now:(Core.time ctx) ~tag)

(* Adapt an imperative process: [init] builds the mutable state lazily at
   the first input (when the node id is known — replacing the
   set-a-ref-after-spawn dance), [handle] processes every input against
   it. Restart after a crash re-invokes [init]: volatile state is lost. *)
let stateful_handler ~init ~handle () =
  let state = ref None in
  fun ctx input ->
    let s =
      match !state with
      | Some s -> s
      | None ->
          let s = init ~self:(Core.self ctx) ~now:(Core.time ctx) in
          state := Some s;
          s
    in
    handle ctx s input

(* Spawn [n] nodes whose factories may reference the returned id list
   lazily (through a ref filled here before the runtime delivers any
   input). *)
let spawn_group ~world ~n ~name ?(cpu_factor = fun _ -> 1.0) factory =
  List.init n (fun i ->
      Core.spawn world ~name:(name i) ~cpu_factor:(cpu_factor i) (factory i))
