(** Runtime-polymorphic process layer.

    One protocol implementation, several execution substrates: handlers
    written against this module's capability records run unchanged on the
    deterministic simulator ({!Of_sim}, preserving byte-identical
    same-seed traces and the model checker's scheduler hook) and on real
    socket deployments — {!Live} (one thread + TCP listener per node,
    wall-clock timers) and {!Loop} (the whole deployment multiplexed over
    a single event-loop reactor with batched zero-copy sends and
    watermark backpressure). {!Frame} and {!Outbox} are the shared wire
    framing and bounded send-queue building blocks; {!Driver} is a
    uniform handle over the socket runtimes so harnesses select one at
    run time. {!Proc} is the generic process shell that adapts pure
    [state × input → state × actions] machines — and imperative
    processes — to any runtime instance. *)

include Core
module Proc = Proc
module Of_sim = Of_sim
module Frame = Frame
module Outbox = Outbox
module Live = Live
module Loop = Loop
module Driver = Driver
