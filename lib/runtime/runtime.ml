(** Runtime-polymorphic process layer.

    One protocol implementation, several execution substrates: handlers
    written against this module's capability records run unchanged on the
    deterministic simulator ({!Of_sim}, preserving byte-identical
    same-seed traces and the model checker's scheduler hook) and on a
    real socket deployment ({!Live}, one thread + TCP listener per node,
    wall-clock timers). {!Proc} is the generic process shell that adapts
    pure [state × input → state × actions] machines — and imperative
    processes — to any runtime instance. *)

include Core
module Proc = Proc
module Of_sim = Of_sim
module Live = Live
