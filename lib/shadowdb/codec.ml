module Value = Storage.Value

(* v2 wire format (binary).

   Encoding appends to a single [Buffer] threaded through every encoder:
   no intermediate per-field strings. Decoding walks a cursor (immutable
   string + mutable position): no per-field tail copies, so decoding a
   batch is O(bytes), not O(bytes²).

   Primitives:
   - ints: zigzag-mapped LEB128 varints (1 byte for small magnitudes,
     self-delimiting, so any truncation mid-int is detected);
   - strings: varint byte-length followed by the raw bytes;
   - floats: 8-byte little-endian IEEE 754 bit patterns (exact);
   - constructors: one ASCII tag byte, kept from v1 for debuggability.

   Decode errors are a private exception caught at the public API
   boundary, where the remaining input is either returned (streaming
   decoders) or required to be empty (whole-buffer decoders). *)

exception Bad of string

let bad msg = raise (Bad msg)

type cur = { s : string; mutable pos : int }

let cur s = { s; pos = 0 }
let remaining c = String.length c.s - c.pos
let rest_of c = String.sub c.s c.pos (remaining c)

let read_char c =
  if c.pos >= String.length c.s then bad "truncated input"
  else begin
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    ch
  end

(* Zigzag folds the sign into the low bit so small negative ints stay
   short; [asr 62] is the sign fill of OCaml's 63-bit native int. *)
let add_varint buf n =
  let u = ref ((n lsl 1) lxor (n asr 62)) in
  while !u lsr 7 <> 0 do
    Buffer.add_char buf (Char.chr (0x80 lor (!u land 0x7f)));
    u := !u lsr 7
  done;
  Buffer.add_char buf (Char.chr !u)

let read_varint c =
  let acc = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    if !shift >= 63 then bad "varint too long";
    let b = Char.code (read_char c) in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then cont := false
  done;
  (!acc lsr 1) lxor - (!acc land 1)

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let read_str c =
  let len = read_varint c in
  if len < 0 then bad "negative string length";
  if remaining c < len then bad "truncated string";
  let s = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  s

let add_float buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let read_float c =
  if remaining c < 8 then bad "truncated float";
  let bits = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  Int64.float_of_bits bits

let add_list add buf l =
  add_varint buf (List.length l);
  List.iter (add buf) l

let read_list read c =
  let n = read_varint c in
  if n < 0 then bad "negative list length";
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      let v = read c in
      go (n - 1) (v :: acc)
  in
  go n []

(* Wraps a cursor reader into a whole-buffer decoder: all bytes must be
   consumed, errors become [Error _]. *)
let whole name read s =
  try
    let c = cur s in
    let v = read c in
    if remaining c <> 0 then bad ("trailing bytes after " ^ name);
    Ok v
  with Bad e -> Error e

(* Wraps a cursor reader into a streaming decoder returning the unread
   tail. *)
let streaming read s =
  try
    let c = cur s in
    let v = read c in
    Ok (v, rest_of c)
  with Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Values, transactions, configurations                                *)
(* ------------------------------------------------------------------ *)

let add_value buf = function
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Bool true -> Buffer.add_char buf 'T'
  | Value.Bool false -> Buffer.add_char buf 'U'
  | Value.Int i ->
      Buffer.add_char buf 'I';
      add_varint buf i
  | Value.Float f ->
      Buffer.add_char buf 'F';
      add_float buf f
  | Value.Text s ->
      Buffer.add_char buf 'S';
      add_str buf s

let read_value c =
  match read_char c with
  | 'N' -> Value.Null
  | 'T' -> Value.Bool true
  | 'U' -> Value.Bool false
  | 'I' -> Value.Int (read_varint c)
  | 'F' -> Value.Float (read_float c)
  | 'S' -> Value.Text (read_str c)
  | ch -> bad (Printf.sprintf "bad value tag %C" ch)

let encode_value v =
  let buf = Buffer.create 16 in
  add_value buf v;
  Buffer.contents buf

let decode_value s = streaming read_value s

let add_txn buf (t : Txn.t) =
  add_varint buf t.Txn.client;
  add_varint buf t.Txn.seq;
  add_str buf t.Txn.kind;
  add_list add_value buf t.Txn.params

let read_txn c =
  let client = read_varint c in
  let seq = read_varint c in
  let kind = read_str c in
  let params = read_list read_value c in
  { Txn.client; seq; kind; params }

let encode_txn t =
  let buf = Buffer.create 64 in
  add_txn buf t;
  Buffer.contents buf

let decode_txn s = whole "txn" read_txn s

let add_config buf (cf : Config.t) =
  add_varint buf cf.Config.seq;
  add_list add_varint buf cf.Config.members

let read_config c =
  let seq = read_varint c in
  let members = read_list read_varint c in
  { Config.seq; members }

let encode_config cf =
  let buf = Buffer.create 16 in
  add_config buf cf;
  Buffer.contents buf

let decode_config s = whole "config" read_config s

let encode_reconfig cf ~last_seq ~proposer =
  let buf = Buffer.create 32 in
  add_varint buf last_seq;
  add_varint buf proposer;
  add_config buf cf;
  Buffer.contents buf

let decode_reconfig s =
  whole "reconfig"
    (fun c ->
      let last_seq = read_varint c in
      let proposer = read_varint c in
      let cf = read_config c in
      (cf, last_seq, proposer))
    s

(* ------------------------------------------------------------------ *)
(* Live-runtime wire codecs                                            *)
(*                                                                     *)
(* Once a ShadowDB node runs behind a real socket, every message the   *)
(* simulator used to pass by reference has to cross the wire: TOB      *)
(* entries and delivery notifications, the Paxos core's protocol       *)
(* messages (carrying entry batches), and the database replication     *)
(* traffic of Db_msg. Every decoder rejects truncated buffers.         *)
(* ------------------------------------------------------------------ *)

let add_entry buf (e : Broadcast.Tob.entry) =
  add_varint buf e.Broadcast.Tob.origin;
  add_varint buf e.Broadcast.Tob.id;
  add_str buf e.Broadcast.Tob.payload

let read_entry c =
  let origin = read_varint c in
  let id = read_varint c in
  let payload = read_str c in
  { Broadcast.Tob.origin; id; payload }

let encode_entry e =
  let buf = Buffer.create 32 in
  add_entry buf e;
  Buffer.contents buf

let decode_entry s = streaming read_entry s

let add_batch buf (b : Broadcast.Tob.batch) = add_list add_entry buf b
let read_batch c = read_list read_entry c

let encode_batch b =
  let buf = Buffer.create 64 in
  add_batch buf b;
  Buffer.contents buf

let decode_batch s = streaming read_batch s
let decode_batch_all s = whole "batch" read_batch s

let encode_deliver (d : Broadcast.Tob.deliver) =
  let buf = Buffer.create 32 in
  add_varint buf d.Broadcast.Tob.seqno;
  add_entry buf d.Broadcast.Tob.entry;
  Buffer.contents buf

let decode_deliver s =
  whole "deliver"
    (fun c ->
      let seqno = read_varint c in
      let entry = read_entry c in
      { Broadcast.Tob.seqno; entry })
    s

module PM = Consensus.Paxos_msg

let add_ballot buf (b : PM.ballot) =
  add_varint buf b.PM.round;
  add_varint buf b.PM.leader

let read_ballot c =
  let round = read_varint c in
  let leader = read_varint c in
  { PM.round; leader }

(* The command writer/reader is abstract so the core instantiation can
   inline batches straight into the shared buffer, while the generic
   string-codec interface wraps commands in a length-prefixed blob. *)
let add_pvalue add_c buf (pv : 'c PM.pvalue) =
  add_ballot buf pv.PM.b;
  add_varint buf pv.PM.s;
  add_c buf pv.PM.c

let read_pvalue read_c c =
  let b = read_ballot c in
  let slot = read_varint c in
  let cmd = read_c c in
  { PM.b; s = slot; c = cmd }

let add_paxos add_c buf (m : 'c PM.t) =
  match m with
  | PM.P1a { src; b } ->
      Buffer.add_char buf 'A';
      add_varint buf src;
      add_ballot buf b
  | PM.P1b { src; b; accepted } ->
      Buffer.add_char buf 'B';
      add_varint buf src;
      add_ballot buf b;
      add_list (add_pvalue add_c) buf accepted
  | PM.P2a { src; pv } ->
      Buffer.add_char buf 'C';
      add_varint buf src;
      add_pvalue add_c buf pv
  | PM.P2b { src; b; s } ->
      Buffer.add_char buf 'D';
      add_varint buf src;
      add_ballot buf b;
      add_varint buf s
  | PM.Propose { s; c } ->
      Buffer.add_char buf 'P';
      add_varint buf s;
      add_c buf c
  | PM.Decision { s; c } ->
      Buffer.add_char buf 'E';
      add_varint buf s;
      add_c buf c

let read_paxos read_c c =
  match read_char c with
  | 'A' ->
      let src = read_varint c in
      let b = read_ballot c in
      PM.P1a { src; b }
  | 'B' ->
      let src = read_varint c in
      let b = read_ballot c in
      let accepted = read_list (read_pvalue read_c) c in
      PM.P1b { src; b; accepted }
  | 'C' ->
      let src = read_varint c in
      let pv = read_pvalue read_c c in
      PM.P2a { src; pv }
  | 'D' ->
      let src = read_varint c in
      let b = read_ballot c in
      let slot = read_varint c in
      PM.P2b { src; b; s = slot }
  | 'P' ->
      let slot = read_varint c in
      let cmd = read_c c in
      PM.Propose { s = slot; c = cmd }
  | 'E' ->
      let slot = read_varint c in
      let cmd = read_c c in
      PM.Decision { s = slot; c = cmd }
  | ch -> bad (Printf.sprintf "bad paxos tag %C" ch)

let encode_paxos enc_c m =
  let buf = Buffer.create 64 in
  add_paxos (fun buf cmd -> add_str buf (enc_c cmd)) buf m;
  Buffer.contents buf

let decode_paxos dec_c s =
  whole "paxos message"
    (read_paxos (fun c ->
         match dec_c (read_str c) with Ok v -> v | Error e -> bad e))
    s

let encode_core_paxos (m : Broadcast.Tob.batch PM.t) =
  let buf = Buffer.create 64 in
  add_paxos add_batch buf m;
  Buffer.contents buf

let decode_core_paxos s = whole "paxos message" (read_paxos read_batch) s

(* Database replication messages. *)

let add_varray buf (a : Value.t array) =
  add_varint buf (Array.length a);
  Array.iter (add_value buf) a

let read_varray c =
  let n = read_varint c in
  if n < 0 then bad "negative array length";
  Array.init n (fun _ -> read_value c)

let add_row buf ((key, a) : string * Value.t array) =
  add_str buf key;
  add_varray buf a

let read_row c =
  let key = read_str c in
  let a = read_varray c in
  (key, a)

let add_reply buf (r : Txn.reply) =
  add_varint buf r.Txn.client;
  add_varint buf r.Txn.seq;
  match r.Txn.outcome with
  | Ok rows ->
      Buffer.add_char buf 'O';
      add_list add_varray buf rows
  | Error e ->
      Buffer.add_char buf 'X';
      add_str buf e

let read_reply c =
  let client = read_varint c in
  let seq = read_varint c in
  match read_char c with
  | 'O' ->
      let rows = read_list read_varray c in
      { Txn.client; seq; outcome = Ok rows }
  | 'X' ->
      let e = read_str c in
      { Txn.client; seq; outcome = Error e }
  | ch -> bad (Printf.sprintf "bad reply tag %C" ch)

let add_catchup_item buf ((g, t) : int * Txn.t) =
  add_varint buf g;
  add_txn buf t

let read_catchup_item c =
  let g = read_varint c in
  let t = read_txn c in
  (g, t)

let add_db_msg buf (m : Db_msg.t) =
  match m with
  | Db_msg.Client_txn t ->
      Buffer.add_char buf 'C';
      add_txn buf t
  | Db_msg.Forward { cfg; gseq; txn } ->
      Buffer.add_char buf 'F';
      add_varint buf cfg;
      add_varint buf gseq;
      add_txn buf txn
  | Db_msg.Ack { cfg; gseq } ->
      Buffer.add_char buf 'A';
      add_varint buf cfg;
      add_varint buf gseq
  | Db_msg.Reply r ->
      Buffer.add_char buf 'R';
      add_reply buf r
  | Db_msg.Heartbeat { cfg } ->
      Buffer.add_char buf 'H';
      add_varint buf cfg
  | Db_msg.Elect { cfg; last_seq } ->
      Buffer.add_char buf 'E';
      add_varint buf cfg;
      add_varint buf last_seq
  | Db_msg.Catchup { cfg; txns; upto } ->
      Buffer.add_char buf 'U';
      add_varint buf cfg;
      add_varint buf upto;
      add_list add_catchup_item buf txns
  | Db_msg.Snapshot { cfg; rows; upto; last; clients } ->
      Buffer.add_char buf 'S';
      add_varint buf cfg;
      add_varint buf upto;
      Buffer.add_char buf (if last then '\001' else '\000');
      add_list add_row buf rows;
      add_list add_reply buf clients
  | Db_msg.Recovered { cfg } ->
      Buffer.add_char buf 'V';
      add_varint buf cfg
  | Db_msg.Snapshot_req { cfg; from_seq } ->
      Buffer.add_char buf 'Q';
      add_varint buf cfg;
      add_varint buf from_seq
  | Db_msg.Vote { shard; participants; vote; vtxn } ->
      Buffer.add_char buf 'T';
      add_varint buf shard;
      add_list add_varint buf participants;
      add_reply buf vote;
      add_txn buf vtxn

let read_db_msg c =
  match read_char c with
  | 'C' ->
      let t = read_txn c in
      Db_msg.Client_txn t
  | 'F' ->
      let cfg = read_varint c in
      let gseq = read_varint c in
      let txn = read_txn c in
      Db_msg.Forward { cfg; gseq; txn }
  | 'A' ->
      let cfg = read_varint c in
      let gseq = read_varint c in
      Db_msg.Ack { cfg; gseq }
  | 'R' ->
      let r = read_reply c in
      Db_msg.Reply r
  | 'H' ->
      let cfg = read_varint c in
      Db_msg.Heartbeat { cfg }
  | 'E' ->
      let cfg = read_varint c in
      let last_seq = read_varint c in
      Db_msg.Elect { cfg; last_seq }
  | 'U' ->
      let cfg = read_varint c in
      let upto = read_varint c in
      let txns = read_list read_catchup_item c in
      Db_msg.Catchup { cfg; txns; upto }
  | 'S' ->
      let cfg = read_varint c in
      let upto = read_varint c in
      let last = read_char c <> '\000' in
      let rows = read_list read_row c in
      let clients = read_list read_reply c in
      Db_msg.Snapshot { cfg; rows; upto; last; clients }
  | 'V' ->
      let cfg = read_varint c in
      Db_msg.Recovered { cfg }
  | 'Q' ->
      let cfg = read_varint c in
      let from_seq = read_varint c in
      Db_msg.Snapshot_req { cfg; from_seq }
  | 'T' ->
      let shard = read_varint c in
      let participants = read_list read_varint c in
      let vote = read_reply c in
      let vtxn = read_txn c in
      Db_msg.Vote { shard; participants; vote; vtxn }
  | ch -> bad (Printf.sprintf "bad db message tag %C" ch)

let encode_db_msg m =
  let buf = Buffer.create 64 in
  add_db_msg buf m;
  Buffer.contents buf

let decode_db_msg s = whole "db message" read_db_msg s

(* Sharded 2PC broadcast payloads. These travel inside each participant
   shard's own TOB stream (payload tags 'P' / 'D' at the System layer),
   so they are encoded bare here and framed by the caller. *)

let encode_prepare ~coord ~shard ~participants ~ptxn =
  let buf = Buffer.create 64 in
  add_varint buf coord;
  add_varint buf shard;
  add_list add_varint buf participants;
  add_txn buf ptxn;
  Buffer.contents buf

let decode_prepare s =
  whole "2pc prepare"
    (fun c ->
      let coord = read_varint c in
      let shard = read_varint c in
      let participants = read_list read_varint c in
      let ptxn = read_txn c in
      (coord, shard, participants, ptxn))
    s

let encode_decision ~shard ~commit ~dtxn =
  let buf = Buffer.create 64 in
  add_varint buf shard;
  Buffer.add_char buf (if commit then '\001' else '\000');
  add_txn buf dtxn;
  Buffer.contents buf

let decode_decision s =
  whole "2pc decision"
    (fun c ->
      let shard = read_varint c in
      let commit = read_char c <> '\000' in
      let dtxn = read_txn c in
      (shard, commit, dtxn))
    s

(* Bare row dumps: the durability layer's snapshot payload (a whole
   [Database.dump] image, no message framing around it). *)

let encode_rows (rows : (string * Value.t array) list) =
  let buf = Buffer.create 256 in
  add_list add_row buf rows;
  Buffer.contents buf

let decode_rows s = whole "row dump" (read_list read_row) s
