module Value = Storage.Value

let buf_add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let encode_value v =
  let buf = Buffer.create 16 in
  (match v with
  | Value.Null -> Buffer.add_char buf 'N'
  | Value.Int i ->
      Buffer.add_char buf 'I';
      buf_add_str buf (string_of_int i)
  | Value.Float f ->
      Buffer.add_char buf 'F';
      buf_add_str buf (Printf.sprintf "%h" f)
  | Value.Text s ->
      Buffer.add_char buf 'S';
      buf_add_str buf s
  | Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'U'));
  Buffer.contents buf

(* Parse "<len>:<bytes>" at the head of [s]; return (bytes, rest). *)
let take_str s =
  match String.index_opt s ':' with
  | None -> Error "missing length prefix"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> Error "bad length prefix"
      | Some len ->
          if String.length s < i + 1 + len then Error "truncated input"
          else
            Ok
              ( String.sub s (i + 1) len,
                String.sub s (i + 1 + len) (String.length s - i - 1 - len) ))

let decode_value s =
  if s = "" then Error "empty value input"
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'N' -> Ok (Value.Null, rest)
    | 'T' -> Ok (Value.Bool true, rest)
    | 'U' -> Ok (Value.Bool false, rest)
    | 'I' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> (
            match int_of_string_opt body with
            | Some i -> Ok (Value.Int i, rest)
            | None -> Error "bad int"))
    | 'F' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> (
            match float_of_string_opt body with
            | Some f -> Ok (Value.Float f, rest)
            | None -> Error "bad float"))
    | 'S' -> (
        match take_str rest with
        | Error e -> Error e
        | Ok (body, rest) -> Ok (Value.Text body, rest))
    | c -> Error (Printf.sprintf "bad value tag %C" c)

let encode_txn (t : Txn.t) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%d,%d," t.Txn.client t.Txn.seq);
  buf_add_str buf t.Txn.kind;
  Buffer.add_string buf (string_of_int (List.length t.Txn.params));
  Buffer.add_char buf ';';
  List.iter (fun v -> Buffer.add_string buf (encode_value v)) t.Txn.params;
  Buffer.contents buf

let decode_txn s =
  let ( let* ) = Result.bind in
  let int_until c s =
    match String.index_opt s c with
    | None -> Error "missing separator"
    | Some i -> (
        match int_of_string_opt (String.sub s 0 i) with
        | Some n -> Ok (n, String.sub s (i + 1) (String.length s - i - 1))
        | None -> Error "bad int field")
  in
  let* client, s = int_until ',' s in
  let* seq, s = int_until ',' s in
  let* kind, s = take_str s in
  let* nparams, s = int_until ';' s in
  let rec params n s acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* v, s = decode_value s in
      params (n - 1) s (v :: acc)
  in
  let* params = params nparams s [] in
  Ok { Txn.client; seq; kind; params }

let encode_config (c : Config.t) =
  Printf.sprintf "%d|%s" c.Config.seq
    (String.concat "," (List.map string_of_int c.Config.members))

let decode_config s =
  match String.index_opt s '|' with
  | None -> Error "bad config"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> Error "bad config seq"
      | Some seq ->
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          let members =
            if rest = "" then []
            else List.filter_map int_of_string_opt (String.split_on_char ',' rest)
          in
          Ok { Config.seq; members })

let encode_reconfig c ~last_seq ~proposer =
  Printf.sprintf "%d@%d@%s" last_seq proposer (encode_config c)

let decode_reconfig s =
  match String.split_on_char '@' s with
  | [ ls; pr; cfg ] -> (
      match (int_of_string_opt ls, int_of_string_opt pr, decode_config cfg) with
      | Some last_seq, Some proposer, Ok c -> Ok (c, last_seq, proposer)
      | _ -> Error "bad reconfig")
  | _ -> Error "bad reconfig shape"

(* ------------------------------------------------------------------ *)
(* Live-runtime wire codecs                                            *)
(*                                                                     *)
(* Once a ShadowDB node runs behind a real socket, every message the   *)
(* simulator used to pass by reference has to cross the wire: TOB      *)
(* entries and delivery notifications, the Paxos core's protocol       *)
(* messages (carrying entry batches), and the database replication     *)
(* traffic of Db_msg. Same length-prefixed streaming discipline as the *)
(* payload codecs above; every decoder rejects truncated buffers.      *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let enc_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ','

(* Parse "<int>," at the head of [s]; return (n, rest). *)
let dec_int s =
  match String.index_opt s ',' with
  | None -> Error "missing int separator"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | Some n -> Ok (n, String.sub s (i + 1) (String.length s - i - 1))
      | None -> Error "bad int field")

let enc_list enc buf l =
  enc_int buf (List.length l);
  List.iter (enc buf) l

let dec_list dec s =
  let* n, s = dec_int s in
  if n < 0 then Error "negative list length"
  else
    let rec go n s acc =
      if n = 0 then Ok (List.rev acc, s)
      else
        let* v, s = dec s in
        go (n - 1) s (v :: acc)
    in
    go n s []

let enc_entry buf (e : Broadcast.Tob.entry) =
  enc_int buf e.Broadcast.Tob.origin;
  enc_int buf e.Broadcast.Tob.id;
  buf_add_str buf e.Broadcast.Tob.payload

let dec_entry s =
  let* origin, s = dec_int s in
  let* id, s = dec_int s in
  let* payload, s = take_str s in
  Ok ({ Broadcast.Tob.origin; id; payload }, s)

let encode_entry e =
  let buf = Buffer.create 32 in
  enc_entry buf e;
  Buffer.contents buf

let decode_entry = dec_entry

let encode_batch (b : Broadcast.Tob.batch) =
  let buf = Buffer.create 64 in
  enc_list enc_entry buf b;
  Buffer.contents buf

let decode_batch s = dec_list dec_entry s

let decode_batch_all s =
  match decode_batch s with
  | Ok (b, "") -> Ok b
  | Ok _ -> Error "trailing bytes after batch"
  | Error e -> Error e

let encode_deliver (d : Broadcast.Tob.deliver) =
  let buf = Buffer.create 32 in
  enc_int buf d.Broadcast.Tob.seqno;
  enc_entry buf d.Broadcast.Tob.entry;
  Buffer.contents buf

let decode_deliver s =
  let* seqno, s = dec_int s in
  let* entry, s = dec_entry s in
  if s <> "" then Error "trailing bytes after deliver"
  else Ok { Broadcast.Tob.seqno; entry }

module PM = Consensus.Paxos_msg

let enc_ballot buf (b : PM.ballot) =
  enc_int buf b.PM.round;
  enc_int buf b.PM.leader

let dec_ballot s =
  let* round, s = dec_int s in
  let* leader, s = dec_int s in
  Ok ({ PM.round; leader }, s)

(* Commands travel length-prefixed so the command codec sees exactly its
   own bytes and need not be streaming. *)
let enc_pvalue enc_c buf (pv : 'c PM.pvalue) =
  enc_ballot buf pv.PM.b;
  enc_int buf pv.PM.s;
  buf_add_str buf (enc_c pv.PM.c)

let dec_pvalue dec_c s =
  let* b, s = dec_ballot s in
  let* slot, s = dec_int s in
  let* cbytes, s = take_str s in
  let* c = dec_c cbytes in
  Ok ({ PM.b; s = slot; c }, s)

let encode_paxos enc_c (m : 'c PM.t) =
  let buf = Buffer.create 64 in
  (match m with
  | PM.P1a { src; b } ->
      Buffer.add_char buf 'A';
      enc_int buf src;
      enc_ballot buf b
  | PM.P1b { src; b; accepted } ->
      Buffer.add_char buf 'B';
      enc_int buf src;
      enc_ballot buf b;
      enc_list (enc_pvalue enc_c) buf accepted
  | PM.P2a { src; pv } ->
      Buffer.add_char buf 'C';
      enc_int buf src;
      enc_pvalue enc_c buf pv
  | PM.P2b { src; b; s } ->
      Buffer.add_char buf 'D';
      enc_int buf src;
      enc_ballot buf b;
      enc_int buf s
  | PM.Propose { s; c } ->
      Buffer.add_char buf 'P';
      enc_int buf s;
      buf_add_str buf (enc_c c)
  | PM.Decision { s; c } ->
      Buffer.add_char buf 'E';
      enc_int buf s;
      buf_add_str buf (enc_c c));
  Buffer.contents buf

let decode_paxos dec_c s =
  if s = "" then Error "empty paxos message"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'A' ->
        let* src, body = dec_int body in
        let* b, rest = dec_ballot body in
        if rest <> "" then Error "trailing bytes in p1a"
        else Ok (PM.P1a { src; b })
    | 'B' ->
        let* src, body = dec_int body in
        let* b, body = dec_ballot body in
        let* accepted, rest = dec_list (dec_pvalue dec_c) body in
        if rest <> "" then Error "trailing bytes in p1b"
        else Ok (PM.P1b { src; b; accepted })
    | 'C' ->
        let* src, body = dec_int body in
        let* pv, rest = dec_pvalue dec_c body in
        if rest <> "" then Error "trailing bytes in p2a"
        else Ok (PM.P2a { src; pv })
    | 'D' ->
        let* src, body = dec_int body in
        let* b, body = dec_ballot body in
        let* slot, rest = dec_int body in
        if rest <> "" then Error "trailing bytes in p2b"
        else Ok (PM.P2b { src; b; s = slot })
    | 'P' ->
        let* slot, body = dec_int body in
        let* cbytes, rest = take_str body in
        let* c = dec_c cbytes in
        if rest <> "" then Error "trailing bytes in propose"
        else Ok (PM.Propose { s = slot; c })
    | 'E' ->
        let* slot, body = dec_int body in
        let* cbytes, rest = take_str body in
        let* c = dec_c cbytes in
        if rest <> "" then Error "trailing bytes in decision"
        else Ok (PM.Decision { s = slot; c })
    | c -> Error (Printf.sprintf "bad paxos tag %C" c)

let encode_core_paxos (m : Broadcast.Tob.batch PM.t) =
  encode_paxos encode_batch m

let decode_core_paxos s = decode_paxos decode_batch_all s

(* Database replication messages. *)

let enc_value buf v = Buffer.add_string buf (encode_value v)

let enc_varray buf (a : Value.t array) =
  enc_int buf (Array.length a);
  Array.iter (enc_value buf) a

let dec_varray s =
  let* n, s = dec_int s in
  if n < 0 then Error "negative array length"
  else
    let rec go n s acc =
      if n = 0 then Ok (Array.of_list (List.rev acc), s)
      else
        let* v, s = decode_value s in
        go (n - 1) s (v :: acc)
    in
    go n s []

let enc_row buf ((key, a) : string * Value.t array) =
  buf_add_str buf key;
  enc_varray buf a

let dec_row s =
  let* key, s = take_str s in
  let* a, s = dec_varray s in
  Ok ((key, a), s)

let enc_txn_field buf t = buf_add_str buf (encode_txn t)

let dec_txn_field s =
  let* bytes, s = take_str s in
  let* t = decode_txn bytes in
  Ok (t, s)

let enc_reply buf (r : Txn.reply) =
  enc_int buf r.Txn.client;
  enc_int buf r.Txn.seq;
  match r.Txn.outcome with
  | Ok rows ->
      Buffer.add_char buf 'O';
      enc_list enc_varray buf rows
  | Error e ->
      Buffer.add_char buf 'X';
      buf_add_str buf e

let dec_reply s =
  let* client, s = dec_int s in
  let* seq, s = dec_int s in
  if s = "" then Error "truncated reply"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'O' ->
        let* rows, s = dec_list dec_varray body in
        Ok ({ Txn.client; seq; outcome = Ok rows }, s)
    | 'X' ->
        let* e, s = take_str body in
        Ok ({ Txn.client; seq; outcome = Error e }, s)
    | c -> Error (Printf.sprintf "bad reply tag %C" c)

let enc_catchup_item buf ((g, t) : int * Txn.t) =
  enc_int buf g;
  enc_txn_field buf t

let dec_catchup_item s =
  let* g, s = dec_int s in
  let* t, s = dec_txn_field s in
  Ok ((g, t), s)

let encode_db_msg (m : Db_msg.t) =
  let buf = Buffer.create 64 in
  (match m with
  | Db_msg.Client_txn t ->
      Buffer.add_char buf 'C';
      enc_txn_field buf t
  | Db_msg.Forward { cfg; gseq; txn } ->
      Buffer.add_char buf 'F';
      enc_int buf cfg;
      enc_int buf gseq;
      enc_txn_field buf txn
  | Db_msg.Ack { cfg; gseq } ->
      Buffer.add_char buf 'A';
      enc_int buf cfg;
      enc_int buf gseq
  | Db_msg.Reply r ->
      Buffer.add_char buf 'R';
      enc_reply buf r
  | Db_msg.Heartbeat { cfg } ->
      Buffer.add_char buf 'H';
      enc_int buf cfg
  | Db_msg.Elect { cfg; last_seq } ->
      Buffer.add_char buf 'E';
      enc_int buf cfg;
      enc_int buf last_seq
  | Db_msg.Catchup { cfg; txns; upto } ->
      Buffer.add_char buf 'U';
      enc_int buf cfg;
      enc_int buf upto;
      enc_list enc_catchup_item buf txns
  | Db_msg.Snapshot { cfg; rows; upto; last; clients } ->
      Buffer.add_char buf 'S';
      enc_int buf cfg;
      enc_int buf upto;
      enc_int buf (if last then 1 else 0);
      enc_list enc_row buf rows;
      enc_list enc_reply buf clients
  | Db_msg.Recovered { cfg } ->
      Buffer.add_char buf 'V';
      enc_int buf cfg
  | Db_msg.Snapshot_req { cfg; from_seq } ->
      Buffer.add_char buf 'Q';
      enc_int buf cfg;
      enc_int buf from_seq);
  Buffer.contents buf

let decode_db_msg s =
  if s = "" then Error "empty db message"
  else
    let done_ rest v = if rest <> "" then Error "trailing bytes in db message" else Ok v in
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'C' ->
        let* t, rest = dec_txn_field body in
        done_ rest (Db_msg.Client_txn t)
    | 'F' ->
        let* cfg, body = dec_int body in
        let* gseq, body = dec_int body in
        let* txn, rest = dec_txn_field body in
        done_ rest (Db_msg.Forward { cfg; gseq; txn })
    | 'A' ->
        let* cfg, body = dec_int body in
        let* gseq, rest = dec_int body in
        done_ rest (Db_msg.Ack { cfg; gseq })
    | 'R' ->
        let* r, rest = dec_reply body in
        done_ rest (Db_msg.Reply r)
    | 'H' ->
        let* cfg, rest = dec_int body in
        done_ rest (Db_msg.Heartbeat { cfg })
    | 'E' ->
        let* cfg, body = dec_int body in
        let* last_seq, rest = dec_int body in
        done_ rest (Db_msg.Elect { cfg; last_seq })
    | 'U' ->
        let* cfg, body = dec_int body in
        let* upto, body = dec_int body in
        let* txns, rest = dec_list dec_catchup_item body in
        done_ rest (Db_msg.Catchup { cfg; txns; upto })
    | 'S' ->
        let* cfg, body = dec_int body in
        let* upto, body = dec_int body in
        let* last, body = dec_int body in
        let* rows, body = dec_list dec_row body in
        let* clients, rest = dec_list dec_reply body in
        done_ rest (Db_msg.Snapshot { cfg; rows; upto; last = last <> 0; clients })
    | 'V' ->
        let* cfg, rest = dec_int body in
        done_ rest (Db_msg.Recovered { cfg })
    | 'Q' ->
        let* cfg, body = dec_int body in
        let* from_seq, rest = dec_int body in
        done_ rest (Db_msg.Snapshot_req { cfg; from_seq })
    | c -> Error (Printf.sprintf "bad db message tag %C" c)
