(** Wire codecs: values, transactions, and group configurations to and
    from strings (the broadcast service carries opaque string payloads).

    v2 binary format: one ASCII tag byte per constructor, zigzag LEB128
    varints for ints, varint-length-prefixed raw bytes for strings (so
    arbitrary text in values round-trips), 8-byte little-endian IEEE 754
    for floats. Encoders share one [Buffer]; decoders walk a cursor with
    no tail copies. See DESIGN.md for the format and its truncation
    -rejection argument. *)

val encode_value : Storage.Value.t -> string
val decode_value : string -> (Storage.Value.t * string, string) result
(** Returns the value and the remaining input. *)

val encode_txn : Txn.t -> string
val decode_txn : string -> (Txn.t, string) result

val encode_config : Config.t -> string
val decode_config : string -> (Config.t, string) result

val encode_reconfig : Config.t -> last_seq:int -> proposer:int -> string
val decode_reconfig : string -> (Config.t * int * int, string) result
(** SMR reconfiguration request: new config, proposer's last executed
    sequence number, proposer location. *)

(** {1 Live-runtime wire codecs}

    Full message codecs for running ShadowDB nodes over real sockets:
    broadcast entries and delivery notifications, Paxos protocol messages
    (parameterized by a command codec), and database replication
    messages. All decoders reject truncated or trailing bytes. *)

val encode_entry : Broadcast.Tob.entry -> string

val decode_entry :
  string -> (Broadcast.Tob.entry * string, string) result
(** Streaming: returns the entry and the remaining input. *)

val encode_batch : Broadcast.Tob.batch -> string

val decode_batch :
  string -> (Broadcast.Tob.batch * string, string) result
(** Streaming: returns the batch and the remaining input. *)

val decode_batch_all : string -> (Broadcast.Tob.batch, string) result
(** Whole-buffer variant: fails on trailing bytes. *)

val encode_deliver : Broadcast.Tob.deliver -> string
val decode_deliver : string -> (Broadcast.Tob.deliver, string) result

val encode_paxos :
  ('c -> string) -> 'c Consensus.Paxos_msg.t -> string

val decode_paxos :
  (string -> ('c, string) result) ->
  string ->
  ('c Consensus.Paxos_msg.t, string) result

val encode_core_paxos : Broadcast.Tob.batch Consensus.Paxos_msg.t -> string
(** {!encode_paxos} instantiated at the TOB batch command type — the
    consensus core the paper's broadcast service actually runs. *)

val decode_core_paxos :
  string -> (Broadcast.Tob.batch Consensus.Paxos_msg.t, string) result

val encode_db_msg : Db_msg.t -> string
val decode_db_msg : string -> (Db_msg.t, string) result

(** {1 Sharded 2PC payloads}

    Prepare and decision records for cross-shard transactions. They ride
    inside each participant shard's own TOB stream, so they are encoded
    bare here — the System layer frames them with its payload tag. *)

val encode_prepare :
  coord:int -> shard:int -> participants:int list -> ptxn:Txn.t -> string

val decode_prepare : string -> (int * int * int list * Txn.t, string) result
(** [(coord, shard, participants, ptxn)]. *)

val encode_decision : shard:int -> commit:bool -> dtxn:Txn.t -> string

val decode_decision : string -> (int * bool * Txn.t, string) result
(** [(shard, commit, dtxn)] — the decision carries the sub-transaction
    so a replica that missed the prepare can still apply a commit. *)

val encode_rows : (string * Storage.Value.t array) list -> string
val decode_rows :
  string -> ((string * Storage.Value.t array) list, string) result
(** Bare row dumps — the durability layer's snapshot payload (a whole
    [Database.dump] image with no message framing). *)
