type loc = int

type t =
  | Client_txn of Txn.t
  | Forward of { cfg : int; gseq : int; txn : Txn.t }
  | Ack of { cfg : int; gseq : int }
  | Reply of Txn.reply
  | Heartbeat of { cfg : int }
  | Elect of { cfg : int; last_seq : int }
  | Catchup of { cfg : int; txns : (int * Txn.t) list; upto : int }
  | Snapshot of {
      cfg : int;
      rows : (string * Storage.Value.t array) list;
      upto : int;
      last : bool;
      clients : Txn.reply list;
    }
  | Recovered of { cfg : int }
  | Snapshot_req of { cfg : int; from_seq : int }
  | Vote of {
      shard : int;
      participants : int list;
      vote : Txn.reply;
      vtxn : Txn.t;
    }

(* Stable wire tags, one per constructor. [all_tags] is the authoritative
   enumeration the wire-table lint checks its hand-maintained
   producer/handler table against: adding a constructor without extending
   the table (or vice versa) is a finding, not a silent drift. *)
let tag = function
  | Client_txn _ -> "client-txn"
  | Forward _ -> "forward"
  | Ack _ -> "ack"
  | Reply _ -> "reply"
  | Heartbeat _ -> "heartbeat"
  | Elect _ -> "elect"
  | Catchup _ -> "catchup"
  | Snapshot _ -> "snapshot"
  | Recovered _ -> "recovered"
  | Snapshot_req _ -> "snapshot-req"
  | Vote _ -> "vote"

let all_tags =
  [
    "client-txn";
    "forward";
    "ack";
    "reply";
    "heartbeat";
    "elect";
    "catchup";
    "snapshot";
    "recovered";
    "snapshot-req";
    "vote";
  ]

let row_bytes row =
  Array.fold_left (fun a v -> a + Storage.Value.serialized_size v) 8 row

let size = function
  | Client_txn t -> Txn.size t
  | Forward { txn; _ } -> 16 + Txn.size txn
  | Ack _ -> 24
  | Reply r -> Txn.reply_size r
  | Heartbeat _ -> 16
  | Elect _ -> 24
  | Catchup { txns; _ } ->
      24 + List.fold_left (fun a (_, t) -> a + 8 + Txn.size t) 0 txns
  | Snapshot { rows; _ } ->
      32 + List.fold_left (fun a (_, r) -> a + row_bytes r) 0 rows
  | Recovered _ -> 16
  | Snapshot_req _ -> 24
  | Vote { participants; vote; vtxn; _ } ->
      16
      + (8 * List.length participants)
      + Txn.reply_size vote + Txn.size vtxn
