(** Database-replication messages exchanged by ShadowDB replicas and
    clients (both PBR and SMR variants). *)

type loc = int

type t =
  | Client_txn of Txn.t  (** Client → primary (PBR) — forwarded if misrouted. *)
  | Forward of { cfg : int; gseq : int; txn : Txn.t }
      (** Primary → backups: execute this transaction as global number
          [gseq] in configuration [cfg]. *)
  | Ack of { cfg : int; gseq : int }  (** Backup → primary. *)
  | Reply of Txn.reply  (** Replica → client. *)
  | Heartbeat of { cfg : int }
  | Elect of { cfg : int; last_seq : int }
      (** New-configuration election: sender's last executed global
          sequence number (paper step 3: the largest wins, ties to the
          smallest identifier). *)
  | Catchup of { cfg : int; txns : (int * Txn.t) list; upto : int }
      (** Primary → backup: replay these cached transactions, bringing the
          backup to [upto]. *)
  | Snapshot of {
      cfg : int;
      rows : (string * Storage.Value.t array) list;
      upto : int;
      last : bool;
      clients : Txn.reply list;
          (** On the last chunk: each client's latest reply, so the new
              replica answers retried duplicates without re-execution. *)
    }
      (** One ≈50 kB chunk of a full-database state transfer. *)
  | Recovered of { cfg : int }  (** Backup → primary: caught up. *)
  | Snapshot_req of { cfg : int; from_seq : int }
      (** SMR: activated spare → reconfiguration proposer. *)
  | Vote of {
      shard : int;
      participants : int list;
      vote : Txn.reply;
      vtxn : Txn.t;
    }
      (** Sharded 2PC, replica → coordinator: this shard's vote on the
          cross-shard transaction identified by [(vote.client,
          vote.seq)]. [Ok rows] is a yes-vote carrying the trial
          result; [Error _] a no-vote. [vtxn] is the shard's
          sub-transaction, so a restarted coordinator rebuilds its
          pending state entirely from resent votes. *)

val size : t -> int
(** Wire-size estimate for the network model. *)

val tag : t -> string
(** Stable wire tag, one per constructor. *)

val all_tags : string list
(** Every constructor's tag — the enumeration the wire-table lint keys
    on. *)
