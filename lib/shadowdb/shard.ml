(* Deterministic keyspace partitioning and transaction routing for
   sharded ShadowDB.

   A shard is an independent replica group running its own total-order
   broadcast instance. The partition function maps every (table, row id)
   key to exactly one shard; the router classifies a transaction as
   single-shard (forwarded straight into that shard's TOB) or
   distributed (split into per-shard sub-transactions committed with
   2PC-over-TOB). Both the partition function and the entry-id scheme
   are pure so that routing decisions and broadcast dedup survive
   crashes and re-encoding unchanged. *)

type key = { table : string; id : int }

(* FNV-1a over the table name, then fold in the row id with the FNV
   prime. Stable across runs and processes — never use a randomized
   hash here, routing must be a pure function of the key. The offset
   basis is the 64-bit FNV basis with the sign bit cleared so the
   literal fits OCaml's 63-bit int. *)
let fnv_prime = 0x100000001b3
let fnv_offset = 0x4bf29ce484222325

let hash_key k =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime)
    k.table;
  h := (!h lxor (k.id land 0xff)) * fnv_prime;
  h := (!h lxor ((k.id lsr 8) land 0xff)) * fnv_prime;
  h := (!h lxor ((k.id lsr 16) land 0xff)) * fnv_prime;
  h := (!h lxor ((k.id lsr 24) land 0xff)) * fnv_prime;
  !h land max_int

let shard_of_key ~shards k =
  if shards <= 0 then Sim.Invariant.fail "shard" "shard_of_key: shards <= 0 (%d)" shards;
  hash_key k mod shards

type router = {
  shards : int;
  keys_of : Txn.t -> key list;
      (* every key the transaction may read or write *)
  split : Txn.t -> (int * Txn.t) list;
      (* per-shard sub-transactions, workload-specific *)
}

type route = Local of int | Distributed of (int * Txn.t) list

let route r txn =
  match r.keys_of txn with
  | [] -> Local 0
  | k0 :: rest ->
      let s0 = shard_of_key ~shards:r.shards k0 in
      if List.for_all (fun k -> shard_of_key ~shards:r.shards k = s0) rest
      then Local s0
      else (
        let parts =
          List.sort (fun (a, _) (b, _) -> compare a b) (r.split txn)
        in
        match parts with
        | [] -> Local s0
        | [ (s, sub) ] -> Local (ignore sub; s)
        | _ -> Distributed parts)

(* Broadcast entry ids for 2PC records. Each (client, seq) transaction
   id yields one prepare and one decision entry per participant shard;
   the id must be injective over (phase, client, seq, shard) and stable
   across coordinator restarts so the TOB layer's (origin, id) dedup
   absorbs re-broadcasts. Layout (LSB first): phase bit, 7-bit shard,
   20-bit seq, then client. *)
let entry_id ~phase ~client ~seq ~shard =
  if shard < 0 || shard > 0x7f then
    Sim.Invariant.fail "shard" "entry_id: shard %d outside [0, 0x7f]" shard;
  let phase_bit = match phase with `Prepare -> 0 | `Decision -> 1 in
  let hi = (client lsl 20) lor (seq land 0xFFFFF) in
  (hi lsl 8) lor (shard lsl 1) lor phase_bit
