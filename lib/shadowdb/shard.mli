(** Deterministic keyspace partitioning and transaction routing for
    sharded ShadowDB.

    Each shard is an independent replica group with its own total-order
    broadcast instance. Single-shard transactions go straight into the
    owning shard's TOB; cross-shard transactions are split into
    per-shard sub-transactions and committed with 2PC whose prepare and
    decision records are totally ordered within each participant
    shard's own TOB. *)

type key = { table : string; id : int }
(** A partitionable datum: one row of one table. *)

val hash_key : key -> int
(** Pure FNV-1a hash of the key — stable across runs, processes, and
    re-encodings (never seeded). *)

val shard_of_key : shards:int -> key -> int
(** The owning shard, in [0, shards). Total and deterministic: every
    key maps to exactly one shard. Raises [Invalid_argument] if
    [shards <= 0]. *)

type router = {
  shards : int;
  keys_of : Txn.t -> key list;
      (** Every key the transaction may touch; empty means
          shard-agnostic (routed to shard 0). *)
  split : Txn.t -> (int * Txn.t) list;
      (** Decompose a cross-shard transaction into per-shard
          sub-transactions. Workload-specific; only consulted when
          [keys_of] spans more than one shard. *)
}

type route =
  | Local of int  (** All keys on one shard: forward into its TOB. *)
  | Distributed of (int * Txn.t) list
      (** Cross-shard: per-shard sub-transactions, sorted by shard
          index, at least two parts. *)

val route : router -> Txn.t -> route
(** Classify a transaction. A [split] that collapses to one part (or
    none) degrades to [Local]. *)

val entry_id : phase:[ `Prepare | `Decision ] -> client:int -> seq:int -> shard:int -> int
(** Stable injective broadcast-entry id for a 2PC record, so a
    restarted coordinator's re-broadcasts dedup at the TOB layer
    instead of double-delivering. Injective over
    [(phase, client, seq land 0xFFFFF, shard)]; [shard] must fit in
    7 bits. *)
