(* ShadowDB: replicated databases over a verified total-order broadcast.

   [Make] is parameterized by the consensus core of the broadcast service
   (Paxos in the paper's evaluation; TwoThird also works). It provides the
   two replication protocols of Sec. III:

   - PBR (primary-backup): a hand-coded normal case — the primary
     executes, forwards to the backups, waits for all acknowledgements and
     answers the client — with TOB-ordered reconfiguration, election by
     largest executed sequence number, and transaction-cache or
     full-snapshot state transfer.

   - SMR (state-machine replication): clients broadcast transactions
     through the TOB; every active replica executes in delivery order and
     answers; the client keeps the first answer. Each replica co-hosts its
     broadcast-service member (the paper co-locates databases with the
     Paxos processes, and the shared CPU is what caps SMR throughput in
     Fig. 9(a)). *)

module R = Runtime
module Database = Storage.Database
module Value = Storage.Value
module Tob = Broadcast.Tob

type loc = int

let tob_payload_txn txn = "T" ^ Codec.encode_txn txn

let tob_payload_reconfig cfg ~last_seq ~proposer =
  "R" ^ Codec.encode_reconfig cfg ~last_seq ~proposer

type decoded_payload =
  | P_txn of Txn.t
  | P_reconfig of Config.t * int * loc
  | P_bytes of string

let decode_payload s =
  if s = "" then P_bytes s
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'T' -> (
        match Codec.decode_txn body with
        | Ok t -> P_txn t
        | Error _ -> P_bytes s)
    | 'R' -> (
        match Codec.decode_reconfig body with
        | Ok (c, ls, pr) -> P_reconfig (c, ls, pr)
        | Error _ -> P_bytes s)
    | _ -> P_bytes s

type tuning = {
  hb_interval : float;
  detect_timeout : float;
  cache_cap : int;
  chunk_rows : int;
  exec_overhead : float;  (* fixed CPU per transaction besides DB work *)
  fwd_overhead : float;  (* primary-side per-backup forward/ack handling *)
}

let default_tuning =
  {
    hb_interval = 1.0;
    detect_timeout = 10.0;
    cache_cap = 20_000;
    chunk_rows = 700;
    exec_overhead = 2.0e-5;
    fwd_overhead = 4.5e-5;
  }

module Make (C : Consensus.Consensus_intf.S) = struct
  module Shell = Broadcast.Shell.Make (C)
  module TM = Shell.T

  type wire = Svc of TM.msg | Note of Tob.deliver | Db of Db_msg.t

  let send_db ctx dst m = R.send ctx ~size:(Db_msg.size m) dst (Db m)

  (* Wire format for the whole system: broadcast-service traffic, delivery
     notifications and database replication messages share one socket per
     link on the live runtime. [enc_core]/[dec_core] serialize the
     consensus core's protocol messages — for Paxos over TOB batches use
     {!Codec.encode_core_paxos} / {!Codec.decode_core_paxos}. *)
  let wire_codec ~enc_core ~dec_core : wire R.codec =
    let enc = function
      | Svc (TM.Broadcast e) -> "B" ^ Codec.encode_entry e
      | Svc (TM.Core m) -> "C" ^ enc_core m
      | Note d -> "N" ^ Codec.encode_deliver d
      | Db m -> "D" ^ Codec.encode_db_msg m
    in
    let dec s =
      if s = "" then Error "empty wire message"
      else
        let body = String.sub s 1 (String.length s - 1) in
        match s.[0] with
        | 'B' -> (
            match Codec.decode_entry body with
            | Ok (e, "") -> Ok (Svc (TM.Broadcast e))
            | Ok _ -> Error "trailing bytes after entry"
            | Error e -> Error e)
        | 'C' -> Result.map (fun m -> Svc (TM.Core m)) (dec_core body)
        | 'N' -> Result.map (fun d -> Note d) (Codec.decode_deliver body)
        | 'D' -> Result.map (fun m -> Db m) (Codec.decode_db_msg body)
        | c -> Error (Printf.sprintf "bad wire tag %C" c)
    in
    { R.enc; dec }

  (* Replica registries back the [*_of] observers of a cluster handle.
     Node handlers fill them in — from runtime threads, on the live
     runtime — while the spawning thread reads them, so access is
     serialized by a mutex. *)
  module Registry = struct
    type 'a t = { mu : Mutex.t; tbl : (loc, 'a) Hashtbl.t }

    let create () = { mu = Mutex.create (); tbl = Hashtbl.create 8 }

    let set t l r =
      Mutex.lock t.mu;
      Hashtbl.replace t.tbl l r;
      Mutex.unlock t.mu

    let view t l f ~default =
      Mutex.lock t.mu;
      let v =
        match Hashtbl.find_opt t.tbl l with Some r -> f r | None -> default
      in
      Mutex.unlock t.mu;
      v
  end

  (* Bounded cache of recently executed transactions (for catch-up). *)
  module Cache = struct
    type t = { cap : int; mutable items : (int * Txn.t) list (* newest first *) }

    let create cap = { cap; items = [] }

    let push t gseq txn =
      t.items <- (gseq, txn) :: t.items;
      if List.length t.items > t.cap then
        t.items <- List.filteri (fun i _ -> i < t.cap) t.items

    (* Transactions with global number in (from, upto], oldest first;
       [None] if the cache no longer spans that range. *)
    let range t ~from ~upto =
      let hits =
        List.filter (fun (g, _) -> g > from && g <= upto) t.items
      in
      if List.length hits = upto - from then
        Some (List.sort (fun (a, _) (b, _) -> compare a b) hits)
      else None
  end

  (* ------------------------------------------------------------------ *)
  (* Primary-backup replication                                          *)
  (* ------------------------------------------------------------------ *)

  type pbr_cluster = {
    pbr_replicas : loc list;  (* actives first, then spares *)
    pbr_tob : loc list;
    pbr_initial_primary : loc;
    pbr_primary_of : loc -> loc;  (* current primary, per replica view *)
    pbr_cfg_of : loc -> int;  (* configuration seqno, per replica view *)
    pbr_gseq_of : loc -> int;
    pbr_hash_of : loc -> int;  (* database content hash (tests) *)
  }

  type replication_style = Primary_backup | Chain

  type pbr_replica = {
    style : replication_style;
    read_kinds : string list;
        (* Chain: transaction kinds served read-only at the tail *)
    p_self : loc;
    p_all : loc list;  (* every replica incl. spares, deployment order *)
    p_tob : loc list;
    db : Database.t;
    reg : Txn.registry;
    tun : tuning;
    mutable cfg : Config.t;
    mutable primary : loc;
    mutable running : bool;
    mutable gseq : int;
    cache : Cache.t;
    client_tbl : (loc, Txn.reply) Hashtbl.t;  (* latest reply per client *)
    pending : (int, Txn.t * Sim.Node_id.Set.t ref) Hashtbl.t;
    last_hb : (loc, float) Hashtbl.t;
    mutable elect_votes : (loc * int) list;
    mutable elected : bool;  (* election resolved for current cfg *)
    mutable awaiting_recovered : Sim.Node_id.Set.t;
    mutable recovered_set : Sim.Node_id.Set.t;
        (* primary-side: members known up to date; transactions wait only
           for acknowledgments from these (the paper's overlapped state
           transfer: normal processing resumes once at least one backup
           caught up, snapshots stream to the rest in parallel) *)
    mutable snapshot_started : bool;  (* backup-side: receiving chunks *)
    mutable fwd_buffer : (int * Txn.t) list;
        (* backup-side: forwards arriving while a snapshot installs *)
    mutable tob_seq : int;  (* ids for our TOB broadcasts *)
    mutable proposed_at : float;  (* last reconfig proposal time *)
  }

  let backups r = List.filter (fun m -> m <> r.primary) r.cfg.Config.members

  let chain_head r = match r.cfg.Config.members with m :: _ -> m | [] -> r.p_self

  let chain_tail r =
    match List.rev r.cfg.Config.members with m :: _ -> m | [] -> r.p_self

  let chain_successor r =
    let rec go = function
      | a :: b :: _ when a = r.p_self -> Some b
      | _ :: rest -> go rest
      | [] -> None
    in
    go r.cfg.Config.members

  let in_cfg r = Config.contains r.cfg r.p_self

  let charge_db ctx r = R.charge ctx (Database.take_cost r.db)

  let exec_and_record ctx r txn =
    let reply = Txn.execute r.reg r.db txn in
    R.charge ctx r.tun.exec_overhead;
    charge_db ctx r;
    r.gseq <- r.gseq + 1;
    Cache.push r.cache r.gseq txn;
    Hashtbl.replace r.client_tbl txn.Txn.client reply;
    reply

  let reset_hb ctx r =
    List.iter
      (fun m -> Hashtbl.replace r.last_hb m (R.time ctx))
      r.cfg.Config.members

  (* Paper Sec. III-A, recovery steps 1–2: stop, propose a new
     configuration through the broadcast service. *)
  let propose_reconfig ctx r suspects =
    r.running <- false;
    r.proposed_at <- R.time ctx;
    let spares =
      List.filter (fun m -> not (Config.contains r.cfg m)) r.p_all
    in
    let add = List.filteri (fun i _ -> i < List.length suspects) spares in
    let proposal = Config.next r.cfg ~remove:suspects ~add in
    r.tob_seq <- r.tob_seq + 1;
    let payload =
      tob_payload_reconfig proposal ~last_seq:r.gseq ~proposer:r.p_self
    in
    let entry =
      { Tob.origin = r.p_self; id = r.tob_seq; payload }
    in
    let tob_contact =
      Sim.Invariant.head ~layer:"pbr"
        ~what:
          (Printf.sprintf "replica %d proposing reconfiguration: TOB members"
             r.p_self)
        r.p_tob
    in
    R.send ctx ~size:(String.length payload + 24) tob_contact
      (Svc (TM.Broadcast entry))

  (* Step 3: adopt the first proposal for the successor configuration and
     start the election. *)
  let adopt_config ctx r proposal =
    r.cfg <- proposal;
    r.running <- false;
    r.elected <- false;
    r.elect_votes <- [];
    r.awaiting_recovered <- Sim.Node_id.Set.empty;
    r.recovered_set <- Sim.Node_id.Set.empty;
    r.snapshot_started <- false;
    r.fwd_buffer <- [];
    Hashtbl.reset r.pending;
    reset_hb ctx r;
    if in_cfg r then begin
      let msg = Db_msg.Elect { cfg = proposal.Config.seq; last_seq = r.gseq } in
      List.iter
        (fun m ->
          if m = r.p_self then
            r.elect_votes <- (r.p_self, r.gseq) :: r.elect_votes
          else send_db ctx m msg)
        proposal.Config.members
    end

  let snapshot_chunks r ~upto =
    let rows = Database.dump r.db in
    let clients = Hashtbl.fold (fun _ reply acc -> reply :: acc) r.client_tbl [] in
    let rec chunk rows acc =
      match rows with
      | [] -> List.rev acc
      | _ ->
          let n = min r.tun.chunk_rows (List.length rows) in
          let head = List.filteri (fun i _ -> i < n) rows in
          let tail = List.filteri (fun i _ -> i >= n) rows in
          chunk tail (head :: acc)
    in
    let chunks = chunk rows [] in
    let total = List.length chunks in
    List.mapi
      (fun i rows ->
        let last = i = total - 1 in
        Db_msg.Snapshot
          {
            cfg = r.cfg.Config.seq;
            rows;
            upto;
            last;
            clients = (if last then clients else []);
          })
      chunks

  (* Steps 4–5: the member with the largest sequence number becomes
     primary (ties to the smallest identifier) and brings the others up
     to date from its cache, or with a full snapshot. *)
  let conclude_election ctx r =
    let best =
      List.fold_left
        (fun (bl, bs) (l, s) ->
          if s > bs || (s = bs && l < bl) then (l, s) else (bl, bs))
        (max_int, min_int) r.elect_votes
    in
    let primary = fst best in
    r.primary <- primary;
    r.elected <- true;
    if r.p_self = primary then begin
      let others = backups r in
      r.recovered_set <- Sim.Node_id.Set.singleton r.p_self;
      (* Every backup voted (the election only concludes on a full vote
         set), so a missing vote here is a broken internal contract. *)
      let vote_of b =
        Sim.Invariant.assoc ~layer:"pbr"
          ~what:
            (Printf.sprintf "primary %d concluding election: vote of %d"
               r.p_self b)
          b r.elect_votes
      in
      let fast, slow =
        List.partition
          (fun b -> Cache.range r.cache ~from:(vote_of b) ~upto:r.gseq <> None)
          others
      in
      (* The paper's overlapped state transfer: wait only for the backups
         that can catch up from the cache; backups needing a full snapshot
         recover in parallel while normal processing resumes (they are
         added to the acknowledgment set when their Recovered arrives). *)
      r.awaiting_recovered <-
        Sim.Node_id.Set.of_list (if fast = [] then others else fast);
      if others = [] then r.running <- true
      else begin
        List.iter
          (fun b ->
            match Cache.range r.cache ~from:(vote_of b) ~upto:r.gseq with
            | Some txns ->
                send_db ctx b
                  (Db_msg.Catchup
                     { cfg = r.cfg.Config.seq; txns; upto = r.gseq })
            | None ->
                charge_db ctx r;
                List.iter (send_db ctx b) (snapshot_chunks r ~upto:r.gseq))
          others;
        ignore slow
      end
    end

  let handle_elect ctx r ~src ~cfg ~last_seq =
    if cfg = r.cfg.Config.seq && in_cfg r && not r.elected then begin
      if not (List.mem_assoc src r.elect_votes) then
        r.elect_votes <- (src, last_seq) :: r.elect_votes;
      if List.length r.elect_votes = List.length r.cfg.Config.members then
        conclude_election ctx r
    end

  (* Step 6–7: backups acknowledge recovery; the primary resumes. *)
  let handle_recovered r ~src ~cfg =
    if cfg = r.cfg.Config.seq && r.p_self = r.primary then begin
      r.awaiting_recovered <- Sim.Node_id.Set.remove src r.awaiting_recovered;
      r.recovered_set <- Sim.Node_id.Set.add src r.recovered_set;
      if Sim.Node_id.Set.is_empty r.awaiting_recovered then r.running <- true
    end

  let handle_catchup ctx r ~src ~cfg ~txns ~upto =
    if cfg = r.cfg.Config.seq && in_cfg r then begin
      (* The sender is the elected primary (we may have missed votes). *)
      r.primary <- src;
      r.elected <- true;
      List.iter
        (fun (g, txn) ->
          if g > r.gseq then begin
            let reply = Txn.execute r.reg r.db txn in
            R.charge ctx r.tun.exec_overhead;
            charge_db ctx r;
            r.gseq <- g;
            Cache.push r.cache g txn;
            Hashtbl.replace r.client_tbl txn.Txn.client reply
          end)
        txns;
      r.gseq <- max r.gseq upto;
      r.running <- true;
      send_db ctx r.primary (Db_msg.Recovered { cfg })
    end

  let handle_forward ctx r ~cfg ~gseq ~txn =
    if r.style = Chain then begin
      if cfg = r.cfg.Config.seq && in_cfg r then
        if gseq = r.gseq + 1 then begin
          let reply = exec_and_record ctx r txn in
          match chain_successor r with
          | Some next ->
              R.charge ctx r.tun.fwd_overhead;
              send_db ctx next (Db_msg.Forward { cfg; gseq = r.gseq; txn })
          | None ->
              (* Tail: this transaction has now executed at every replica;
                 answer the client. *)
              send_db ctx txn.Txn.client (Db_msg.Reply reply)
        end
        else if gseq > r.gseq + 1 then
          r.fwd_buffer <- (gseq, txn) :: r.fwd_buffer
    end
    else if
      (* Backups only accept transactions tagged with their configuration
         (paper Sec. III-A). *)
      cfg = r.cfg.Config.seq && in_cfg r && r.p_self <> r.primary
    then
      if gseq = r.gseq + 1 then begin
        ignore (exec_and_record ctx r txn);
        send_db ctx r.primary (Db_msg.Ack { cfg; gseq })
      end
      else if gseq <= r.gseq then
        (* Duplicate (already executed): just re-acknowledge. *)
        send_db ctx r.primary (Db_msg.Ack { cfg; gseq })
      else
        (* Ahead of us: normal processing resumed while our snapshot is
           still installing — buffer and replay once it lands. *)
        r.fwd_buffer <- (gseq, txn) :: r.fwd_buffer

  let drain_fwd_buffer ctx r =
    let buffered = List.sort compare (List.rev r.fwd_buffer) in
    r.fwd_buffer <- [];
    List.iter (fun (gseq, txn) -> handle_forward ctx r ~cfg:r.cfg.Config.seq ~gseq ~txn) buffered

  let handle_snapshot ctx r ~src ~cfg ~rows ~upto ~last ~clients =
    if cfg = r.cfg.Config.seq && in_cfg r then begin
      r.primary <- src;
      r.elected <- true;
      if not r.snapshot_started then begin
        r.snapshot_started <- true;
        Database.clear_data r.db;
        Hashtbl.reset r.client_tbl
      end;
      (match Database.load_rows r.db rows with Ok () | Error _ -> ());
      charge_db ctx r;
      if last then begin
        List.iter
          (fun (reply : Txn.reply) ->
            Hashtbl.replace r.client_tbl reply.Txn.client reply)
          clients;
        r.gseq <- upto;
        r.snapshot_started <- false;
        r.running <- true;
        send_db ctx r.primary (Db_msg.Recovered { cfg });
        drain_fwd_buffer ctx r
      end
    end

  (* Chain replication (van Renesse & Schneider), the other classic
     protocol the paper's broadcast service supports: updates enter at the
     head, flow down the chain, and the tail answers — its reply proves
     every replica executed. Read-only transactions are served directly by
     the tail. *)
  let handle_chain_client_txn ctx r txn =
    if not (r.running && in_cfg r) then ()
    else if List.mem txn.Txn.kind r.read_kinds then
      if r.p_self = chain_tail r then begin
        match Hashtbl.find_opt r.client_tbl txn.Txn.client with
        | Some old when old.Txn.seq = txn.Txn.seq ->
            send_db ctx txn.Txn.client (Db_msg.Reply old)
        | Some old when old.Txn.seq > txn.Txn.seq -> ()
        | Some _ | None ->
            (* Reads execute at the tail only; they do not advance the
               chain's update sequence. *)
            let reply = Txn.execute r.reg r.db txn in
            R.charge ctx (r.tun.exec_overhead +. Database.take_cost r.db);
            Hashtbl.replace r.client_tbl txn.Txn.client reply;
            send_db ctx txn.Txn.client (Db_msg.Reply reply)
      end
      else send_db ctx (chain_tail r) (Db_msg.Client_txn txn)
    else if r.p_self = chain_head r then begin
      match Hashtbl.find_opt r.client_tbl txn.Txn.client with
      | Some old when old.Txn.seq = txn.Txn.seq ->
          send_db ctx txn.Txn.client (Db_msg.Reply old)
      | Some old when old.Txn.seq > txn.Txn.seq -> ()
      | Some _ | None -> (
          let reply = exec_and_record ctx r txn in
          match chain_successor r with
          | Some next ->
              R.charge ctx r.tun.fwd_overhead;
              send_db ctx next
                (Db_msg.Forward { cfg = r.cfg.Config.seq; gseq = r.gseq; txn })
          | None -> send_db ctx txn.Txn.client (Db_msg.Reply reply))
    end
    else send_db ctx (chain_head r) (Db_msg.Client_txn txn)

  let handle_client_txn ctx r txn =
    if r.style = Chain then handle_chain_client_txn ctx r txn
    else if not (r.running && in_cfg r) then ()
    else if r.p_self <> r.primary then
      (* Misrouted: pass it on (the reply goes straight to the client). *)
      send_db ctx r.primary (Db_msg.Client_txn txn)
    else begin
      match Hashtbl.find_opt r.client_tbl txn.Txn.client with
      | Some old when old.Txn.seq = txn.Txn.seq ->
          send_db ctx txn.Txn.client (Db_msg.Reply old)
      | Some old when old.Txn.seq > txn.Txn.seq -> ()
      | Some _ | None ->
          let reply = exec_and_record ctx r txn in
          let bs = backups r in
          (* Forward to every backup, but wait only for the recovered ones
             (a snapshotting backup buffers and acknowledges later). *)
          let awaited =
            if Sim.Node_id.Set.is_empty r.recovered_set then bs
            else List.filter (fun b -> Sim.Node_id.Set.mem b r.recovered_set) bs
          in
          if awaited = [] && bs = [] then
            send_db ctx txn.Txn.client (Db_msg.Reply reply)
          else begin
            Hashtbl.replace r.pending r.gseq
              ( txn,
                ref (Sim.Node_id.Set.of_list (if awaited = [] then bs else awaited)) );
            let fwd =
              Db_msg.Forward { cfg = r.cfg.Config.seq; gseq = r.gseq; txn }
            in
            List.iter
              (fun b ->
                R.charge ctx r.tun.fwd_overhead;
                send_db ctx b fwd)
              bs
          end
    end

  let handle_ack ctx r ~cfg ~gseq ~src =
    if cfg = r.cfg.Config.seq && r.p_self = r.primary then
      match Hashtbl.find_opt r.pending gseq with
      | None -> ()
      | Some (txn, missing) ->
          missing := Sim.Node_id.Set.remove src !missing;
          R.charge ctx (r.tun.fwd_overhead /. 2.0);
          if Sim.Node_id.Set.is_empty !missing then begin
            Hashtbl.remove r.pending gseq;
            match Hashtbl.find_opt r.client_tbl txn.Txn.client with
            | Some reply when reply.Txn.seq = txn.Txn.seq ->
                send_db ctx txn.Txn.client (Db_msg.Reply reply)
            | Some _ | None -> ()
          end

  let check_suspicion ctx r =
    if in_cfg r then begin
      let now = R.time ctx in
      let suspects =
        List.filter
          (fun m ->
            m <> r.p_self
            &&
            match Hashtbl.find_opt r.last_hb m with
            | Some t -> now -. t > r.tun.detect_timeout
            | None -> false)
          r.cfg.Config.members
      in
      (* Re-propose at most once per detection interval while the
         suspicion persists (the first delivered proposal wins). *)
      if suspects <> [] && now -. r.proposed_at > r.tun.detect_timeout /. 2.0
      then propose_reconfig ctx r suspects
    end

  let handle_note ctx r (d : Tob.deliver) =
    match decode_payload d.Tob.entry.Tob.payload with
    | P_reconfig (proposal, _, _) ->
        if proposal.Config.seq = r.cfg.Config.seq + 1 then
          adopt_config ctx r proposal
    | P_txn _ | P_bytes _ -> ()

  let pbr_replica_handler ~style ~read_kinds ~shared ~all_ref ~tob_ref
      ~backend ~setup ~registry ~tun ~initial_members () =
    let r_holder = ref None in
    let get ctx =
      match !r_holder with
      | Some r -> r
      | None ->
          let self = R.self ctx in
          let db = Database.create backend in
          setup db;
          ignore (Database.take_cost db);
          let members = initial_members () in
          let r =
            {
              style;
              read_kinds;
              p_self = self;
              p_all = !all_ref;
              p_tob = !tob_ref;
              db;
              reg = registry ();
              tun;
              cfg = Config.initial members;
              primary = List.fold_left min max_int members;
              running = Config.contains (Config.initial members) self;
              gseq = 0;
              cache = Cache.create tun.cache_cap;
              client_tbl = Hashtbl.create 64;
              pending = Hashtbl.create 64;
              last_hb = Hashtbl.create 8;
              elect_votes = [];
              elected = true;
              awaiting_recovered = Sim.Node_id.Set.empty;
              recovered_set = Sim.Node_id.Set.empty;
              snapshot_started = false;
              fwd_buffer = [];
              tob_seq = 0;
              proposed_at = -1.0e9;
            }
          in
          reset_hb ctx r;
          Registry.set shared self r;
          r_holder := Some r;
          r
    in
    fun ctx input ->
      let r = get ctx in
      match input with
      | R.Init ->
          ignore (R.set_timer ctx r.tun.hb_interval "hb");
          ignore (R.set_timer ctx (r.tun.detect_timeout /. 4.0) "detect")
      | R.Timer { tag = "hb"; _ } ->
          if in_cfg r then begin
            let hb = Db_msg.Heartbeat { cfg = r.cfg.Config.seq } in
            List.iter
              (fun m -> if m <> r.p_self then send_db ctx m hb)
              r.cfg.Config.members
          end;
          ignore (R.set_timer ctx r.tun.hb_interval "hb")
      | R.Timer { tag = "detect"; _ } ->
          check_suspicion ctx r;
          (* Re-send election votes until the election concludes: a vote
             sent before a peer adopted the configuration is lost. *)
          if in_cfg r && not r.elected then begin
            let msg =
              Db_msg.Elect { cfg = r.cfg.Config.seq; last_seq = r.gseq }
            in
            List.iter
              (fun m -> if m <> r.p_self then send_db ctx m msg)
              r.cfg.Config.members
          end;
          ignore (R.set_timer ctx (r.tun.detect_timeout /. 4.0) "detect")
      | R.Timer _ -> ()
      | R.Recv { src; msg } -> (
          match msg with
          | Note d -> handle_note ctx r d
          | Svc _ -> ()
          | Db m -> (
              match m with
              | Db_msg.Client_txn txn -> handle_client_txn ctx r txn
              | Db_msg.Forward { cfg; gseq; txn } ->
                  handle_forward ctx r ~cfg ~gseq ~txn
              | Db_msg.Ack { cfg; gseq } -> handle_ack ctx r ~cfg ~gseq ~src
              | Db_msg.Reply _ -> ()
              | Db_msg.Heartbeat _ ->
                  Hashtbl.replace r.last_hb src (R.time ctx)
              | Db_msg.Elect { cfg; last_seq } ->
                  handle_elect ctx r ~src ~cfg ~last_seq
              | Db_msg.Catchup { cfg; txns; upto } ->
                  handle_catchup ctx r ~src ~cfg ~txns ~upto
              | Db_msg.Snapshot { cfg; rows; upto; last; clients } ->
                  handle_snapshot ctx r ~src ~cfg ~rows ~upto ~last ~clients
              | Db_msg.Recovered { cfg } -> handle_recovered r ~src ~cfg
              | Db_msg.Snapshot_req _ -> ()))

  let spawn_pbr ?(style = Primary_backup) ?(read_kinds = [])
      ?(tun = default_tuning) ?(backends : Storage.Store.kind list option)
      ?(tob_profile = Gpm.Engine_profile.Interpreted_opt) ?tob_window ~world
      ~registry ~setup ~n_active ~n_spare () =
    let n = n_active + n_spare in
    let shared : pbr_replica Registry.t = Registry.create () in
    let all_ref = ref [] in
    let tob_ref = ref [] in
    let initial_members () = List.filteri (fun i _ -> i < n_active) !all_ref in
    let backend_of i =
      match backends with
      | None -> Storage.Store.Hazel
      | Some bs -> List.nth bs (i mod List.length bs)
    in
    let replicas =
      List.init n (fun i ->
          R.spawn world
            ~name:(Printf.sprintf "pbr%d" i)
            (pbr_replica_handler ~style ~read_kinds ~shared ~all_ref ~tob_ref
               ~backend:(backend_of i) ~setup ~registry ~tun ~initial_members))
    in
    all_ref := replicas;
    let tob =
      Shell.spawn ~profile:tob_profile ?window:tob_window ~world
        ~inj:(fun m -> Svc m)
        ~prj:(function Svc m -> Some m | Note _ | Db _ -> None)
        ~inj_notify:(fun d -> Note d)
        ~n:3
        ~subscribers:(fun () -> replicas)
        ()
    in
    tob_ref := tob;
    let view l f ~default = Registry.view shared l f ~default in
    {
      pbr_replicas = replicas;
      pbr_tob = tob;
      pbr_initial_primary = List.fold_left min max_int (initial_members ());
      pbr_primary_of = (fun l -> view l (fun r -> r.primary) ~default:(-1));
      pbr_cfg_of = (fun l -> view l (fun r -> r.cfg.Config.seq) ~default:(-1));
      pbr_gseq_of = (fun l -> view l (fun r -> r.gseq) ~default:0);
      pbr_hash_of =
        (fun l -> view l (fun r -> Database.content_hash r.db) ~default:0);
    }

  let spawn_chain ?read_kinds ?tun ?backends ?tob_profile ?tob_window ~world
      ~registry ~setup ~n_active ~n_spare () =
    spawn_pbr ~style:Chain ?read_kinds ?tun ?backends ?tob_profile ?tob_window
      ~world ~registry ~setup ~n_active ~n_spare ()

  (* ------------------------------------------------------------------ *)
  (* State machine replication                                           *)
  (* ------------------------------------------------------------------ *)

  type smr_role = Active | Sparing | Syncing

  (* Per-node durability hooks: [dur_backend i] supplies node [i]'s
     persistent backend (file-backed live, in-memory under the sim),
     [dur_policy i] its group-commit/snapshot cadence, and
     [dur_on_recover] observes the recovery report each time node [i]
     (re)initializes — the monitors and the chaos drill hang off it. *)
  type durability = {
    dur_backend : int -> Durable.Backend.t;
    dur_policy : int -> Durable.Manager.policy;
    dur_on_recover : int -> Durable.Manager.report -> state_hash:int -> unit;
  }

  type smr_replica = {
    s_self : loc;
    s_nodes : loc list;  (* the three co-located TOB/DB machines *)
    sdb : Database.t;
    sreg : Txn.registry;
    stun : tuning;
    costs : Broadcast.Shell.costs;
    mutable tob : TM.t;
    mutable scfg : Config.t;
    mutable role : smr_role;
    mutable sgseq : int;  (* delivered entries counted by every node *)
    mutable buffered : Txn.t list;  (* delivered while syncing, oldest first *)
    mutable pending_snapshot :
      ((string * Value.t array) list * int) option;
        (* proposer-side snapshot taken at reconfig delivery *)
    mutable snap_started : bool;
    mutable sync_proposer : loc option;
        (* who to (re-)request the snapshot from while Syncing *)
    s_last_hb : (loc, float) Hashtbl.t;
    mutable s_proposed_at : float;
    mutable s_tob_seq : int;
    sdur : Durable.Manager.t option;  (* write-ahead durability, if on *)
    mutable sdur_floor : int;
        (* highest TOB seqno already applied (recovered or live): a
           restarted broadcast member re-delivers the total order from
           where its peers re-learn it, so deliveries at or below the
           floor are duplicates of recovered state and must be skipped *)
  }

  type smr_cluster = {
    smr_nodes : loc list;
    smr_active_of : loc -> bool;
    smr_cfg_of : loc -> int;
    smr_gseq_of : loc -> int;
    smr_hash_of : loc -> int;
  }

  let smr_exec ctx r txn =
    let reply = Txn.execute r.sreg r.sdb txn in
    R.charge ctx (r.stun.exec_overhead +. Database.take_cost r.sdb);
    send_db ctx txn.Txn.client (Db_msg.Reply reply)

  let smr_adopt ctx r proposal ~proposer =
    r.scfg <- proposal;
    List.iter
      (fun m -> Hashtbl.replace r.s_last_hb m (R.time ctx))
      proposal.Config.members;
    let member = Config.contains proposal r.s_self in
    match (r.role, member) with
    | Active, true -> ()
    | Active, false ->
        r.role <- Sparing;
        r.buffered <- []
    | Sparing, true ->
        (* Activated: buffer subsequent transactions and fetch the
           snapshot corresponding to this point of the total order. *)
        r.role <- Syncing;
        r.buffered <- [];
        r.snap_started <- false;
        r.sync_proposer <- Some proposer;
        send_db ctx proposer
          (Db_msg.Snapshot_req { cfg = proposal.Config.seq; from_seq = r.sgseq })
    | Sparing, false -> ()
    | Syncing, true -> ()
    | Syncing, false ->
        r.role <- Sparing;
        r.buffered <- []

  (* One WAL record per applied transaction: [idx] is the TOB delivery
     seqno (the position in the total order), [aux] the replica's
     delivered-entry count, [hash] the state fingerprint after applying,
     [payload] the delivered entry's payload verbatim (so replay decodes
     it with the same codec as delivery). *)
  let smr_durable_record r (d : Tob.deliver) =
    {
      Durable.Wal.idx = d.Tob.seqno;
      aux = r.sgseq;
      hash = Database.content_hash r.sdb;
      payload = d.Tob.entry.Tob.payload;
    }

  let smr_durable_image ctx r =
    let rows = Database.dump r.sdb in
    R.charge ctx (Database.take_cost r.sdb);
    Codec.encode_rows rows

  let smr_deliver ctx r (d : Tob.deliver) =
    if r.sdur <> None && d.Tob.seqno <= r.sdur_floor then
      (* Duplicate of recovered state: a restarted broadcast member
         re-delivers entries the WAL already covers. Skip entirely — the
         recovered [sgseq] already counted them. *)
      ()
    else begin
      r.sdur_floor <- max r.sdur_floor d.Tob.seqno;
      R.charge ctx r.costs.Broadcast.Shell.per_entry;
      r.sgseq <- r.sgseq + 1;
      match decode_payload d.Tob.entry.Tob.payload with
      | P_txn txn -> (
          match r.role with
          | Active -> (
              smr_exec ctx r txn;
              match r.sdur with
              | None -> ()
              | Some mgr ->
                  Durable.Manager.append mgr (smr_durable_record r d);
                  Durable.Manager.maybe_snapshot mgr ~payload:(fun () ->
                      smr_durable_image ctx r))
          | Syncing -> r.buffered <- r.buffered @ [ txn ]
          | Sparing -> ())
      | P_reconfig (proposal, _, proposer) ->
          if proposal.Config.seq = r.scfg.Config.seq + 1 then begin
            (* The proposer snapshots its database at this exact point of
               the delivery order, so the spare can take over from here. *)
            if r.s_self = proposer && r.role = Active then begin
              r.pending_snapshot <- Some (Database.dump r.sdb, r.sgseq);
              R.charge ctx (Database.take_cost r.sdb)
            end;
            smr_adopt ctx r proposal ~proposer
          end
      | P_bytes _ -> ()
    end

  let smr_feed_tob ctx r (t, acts) =
    r.tob <- t;
    List.iter
      (function
        | TM.Send (dst, m) ->
            R.send ctx ~size:256 dst (Svc m)
        | TM.Notify (dst, d) ->
            if dst = r.s_self then smr_deliver ctx r d
            else R.send ctx dst (Note d)
        | TM.Set_timer delay -> ignore (R.set_timer ctx delay "tob"))
      acts

  let smr_broadcast ctx r payload =
    r.s_tob_seq <- r.s_tob_seq + 1;
    let entry = { Tob.origin = r.s_self; id = r.s_tob_seq; payload } in
    smr_feed_tob ctx r
      (TM.recv r.tob ~now:(R.time ctx) ~src:r.s_self (TM.Broadcast entry))

  let smr_check_suspicion ctx r =
    (* A syncing spare re-requests the snapshot until it arrives (the
       proposer may deliver the reconfiguration after we did). *)
    (match (r.role, r.sync_proposer) with
    | Syncing, Some proposer when not r.snap_started ->
        send_db ctx proposer
          (Db_msg.Snapshot_req { cfg = r.scfg.Config.seq; from_seq = r.sgseq })
    | _ -> ());
    if r.role = Active then begin
      let now = R.time ctx in
      let suspects =
        List.filter
          (fun m ->
            m <> r.s_self
            &&
            match Hashtbl.find_opt r.s_last_hb m with
            | Some t -> now -. t > r.stun.detect_timeout
            | None -> false)
          r.scfg.Config.members
      in
      if suspects <> [] && now -. r.s_proposed_at > r.stun.detect_timeout /. 2.0
      then begin
        r.s_proposed_at <- now;
        let spares =
          List.filter (fun m -> not (Config.contains r.scfg m)) r.s_nodes
        in
        let add = List.filteri (fun i _ -> i < List.length suspects) spares in
        let proposal = Config.next r.scfg ~remove:suspects ~add in
        smr_broadcast ctx r
          (tob_payload_reconfig proposal ~last_seq:r.sgseq ~proposer:r.s_self)
      end
    end

  let smr_handler ~shared ~nodes_ref ~backend ~setup ~registry ~tun
      ~costs ~tob_window ~n_active ~durable () =
    let holder = ref None in
    let get ctx =
      match !holder with
      | Some r -> r
      | None ->
          let self = R.self ctx in
          let db = Database.create backend in
          setup db;
          ignore (Database.take_cost db);
          let sreg = registry () in
          (* Deterministic recovery, run on the node's first event after
             every (re)start: install the latest valid snapshot, truncate
             any torn WAL tail, replay the remaining records through the
             normal transaction engine. A fresh node recovers from an
             empty backend to the initial state. *)
          let recovery =
            match durable with
            | None -> None
            | Some (i, dur) ->
                let install (w : Durable.Wal.record) =
                  match Codec.decode_rows w.Durable.Wal.payload with
                  | Ok rows -> (
                      Database.clear_data db;
                      match Database.load_rows db rows with
                      | Ok () -> ()
                      | Error e ->
                          Sim.Invariant.fail "durable"
                            "node %d: snapshot install failed: %s" i e)
                  | Error e ->
                      Sim.Invariant.fail "durable"
                        "node %d: snapshot payload undecodable: %s" i e
                in
                let apply (w : Durable.Wal.record) =
                  match decode_payload w.Durable.Wal.payload with
                  | P_txn txn -> ignore (Txn.execute sreg db txn)
                  | P_reconfig _ | P_bytes _ -> ()
                in
                let mgr, report =
                  Durable.Manager.recover (dur.dur_backend i)
                    (dur.dur_policy i) ~install ~apply
                in
                dur.dur_on_recover i report
                  ~state_hash:(Database.content_hash db);
                Some (mgr, report)
          in
          let nodes = !nodes_ref in
          let members = List.filteri (fun i _ -> i < n_active) nodes in
          let r =
            {
              s_self = self;
              s_nodes = nodes;
              sdb = db;
              sreg;
              stun = tun;
              costs;
              tob =
                TM.create ?window:tob_window ~self ~members:nodes
                  ~subscribers:[ self ] ();
              scfg = Config.initial members;
              role = (if List.mem self members then Active else Sparing);
              sgseq =
                (match recovery with
                | Some (_, rep) -> rep.Durable.Manager.recovered_aux
                | None -> 0);
              buffered = [];
              pending_snapshot = None;
              snap_started = false;
              sync_proposer = None;
              s_last_hb = Hashtbl.create 8;
              s_proposed_at = -1.0e9;
              s_tob_seq = 0;
              sdur = Option.map fst recovery;
              sdur_floor =
                (match recovery with
                | Some (_, rep) -> rep.Durable.Manager.recovered_idx
                | None -> -1);
            }
          in
          List.iter
            (fun m -> Hashtbl.replace r.s_last_hb m (R.time ctx))
            members;
          Registry.set shared self r;
          holder := Some r;
          r
    in
    fun ctx input ->
      let r = get ctx in
      match input with
      | R.Init ->
          smr_feed_tob ctx r (TM.start r.tob ~now:(R.time ctx));
          ignore (R.set_timer ctx r.stun.hb_interval "hb");
          ignore (R.set_timer ctx (r.stun.detect_timeout /. 4.0) "detect")
      | R.Timer { tag = "tob"; _ } ->
          smr_feed_tob ctx r (TM.tick r.tob ~now:(R.time ctx))
      | R.Timer { tag = "hb"; _ } ->
          if r.role = Active then begin
            let hb = Db_msg.Heartbeat { cfg = r.scfg.Config.seq } in
            List.iter
              (fun m -> if m <> r.s_self then send_db ctx m hb)
              r.scfg.Config.members
          end;
          ignore (R.set_timer ctx r.stun.hb_interval "hb")
      | R.Timer { tag = "detect"; _ } ->
          smr_check_suspicion ctx r;
          ignore (R.set_timer ctx (r.stun.detect_timeout /. 4.0) "detect")
      | R.Timer _ -> ()
      | R.Recv { src; msg } -> (
          match msg with
          | Svc m ->
              (match m with
              | TM.Broadcast _ ->
                  R.charge ctx r.costs.Broadcast.Shell.client_msg
              | TM.Core _ -> R.charge ctx r.costs.Broadcast.Shell.core_msg);
              smr_feed_tob ctx r (TM.recv r.tob ~now:(R.time ctx) ~src m)
          | Note d -> smr_deliver ctx r d
          | Db (Db_msg.Heartbeat _) ->
              Hashtbl.replace r.s_last_hb src (R.time ctx)
          | Db (Db_msg.Snapshot_req { cfg; _ }) -> (
              if cfg = r.scfg.Config.seq then
                match r.pending_snapshot with
                | None -> ()
                | Some (rows, upto) ->
                    let clients = [] in
                    let rec chunk rows =
                      let n = min r.stun.chunk_rows (List.length rows) in
                      let head = List.filteri (fun i _ -> i < n) rows in
                      let tail = List.filteri (fun i _ -> i >= n) rows in
                      let last = tail = [] in
                      send_db ctx src
                        (Db_msg.Snapshot
                           { cfg; rows = head; upto; last; clients });
                      if not last then chunk tail
                    in
                    if rows = [] then
                      send_db ctx src
                        (Db_msg.Snapshot { cfg; rows = []; upto; last = true; clients })
                    else chunk rows)
          | Db (Db_msg.Snapshot { cfg; rows; upto = _; last; clients = _ }) ->
              if cfg = r.scfg.Config.seq && r.role = Syncing then begin
                if not r.snap_started then begin
                  r.snap_started <- true;
                  Database.clear_data r.sdb
                end;
                (match Database.load_rows r.sdb rows with
                | Ok () | Error _ -> ());
                R.charge ctx (Database.take_cost r.sdb);
                if last then begin
                  r.role <- Active;
                  r.snap_started <- false;
                  r.sync_proposer <- None;
                  let todo = r.buffered in
                  r.buffered <- [];
                  List.iter (smr_exec ctx r) todo;
                  (* The installed state supersedes whatever the WAL
                     described: pin the transferred position and snapshot
                     it so a crash right after state transfer recovers to
                     here, not to the stale pre-transfer log. *)
                  match r.sdur with
                  | None -> ()
                  | Some mgr ->
                      Durable.Manager.install_state mgr
                        {
                          Durable.Wal.idx = r.sdur_floor;
                          aux = r.sgseq;
                          hash = Database.content_hash r.sdb;
                          payload = smr_durable_image ctx r;
                        }
                end
              end
          | Db _ -> ())

  let spawn_smr ?(tun = default_tuning)
      ?(backends : Storage.Store.kind list option) ?durability
      ?(costs = Broadcast.Shell.default_costs) ?tob_window ~world ~registry
      ~setup ~n_active () =
    let shared : smr_replica Registry.t = Registry.create () in
    let nodes_ref = ref [] in
    let backend_of i =
      match backends with
      | None -> Storage.Store.Hazel
      | Some bs -> List.nth bs (i mod List.length bs)
    in
    let nodes =
      List.init 3 (fun i ->
          R.spawn world
            ~name:(Printf.sprintf "smr%d" i)
            (smr_handler ~shared ~nodes_ref ~backend:(backend_of i) ~setup
               ~registry ~tun ~costs ~tob_window ~n_active
               ~durable:(Option.map (fun d -> (i, d)) durability)))
    in
    nodes_ref := nodes;
    let view l f ~default = Registry.view shared l f ~default in
    {
      smr_nodes = nodes;
      smr_active_of = (fun l -> view l (fun r -> r.role = Active) ~default:false);
      smr_cfg_of = (fun l -> view l (fun r -> r.scfg.Config.seq) ~default:(-1));
      smr_gseq_of = (fun l -> view l (fun r -> r.sgseq) ~default:0);
      smr_hash_of =
        (fun l -> view l (fun r -> Database.content_hash r.sdb) ~default:0);
    }

  (* ------------------------------------------------------------------ *)
  (* Clients                                                             *)
  (* ------------------------------------------------------------------ *)

  type client_target =
    | To_pbr of pbr_cluster
    | To_smr of smr_cluster

  (* A closed-loop client: submits [count] transactions one at a time,
     resending (same sequence number — duplicates are suppressed
     downstream) with contact rotation on timeout. [on_commit time latency]
     fires per committed transaction; [make_txn ~client ~seq] supplies the
     procedure name and parameters. *)
  let spawn_clients ~world ~target ~n ~count ~make_txn
      ?(retry_timeout = 4.0) ?(on_commit = fun _ _ -> ()) () =
    let completed = Atomic.make 0 in
    let contacts, to_wire =
      match target with
      | To_pbr c ->
          let all = c.pbr_replicas in
          (* Start at the initial primary; rotate over replicas on retry. *)
          let ordered =
            c.pbr_initial_primary
            :: List.filter (fun l -> l <> c.pbr_initial_primary) all
          in
          (ordered, fun txn -> Db (Db_msg.Client_txn txn))
      | To_smr c ->
          ( c.smr_nodes,
            fun txn ->
              let entry =
                {
                  Tob.origin = txn.Txn.client;
                  id = txn.Txn.seq;
                  payload = tob_payload_txn txn;
                }
              in
              Svc (TM.Broadcast entry) )
    in
    let spawn_one _i =
      R.spawn world ~name:"db-client" (fun () ->
          let seq = ref 0 in
          let attempt = ref 0 in
          let sent_at = ref 0.0 in
          let timer = ref (-1) in
          let send ctx =
            let contact =
              List.nth contacts (!attempt mod List.length contacts)
            in
            incr attempt;
            sent_at := R.time ctx;
            let client = R.self ctx in
            let kind, params = make_txn ~client ~seq:!seq in
            let txn = { Txn.client; seq = !seq; kind; params } in
            R.send ctx ~size:(Txn.size txn) contact (to_wire txn);
            timer := R.set_timer ctx retry_timeout "retry"
          in
          fun ctx -> function
            | R.Init -> if count > 0 then send ctx
            | R.Recv { msg = Db (Db_msg.Reply reply); _ } ->
                if reply.Txn.seq = !seq then begin
                  R.cancel_timer ctx !timer;
                  let now = R.time ctx in
                  (* Deterministic aborts (e.g. TPC-C's 1% rollbacks) are
                     answered but not counted as commits. *)
                  (match reply.Txn.outcome with
                  | Ok _ -> on_commit now (now -. !sent_at)
                  | Error _ -> ());
                  incr seq;
                  (* Successful contact: stick with it next time. *)
                  attempt := !attempt - 1;
                  if !seq < count then send ctx
                  else Atomic.incr completed
                end
            | R.Recv _ -> ()
            | R.Timer { tag = "retry"; _ } ->
                (* Timeout: resend the same transaction; [send] advances
                   the rotation, so a dead contact is skipped. *)
                if !seq < count then send ctx
            | R.Timer _ -> ())
    in
    let ids = List.init n spawn_one in
    (ids, fun () -> Atomic.get completed)
end
