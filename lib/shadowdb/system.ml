(* ShadowDB: replicated databases over a verified total-order broadcast.

   [Make] is parameterized by the consensus core of the broadcast service
   (Paxos in the paper's evaluation; TwoThird also works). It provides the
   two replication protocols of Sec. III:

   - PBR (primary-backup): a hand-coded normal case — the primary
     executes, forwards to the backups, waits for all acknowledgements and
     answers the client — with TOB-ordered reconfiguration, election by
     largest executed sequence number, and transaction-cache or
     full-snapshot state transfer.

   - SMR (state-machine replication): clients broadcast transactions
     through the TOB; every active replica executes in delivery order and
     answers; the client keeps the first answer. Each replica co-hosts its
     broadcast-service member (the paper co-locates databases with the
     Paxos processes, and the shared CPU is what caps SMR throughput in
     Fig. 9(a)). *)

module R = Runtime
module Database = Storage.Database
module Value = Storage.Value
module Tob = Broadcast.Tob

type loc = int

let tob_payload_txn txn = "T" ^ Codec.encode_txn txn

let tob_payload_reconfig cfg ~last_seq ~proposer =
  "R" ^ Codec.encode_reconfig cfg ~last_seq ~proposer

let tob_payload_prepare ~coord ~shard ~participants ~ptxn =
  "P" ^ Codec.encode_prepare ~coord ~shard ~participants ~ptxn

let tob_payload_decision ~shard ~commit ~dtxn =
  "D" ^ Codec.encode_decision ~shard ~commit ~dtxn

type decoded_payload =
  | P_txn of Txn.t
  | P_reconfig of Config.t * int * loc
  | P_prepare of loc * int * int list * Txn.t
      (* coordinator, shard, participants, sub-transaction *)
  | P_decision of int * bool * Txn.t  (* shard, commit?, sub-transaction *)
  | P_bytes of string

let decode_payload s =
  if s = "" then P_bytes s
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'T' -> (
        match Codec.decode_txn body with
        | Ok t -> P_txn t
        | Error _ -> P_bytes s)
    | 'R' -> (
        match Codec.decode_reconfig body with
        | Ok (c, ls, pr) -> P_reconfig (c, ls, pr)
        | Error _ -> P_bytes s)
    | 'P' -> (
        match Codec.decode_prepare body with
        | Ok (coord, shard, parts, ptxn) ->
            P_prepare (coord, shard, parts, ptxn)
        | Error _ -> P_bytes s)
    | 'D' -> (
        match Codec.decode_decision body with
        | Ok (shard, commit, dtxn) -> P_decision (shard, commit, dtxn)
        | Error _ -> P_bytes s)
    | _ -> P_bytes s

type tuning = {
  hb_interval : float;
  detect_timeout : float;
  cache_cap : int;
  chunk_rows : int;
  exec_overhead : float;  (* fixed CPU per transaction besides DB work *)
  fwd_overhead : float;  (* primary-side per-backup forward/ack handling *)
}

let default_tuning =
  {
    hb_interval = 1.0;
    detect_timeout = 10.0;
    cache_cap = 20_000;
    chunk_rows = 700;
    exec_overhead = 2.0e-5;
    fwd_overhead = 4.5e-5;
  }

module Make (C : Consensus.Consensus_intf.S) = struct
  module Shell = Broadcast.Shell.Make (C)
  module TM = Shell.T

  type wire = Svc of TM.msg | Note of Tob.deliver | Db of Db_msg.t

  let send_db ctx dst m = R.send ctx ~size:(Db_msg.size m) dst (Db m)

  (* Wire format for the whole system: broadcast-service traffic, delivery
     notifications and database replication messages share one socket per
     link on the live runtime. [enc_core]/[dec_core] serialize the
     consensus core's protocol messages — for Paxos over TOB batches use
     {!Codec.encode_core_paxos} / {!Codec.decode_core_paxos}. *)
  let wire_codec ~enc_core ~dec_core : wire R.codec =
    let enc = function
      | Svc (TM.Broadcast e) -> "B" ^ Codec.encode_entry e
      | Svc (TM.Core m) -> "C" ^ enc_core m
      | Note d -> "N" ^ Codec.encode_deliver d
      | Db m -> "D" ^ Codec.encode_db_msg m
    in
    let dec s =
      if s = "" then Error "empty wire message"
      else
        let body = String.sub s 1 (String.length s - 1) in
        match s.[0] with
        | 'B' -> (
            match Codec.decode_entry body with
            | Ok (e, "") -> Ok (Svc (TM.Broadcast e))
            | Ok _ -> Error "trailing bytes after entry"
            | Error e -> Error e)
        | 'C' -> Result.map (fun m -> Svc (TM.Core m)) (dec_core body)
        | 'N' -> Result.map (fun d -> Note d) (Codec.decode_deliver body)
        | 'D' -> Result.map (fun m -> Db m) (Codec.decode_db_msg body)
        | c -> Error (Printf.sprintf "bad wire tag %C" c)
    in
    { R.enc; dec }

  (* Replica registries back the [*_of] observers of a cluster handle.
     Node handlers fill them in — from runtime threads, on the live
     runtime — while the spawning thread reads them, so access is
     serialized by a mutex. *)
  module Registry = struct
    type 'a t = { mu : Mutex.t; tbl : (loc, 'a) Hashtbl.t }

    let create () = { mu = Mutex.create (); tbl = Hashtbl.create 8 }

    let locked t f =
      Mutex.lock t.mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

    let set t l r = locked t (fun () -> Hashtbl.replace t.tbl l r)

    (* [f] is caller code: without Fun.protect, a raising observer would
       leave the registry mutex held forever. *)
    let view t l f ~default =
      locked t (fun () ->
          match Hashtbl.find_opt t.tbl l with Some r -> f r | None -> default)
  end

  (* Bounded cache of recently executed transactions (for catch-up). *)
  module Cache = struct
    type t = { cap : int; mutable items : (int * Txn.t) list (* newest first *) }

    let create cap = { cap; items = [] }

    let push t gseq txn =
      t.items <- (gseq, txn) :: t.items;
      if List.length t.items > t.cap then
        t.items <- List.filteri (fun i _ -> i < t.cap) t.items

    (* Transactions with global number in (from, upto], oldest first;
       [None] if the cache no longer spans that range. *)
    let range t ~from ~upto =
      let hits =
        List.filter (fun (g, _) -> g > from && g <= upto) t.items
      in
      if List.length hits = upto - from then
        Some (List.sort (fun (a, _) (b, _) -> compare a b) hits)
      else None
  end

  (* ------------------------------------------------------------------ *)
  (* Primary-backup replication                                          *)
  (* ------------------------------------------------------------------ *)

  type pbr_cluster = {
    pbr_replicas : loc list;  (* actives first, then spares *)
    pbr_tob : loc list;
    pbr_initial_primary : loc;
    pbr_primary_of : loc -> loc;  (* current primary, per replica view *)
    pbr_cfg_of : loc -> int;  (* configuration seqno, per replica view *)
    pbr_gseq_of : loc -> int;
    pbr_hash_of : loc -> int;  (* database content hash (tests) *)
  }

  type replication_style = Primary_backup | Chain

  type pbr_replica = {
    style : replication_style;
    read_kinds : string list;
        (* Chain: transaction kinds served read-only at the tail *)
    p_self : loc;
    p_all : loc list;  (* every replica incl. spares, deployment order *)
    p_tob : loc list;
    db : Database.t;
    reg : Txn.registry;
    tun : tuning;
    mutable cfg : Config.t;
    mutable primary : loc;
    mutable running : bool;
    mutable gseq : int;
    cache : Cache.t;
    client_tbl : (loc, Txn.reply) Hashtbl.t;  (* latest reply per client *)
    pending : (int, Txn.t * Sim.Node_id.Set.t ref) Hashtbl.t;
    last_hb : (loc, float) Hashtbl.t;
    mutable elect_votes : (loc * int) list;
    mutable elected : bool;  (* election resolved for current cfg *)
    mutable awaiting_recovered : Sim.Node_id.Set.t;
    mutable recovered_set : Sim.Node_id.Set.t;
        (* primary-side: members known up to date; transactions wait only
           for acknowledgments from these (the paper's overlapped state
           transfer: normal processing resumes once at least one backup
           caught up, snapshots stream to the rest in parallel) *)
    mutable snapshot_started : bool;  (* backup-side: receiving chunks *)
    mutable fwd_buffer : (int * Txn.t) list;
        (* backup-side: forwards arriving while a snapshot installs *)
    mutable tob_seq : int;  (* ids for our TOB broadcasts *)
    mutable proposed_at : float;  (* last reconfig proposal time *)
  }

  let backups r = List.filter (fun m -> m <> r.primary) r.cfg.Config.members

  let chain_head r = match r.cfg.Config.members with m :: _ -> m | [] -> r.p_self

  let chain_tail r =
    match List.rev r.cfg.Config.members with m :: _ -> m | [] -> r.p_self

  let chain_successor r =
    let rec go = function
      | a :: b :: _ when a = r.p_self -> Some b
      | _ :: rest -> go rest
      | [] -> None
    in
    go r.cfg.Config.members

  let in_cfg r = Config.contains r.cfg r.p_self

  let charge_db ctx r = R.charge ctx (Database.take_cost r.db)

  let exec_and_record ctx r txn =
    let reply = Txn.execute r.reg r.db txn in
    R.charge ctx r.tun.exec_overhead;
    charge_db ctx r;
    r.gseq <- r.gseq + 1;
    Cache.push r.cache r.gseq txn;
    Hashtbl.replace r.client_tbl txn.Txn.client reply;
    reply

  let reset_hb ctx r =
    List.iter
      (fun m -> Hashtbl.replace r.last_hb m (R.time ctx))
      r.cfg.Config.members

  (* Paper Sec. III-A, recovery steps 1–2: stop, propose a new
     configuration through the broadcast service. *)
  let propose_reconfig ctx r suspects =
    r.running <- false;
    r.proposed_at <- R.time ctx;
    let spares =
      List.filter (fun m -> not (Config.contains r.cfg m)) r.p_all
    in
    let add = List.filteri (fun i _ -> i < List.length suspects) spares in
    let proposal = Config.next r.cfg ~remove:suspects ~add in
    r.tob_seq <- r.tob_seq + 1;
    let payload =
      tob_payload_reconfig proposal ~last_seq:r.gseq ~proposer:r.p_self
    in
    let entry =
      { Tob.origin = r.p_self; id = r.tob_seq; payload }
    in
    let tob_contact =
      Sim.Invariant.head ~layer:"pbr"
        ~what:
          (Printf.sprintf "replica %d proposing reconfiguration: TOB members"
             r.p_self)
        r.p_tob
    in
    R.send ctx ~size:(String.length payload + 24) tob_contact
      (Svc (TM.Broadcast entry))

  (* Step 3: adopt the first proposal for the successor configuration and
     start the election. *)
  let adopt_config ctx r proposal =
    r.cfg <- proposal;
    r.running <- false;
    r.elected <- false;
    r.elect_votes <- [];
    r.awaiting_recovered <- Sim.Node_id.Set.empty;
    r.recovered_set <- Sim.Node_id.Set.empty;
    r.snapshot_started <- false;
    r.fwd_buffer <- [];
    Hashtbl.reset r.pending;
    reset_hb ctx r;
    if in_cfg r then begin
      let msg = Db_msg.Elect { cfg = proposal.Config.seq; last_seq = r.gseq } in
      List.iter
        (fun m ->
          if m = r.p_self then
            r.elect_votes <- (r.p_self, r.gseq) :: r.elect_votes
          else send_db ctx m msg)
        proposal.Config.members
    end

  let snapshot_chunks r ~upto =
    let rows = Database.dump r.db in
    let clients = Hashtbl.fold (fun _ reply acc -> reply :: acc) r.client_tbl [] in
    let rec chunk rows acc =
      match rows with
      | [] -> List.rev acc
      | _ ->
          let n = min r.tun.chunk_rows (List.length rows) in
          let head = List.filteri (fun i _ -> i < n) rows in
          let tail = List.filteri (fun i _ -> i >= n) rows in
          chunk tail (head :: acc)
    in
    let chunks = chunk rows [] in
    let total = List.length chunks in
    List.mapi
      (fun i rows ->
        let last = i = total - 1 in
        Db_msg.Snapshot
          {
            cfg = r.cfg.Config.seq;
            rows;
            upto;
            last;
            clients = (if last then clients else []);
          })
      chunks

  (* Steps 4–5: the member with the largest sequence number becomes
     primary (ties to the smallest identifier) and brings the others up
     to date from its cache, or with a full snapshot. *)
  let conclude_election ctx r =
    let best =
      List.fold_left
        (fun (bl, bs) (l, s) ->
          if s > bs || (s = bs && l < bl) then (l, s) else (bl, bs))
        (max_int, min_int) r.elect_votes
    in
    let primary = fst best in
    r.primary <- primary;
    r.elected <- true;
    if r.p_self = primary then begin
      let others = backups r in
      r.recovered_set <- Sim.Node_id.Set.singleton r.p_self;
      (* Every backup voted (the election only concludes on a full vote
         set), so a missing vote here is a broken internal contract. *)
      let vote_of b =
        Sim.Invariant.assoc ~layer:"pbr"
          ~what:
            (Printf.sprintf "primary %d concluding election: vote of %d"
               r.p_self b)
          b r.elect_votes
      in
      let fast, slow =
        List.partition
          (fun b -> Cache.range r.cache ~from:(vote_of b) ~upto:r.gseq <> None)
          others
      in
      (* The paper's overlapped state transfer: wait only for the backups
         that can catch up from the cache; backups needing a full snapshot
         recover in parallel while normal processing resumes (they are
         added to the acknowledgment set when their Recovered arrives). *)
      r.awaiting_recovered <-
        Sim.Node_id.Set.of_list (if fast = [] then others else fast);
      if others = [] then r.running <- true
      else begin
        List.iter
          (fun b ->
            match Cache.range r.cache ~from:(vote_of b) ~upto:r.gseq with
            | Some txns ->
                send_db ctx b
                  (Db_msg.Catchup
                     { cfg = r.cfg.Config.seq; txns; upto = r.gseq })
            | None ->
                charge_db ctx r;
                List.iter (send_db ctx b) (snapshot_chunks r ~upto:r.gseq))
          others;
        ignore slow
      end
    end

  let handle_elect ctx r ~src ~cfg ~last_seq =
    if cfg = r.cfg.Config.seq && in_cfg r && not r.elected then begin
      if not (List.mem_assoc src r.elect_votes) then
        r.elect_votes <- (src, last_seq) :: r.elect_votes;
      if List.length r.elect_votes = List.length r.cfg.Config.members then
        conclude_election ctx r
    end

  (* Step 6–7: backups acknowledge recovery; the primary resumes. *)
  let handle_recovered r ~src ~cfg =
    if cfg = r.cfg.Config.seq && r.p_self = r.primary then begin
      r.awaiting_recovered <- Sim.Node_id.Set.remove src r.awaiting_recovered;
      r.recovered_set <- Sim.Node_id.Set.add src r.recovered_set;
      if Sim.Node_id.Set.is_empty r.awaiting_recovered then r.running <- true
    end

  let handle_catchup ctx r ~src ~cfg ~txns ~upto =
    if cfg = r.cfg.Config.seq && in_cfg r then begin
      (* The sender is the elected primary (we may have missed votes). *)
      r.primary <- src;
      r.elected <- true;
      List.iter
        (fun (g, txn) ->
          if g > r.gseq then begin
            let reply = Txn.execute r.reg r.db txn in
            R.charge ctx r.tun.exec_overhead;
            charge_db ctx r;
            r.gseq <- g;
            Cache.push r.cache g txn;
            Hashtbl.replace r.client_tbl txn.Txn.client reply
          end)
        txns;
      r.gseq <- max r.gseq upto;
      r.running <- true;
      send_db ctx r.primary (Db_msg.Recovered { cfg })
    end

  let handle_forward ctx r ~cfg ~gseq ~txn =
    if r.style = Chain then begin
      if cfg = r.cfg.Config.seq && in_cfg r then
        if gseq = r.gseq + 1 then begin
          let reply = exec_and_record ctx r txn in
          match chain_successor r with
          | Some next ->
              R.charge ctx r.tun.fwd_overhead;
              send_db ctx next (Db_msg.Forward { cfg; gseq = r.gseq; txn })
          | None ->
              (* Tail: this transaction has now executed at every replica;
                 answer the client. *)
              send_db ctx txn.Txn.client (Db_msg.Reply reply)
        end
        else if gseq > r.gseq + 1 then
          r.fwd_buffer <- (gseq, txn) :: r.fwd_buffer
    end
    else if
      (* Backups only accept transactions tagged with their configuration
         (paper Sec. III-A). *)
      cfg = r.cfg.Config.seq && in_cfg r && r.p_self <> r.primary
    then
      if gseq = r.gseq + 1 then begin
        ignore (exec_and_record ctx r txn);
        send_db ctx r.primary (Db_msg.Ack { cfg; gseq })
      end
      else if gseq <= r.gseq then
        (* Duplicate (already executed): just re-acknowledge. *)
        send_db ctx r.primary (Db_msg.Ack { cfg; gseq })
      else
        (* Ahead of us: normal processing resumed while our snapshot is
           still installing — buffer and replay once it lands. *)
        r.fwd_buffer <- (gseq, txn) :: r.fwd_buffer

  let drain_fwd_buffer ctx r =
    let buffered = List.sort compare (List.rev r.fwd_buffer) in
    r.fwd_buffer <- [];
    List.iter (fun (gseq, txn) -> handle_forward ctx r ~cfg:r.cfg.Config.seq ~gseq ~txn) buffered

  let handle_snapshot ctx r ~src ~cfg ~rows ~upto ~last ~clients =
    if cfg = r.cfg.Config.seq && in_cfg r then begin
      r.primary <- src;
      r.elected <- true;
      if not r.snapshot_started then begin
        r.snapshot_started <- true;
        Database.clear_data r.db;
        Hashtbl.reset r.client_tbl
      end;
      (match Database.load_rows r.db rows with Ok () | Error _ -> ());
      charge_db ctx r;
      if last then begin
        List.iter
          (fun (reply : Txn.reply) ->
            Hashtbl.replace r.client_tbl reply.Txn.client reply)
          clients;
        r.gseq <- upto;
        r.snapshot_started <- false;
        r.running <- true;
        send_db ctx r.primary (Db_msg.Recovered { cfg });
        drain_fwd_buffer ctx r
      end
    end

  (* Chain replication (van Renesse & Schneider), the other classic
     protocol the paper's broadcast service supports: updates enter at the
     head, flow down the chain, and the tail answers — its reply proves
     every replica executed. Read-only transactions are served directly by
     the tail. *)
  let handle_chain_client_txn ctx r txn =
    if not (r.running && in_cfg r) then ()
    else if List.mem txn.Txn.kind r.read_kinds then
      if r.p_self = chain_tail r then begin
        match Hashtbl.find_opt r.client_tbl txn.Txn.client with
        | Some old when old.Txn.seq = txn.Txn.seq ->
            send_db ctx txn.Txn.client (Db_msg.Reply old)
        | Some old when old.Txn.seq > txn.Txn.seq -> ()
        | Some _ | None ->
            (* Reads execute at the tail only; they do not advance the
               chain's update sequence. *)
            let reply = Txn.execute r.reg r.db txn in
            R.charge ctx (r.tun.exec_overhead +. Database.take_cost r.db);
            Hashtbl.replace r.client_tbl txn.Txn.client reply;
            send_db ctx txn.Txn.client (Db_msg.Reply reply)
      end
      else send_db ctx (chain_tail r) (Db_msg.Client_txn txn)
    else if r.p_self = chain_head r then begin
      match Hashtbl.find_opt r.client_tbl txn.Txn.client with
      | Some old when old.Txn.seq = txn.Txn.seq ->
          send_db ctx txn.Txn.client (Db_msg.Reply old)
      | Some old when old.Txn.seq > txn.Txn.seq -> ()
      | Some _ | None -> (
          let reply = exec_and_record ctx r txn in
          match chain_successor r with
          | Some next ->
              R.charge ctx r.tun.fwd_overhead;
              send_db ctx next
                (Db_msg.Forward { cfg = r.cfg.Config.seq; gseq = r.gseq; txn })
          | None -> send_db ctx txn.Txn.client (Db_msg.Reply reply))
    end
    else send_db ctx (chain_head r) (Db_msg.Client_txn txn)

  let handle_client_txn ctx r txn =
    if r.style = Chain then handle_chain_client_txn ctx r txn
    else if not (r.running && in_cfg r) then ()
    else if r.p_self <> r.primary then
      (* Misrouted: pass it on (the reply goes straight to the client). *)
      send_db ctx r.primary (Db_msg.Client_txn txn)
    else begin
      match Hashtbl.find_opt r.client_tbl txn.Txn.client with
      | Some old when old.Txn.seq = txn.Txn.seq ->
          send_db ctx txn.Txn.client (Db_msg.Reply old)
      | Some old when old.Txn.seq > txn.Txn.seq -> ()
      | Some _ | None ->
          let reply = exec_and_record ctx r txn in
          let bs = backups r in
          (* Forward to every backup, but wait only for the recovered ones
             (a snapshotting backup buffers and acknowledges later). *)
          let awaited =
            if Sim.Node_id.Set.is_empty r.recovered_set then bs
            else List.filter (fun b -> Sim.Node_id.Set.mem b r.recovered_set) bs
          in
          if awaited = [] && bs = [] then
            send_db ctx txn.Txn.client (Db_msg.Reply reply)
          else begin
            Hashtbl.replace r.pending r.gseq
              ( txn,
                ref (Sim.Node_id.Set.of_list (if awaited = [] then bs else awaited)) );
            let fwd =
              Db_msg.Forward { cfg = r.cfg.Config.seq; gseq = r.gseq; txn }
            in
            List.iter
              (fun b ->
                R.charge ctx r.tun.fwd_overhead;
                send_db ctx b fwd)
              bs
          end
    end

  let handle_ack ctx r ~cfg ~gseq ~src =
    if cfg = r.cfg.Config.seq && r.p_self = r.primary then
      match Hashtbl.find_opt r.pending gseq with
      | None -> ()
      | Some (txn, missing) ->
          missing := Sim.Node_id.Set.remove src !missing;
          R.charge ctx (r.tun.fwd_overhead /. 2.0);
          if Sim.Node_id.Set.is_empty !missing then begin
            Hashtbl.remove r.pending gseq;
            match Hashtbl.find_opt r.client_tbl txn.Txn.client with
            | Some reply when reply.Txn.seq = txn.Txn.seq ->
                send_db ctx txn.Txn.client (Db_msg.Reply reply)
            | Some _ | None -> ()
          end

  let check_suspicion ctx r =
    if in_cfg r then begin
      let now = R.time ctx in
      let suspects =
        List.filter
          (fun m ->
            m <> r.p_self
            &&
            match Hashtbl.find_opt r.last_hb m with
            | Some t -> now -. t > r.tun.detect_timeout
            | None -> false)
          r.cfg.Config.members
      in
      (* Re-propose at most once per detection interval while the
         suspicion persists (the first delivered proposal wins). *)
      if suspects <> [] && now -. r.proposed_at > r.tun.detect_timeout /. 2.0
      then propose_reconfig ctx r suspects
    end

  let handle_note ctx r (d : Tob.deliver) =
    match decode_payload d.Tob.entry.Tob.payload with
    | P_reconfig (proposal, _, _) ->
        if proposal.Config.seq = r.cfg.Config.seq + 1 then
          adopt_config ctx r proposal
    | P_txn _ | P_prepare _ | P_decision _ | P_bytes _ -> ()

  let pbr_replica_handler ~style ~read_kinds ~shared ~all_ref ~tob_ref
      ~backend ~setup ~registry ~tun ~initial_members () =
    let r_holder = ref None in
    let get ctx =
      match !r_holder with
      | Some r -> r
      | None ->
          let self = R.self ctx in
          let db = Database.create backend in
          setup db;
          ignore (Database.take_cost db);
          let members = initial_members () in
          let r =
            {
              style;
              read_kinds;
              p_self = self;
              p_all = !all_ref;
              p_tob = !tob_ref;
              db;
              reg = registry ();
              tun;
              cfg = Config.initial members;
              primary = List.fold_left min max_int members;
              running = Config.contains (Config.initial members) self;
              gseq = 0;
              cache = Cache.create tun.cache_cap;
              client_tbl = Hashtbl.create 64;
              pending = Hashtbl.create 64;
              last_hb = Hashtbl.create 8;
              elect_votes = [];
              elected = true;
              awaiting_recovered = Sim.Node_id.Set.empty;
              recovered_set = Sim.Node_id.Set.empty;
              snapshot_started = false;
              fwd_buffer = [];
              tob_seq = 0;
              proposed_at = -1.0e9;
            }
          in
          reset_hb ctx r;
          Registry.set shared self r;
          r_holder := Some r;
          r
    in
    fun ctx input ->
      let r = get ctx in
      match input with
      | R.Init ->
          ignore (R.set_timer ctx r.tun.hb_interval "hb");
          ignore (R.set_timer ctx (r.tun.detect_timeout /. 4.0) "detect")
      | R.Timer { tag = "hb"; _ } ->
          if in_cfg r then begin
            let hb = Db_msg.Heartbeat { cfg = r.cfg.Config.seq } in
            List.iter
              (fun m -> if m <> r.p_self then send_db ctx m hb)
              r.cfg.Config.members
          end;
          ignore (R.set_timer ctx r.tun.hb_interval "hb")
      | R.Timer { tag = "detect"; _ } ->
          check_suspicion ctx r;
          (* Re-send election votes until the election concludes: a vote
             sent before a peer adopted the configuration is lost. *)
          if in_cfg r && not r.elected then begin
            let msg =
              Db_msg.Elect { cfg = r.cfg.Config.seq; last_seq = r.gseq }
            in
            List.iter
              (fun m -> if m <> r.p_self then send_db ctx m msg)
              r.cfg.Config.members
          end;
          ignore (R.set_timer ctx (r.tun.detect_timeout /. 4.0) "detect")
      | R.Timer _ -> ()
      | R.Recv { src; msg } -> (
          match msg with
          | Note d -> handle_note ctx r d
          | Svc _ -> ()
          | Db m -> (
              match m with
              | Db_msg.Client_txn txn -> handle_client_txn ctx r txn
              | Db_msg.Forward { cfg; gseq; txn } ->
                  handle_forward ctx r ~cfg ~gseq ~txn
              | Db_msg.Ack { cfg; gseq } -> handle_ack ctx r ~cfg ~gseq ~src
              | Db_msg.Reply _ -> ()
              | Db_msg.Heartbeat _ ->
                  Hashtbl.replace r.last_hb src (R.time ctx)
              | Db_msg.Elect { cfg; last_seq } ->
                  handle_elect ctx r ~src ~cfg ~last_seq
              | Db_msg.Catchup { cfg; txns; upto } ->
                  handle_catchup ctx r ~src ~cfg ~txns ~upto
              | Db_msg.Snapshot { cfg; rows; upto; last; clients } ->
                  handle_snapshot ctx r ~src ~cfg ~rows ~upto ~last ~clients
              | Db_msg.Recovered { cfg } -> handle_recovered r ~src ~cfg
              | Db_msg.Snapshot_req _ | Db_msg.Vote _ -> ()))

  let spawn_pbr ?(style = Primary_backup) ?(read_kinds = [])
      ?(tun = default_tuning) ?(backends : Storage.Store.kind list option)
      ?(tob_profile = Gpm.Engine_profile.Interpreted_opt) ?tob_window ~world
      ~registry ~setup ~n_active ~n_spare () =
    let n = n_active + n_spare in
    let shared : pbr_replica Registry.t = Registry.create () in
    let all_ref = ref [] in
    let tob_ref = ref [] in
    let initial_members () = List.filteri (fun i _ -> i < n_active) !all_ref in
    let backend_of i =
      match backends with
      | None -> Storage.Store.Hazel
      | Some bs -> List.nth bs (i mod List.length bs)
    in
    let replicas =
      List.init n (fun i ->
          R.spawn world
            ~name:(Printf.sprintf "pbr%d" i)
            (pbr_replica_handler ~style ~read_kinds ~shared ~all_ref ~tob_ref
               ~backend:(backend_of i) ~setup ~registry ~tun ~initial_members))
    in
    all_ref := replicas;
    let tob =
      Shell.spawn ~profile:tob_profile ?window:tob_window ~world
        ~inj:(fun m -> Svc m)
        ~prj:(function Svc m -> Some m | Note _ | Db _ -> None)
        ~inj_notify:(fun d -> Note d)
        ~n:3
        ~subscribers:(fun () -> replicas)
        ()
    in
    tob_ref := tob;
    let view l f ~default = Registry.view shared l f ~default in
    {
      pbr_replicas = replicas;
      pbr_tob = tob;
      pbr_initial_primary = List.fold_left min max_int (initial_members ());
      pbr_primary_of = (fun l -> view l (fun r -> r.primary) ~default:(-1));
      pbr_cfg_of = (fun l -> view l (fun r -> r.cfg.Config.seq) ~default:(-1));
      pbr_gseq_of = (fun l -> view l (fun r -> r.gseq) ~default:0);
      pbr_hash_of =
        (fun l -> view l (fun r -> Database.content_hash r.db) ~default:0);
    }

  let spawn_chain ?read_kinds ?tun ?backends ?tob_profile ?tob_window ~world
      ~registry ~setup ~n_active ~n_spare () =
    spawn_pbr ~style:Chain ?read_kinds ?tun ?backends ?tob_profile ?tob_window
      ~world ~registry ~setup ~n_active ~n_spare ()

  (* ------------------------------------------------------------------ *)
  (* State machine replication                                           *)
  (* ------------------------------------------------------------------ *)

  type smr_role = Active | Sparing | Syncing

  (* Per-node durability hooks: [dur_backend i] supplies node [i]'s
     persistent backend (file-backed live, in-memory under the sim),
     [dur_policy i] its group-commit/snapshot cadence, and
     [dur_on_recover] observes the recovery report each time node [i]
     (re)initializes — the monitors and the chaos drill hang off it. *)
  type durability = {
    dur_backend : int -> Durable.Backend.t;
    dur_policy : int -> Durable.Manager.policy;
    dur_on_recover : int -> Durable.Manager.report -> state_hash:int -> unit;
  }

  (* ---- Cross-shard 2PC participant state -------------------------- *)

  (* In a sharded deployment every replica of a shard additionally acts
     as a 2PC participant: prepares trial-execute and lock, decisions
     unlock and (on commit) really execute. All of this state is
     reconstructed after a crash by replaying the WAL through the same
     [x2pc_apply] used live (with sends suppressed), so it needs no
     snapshotting of its own. *)

  type x2pc_config = {
    xc_shard : int;
    xc_coord : loc;
    xc_keys_of : Txn.t -> Shard.key list;
    xc_on_apply :
      shard:int ->
      node:loc ->
      client:loc ->
      seq:int ->
      commit:bool ->
      keys:Shard.key list ->
      unit;
  }

  type x2pc_staged = {
    g_txn : Txn.t;
    g_keys : Shard.key list;
    g_participants : int list;
    g_vote : Txn.reply;
  }

  type x2pc = {
    xcfg : x2pc_config;
    x_self : loc;
    staged : (loc * int, x2pc_staged) Hashtbl.t;  (* xid = (client, seq) *)
    locks : (Shard.key, loc * int) Hashtbl.t;  (* key -> locking xid *)
    mutable deferred : Txn.t list;
        (* single-shard transactions delivered while a key they touch was
           locked by an undecided prepare; drained in order at decision
           application *)
    applied : (loc * int, bool) Hashtbl.t;
        (* every decided xid — dedups re-broadcast decisions *)
  }

  let xid_of (t : Txn.t) = (t.Txn.client, t.Txn.seq)

  let x2pc_locked x keys = List.exists (fun k -> Hashtbl.mem x.locks k) keys

  (* Deterministic 2PC participant step, shared verbatim by live TOB
     delivery and WAL-replay recovery: the effects ([exec_reply] for
     single-shard transactions, [exec] for committed sub-transactions,
     [send_vote] toward the coordinator) are the only difference between
     the two callers — recovery suppresses the sends and re-executes
     silently, leaving locks/staged/deferred/applied exactly as the
     pre-crash replica had them. *)
  let x2pc_apply ~sreg ~db x payload ~exec_reply ~exec ~send_vote =
    let drain () =
      let still =
        List.filter
          (fun t ->
            if x2pc_locked x (x.xcfg.xc_keys_of t) then true
            else begin
              exec_reply t;
              false
            end)
          x.deferred
      in
      x.deferred <- still
    in
    match payload with
    | P_txn txn ->
        (* Single-shard transaction ordered by this shard's own TOB. If a
           key is locked by an undecided prepare it must wait for the
           decision — executing now would read uncommitted 2PC state. *)
        if x2pc_locked x (x.xcfg.xc_keys_of txn) then
          x.deferred <- x.deferred @ [ txn ]
        else exec_reply txn
    | P_prepare (_coord, shard, participants, ptxn) ->
        if shard = x.xcfg.xc_shard then begin
          let xid = xid_of ptxn in
          if not (Hashtbl.mem x.applied xid || Hashtbl.mem x.staged xid)
          then begin
            let keys = x.xcfg.xc_keys_of ptxn in
            if x2pc_locked x keys then
              (* No-vote: not staged, no locks taken, never resent — a
                 lost no-vote is covered by the coordinator's timeout
                 abort. Sinfonia-style: never wait for a lock, so there
                 is no distributed deadlock. *)
              send_vote ~participants
                ~vote:
                  {
                    Txn.client = ptxn.Txn.client;
                    seq = ptxn.Txn.seq;
                    outcome = Error "locked";
                  }
                ~vtxn:ptxn
            else begin
              let vote = Txn.execute_trial sreg db ptxn in
              (match vote.Txn.outcome with
              | Ok _ ->
                  List.iter (fun k -> Hashtbl.replace x.locks k xid) keys;
                  Hashtbl.replace x.staged xid
                    {
                      g_txn = ptxn;
                      g_keys = keys;
                      g_participants = participants;
                      g_vote = vote;
                    }
              | Error _ -> ());
              send_vote ~participants ~vote ~vtxn:ptxn
            end
          end
          (* Duplicate prepare of a staged xid: ignored — the periodic
             vote-resend timer already covers a lost yes-vote. *)
        end
    | P_decision (shard, commit, dtxn) ->
        if shard = x.xcfg.xc_shard then begin
          let xid = xid_of dtxn in
          if not (Hashtbl.mem x.applied xid) then begin
            Hashtbl.replace x.applied xid commit;
            let keys =
              match Hashtbl.find_opt x.staged xid with
              | Some g ->
                  Hashtbl.remove x.staged xid;
                  g.g_keys
              | None ->
                  (* Never staged (missed the prepare, or no-voted): the
                     decision carries the sub-transaction, so a commit
                     still applies. *)
                  x.xcfg.xc_keys_of dtxn
            in
            List.iter
              (fun k ->
                match Hashtbl.find_opt x.locks k with
                | Some owner when owner = xid -> Hashtbl.remove x.locks k
                | _ -> ())
              keys;
            if commit then exec dtxn;
            x.xcfg.xc_on_apply ~shard ~node:x.x_self ~client:(fst xid)
              ~seq:(snd xid) ~commit ~keys;
            drain ()
          end
        end
    | P_reconfig _ | P_bytes _ ->
        (* Reconfiguration is disabled in sharded mode: a spare activated
           mid-2PC would lack lock/stage state. *)
        ()

  type smr_replica = {
    s_self : loc;
    s_nodes : loc list;  (* the three co-located TOB/DB machines *)
    sdb : Database.t;
    sreg : Txn.registry;
    stun : tuning;
    costs : Broadcast.Shell.costs;
    mutable tob : TM.t;
    mutable scfg : Config.t;
    mutable role : smr_role;
    mutable sgseq : int;  (* delivered entries counted by every node *)
    mutable buffered : Txn.t list;  (* delivered while syncing, oldest first *)
    mutable pending_snapshot :
      ((string * Value.t array) list * int) option;
        (* proposer-side snapshot taken at reconfig delivery *)
    mutable snap_started : bool;
    mutable sync_proposer : loc option;
        (* who to (re-)request the snapshot from while Syncing *)
    s_last_hb : (loc, float) Hashtbl.t;
    mutable s_proposed_at : float;
    mutable s_tob_seq : int;
    sx2pc : x2pc option;  (* 2PC participant state, sharded mode only *)
    sdur : Durable.Manager.t option;  (* write-ahead durability, if on *)
    mutable sdur_floor : int;
        (* highest TOB seqno already applied (recovered or live): a
           restarted broadcast member re-delivers the total order from
           where its peers re-learn it, so deliveries at or below the
           floor are duplicates of recovered state and must be skipped *)
  }

  type smr_cluster = {
    smr_nodes : loc list;
    smr_active_of : loc -> bool;
    smr_cfg_of : loc -> int;
    smr_gseq_of : loc -> int;
    smr_hash_of : loc -> int;
    smr_db_view : 'a. loc -> (Database.t -> 'a) -> default:'a -> 'a;
        (* read-only view of a replica's database (e.g. conservation
           sums in the checker); [default] when the node never
           initialized *)
  }

  let smr_exec ctx r txn =
    let reply = Txn.execute r.sreg r.sdb txn in
    R.charge ctx (r.stun.exec_overhead +. Database.take_cost r.sdb);
    send_db ctx txn.Txn.client (Db_msg.Reply reply)

  let smr_adopt ctx r proposal ~proposer =
    r.scfg <- proposal;
    List.iter
      (fun m -> Hashtbl.replace r.s_last_hb m (R.time ctx))
      proposal.Config.members;
    let member = Config.contains proposal r.s_self in
    match (r.role, member) with
    | Active, true -> ()
    | Active, false ->
        r.role <- Sparing;
        r.buffered <- []
    | Sparing, true ->
        (* Activated: buffer subsequent transactions and fetch the
           snapshot corresponding to this point of the total order. *)
        r.role <- Syncing;
        r.buffered <- [];
        r.snap_started <- false;
        r.sync_proposer <- Some proposer;
        send_db ctx proposer
          (Db_msg.Snapshot_req { cfg = proposal.Config.seq; from_seq = r.sgseq })
    | Sparing, false -> ()
    | Syncing, true -> ()
    | Syncing, false ->
        r.role <- Sparing;
        r.buffered <- []

  (* One WAL record per applied transaction: [idx] is the TOB delivery
     seqno (the position in the total order), [aux] the replica's
     delivered-entry count, [hash] the state fingerprint after applying,
     [payload] the delivered entry's payload verbatim (so replay decodes
     it with the same codec as delivery). *)
  let smr_durable_record r (d : Tob.deliver) =
    {
      Durable.Wal.idx = d.Tob.seqno;
      aux = r.sgseq;
      hash = Database.content_hash r.sdb;
      payload = d.Tob.entry.Tob.payload;
    }

  let smr_durable_image ctx r =
    let rows = Database.dump r.sdb in
    R.charge ctx (Database.take_cost r.sdb);
    Codec.encode_rows rows

  let smr_deliver ctx r (d : Tob.deliver) =
    if r.sdur <> None && d.Tob.seqno <= r.sdur_floor then
      (* Duplicate of recovered state: a restarted broadcast member
         re-delivers entries the WAL already covers. Skip entirely — the
         recovered [sgseq] already counted them. *)
      ()
    else begin
      r.sdur_floor <- max r.sdur_floor d.Tob.seqno;
      R.charge ctx r.costs.Broadcast.Shell.per_entry;
      r.sgseq <- r.sgseq + 1;
      match r.sx2pc with
      | Some x ->
          (* Sharded mode: every delivery (transaction, prepare or
             decision) flows through the 2PC participant step, and every
             delivery is WAL-logged so recovery replays the identical
             sequence. No snapshots here — a snapshot would capture the
             database but not the lock/stage tables, so sharded replicas
             recover by full-log replay. *)
          if r.role = Active then begin
            if R.observing ctx then
              R.observe ctx
                (R.Ob_deliver
                   {
                     seqno = d.Tob.seqno;
                     origin = d.Tob.entry.Tob.origin;
                     id = d.Tob.entry.Tob.id;
                     payload = d.Tob.entry.Tob.payload;
                   });
            x2pc_apply ~sreg:r.sreg ~db:r.sdb x
              (decode_payload d.Tob.entry.Tob.payload)
              ~exec_reply:(fun txn -> smr_exec ctx r txn)
              ~exec:(fun txn ->
                ignore (Txn.execute r.sreg r.sdb txn);
                R.charge ctx
                  (r.stun.exec_overhead +. Database.take_cost r.sdb))
              ~send_vote:(fun ~participants ~vote ~vtxn ->
                send_db ctx x.xcfg.xc_coord
                  (Db_msg.Vote
                     { shard = x.xcfg.xc_shard; participants; vote; vtxn }));
            (match r.sdur with
            | None -> ()
            | Some mgr -> Durable.Manager.append mgr (smr_durable_record r d));
            if R.observing ctx then
              R.observe ctx
                (R.Ob_checkpoint
                   {
                     gseq = r.sgseq;
                     seqno = d.Tob.seqno;
                     hash = Database.content_hash r.sdb;
                   })
          end
      | None -> (
      match decode_payload d.Tob.entry.Tob.payload with
      | P_txn txn -> (
          match r.role with
          | Active ->
              if R.observing ctx then
                R.observe ctx
                  (R.Ob_deliver
                     {
                       seqno = d.Tob.seqno;
                       origin = d.Tob.entry.Tob.origin;
                       id = d.Tob.entry.Tob.id;
                       payload = d.Tob.entry.Tob.payload;
                     });
              smr_exec ctx r txn;
              (match r.sdur with
              | None -> ()
              | Some mgr ->
                  Durable.Manager.append mgr (smr_durable_record r d);
                  Durable.Manager.maybe_snapshot mgr ~payload:(fun () ->
                      smr_durable_image ctx r));
              if R.observing ctx then
                R.observe ctx
                  (R.Ob_checkpoint
                     {
                       gseq = r.sgseq;
                       seqno = d.Tob.seqno;
                       hash = Database.content_hash r.sdb;
                     })
          | Syncing -> r.buffered <- r.buffered @ [ txn ]
          | Sparing -> ())
      | P_reconfig (proposal, _, proposer) ->
          if proposal.Config.seq = r.scfg.Config.seq + 1 then begin
            (* The proposer snapshots its database at this exact point of
               the delivery order, so the spare can take over from here. *)
            if r.s_self = proposer && r.role = Active then begin
              r.pending_snapshot <- Some (Database.dump r.sdb, r.sgseq);
              R.charge ctx (Database.take_cost r.sdb)
            end;
            smr_adopt ctx r proposal ~proposer
          end
      | P_prepare _ | P_decision _ -> ()  (* sharded records, plain group *)
      | P_bytes _ -> ())
    end

  let smr_feed_tob ctx r (t, acts) =
    r.tob <- t;
    List.iter
      (function
        | TM.Send (dst, m) ->
            R.send ctx ~size:256 dst (Svc m)
        | TM.Notify (dst, d) ->
            if dst = r.s_self then smr_deliver ctx r d
            else R.send ctx dst (Note d)
        | TM.Set_timer delay -> ignore (R.set_timer ctx delay "tob"))
      acts

  let smr_broadcast ctx r payload =
    r.s_tob_seq <- r.s_tob_seq + 1;
    let entry = { Tob.origin = r.s_self; id = r.s_tob_seq; payload } in
    smr_feed_tob ctx r
      (TM.recv r.tob ~now:(R.time ctx) ~src:r.s_self (TM.Broadcast entry))

  let smr_check_suspicion ctx r =
    (* A syncing spare re-requests the snapshot until it arrives (the
       proposer may deliver the reconfiguration after we did). *)
    (match (r.role, r.sync_proposer) with
    | Syncing, Some proposer when not r.snap_started ->
        send_db ctx proposer
          (Db_msg.Snapshot_req { cfg = r.scfg.Config.seq; from_seq = r.sgseq })
    | _ -> ());
    if r.role = Active then begin
      let now = R.time ctx in
      let suspects =
        List.filter
          (fun m ->
            m <> r.s_self
            &&
            match Hashtbl.find_opt r.s_last_hb m with
            | Some t -> now -. t > r.stun.detect_timeout
            | None -> false)
          r.scfg.Config.members
      in
      if suspects <> [] && now -. r.s_proposed_at > r.stun.detect_timeout /. 2.0
      then begin
        r.s_proposed_at <- now;
        let spares =
          List.filter (fun m -> not (Config.contains r.scfg m)) r.s_nodes
        in
        let add = List.filteri (fun i _ -> i < List.length suspects) spares in
        let proposal = Config.next r.scfg ~remove:suspects ~add in
        smr_broadcast ctx r
          (tob_payload_reconfig proposal ~last_seq:r.sgseq ~proposer:r.s_self)
      end
    end

  (* Resend the yes-votes of every still-staged xid (sorted for
     determinism): a vote sent before the coordinator crashed — or lost
     with a crashed shard replica — must keep flowing until the decision
     arrives. Runs on the same periodic timer as failure detection. *)
  let x2pc_resend_votes ctx x =
    let entries = Hashtbl.fold (fun xid g acc -> (xid, g) :: acc) x.staged [] in
    List.iter
      (fun (_, g) ->
        send_db ctx x.xcfg.xc_coord
          (Db_msg.Vote
             {
               shard = x.xcfg.xc_shard;
               participants = g.g_participants;
               vote = g.g_vote;
               vtxn = g.g_txn;
             }))
      (List.sort (fun (a, _) (b, _) -> compare a b) entries)

  let smr_handler ~shared ~nodes_ref ~backend ~setup ~registry ~tun
      ~costs ~tob_window ~n_active ~durable ~x2pc () =
    let holder = ref None in
    let get ctx =
      match !holder with
      | Some r -> r
      | None ->
          let self = R.self ctx in
          let db = Database.create backend in
          setup db;
          ignore (Database.take_cost db);
          let sreg = registry () in
          (* 2PC participant state precedes recovery so WAL replay can
             repopulate it. *)
          let xstate =
            Option.map
              (fun xcfg ->
                {
                  xcfg;
                  x_self = self;
                  staged = Hashtbl.create 16;
                  locks = Hashtbl.create 64;
                  deferred = [];
                  applied = Hashtbl.create 64;
                })
              x2pc
          in
          (* Deterministic recovery, run on the node's first event after
             every (re)start: install the latest valid snapshot, truncate
             any torn WAL tail, replay the remaining records through the
             normal transaction engine. A fresh node recovers from an
             empty backend to the initial state. *)
          let recovery =
            match durable with
            | None -> None
            | Some (i, dur) ->
                let install (w : Durable.Wal.record) =
                  match Codec.decode_rows w.Durable.Wal.payload with
                  | Ok rows -> (
                      Database.clear_data db;
                      match Database.load_rows db rows with
                      | Ok () -> ()
                      | Error e ->
                          Sim.Invariant.fail "durable"
                            "node %d: snapshot install failed: %s" i e)
                  | Error e ->
                      Sim.Invariant.fail "durable"
                        "node %d: snapshot payload undecodable: %s" i e
                in
                let apply (w : Durable.Wal.record) =
                  match xstate with
                  | Some x ->
                      (* Replay the identical participant step with sends
                         suppressed: database, locks, staged votes,
                         deferred queue and applied-decision set all come
                         back exactly as logged. Votes flow again via the
                         periodic resend timer, not here. *)
                      let silent txn = ignore (Txn.execute sreg db txn) in
                      x2pc_apply ~sreg ~db x
                        (decode_payload w.Durable.Wal.payload)
                        ~exec_reply:silent ~exec:silent
                        ~send_vote:(fun ~participants:_ ~vote:_ ~vtxn:_ -> ())
                  | None -> (
                      match decode_payload w.Durable.Wal.payload with
                      | P_txn txn -> ignore (Txn.execute sreg db txn)
                      | P_reconfig _ | P_prepare _ | P_decision _
                      | P_bytes _ ->
                          ())
                in
                let mgr, report =
                  Durable.Manager.recover (dur.dur_backend i)
                    (dur.dur_policy i) ~install ~apply
                in
                dur.dur_on_recover i report
                  ~state_hash:(Database.content_hash db);
                Some (mgr, report)
          in
          let nodes = !nodes_ref in
          let members = List.filteri (fun i _ -> i < n_active) nodes in
          let r =
            {
              s_self = self;
              s_nodes = nodes;
              sdb = db;
              sreg;
              stun = tun;
              costs;
              tob =
                TM.create ?window:tob_window ~self ~members:nodes
                  ~subscribers:[ self ] ();
              scfg = Config.initial members;
              role = (if List.mem self members then Active else Sparing);
              sgseq =
                (match recovery with
                | Some (_, rep) -> rep.Durable.Manager.recovered_aux
                | None -> 0);
              buffered = [];
              pending_snapshot = None;
              snap_started = false;
              sync_proposer = None;
              s_last_hb = Hashtbl.create 8;
              s_proposed_at = -1.0e9;
              s_tob_seq = 0;
              sx2pc = xstate;
              sdur = Option.map fst recovery;
              sdur_floor =
                (match recovery with
                | Some (_, rep) -> rep.Durable.Manager.recovered_idx
                | None -> -1);
            }
          in
          List.iter
            (fun m -> Hashtbl.replace r.s_last_hb m (R.time ctx))
            members;
          Registry.set shared self r;
          holder := Some r;
          r
    in
    fun ctx input ->
      let r = get ctx in
      match input with
      | R.Init ->
          smr_feed_tob ctx r (TM.start r.tob ~now:(R.time ctx));
          ignore (R.set_timer ctx r.stun.hb_interval "hb");
          ignore (R.set_timer ctx (r.stun.detect_timeout /. 4.0) "detect")
      | R.Timer { tag = "tob"; _ } ->
          smr_feed_tob ctx r (TM.tick r.tob ~now:(R.time ctx))
      | R.Timer { tag = "hb"; _ } ->
          if r.role = Active then begin
            let hb = Db_msg.Heartbeat { cfg = r.scfg.Config.seq } in
            List.iter
              (fun m -> if m <> r.s_self then send_db ctx m hb)
              r.scfg.Config.members
          end;
          ignore (R.set_timer ctx r.stun.hb_interval "hb")
      | R.Timer { tag = "detect"; _ } ->
          (match r.sx2pc with
          | Some x ->
              (* Sharded mode: no suspicion/reconfiguration (spares can't
                 inherit 2PC state); the timer drives vote resends
                 instead. *)
              if r.role = Active then x2pc_resend_votes ctx x
          | None -> smr_check_suspicion ctx r);
          ignore (R.set_timer ctx (r.stun.detect_timeout /. 4.0) "detect")
      | R.Timer _ -> ()
      | R.Recv { src; msg } -> (
          match msg with
          | Svc m ->
              (match m with
              | TM.Broadcast _ ->
                  R.charge ctx r.costs.Broadcast.Shell.client_msg
              | TM.Core _ -> R.charge ctx r.costs.Broadcast.Shell.core_msg);
              smr_feed_tob ctx r (TM.recv r.tob ~now:(R.time ctx) ~src m)
          | Note d -> smr_deliver ctx r d
          | Db (Db_msg.Heartbeat _) ->
              Hashtbl.replace r.s_last_hb src (R.time ctx)
          | Db (Db_msg.Snapshot_req { cfg; _ }) -> (
              if cfg = r.scfg.Config.seq then
                match r.pending_snapshot with
                | None -> ()
                | Some (rows, upto) ->
                    let clients = [] in
                    let rec chunk rows =
                      let n = min r.stun.chunk_rows (List.length rows) in
                      let head = List.filteri (fun i _ -> i < n) rows in
                      let tail = List.filteri (fun i _ -> i >= n) rows in
                      let last = tail = [] in
                      send_db ctx src
                        (Db_msg.Snapshot
                           { cfg; rows = head; upto; last; clients });
                      if not last then chunk tail
                    in
                    if rows = [] then
                      send_db ctx src
                        (Db_msg.Snapshot { cfg; rows = []; upto; last = true; clients })
                    else chunk rows)
          | Db (Db_msg.Snapshot { cfg; rows; upto = _; last; clients = _ }) ->
              if cfg = r.scfg.Config.seq && r.role = Syncing then begin
                if not r.snap_started then begin
                  r.snap_started <- true;
                  Database.clear_data r.sdb
                end;
                (match Database.load_rows r.sdb rows with
                | Ok () | Error _ -> ());
                R.charge ctx (Database.take_cost r.sdb);
                if last then begin
                  r.role <- Active;
                  r.snap_started <- false;
                  r.sync_proposer <- None;
                  let todo = r.buffered in
                  r.buffered <- [];
                  List.iter (smr_exec ctx r) todo;
                  (* The installed state supersedes whatever the WAL
                     described: pin the transferred position and snapshot
                     it so a crash right after state transfer recovers to
                     here, not to the stale pre-transfer log. *)
                  match r.sdur with
                  | None -> ()
                  | Some mgr ->
                      Durable.Manager.install_state mgr
                        {
                          Durable.Wal.idx = r.sdur_floor;
                          aux = r.sgseq;
                          hash = Database.content_hash r.sdb;
                          payload = smr_durable_image ctx r;
                        }
                end
              end
          | Db _ -> ())

  let spawn_smr_group ?(name_prefix = "") ?x2pc ?(tun = default_tuning)
      ?(backends : Storage.Store.kind list option) ?durability
      ?(costs = Broadcast.Shell.default_costs) ?tob_window ~world ~registry
      ~setup ~n_active () =
    let shared : smr_replica Registry.t = Registry.create () in
    let nodes_ref = ref [] in
    let backend_of i =
      match backends with
      | None -> Storage.Store.Hazel
      | Some bs -> List.nth bs (i mod List.length bs)
    in
    let nodes =
      List.init 3 (fun i ->
          R.spawn world
            ~name:(Printf.sprintf "%ssmr%d" name_prefix i)
            (smr_handler ~shared ~nodes_ref ~backend:(backend_of i) ~setup
               ~registry ~tun ~costs ~tob_window ~n_active
               ~durable:(Option.map (fun d -> (i, d)) durability)
               ~x2pc))
    in
    nodes_ref := nodes;
    let view l f ~default = Registry.view shared l f ~default in
    {
      smr_nodes = nodes;
      smr_active_of = (fun l -> view l (fun r -> r.role = Active) ~default:false);
      smr_cfg_of = (fun l -> view l (fun r -> r.scfg.Config.seq) ~default:(-1));
      smr_gseq_of = (fun l -> view l (fun r -> r.sgseq) ~default:0);
      smr_hash_of =
        (fun l -> view l (fun r -> Database.content_hash r.sdb) ~default:0);
      smr_db_view =
        (fun l f ~default -> view l (fun r -> f r.sdb) ~default);
    }

  let spawn_smr ?tun ?backends ?durability ?costs ?tob_window ~world
      ~registry ~setup ~n_active () =
    spawn_smr_group ?tun ?backends ?durability ?costs ?tob_window ~world
      ~registry ~setup ~n_active ()

  (* ------------------------------------------------------------------ *)
  (* Sharded deployment: per-shard TOB groups + 2PC-over-TOB             *)
  (* ------------------------------------------------------------------ *)

  type coord_pending = {
    mutable cp_votes : (int * Txn.reply) list;  (* shard -> vote *)
    mutable cp_parts : (int * Txn.t) list;  (* shard -> sub-txn *)
    mutable cp_participants : int list;
    cp_created : float;
  }

  type coord_decision = {
    cd_commit : bool;
    cd_reply : Txn.reply;
    cd_parts : (int * Txn.t) list;
  }

  type coord_journal =
    (loc * int, coord_decision) Hashtbl.t * (loc * int) list ref
  (* Decisions in decision order, newest first. Allocated by
     [spawn_sharded] (so it survives coordinator restarts — the
     "persisted prepare decision" of the safety argument) unless
     [coord_journal:false] deliberately breaks it for the checker's
     broken-2PC fixture. *)

  (* The 2PC coordinator. Deliberately NOT a TOB member: it injects
     prepare and decision records into each participant shard's own TOB
     (via any shard member, like a client would), so the records are
     totally ordered against that shard's transactions. All soft state
     (pending votes) reconstructs after a crash from the participants'
     periodic vote resends; decided outcomes come from the journal.

     Decisions are broadcast one per "pump" tick rather than all at
     once: a handler runs atomically under the sim, so the pump is what
     makes "coordinator crashed after informing some but not all
     participants" a schedulable state the checker can actually reach. *)
  let coord_handler ~router ~members_of ~journal ~pending_timeout
      ~pump_interval ~committed ~aborted ~on_decide () =
    let decided, decided_order =
      match (journal : coord_journal option) with
      | Some (tbl, order) -> (tbl, order)
      | None -> (Hashtbl.create 32, ref [])
      (* fresh per incarnation: decisions forgotten on crash *)
    in
    let pendings : (loc * int, coord_pending) Hashtbl.t = Hashtbl.create 32 in
    let pump : (int * bool * Txn.t) Queue.t = Queue.create () in
    (* (shard, xid) entries currently sitting in [pump]: periodic vote
       resends from still-staged replicas re-request their shard's
       decision faster than the one-per-tick pump drains, so without
       dedup the queue grows without bound and every decision falls
       further behind the resend rate. *)
    let queued : (int * (loc * int), unit) Hashtbl.t = Hashtbl.create 32 in
    let pump_armed = ref false in
    let rot = ref 0 in
    let bcast ctx ~shard entry =
      match members_of shard with
      | [] -> ()
      | members ->
          let contact = List.nth members (!rot mod List.length members) in
          incr rot;
          R.send ctx ~size:256 contact (Svc (TM.Broadcast entry))
    in
    let send_prepare ctx ~self ~shard ~participants ~ptxn:(ptxn : Txn.t) =
      bcast ctx ~shard
        {
          Tob.origin = self;
          id =
            Shard.entry_id ~phase:`Prepare ~client:ptxn.Txn.client
              ~seq:ptxn.Txn.seq ~shard;
          payload = tob_payload_prepare ~coord:self ~shard ~participants ~ptxn;
        }
    in
    let arm_pump ctx =
      if (not !pump_armed) && not (Queue.is_empty pump) then begin
        pump_armed := true;
        ignore (R.set_timer ctx pump_interval "pump")
      end
    in
    let enqueue_decision ((shard, _, dtxn) as d : int * bool * Txn.t) =
      let k = (shard, (dtxn.Txn.client, dtxn.Txn.seq)) in
      if not (Hashtbl.mem queued k) then begin
        Hashtbl.replace queued k ();
        Queue.add d pump
      end
    in
    let decide ctx xid p ~commit =
      let parts =
        List.sort (fun (a, _) (b, _) -> compare a b) p.cp_parts
      in
      let votes =
        List.sort (fun (a, _) (b, _) -> compare a b) p.cp_votes
      in
      let outcome =
        if commit then
          (* Merged cross-shard result: each participant's trial rows,
             concatenated in shard order. *)
          Ok
            (List.concat_map
               (fun (_, v) ->
                 match v.Txn.outcome with Ok rows -> rows | Error _ -> [])
               votes)
        else
          Error
            (match
               List.find_opt
                 (fun (_, v) ->
                   match v.Txn.outcome with Error _ -> true | Ok _ -> false)
                 votes
             with
            | Some (_, v) -> (
                match v.Txn.outcome with Error e -> e | Ok _ -> "aborted")
            | None -> "2pc timeout")
      in
      let reply = { Txn.client = fst xid; seq = snd xid; outcome } in
      Hashtbl.replace decided xid
        { cd_commit = commit; cd_reply = reply; cd_parts = parts };
      decided_order := xid :: !decided_order;
      Hashtbl.remove pendings xid;
      Atomic.incr (if commit then committed else aborted);
      on_decide ~client:(fst xid) ~seq:(snd xid) ~commit;
      send_db ctx (fst xid) (Db_msg.Reply reply);
      List.iter (fun (s, dtxn) -> enqueue_decision (s, commit, dtxn)) parts;
      arm_pump ctx
    in
    fun ctx input ->
      let self = R.self ctx in
      match input with
      | R.Init ->
          (* A restarted coordinator re-broadcasts every journaled
             decision: participants still staged unlock, TOB dedup (the
             stable [Shard.entry_id]) absorbs the rest. Without a journal
             this is a no-op and staged participants hang until the
             timeout abort — the divergence the broken fixture exists to
             exhibit. *)
          List.iter
            (fun xid ->
              match Hashtbl.find_opt decided xid with
              | None -> ()
              | Some d ->
                  List.iter
                    (fun (s, dtxn) ->
                      enqueue_decision (s, d.cd_commit, dtxn))
                    d.cd_parts)
            (List.rev !decided_order);
          arm_pump ctx;
          ignore (R.set_timer ctx (pending_timeout /. 2.0) "expire")
      | R.Timer { tag = "pump"; _ } ->
          pump_armed := false;
          (match Queue.take_opt pump with
          | None -> ()
          | Some (shard, commit, dtxn) ->
              Hashtbl.remove queued (shard, (dtxn.Txn.client, dtxn.Txn.seq));
              bcast ctx ~shard
                {
                  Tob.origin = self;
                  id =
                    Shard.entry_id ~phase:`Decision ~client:dtxn.Txn.client
                      ~seq:dtxn.Txn.seq ~shard;
                  payload = tob_payload_decision ~shard ~commit ~dtxn;
                });
          arm_pump ctx
      | R.Timer { tag = "expire"; _ } ->
          (* Abort pendings that outlived the timeout. Always safe: no
             decision exists for them yet, so no participant can have
             committed. Covers lost prepares and lost no-votes. *)
          let now = R.time ctx in
          let stale =
            Hashtbl.fold
              (fun xid p acc ->
                if now -. p.cp_created > pending_timeout then (xid, p) :: acc
                else acc)
              pendings []
          in
          List.iter
            (fun (xid, p) -> decide ctx xid p ~commit:false)
            (List.sort (fun (a, _) (b, _) -> compare a b) stale);
          ignore (R.set_timer ctx (pending_timeout /. 2.0) "expire")
      | R.Timer _ -> ()
      | R.Recv { msg = Db (Db_msg.Client_txn txn); _ } -> (
          let xid = (txn.Txn.client, txn.Txn.seq) in
          match Hashtbl.find_opt decided xid with
          | Some d -> send_db ctx txn.Txn.client (Db_msg.Reply d.cd_reply)
          | None ->
              if not (Hashtbl.mem pendings xid) then (
                match Shard.route router txn with
                | Shard.Local s ->
                    (* Single-shard after all: inject into the owning
                       shard's TOB with the client's own entry identity,
                       so a direct client broadcast of the same
                       transaction dedups against it. *)
                    bcast ctx ~shard:s
                      {
                        Tob.origin = txn.Txn.client;
                        id = txn.Txn.seq;
                        payload = tob_payload_txn txn;
                      }
                | Shard.Distributed parts ->
                    let participants = List.map fst parts in
                    Hashtbl.replace pendings xid
                      {
                        cp_votes = [];
                        cp_parts = parts;
                        cp_participants = participants;
                        cp_created = R.time ctx;
                      };
                    List.iter
                      (fun (s, ptxn) ->
                        send_prepare ctx ~self ~shard:s ~participants ~ptxn)
                      parts))
      | R.Recv { msg = Db (Db_msg.Vote { shard; participants; vote; vtxn }); _ }
        -> (
          let xid = (vote.Txn.client, vote.Txn.seq) in
          match Hashtbl.find_opt decided xid with
          | Some d -> (
              (* The voter is still staged, waiting: re-send just that
                 shard's decision. *)
              match List.find_opt (fun (s, _) -> s = shard) d.cd_parts with
              | Some (s, dtxn) ->
                  enqueue_decision (s, d.cd_commit, dtxn);
                  arm_pump ctx
              | None -> ())
          | None ->
              let p =
                match Hashtbl.find_opt pendings xid with
                | Some p -> p
                | None ->
                    (* Unknown xid: a resent vote reaching a restarted
                       coordinator. The vote carries enough (participants
                       and the sub-transaction) to rebuild the pending
                       entry from scratch. *)
                    let p =
                      {
                        cp_votes = [];
                        cp_parts = [];
                        cp_participants = participants;
                        cp_created = R.time ctx;
                      }
                    in
                    Hashtbl.replace pendings xid p;
                    p
              in
              if not (List.mem_assoc shard p.cp_votes) then
                p.cp_votes <- (shard, vote) :: p.cp_votes;
              if not (List.mem_assoc shard p.cp_parts) then
                p.cp_parts <- (shard, vtxn) :: p.cp_parts;
              if p.cp_participants = [] then p.cp_participants <- participants;
              if
                p.cp_participants <> []
                && List.length p.cp_votes >= List.length p.cp_participants
              then
                let commit =
                  List.for_all
                    (fun (_, v) ->
                      match v.Txn.outcome with Ok _ -> true | Error _ -> false)
                    p.cp_votes
                in
                decide ctx xid p ~commit)
      | R.Recv _ -> ()

  type sharded_cluster = {
    sh_shards : int;
    sh_router : Shard.router;
    sh_coord : loc;
    sh_groups : smr_cluster array;
    sh_nodes : loc list;  (* coordinator first, then every replica *)
    sh_committed : unit -> int;
    sh_aborted : unit -> int;
  }

  let spawn_sharded ?(tun = default_tuning) ?backends
      ?(durability : (int -> durability option) = fun _ -> None)
      ?(costs = Broadcast.Shell.default_costs) ?tob_window
      ?(coord_journal = true) ?(pending_timeout = 1.5)
      ?(pump_interval = 0.005)
      ?(on_apply =
        fun ~shard:_ ~node:_ ~client:_ ~seq:_ ~commit:_ ~keys:_ -> ())
      ?(on_decide = fun ~client:_ ~seq:_ ~commit:_ -> ()) ~world ~registry
      ~setup ~router () =
    let shards = router.Shard.shards in
    if shards <= 0 then
      Sim.Invariant.fail "shard" "spawn_sharded: router.shards <= 0 (%d)" shards;
    let groups_ref = ref [||] in
    let members_of s =
      let gs = !groups_ref in
      if Array.length gs = 0 then [] else gs.(s).smr_nodes
    in
    let journal : coord_journal option =
      if coord_journal then Some (Hashtbl.create 64, ref []) else None
    in
    let committed = Atomic.make 0 and aborted = Atomic.make 0 in
    (* The coordinator spawns first so each shard group can close over
       its concrete location. *)
    let coord =
      R.spawn world ~name:"coord"
        (coord_handler ~router ~members_of ~journal ~pending_timeout
           ~pump_interval ~committed ~aborted ~on_decide)
    in
    let groups =
      Array.init shards (fun s ->
          spawn_smr_group ~name_prefix:(Printf.sprintf "sh%d-" s)
            ~x2pc:
              {
                xc_shard = s;
                xc_coord = coord;
                xc_keys_of = router.Shard.keys_of;
                xc_on_apply = on_apply;
              }
            ~tun ?backends ?durability:(durability s) ~costs ?tob_window
            ~world ~registry ~setup:(setup s) ~n_active:3 ())
    in
    groups_ref := groups;
    {
      sh_shards = shards;
      sh_router = router;
      sh_coord = coord;
      sh_groups = groups;
      sh_nodes =
        coord :: List.concat_map (fun g -> g.smr_nodes) (Array.to_list groups);
      sh_committed = (fun () -> Atomic.get committed);
      sh_aborted = (fun () -> Atomic.get aborted);
    }

  (* ------------------------------------------------------------------ *)
  (* Clients                                                             *)
  (* ------------------------------------------------------------------ *)

  type client_target =
    | To_pbr of pbr_cluster
    | To_smr of smr_cluster
    | To_sharded of sharded_cluster

  (* A closed-loop client: submits [count] transactions one at a time,
     resending (same sequence number — duplicates are suppressed
     downstream) with contact rotation on timeout. [on_commit time latency]
     fires per committed transaction; [make_txn ~client ~seq] supplies the
     procedure name and parameters. *)
  let spawn_clients ~world ~target ~n ~count ~make_txn
      ?(retry_timeout = 4.0) ?(on_commit = fun _ _ -> ()) () =
    let completed = Atomic.make 0 in
    let rotate contacts attempt =
      List.nth contacts (attempt mod List.length contacts)
    in
    let smr_entry (txn : Txn.t) =
      {
        Tob.origin = txn.Txn.client;
        id = txn.Txn.seq;
        payload = tob_payload_txn txn;
      }
    in
    (* [dispatch ctx ~attempt txn] routes one submission; [attempt]
       rotates contacts on retry. *)
    let dispatch =
      match target with
      | To_pbr c ->
          let all = c.pbr_replicas in
          (* Start at the initial primary; rotate over replicas on retry. *)
          let ordered =
            c.pbr_initial_primary
            :: List.filter (fun l -> l <> c.pbr_initial_primary) all
          in
          fun ctx ~attempt txn ->
            R.send ctx ~size:(Txn.size txn) (rotate ordered attempt)
              (Db (Db_msg.Client_txn txn))
      | To_smr c ->
          fun ctx ~attempt txn ->
            R.send ctx ~size:(Txn.size txn) (rotate c.smr_nodes attempt)
              (Svc (TM.Broadcast (smr_entry txn)))
      | To_sharded sc -> (
          fun ctx ~attempt txn ->
            match Shard.route sc.sh_router txn with
            | Shard.Local s ->
                (* Single-shard: straight into the owning shard's TOB,
                   bypassing the coordinator entirely. *)
                R.send ctx ~size:(Txn.size txn)
                  (rotate sc.sh_groups.(s).smr_nodes attempt)
                  (Svc (TM.Broadcast (smr_entry txn)))
            | Shard.Distributed _ ->
                (* Cross-shard: the 2PC coordinator owns it. *)
                R.send ctx ~size:(Txn.size txn) sc.sh_coord
                  (Db (Db_msg.Client_txn txn)))
    in
    let spawn_one _i =
      R.spawn world ~name:"db-client" (fun () ->
          let seq = ref 0 in
          let attempt = ref 0 in
          let sent_at = ref 0.0 in
          let timer = ref (-1) in
          let send ctx =
            let a = !attempt in
            incr attempt;
            sent_at := R.time ctx;
            let client = R.self ctx in
            let kind, params = make_txn ~client ~seq:!seq in
            let txn = { Txn.client; seq = !seq; kind; params } in
            dispatch ctx ~attempt:a txn;
            timer := R.set_timer ctx retry_timeout "retry"
          in
          fun ctx -> function
            | R.Init -> if count > 0 then send ctx
            | R.Recv { msg = Db (Db_msg.Reply reply); _ } ->
                if reply.Txn.seq = !seq then begin
                  R.cancel_timer ctx !timer;
                  let now = R.time ctx in
                  (* Deterministic aborts (e.g. TPC-C's 1% rollbacks) are
                     answered but not counted as commits. *)
                  (match reply.Txn.outcome with
                  | Ok _ -> on_commit now (now -. !sent_at)
                  | Error _ -> ());
                  incr seq;
                  (* Successful contact: stick with it next time. *)
                  attempt := !attempt - 1;
                  if !seq < count then send ctx
                  else Atomic.incr completed
                end
            | R.Recv _ -> ()
            | R.Timer { tag = "retry"; _ } ->
                (* Timeout: resend the same transaction; [send] advances
                   the rotation, so a dead contact is skipped. *)
                if !seq < count then send ctx
            | R.Timer _ -> ())
    in
    let ids = List.init n spawn_one in
    (ids, fun () -> Atomic.get completed)
end
