(** ShadowDB: replicated databases over the verified total-order broadcast.

    {!Make} is parameterized by the consensus core of the broadcast
    service (the paper evaluates Paxos; TwoThird also works) and provides
    three replication styles over the same substrate:

    - {b primary-backup} (paper Sec. III-A): a hand-coded normal case —
      the primary executes, forwards to the backups, waits for all
      acknowledgements, answers the client — with TOB-ordered
      reconfiguration, election by largest executed sequence number, and
      transaction-cache or full-snapshot state transfer (including the
      paper's overlapped variant);
    - {b state machine replication} (paper Sec. III-B): clients broadcast
      transactions through the TOB, every active replica executes in
      delivery order and answers, the client keeps the first answer; each
      replica co-hosts its broadcast-service member (the co-located CPU is
      what caps SMR throughput in Fig. 9(a));
    - {b chain replication} (extension; one of the protocols the paper
      names as buildable on its broadcast service): updates enter at the
      head and flow down the chain, the tail's reply is the commit point,
      and read-only transactions are served by the tail. *)

type loc = int

val tob_payload_txn : Txn.t -> string
(** TOB entry payload for a client transaction (tag byte ['T'] followed
    by the codec-v2 transaction encoding). *)

type decoded_payload =
  | P_txn of Txn.t
  | P_reconfig of Config.t * int * loc
      (** configuration, proposer's last executed seq, proposer *)
  | P_prepare of loc * int * int list * Txn.t
      (** coordinator, shard, participants, sub-transaction *)
  | P_decision of int * bool * Txn.t  (** shard, commit?, sub-transaction *)
  | P_bytes of string  (** unrecognized or corrupt *)

val decode_payload : string -> decoded_payload
(** Decode a TOB entry payload by its tag byte. Total: anything
    unrecognized comes back as {!P_bytes}. The conformance checker uses
    this to re-execute recorded deliveries against a shadow database. *)

type tuning = {
  hb_interval : float;  (** Heartbeat period between replicas. *)
  detect_timeout : float;
      (** Silence after which a replica is suspected (the paper's
          configurable 10 s in Fig. 10(a)). *)
  cache_cap : int;
      (** Executed-transaction cache size; a lagging replica within the
          cache catches up by replay, otherwise by full snapshot. *)
  chunk_rows : int;  (** Rows per state-transfer chunk (≈50 kB). *)
  exec_overhead : float;  (** Fixed CPU per transaction besides DB work. *)
  fwd_overhead : float;  (** Per-backup forward/ack handling CPU. *)
}

val default_tuning : tuning

module Make (C : Consensus.Consensus_intf.S) : sig
  module Shell : sig
    include module type of Broadcast.Shell.Make (C)
  end

  module TM = Shell.T

  type wire =
    | Svc of TM.msg  (** Broadcast-service traffic. *)
    | Note of Broadcast.Tob.deliver  (** TOB delivery notification. *)
    | Db of Db_msg.t  (** Database replication traffic. *)
  (** Wire type of a ShadowDB world — simulated or live. *)

  val wire_codec :
    enc_core:(Broadcast.Tob.batch C.msg -> string) ->
    dec_core:(string -> (Broadcast.Tob.batch C.msg, string) result) ->
    wire Runtime.codec
  (** Byte codec for {!wire}, required by the live socket runtime.
      [enc_core]/[dec_core] serialize the consensus core's protocol
      messages; for [Consensus.Paxos] use {!Codec.encode_core_paxos} and
      {!Codec.decode_core_paxos}. *)

  type replication_style = Primary_backup | Chain

  (** {1 Primary-backup / chain clusters} *)

  type pbr_cluster = {
    pbr_replicas : loc list;  (** Actives first, then spares. *)
    pbr_tob : loc list;  (** The three broadcast-service members. *)
    pbr_initial_primary : loc;
    pbr_primary_of : loc -> loc;
        (** A replica's current view of the primary (introspection). *)
    pbr_cfg_of : loc -> int;
        (** A replica's current configuration sequence number (state
            agreement only holds within a configuration: a deposed
            primary legitimately diverges until it rejoins). *)
    pbr_gseq_of : loc -> int;  (** Executed-transaction count. *)
    pbr_hash_of : loc -> int;
        (** Backend-independent content digest, for state-agreement
            checks. *)
  }

  val spawn_pbr :
    ?style:replication_style ->
    ?read_kinds:string list ->
    ?tun:tuning ->
    ?backends:Storage.Store.kind list ->
    ?tob_profile:Gpm.Engine_profile.t ->
    ?tob_window:int ->
    world:wire Runtime.t ->
    registry:(unit -> Txn.registry) ->
    setup:(Storage.Database.t -> unit) ->
    n_active:int ->
    n_spare:int ->
    unit ->
    pbr_cluster
  (** Spawn [n_active] replicas (the initial configuration) plus
      [n_spare] spares, and the 3-member broadcast service used for
      reconfiguration. [backends] assigns diverse storage engines
      round-robin (default all "hazel"); [setup] loads the initial data
      identically at every replica; [tob_profile] selects the broadcast
      service's execution engine (the paper runs PBR's service
      interpreted); [tob_window] is the service's consensus pipelining
      window (batches in flight per member, default 1). *)

  val spawn_chain :
    ?read_kinds:string list ->
    ?tun:tuning ->
    ?backends:Storage.Store.kind list ->
    ?tob_profile:Gpm.Engine_profile.t ->
    ?tob_window:int ->
    world:wire Runtime.t ->
    registry:(unit -> Txn.registry) ->
    setup:(Storage.Database.t -> unit) ->
    n_active:int ->
    n_spare:int ->
    unit ->
    pbr_cluster
  (** Chain-replication cluster: the configuration order is the chain
      order (head first); [read_kinds] lists the transaction kinds served
      read-only at the tail. *)

  (** {1 State-machine-replication clusters} *)

  type durability = {
    dur_backend : int -> Durable.Backend.t;
        (** Node [i]'s persistent backend (file-backed live, in-memory
            deterministic under the sim). *)
    dur_policy : int -> Durable.Manager.policy;
    dur_on_recover : int -> Durable.Manager.report -> state_hash:int -> unit;
        (** Observes the recovery report and post-recovery state
            fingerprint each time node [i] (re)initializes — monitors and
            the chaos drill hang off it. *)
  }
  (** Per-node durability hooks for SMR clusters: applied transactions are
      written to a write-ahead log (group-committed per the policy),
      snapshots are taken at the policy's cadence, and a restarted node
      recovers deterministically (snapshot install + torn-tail truncation
      + WAL replay) before processing its first event. *)

  type smr_cluster = {
    smr_nodes : loc list;
        (** The three machines, each co-hosting a broadcast member and a
            database replica. *)
    smr_active_of : loc -> bool;  (** Whether the replica executes. *)
    smr_cfg_of : loc -> int;  (** Configuration sequence number. *)
    smr_gseq_of : loc -> int;
    smr_hash_of : loc -> int;
    smr_db_view : 'a. loc -> (Storage.Database.t -> 'a) -> default:'a -> 'a;
        (** Read-only introspection of a replica's database (e.g.
            conservation sums in the checker); [default] if the node
            never initialized. *)
  }

  val spawn_smr :
    ?tun:tuning ->
    ?backends:Storage.Store.kind list ->
    ?durability:durability ->
    ?costs:Broadcast.Shell.costs ->
    ?tob_window:int ->
    world:wire Runtime.t ->
    registry:(unit -> Txn.registry) ->
    setup:(Storage.Database.t -> unit) ->
    n_active:int ->
    unit ->
    smr_cluster
  (** Three co-located nodes; the first [n_active] databases execute, the
      rest are spares activated by TOB-ordered reconfiguration (with
      snapshot sync from the proposer). [tob_window] is the co-hosted
      broadcast member's consensus pipelining window (default 1). *)

  (** {1 Sharded clusters}

      N independent shards, each a full 3-replica SMR group with its own
      TOB instance, plus one 2PC coordinator for cross-shard
      transactions. Single-shard transactions enter the owning shard's
      TOB directly; cross-shard ones are split by the {!Shard.router},
      prepared (trial-executed and locked) at every participant, and
      decided by the coordinator — prepare and decision records are
      totally ordered {e within each participant shard's own TOB}, which
      together with the journaled decision gives atomicity (see
      DESIGN.md). *)

  type sharded_cluster = {
    sh_shards : int;
    sh_router : Shard.router;
    sh_coord : loc;  (** The 2PC coordinator node. *)
    sh_groups : smr_cluster array;  (** One SMR group per shard. *)
    sh_nodes : loc list;  (** Coordinator first, then every replica. *)
    sh_committed : unit -> int;
        (** Cross-shard transactions decided commit. *)
    sh_aborted : unit -> int;  (** Decided abort (incl. timeouts). *)
  }

  val spawn_sharded :
    ?tun:tuning ->
    ?backends:Storage.Store.kind list ->
    ?durability:(int -> durability option) ->
    ?costs:Broadcast.Shell.costs ->
    ?tob_window:int ->
    ?coord_journal:bool ->
    ?pending_timeout:float ->
    ?pump_interval:float ->
    ?on_apply:
      (shard:int ->
      node:loc ->
      client:loc ->
      seq:int ->
      commit:bool ->
      keys:Shard.key list ->
      unit) ->
    ?on_decide:(client:loc -> seq:int -> commit:bool -> unit) ->
    world:wire Runtime.t ->
    registry:(unit -> Txn.registry) ->
    setup:(int -> Storage.Database.t -> unit) ->
    router:Shard.router ->
    unit ->
    sharded_cluster
  (** Spawn [router.shards] SMR groups (3 replicas each, all active —
      reconfiguration is disabled in sharded mode) and the coordinator.
      [setup shard db] loads shard-local initial data; [durability shard]
      optionally makes that shard's replicas crash-durable (recovery
      replays the full WAL through the 2PC participant step, rebuilding
      locks and staged votes). [coord_journal:false] deliberately drops
      the coordinator's decision journal — the checker's broken-2PC
      fixture. [pump_interval] paces decision broadcasts (one per tick —
      the crash window the checker explores; re-requests triggered by
      resent votes dedup against the queue, so it stays bounded by the
      number of in-flight decisions); [pending_timeout] is the
      presumed-abort deadline for undecided transactions. [on_apply]
      observes every decision application at every replica, [on_decide]
      every coordinator decision — the cross-shard monitors hang off
      both. *)

  (** {1 Clients} *)

  type client_target =
    | To_pbr of pbr_cluster
    | To_smr of smr_cluster
    | To_sharded of sharded_cluster
  (** Chain clusters are addressed with [To_pbr] (replicas forward
      misrouted transactions to the head or tail themselves).
      [To_sharded] clients route per transaction: single-shard straight
      into the owning shard's TOB, cross-shard to the coordinator. *)

  val spawn_clients :
    world:wire Runtime.t ->
    target:client_target ->
    n:int ->
    count:int ->
    make_txn:(client:loc -> seq:int -> string * Storage.Value.t list) ->
    ?retry_timeout:float ->
    ?on_commit:(float -> float -> unit) ->
    unit ->
    loc list * (unit -> int)
  (** [n] closed-loop clients submitting [count] transactions each.
      [make_txn ~client ~seq] must be deterministic (timeouts resend the
      same transaction with the same sequence number; duplicates are
      suppressed downstream). [on_commit time latency] fires once per
      committed transaction (deterministic aborts are answered but not
      counted). Returns the client node ids and a completion counter. *)
end
