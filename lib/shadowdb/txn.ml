module Database = Storage.Database
module Value = Storage.Value

type loc = int

type t = { client : loc; seq : int; kind : string; params : Value.t list }

type outcome = (Value.t array list, string) result

type reply = { client : loc; seq : int; outcome : outcome }

type proc = Database.t -> Value.t list -> outcome

type registry = (string, proc) Hashtbl.t

let registry procs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, p) -> Hashtbl.replace tbl name p) procs;
  tbl

let lookup reg name = Hashtbl.find_opt reg name

let execute reg db (txn : t) =
  let outcome =
    match lookup reg txn.kind with
    | None -> Error ("unknown transaction type " ^ txn.kind)
    | Some proc -> (
        Database.begin_txn db;
        match proc db txn.params with
        | Ok rows ->
            Database.commit db;
            Ok rows
        | Error e ->
            Database.rollback db;
            Error e
        | exception e ->
            Database.rollback db;
            Error (Printexc.to_string e))
  in
  { client = txn.client; seq = txn.seq; outcome }

let execute_trial reg db (txn : t) =
  let outcome =
    match lookup reg txn.kind with
    | None -> Error ("unknown transaction type " ^ txn.kind)
    | Some proc -> (
        Database.begin_txn db;
        match proc db txn.params with
        | (Ok _ | Error _) as o ->
            Database.rollback db;
            o
        | exception e ->
            Database.rollback db;
            Error (Printexc.to_string e))
  in
  { client = txn.client; seq = txn.seq; outcome }

let value_size = Value.serialized_size

let size t =
  24 + String.length t.kind
  + List.fold_left (fun acc v -> acc + value_size v) 0 t.params

let reply_size r =
  match r.outcome with
  | Error e -> 24 + String.length e
  | Ok rows ->
      24
      + List.fold_left
          (fun acc row ->
            acc + Array.fold_left (fun a v -> a + value_size v) 4 row)
          0 rows
