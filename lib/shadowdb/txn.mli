(** Transactions as typed procedures.

    Following the paper (Sec. III): "submitting a transaction T involves
    sending T's type and its parameters to a server"; execution is
    sequential and deterministic, so every replica computes the same state
    and the same answer. Procedures are registered per deployment (the
    bank micro-benchmark and TPC-C register theirs). *)

type loc = int

type t = {
  client : loc;  (** Submitting client. *)
  seq : int;  (** Client-local sequence number (exactly-once key). *)
  kind : string;  (** Procedure name. *)
  params : Storage.Value.t list;
}

type outcome = (Storage.Value.t array list, string) result
(** Result set on commit, or abort reason. Deterministic procedures abort
    deterministically at every replica (paper footnote 4). *)

type reply = { client : loc; seq : int; outcome : outcome }

type proc = Storage.Database.t -> Storage.Value.t list -> outcome
(** A procedure runs inside a transaction the executor opens and
    commits/rolls back around it: [Error] ⇒ rollback. *)

type registry

val registry : (string * proc) list -> registry
val lookup : registry -> string -> proc option

val execute : registry -> Storage.Database.t -> t -> reply
(** Run the procedure inside BEGIN/COMMIT (ROLLBACK on abort); unknown
    kinds abort. *)

val execute_trial : registry -> Storage.Database.t -> t -> reply
(** Run the procedure inside BEGIN … ROLLBACK — always rolled back, even
    on [Ok]. The 2PC prepare phase uses this to compute a vote (and the
    would-be result rows) without mutating the database before the
    decision arrives. *)

val reply_size : reply -> int
(** Wire-size estimate of a reply, for the network model. *)

val size : t -> int
(** Wire-size estimate of a transaction. *)
